module labstor

go 1.22
