// Command labstor-runtime starts a LabStor Runtime from a configuration
// file, mounts the LabStacks passed on the command line, and serves until
// interrupted — the in-process equivalent of the paper's Runtime daemon.
//
//	labstor-runtime -config runtime.yaml -stack fs.yaml -stack kv.yaml
//
// With -demo, the runtime additionally executes a short smoke workload
// against the first mounted stack and reports modeled latencies.
//
// The config's `observe:` section (or the -observe flag) starts the live
// observability server; the bound address is printed as
// "observe: serving on http://ADDR" so scripts can scrape ephemeral ports.
//
// The config's `serve:` section (or the -serve flag) starts the network
// serving front end; the bound address is printed as
// "serve: listening on ADDR". When `serve.shards` lists backend addresses
// the process routes instead of serving locally and prints
// "serve: routing on ADDR across N shards".
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/obs"
	"labstor/internal/runtime"
	"labstor/internal/serve"
	"labstor/internal/spec"
)

type stackList []string

func (s *stackList) String() string { return fmt.Sprint(*s) }
func (s *stackList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	configPath := flag.String("config", "", "runtime configuration YAML")
	var stacks stackList
	flag.Var(&stacks, "stack", "LabStack spec file (repeatable)")
	demo := flag.Bool("demo", false, "run a short smoke workload and exit")
	observeAddr := flag.String("observe", "", "observability server address (overrides the config's observe.addr)")
	serveAddr := flag.String("serve", "", "network serving address (overrides the config's serve.addr)")
	flag.Parse()

	cfg := &spec.RuntimeConfig{Workers: 4, QueueDepth: 1024, UpgradePollMs: 5}
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			fatal("read config: %v", err)
		}
		cfg, err = spec.ParseRuntimeConfig(string(raw))
		if err != nil {
			fatal("parse config: %v", err)
		}
	}

	rt := runtime.New(runtime.FromConfig(cfg))
	for _, ds := range cfg.Devices {
		dev := device.NewStriped(ds.Name, ds.Class, ds.Capacity, ds.Stripes)
		rt.AddDevice(dev)
		fmt.Printf("device %-8s %-5s %6d MiB  %d stripes\n", ds.Name, ds.Class, ds.Capacity>>20, dev.Stripes())
	}
	rt.Start()
	defer rt.Shutdown()

	if *observeAddr != "" {
		cfg.Observe.Addr = *observeAddr
	}
	if srv, bound, err := obs.FromConfig(rt, cfg.Observe); err != nil {
		fatal("observe: %v", err)
	} else if srv != nil {
		defer srv.Close()
		fmt.Printf("observe: serving on http://%s\n", bound)
	}

	if *serveAddr != "" {
		cfg.Serve.Addr = *serveAddr
	}
	if cfg.Serve.Addr != "" {
		if len(cfg.Serve.Shards) > 0 {
			rtr := serve.NewRouter(cfg.Serve.Shards, cfg.Serve.Replicas, rt.Metrics())
			bound, err := rtr.ListenAndServe(cfg.Serve.Addr)
			if err != nil {
				fatal("serve: %v", err)
			}
			defer rtr.Close()
			fmt.Printf("serve: routing on %s across %d shards\n", bound, len(cfg.Serve.Shards))
		} else {
			scfg := serve.ConfigFromSpec(cfg.Serve)
			if err := scfg.WithPushdown(cfg.Pushdown); err != nil {
				fatal("pushdown: %v", err)
			}
			fe := serve.New(rt, scfg)
			bound, err := fe.ListenAndServe()
			if err != nil {
				fatal("serve: %v", err)
			}
			defer fe.Close()
			fmt.Printf("serve: listening on %s\n", bound)
			if scfg.Pushdown != nil {
				fmt.Printf("pushdown: %d programs registered\n", len(scfg.Pushdown.Registry().Programs()))
			}
		}
	}

	var firstMount string
	for _, path := range stacks {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal("read stack %s: %v", path, err)
		}
		s, err := rt.MountSpec(string(raw))
		if err != nil {
			fatal("mount %s: %v", path, err)
		}
		if firstMount == "" {
			firstMount = s.Mount
		}
		fmt.Printf("mounted %-20s (%d LabMods, %s exec)\n", s.Mount, s.Len(), s.Rules.ExecMode)
	}

	if *demo {
		if firstMount == "" {
			fatal("-demo requires at least one -stack")
		}
		runDemo(rt, firstMount)
		return
	}

	fmt.Println("runtime serving; Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nworker statistics:")
	for _, ws := range rt.Stats() {
		fmt.Printf("  worker %d: active=%v processed=%d busy=%v\n", ws.ID, ws.Active, ws.Processed, ws.BusyVirt)
	}
}

func runDemo(rt *runtime.Runtime, mount string) {
	cli := rt.Connect(ipc.Credentials{PID: os.Getpid(), UID: 1000, GID: 1000})
	payload := []byte("labstor runtime demo payload")
	start := time.Now()
	for i := 0; i < 100; i++ {
		req := core.NewRequest(core.OpWrite)
		req.Path = fmt.Sprintf("demo-%02d.txt", i)
		req.Flags = core.FlagCreate
		req.Size = len(payload)
		req.Data = payload
		if err := cli.Submit(mount, req); err != nil || req.Err != nil {
			fatal("demo write: %v / %v", err, req.Err)
		}
	}
	req := core.NewRequest(core.OpRead)
	req.Path = "demo-00.txt"
	req.Size = len(payload)
	req.Data = make([]byte, len(payload))
	if err := cli.Submit(mount, req); err != nil || req.Err != nil {
		fatal("demo read: %v / %v", err, req.Err)
	}
	fmt.Printf("demo: wrote 100 files + read back %q\n", string(req.Data[:req.Result]))
	fmt.Printf("demo: modeled read latency %v, wall time %v\n", req.Latency(), time.Since(start).Round(time.Millisecond))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
