// Command labbench regenerates the paper's tables and figures from the
// simulated reproduction. Run `labbench -list` to see experiment names,
// `labbench -exp anatomy` for one experiment, or `labbench -exp all`
// (default) for everything. `-quick` shrinks workload sizes for fast smoke
// runs; `-full` uses the paper-faithful scaled sizes. `-telemetry` runs the
// probe workload and dumps the runtime's full telemetry snapshot instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	gort "runtime"
	"runtime/pprof"
	"time"

	"labstor/internal/device"
	"labstor/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(quick bool) (*experiments.Result, error)
}

var catalog = []experiment{
	{"anatomy", "Fig 4(a): I/O stack anatomy", func(quick bool) (*experiments.Result, error) {
		return experiments.Anatomy()
	}},
	{"upgrade", "Table I: live upgrade overhead", func(quick bool) (*experiments.Result, error) {
		msgs := 100000
		if quick {
			msgs = 10000
		}
		return experiments.LiveUpgrade(msgs, []int{0, 256, 512, 1024})
	}},
	{"dynamiccpu", "Fig 5(a): dynamic CPU allocation", func(quick bool) (*experiments.Result, error) {
		per := int64(8 << 20)
		if quick {
			per = 2 << 20
		}
		return experiments.DynamicCPU([]int{1, 2, 4, 8, 16}, per)
	}},
	{"partition", "Fig 5(b): request partitioning", func(quick bool) (*experiments.Result, error) {
		files, reqs, bytes := 500, 2, 2<<20
		if quick {
			files, reqs, bytes = 150, 1, 1<<20
		}
		return experiments.Partitioning([]int{1, 2, 4, 8}, files, reqs, bytes)
	}},
	{"storageapi", "Fig 6: storage API performance", func(quick bool) (*experiments.Result, error) {
		ops := 400
		if quick {
			ops = 100
		}
		return experiments.StorageAPI(ops)
	}},
	{"metadata", "Fig 7: metadata throughput", func(quick bool) (*experiments.Result, error) {
		files := 400
		if quick {
			files = 100
		}
		return experiments.Metadata([]int{1, 2, 4, 8, 16, 24}, files)
	}},
	{"schedulers", "Fig 8 / Table II: I/O schedulers", func(quick bool) (*experiments.Result, error) {
		l, t := 400, 128
		if quick {
			l, t = 60, 64
		}
		return experiments.Schedulers(l, t)
	}},
	{"pfs", "Fig 9(a): PFS over customized LabStacks", func(quick bool) (*experiments.Result, error) {
		ranks, steps, bytes := 16, 4, int64(2<<20)
		if quick {
			ranks, steps, bytes = 8, 2, 1<<20
		}
		return experiments.PFS(ranks, steps, bytes)
	}},
	{"labios", "Fig 9(b): LABIOS label store", func(quick bool) (*experiments.Result, error) {
		labels := 400
		if quick {
			labels = 100
		}
		return experiments.Labios(labels)
	}},
	{"ablations", "Ablations: sharding / exec mode / cache / readahead", func(quick bool) (*experiments.Result, error) {
		return experiments.Ablations()
	}},
	{"filebench", "Fig 9(c,d): Filebench personalities", func(quick bool) (*experiments.Result, error) {
		iters := 8
		devs := []device.Class{device.NVMe, device.PMEM}
		if quick {
			iters = 3
			devs = []device.Class{device.NVMe}
		}
		return experiments.Filebench(iters, devs)
	}},
	{"hotpath", "Hot-path overhead: batched vs unbatched, pooled vs heap", func(quick bool) (*experiments.Result, error) {
		ops := 200000
		if quick {
			ops = 40000
		}
		return experiments.Hotpath(ops, 8)
	}},
	{"contention", "Device-store lock striping vs global mutex (wall clock)", func(quick bool) (*experiments.Result, error) {
		ops := 300000
		if quick {
			ops = 20000
		}
		return experiments.Contention([]int{1, 2, 4, 8}, ops, 4096)
	}},
	{"zerocopy", "Zero-copy data path ladder + NUMA-local placement", func(quick bool) (*experiments.Result, error) {
		ops := 300000
		if quick {
			ops = 20000
		}
		return experiments.Zerocopy([]int{1, 4, 8}, ops, 4096)
	}},
	{"observe", "Observability plane overhead vs telemetry-only baseline", func(quick bool) (*experiments.Result, error) {
		ops := 2000000
		if quick {
			ops = 200000
		}
		return experiments.Observe(ops)
	}},
	{"attribution", "Always-on latency attribution overhead vs profiling-off baseline", func(quick bool) (*experiments.Result, error) {
		ops := 2000000
		if quick {
			ops = 200000
		}
		return experiments.Attribution(ops)
	}},
	{"serve", "Network front end: connection ladder, tenant rate limits, shard routing", func(quick bool) (*experiments.Result, error) {
		conns, ops := []int{100, 1000, 4000}, 50
		if quick {
			conns, ops = []int{100, 1000}, 20
		}
		return experiments.Serve(conns, ops)
	}},
	{"pushdown", "Computation pushdown: selectivity ladder, bytes moved vs client-side filtering", func(quick bool) (*experiments.Result, error) {
		recs := 512
		if quick {
			recs = 200
		}
		return experiments.Pushdown(recs, 4096, 8)
	}},
}

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all'")
	quick := flag.Bool("quick", false, "shrink workload sizes for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	telem := flag.Bool("telemetry", false, "run the probe workload and dump the telemetry snapshot")
	jsonOut := flag.String("json", "", "write the Values of the experiments run to FILE as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to FILE")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			gort.GC() // flush recent frees so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *telem {
		ops := 500
		if *quick {
			ops = 100
		}
		snap, err := experiments.TelemetryProbe(nil, ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry probe failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(snap.String())
		return
	}

	if *list {
		for _, e := range catalog {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	ran := 0
	values := make(map[string]map[string]float64)
	for _, e := range catalog {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %s wall time)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		if len(res.Values) > 0 {
			values[e.name] = res.Values
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(values, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal values: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote values of %d experiment(s) to %s\n", len(values), *jsonOut)
	}
}
