// Command labctl inspects and validates LabStor artifacts — the developer
// face of the paper's mount/modify tooling:
//
//	labctl types                  list registered LabMod types
//	labctl validate <stack.yaml>  parse + instantiate + validate a LabStack
//	labctl show <stack.yaml>      print the parsed DAG
//	labctl config <runtime.yaml>  parse + echo a runtime configuration
//	labctl stats <runtime.yaml>   boot the runtime, run a probe workload,
//	                              dump the telemetry snapshot (-json for JSON)
//
// Validation instantiates the stack's modules against placeholder devices,
// so attribute errors (missing devices, bad modes, unknown types) surface
// before deployment.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/experiments"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/spec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "types":
		types := core.Types()
		sort.Strings(types)
		for _, t := range types {
			fmt.Println(t)
		}
	case "validate", "show":
		if len(os.Args) < 3 {
			usage()
		}
		raw, err := os.ReadFile(os.Args[2])
		if err != nil {
			fatal("%v", err)
		}
		ss, err := spec.ParseStack(string(raw))
		if err != nil {
			fatal("parse: %v", err)
		}
		if os.Args[1] == "show" {
			show(ss)
			return
		}
		if err := validate(ss); err != nil {
			fatal("validate: %v", err)
		}
		fmt.Printf("%s: OK (%d LabMods, %s exec)\n", ss.Mount, len(ss.Vertices), ss.Rules.ExecMode)
	case "config":
		if len(os.Args) < 3 {
			usage()
		}
		raw, err := os.ReadFile(os.Args[2])
		if err != nil {
			fatal("%v", err)
		}
		cfg, err := spec.ParseRuntimeConfig(string(raw))
		if err != nil {
			fatal("parse: %v", err)
		}
		fmt.Printf("workers: %d\nqueue_depth: %d\nbatch: %d\npolicy: %s\nrebalance_ms: %d\n",
			cfg.Workers, cfg.QueueDepth, cfg.Batch, cfg.Orchestrator.Policy, cfg.Orchestrator.RebalanceMs)
		for _, d := range cfg.Devices {
			fmt.Printf("device: %s class=%s capacity=%dMiB stripes=%d\n", d.Name, d.Class, d.Capacity>>20, d.Stripes)
		}
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func show(ss *spec.StackSpec) {
	fmt.Printf("mount: %s\nexec: %s  priority: %d\n", ss.Mount, ss.Rules.ExecMode, ss.Rules.Priority)
	for i, v := range ss.Vertices {
		arrow := "└─"
		if i == 0 {
			arrow = "┌─"
		} else if i < len(ss.Vertices)-1 {
			arrow = "├─"
		}
		attrs := make([]string, 0, len(v.Attrs))
		for k, val := range v.Attrs {
			attrs = append(attrs, k+"="+val)
		}
		sort.Strings(attrs)
		fmt.Printf("%s %-12s %-26s %s -> %s\n", arrow, v.UUID, v.Type, strings.Join(attrs, ","), strings.Join(v.Outputs, ","))
	}
}

// validate instantiates the stack over placeholder devices: every device
// attribute referenced by a vertex is materialized as a small NVMe sim.
func validate(ss *spec.StackSpec) error {
	env := core.NewEnv(nil)
	for _, v := range ss.Vertices {
		if name, ok := v.Attrs["device"]; ok && name != "" {
			if _, err := env.Device(name); err != nil {
				// PMEM placeholders satisfy every driver, including DAX (byte-addressable).
				env.AddDevice(device.New(name, device.PMEM, 256<<20))
			}
		}
	}
	reg := core.NewRegistry()
	for _, v := range ss.Vertices {
		if _, err := reg.Instantiate(v.UUID, v.Type, core.Config{Attrs: v.Attrs}, env); err != nil {
			return err
		}
	}
	return ss.Stack().Validate(reg)
}

// stats boots a Runtime from the given configuration, drives the telemetry
// probe workload through it and prints the resulting snapshot.
func stats(args []string) {
	asJSON := false
	var path string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		path = a
	}
	if path == "" {
		usage()
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal("stats: cannot read runtime config %q: %v", path, err)
	}
	cfg, err := spec.ParseRuntimeConfig(string(raw))
	if err != nil {
		fatal("stats: parse %q: %v", path, err)
	}
	snap, err := experiments.TelemetryProbe(cfg, 0)
	if err != nil {
		fatal("stats: %v", err)
	}
	if asJSON {
		out, err := snap.JSON()
		if err != nil {
			fatal("stats: %v", err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(snap.String())
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: labctl types | validate <stack.yaml> | show <stack.yaml> | config <runtime.yaml> | stats [-json] <runtime.yaml>")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
