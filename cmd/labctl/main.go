// Command labctl inspects and validates LabStor artifacts — the developer
// face of the paper's mount/modify tooling. Run `labctl` with no arguments
// for the generated subcommand listing.
//
// Validation instantiates the stack's modules against placeholder devices,
// so attribute errors (missing devices, bad modes, unknown types) surface
// before deployment.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/experiments"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/spec"
)

// command is one labctl subcommand; the usage text is generated from this
// table so help never drifts from what main dispatches.
type command struct {
	name string
	args string
	desc string
	run  func(args []string)
}

var commands []command

func init() {
	commands = []command{
		{"types", "", "list registered LabMod types", cmdTypes},
		{"validate", "<stack.yaml>", "parse + instantiate + validate a LabStack", cmdValidate},
		{"show", "<stack.yaml>", "print the parsed DAG", cmdShow},
		{"config", "<runtime.yaml>", "parse + echo a runtime configuration", cmdConfig},
		{"stats", "[-json] <runtime.yaml> | -addr <host:port>", "probe a booted runtime (or scrape a live one) and dump the telemetry snapshot", cmdStats},
		{"top", "[-interval 1s] [-count N] <host:port>", "refreshing terminal view of a live runtime's /snapshot", cmdTop},
		{"profile", "[-json] <host:port>", "latency-attribution tables from a live runtime's /profile", cmdProfile},
		{"serve", "-addr <host:port> [-tenant t] <ping|msg|put|get|del|has> [mount] [key] [value]", "one-shot RPC against a live serving front end", cmdServe},
		{"scan", "-addr <host:port> [-tenant t] <mount> <program> [prefix|path]", "run a pushdown scan (filter/aggregate program) against a live front end", cmdScan},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	for _, c := range commands {
		if c.name == os.Args[1] {
			c.run(os.Args[2:])
			return
		}
	}
	usage()
}

func cmdTypes(_ []string) {
	types := core.Types()
	sort.Strings(types)
	for _, t := range types {
		fmt.Println(t)
	}
}

func cmdValidate(args []string) {
	ss := loadStack("validate", args)
	if err := validate(ss); err != nil {
		fatal("validate: %v", err)
	}
	fmt.Printf("%s: OK (%d LabMods, %s exec)\n", ss.Mount, len(ss.Vertices), ss.Rules.ExecMode)
}

func cmdShow(args []string) {
	show(loadStack("show", args))
}

func cmdConfig(args []string) {
	if len(args) < 1 {
		usageFor("config")
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		fatal("%v", err)
	}
	cfg, err := spec.ParseRuntimeConfig(string(raw))
	if err != nil {
		fatal("parse: %v", err)
	}
	fmt.Printf("workers: %d\nqueue_depth: %d\nbatch: %d\npolicy: %s\nrebalance_ms: %d\n",
		cfg.Workers, cfg.QueueDepth, cfg.Batch, cfg.Orchestrator.Policy, cfg.Orchestrator.RebalanceMs)
	if cfg.Observe.Addr != "" {
		fmt.Printf("observe: %s pprof=%v\n", cfg.Observe.Addr, cfg.Observe.Pprof)
	}
	if cfg.Serve.Addr != "" {
		if len(cfg.Serve.Shards) > 0 {
			fmt.Printf("serve: %s router shards=%v\n", cfg.Serve.Addr, cfg.Serve.Shards)
		} else {
			fmt.Printf("serve: %s batch=%d tenants=%d\n", cfg.Serve.Addr, cfg.Serve.Batch, len(cfg.Serve.Tenants))
		}
	}
	if len(cfg.Pushdown.Programs) > 0 || len(cfg.Pushdown.Allow) > 0 {
		fmt.Printf("pushdown: programs=%d allow=%v max_scan_mb=%d tenants=%d\n",
			len(cfg.Pushdown.Programs), cfg.Pushdown.Allow, cfg.Pushdown.MaxScanMB, len(cfg.Pushdown.Tenants))
	}
	for _, s := range cfg.SLOs {
		fmt.Printf("slo: %s p99_us=%g max_err_rate=%g\n", s.Stack, s.P99Us, s.MaxErrRate)
	}
	for _, d := range cfg.Devices {
		fmt.Printf("device: %s class=%s capacity=%dMiB stripes=%d\n", d.Name, d.Class, d.Capacity>>20, d.Stripes)
	}
}

func loadStack(cmd string, args []string) *spec.StackSpec {
	if len(args) < 1 {
		usageFor(cmd)
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		fatal("%v", err)
	}
	ss, err := spec.ParseStack(string(raw))
	if err != nil {
		fatal("parse: %v", err)
	}
	return ss
}

func show(ss *spec.StackSpec) {
	fmt.Printf("mount: %s\nexec: %s  priority: %d\n", ss.Mount, ss.Rules.ExecMode, ss.Rules.Priority)
	for i, v := range ss.Vertices {
		arrow := "└─"
		if i == 0 {
			arrow = "┌─"
		} else if i < len(ss.Vertices)-1 {
			arrow = "├─"
		}
		attrs := make([]string, 0, len(v.Attrs))
		for k, val := range v.Attrs {
			attrs = append(attrs, k+"="+val)
		}
		sort.Strings(attrs)
		fmt.Printf("%s %-12s %-26s %s -> %s\n", arrow, v.UUID, v.Type, strings.Join(attrs, ","), strings.Join(v.Outputs, ","))
	}
}

// validate instantiates the stack over placeholder devices: every device
// attribute referenced by a vertex is materialized as a small NVMe sim.
func validate(ss *spec.StackSpec) error {
	env := core.NewEnv(nil)
	for _, v := range ss.Vertices {
		if name, ok := v.Attrs["device"]; ok && name != "" {
			if _, err := env.Device(name); err != nil {
				// PMEM placeholders satisfy every driver, including DAX (byte-addressable).
				env.AddDevice(device.New(name, device.PMEM, 256<<20))
			}
		}
	}
	reg := core.NewRegistry()
	for _, v := range ss.Vertices {
		if _, err := reg.Instantiate(v.UUID, v.Type, core.Config{Attrs: v.Attrs}, env); err != nil {
			return err
		}
	}
	return ss.Stack().Validate(reg)
}

// cmdStats boots a Runtime from a configuration and probes it, or — with
// -addr — scrapes a live runtime's /snapshot endpoint instead.
func cmdStats(args []string) {
	asJSON := false
	var path, addr string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-json", "--json":
			asJSON = true
		case "-addr", "--addr":
			i++
			if i >= len(args) {
				usageFor("stats")
			}
			addr = args[i]
		default:
			path = a
		}
	}
	if addr != "" {
		snap, err := fetchSnapshot(addr)
		if err != nil {
			fatal("stats: %v", err)
		}
		printSnapshot(snap, asJSON)
		return
	}
	if path == "" {
		usageFor("stats")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal("stats: cannot read runtime config %q: %v", path, err)
	}
	cfg, err := spec.ParseRuntimeConfig(string(raw))
	if err != nil {
		fatal("stats: parse %q: %v", path, err)
	}
	snap, err := experiments.TelemetryProbe(cfg, 0)
	if err != nil {
		fatal("stats: %v", err)
	}
	printSnapshot(snap, asJSON)
}

// usageFor prints one command's usage line — bad arguments to a known
// command should not bury the answer in the full table.
func usageFor(name string) {
	for _, c := range commands {
		if c.name == name {
			fmt.Fprintf(os.Stderr, "usage: labctl %s\n", strings.TrimSpace(c.name+" "+c.args))
			os.Exit(2)
		}
	}
	usage()
}

func usage() {
	var b strings.Builder
	b.WriteString("usage: labctl <command> [arguments]\n\ncommands:\n")
	width := 0
	for _, c := range commands {
		if n := len(c.name + " " + c.args); n > width {
			width = n
		}
	}
	for _, c := range commands {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, strings.TrimSpace(c.name+" "+c.args), c.desc)
	}
	fmt.Fprint(os.Stderr, b.String())
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
