package main

import (
	"encoding/json"
	"fmt"

	"labstor/internal/obs"
	"labstor/internal/stats"
	"labstor/internal/telemetry"
)

// cmdProfile scrapes a live runtime's /profile endpoint and renders the
// per-stack latency-attribution tables: where each stack's time goes
// (queue wait vs CPU vs device), broken down per op from full counts and
// per stage from sampled spans (`labctl profile <addr>`).
func cmdProfile(args []string) {
	asJSON := false
	var addr string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			asJSON = true
		default:
			addr = a
		}
	}
	if addr == "" {
		usageFor("profile")
	}

	var resp obs.ProfileResponse
	if err := fetchJSON(addr, "/profile", &resp); err != nil {
		fatal("profile: %v", err)
	}
	if asJSON {
		out, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(string(out))
		return
	}
	if len(resp.Stacks) == 0 {
		fmt.Println("no attribution data (profiling disabled, or no requests yet)")
	}
	for i, sa := range resp.Stacks {
		if i > 0 {
			fmt.Println()
		}
		renderAttribution(sa)
	}
	renderCopySites(resp)
}

// renderCopySites prints the zero-copy audit: every data-path site that
// still memcpys payload bytes, with copies-per-request derived from the
// attribution request totals.
func renderCopySites(resp obs.ProfileResponse) {
	if len(resp.CopySites) == 0 {
		return
	}
	var reqs int64
	for _, sa := range resp.Stacks {
		reqs += sa.Requests
	}
	fmt.Println("\nCOPY SITES")
	t := &stats.Table{Header: []string{"site", "copies", "bytes", "copies/op"}}
	for _, c := range resp.CopySites {
		perOp := "-"
		if reqs > 0 {
			perOp = fmt.Sprintf("%.3f", float64(c.Count)/float64(reqs))
		}
		t.AddRowf(c.Site, c.Count, c.Bytes, perOp)
	}
	fmt.Print(indent(t.String(), "  "))
}

func renderAttribution(sa telemetry.StackAttribution) {
	fmt.Printf("%s — %d requests (%d errors), mean %.1fus\n", sa.Stack, sa.Requests, sa.Errors, sa.MeanLatencyUS)
	fmt.Printf("  queue_wait %.1f%%  cpu %.1f%%  device %.1f%%  (sampled %d, tail retained %d)\n",
		sa.QueueWaitPct, sa.CPUPct, sa.DevicePct, sa.Sampled, sa.TailRetained)

	if len(sa.Ops) > 0 {
		fmt.Println("\n  OPS")
		t := &stats.Table{Header: []string{"op", "requests", "errors", "mean_us", "total_us", "wait_us", "cpu_us", "device_us"}}
		for _, op := range sa.Ops {
			t.AddRowf(op.Op, op.Requests, op.Errors, op.MeanUS, op.TotalUS, op.QueueWaitUS, op.CPUUS, op.DeviceUS)
		}
		fmt.Print(indent(t.String(), "  "))
	}

	if len(sa.Stages) > 0 {
		fmt.Println("\n  STAGES (critical path, sampled)")
		t := &stats.Table{Header: []string{"stage", "share%", "count", "mean_us", "p50_us", "p99_us", "total_us"}}
		for _, st := range sa.Stages {
			t.AddRowf(st.Stage, st.SharePct, st.Count, st.MeanUS, st.P50US, st.P99US, st.TotalUS)
		}
		fmt.Print(indent(t.String(), "  "))
	}
}

func indent(s, prefix string) string {
	var out []byte
	atLineStart := true
	for i := 0; i < len(s); i++ {
		if atLineStart && s[i] != '\n' {
			out = append(out, prefix...)
		}
		out = append(out, s[i])
		atLineStart = s[i] == '\n'
	}
	return string(out)
}
