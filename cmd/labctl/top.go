package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"labstor/internal/runtime"
)

// fetchJSON pulls one endpoint from a live runtime's observability server
// and decodes the response into v. A transport-level failure (nothing
// listening, DNS, timeout) comes back as a clean "runtime not reachable"
// error instead of Go's raw URL-error chain — the operator typo'd an
// address or the runtime is down, and either way the fix is the same.
func fetchJSON(addr, endpoint string, v any) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + endpoint
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("runtime not reachable at %s (is the observe server running?)", addr)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	return nil
}

// fetchSnapshot pulls /snapshot from a live runtime's observability server
// and decodes it into the same typed tree the in-process path produces.
func fetchSnapshot(addr string) (*runtime.Snapshot, error) {
	var snap runtime.Snapshot
	if err := fetchJSON(addr, "/snapshot", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func printSnapshot(snap *runtime.Snapshot, asJSON bool) {
	if asJSON {
		out, err := snap.JSON()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(snap.String())
}

// cmdTop renders a refreshing terminal view of a live runtime, polled from
// its /snapshot endpoint (`labctl top <addr>`).
func cmdTop(args []string) {
	interval := time.Second
	count := 0 // 0 = refresh until interrupted
	var addr string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-interval", "--interval":
			i++
			if i >= len(args) {
				usageFor("top")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil || d <= 0 {
				fatal("top: bad -interval %q", args[i])
			}
			interval = d
		case "-count", "--count":
			i++
			if i >= len(args) {
				usageFor("top")
			}
			if _, err := fmt.Sscanf(args[i], "%d", &count); err != nil || count < 0 {
				fatal("top: bad -count %q", args[i])
			}
		default:
			addr = a
		}
	}
	if addr == "" {
		usageFor("top")
	}

	var prevProcessed int64
	prevWhen := time.Now()
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := fetchSnapshot(addr)
		if err != nil {
			fatal("top: %v", err)
		}
		now := time.Now()
		var processed int64
		for _, w := range snap.Workers {
			processed += w.Processed
		}
		rate := float64(0)
		if i > 0 {
			if dt := now.Sub(prevWhen).Seconds(); dt > 0 {
				rate = float64(processed-prevProcessed) / dt
			}
		}
		prevProcessed, prevWhen = processed, now

		if count != 1 {
			fmt.Print("\033[H\033[2J") // home + clear: full-screen refresh
		}
		renderTop(snap, addr, processed, rate)
	}
}

// renderTop prints the compact live view: one screen of the numbers an
// operator watches — workers, queue depths, SLO verdicts, latency summary
// and the flight-recorder tail.
func renderTop(snap *runtime.Snapshot, addr string, processed int64, rate float64) {
	fmt.Printf("labstor top — %s — %s\n", addr, time.Now().Format("15:04:05"))
	fmt.Printf("policy=%s active_workers=%d rebalances=%d processed=%d",
		snap.Orchestrator.Policy, snap.Orchestrator.ActiveWorkers, snap.Orchestrator.Rebalances, processed)
	if rate > 0 {
		fmt.Printf(" (%.0f req/s)", rate)
	}
	fmt.Println()

	fmt.Println("\nWORKERS")
	fmt.Printf("  %-4s %-7s %-10s %-12s %-8s %s\n", "id", "active", "processed", "busy", "idle%", "queues")
	for _, w := range snap.Workers {
		qs := make([]string, len(w.Queues))
		for i, q := range w.Queues {
			qs[i] = fmt.Sprint(q)
		}
		fmt.Printf("  %-4d %-7v %-10d %-12v %-8.1f %s\n",
			w.ID, w.Active, w.Processed, w.BusyVirt, 100*w.IdleRatio(), strings.Join(qs, ","))
	}

	if len(snap.Queues) > 0 {
		fmt.Println("\nQUEUES")
		fmt.Printf("  %-4s %-13s %-9s %-9s %-9s %s\n", "id", "kind", "sq_depth", "inflight", "done", "est_us")
		for _, q := range snap.Queues {
			fmt.Printf("  %-4d %-13v %-9d %-9d %-9d %.1f\n",
				q.ID, q.Kind, q.SQ.Depth, q.Inflight, q.CQ.Enqueued, q.EstUS)
		}
	}

	if h, ok := snap.Metrics.Histograms["request.latency_us"]; ok {
		fmt.Println("\nLATENCY (sampled, us)")
		fmt.Printf("  count=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f\n",
			h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.P999, h.Max)
	}

	if len(snap.SLOs) > 0 {
		fmt.Println("\nSLOS")
		fmt.Printf("  %-20s %-8s %-12s %-12s %s\n", "stack", "state", "p99_us", "err_rate", "breaches")
		for _, s := range snap.SLOs {
			state := "OK"
			if !s.OK {
				state = "BREACH"
			}
			fmt.Printf("  %-20s %-8s %-12.1f %-12.4f %d\n", s.Stack, state, s.P99US, s.ErrRate, s.Breaches)
		}
	}

	if n := len(snap.Events); n > 0 {
		const show = 6
		fmt.Printf("\nEVENTS (last %d of %d retained)\n", minInt(show, n), n)
		for _, e := range snap.Events[maxInt(0, n-show):] {
			fmt.Println("  " + e.String())
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
