package main

import (
	"fmt"
	"os"

	"labstor/internal/core"
	"labstor/internal/mods/pushdown"
	"labstor/internal/serve"
)

// cmdServe fires one RPC at a live serving front end (or router) and prints
// the outcome — the smoke-test face of the wire protocol.
//
//	labctl serve -addr 127.0.0.1:7600 put kv::/bench k1 hello
//	labctl serve -addr 127.0.0.1:7600 get kv::/bench k1
//	labctl serve -addr 127.0.0.1:7600 ping
func cmdServe(args []string) {
	var addr, tenant string
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-addr", "--addr":
			i++
			if i >= len(args) {
				usageFor("serve")
			}
			addr = args[i]
		case "-tenant", "--tenant":
			i++
			if i >= len(args) {
				usageFor("serve")
			}
			tenant = args[i]
		default:
			rest = append(rest, a)
		}
	}
	if addr == "" || len(rest) == 0 {
		usageFor("serve")
	}
	if tenant == "" {
		tenant = "labctl"
	}

	c, err := serve.Dial(addr, tenant)
	if err != nil {
		fatal("serve: dial %s: %v", addr, err)
	}
	defer c.Close()

	op := rest[0]
	if op == "ping" {
		if err := c.Ping(); err != nil {
			fatal("serve: ping: %v", err)
		}
		fmt.Println("pong")
		return
	}
	if len(rest) < 2 {
		usageFor("serve")
	}
	rf := serve.ReqFrame{Mount: rest[1]}
	switch op {
	case "msg":
		rf.Op = core.OpMessage
	case "put":
		if len(rest) < 4 {
			usageFor("serve")
		}
		rf.Op, rf.Key, rf.Payload = core.OpPut, rest[2], []byte(rest[3])
	case "get":
		if len(rest) < 3 {
			usageFor("serve")
		}
		rf.Op, rf.Key = core.OpGet, rest[2]
	case "del":
		if len(rest) < 3 {
			usageFor("serve")
		}
		rf.Op, rf.Key = core.OpDel, rest[2]
	case "has":
		if len(rest) < 3 {
			usageFor("serve")
		}
		rf.Op, rf.Key = core.OpHas, rest[2]
	default:
		fatal("serve: unknown op %q (want ping|msg|put|get|del|has)", op)
	}

	res, err := c.DoRetry(&rf, 8)
	if err != nil {
		fatal("serve: %v", err)
	}
	if e := res.Err(); e != nil {
		fatal("serve: %s: %v", op, e)
	}
	switch op {
	case "get":
		fmt.Printf("%s\n", res.Resp.Value[:res.Resp.Result])
	default:
		fmt.Printf("OK result=%d\n", res.Resp.Result)
	}
}

// cmdScan runs one pushdown scan against a live front end: a registered
// program (name or pd:<hash> ref) filters or aggregates where the data
// lives, and only the result crosses the wire.
//
//	labctl scan -addr 127.0.0.1:7600 kv::/bench errs logs/
//	labctl scan -addr 127.0.0.1:7600 fs::/data grep-error app.log
func cmdScan(args []string) {
	var addr, tenant string
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-addr", "--addr":
			i++
			if i >= len(args) {
				usageFor("scan")
			}
			addr = args[i]
		case "-tenant", "--tenant":
			i++
			if i >= len(args) {
				usageFor("scan")
			}
			tenant = args[i]
		default:
			rest = append(rest, a)
		}
	}
	if addr == "" || len(rest) < 2 {
		usageFor("scan")
	}
	if tenant == "" {
		tenant = "labctl"
	}
	mount, prog := rest[0], rest[1]
	c, err := serve.Dial(addr, tenant)
	if err != nil {
		fatal("scan: dial %s: %v", addr, err)
	}
	defer c.Close()

	rf := serve.ReqFrame{Op: core.OpScan, Mount: mount, Prog: prog}
	if len(rest) > 2 {
		// KVS stacks treat this as a key prefix, FS stacks as a file path.
		rf.Key, rf.Path = rest[2], rest[2]
	}
	res, err := c.DoRetry(&rf, 8)
	if err != nil {
		fatal("scan: %v", err)
	}
	if e := res.Err(); e != nil {
		fatal("scan: %v", e)
	}
	if len(res.Resp.Value) == 0 {
		// Aggregate program: the scalar is the whole answer.
		fmt.Printf("result=%d\n", res.Resp.Result)
		return
	}
	// Filter program: print matches. Try KV framing first; fall back to raw.
	if err := pushdown.DecodeKV(res.Resp.Value, func(key string, val []byte) error {
		fmt.Printf("%s\t%d bytes\n", key, len(val))
		return nil
	}); err != nil {
		os.Stdout.Write(res.Resp.Value)
	}
}
