package labstor_test

import (
	"bytes"
	"testing"

	"labstor"
)

const testStack = `
mount: fs::/t
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

const testKVStack = `
mount: kv::/t
mods:
  - uuid: kvs
    type: labstor.labkvs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func newPlatform(t *testing.T) *labstor.Platform {
	t.Helper()
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	t.Cleanup(p.Close)
	p.AddDevice("nvme0", labstor.NVMe, 128<<20)
	if _, err := p.MountSpec(testStack); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MountSpec(testKVStack); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeFileAPI(t *testing.T) {
	p := newPlatform(t)
	s := p.Connect()
	defer s.Close()

	f, err := s.Create("fs::/t/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("facade file API")
	if n, err := f.WriteAt(msg, 0); err != nil || n != len(msg) {
		t.Fatalf("write %d %v", n, err)
	}
	if _, err := f.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg)+1)
	if n, err := f.ReadAt(buf, 0); err != nil || n != len(buf) {
		t.Fatalf("read %d %v", n, err)
	}
	if !bytes.Equal(buf, append(msg, '!')) {
		t.Fatalf("content %q", buf)
	}
	if sz, _ := f.Size(); sz != int64(len(msg)+1) {
		t.Fatalf("size %d", sz)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Path() != "fs::/t/doc.txt" {
		t.Fatal("path")
	}

	// Reopen through Open.
	g, err := s.Open("fs::/t/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := g.Size(); sz != int64(len(msg)+1) {
		t.Fatal("reopened size")
	}
}

func TestFacadePathOps(t *testing.T) {
	p := newPlatform(t)
	s := p.Connect()
	if err := s.Mkdir("fs::/t/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("fs::/t/dir/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("fs::/t/dir/a", "fs::/t/dir/b"); err != nil {
		t.Fatal(err)
	}
	names, err := s.ReadDir("fs::/t/dir")
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Fatalf("readdir %v %v", names, err)
	}
	if err := s.Remove("fs::/t/dir/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("fs::/t/dir/b"); err == nil {
		t.Fatal("stat of removed file succeeded")
	}
	// Rename across mounts is rejected.
	if err := s.Rename("fs::/t/x", "kv::/t/x"); err == nil {
		t.Fatal("cross-stack rename succeeded")
	}
	// Unserved path.
	if _, err := s.Open("nowhere::/x"); err == nil {
		t.Fatal("unserved path opened")
	}
}

func TestFacadeKVAPI(t *testing.T) {
	p := newPlatform(t)
	s := p.Connect()
	kv := s.KV("kv::/t")
	if err := kv.Put("alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("beta", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get("alpha")
	if err != nil || string(v) != "1" {
		t.Fatalf("get %q %v", v, err)
	}
	ok, _ := kv.Has("alpha")
	if !ok {
		t.Fatal("has")
	}
	keys, _ := kv.Keys("")
	if len(keys) != 2 {
		t.Fatalf("keys %v", keys)
	}
	if err := kv.Del("alpha"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := kv.Has("alpha"); ok {
		t.Fatal("deleted key exists")
	}
}

func TestFacadeMountManagement(t *testing.T) {
	p := newPlatform(t)
	if len(p.Mounts()) != 2 {
		t.Fatalf("mounts %v", p.Mounts())
	}
	if err := p.Unmount("kv::/t"); err != nil {
		t.Fatal(err)
	}
	if len(p.Mounts()) != 1 {
		t.Fatal("unmount")
	}
	if p.Runtime() == nil {
		t.Fatal("runtime accessor")
	}
}

func TestFacadeVirtualClock(t *testing.T) {
	p := newPlatform(t)
	s := p.Connect()
	before := s.Clock()
	f, _ := s.Create("fs::/t/clk")
	f.WriteAt(make([]byte, 8192), 0)
	if s.Clock() <= before {
		t.Fatal("virtual clock did not advance")
	}
}

func TestFacadePermissionsIntegration(t *testing.T) {
	p := labstor.NewPlatform(labstor.Config{Workers: 1})
	defer p.Close()
	p.AddDevice("nvme0", labstor.NVMe, 64<<20)
	if _, err := p.MountSpec(`
mount: fs::/sec
mods:
  - uuid: perm
    type: labstor.perm
    attrs:
      owner: "0"
      mode: "0600"
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`); err != nil {
		t.Fatal(err)
	}
	root := p.ConnectAs(0, 0)
	if _, err := root.Create("fs::/sec/x"); err != nil {
		t.Fatal(err)
	}
	user := p.ConnectAs(1001, 1001)
	if _, err := user.Open("fs::/sec/x"); err == nil {
		t.Fatal("unprivileged open succeeded")
	}
}
