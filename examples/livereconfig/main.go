// Live reconfiguration example: the paper's "dynamic semantics imposition"
// and live-upgrade story in one program.
//
//  1. An application streams writes through a LabStack.
//  2. A compression LabMod is *inserted into the running stack* — following
//     requests are transparently compressed.
//  3. The I/O scheduler is *hot-swapped* (NoOp -> blk-switch) via the
//     Module Manager's centralized live-upgrade protocol, without stopping
//     the stream.
//  4. The Runtime is crashed and restarted; the app's in-flight request
//     blocks in Wait, StateRepair runs, and the stream continues.
package main

import (
	"fmt"
	"log"

	"labstor"
	"labstor/internal/core"
	"labstor/internal/mods/iosched"
	"labstor/internal/runtime"
)

const stackSpec = `
mount: fs::/stream
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 8
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func main() {
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	defer p.Close()
	p.AddDevice("nvme0", labstor.NVMe, 256<<20)
	if _, err := p.MountSpec(stackSpec); err != nil {
		log.Fatalf("mount: %v", err)
	}
	rt := p.Runtime()
	sess := p.Connect()

	writeChunk := func(i int) {
		f, err := sess.Create(fmt.Sprintf("fs::/stream/chunk-%03d", i))
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		data := make([]byte, 16<<10) // low-entropy, compressible
		for j := range data {
			data[j] = byte(j % 7)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			log.Fatalf("write: %v", err)
		}
		// Sync each chunk: a crashed Runtime replays LabFS from its
		// on-device metadata log, so unsynced creates would (correctly)
		// vanish in phase 4.
		if err := f.Sync(); err != nil {
			log.Fatalf("sync: %v", err)
		}
	}

	for i := 0; i < 10; i++ {
		writeChunk(i)
	}
	fmt.Println("phase 1: 10 chunks written through the plain stack")

	// Phase 2: insert a compression LabMod after the filesystem, live.
	err := rt.ModifyStack("fs::/stream", "fs", &core.Vertex{
		UUID: "zip", Type: "labstor.compress", Attrs: map[string]string{"level": "1"},
	}, "")
	if err != nil {
		log.Fatalf("modify_stack: %v", err)
	}
	for i := 10; i < 20; i++ {
		writeChunk(i)
	}
	stack, _ := rt.Namespace.Lookup("fs::/stream")
	fmt.Printf("phase 2: compression inserted live; stack is now %d mods deep\n", stack.Len())

	// Phase 3: hot-swap the I/O scheduler via the live-upgrade protocol.
	gen := rt.Registry.Generation("sched")
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
		UUID:  "sched",
		Build: func() core.Module { return &iosched.BlkSwitch{} },
		Mode:  runtime.Centralized,
	}); err != nil {
		log.Fatalf("upgrade: %v", err)
	}
	for i := 20; i < 30; i++ {
		writeChunk(i)
	}
	fmt.Printf("phase 3: scheduler hot-swapped (registry generation %d -> %d)\n",
		gen, rt.Registry.Generation("sched"))

	// Phase 4: crash the Runtime mid-stream and recover.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 30; i < 40; i++ {
			writeChunk(i)
		}
	}()
	rt.Crash()
	fmt.Println("phase 4: runtime crashed; application is blocked in Wait ...")
	if err := rt.Restart(); err != nil {
		log.Fatalf("restart: %v", err)
	}
	<-done
	fmt.Println("phase 4: runtime restarted, StateRepair ran, stream completed")

	// Verify everything is readable.
	names, _ := sess.ReadDir("fs::/stream")
	var total int64
	for _, n := range names {
		sz, err := sess.Stat("fs::/stream/" + n)
		if err != nil {
			log.Fatalf("stat %s: %v", n, err)
		}
		total += sz
	}
	fmt.Printf("verified %d chunks, %d KiB logical data intact\n", len(names), total>>10)
}
