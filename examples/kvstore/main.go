// KV store example: LabKVS exposes a put/get/remove interface that stores
// a value in a *single* operation — the paper's answer to the
// open-modify-close sequence POSIX forces on key-value workloads (the
// LABIOS use case, Fig. 9b). The example stores a batch of "labels",
// scans, reads back, deletes, and compares the modeled cost of the same
// workload run through a POSIX file translation on the same platform.
package main

import (
	"bytes"
	"fmt"
	"log"

	"labstor"
	"labstor/internal/vtime"
)

const kvSpec = `
mount: kv::/labels
mods:
  - uuid: genkvs
    type: labstor.generickvs
  - uuid: kvs
    type: labstor.labkvs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

const fsSpec = `
mount: fs::/labels
mods:
  - uuid: genfs2
    type: labstor.genericfs
  - uuid: fs2
    type: labstor.labfs
    attrs:
      device: nvme1
      log_mb: 4
  - uuid: sched2
    type: labstor.noop
    attrs:
      device: nvme1
  - uuid: drv2
    type: labstor.kernel_driver
    attrs:
      device: nvme1
`

func main() {
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	defer p.Close()
	p.AddDevice("nvme0", labstor.NVMe, 128<<20)
	p.AddDevice("nvme1", labstor.NVMe, 128<<20)
	if _, err := p.MountSpec(kvSpec); err != nil {
		log.Fatalf("mount kv: %v", err)
	}
	if _, err := p.MountSpec(fsSpec); err != nil {
		log.Fatalf("mount fs: %v", err)
	}

	sess := p.Connect()
	kv := sess.KV("kv::/labels")

	// Store labels: one put per label.
	value := bytes.Repeat([]byte{0xC0}, 8<<10)
	const labels = 200
	kvStart := sess.Clock()
	for i := 0; i < labels; i++ {
		if err := kv.Put(fmt.Sprintf("label-%04d", i), value); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	kvElapsed := sess.Clock().Sub(kvStart)

	// Same workload via file translation: create + stat + write + fsync.
	fsStart := sess.Clock()
	for i := 0; i < labels; i++ {
		path := fmt.Sprintf("fs::/labels/label-%04d", i)
		f, err := sess.Create(path)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		if _, err := sess.Stat(path); err != nil {
			log.Fatalf("stat: %v", err)
		}
		if _, err := f.WriteAt(value, 0); err != nil {
			log.Fatalf("write: %v", err)
		}
		if err := f.Sync(); err != nil {
			log.Fatalf("sync: %v", err)
		}
	}
	fsElapsed := sess.Clock().Sub(fsStart)

	// Read a label back and verify.
	got, err := kv.Get("label-0042")
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, value) {
		log.Fatal("value mismatch")
	}

	keys, _ := kv.Keys("label-00")
	fmt.Printf("stored %d labels; %d keys match prefix label-00\n", labels, len(keys))

	ok, _ := kv.Has("label-0001")
	_ = kv.Del("label-0001")
	gone, _ := kv.Has("label-0001")
	fmt.Printf("label-0001 existed=%v, after delete existed=%v\n", ok, gone)

	fmt.Printf("modeled time for %d labels:\n", labels)
	fmt.Printf("  LabKVS put:         %v (%.1f us/label)\n", kvElapsed, kvElapsed.Micros()/labels)
	fmt.Printf("  POSIX translation:  %v (%.1f us/label)\n", fsElapsed, fsElapsed.Micros()/labels)
	fmt.Printf("  speedup: %.2fx\n", float64(fsElapsed)/float64(kvElapsed))
	_ = vtime.Microsecond
}
