// Quickstart: bring up a LabStor platform, mount a full filesystem
// LabStack (GenericFS + permissions + LabFS + LRU cache + No-Op scheduler +
// Kernel Driver over a simulated NVMe device), and do file I/O through the
// public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"labstor"
)

const stackSpec = `
mount: fs::/data
rules:
  exec_mode: async
mods:
  - uuid: genfs
    type: labstor.genericfs
  - uuid: perm
    type: labstor.perm
    attrs:
      mode: "0666"
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 8
  - uuid: cache
    type: labstor.lru
    attrs:
      capacity_mb: 16
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func main() {
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	defer p.Close()

	p.AddDevice("nvme0", labstor.NVMe, 256<<20)
	if _, err := p.MountSpec(stackSpec); err != nil {
		log.Fatalf("mount: %v", err)
	}
	fmt.Println("mounted:", p.Mounts())

	sess := p.Connect()
	defer sess.Close()

	// Create, write, sync.
	f, err := sess.Create("fs::/data/hello.txt")
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	msg := bytes.Repeat([]byte("The I/O stack is now a userspace library. "), 100)
	if _, err := f.WriteAt(msg, 0); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		log.Fatalf("sync: %v", err)
	}

	// Read back and verify.
	buf := make([]byte, len(msg))
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf[:n], msg) {
		log.Fatal("data mismatch")
	}
	size, _ := f.Size()
	fmt.Printf("wrote+read %d bytes (file size %d)\n", n, size)

	// Directory operations.
	if err := sess.Mkdir("fs::/data/logs"); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	for i := 0; i < 3; i++ {
		g, err := sess.Create(fmt.Sprintf("fs::/data/logs/app-%d.log", i))
		if err != nil {
			log.Fatalf("create log: %v", err)
		}
		if _, err := g.Append([]byte("started\n")); err != nil {
			log.Fatalf("append: %v", err)
		}
	}
	names, _ := sess.ReadDir("fs::/data/logs")
	fmt.Println("logs directory:", names)

	fmt.Printf("modeled virtual time consumed by this session: %v\n", sess.Clock().Sub(0))
}
