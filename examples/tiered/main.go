// Tiered views example: the paper's "multiple views of the same data" —
// several LabStacks deployed over the *same* LabMod instances.
//
// Two stacks share one LabFS instance (same LabMod UUID, so mount reuses
// the instance from the Module Registry):
//
//   - fs::/secure — guarded by a Permissions LabMod (owner-only mode 0600):
//     the administrative view;
//   - fs::/open   — no permissions vertex, executed synchronously in the
//     client (the fast, decentralized view of the same files).
//
// Data written through one view is immediately visible through the other,
// while access control differs per view — the paper's "islands of data"
// with tunable access control.
package main

import (
	"fmt"
	"log"

	"labstor"
)

const secureSpec = `
mount: fs::/secure
rules:
  exec_mode: async
mods:
  - uuid: guard
    type: labstor.perm
    attrs:
      owner: "0"
      mode: "0600"
  - uuid: sharedfs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 8
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

// The open view references the SAME sharedfs/sched/drv UUIDs: mount finds
// them already instantiated in the Module Registry and reuses them.
const openSpec = `
mount: fs::/open
rules:
  exec_mode: sync
mods:
  - uuid: sharedfs
    type: labstor.labfs
    attrs:
      device: nvme0
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func main() {
	p := labstor.NewPlatform(labstor.Config{Workers: 2})
	defer p.Close()
	p.AddDevice("nvme0", labstor.NVMe, 256<<20)
	if _, err := p.MountSpec(secureSpec); err != nil {
		log.Fatalf("mount secure: %v", err)
	}
	if _, err := p.MountSpec(openSpec); err != nil {
		log.Fatalf("mount open: %v", err)
	}

	root := p.ConnectAs(0, 0)    // administrator
	alice := p.ConnectAs(501, 0) // unprivileged user

	// Root writes through the secure view.
	f, err := root.Create("fs::/secure/policy.conf")
	if err != nil {
		log.Fatalf("root create: %v", err)
	}
	if _, err := f.WriteAt([]byte("max_stack_depth = 16\n"), 0); err != nil {
		log.Fatalf("root write: %v", err)
	}
	fmt.Println("root wrote policy.conf via fs::/secure")

	// Alice cannot touch the secure view ...
	if _, err := alice.Open("fs::/secure/policy.conf"); err != nil {
		fmt.Println("alice via fs::/secure: correctly denied:", err)
	} else {
		log.Fatal("expected permission denial")
	}

	// ... but the open view exposes the same bytes (different stack, same
	// LabFS instance), with no IPC — it runs in Alice's own thread.
	buf := make([]byte, 64)
	g, err := alice.Open("fs::/open/policy.conf")
	if err != nil {
		log.Fatalf("alice open: %v", err)
	}
	n, err := g.ReadAt(buf, 0)
	if err != nil {
		log.Fatalf("alice read: %v", err)
	}
	fmt.Printf("alice via fs::/open reads: %q\n", string(buf[:n]))

	// Writes through the open view are visible to the secure view too.
	if _, err := g.WriteAt([]byte("# reviewed by alice\n"), int64(n)); err != nil {
		log.Fatalf("alice write: %v", err)
	}
	size, _ := root.Stat("fs::/secure/policy.conf")
	fmt.Printf("root sees updated policy.conf (%d bytes) via fs::/secure\n", size)

	fmt.Println("one dataset, two stacks, two access-control regimes — no data copies")
}
