#!/bin/sh
# bench_gate.sh — warn-only performance gate for the committed benches.
#
# Reruns each bench whose baseline JSON is committed (hotpath, contention,
# zerocopy, serve, pushdown) and compares its headline scalar against the
# committed value. A
# regression worse than 10% prints a loud warning but never fails the build:
# shared CI hosts are noisy enough that a hard gate on wall-clock throughput
# would flake, and a human looking at the warning is the right escalation.
# Run from the repository root (or via `make bench-gate` / `make check`).
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

# extract FILE KEY — pull a scalar value out of a flat bench JSON.
extract() {
    sed -n 's/.*"'"$2"'": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}

# gate BASELINE EXP KEY — rerun EXP, compare KEY against the committed
# BASELINE, warn (never fail) on a >10% regression.
gate() {
    baseline=$1 exp=$2 key=$3
    if [ ! -f "$baseline" ]; then
        echo "bench_gate: no $baseline baseline committed — skipping $exp"
        return 0
    fi
    echo "bench_gate: running fresh $exp bench..."
    go run ./cmd/labbench -exp "$exp" -json "$tmpdir/$exp.json" >/dev/null
    old=$(extract "$baseline" "$key")
    new=$(extract "$tmpdir/$exp.json" "$key")
    if [ -z "$old" ] || [ -z "$new" ]; then
        echo "bench_gate: could not parse $key — skipping $exp"
        return 0
    fi
    awk -v old="$old" -v new="$new" -v key="$key" -v baseline="$baseline" -v bench="$exp" 'BEGIN {
        delta = 100 * (new - old) / old
        printf "bench_gate: %s %.3f (committed) -> %.3f (fresh): %+.1f%%\n", key, old, new, delta
        if (delta < -10) {
            printf "bench_gate: WARNING: %s regressed >10%% vs %s\n", key, baseline
            printf "bench_gate: (warn-only: rerun to rule out host noise; `make bench-%s` refreshes the baseline if the change is intended)\n", bench
        }
    }'
}

gate BENCH_hotpath.json hotpath batched_mops
gate BENCH_contention.json contention striped_c8_mops
gate BENCH_zerocopy.json zerocopy mapped_c8_mops
gate BENCH_serve.json serve direct_c1000_ops_per_s
gate BENCH_pushdown.json pushdown jobs8_pd_per_s
exit 0
