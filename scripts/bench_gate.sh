#!/bin/sh
# bench_gate.sh — warn-only performance gate for the hot path.
#
# Runs a fresh `labbench -exp hotpath` and compares its batched throughput
# against the committed baseline in BENCH_hotpath.json. A regression worse
# than 10% prints a loud warning but never fails the build: shared CI hosts
# are noisy enough that a hard gate on wall-clock throughput would flake,
# and a human looking at the warning is the right escalation.
# Run from the repository root (or via `make bench-gate` / `make check`).
set -eu
cd "$(dirname "$0")/.."

baseline=BENCH_hotpath.json
if [ ! -f "$baseline" ]; then
    echo "bench_gate: no $baseline baseline committed — skipping"
    exit 0
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

echo "bench_gate: running fresh hotpath bench..."
go run ./cmd/labbench -exp hotpath -json "$tmpdir/fresh.json" >/dev/null

extract() {
    sed -n 's/.*"batched_mops": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}
old=$(extract "$baseline")
new=$(extract "$tmpdir/fresh.json")
if [ -z "$old" ] || [ -z "$new" ]; then
    echo "bench_gate: could not parse batched_mops — skipping"
    exit 0
fi

awk -v old="$old" -v new="$new" 'BEGIN {
    delta = 100 * (new - old) / old
    printf "bench_gate: batched_mops %.3f (committed) -> %.3f (fresh): %+.1f%%\n", old, new, delta
    if (delta < -10) {
        print "bench_gate: WARNING: hot-path throughput regressed >10% vs BENCH_hotpath.json"
        print "bench_gate: (warn-only: rerun to rule out host noise; `make bench-hotpath` refreshes the baseline if the change is intended)"
    }
}'
exit 0
