#!/bin/sh
# check.sh — the repo's full verification gate:
#   1. tier-1: go build ./... && go test ./...
#   2. static analysis: go vet ./...
#   3. concurrency: go test -race ./...
#   4. hot-path soak: the lock-free ring and worker/client hot path, twice
#      under the race detector with shuffled test order, to surface
#      ordering-dependent races the single straight-line pass can miss.
#   5. fuzz smoke: short native-fuzzing runs of the wire-protocol frame
#      decoder (serve.* RPC framing) and the YAML spec/stack builder to
#      catch parser regressions early.
#   6. observe smoke: boot labstor-runtime with the observability server on
#      an ephemeral port and assert /metrics and /snapshot serve payloads.
#   7. serve smoke: boot labstor-runtime with the network front end on an
#      ephemeral port, drive RPCs via labctl, assert serve.* on /metrics.
#   8. bench gate (warn-only): fresh benches vs the committed BENCH_*.json
#      baselines; >10% regression warns, never fails.
# Run from the repository root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== go test -race -count=2 -shuffle=on ./internal/ipc/... ./internal/runtime/... ./internal/device/... ./internal/telemetry/... ./internal/obs/... ./internal/serve/... ./internal/mods/pushdown/... =="
go test -race -count=2 -shuffle=on ./internal/ipc/... ./internal/runtime/... ./internal/device/... ./internal/telemetry/... ./internal/obs/... ./internal/serve/... ./internal/mods/pushdown/...

echo "== bench smoke: go test -bench=. -benchtime=1x -run '^$' ./... =="
go test -bench=. -benchtime=1x -run '^$' ./...

echo "== fuzz smoke: FuzzFrameDecode -fuzztime 5s =="
go test -run '^$' -fuzz FuzzFrameDecode -fuzztime 5s ./internal/serve

echo "== fuzz smoke: FuzzSpecParse -fuzztime 5s =="
go test -run '^$' -fuzz FuzzSpecParse -fuzztime 5s ./internal/spec

echo "== observe smoke: scripts/obs_smoke.sh =="
sh scripts/obs_smoke.sh

echo "== serve smoke: scripts/serve_smoke.sh =="
sh scripts/serve_smoke.sh

echo "== bench gate (warn-only): scripts/bench_gate.sh =="
sh scripts/bench_gate.sh

echo "== check: OK =="
