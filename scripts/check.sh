#!/bin/sh
# check.sh — the repo's full verification gate:
#   1. tier-1: go build ./... && go test ./...
#   2. static analysis: go vet ./...
#   3. concurrency: go test -race ./...
#   4. hot-path soak: the lock-free ring and worker/client hot path, twice
#      under the race detector with shuffled test order, to surface
#      ordering-dependent races the single straight-line pass can miss.
#   5. observe smoke: boot labstor-runtime with the observability server on
#      an ephemeral port and assert /metrics and /snapshot serve payloads.
#   6. bench gate (warn-only): fresh hotpath bench vs the committed
#      BENCH_hotpath.json baseline; >10% regression warns, never fails.
# Run from the repository root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== go test -race -count=2 -shuffle=on ./internal/ipc/... ./internal/runtime/... ./internal/device/... ./internal/telemetry/... ./internal/obs/... =="
go test -race -count=2 -shuffle=on ./internal/ipc/... ./internal/runtime/... ./internal/device/... ./internal/telemetry/... ./internal/obs/...

echo "== bench smoke: go test -bench=. -benchtime=1x -run '^$' ./... =="
go test -bench=. -benchtime=1x -run '^$' ./...

echo "== observe smoke: scripts/obs_smoke.sh =="
sh scripts/obs_smoke.sh

echo "== bench gate (warn-only): scripts/bench_gate.sh =="
sh scripts/bench_gate.sh

echo "== check: OK =="
