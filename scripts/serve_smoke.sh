#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the network serving front end.
#
# Boots labstor-runtime with the serve: plane on an ephemeral port (the
# configs/serve.yaml addr is 127.0.0.1:0), parses the bound address from the
# "serve: listening on ADDR" line, drives put/get/has/del/ping RPCs through
# labctl, and asserts the serve.* admission series appear on /metrics.
# Run from the repository root (or via `make serve-smoke` / `make check`).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/runtime.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/labstor-runtime" ./cmd/labstor-runtime
go build -o "$workdir/labctl" ./cmd/labctl

"$workdir/labstor-runtime" -config configs/serve.yaml \
    -stack configs/labkvs-pmem.yaml >"$logfile" 2>&1 &
pid=$!

# Wait for both planes to announce their ephemeral ports.
serve_addr="" obs_addr=""
for _ in $(seq 1 50); do
    serve_addr=$(sed -n 's|^serve: listening on ||p' "$logfile")
    obs_addr=$(sed -n 's|^observe: serving on http://||p' "$logfile")
    [ -n "$serve_addr" ] && [ -n "$obs_addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: runtime exited early:" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$serve_addr" ] || [ -z "$obs_addr" ]; then
    echo "serve_smoke: missing 'serve: listening on' / observe line after 5s:" >&2
    cat "$logfile" >&2
    exit 1
fi
echo "serve_smoke: runtime serving RPC on $serve_addr, metrics on $obs_addr"

ctl() {
    "$workdir/labctl" serve -addr "$serve_addr" -tenant gold "$@"
}

ctl ping | grep -q pong || { echo "serve_smoke: ping failed" >&2; exit 1; }
ctl put kv::/labels smoke "serve smoke payload" >/dev/null
got=$(ctl get kv::/labels smoke)
if [ "$got" != "serve smoke payload" ]; then
    echo "serve_smoke: get returned '$got'" >&2
    exit 1
fi
ctl has kv::/labels smoke | grep -q "result=1" || { echo "serve_smoke: has failed" >&2; exit 1; }
ctl del kv::/labels smoke >/dev/null
echo "serve_smoke: put/get/has/del round trip OK"

# The serve.* admission/throughput series must ride the existing /metrics
# plane, including the per-tenant labeled series for the tenant we used.
metrics=$(curl -fsS --max-time 5 "http://$obs_addr/metrics")
for marker in \
    labstor_serve_accepted \
    labstor_serve_frames_in \
    labstor_serve_batch_size \
    'labstor_serve_tenant_admitted{tenant="gold"}'; do
    case "$metrics" in
    *"$marker"*) ;;
    *)
        echo "serve_smoke: /metrics lacks '$marker'" >&2
        exit 1
        ;;
    esac
done
# Every RPC above went through admission as tenant gold.
admitted=$(printf '%s\n' "$metrics" | sed -n 's/^labstor_serve_tenant_admitted{tenant="gold"} //p')
if [ -z "$admitted" ] || [ "$admitted" -lt 4 ]; then
    echo "serve_smoke: tenant gold admitted '$admitted' ops, want >= 4" >&2
    exit 1
fi
echo "serve_smoke: serve.* metrics present (gold admitted $admitted ops)"

echo "serve_smoke: OK"
