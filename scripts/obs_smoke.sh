#!/bin/sh
# obs_smoke.sh — end-to-end smoke test of the live observability plane.
#
# Boots labstor-runtime with the observability server on an ephemeral port
# (observe.addr 127.0.0.1:0), parses the bound address from the runtime's
# "observe: serving on http://ADDR" line, and asserts that /metrics and
# /snapshot answer HTTP 200 with non-empty, well-formed payloads.
# Run from the repository root (or via `make obs-smoke` / `make check`).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/runtime.log"
binary="$workdir/labstor-runtime"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$binary" ./cmd/labstor-runtime

"$binary" -config configs/runtime.yaml -stack configs/labfs-nvme.yaml \
    -observe 127.0.0.1:0 >"$logfile" 2>&1 &
pid=$!

# Wait for the server to announce its bound address (ephemeral port).
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^observe: serving on http://||p' "$logfile")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs_smoke: runtime exited early:" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs_smoke: no 'observe: serving on' line after 5s:" >&2
    cat "$logfile" >&2
    exit 1
fi
echo "obs_smoke: runtime serving observability on $addr"

fetch() {
    # fetch <path> <must-contain>: HTTP 200 + non-empty + marker present.
    body=$(curl -fsS --max-time 5 "http://$addr$1")
    if [ -z "$body" ]; then
        echo "obs_smoke: $1 returned an empty body" >&2
        exit 1
    fi
    case "$body" in
    *"$2"*) ;;
    *)
        echo "obs_smoke: $1 response lacks marker '$2'" >&2
        exit 1
        ;;
    esac
    echo "obs_smoke: GET $1 OK ($(printf %s "$body" | wc -c) bytes)"
}

fetch /metrics "# TYPE"
fetch /snapshot '"workers"'
fetch /healthz "running"
# The attribution and export endpoints serve valid (if empty: the smoke
# runtime carries no traffic) JSON documents of the right shape.
fetch /profile "["
fetch "/traces/export?format=chrome" '"traceEvents"'
fetch /bundles '"armed"'

# Strict JSON validation when a parser is on the host (optional: the
# markers above already pin the shapes).
if command -v python3 >/dev/null 2>&1; then
    for ep in /profile "/traces/export?format=chrome" /bundles /slos; do
        if ! curl -fsS --max-time 5 "http://$addr$ep" | python3 -m json.tool >/dev/null; then
            echo "obs_smoke: $ep is not valid JSON" >&2
            exit 1
        fi
    done
    echo "obs_smoke: JSON validation OK (/profile /traces/export /bundles /slos)"
fi

echo "obs_smoke: OK"
