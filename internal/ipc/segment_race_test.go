package ipc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSegmentGrantRevokeMapRace hammers a SegmentManager with concurrent
// Allocate/Grant/Revoke/Map/Free from many goroutines and then checks the
// manager's gauge counters against a ground-truth walk of the live
// segments. This is the ordering trap the freed-flag exists for: a Grant
// racing Free must either land before the free (and be subtracted with
// the segment's ACL) or observe ErrSegmentFreed — a grant that "succeeds"
// after the accounting ran would leave the grants gauge drifted forever.
func TestSegmentGrantRevokeMapRace(t *testing.T) {
	m := NewSegmentManager()
	const (
		goroutines = 16
		opsPer     = 2000
		segNames   = 8
		pids       = 32
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				name := fmt.Sprintf("seg-%d", rng.Intn(segNames))
				pid := 100 + rng.Intn(pids)
				switch rng.Intn(10) {
				case 0, 1, 2:
					s := m.AllocateNode(name, 4096, rng.Intn(2), Credentials{PID: pid})
					if s == nil {
						t.Error("AllocateNode returned nil")
						return
					}
				case 3, 4:
					if s, err := m.Lookup(name); err == nil {
						// Error is fine (racing Free); silent success on a
						// freed segment is not — Map below cross-checks.
						_ = s.Grant(pid)
					}
				case 5:
					if s, err := m.Lookup(name); err == nil {
						s.Revoke(pid)
					}
				case 6, 7:
					if s, err := m.Lookup(name); err == nil {
						b, err := s.Map(pid)
						if err == nil && len(b) != 4096 {
							t.Errorf("Map returned %d bytes, want 4096", len(b))
							return
						}
						if err != nil && !errors.Is(err, ErrAccessDenied) && !errors.Is(err, ErrSegmentFreed) {
							t.Errorf("Map: unexpected error %v", err)
							return
						}
					}
				case 8:
					if s, err := m.Lookup(name); err == nil {
						if _, err := s.View(0, 64); err != nil && !errors.Is(err, ErrSegmentFreed) {
							t.Errorf("View: unexpected error %v", err)
							return
						}
					}
				case 9:
					m.Free(name)
				}
			}
		}(int64(g) * 7919)
	}
	wg.Wait()

	// Ground truth: walk the live segments and recount.
	var wantCount, wantBytes, wantGrants int64
	for _, name := range m.Names() {
		s, err := m.Lookup(name)
		if err != nil {
			continue
		}
		wantCount++
		wantBytes += int64(s.Size())
		s.mu.RLock()
		if s.freed {
			t.Errorf("segment %q is freed but still in the manager map", name)
		}
		wantGrants += int64(len(s.acl))
		s.mu.RUnlock()
	}
	got := m.Stats()
	if got.Count != wantCount || got.Bytes != wantBytes || got.Grants != wantGrants {
		t.Fatalf("stats drifted after race shuffle: got %+v, want count=%d bytes=%d grants=%d",
			got, wantCount, wantBytes, wantGrants)
	}
}

// TestSegmentFreeOrdering pins the specific interleaving: a grant issued
// after Free must fail, and a mapping taken before Free stays readable
// (pointers don't fault) while new Maps are refused.
func TestSegmentFreeOrdering(t *testing.T) {
	m := NewSegmentManager()
	cred := Credentials{PID: 1}
	s := m.AllocateNode("zc", 1024, 1, cred)
	if s.Node != 1 {
		t.Fatalf("node label = %d, want 1", s.Node)
	}
	if err := s.Grant(2); err != nil {
		t.Fatalf("Grant(2): %v", err)
	}
	if st := m.Stats(); st.Count != 1 || st.Bytes != 1024 || st.Grants != 2 {
		t.Fatalf("stats before free: %+v", st)
	}
	old, err := s.Map(2)
	if err != nil {
		t.Fatalf("Map before free: %v", err)
	}
	m.Free("zc")
	if err := s.Grant(3); !errors.Is(err, ErrSegmentFreed) {
		t.Fatalf("Grant after free: got %v, want ErrSegmentFreed", err)
	}
	if _, err := s.Map(2); !errors.Is(err, ErrSegmentFreed) {
		t.Fatalf("Map after free: got %v, want ErrSegmentFreed", err)
	}
	if len(old) != 1024 {
		t.Fatalf("pre-free mapping shrank to %d bytes", len(old))
	}
	if st := m.Stats(); st.Count != 0 || st.Bytes != 0 || st.Grants != 0 {
		t.Fatalf("stats after free not zeroed: %+v", st)
	}
	// Re-allocating the name after Free yields a fresh live segment.
	s2 := m.Allocate("zc", 2048, cred)
	if s2 == s {
		t.Fatal("Allocate after Free returned the freed segment")
	}
	if _, err := s2.Map(1); err != nil {
		t.Fatalf("Map on re-allocated segment: %v", err)
	}
}
