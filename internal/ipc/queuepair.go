package ipc

import (
	"fmt"
	"sync/atomic"
)

// QueueKind distinguishes where a queue sits on the request path.
type QueueKind uint8

const (
	// Primary queues are where clients initiate requests. In the paper they
	// live in shared memory and participate in the live-upgrade pause
	// protocol.
	Primary QueueKind = iota
	// Intermediate queues hold requests spawned as a result of another
	// request (module-to-module forwarding); they drain fully before an
	// upgrade proceeds.
	Intermediate
)

func (k QueueKind) String() string {
	if k == Primary {
		return "primary"
	}
	return "intermediate"
}

// UpgradeState is the live-upgrade handshake state of a primary queue pair
// (paper §III-C2): the Module Manager marks primary queues UPDATE_PENDING;
// workers acknowledge with UPDATE_ACKED and stop draining the queue until
// the upgrade completes.
type UpgradeState uint32

const (
	// Running means requests flow normally.
	Running UpgradeState = iota
	// UpdatePending is set by the Module Manager when an upgrade is queued.
	UpdatePending
	// UpdateAcked is set by the processing worker once it has observed
	// UpdatePending and paused the queue.
	UpdateAcked
)

func (s UpgradeState) String() string {
	switch s {
	case Running:
		return "RUNNING"
	case UpdatePending:
		return "UPDATE_PENDING"
	case UpdateAcked:
		return "UPDATE_ACKED"
	default:
		return fmt.Sprintf("UpgradeState(%d)", uint32(s))
	}
}

// QueuePair is a submission queue / completion queue pair, the unit the
// Work Orchestrator assigns to workers.
//
// Ordered queue pairs must be processed in sequence by a single worker;
// unordered pairs may be drained by several workers concurrently. Both
// rings are MPMC so either discipline is safe; ordering is a scheduling
// contract enforced by the orchestrator, not by the data structure.
type QueuePair[T any] struct {
	// ID uniquely identifies the pair within its segment.
	ID int
	// Kind records whether this is a primary or intermediate queue.
	Kind QueueKind
	// Ordered marks the pair as requiring single-worker FIFO processing.
	Ordered bool
	// OwnerClient is the client identifier for primary queues (0 if none).
	OwnerClient int
	// Node is the NUMA node the owning client's registered buffers are homed
	// on (0 when NUMA modeling is off). The orchestrator's locality-aware
	// placement uses it to prefer node-local workers.
	Node int

	sq *Ring[T]
	cq *Ring[T]

	state    atomic.Uint32
	inflight atomic.Int64 // submitted but not yet completed
}

// NewQueuePair returns a queue pair whose rings hold depth entries each.
func NewQueuePair[T any](id int, kind QueueKind, ordered bool, depth int) *QueuePair[T] {
	return &QueuePair[T]{
		ID:      id,
		Kind:    kind,
		Ordered: ordered,
		sq:      NewRing[T](depth),
		cq:      NewRing[T](depth),
	}
}

// Submit places a request on the submission queue.
func (q *QueuePair[T]) Submit(v T) error {
	if err := q.sq.Enqueue(v); err != nil {
		return err
	}
	q.inflight.Add(1)
	return nil
}

// SubmitBatch places up to len(vals) requests on the submission queue with
// a single ring reservation, returning how many were enqueued (a partial
// count when the ring fills mid-batch).
func (q *QueuePair[T]) SubmitBatch(vals []T) int {
	n := q.sq.EnqueueBatch(vals)
	if n > 0 {
		q.inflight.Add(int64(n))
	}
	return n
}

// PollSQ removes the oldest submitted request (worker side).
func (q *QueuePair[T]) PollSQ() (T, error) { return q.sq.Dequeue() }

// PollSQBatch removes up to len(dst) submitted requests with a single ring
// reservation (worker side), returning how many were dequeued.
func (q *QueuePair[T]) PollSQBatch(dst []T) int { return q.sq.DequeueBatch(dst) }

// Complete places a finished request on the completion queue.
func (q *QueuePair[T]) Complete(v T) error {
	if err := q.cq.Enqueue(v); err != nil {
		return err
	}
	q.inflight.Add(-1)
	return nil
}

// CompleteBatch places up to len(vals) finished requests on the completion
// queue with a single ring reservation, returning how many were enqueued.
func (q *QueuePair[T]) CompleteBatch(vals []T) int {
	n := q.cq.EnqueueBatch(vals)
	if n > 0 {
		q.inflight.Add(-int64(n))
	}
	return n
}

// PollCQ removes the oldest completion (client side).
func (q *QueuePair[T]) PollCQ() (T, error) { return q.cq.Dequeue() }

// PollCQBatch removes up to len(dst) completions with a single ring
// reservation (client side), returning how many were dequeued.
func (q *QueuePair[T]) PollCQBatch(dst []T) int { return q.cq.DequeueBatch(dst) }

// Inflight returns the number of submitted-but-not-completed requests.
func (q *QueuePair[T]) Inflight() int { return int(q.inflight.Load()) }

// QueuePairStats is a queue pair's cumulative traffic accounting.
type QueuePairStats struct {
	ID       int       `json:"id"`
	Kind     string    `json:"kind"`
	Owner    int       `json:"owner_client"`
	State    string    `json:"state"`
	Inflight int       `json:"inflight"`
	SQ       RingStats `json:"sq"`
	CQ       RingStats `json:"cq"`
}

// Stats snapshots both rings and the pair's upgrade/inflight state.
func (q *QueuePair[T]) Stats() QueuePairStats {
	return QueuePairStats{
		ID:       q.ID,
		Kind:     q.Kind.String(),
		Owner:    q.OwnerClient,
		State:    q.State().String(),
		Inflight: q.Inflight(),
		SQ:       q.sq.Stats(),
		CQ:       q.cq.Stats(),
	}
}

// SQLen returns the number of requests waiting in the submission queue.
func (q *QueuePair[T]) SQLen() int { return q.sq.Len() }

// State returns the queue's upgrade-handshake state.
func (q *QueuePair[T]) State() UpgradeState { return UpgradeState(q.state.Load()) }

// MarkUpdatePending transitions Running -> UpdatePending (Module Manager
// side). It reports whether the transition happened.
func (q *QueuePair[T]) MarkUpdatePending() bool {
	return q.state.CompareAndSwap(uint32(Running), uint32(UpdatePending))
}

// AckUpdate transitions UpdatePending -> UpdateAcked (worker side). It
// reports whether the transition happened.
func (q *QueuePair[T]) AckUpdate() bool {
	return q.state.CompareAndSwap(uint32(UpdatePending), uint32(UpdateAcked))
}

// ResumeAfterUpdate returns the queue to Running from any upgrade state.
func (q *QueuePair[T]) ResumeAfterUpdate() { q.state.Store(uint32(Running)) }
