package ipc

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingEnqueueBatchFIFO(t *testing.T) {
	r := NewRing[int](16)
	in := []int{10, 11, 12, 13, 14}
	if n := r.EnqueueBatch(in); n != len(in) {
		t.Fatalf("EnqueueBatch = %d, want %d", n, len(in))
	}
	if r.Len() != len(in) {
		t.Fatalf("Len = %d", r.Len())
	}
	// Batch-enqueued items come out in vals order via single dequeues.
	for i, want := range in {
		got, err := r.Dequeue()
		if err != nil || got != want {
			t.Fatalf("Dequeue[%d] = %d, %v; want %d", i, got, err, want)
		}
	}
}

func TestRingDequeueBatchFIFO(t *testing.T) {
	r := NewRing[int](16)
	for i := 0; i < 6; i++ {
		if err := r.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]int, 4)
	if n := r.DequeueBatch(dst); n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d (FIFO violated)", i, dst[i])
		}
	}
	if n := r.DequeueBatch(dst); n != 2 || dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("tail batch: n=%d dst=%v", n, dst[:2])
	}
}

func TestRingBatchPartialAtFull(t *testing.T) {
	r := NewRing[int](4) // capacity 4
	if err := r.Enqueue(0); err != nil {
		t.Fatal(err)
	}
	// Only 3 slots remain: a batch of 5 must partially succeed with 3.
	in := []int{1, 2, 3, 4, 5}
	if n := r.EnqueueBatch(in); n != 3 {
		t.Fatalf("partial EnqueueBatch = %d, want 3", n)
	}
	// Ring is now full: further batch enqueues report 0 and count a reject.
	before := r.Stats().Rejects
	if n := r.EnqueueBatch(in); n != 0 {
		t.Fatalf("EnqueueBatch on full ring = %d, want 0", n)
	}
	if got := r.Stats().Rejects; got != before+1 {
		t.Fatalf("rejects = %d, want %d", got, before+1)
	}
	// FIFO across the single + partial-batch enqueues.
	for i := 0; i < 4; i++ {
		v, err := r.Dequeue()
		if err != nil || v != i {
			t.Fatalf("Dequeue = %d, %v; want %d", v, err, i)
		}
	}
}

func TestRingBatchPartialAtEmpty(t *testing.T) {
	r := NewRing[int](8)
	dst := make([]int, 4)
	if n := r.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty ring = %d, want 0", n)
	}
	r.Enqueue(7)
	r.Enqueue(8)
	if n := r.DequeueBatch(dst); n != 2 || dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("partial DequeueBatch: n=%d dst=%v", n, dst[:2])
	}
	if n := r.DequeueBatch(dst); n != 0 {
		t.Fatalf("drained ring DequeueBatch = %d, want 0", n)
	}
}

func TestRingBatchZeroLength(t *testing.T) {
	r := NewRing[int](4)
	if n := r.EnqueueBatch(nil); n != 0 {
		t.Fatalf("EnqueueBatch(nil) = %d", n)
	}
	if n := r.DequeueBatch(nil); n != 0 {
		t.Fatalf("DequeueBatch(nil) = %d", n)
	}
}

// TestRingBatchConcurrentNoLoss pushes batches from several producers and
// drains batches from several consumers under the race detector: no item may
// be lost or duplicated.
func TestRingBatchConcurrentNoLoss(t *testing.T) {
	r := NewRing[[2]int](256)
	const producers, perProducer, batch = 4, 4096, 7
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([][2]int, 0, batch)
			next := 0
			for next < perProducer {
				buf = buf[:0]
				for i := 0; i < batch && next+i < perProducer; i++ {
					buf = append(buf, [2]int{p, next + i})
				}
				sent := 0
				for sent < len(buf) {
					n := r.EnqueueBatch(buf[sent:])
					if n == 0 {
						runtime.Gosched()
					}
					sent += n
				}
				next += len(buf)
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[[2]int]int)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			dst := make([][2]int, batch+3)
			for {
				n := r.DequeueBatch(dst)
				if n == 0 {
					select {
					case <-done:
						if n = r.DequeueBatch(dst); n == 0 {
							return
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				mu.Lock()
				for i := 0; i < n; i++ {
					seen[dst[i]]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	// Final drain in case the consumers exited with residue.
	dst := make([][2]int, batch)
	for {
		n := r.DequeueBatch(dst)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			seen[dst[i]]++
		}
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("lost items: got %d unique, want %d", len(seen), producers*perProducer)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("item %v seen %d times", k, c)
		}
	}
}

// TestRingBatchMixedWithSingleOps interleaves batch and single-item
// operations on the same ring: the two protocols must compose without loss.
func TestRingBatchMixedWithSingleOps(t *testing.T) {
	r := NewRing[int](128)
	const total = 10000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // batch producer of evens
		defer wg.Done()
		buf := make([]int, 0, 8)
		for v := 0; v < total; v += 2 {
			buf = append(buf, v)
			if len(buf) == cap(buf) || v+2 >= total {
				sent := 0
				for sent < len(buf) {
					n := r.EnqueueBatch(buf[sent:])
					if n == 0 {
						runtime.Gosched()
					}
					sent += n
				}
				buf = buf[:0]
			}
		}
	}()
	go func() { // single-op producer of odds
		defer wg.Done()
		for v := 1; v < total; v += 2 {
			for r.Enqueue(v) != nil {
				runtime.Gosched()
			}
		}
	}()
	seen := make(map[int]bool, total)
	dst := make([]int, 5)
	prodDone := make(chan struct{})
	go func() { wg.Wait(); close(prodDone) }()
	for len(seen) < total {
		if v, err := r.Dequeue(); err == nil {
			seen[v] = true
		}
		n := r.DequeueBatch(dst)
		for i := 0; i < n; i++ {
			seen[dst[i]] = true
		}
		if n == 0 {
			select {
			case <-prodDone:
				if r.Len() == 0 && len(seen) < total {
					t.Fatalf("producers done, ring empty, only %d/%d seen", len(seen), total)
				}
			default:
				runtime.Gosched()
			}
		}
	}
}
