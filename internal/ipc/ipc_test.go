package ipc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 5; i++ {
		if err := r.Enqueue(i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		v, err := r.Dequeue()
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("got %d, want %d (FIFO violated)", v, i)
		}
	}
	if _, err := r.Dequeue(); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestRingFull(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < r.Cap(); i++ {
		if err := r.Enqueue(i); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if err := r.Enqueue(99); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	// Draining one frees one slot.
	if _, err := r.Dequeue(); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(99); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if NewRing[int](3).Cap() != 4 {
		t.Fatal("capacity must round up to a power of two")
	}
	if NewRing[int](0).Cap() != 2 {
		t.Fatal("minimum capacity is 2")
	}
}

func TestRingConcurrentNoLoss(t *testing.T) {
	r := NewRing[int](1024)
	const producers, perProducer = 4, 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for r.Enqueue(p*perProducer+i) != nil {
				}
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProducer)
	var mu sync.Mutex
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, err := r.Dequeue()
				if err != nil {
					select {
					case <-done:
						// Final drain.
						for {
							v, err := r.Dequeue()
							if err != nil {
								return
							}
							mu.Lock()
							seen[v] = true
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("lost items: got %d, want %d", len(seen), producers*perProducer)
	}
}

func TestRingQuickFIFOSingleStream(t *testing.T) {
	// Property: a single producer/consumer sees exactly its input sequence.
	f := func(vals []uint8) bool {
		r := NewRing[uint8](len(vals) + 1)
		for _, v := range vals {
			if r.Enqueue(v) != nil {
				return false
			}
		}
		for _, want := range vals {
			got, err := r.Dequeue()
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePairProtocol(t *testing.T) {
	qp := NewQueuePair[string](7, Primary, true, 16)
	if qp.ID != 7 || qp.Kind != Primary || !qp.Ordered {
		t.Fatal("metadata")
	}
	if err := qp.Submit("a"); err != nil {
		t.Fatal(err)
	}
	if qp.Inflight() != 1 || qp.SQLen() != 1 {
		t.Fatalf("inflight=%d sqlen=%d", qp.Inflight(), qp.SQLen())
	}
	v, err := qp.PollSQ()
	if err != nil || v != "a" {
		t.Fatalf("PollSQ: %v %v", v, err)
	}
	if err := qp.Complete("a"); err != nil {
		t.Fatal(err)
	}
	if qp.Inflight() != 0 {
		t.Fatalf("inflight after complete: %d", qp.Inflight())
	}
	got, err := qp.PollCQ()
	if err != nil || got != "a" {
		t.Fatalf("PollCQ: %v %v", got, err)
	}
}

func TestQueuePairUpgradeHandshake(t *testing.T) {
	qp := NewQueuePair[int](1, Primary, true, 4)
	if qp.State() != Running {
		t.Fatal("initial state")
	}
	if !qp.MarkUpdatePending() {
		t.Fatal("MarkUpdatePending failed")
	}
	if qp.MarkUpdatePending() {
		t.Fatal("double MarkUpdatePending succeeded")
	}
	if qp.State() != UpdatePending {
		t.Fatal("state after mark")
	}
	if !qp.AckUpdate() {
		t.Fatal("AckUpdate failed")
	}
	if qp.State() != UpdateAcked {
		t.Fatal("state after ack")
	}
	qp.ResumeAfterUpdate()
	if qp.State() != Running {
		t.Fatal("state after resume")
	}
	// State string coverage.
	for _, s := range []UpgradeState{Running, UpdatePending, UpdateAcked, UpgradeState(9)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestQueueKindString(t *testing.T) {
	if Primary.String() != "primary" || Intermediate.String() != "intermediate" {
		t.Fatal("kind strings")
	}
}

func TestSegmentACL(t *testing.T) {
	m := NewSegmentManager()
	creator := Credentials{PID: 100, UID: 1, GID: 1}
	seg := m.Allocate("qp-1", 4096, creator)
	if seg.Size() != 4096 {
		t.Fatalf("size %d", seg.Size())
	}
	if !seg.Granted(100) {
		t.Fatal("creator must be granted")
	}
	// Another process of the SAME user is still denied until granted —
	// the paper's "even among processes launched by the same user".
	if _, err := seg.Map(101); err == nil {
		t.Fatal("ungranted pid mapped segment")
	}
	seg.Grant(101)
	if _, err := seg.Map(101); err != nil {
		t.Fatalf("granted pid denied: %v", err)
	}
	seg.Revoke(101)
	if _, err := seg.Map(101); err == nil {
		t.Fatal("revoked pid mapped segment")
	}
}

func TestSegmentManagerLifecycle(t *testing.T) {
	m := NewSegmentManager()
	cred := Credentials{PID: 1}
	m.Allocate("a", 16, cred)
	m.Allocate("b", 16, cred)
	// Re-allocating an existing name returns it and grants the caller.
	seg := m.Allocate("a", 999, Credentials{PID: 2})
	if seg.Size() != 16 {
		t.Fatal("re-allocate must not resize")
	}
	if !seg.Granted(2) {
		t.Fatal("re-allocate must grant")
	}
	if len(m.Names()) != 2 {
		t.Fatalf("names: %v", m.Names())
	}
	if _, err := m.Lookup("a"); err != nil {
		t.Fatal(err)
	}
	m.Free("a")
	if _, err := m.Lookup("a"); err == nil {
		t.Fatal("freed segment still found")
	}
	if cred.String() == "" {
		t.Fatal("credentials string")
	}
}
