package ipc

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAccessDenied is returned when a process reads or maps a segment it has
// not been granted.
var ErrAccessDenied = errors.New("ipc: access denied")

// ErrNoSegment is returned when a named segment does not exist.
var ErrNoSegment = errors.New("ipc: no such segment")

// Credentials are the process credentials a client presents over the UNIX
// domain socket when connecting to the Runtime (paper §III-C). The Runtime
// uses them for authentication and to grant segment access.
type Credentials struct {
	PID int
	UID int
	GID int
}

func (c Credentials) String() string {
	return fmt.Sprintf("pid=%d uid=%d gid=%d", c.PID, c.UID, c.GID)
}

// Segment models one vmalloc'd shared-memory region managed by the ShMemMod:
// a byte region plus an access-control list of processes allowed to map it.
// Memory can only be mapped by processes that have been granted access by
// the Runtime, even among processes launched by the same user.
type Segment struct {
	Name string
	mu   sync.RWMutex
	data []byte
	acl  map[int]bool // pid -> granted
}

// Grant allows pid to map the segment.
func (s *Segment) Grant(pid int) {
	s.mu.Lock()
	s.acl[pid] = true
	s.mu.Unlock()
}

// Revoke removes pid's access.
func (s *Segment) Revoke(pid int) {
	s.mu.Lock()
	delete(s.acl, pid)
	s.mu.Unlock()
}

// Granted reports whether pid may map the segment.
func (s *Segment) Granted(pid int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.acl[pid]
}

// Map returns the segment's backing bytes if pid has been granted access.
func (s *Segment) Map(pid int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.acl[pid] {
		return nil, fmt.Errorf("segment %q pid %d: %w", s.Name, pid, ErrAccessDenied)
	}
	return s.data, nil
}

// Size returns the segment length in bytes.
func (s *Segment) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// SegmentManager is the ShMemMod stand-in: it allocates named shared
// segments and enforces per-process grants.
type SegmentManager struct {
	mu       sync.RWMutex
	segments map[string]*Segment
}

// NewSegmentManager returns an empty manager.
func NewSegmentManager() *SegmentManager {
	return &SegmentManager{segments: make(map[string]*Segment)}
}

// Allocate creates (or returns the existing) segment with the given name and
// size and grants the creating pid access. Size is only applied on creation.
func (m *SegmentManager) Allocate(name string, size int, creator Credentials) *Segment {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.segments[name]; ok {
		s.Grant(creator.PID)
		return s
	}
	s := &Segment{
		Name: name,
		data: make([]byte, size),
		acl:  map[int]bool{creator.PID: true},
	}
	m.segments[name] = s
	return s
}

// Lookup returns the named segment.
func (m *SegmentManager) Lookup(name string) (*Segment, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.segments[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSegment)
	}
	return s, nil
}

// Free releases the named segment.
func (m *SegmentManager) Free(name string) {
	m.mu.Lock()
	delete(m.segments, name)
	m.mu.Unlock()
}

// Names returns the allocated segment names (unordered).
func (m *SegmentManager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.segments))
	for n := range m.segments {
		out = append(out, n)
	}
	return out
}
