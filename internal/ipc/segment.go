package ipc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrAccessDenied is returned when a process reads or maps a segment it has
// not been granted.
var ErrAccessDenied = errors.New("ipc: access denied")

// ErrNoSegment is returned when a named segment does not exist.
var ErrNoSegment = errors.New("ipc: no such segment")

// ErrSegmentFreed is returned when a segment is used after Free. Real
// shared memory would fault on a stale mapping; modeling the failure
// explicitly lets the race tests prove grant/free ordering.
var ErrSegmentFreed = errors.New("ipc: segment freed")

// Credentials are the process credentials a client presents over the UNIX
// domain socket when connecting to the Runtime (paper §III-C). The Runtime
// uses them for authentication and to grant segment access.
type Credentials struct {
	PID int
	UID int
	GID int
}

func (c Credentials) String() string {
	return fmt.Sprintf("pid=%d uid=%d gid=%d", c.PID, c.UID, c.GID)
}

// Segment models one vmalloc'd shared-memory region managed by the ShMemMod:
// a byte region plus an access-control list of processes allowed to map it.
// Memory can only be mapped by processes that have been granted access by
// the Runtime, even among processes launched by the same user.
//
// Segments carry a NUMA node label: the registered-buffer data path hands
// out payload handles backed by segment regions, and the vtime NUMA model
// charges workers that touch a payload homed on another node.
type Segment struct {
	Name string
	// Node is the NUMA node the segment's pages are homed on (0 when the
	// topology is a single node).
	Node int

	mu    sync.RWMutex
	data  []byte
	acl   map[int]bool // pid -> granted
	freed bool

	// stats points at the owning manager's counters so grant/free deltas
	// are applied under s.mu, atomically with the ACL change they record.
	// nil for segments constructed outside a manager.
	stats *segmentCounters
}

// Grant allows pid to map the segment. Granting a freed segment fails:
// the grant/free ordering must be decided under the segment lock or a
// grant racing Free would leave the manager's grant accounting pointing
// at memory that no longer exists.
func (s *Segment) Grant(pid int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freed {
		return fmt.Errorf("segment %q: %w", s.Name, ErrSegmentFreed)
	}
	if !s.acl[pid] {
		s.acl[pid] = true
		if s.stats != nil {
			s.stats.grants.Add(1)
		}
	}
	return nil
}

// Revoke removes pid's access.
func (s *Segment) Revoke(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acl[pid] {
		delete(s.acl, pid)
		if s.stats != nil {
			s.stats.grants.Add(-1)
		}
	}
}

// Granted reports whether pid may map the segment.
func (s *Segment) Granted(pid int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.acl[pid] && !s.freed
}

// Map returns the segment's backing bytes if pid has been granted access
// and the segment is still live.
func (s *Segment) Map(pid int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.freed {
		return nil, fmt.Errorf("segment %q pid %d: %w", s.Name, pid, ErrSegmentFreed)
	}
	if !s.acl[pid] {
		return nil, fmt.Errorf("segment %q pid %d: %w", s.Name, pid, ErrAccessDenied)
	}
	return s.data, nil
}

// View returns [off, off+n) of the segment without an ACL check. It is the
// runtime-internal accessor the buffer-handle layer uses: the worker
// address space owns every segment, so in-process access is trusted; ACLs
// gate client mappings only.
func (s *Segment) View(off, n int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.freed {
		return nil, fmt.Errorf("segment %q: %w", s.Name, ErrSegmentFreed)
	}
	if off < 0 || n < 0 || off+n > len(s.data) {
		return nil, fmt.Errorf("segment %q: view [%d,%d) out of range 0..%d", s.Name, off, off+n, len(s.data))
	}
	return s.data[off : off+n : off+n], nil
}

// Size returns the segment length in bytes.
func (s *Segment) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// free marks the segment dead and returns how many grants and bytes it
// held, applying the deltas to the manager counters under s.mu so no
// concurrent Grant can slip in between the flag and the accounting.
func (s *Segment) free() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freed {
		return
	}
	s.freed = true
	if s.stats != nil {
		s.stats.grants.Add(-int64(len(s.acl)))
		s.stats.bytes.Add(-int64(len(s.data)))
		s.stats.count.Add(-1)
	}
	s.acl = map[int]bool{}
}

type segmentCounters struct {
	count  atomic.Int64
	bytes  atomic.Int64
	grants atomic.Int64
}

// SegmentStats is a point-in-time reading of a SegmentManager.
type SegmentStats struct {
	Count  int64 // live segments
	Bytes  int64 // total bytes across live segments
	Grants int64 // live (segment, pid) grant pairs
}

// SegmentManager is the ShMemMod stand-in: it allocates named shared
// segments and enforces per-process grants.
type SegmentManager struct {
	mu       sync.RWMutex
	segments map[string]*Segment
	counters segmentCounters
}

// NewSegmentManager returns an empty manager.
func NewSegmentManager() *SegmentManager {
	return &SegmentManager{segments: make(map[string]*Segment)}
}

// Allocate creates (or returns the existing) segment with the given name and
// size and grants the creating pid access. Size is only applied on creation.
func (m *SegmentManager) Allocate(name string, size int, creator Credentials) *Segment {
	return m.AllocateNode(name, size, 0, creator)
}

// AllocateNode is Allocate with an explicit NUMA node label for the new
// segment's pages. The label only applies on creation.
func (m *SegmentManager) AllocateNode(name string, size, node int, creator Credentials) *Segment {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.segments[name]; ok {
		if s.Grant(creator.PID) == nil {
			return s
		}
		// The segment raced Free between our map read and the grant; fall
		// through and replace it with a fresh one.
	}
	s := &Segment{
		Name:  name,
		Node:  node,
		data:  make([]byte, size),
		acl:   map[int]bool{creator.PID: true},
		stats: &m.counters,
	}
	m.counters.count.Add(1)
	m.counters.bytes.Add(int64(size))
	m.counters.grants.Add(1)
	m.segments[name] = s
	return s
}

// Lookup returns the named segment.
func (m *SegmentManager) Lookup(name string) (*Segment, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.segments[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSegment)
	}
	return s, nil
}

// Free releases the named segment. Outstanding Segment pointers observe
// ErrSegmentFreed on Grant/Map rather than silently touching dead memory.
func (m *SegmentManager) Free(name string) {
	m.mu.Lock()
	s, ok := m.segments[name]
	delete(m.segments, name)
	m.mu.Unlock()
	if ok {
		s.free()
	}
}

// Names returns the allocated segment names (unordered).
func (m *SegmentManager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.segments))
	for n := range m.segments {
		out = append(out, n)
	}
	return out
}

// Stats returns current segment gauges (count, bytes, grants). Values are
// maintained under each segment's lock, so after all operations quiesce
// they exactly equal a walk of the live segments.
func (m *SegmentManager) Stats() SegmentStats {
	return SegmentStats{
		Count:  m.counters.count.Load(),
		Bytes:  m.counters.bytes.Load(),
		Grants: m.counters.grants.Load(),
	}
}
