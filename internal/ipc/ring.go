// Package ipc implements LabStor's inter-process communication substrate:
// bounded lock-free rings, submission/completion queue pairs, and a
// shared-segment manager that stands in for the paper's ShMemMod
// (vmalloc + remap_pfn_range shared memory with per-process grants).
//
// In the paper, clients and the Runtime live in separate address spaces and
// exchange cacheline-sized requests over shared-memory queues. Here the
// "address spaces" are goroutines inside one process; the queue protocol
// (polling, ordered/unordered, primary/intermediate, UPDATE_PENDING /
// UPDATE_ACKED upgrade flags) is reproduced faithfully, and the cross-core
// cacheline-transfer cost is charged in virtual time by the runtime.
package ipc

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// spinYield backs off a slot-state spin wait. The wait is bounded: the peer
// has already advanced the shared cursor past the slot, so it completes the
// fill/release in a handful of instructions unless descheduled — in which
// case yielding the processor is exactly what lets it finish.
func spinYield() { runtime.Gosched() }

// ErrFull is returned by Enqueue when the ring has no free slots.
var ErrFull = errors.New("ipc: ring full")

// ErrEmpty is returned by Dequeue when the ring has no pending items.
var ErrEmpty = errors.New("ipc: ring empty")

type slot[T any] struct {
	seq atomic.Uint64
	val T
	// pad keeps hot slots from sharing cache lines in the common
	// pointer-payload case.
	_ [40]byte
}

// Ring is a bounded multi-producer/multi-consumer lock-free FIFO queue
// (Vyukov's bounded MPMC algorithm). The capacity is rounded up to a power
// of two. The zero value is not usable; construct with NewRing.
type Ring[T any] struct {
	mask    uint64
	slots   []slot[T]
	_       [48]byte
	enqueue atomic.Uint64
	_       [56]byte
	dequeue atomic.Uint64
	_       [56]byte
	// rejects counts Enqueue calls that failed with ErrFull (telemetry:
	// backpressure events; producers spin-retry on this).
	rejects atomic.Int64
}

// NewRing returns a ring with capacity at least n (rounded up to a power of
// two, minimum 2).
func NewRing[T any](n int) *Ring[T] {
	capacity := 2
	for capacity < n {
		capacity <<= 1
	}
	r := &Ring[T]{
		mask:  uint64(capacity - 1),
		slots: make([]slot[T], capacity),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// RingStats is a ring's cumulative traffic accounting. Enqueued and
// Dequeued are the ring cursors, so they cost nothing to maintain.
type RingStats struct {
	Enqueued int64 `json:"enqueued"`
	Dequeued int64 `json:"dequeued"`
	Rejects  int64 `json:"rejects"`
	Depth    int   `json:"depth"`
}

// Stats returns the ring's cumulative counters and current depth.
func (r *Ring[T]) Stats() RingStats {
	return RingStats{
		Enqueued: int64(r.enqueue.Load()),
		Dequeued: int64(r.dequeue.Load()),
		Rejects:  r.rejects.Load(),
		Depth:    r.Len(),
	}
}

// Len returns the approximate number of queued items.
func (r *Ring[T]) Len() int {
	e := r.enqueue.Load()
	d := r.dequeue.Load()
	if e < d {
		return 0
	}
	n := int(e - d)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	return n
}

// Enqueue adds v to the ring; it returns ErrFull if no slot is free.
func (r *Ring[T]) Enqueue(v T) error {
	pos := r.enqueue.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enqueue.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return nil
			}
			pos = r.enqueue.Load()
		case seq < pos:
			r.rejects.Add(1)
			return ErrFull
		default:
			pos = r.enqueue.Load()
		}
	}
}

// EnqueueBatch adds as many of vals as fit, in order, and returns how many
// were enqueued (0 when the ring is full). The whole run of slots is
// reserved with a single CAS on the enqueue cursor, so the per-item cost of
// a batch is one store plus one release instead of a CAS pair — the
// vectored-submission analogue of io_uring's batched SQE publication.
//
// FIFO order within the batch is preserved: a consumer observes the items
// in the order they appear in vals.
func (r *Ring[T]) EnqueueBatch(vals []T) int {
	if len(vals) == 0 {
		return 0
	}
	var pos, n uint64
	for {
		pos = r.enqueue.Load()
		// Clamp to the free space implied by the dequeue cursor. The cursor
		// only moves forward, so a stale read under-counts free slots —
		// never over-commits.
		d := r.dequeue.Load()
		if pos < d {
			// pos is stale (read before d advanced past it); reload.
			continue
		}
		free := uint64(len(r.slots)) - (pos - d)
		if free == 0 {
			r.rejects.Add(1)
			return 0
		}
		n = uint64(len(vals))
		if n > free {
			n = free
		}
		if r.enqueue.CompareAndSwap(pos, pos+n) {
			break
		}
	}
	for i := uint64(0); i < n; i++ {
		p := pos + i
		s := &r.slots[p&r.mask]
		// A reserved slot is free (seq == p) or mid-release by a consumer
		// that already advanced the dequeue cursor past it; spin briefly.
		for s.seq.Load() != p {
			spinYield()
		}
		s.val = vals[i]
		s.seq.Store(p + 1)
	}
	return int(n)
}

// DequeueBatch removes up to len(dst) of the oldest items into dst, in FIFO
// order, and returns how many were dequeued (0 when the ring is empty). The
// run of slots is reserved with one CAS on the dequeue cursor — the batched
// completion-reaping analogue of SPDK's polled batch completions.
func (r *Ring[T]) DequeueBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	var zero T
	var pos, n uint64
	for {
		pos = r.dequeue.Load()
		// Clamp to the published items implied by the enqueue cursor; a
		// stale read under-counts, never over-commits.
		e := r.enqueue.Load()
		if e <= pos {
			return 0
		}
		n = uint64(len(dst))
		if avail := e - pos; n > avail {
			n = avail
		}
		if r.dequeue.CompareAndSwap(pos, pos+n) {
			break
		}
	}
	for i := uint64(0); i < n; i++ {
		p := pos + i
		s := &r.slots[p&r.mask]
		// A reserved slot is published (seq == p+1) or mid-fill by a
		// producer that already advanced the enqueue cursor past it.
		for s.seq.Load() != p+1 {
			spinYield()
		}
		dst[i] = s.val
		s.val = zero
		s.seq.Store(p + r.mask + 1)
	}
	return int(n)
}

// Dequeue removes and returns the oldest item; it returns ErrEmpty if the
// ring is empty.
func (r *Ring[T]) Dequeue() (T, error) {
	var zero T
	pos := r.dequeue.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if r.dequeue.CompareAndSwap(pos, pos+1) {
				v := s.val
				s.val = zero
				s.seq.Store(pos + r.mask + 1)
				return v, nil
			}
			pos = r.dequeue.Load()
		case seq < pos+1:
			return zero, ErrEmpty
		default:
			pos = r.dequeue.Load()
		}
	}
}
