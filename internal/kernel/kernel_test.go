package kernel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"labstor/internal/device"
	"labstor/internal/vtime"
)

func TestEngineLadderAt4K(t *testing.T) {
	model := vtime.Default()
	lat := map[string]vtime.Duration{}
	for _, name := range []string{"posix", "posix_aio", "libaio", "io_uring"} {
		dev := device.New("d", device.NVMe, 1<<30)
		eng, err := NewEngine(name, dev, model)
		if err != nil {
			t.Fatal(err)
		}
		th := NewThread(0)
		buf := make([]byte, 4096)
		var total vtime.Duration
		for i := 0; i < 50; i++ {
			d, err := eng.DoIO(th, device.Write, int64(i)*8192, buf)
			if err != nil {
				t.Fatal(err)
			}
			total += d
		}
		lat[name] = total
	}
	// The paper's ordering: io_uring < libaio < posix < posix_aio.
	if !(lat["io_uring"] < lat["libaio"] && lat["libaio"] < lat["posix"] && lat["posix"] < lat["posix_aio"]) {
		t.Fatalf("API ladder broken: %v", lat)
	}
}

func TestEngineUnknownName(t *testing.T) {
	if _, err := NewEngine("carrier_pigeon", device.New("d", device.NVMe, 1<<20), vtime.Default()); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestEngineFunctionalWrite(t *testing.T) {
	dev := device.New("d", device.NVMe, 1<<20)
	eng, _ := NewEngine("posix", dev, vtime.Default())
	th := NewThread(0)
	data := []byte("direct io")
	if _, err := eng.DoIO(th, device.Write, 4096, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	dev.ReadAt(buf, 4096)
	if !bytes.Equal(buf, data) {
		t.Fatal("engine write did not persist")
	}
}

func TestRunQueuePipelines(t *testing.T) {
	model := vtime.Default()
	mkOps := func(n int) []IOOp {
		ops := make([]IOOp, n)
		for i := range ops {
			ops[i] = IOOp{Op: device.Write, Offset: int64(i) * 8192, Size: 4096}
		}
		return ops
	}
	// qd32 must finish much faster than qd1 on a parallel device.
	dev1 := device.New("d1", device.NVMe, 1<<30)
	eng1, _ := NewEngine("io_uring", dev1, model)
	th1 := NewThread(0)
	if _, err := eng1.RunQueue(th1, mkOps(64), 1, nil); err != nil {
		t.Fatal(err)
	}
	dev2 := device.New("d2", device.NVMe, 1<<30)
	eng2, _ := NewEngine("io_uring", dev2, model)
	th2 := NewThread(0)
	// Spread across queues so depth actually overlaps.
	ops := mkOps(64)
	steer := 0
	eng2.SetQueueSteer(func(t *Thread) int { steer++; return steer % dev2.HardwareQueues() })
	if _, err := eng2.RunQueue(th2, ops, 32, nil); err != nil {
		t.Fatal(err)
	}
	if th2.Now() >= th1.Now() {
		t.Fatalf("qd32 (%v) not faster than qd1 (%v)", th2.Now(), th1.Now())
	}
}

func TestBlkSwitchSteerAvoidsLoad(t *testing.T) {
	dev := device.New("d", device.NVMe, 1<<30)
	buf := make([]byte, 64<<10)
	// Load queue 0 heavily.
	for i := 0; i < 8; i++ {
		dev.SubmitToQueue(0, device.Write, int64(i)*(64<<10), buf, 0)
	}
	steer := BlkSwitchSteer(dev)
	th := NewThread(0) // core 0 -> own queue 0 is loaded
	if q := steer(th); q == 0 {
		t.Fatal("steered into the loaded queue")
	}
	// An idle own queue is preferred.
	th5 := NewThread(5)
	if q := steer(th5); q != 5 {
		t.Fatalf("idle own queue not preferred: %d", q)
	}
}

func TestKFSCreateContention(t *testing.T) {
	model := vtime.Default()
	for _, name := range []string{"ext4", "xfs", "f2fs"} {
		prof, err := KFSProfileFor(name)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewKFS(prof, device.New("d"+name, device.NVMe, 1<<30), model)
		// 4 threads create files in the same directory concurrently.
		var wg sync.WaitGroup
		threads := make([]*Thread, 4)
		for i := range threads {
			threads[i] = NewThread(i)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					if err := fs.Create(threads[i], fmt.Sprintf("dir/f-%d-%d", i, j)); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if fs.Creates() != 200 {
			t.Fatalf("%s creates %d", name, fs.Creates())
		}
		// Throughput is bounded by the serialized lock holds: total elapsed
		// must be at least ops x hold / shards.
		var maxT vtime.Time
		for _, th := range threads {
			if th.Now() > maxT {
				maxT = th.Now()
			}
		}
		minSerial := vtime.Duration(200) * model.KFSDirLockHold / vtime.Duration(prof.DirShards)
		if vtime.Duration(maxT) < minSerial/2 {
			t.Fatalf("%s: no lock serialization visible (%v < %v)", name, maxT, minSerial)
		}
	}
}

func TestKFSWriteReadRoundTrip(t *testing.T) {
	prof, _ := KFSProfileFor("ext4")
	fs := NewKFS(prof, device.New("d", device.NVMe, 1<<30), vtime.Default())
	th := NewThread(0)
	data := bytes.Repeat([]byte{0xAB}, 10000)
	if err := fs.Write(th, "f.bin", 100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	n, err := fs.Read(th, "f.bin", 100, buf)
	if err != nil || n != len(data) {
		t.Fatalf("read %d %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("mismatch")
	}
	size, err := fs.Stat(th, "f.bin")
	if err != nil || size != 100+int64(len(data)) {
		t.Fatalf("stat %d %v", size, err)
	}
	// Hole before offset 100 reads zero.
	hole := make([]byte, 50)
	fs.Read(th, "f.bin", 0, hole)
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole nonzero")
		}
	}
}

func TestKFSNamespaceOps(t *testing.T) {
	prof, _ := KFSProfileFor("xfs")
	fs := NewKFS(prof, device.New("d", device.NVMe, 1<<30), vtime.Default())
	th := NewThread(0)
	fs.Mkdir(th, "dir")
	fs.Create(th, "dir/a")
	fs.Create(th, "dir/b")
	ls := fs.List(th, "dir")
	if len(ls) != 2 || ls[0] != "a" {
		t.Fatalf("list %v", ls)
	}
	if err := fs.Rename(th, "dir/a", "dir/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(th, "dir/a"); err == nil {
		t.Fatal("renamed-away stat succeeded")
	}
	if err := fs.Unlink(th, "dir/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(th, "dir/c"); err == nil {
		t.Fatal("double unlink succeeded")
	}
	if err := fs.Mkdir(th, "dir"); err == nil {
		t.Fatal("double mkdir succeeded")
	}
	if fs.Files() != 2 { // dir + b
		t.Fatalf("files %d", fs.Files())
	}
}

func TestKFSFsyncCostsDeviceWrite(t *testing.T) {
	prof, _ := KFSProfileFor("ext4")
	fs := NewKFS(prof, device.New("d", device.NVMe, 1<<30), vtime.Default())
	th := NewThread(0)
	fs.Create(th, "f")
	before := th.Now()
	if err := fs.Fsync(th, "f"); err != nil {
		t.Fatal(err)
	}
	if th.Now().Sub(before) < NVMeWriteFloor() {
		t.Fatalf("fsync too cheap: %v", th.Now().Sub(before))
	}
}

// NVMeWriteFloor is the minimum modeled time of a 4KB NVMe write.
func NVMeWriteFloor() vtime.Duration {
	return device.NVMeProfile.AccessLatency
}

func TestKFSProfileForUnknown(t *testing.T) {
	if _, err := KFSProfileFor("zfs"); err == nil {
		t.Fatal("unknown fs accepted")
	}
}

func TestThreadAccounting(t *testing.T) {
	th := NewThread(3)
	th.Charge(100)
	if th.CPU != 100 || th.Now() != 100 {
		t.Fatal("charge")
	}
	th.WaitUntil(500)
	if th.CPU != 100 || th.Now() != 500 {
		t.Fatal("wait must not bill CPU")
	}
	if th.Core != 3 {
		t.Fatal("core")
	}
}
