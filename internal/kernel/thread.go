// Package kernel simulates the Linux I/O stack that LabStor is evaluated
// against: the syscall boundary, VFS, page cache, block layer with MQ
// dispatch, interrupt-driven completion, the kernel's storage APIs (POSIX
// sync I/O, POSIX AIO, libaio, io_uring), in-kernel I/O schedulers (noop
// and blk-switch), and simplified-but-functional kernel filesystems
// (ext4/XFS/F2FS models) whose locking reproduces the metadata-scaling
// behaviour the paper measures.
//
// Everything is functional — bytes land on the simulated device — and the
// software path costs are charged in virtual time from the shared cost
// model, so the kernel baselines and the LabStor stacks are compared under
// one consistent accounting.
package kernel

import (
	"labstor/internal/vtime"
)

// Thread models one application thread performing I/O: it owns a virtual
// clock (its position on the timeline) and a core number (used by
// core-keyed queue mapping).
type Thread struct {
	Clock vtime.Clock
	Core  int
	// CPU accumulates the thread's charged CPU time (distinct from time
	// blocked waiting on devices).
	CPU vtime.Duration
}

// NewThread returns a thread pinned to the given core.
func NewThread(core int) *Thread { return &Thread{Core: core} }

// Charge advances the thread's clock by a CPU cost.
func (t *Thread) Charge(d vtime.Duration) {
	t.Clock.Advance(d)
	t.CPU += d
}

// WaitUntil advances the thread's clock to at least tm (blocking wait — not
// CPU).
func (t *Thread) WaitUntil(tm vtime.Time) { t.Clock.AdvanceTo(tm) }

// Now returns the thread's current virtual time.
func (t *Thread) Now() vtime.Time { return t.Clock.Now() }
