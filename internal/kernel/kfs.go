package kernel

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"labstor/internal/device"
	"labstor/internal/vtime"
)

// KFSProfile parameterizes a kernel filesystem model. The profiles capture
// what matters for the paper's comparisons: journal commit cost per
// metadata op and the lock granularity that throttles concurrent metadata
// operations (kernel filesystems "use locking in order to ensure the
// correctness of their data structures" and therefore scale poorly —
// Fig. 7).
type KFSProfile struct {
	Name string
	// JournalShards is the number of independent journal/transaction locks
	// (1 = a single serializing journal as in ext4's jbd2).
	JournalShards int
	// DirShards is the number of independent directory/namespace locks.
	DirShards int
	// JournalFactor scales the journal commit cost.
	JournalFactor float64
	// CreateExtra is additional per-create CPU (inode+bitmap allocation).
	CreateExtra vtime.Duration
}

// Kernel filesystem profiles.
var (
	// Ext4Profile: single jbd2 journal, per-directory mutex — the most
	// serialized of the three.
	Ext4Profile = KFSProfile{Name: "ext4", JournalShards: 1, DirShards: 1, JournalFactor: 1.0}
	// XFSProfile: per-AG locking gives some metadata concurrency.
	XFSProfile = KFSProfile{Name: "xfs", JournalShards: 4, DirShards: 4, JournalFactor: 1.15}
	// F2FSProfile: log-structured, but NAT/node locks still serialize.
	F2FSProfile = KFSProfile{Name: "f2fs", JournalShards: 2, DirShards: 2, JournalFactor: 0.9}
)

// KFSProfileFor returns the profile with the given name.
func KFSProfileFor(name string) (KFSProfile, error) {
	switch strings.ToLower(name) {
	case "ext4":
		return Ext4Profile, nil
	case "xfs":
		return XFSProfile, nil
	case "f2fs":
		return F2FSProfile, nil
	default:
		return KFSProfile{}, fmt.Errorf("kernel: unknown filesystem %q", name)
	}
}

// kfile is one file's metadata + block map in the kernel FS.
type kfile struct {
	path   string
	isDir  bool
	size   int64
	blocks map[int64]int64
}

// KFS is a functional, simplified kernel filesystem: data really lands on
// the device; metadata operations serialize on the profile's journal and
// directory locks and pay syscall/VFS/journal costs in virtual time.
type KFS struct {
	Profile KFSProfile

	model *vtime.CostModel
	dev   *device.Device

	blockSize int

	mu      sync.Mutex
	files   map[string]*kfile
	nextBlk int64

	journalLocks []vtime.Lock
	dirLocks     []vtime.Lock

	creates int64
}

// NewKFS creates a kernel filesystem over a device.
func NewKFS(profile KFSProfile, dev *device.Device, m *vtime.CostModel) *KFS {
	return &KFS{
		Profile:      profile,
		model:        m,
		dev:          dev,
		blockSize:    4096,
		files:        make(map[string]*kfile),
		nextBlk:      1024, // leave room for the superblock/journal area
		journalLocks: make([]vtime.Lock, profile.JournalShards),
		dirLocks:     make([]vtime.Lock, profile.DirShards),
	}
}

func (fs *KFS) shardOf(path string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(dirOf(path)))
	return int(h.Sum32()) % n
}

func dirOf(path string) string {
	if i := strings.LastIndex(path, "/"); i > 0 {
		return path[:i]
	}
	return "/"
}

// chargeMetaOp models one journaled metadata operation: syscall + VFS entry,
// directory-lock serialization, journal transaction serialization.
func (fs *KFS) chargeMetaOp(t *Thread, path string) {
	m := fs.model
	t.Charge(m.ModeSwitch + m.VFSOverhead)
	// Directory lock: serialize with other ops in the same directory shard.
	dl := &fs.dirLocks[fs.shardOf(path, len(fs.dirLocks))]
	release := dl.Acquire(t.Now(), m.KFSDirLockHold)
	t.WaitUntil(release.Add(-m.KFSDirLockHold))
	t.Charge(m.KFSDirLockHold)
	// Journal transaction.
	jl := &fs.journalLocks[fs.shardOf(path, len(fs.journalLocks))]
	hold := vtime.Duration(float64(m.KFSJournalCommit) * fs.Profile.JournalFactor)
	jrelease := jl.Acquire(t.Now(), hold)
	t.WaitUntil(jrelease.Add(-hold))
	t.Charge(hold + fs.Profile.CreateExtra + m.KFSInodeAlloc)
}

// Create makes a new file.
func (fs *KFS) Create(t *Thread, path string) error {
	fs.chargeMetaOp(t, path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return nil // POSIX open(O_CREAT) on existing file succeeds
	}
	fs.files[path] = &kfile{path: path, blocks: make(map[int64]int64)}
	fs.creates++
	return nil
}

// Mkdir makes a directory.
func (fs *KFS) Mkdir(t *Thread, path string) error {
	fs.chargeMetaOp(t, path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("kfs: %q exists", path)
	}
	fs.files[path] = &kfile{path: path, isDir: true, blocks: make(map[int64]int64)}
	return nil
}

// Unlink removes a file.
func (fs *KFS) Unlink(t *Thread, path string) error {
	fs.chargeMetaOp(t, path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("kfs: %q does not exist", path)
	}
	delete(fs.files, path)
	return nil
}

// Rename moves a file.
func (fs *KFS) Rename(t *Thread, from, to string) error {
	fs.chargeMetaOp(t, from)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[from]
	if !ok {
		return fmt.Errorf("kfs: %q does not exist", from)
	}
	delete(fs.files, from)
	f.path = to
	fs.files[to] = f
	return nil
}

// Stat returns the file size.
func (fs *KFS) Stat(t *Thread, path string) (int64, error) {
	t.Charge(fs.model.ModeSwitch + fs.model.VFSOverhead)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("kfs: %q does not exist", path)
	}
	return f.size, nil
}

// List returns the immediate children of dir.
func (fs *KFS) List(t *Thread, dir string) []string {
	t.Charge(fs.model.ModeSwitch + fs.model.VFSOverhead)
	prefix := strings.TrimSuffix(dir, "/") + "/"
	fs.mu.Lock()
	defer fs.mu.Unlock()
	seen := map[string]bool{}
	for p := range fs.files {
		if !strings.HasPrefix(p, prefix) || p == dir {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.Index(rest, "/"); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" {
			seen[rest] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Write writes data at off, creating the file if needed (O_CREAT).
func (fs *KFS) Write(t *Thread, path string, off int64, data []byte) error {
	m := fs.model
	// Syscall + VFS + page-cache copy + block layer per block span.
	t.Charge(m.ModeSwitch + m.VFSOverhead + m.Copy(len(data)))
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		if err := fs.Create(t, path); err != nil {
			return err
		}
		fs.mu.Lock()
		f = fs.files[path]
	}
	bs := int64(fs.blockSize)
	type span struct {
		phys    int64
		inBlock int
		lo, hi  int
	}
	var spans []span
	written := 0
	for written < len(data) {
		idx := (off + int64(written)) / bs
		inBlock := int((off + int64(written)) % bs)
		n := fs.blockSize - inBlock
		if n > len(data)-written {
			n = len(data) - written
		}
		phys, have := f.blocks[idx]
		if !have {
			phys = fs.nextBlk
			fs.nextBlk++
			f.blocks[idx] = phys
		}
		spans = append(spans, span{phys: phys, inBlock: inBlock, lo: written, hi: written + n})
		written += n
	}
	if end := off + int64(len(data)); end > f.size {
		f.size = end
	}
	fs.mu.Unlock()

	base := t.Now()
	var maxEnd vtime.Time
	for _, s := range spans {
		t.Charge(m.BlockLayerAlloc + m.KernelSchedOverhead)
		buf := make([]byte, fs.blockSize)
		if s.inBlock != 0 || s.hi-s.lo != fs.blockSize {
			if _, err := fs.dev.ReadAt(buf, s.phys*bs); err != nil {
				return err
			}
		}
		copy(buf[s.inBlock:], data[s.lo:s.hi])
		_, end, err := fs.dev.SubmitToQueue(t.Core%fs.dev.HardwareQueues(), device.Write, s.phys*bs, buf, base)
		if err != nil {
			return err
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	t.WaitUntil(maxEnd)
	t.Charge(m.InterruptWakeup)
	return nil
}

// Read fills buf from the file at off, returning bytes read.
func (fs *KFS) Read(t *Thread, path string, off int64, buf []byte) (int, error) {
	m := fs.model
	t.Charge(m.ModeSwitch + m.VFSOverhead + m.Copy(len(buf)))
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return 0, fmt.Errorf("kfs: %q does not exist", path)
	}
	want := int64(len(buf))
	if off >= f.size {
		fs.mu.Unlock()
		return 0, nil
	}
	if off+want > f.size {
		want = f.size - off
	}
	bs := int64(fs.blockSize)
	type span struct {
		phys    int64
		have    bool
		inBlock int
		lo, hi  int64
	}
	var spans []span
	read := int64(0)
	for read < want {
		idx := (off + read) / bs
		inBlock := int((off + read) % bs)
		n := int64(fs.blockSize - inBlock)
		if n > want-read {
			n = want - read
		}
		phys, have := f.blocks[idx]
		spans = append(spans, span{phys: phys, have: have, inBlock: inBlock, lo: read, hi: read + n})
		read += n
	}
	fs.mu.Unlock()

	base := t.Now()
	var maxEnd vtime.Time
	for _, s := range spans {
		if !s.have {
			for i := s.lo; i < s.hi; i++ {
				buf[i] = 0
			}
			continue
		}
		t.Charge(m.BlockLayerAlloc + m.KernelSchedOverhead)
		block := make([]byte, fs.blockSize)
		_, end, err := fs.dev.SubmitToQueue(t.Core%fs.dev.HardwareQueues(), device.Read, s.phys*bs, block, base)
		if err != nil {
			return 0, err
		}
		if end > maxEnd {
			maxEnd = end
		}
		copy(buf[s.lo:s.hi], block[s.inBlock:s.inBlock+int(s.hi-s.lo)])
	}
	t.WaitUntil(maxEnd)
	t.Charge(m.InterruptWakeup)
	return int(read), nil
}

// Fsync flushes: journal transaction serialization, then the commit record
// must reach the device (the synchronous wait that makes fsync-heavy
// workloads expensive on journaling filesystems).
func (fs *KFS) Fsync(t *Thread, path string) error {
	m := fs.model
	t.Charge(m.ModeSwitch)
	jl := &fs.journalLocks[fs.shardOf(path, len(fs.journalLocks))]
	hold := vtime.Duration(float64(m.KFSJournalCommit) * fs.Profile.JournalFactor)
	release := jl.Acquire(t.Now(), hold)
	t.WaitUntil(release)
	// Commit record write + flush barrier.
	fs.mu.Lock()
	commitBlk := fs.nextBlk % 1024 // rotate within the journal area
	fs.mu.Unlock()
	buf := make([]byte, fs.blockSize)
	_, end, err := fs.dev.SubmitToQueue(t.Core%fs.dev.HardwareQueues(), device.Write, commitBlk*int64(fs.blockSize), buf, t.Now())
	if err != nil {
		return err
	}
	t.WaitUntil(end)
	t.Charge(m.InterruptWakeup)
	return nil
}

// Creates returns the create-op counter.
func (fs *KFS) Creates() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.creates
}

// Files returns the file count.
func (fs *KFS) Files() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}
