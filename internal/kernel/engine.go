package kernel

import (
	"container/heap"
	"fmt"

	"labstor/internal/device"
	"labstor/internal/vtime"
)

// Engine is one of the kernel's userspace-visible storage APIs performing
// direct I/O against a raw device file (the paper's Fig. 6 baselines:
// O_DIRECT to /dev/nvme0n1 and friends).
type Engine struct {
	// Name identifies the API ("posix", "posix_aio", "libaio", "io_uring").
	Name string

	model *vtime.CostModel
	dev   *device.Device

	// submitCPU is charged on the submitting thread per op.
	submitCPU func(size int) vtime.Duration
	// completeCPU is charged when the completion is observed.
	completeCPU func(size int) vtime.Duration
	// blockingWait: the thread sleeps and is woken by an interrupt
	// (charging InterruptWakeup) instead of polling.
	blockingWait bool
	// queueSteer selects the hardware queue (defaults to core-keyed).
	queueSteer func(t *Thread) int

	// Pace, when set, is invoked with the thread's virtual time after each
	// completion inside RunQueue — used by experiments that couple virtual
	// time to wall time.
	Pace func(vtime.Time)
}

// NewEngine builds one of the named kernel I/O engines over a device.
// Supported names: "posix", "posix_aio", "libaio", "io_uring".
func NewEngine(name string, dev *device.Device, m *vtime.CostModel) (*Engine, error) {
	e := &Engine{Name: name, model: m, dev: dev}
	e.queueSteer = func(t *Thread) int { return t.Core % dev.HardwareQueues() }
	switch name {
	case "posix":
		// write(2)/read(2): syscall + VFS + block layer + in-kernel
		// scheduler + copy between the user buffer and the kernel bio.
		e.submitCPU = func(size int) vtime.Duration {
			return m.ModeSwitch + m.VFSOverhead + m.BlockLayerAlloc + m.KernelSchedOverhead + m.Copy(size)
		}
		e.completeCPU = func(int) vtime.Duration { return 0 }
		e.blockingWait = true
	case "posix_aio":
		// aio_write/aio_read: the glibc thread pool adds a dispatch hop and
		// two extra context switches on top of the sync path.
		e.submitCPU = func(size int) vtime.Duration {
			return m.ModeSwitch + m.AIOThreadDispatch + m.ContextSwitch +
				m.VFSOverhead + m.BlockLayerAlloc + m.KernelSchedOverhead + m.Copy(size)
		}
		e.completeCPU = func(int) vtime.Duration { return m.ContextSwitch }
		e.blockingWait = true
	case "libaio":
		// io_submit/io_getevents: async, no per-op thread switch, but two
		// syscalls per op at depth 1 plus block-layer costs.
		e.submitCPU = func(size int) vtime.Duration {
			return m.ModeSwitch + m.LibaioSubmit + m.BlockLayerAlloc + m.KernelSchedOverhead + m.Copy(size)
		}
		e.completeCPU = func(int) vtime.Duration { return m.ModeSwitch / 2 }
		e.blockingWait = false
	case "io_uring":
		// SQ/CQ rings: amortized submission, polled completion, but the
		// request still traverses the kernel block layer.
		e.submitCPU = func(size int) vtime.Duration {
			return m.IOUringSubmit + m.BlockLayerAlloc + m.KernelSchedOverhead + m.Copy(size)
		}
		e.completeCPU = func(int) vtime.Duration { return m.IOUringSubmit / 4 }
		e.blockingWait = false
	default:
		return nil, fmt.Errorf("kernel: unknown engine %q", name)
	}
	return e, nil
}

// SetQueueSteer overrides hardware-queue selection (used by the in-kernel
// blk-switch scheduler model).
func (e *Engine) SetQueueSteer(f func(t *Thread) int) { e.queueSteer = f }

// AddSubmitCost adds a fixed per-op submission cost on top of the engine's
// path — e.g. the in-kernel blk-switch steering cost: computing per-queue
// load and handing the request off to another core's hardware context
// (lock acquisition + re-insertion) is substantially more expensive inside
// the kernel than a userspace horizon read.
func (e *Engine) AddSubmitCost(d vtime.Duration) {
	base := e.submitCPU
	e.submitCPU = func(size int) vtime.Duration { return base(size) + d }
}

// DoIO performs one synchronous op at the thread's current time and returns
// its modeled latency.
func (e *Engine) DoIO(t *Thread, op device.Op, off int64, buf []byte) (vtime.Duration, error) {
	start := t.Now()
	t.Charge(e.submitCPU(len(buf)))
	hctx := e.queueSteer(t)
	_, end, err := e.dev.SubmitToQueue(hctx, op, off, buf, t.Now())
	if err != nil {
		return 0, err
	}
	if e.blockingWait {
		// Sleep until the device interrupt wakes us.
		t.WaitUntil(end)
		t.Charge(e.model.InterruptWakeup)
	} else {
		// Poll for the completion.
		t.WaitUntil(end)
	}
	t.Charge(e.completeCPU(len(buf)))
	return t.Now().Sub(start), nil
}

// pendingOp tracks one inflight async op for RunQueue.
type pendingOp struct {
	end vtime.Time
}

type pendingHeap []pendingOp

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)        { *h = append(*h, x.(pendingOp)) }
func (h *pendingHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// IOOp describes one operation for RunQueue.
type IOOp struct {
	Op     device.Op
	Offset int64
	Size   int
}

// RunQueue executes ops with up to iodepth outstanding (async engines) and
// returns each op's modeled completion latency. Sync engines degrade to
// iodepth 1.
func (e *Engine) RunQueue(t *Thread, ops []IOOp, iodepth int, buf []byte) ([]vtime.Duration, error) {
	if iodepth < 1 || e.blockingWait {
		iodepth = 1
	}
	lat := make([]vtime.Duration, 0, len(ops))
	inflight := &pendingHeap{}
	starts := make([]vtime.Time, 0, len(ops))
	for _, op := range ops {
		// Respect the queue depth: wait for the earliest completion.
		for inflight.Len() >= iodepth {
			p := heap.Pop(inflight).(pendingOp)
			t.WaitUntil(p.end)
			t.Charge(e.completeCPU(op.Size))
			if e.Pace != nil {
				e.Pace(t.Now())
			}
		}
		start := t.Now()
		b := buf
		if len(b) < op.Size {
			b = make([]byte, op.Size)
		}
		t.Charge(e.submitCPU(op.Size))
		hctx := e.queueSteer(t)
		_, end, err := e.dev.SubmitToQueue(hctx, op.Op, op.Offset, b[:op.Size], t.Now())
		if err != nil {
			return nil, err
		}
		if e.blockingWait {
			t.WaitUntil(end)
			t.Charge(e.model.InterruptWakeup)
			lat = append(lat, t.Now().Sub(start))
		} else {
			heap.Push(inflight, pendingOp{end: end})
			starts = append(starts, start)
		}
	}
	for inflight.Len() > 0 {
		p := heap.Pop(inflight).(pendingOp)
		t.WaitUntil(p.end)
		t.Charge(e.completeCPU(0))
		// Completion order approximates submission order for latency
		// accounting at steady depth.
		idx := len(lat)
		if idx < len(starts) {
			lat = append(lat, t.Now().Sub(starts[idx]))
		}
	}
	return lat, nil
}

// BlkSwitchSteer returns a queue steer that picks the least-loaded hardware
// queue, modeling the in-kernel blk-switch scheduler (with its extra
// in-kernel steering cost folded into the submit path by the caller).
// The thread's own core-keyed queue wins ties, so uncontended threads keep
// cache-friendly locality instead of piling onto queue 0.
func BlkSwitchSteer(dev *device.Device) func(t *Thread) int {
	return func(t *Thread) int {
		own := t.Core % dev.HardwareQueues()
		ownH := dev.QueueHorizon(own)
		best, bestT := own, ownH
		for q := 0; q < dev.HardwareQueues(); q++ {
			if h := dev.QueueHorizon(q); h < bestT {
				best, bestT = q, h
			}
		}
		if ownH <= bestT {
			return own
		}
		return best
	}
}
