package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/obs"
	"labstor/internal/runtime"
	"labstor/internal/spec"
	"labstor/internal/telemetry"
)

func bootServedRuntime(t *testing.T, pprof bool) (*runtime.Runtime, *runtime.Client, string) {
	t.Helper()
	rt := runtime.New(runtime.Options{
		MaxWorkers:      2,
		PerfSampleEvery: 1,
		SLOCheckEvery:   time.Hour,
		SLOs:            []runtime.SLOTarget{{Stack: "fs::/s", P99US: 1e9, MaxErrRate: 0.5}},
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)

	srv := obs.New(rt, obs.Config{Addr: "127.0.0.1:0", Pprof: pprof})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000}), addr
}

func drive(t *testing.T, cli *runtime.Client, writes, badReads int) {
	t.Helper()
	buf := make([]byte, 512)
	for i := 0; i < writes; i++ {
		req := core.NewRequest(core.OpWrite)
		req.Path, req.Flags = "f", core.FlagCreate
		req.Offset, req.Size, req.Data = int64(i)*512, len(buf), buf
		if err := cli.Submit("fs::/s", req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < badReads; i++ {
		req := core.NewRequest(core.OpRead)
		req.Path, req.Size, req.Data = "missing", len(buf), buf
		_ = cli.Submit("fs::/s", req)
	}
}

func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// The same exposition grammar the telemetry golden test enforces: scrapes
// over HTTP must stay parseable by a real Prometheus server.
var (
	promMetricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$`)
	promTypeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

func TestMetricsEndpoint(t *testing.T) {
	_, cli, addr := bootServedRuntime(t, false)
	drive(t, cli, 25, 0)

	code, body := get(t, addr, "/metrics")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/metrics: code %d, %d bytes", code, len(body))
	}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promTypeLine.MatchString(line) {
				t.Fatalf("line %d not a valid TYPE comment: %q", i+1, line)
			}
			continue
		}
		if !promMetricLine.MatchString(line) {
			t.Fatalf("line %d not a valid sample: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"labstor_client_submitted 25",
		`labstor_slo_ok{stack="fs::/s"}`,
		`labstor_stack_requests{stack="fs::/s"} 25`,
		"labstor_request_latency_us{quantile=\"0.99\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSnapshotEndpointRoundTrip(t *testing.T) {
	rt, cli, addr := bootServedRuntime(t, false)
	drive(t, cli, 10, 3)
	rt.EvaluateSLOs()

	code, body := get(t, addr, "/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: code %d", code)
	}
	var snap runtime.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot does not unmarshal into runtime.Snapshot: %v", err)
	}
	var processed int64
	for _, w := range snap.Workers {
		processed += w.Processed
	}
	if processed != 13 {
		t.Fatalf("snapshot processed = %d, want 13", processed)
	}
	if len(snap.SLOs) != 1 || snap.SLOs[0].Stack != "fs::/s" {
		t.Fatalf("snapshot SLOs = %+v", snap.SLOs)
	}
	if len(snap.Events) == 0 || len(snap.ErrorTraces) != 3 {
		t.Fatalf("snapshot events=%d error_traces=%d", len(snap.Events), len(snap.ErrorTraces))
	}
	// Two scrapes re-render: state advances between them.
	drive(t, cli, 5, 0)
	_, body2 := get(t, addr, "/snapshot")
	var snap2 runtime.Snapshot
	if err := json.Unmarshal([]byte(body2), &snap2); err != nil {
		t.Fatal(err)
	}
	processed = 0
	for _, w := range snap2.Workers {
		processed += w.Processed
	}
	if processed != 18 {
		t.Fatalf("second snapshot processed = %d, want 18", processed)
	}
}

func TestTracesEndpointFilters(t *testing.T) {
	_, cli, addr := bootServedRuntime(t, false)
	drive(t, cli, 8, 4)

	code, body := get(t, addr, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces: code %d", code)
	}
	var traces []telemetry.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 12 {
		t.Fatalf("/traces returned %d, want 12", len(traces))
	}

	_, body = get(t, addr, "/traces?err=1")
	var errTraces []telemetry.Trace
	if err := json.Unmarshal([]byte(body), &errTraces); err != nil {
		t.Fatal(err)
	}
	if len(errTraces) != 4 {
		t.Fatalf("/traces?err=1 returned %d, want 4", len(errTraces))
	}
	for _, tr := range errTraces {
		if tr.Err == "" {
			t.Fatalf("error filter returned a clean trace: %+v", tr)
		}
	}

	_, body = get(t, addr, "/traces?op=write&stack=fs::/s&n=3")
	var writes []telemetry.Trace
	if err := json.Unmarshal([]byte(body), &writes); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 3 {
		t.Fatalf("op/stack/n filter returned %d, want 3", len(writes))
	}
	for _, tr := range writes {
		if tr.Op != "write" || tr.Stack != "fs::/s" {
			t.Fatalf("filtered trace = %+v", tr)
		}
	}

	// A latency floor far above anything modeled filters everything out.
	_, body = get(t, addr, "/traces?min_us=1000000000")
	var none []telemetry.Trace
	if err := json.Unmarshal([]byte(body), &none); err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("min_us filter kept %d traces", len(none))
	}
}

func TestEventsEndpoint(t *testing.T) {
	_, cli, addr := bootServedRuntime(t, false)
	drive(t, cli, 2, 1)

	code, body := get(t, addr, "/events")
	if code != http.StatusOK {
		t.Fatalf("/events: code %d", code)
	}
	var evs []telemetry.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
	}
	for _, want := range []string{telemetry.EvRuntime, telemetry.EvWorker, telemetry.EvRequestError, telemetry.EvObserve} {
		if !kinds[want] {
			t.Fatalf("/events missing kind %q (have %v)", want, kinds)
		}
	}

	_, body = get(t, addr, "/events?kind=request")
	var reqEvs []telemetry.Event
	if err := json.Unmarshal([]byte(body), &reqEvs); err != nil {
		t.Fatal(err)
	}
	if len(reqEvs) != 1 || reqEvs[0].Kind != telemetry.EvRequestError {
		t.Fatalf("/events?kind=request = %+v", reqEvs)
	}
}

func TestSLOsAndHealthz(t *testing.T) {
	rt, cli, addr := bootServedRuntime(t, false)
	drive(t, cli, 6, 0)
	rt.EvaluateSLOs()

	code, body := get(t, addr, "/slos")
	if code != http.StatusOK {
		t.Fatalf("/slos: code %d", code)
	}
	var slos []runtime.SLOStatus
	if err := json.Unmarshal([]byte(body), &slos); err != nil {
		t.Fatal(err)
	}
	if len(slos) != 1 || !slos[0].OK {
		t.Fatalf("/slos = %+v", slos)
	}

	code, body = get(t, addr, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "running") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	rt.Crash()
	code, body = get(t, addr, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "crashed") {
		t.Fatalf("/healthz after crash = %d %q", code, body)
	}
	if err := rt.Restart(); err != nil {
		t.Fatal(err)
	}
	code, _ = get(t, addr, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz after restart = %d", code)
	}
}

func TestPprofGating(t *testing.T) {
	_, _, withAddr := bootServedRuntime(t, true)
	code, body := get(t, withAddr, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof enabled: code %d", code)
	}

	_, _, withoutAddr := bootServedRuntime(t, false)
	code, _ = get(t, withoutAddr, "/debug/pprof/")
	if code != http.StatusNotFound {
		t.Fatalf("pprof disabled but served: code %d", code)
	}
}

func TestServeConcurrentWithTraffic(t *testing.T) {
	_, cli, addr := bootServedRuntime(t, false)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 256)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := core.NewRequest(core.OpWrite)
			req.Path, req.Flags = "hot", core.FlagCreate
			req.Offset, req.Size, req.Data = int64(i)*256, len(buf), buf
			_ = cli.Submit("fs::/s", req)
		}
	}()
	for i := 0; i < 20; i++ {
		for _, ep := range []string{"/metrics", "/snapshot", "/traces", "/events", "/healthz"} {
			code, body := get(t, addr, ep)
			if code != http.StatusOK || len(body) == 0 {
				t.Errorf("%s under load: code %d, %d bytes", ep, code, len(body))
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFromConfigDisabled(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1})
	srv, bound, err := obs.FromConfig(rt, spec.ObserveSpec{Pprof: true})
	if srv != nil || bound != "" || err != nil {
		t.Fatalf("FromConfig with empty addr: %v %q %v", srv, bound, err)
	}
}

func TestIndexListsEndpoints(t *testing.T) {
	_, _, addr := bootServedRuntime(t, true)
	code, body := get(t, addr, "/")
	if code != http.StatusOK {
		t.Fatalf("/: code %d", code)
	}
	for _, want := range []string{"/metrics", "/snapshot", "/traces", "/events", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q: %s", want, body)
		}
	}
	if code, _ := get(t, addr, "/nonexistent"); code != http.StatusNotFound {
		t.Fatalf("unknown path served: %d", code)
	}
}
