package obs_test

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/obs"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// bootBundledRuntime boots a runtime with a breachable error-rate SLO on an
// fs stack plus a latency SLO on a deliberately slow dummy stack, served by
// an obs server with incident capture armed into a test temp dir.
func bootBundledRuntime(t *testing.T, bundle obs.BundleConfig) (*runtime.Runtime, *runtime.Client, *obs.Server, string) {
	t.Helper()
	rt := runtime.New(runtime.Options{
		MaxWorkers:      2,
		PerfSampleEvery: 1,
		TailRing:        32,
		SLOCheckEvery:   time.Hour,
		SLOs: []runtime.SLOTarget{
			{Stack: "dummy::/slow", P99US: 100},
			{Stack: "fs::/s", MaxErrRate: 0.2},
		},
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	// 2ms of modeled compute per request: p99 far beyond the 100us target.
	if _, err := rt.MountSpec(`
mount: dummy::/slow
mods:
  - uuid: d1
    type: labstor.dummy
    attrs:
      cost_ns: 2000000
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)

	srv := obs.New(rt, obs.Config{Addr: "127.0.0.1:0", Bundle: bundle})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000}), srv, addr
}

// submitN drives n ops against mount; create=false against a missing path
// produces errored completions (the error-rate SLO's fuel).
func submitN(t *testing.T, cli *runtime.Client, mount string, op core.Op, path string, n int, create bool) {
	t.Helper()
	buf := make([]byte, 256)
	for i := 0; i < n; i++ {
		req := core.NewRequest(op)
		req.Path = path
		if create {
			req.Flags = core.FlagCreate
		}
		req.Offset, req.Size, req.Data = int64(i)*256, len(buf), buf
		err := cli.Submit(mount, req)
		if err != nil && create {
			// Errored completions are this helper's point when create is
			// false (missing-path reads fuel the error-rate SLO).
			t.Fatal(err)
		}
	}
}

// waitBundles polls the bundler until it has written want bundles (capture
// runs on a breach-hook goroutine; there is no synchronous handoff to wait
// on from the evaluation call).
func waitBundles(t *testing.T, b *obs.Bundler, want int) []obs.BundleInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := b.List(); len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("bundler wrote %d bundles, want %d", len(b.List()), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBundleCapturedOnBreach is the acceptance criterion end to end: an
// induced SLO breach produces a diagnostic bundle directory holding the CPU
// profile, flight-recorder dump, outlier traces and attribution table.
func TestBundleCapturedOnBreach(t *testing.T) {
	dir := t.TempDir()
	rt, cli, srv, addr := bootBundledRuntime(t, obs.BundleConfig{
		Dir:        dir,
		ProfileDur: 50 * time.Millisecond,
	})

	// Background load so the CPU profile has something to sample, then the
	// breach: the slow stack blows its 100us p99 target.
	submitN(t, cli, "fs::/s", core.OpWrite, "f", 200, true)
	submitN(t, cli, "dummy::/slow", core.OpWrite, "x", 10, true)
	rt.EvaluateSLOs()

	bundles := waitBundles(t, srv.Bundler(), 1)
	b := bundles[0]
	if b.Stack != "dummy::/slow" || b.Err != "" {
		t.Fatalf("bundle = %+v", b)
	}
	for _, name := range []string{"cpu.pprof", "meta.json", "flight.txt", "traces.json", "metrics.json", "attribution.json", "snapshot.json"} {
		st, err := os.Stat(filepath.Join(b.Dir, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("bundle artifact %s is empty", name)
		}
	}

	// The trace capture is well-formed JSON carrying the ring split.
	raw, err := os.ReadFile(filepath.Join(b.Dir, "traces.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rings struct {
		Tail    []telemetry.Trace `json:"tail"`
		Errors  []telemetry.Trace `json:"errors"`
		Sampled []telemetry.Trace `json:"sampled"`
	}
	if err := json.Unmarshal(raw, &rings); err != nil {
		t.Fatalf("traces.json: %v", err)
	}
	if len(rings.Sampled) == 0 {
		t.Fatal("traces.json carries no sampled traces despite PerfSampleEvery=1")
	}

	// meta.json pins the breach that triggered capture.
	raw, err = os.ReadFile(filepath.Join(b.Dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Stack string            `json:"stack"`
		SLO   runtime.SLOStatus `json:"slo"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Stack != "dummy::/slow" || meta.SLO.OK {
		t.Fatalf("meta.json = %+v", meta)
	}

	// /bundles lists it.
	code, body := get(t, addr, "/bundles")
	if code != http.StatusOK {
		t.Fatalf("/bundles: code %d", code)
	}
	var listing struct {
		Armed   bool             `json:"armed"`
		Bundles []obs.BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Armed || len(listing.Bundles) != 1 || listing.Bundles[0].ID != b.ID {
		t.Fatalf("/bundles = %s", body)
	}

	// The capture is on the flight recorder.
	found := false
	for _, ev := range rt.Events().Filter(telemetry.EvBundle) {
		if ev.Kind == telemetry.EvBundle {
			found = true
		}
	}
	if !found {
		t.Fatal("no obs.bundle flight event recorded")
	}
}

// TestBundleCooldown pins the rate limit: a second breach of the same stack
// inside the cooldown window is skipped, not captured.
func TestBundleCooldown(t *testing.T) {
	dir := t.TempDir()
	rt, cli, srv, _ := bootBundledRuntime(t, obs.BundleConfig{
		Dir:        dir,
		ProfileDur: 10 * time.Millisecond,
		Cooldown:   time.Hour,
	})

	// Breach #1: error rate on fs::/s (missing-path reads all fail).
	submitN(t, cli, "fs::/s", core.OpRead, "missing", 10, false)
	rt.EvaluateSLOs()
	waitBundles(t, srv.Bundler(), 1)

	// Recover (a clean window), then breach again inside the cooldown.
	submitN(t, cli, "fs::/s", core.OpWrite, "f", 50, true)
	rt.EvaluateSLOs()
	submitN(t, cli, "fs::/s", core.OpRead, "missing", 10, false)
	rt.EvaluateSLOs()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Bundler().Skipped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second breach neither captured nor counted as skipped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Bundler().Wait()
	if got := srv.Bundler().List(); len(got) != 1 {
		t.Fatalf("cooldown did not hold: %d bundles", len(got))
	}
}

// TestBundleLifetimeCap pins the global cap: once Max bundles exist, further
// breaches are skipped even across different stacks.
func TestBundleLifetimeCap(t *testing.T) {
	dir := t.TempDir()
	rt, cli, srv, _ := bootBundledRuntime(t, obs.BundleConfig{
		Dir:        dir,
		ProfileDur: 10 * time.Millisecond,
		Cooldown:   time.Millisecond,
		Max:        1,
	})

	submitN(t, cli, "dummy::/slow", core.OpWrite, "x", 10, true)
	rt.EvaluateSLOs()
	waitBundles(t, srv.Bundler(), 1)

	// A different stack breaches: the lifetime cap still applies.
	submitN(t, cli, "fs::/s", core.OpRead, "missing", 10, false)
	rt.EvaluateSLOs()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Bundler().Skipped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cap breach neither captured nor skipped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Bundler().List(); len(got) != 1 {
		t.Fatalf("lifetime cap did not hold: %d bundles", len(got))
	}
}

// TestProfileEndpoint checks /profile serves the attribution tables and that
// the served shares sum to ~100% (the acceptance criterion, over HTTP).
func TestProfileEndpoint(t *testing.T) {
	rt, cli, addr := bootServedRuntime(t, false)
	submitN(t, cli, "fs::/s", core.OpWrite, "f", 300, true)

	var resp obs.ProfileResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, addr, "/profile")
		if code != http.StatusOK {
			t.Fatalf("/profile: code %d", code)
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("/profile: %v", err)
		}
		if len(resp.Stacks) == 1 && resp.Stacks[0].Requests == 300 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/profile never converged: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// 300 writes drove the data path, so the copy audit cannot be empty
	// (at minimum the device DMA site fired).
	var copies int64
	for _, c := range resp.CopySites {
		copies += c.Count
	}
	if copies == 0 {
		t.Fatal("/profile copy_sites recorded no copies after 300 writes")
	}
	sa := resp.Stacks[0]
	if sum := sa.QueueWaitPct + sa.CPUPct + sa.DevicePct; math.Abs(sum-100) > 0.01 {
		t.Fatalf("/profile coarse shares sum to %.3f%%", sum)
	}
	var stageSum float64
	for _, st := range sa.Stages {
		stageSum += st.SharePct
	}
	if len(sa.Stages) == 0 || math.Abs(stageSum-100) > 0.5 {
		t.Fatalf("/profile stage shares sum to %.3f%% over %d stages", stageSum, len(sa.Stages))
	}
	_ = rt
}

// TestTracesExportChrome checks the Perfetto export: valid Chrome
// trace-event JSON with metadata and complete events, honoring the shared
// /traces selection grammar.
func TestTracesExportChrome(t *testing.T) {
	_, cli, addr := bootServedRuntime(t, false)
	submitN(t, cli, "fs::/s", core.OpWrite, "f", 20, true)

	code, body := get(t, addr, "/traces/export?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("/traces/export: code %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("export is not valid chrome trace JSON: %v", err)
	}
	spans, metas := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			metas++
		}
	}
	if spans == 0 || metas == 0 {
		t.Fatalf("export has %d span events and %d metadata events", spans, metas)
	}

	// The selection grammar carries over: an impossible floor empties it.
	_, body = get(t, addr, "/traces/export?min_us=1000000000")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			t.Fatalf("filtered export still has span events")
		}
	}

	// Unknown formats are rejected, not silently defaulted.
	if code, _ := get(t, addr, "/traces/export?format=svg"); code != http.StatusBadRequest {
		t.Fatalf("bad format: code %d", code)
	}
}

// TestTracesTailParam checks ?tail=1 selects the tail-outlier ring.
func TestTracesTailParam(t *testing.T) {
	dir := t.TempDir()
	rt, cli, _, addr := bootBundledRuntime(t, obs.BundleConfig{Dir: dir})
	submitN(t, cli, "fs::/s", core.OpWrite, "f", 500, true)

	code, body := get(t, addr, "/traces?tail=1")
	if code != http.StatusOK {
		t.Fatalf("/traces?tail=1: code %d", code)
	}
	var tail []telemetry.Trace
	if err := json.Unmarshal([]byte(body), &tail); err != nil {
		t.Fatal(err)
	}
	if want := len(rt.TailTraces()); len(tail) != want {
		t.Fatalf("/traces?tail=1 returned %d traces, runtime ring holds %d", len(tail), want)
	}
}
