// Package obs is the live observability plane: an opt-in HTTP server that
// exposes the Runtime's metrics, snapshot tree, trace rings, flight recorder
// and pprof handlers while the Runtime serves traffic.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (hand-rolled, no client deps)
//	/snapshot       the full runtime.Snapshot as JSON (re-rendered on demand)
//	/traces         recent sampled traces; ?stack= ?op= ?min_us= ?err=1 ?tail=1 ?n=
//	/traces/export  same selection as /traces; ?format=chrome emits Chrome
//	                trace-event JSON loadable in Perfetto / chrome://tracing
//	/profile        per-stack latency-attribution tables as JSON
//	/bundles        incident bundles captured so far (when capture is armed)
//	/events         flight-recorder tail; ?kind=<dotted prefix> ?n=
//	/slos           SLO watchdog verdicts as JSON
//	/healthz        liveness + runtime state
//	/debug/pprof/   net/http/pprof (when enabled)
//
// The server is wired from the runtime config's `observe:` section and costs
// nothing until scraped: every handler renders from the same registries the
// runtime already maintains.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"labstor/internal/runtime"
	"labstor/internal/spec"
	"labstor/internal/telemetry"
)

// Config selects the listen address and optional handlers.
type Config struct {
	// Addr is the listen address ("host:0" binds an ephemeral port).
	Addr string
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Bundle arms SLO-breach incident capture when Bundle.Dir is set.
	Bundle BundleConfig
}

// Server serves the observability endpoints for one Runtime.
type Server struct {
	rt      *runtime.Runtime
	cfg     Config
	ln      net.Listener
	srv     *http.Server
	bundler *Bundler
}

// New builds a server (not yet listening) for rt. When cfg.Bundle.Dir is
// set, a Bundler is armed on the runtime's SLO-breach hook immediately —
// incident capture does not wait for Start (breaches during boot warmup
// are often the interesting ones).
func New(rt *runtime.Runtime, cfg Config) *Server {
	s := &Server{rt: rt, cfg: cfg}
	if cfg.Bundle.Dir != "" {
		s.bundler = NewBundler(rt, cfg.Bundle)
		rt.OnSLOBreach(s.bundler.OnBreach)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.timed("/metrics", s.handleMetrics))
	mux.HandleFunc("/snapshot", s.timed("/snapshot", s.handleSnapshot))
	mux.HandleFunc("/traces", s.timed("/traces", s.handleTraces))
	mux.HandleFunc("/traces/export", s.timed("/traces/export", s.handleTracesExport))
	mux.HandleFunc("/profile", s.timed("/profile", s.handleProfile))
	mux.HandleFunc("/bundles", s.timed("/bundles", s.handleBundles))
	mux.HandleFunc("/events", s.timed("/events", s.handleEvents))
	mux.HandleFunc("/slos", s.timed("/slos", s.handleSLOs))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// timed wraps a handler so the plane self-reports its serving cost: each
// invocation's duration lands in the runtime's own registry as the
// `obs.handler_us;endpoint=<path>` histogram (scrape counts ride along in
// the histogram's count). The cost of observing the observer is one clock
// read and one histogram insert per request.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.rt.Metrics().Histogram("obs.handler_us;endpoint=" + endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		h(w, r)
		hist.Observe(float64(time.Since(begin).Microseconds()))
	}
}

// Start binds the listener and serves in the background. It returns the
// bound address (useful with :0) and records the fact on the flight
// recorder so scrapes have a provenance line.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.rt.Events().Recordf(telemetry.EvObserve, 0, "observability server listening on %s", ln.Addr())
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	s.rt.Events().Recordf(telemetry.EvObserve, 0, "observability server closed")
	return s.srv.Close()
}

// Bundler returns the armed incident bundler (nil when capture is off).
func (s *Server) Bundler() *Bundler { return s.bundler }

// FromConfig starts a server when the parsed `observe:` section enables one
// (nil, nil when Addr is empty — observability stays opt-in).
func FromConfig(rt *runtime.Runtime, ob spec.ObserveSpec) (*Server, string, error) {
	if ob.Addr == "" {
		return nil, "", nil
	}
	s := New(rt, Config{
		Addr:  ob.Addr,
		Pprof: ob.Pprof,
		Bundle: BundleConfig{
			Dir:        ob.BundleDir,
			ProfileDur: time.Duration(ob.BundleProfileMs) * time.Millisecond,
			Cooldown:   time.Duration(ob.BundleCooldownMs) * time.Millisecond,
			Max:        ob.BundleMax,
		},
	})
	bound, err := s.Start()
	if err != nil {
		return nil, "", err
	}
	return s, bound, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "labstor observability plane")
	for _, ep := range []string{"/metrics", "/snapshot", "/traces", "/traces/export", "/profile", "/bundles", "/events", "/slos", "/healthz"} {
		fmt.Fprintln(w, "  "+ep)
	}
	if s.cfg.Pprof {
		fmt.Fprintln(w, "  /debug/pprof/")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, s.rt.Metrics().Snapshot())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	raw, err := s.rt.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// selectTraces applies the shared /traces query grammar to pick a ring and
// filter it. ?tail=1 selects the tail-outlier ring (the slowest requests,
// retained regardless of the sampling period), ?err=1 the error ring;
// otherwise the sampled ring. Remaining filters intersect: ?stack=<mount>
// ?op=<name> ?min_us=<latency floor> ?n=<last N>.
func (s *Server) selectTraces(r *http.Request) []telemetry.Trace {
	q := r.URL.Query()
	var traces []telemetry.Trace
	switch {
	case q.Get("tail") == "1" || q.Get("tail") == "true":
		traces = s.rt.TailTraces()
	case q.Get("err") == "1" || q.Get("err") == "true":
		traces = s.rt.Tracer().RecentErrors()
	default:
		traces = s.rt.Traces()
	}
	stack, op := q.Get("stack"), q.Get("op")
	minUS, _ := strconv.ParseFloat(q.Get("min_us"), 64)
	out := make([]telemetry.Trace, 0, len(traces))
	for _, tr := range traces {
		if stack != "" && tr.Stack != stack {
			continue
		}
		if op != "" && tr.Op != op {
			continue
		}
		if minUS > 0 && tr.Latency().Micros() < minUS {
			continue
		}
		out = append(out, tr)
	}
	return lastN(out, q.Get("n"))
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.selectTraces(r))
}

// handleTracesExport renders the same selection as /traces in an external
// viewer format. ?format=chrome (the default) emits Chrome trace-event JSON:
// save the response and load it in Perfetto or chrome://tracing to see each
// request's queue-wait/cpu/device anatomy on a per-worker timeline.
func (s *Server) handleTracesExport(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	if format != "chrome" {
		http.Error(w, fmt.Sprintf("unknown format %q (supported: chrome)", format), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="labstor-trace.json"`)
	if err := telemetry.WriteChromeTrace(w, s.selectTraces(r)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ProfileResponse is the /profile payload: per-stack latency attribution
// plus the data path's per-site copy accounting (the zero-copy audit).
type ProfileResponse struct {
	Stacks    []telemetry.StackAttribution `json:"stacks"`
	CopySites []telemetry.CopySiteStat     `json:"copy_sites"`
}

// handleProfile serves the per-stack latency-attribution tables — where
// each stack's latency goes (queue wait vs CPU vs device), per op and per
// sampled stage — alongside the copy-site counters, so one scrape answers
// both "where does time go" and "where do bytes still get copied".
func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	resp := ProfileResponse{
		Stacks:    s.rt.Attribution(),
		CopySites: telemetry.CopySiteStats(),
	}
	if resp.Stacks == nil {
		resp.Stacks = []telemetry.StackAttribution{}
	}
	if resp.CopySites == nil {
		resp.CopySites = []telemetry.CopySiteStat{}
	}
	writeJSON(w, resp)
}

// handleBundles lists the incident bundles captured so far.
func (s *Server) handleBundles(w http.ResponseWriter, _ *http.Request) {
	if s.bundler == nil {
		writeJSON(w, map[string]any{"armed": false, "bundles": []BundleInfo{}})
		return
	}
	writeJSON(w, map[string]any{
		"armed":   true,
		"dir":     s.cfg.Bundle.Dir,
		"skipped": s.bundler.Skipped(),
		"bundles": s.bundler.List(),
	})
}

// handleEvents serves the flight-recorder tail; ?kind= filters by dotted
// family prefix (e.g. kind=slo matches slo.breach and slo.recover).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	evs := s.rt.Events().Filter(q.Get("kind"))
	evs = lastN(evs, q.Get("n"))
	writeJSON(w, evs)
}

func (s *Server) handleSLOs(w http.ResponseWriter, _ *http.Request) {
	slos := s.rt.SLOStatus()
	if slos == nil {
		slos = []runtime.SLOStatus{}
	}
	writeJSON(w, slos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := "running"
	switch {
	case s.rt.Crashed():
		state = "crashed"
	case !s.rt.Running():
		state = "stopped"
	}
	if state != "running" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "%s\n", state)
}

// lastN keeps the trailing n elements when the query asks for a bound.
func lastN[T any](xs []T, nStr string) []T {
	nStr = strings.TrimSpace(nStr)
	if nStr == "" {
		return xs
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 || n >= len(xs) {
		return xs
	}
	return xs[len(xs)-n:]
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
