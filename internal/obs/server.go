// Package obs is the live observability plane: an opt-in HTTP server that
// exposes the Runtime's metrics, snapshot tree, trace rings, flight recorder
// and pprof handlers while the Runtime serves traffic.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (hand-rolled, no client deps)
//	/snapshot       the full runtime.Snapshot as JSON (re-rendered on demand)
//	/traces         recent sampled traces; ?stack= ?op= ?min_us= ?err=1 ?n=
//	/events         flight-recorder tail; ?kind=<dotted prefix> ?n=
//	/slos           SLO watchdog verdicts as JSON
//	/healthz        liveness + runtime state
//	/debug/pprof/   net/http/pprof (when enabled)
//
// The server is wired from the runtime config's `observe:` section and costs
// nothing until scraped: every handler renders from the same registries the
// runtime already maintains.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// Config selects the listen address and optional handlers.
type Config struct {
	// Addr is the listen address ("host:0" binds an ephemeral port).
	Addr string
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Server serves the observability endpoints for one Runtime.
type Server struct {
	rt  *runtime.Runtime
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// New builds a server (not yet listening) for rt.
func New(rt *runtime.Runtime, cfg Config) *Server {
	s := &Server{rt: rt, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.timed("/metrics", s.handleMetrics))
	mux.HandleFunc("/snapshot", s.timed("/snapshot", s.handleSnapshot))
	mux.HandleFunc("/traces", s.timed("/traces", s.handleTraces))
	mux.HandleFunc("/events", s.timed("/events", s.handleEvents))
	mux.HandleFunc("/slos", s.timed("/slos", s.handleSLOs))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// timed wraps a handler so the plane self-reports its serving cost: each
// invocation's duration lands in the runtime's own registry as the
// `obs.handler_us;endpoint=<path>` histogram (scrape counts ride along in
// the histogram's count). The cost of observing the observer is one clock
// read and one histogram insert per request.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.rt.Metrics().Histogram("obs.handler_us;endpoint=" + endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		h(w, r)
		hist.Observe(float64(time.Since(begin).Microseconds()))
	}
}

// Start binds the listener and serves in the background. It returns the
// bound address (useful with :0) and records the fact on the flight
// recorder so scrapes have a provenance line.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.rt.Events().Recordf(telemetry.EvObserve, 0, "observability server listening on %s", ln.Addr())
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	s.rt.Events().Recordf(telemetry.EvObserve, 0, "observability server closed")
	return s.srv.Close()
}

// FromConfig starts a server when the parsed `observe:` section enables one
// (nil, nil when Addr is empty — observability stays opt-in).
func FromConfig(rt *runtime.Runtime, addr string, withPprof bool) (*Server, string, error) {
	if addr == "" {
		return nil, "", nil
	}
	s := New(rt, Config{Addr: addr, Pprof: withPprof})
	bound, err := s.Start()
	if err != nil {
		return nil, "", err
	}
	return s, bound, nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "labstor observability plane")
	for _, ep := range []string{"/metrics", "/snapshot", "/traces", "/events", "/slos", "/healthz"} {
		fmt.Fprintln(w, "  "+ep)
	}
	if s.cfg.Pprof {
		fmt.Fprintln(w, "  /debug/pprof/")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, s.rt.Metrics().Snapshot())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	raw, err := s.rt.Snapshot().JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// handleTraces serves the trace rings. ?err=1 selects the error ring (every
// failed request, unsampled included); otherwise the sampled ring. Remaining
// filters intersect: ?stack=<mount> ?op=<name> ?min_us=<latency floor>
// ?n=<last N>.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var traces []telemetry.Trace
	if q.Get("err") == "1" || q.Get("err") == "true" {
		traces = s.rt.Tracer().RecentErrors()
	} else {
		traces = s.rt.Traces()
	}
	stack, op := q.Get("stack"), q.Get("op")
	minUS, _ := strconv.ParseFloat(q.Get("min_us"), 64)
	out := make([]telemetry.Trace, 0, len(traces))
	for _, tr := range traces {
		if stack != "" && tr.Stack != stack {
			continue
		}
		if op != "" && tr.Op != op {
			continue
		}
		if minUS > 0 && tr.Latency().Micros() < minUS {
			continue
		}
		out = append(out, tr)
	}
	out = lastN(out, q.Get("n"))
	writeJSON(w, out)
}

// handleEvents serves the flight-recorder tail; ?kind= filters by dotted
// family prefix (e.g. kind=slo matches slo.breach and slo.recover).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	evs := s.rt.Events().Filter(q.Get("kind"))
	evs = lastN(evs, q.Get("n"))
	writeJSON(w, evs)
}

func (s *Server) handleSLOs(w http.ResponseWriter, _ *http.Request) {
	slos := s.rt.SLOStatus()
	if slos == nil {
		slos = []runtime.SLOStatus{}
	}
	writeJSON(w, slos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := "running"
	switch {
	case s.rt.Crashed():
		state = "crashed"
	case !s.rt.Running():
		state = "stopped"
	}
	if state != "running" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "%s\n", state)
}

// lastN keeps the trailing n elements when the query asks for a bound.
func lastN[T any](xs []T, nStr string) []T {
	nStr = strings.TrimSpace(nStr)
	if nStr == "" {
		return xs
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 || n >= len(xs) {
		return xs
	}
	return xs[len(xs)-n:]
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
