package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// Bundle capture defaults, applied when the config leaves a knob zero.
const (
	// DefaultBundleProfile is how long the bundle's CPU profile runs.
	DefaultBundleProfile = 250 * time.Millisecond
	// DefaultBundleCooldown is the per-stack minimum spacing between
	// captures: a flapping SLO must not fill the disk with bundles.
	DefaultBundleCooldown = 60 * time.Second
	// DefaultBundleMax caps bundles written over one runtime lifetime.
	DefaultBundleMax = 16
)

// BundleConfig shapes incident capture. Dir is required; everything else
// has a safe default.
type BundleConfig struct {
	// Dir is the directory bundles are written under (one subdirectory
	// per incident). Created on first capture if absent.
	Dir string
	// ProfileDur is the CPU-profile duration per bundle (0 = 250ms).
	ProfileDur time.Duration
	// Cooldown rate-limits capture per stack (0 = 60s).
	Cooldown time.Duration
	// Max caps the number of bundles per runtime lifetime (0 = 16).
	Max int
}

// BundleInfo describes one captured bundle, as listed by /bundles.
type BundleInfo struct {
	ID    string `json:"id"`
	Dir   string `json:"dir"`
	Stack string `json:"stack"`
	// Reason summarizes the breach that triggered capture.
	Reason string    `json:"reason"`
	Wall   time.Time `json:"wall"`
	// Files lists the artifact filenames actually written.
	Files []string `json:"files,omitempty"`
	// Err carries a capture-side failure (partial bundles are listed too).
	Err string `json:"err,omitempty"`
}

// Bundler turns SLO-breach transitions into diagnostic bundle directories:
// a point-in-time capture of everything a postmortem needs — CPU profile,
// flight-recorder dump, outlier/error/sampled traces, metrics snapshot and
// the latency-attribution table — rate-limited so a flapping target cannot
// flood the disk. Arm it with rt.OnSLOBreach(b.OnBreach).
type Bundler struct {
	rt  *runtime.Runtime
	cfg BundleConfig

	mu      sync.Mutex
	last    map[string]time.Time // per-stack last capture wall time
	written []BundleInfo
	seq     int
	skipped int

	// captureMu serializes captures: the process has one CPU profiler.
	captureMu sync.Mutex
	wg        sync.WaitGroup
}

// NewBundler builds a bundler for rt. It does not arm itself: call
// rt.OnSLOBreach(b.OnBreach), which Server wiring does automatically.
func NewBundler(rt *runtime.Runtime, cfg BundleConfig) *Bundler {
	if cfg.ProfileDur <= 0 {
		cfg.ProfileDur = DefaultBundleProfile
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBundleCooldown
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultBundleMax
	}
	return &Bundler{rt: rt, cfg: cfg, last: make(map[string]time.Time)}
}

// OnBreach is the SLO-breach hook: it decides synchronously whether this
// breach deserves a bundle (cooldown + lifetime cap) and, if so, captures
// one. The runtime already invokes breach hooks on their own goroutines, so
// blocking here for the profile duration stalls nobody.
func (b *Bundler) OnBreach(st runtime.SLOStatus) {
	now := time.Now()
	b.mu.Lock()
	if len(b.written) >= b.cfg.Max {
		b.skipped++
		b.mu.Unlock()
		b.rt.Events().Recordf(telemetry.EvBundle, 0,
			"bundle skipped for %s: lifetime cap %d reached", st.Stack, b.cfg.Max)
		return
	}
	if prev, ok := b.last[st.Stack]; ok && now.Sub(prev) < b.cfg.Cooldown {
		b.skipped++
		b.mu.Unlock()
		b.rt.Events().Recordf(telemetry.EvBundle, 0,
			"bundle skipped for %s: in cooldown (%s since last)", st.Stack, now.Sub(prev).Round(time.Millisecond))
		return
	}
	b.last[st.Stack] = now
	b.seq++
	id := fmt.Sprintf("bundle-%s-%03d", now.UTC().Format("20060102-150405"), b.seq)
	b.mu.Unlock()

	b.wg.Add(1)
	defer b.wg.Done()
	info := b.capture(id, st, now)
	b.mu.Lock()
	b.written = append(b.written, info)
	b.mu.Unlock()
}

// Wait blocks until every in-flight capture has finished (test hook).
func (b *Bundler) Wait() { b.wg.Wait() }

// List returns the bundles written so far, oldest first.
func (b *Bundler) List() []BundleInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BundleInfo, len(b.written))
	copy(out, b.written)
	return out
}

// Skipped counts breaches that did not produce a bundle (cooldown or cap).
func (b *Bundler) Skipped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.skipped
}

// capture writes one bundle directory. Failures are per-artifact: a bundle
// missing its CPU profile (e.g. another profiler is running) still carries
// the traces and flight dump.
func (b *Bundler) capture(id string, st runtime.SLOStatus, now time.Time) BundleInfo {
	b.captureMu.Lock()
	defer b.captureMu.Unlock()

	dir := filepath.Join(b.cfg.Dir, id)
	info := BundleInfo{
		ID:    id,
		Dir:   dir,
		Stack: st.Stack,
		Reason: fmt.Sprintf("slo breach: p99=%.1fus (target %.1fus) err_rate=%.4f (target %.4f)",
			st.P99US, st.TargetP99US, st.ErrRate, st.TargetErrRate),
		Wall: now,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		info.Err = err.Error()
		return info
	}

	add := func(name string, err error) {
		if err != nil {
			if info.Err == "" {
				info.Err = name + ": " + err.Error()
			}
			return
		}
		info.Files = append(info.Files, name)
	}

	// CPU profile first: it samples the live workload while the breach is
	// (likely) still in progress. Everything after is point-in-time state.
	add("cpu.pprof", b.writeCPUProfile(filepath.Join(dir, "cpu.pprof")))
	add("meta.json", writeJSONFile(filepath.Join(dir, "meta.json"), map[string]any{
		"id": id, "stack": st.Stack, "reason": info.Reason, "wall": now, "slo": st,
	}))
	add("flight.txt", b.writeFlight(filepath.Join(dir, "flight.txt"), info.Reason))
	add("traces.json", writeJSONFile(filepath.Join(dir, "traces.json"), map[string]any{
		"tail":    b.rt.TailTraces(),
		"errors":  b.rt.Tracer().RecentErrors(),
		"sampled": b.rt.Traces(),
	}))
	add("metrics.json", writeJSONFile(filepath.Join(dir, "metrics.json"), b.rt.Metrics().Snapshot()))
	add("attribution.json", writeJSONFile(filepath.Join(dir, "attribution.json"), b.rt.Attribution()))
	add("snapshot.json", b.writeSnapshot(filepath.Join(dir, "snapshot.json")))

	b.rt.Events().Recordf(telemetry.EvBundle, 0, "bundle %s captured for %s (%d artifacts)", id, st.Stack, len(info.Files))
	return info
}

// writeCPUProfile samples the process CPU for the configured duration. If
// another profile is active (a /debug/pprof/profile scrape, a concurrent
// bundle from a pre-serialization era), the bundle proceeds without one.
func (b *Bundler) writeCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("profiler busy: %w", err)
	}
	time.Sleep(b.cfg.ProfileDur)
	pprof.StopCPUProfile()
	return f.Close()
}

func (b *Bundler) writeFlight(path, reason string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	b.rt.DumpFlightTo(f, reason)
	return f.Close()
}

func (b *Bundler) writeSnapshot(path string) error {
	raw, err := b.rt.Snapshot().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
