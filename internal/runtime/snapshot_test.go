package runtime_test

import (
	"encoding/json"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
)

func bootSnapshotRuntime(t *testing.T, sampleEvery int) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 2, PerfSampleEvery: sampleEvery})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: sched
    type: labstor.noop
    attrs:
      device: dev0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
}

func submitWrites(t *testing.T, cli *runtime.Client, n int) {
	t.Helper()
	buf := make([]byte, 4096)
	for i := 0; i < n; i++ {
		req := core.NewRequest(core.OpWrite)
		req.Path = "f"
		req.Flags = core.FlagCreate
		req.Offset = int64(i) * 4096
		req.Size = len(buf)
		req.Data = buf
		if err := cli.Submit("fs::/s", req); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotStructure(t *testing.T) {
	rt, cli := bootSnapshotRuntime(t, 1)
	submitWrites(t, cli, 50)
	snap := rt.Snapshot()

	// Per-worker: every worker reports poll activity; the ones that
	// processed requests report virtual busy time.
	if len(snap.Workers) == 0 {
		t.Fatal("no workers in snapshot")
	}
	var processed int64
	for _, w := range snap.Workers {
		processed += w.Processed
		if w.Polls <= 0 {
			t.Fatalf("worker %d has no polls: %+v", w.ID, w)
		}
		if r := w.IdleRatio(); r < 0 || r > 1 {
			t.Fatalf("worker %d idle ratio %v out of [0,1]", w.ID, r)
		}
	}
	if processed != 50 {
		t.Fatalf("workers processed %d requests, want 50", processed)
	}

	// Per-queue: the client's queue pair must show the traffic and a
	// worker assignment.
	if len(snap.Queues) == 0 {
		t.Fatal("no queues in snapshot")
	}
	var enq, done int64
	assigned := false
	for _, q := range snap.Queues {
		enq += q.SQ.Enqueued
		done += q.CQ.Enqueued
		if len(q.Workers) > 0 {
			assigned = true
		}
	}
	if enq != 50 || done != 50 {
		t.Fatalf("queue traffic enq=%d done=%d, want 50/50", enq, done)
	}
	if !assigned {
		t.Fatal("no queue reports an assigned worker")
	}

	// Per-stage: sampling at 1-in-1 must capture the pipeline stages.
	stages := map[string]bool{}
	for _, c := range snap.Stages {
		stages[c.Stage] = true
	}
	for _, want := range []string{"ipc", "sched", "driver", "io", "fs_meta"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from snapshot (have %v)", want, snap.Stages)
		}
	}

	// Registry: client-side and LabMod op counters share the tree.
	if got := snap.Metrics.Counters["client.submitted"]; got != 50 {
		t.Fatalf("client.submitted = %d, want 50", got)
	}
	if got := snap.Metrics.Counters["labfs.fs.write"]; got != 50 {
		t.Fatalf("labfs.fs.write = %d, want 50", got)
	}
	if got := snap.Metrics.Counters["runtime.sampled_requests"]; got != 50 {
		t.Fatalf("runtime.sampled_requests = %d, want 50", got)
	}
	h, ok := snap.Metrics.Histograms["request.latency_us"]
	if !ok || h.Count != 50 {
		t.Fatalf("request.latency_us histogram = %+v, want count 50", h)
	}

	// Traces: retained, with per-stage spans and sane virtual timing.
	if len(snap.Traces) == 0 {
		t.Fatal("no traces retained")
	}
	tr := snap.Traces[len(snap.Traces)-1]
	if tr.Stack != "fs::/s" || tr.Op != "write" {
		t.Fatalf("trace = %+v, want write on fs::/s", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if tr.Latency() <= 0 || tr.QueueWait < 0 {
		t.Fatalf("trace timing lat=%v wait=%v", tr.Latency(), tr.QueueWait)
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	rt, cli := bootSnapshotRuntime(t, 1)
	submitWrites(t, cli, 10)
	snap := rt.Snapshot()

	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"workers", "queues", "stages", "orchestrator", "metrics", "traces"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON snapshot missing %q", key)
		}
	}

	text := snap.String()
	for _, want := range []string{"== workers ==", "== queues ==", "== stages (sampled) ==", "== counters =="} {
		if !containsStr(text, want) {
			t.Fatalf("text snapshot missing section %q", want)
		}
	}
}

func TestSnapshotSamplingDisabled(t *testing.T) {
	rt, cli := bootSnapshotRuntime(t, runtime.PerfSamplingDisabled)
	submitWrites(t, cli, 20)
	snap := rt.Snapshot()

	if len(snap.Stages) != 0 {
		t.Fatalf("stages sampled while disabled: %v", snap.Stages)
	}
	if len(snap.Traces) != 0 {
		t.Fatalf("traces captured while disabled: %d", len(snap.Traces))
	}
	if got := snap.Metrics.Counters["runtime.sampled_requests"]; got != 0 {
		t.Fatalf("runtime.sampled_requests = %d, want 0", got)
	}
	if _, ok := snap.Metrics.Histograms["request.latency_us"]; ok {
		t.Fatal("latency histogram populated while sampling disabled")
	}
	// Structural metrics are still collected: queues, workers, counters.
	if got := snap.Metrics.Counters["client.submitted"]; got != 20 {
		t.Fatalf("client.submitted = %d, want 20", got)
	}
	var enq int64
	for _, q := range snap.Queues {
		enq += q.SQ.Enqueued
	}
	if enq != 20 {
		t.Fatalf("queue enqueues = %d, want 20", enq)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
