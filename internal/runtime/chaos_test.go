package runtime_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/iosched"
	"labstor/internal/runtime"
)

// TestChaosMixedLoadWithUpgradesAndCrash drives a filesystem stack with
// concurrent clients while the test live-upgrades the scheduler, inserts
// and removes a compression vertex, crashes and restarts the Runtime —
// then verifies every file's content survived intact.
func TestChaosMixedLoadWithUpgradesAndCrash(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 4, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 512<<20))
	if _, err := rt.MountSpec(`
mount: fs::/chaos
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 16
  - uuid: sched
    type: labstor.noop
    attrs:
      device: dev0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown()

	const clients = 4
	const filesPerClient = 40
	var wg sync.WaitGroup
	errs := make([]error, clients)
	content := make([]map[string][]byte, clients)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := rt.Connect(ipc.Credentials{PID: 100 + c, UID: 1000, GID: 1000})
			cli.RestartPatience = 10 * time.Second
			rng := rand.New(rand.NewSource(int64(c)))
			mine := make(map[string][]byte, filesPerClient)
			content[c] = mine
			for i := 0; i < filesPerClient; i++ {
				path := fmt.Sprintf("c%d/f%02d", c, i)
				data := make([]byte, 512+rng.Intn(12000))
				rng.Read(data)
				// Write + fsync, retrying if the crash replay dropped an
				// op that straddled the crash window (fsync reports it).
				durable := false
				for attempt := 0; attempt < 5 && !durable; attempt++ {
					req := core.NewRequest(core.OpWrite)
					req.Path = path
					req.Flags = core.FlagCreate
					req.Size = len(data)
					req.Data = data
					if err := cli.Submit("fs::/chaos", req); err != nil || req.Err != nil {
						if err == nil {
							err = req.Err
						}
						errs[c] = fmt.Errorf("write %s: %w", path, err)
						return
					}
					fy := core.NewRequest(core.OpFsync)
					fy.Path = path
					// A failed fsync (e.g. ENOENT after a crash replay
					// dropped the create) means "not durable — redo".
					_ = cli.Submit("fs::/chaos", fy)
					durable = fy.Err == nil
				}
				if !durable {
					errs[c] = fmt.Errorf("%s never became durable", path)
					return
				}
				mine[path] = data
				// Read back something we already wrote.
				if i > 0 && rng.Intn(2) == 0 {
					prev := fmt.Sprintf("c%d/f%02d", c, rng.Intn(i))
					rr := core.NewRequest(core.OpRead)
					rr.Path = prev
					rr.Size = len(mine[prev])
					rr.Data = make([]byte, len(mine[prev]))
					if err := cli.Submit("fs::/chaos", rr); err != nil || rr.Err != nil {
						errs[c] = fmt.Errorf("read %s: %v/%v", prev, err, rr.Err)
						return
					}
					if !bytes.Equal(rr.Data[:rr.Result], mine[prev]) {
						errs[c] = fmt.Errorf("mid-run corruption in %s", prev)
						return
					}
				}
			}
		}(c)
	}

	// Chaos driver: upgrades, stack edits, a crash.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		time.Sleep(time.Millisecond)
		// Live-upgrade the scheduler twice.
		for i := 0; i < 2; i++ {
			if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
				UUID:  "sched",
				Build: func() core.Module { return &iosched.NoOp{} },
				Mode:  runtime.Centralized,
			}); err != nil {
				t.Errorf("upgrade: %v", err)
			}
		}
		// Insert, then remove, a pass-through vertex while traffic flows.
		// (A data-transforming vertex like compression may only be inserted
		// over data written through it — adding one over existing raw data
		// is semantically invalid, which the compressmod tests cover.)
		if err := rt.ModifyStack("fs::/chaos", "fs", &core.Vertex{
			UUID: "probe", Type: "labstor.dummy",
		}, ""); err != nil {
			t.Errorf("insert: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := rt.ModifyStack("fs::/chaos", "", nil, "probe"); err != nil {
			t.Errorf("remove: %v", err)
		}

		// Crash and restart.
		rt.Crash()
		time.Sleep(3 * time.Millisecond)
		if err := rt.Restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()

	wg.Wait()
	<-chaosDone
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Full integrity pass over every file from a fresh client.
	verify := rt.Connect(ipc.Credentials{PID: 999, UID: 1000, GID: 1000})
	for c := 0; c < clients; c++ {
		for path, want := range content[c] {
			rr := core.NewRequest(core.OpRead)
			rr.Path = path
			rr.Size = len(want)
			rr.Data = make([]byte, len(want))
			if err := verify.Submit("fs::/chaos", rr); err != nil || rr.Err != nil {
				t.Fatalf("verify %s: %v/%v", path, err, rr.Err)
			}
			if !bytes.Equal(rr.Data[:rr.Result], want) {
				t.Fatalf("post-chaos corruption in %s", path)
			}
		}
	}
}
