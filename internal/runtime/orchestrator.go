package runtime

import (
	"sort"
	"sync"

	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Orchestrator is the Work Orchestrator (paper §III-C4): a userspace
// process/thread scheduling framework that assigns request queues to
// workers and scales the active worker pool. Policies are modular; two are
// provided, matching the evaluation:
//
//   - round_robin: queues are divided evenly across all active workers.
//   - dynamic: queues are split into latency-sensitive queues (LQs) and
//     computational queues (CQs) by the maximum expected processing time of
//     their requests (EstProcessingTime) and queue depth; LQs are placed on
//     a dedicated subset of workers, CQs on another, and a knapsack-style
//     partition picks the fewest workers that keep estimated per-worker
//     load under a threshold.
type Orchestrator struct {
	rt *Runtime

	mu     sync.Mutex
	queues []*QP
	// perQueue accumulates observed CPU demand and request counts, which
	// Rebalance turns into a utilization rate (CPU-time per virtual time)
	// and a per-request cost estimate (the LQ/CQ classifier input).
	perQueue map[int]*queueStats
	// rebalances counts Rebalance invocations.
	rebalances int
	// prevFrontier is the global worker virtual frontier at the last
	// rebalance (the epoch's virtual length denominator).
	prevFrontier vtime.Time
	// last is the most recent dynamic-rebalance decision (telemetry).
	last RebalanceDecision
}

// RebalanceDecision records what the dynamic policy decided at its last
// rebalance: the LQ/CQ classification, the worker subset sizes, and the
// estimated (observed-rate) load of each class.
type RebalanceDecision struct {
	LQs       int     `json:"lqs"`
	CQs       int     `json:"cqs"`
	LQWorkers int     `json:"lq_workers"`
	CQWorkers int     `json:"cq_workers"`
	LQLoad    float64 `json:"lq_load"`
	CQLoad    float64 `json:"cq_load"`
	// LocalPlaced / RemotePlaced count queues whose worker landed on the
	// queue's NUMA node vs. off it at the last dynamic rebalance (both zero
	// when locality-aware placement is off).
	LocalPlaced  int `json:"local_placed"`
	RemotePlaced int `json:"remote_placed"`
}

// queueStats is the orchestrator's view of one queue's demand.
type queueStats struct {
	cpuNS   float64    // cumulative observed CPU time
	count   int64      // cumulative requests
	firstVT vtime.Time // first observed completion
	lastVT  vtime.Time // latest observed completion
	estNS   float64    // EWMA per-request processing time
	// Window snapshot taken at each rebalance, so demand is measured over
	// the most recent epoch rather than the whole run.
	prevCPU float64
	prevVT  vtime.Time
	// rate is the demand estimate carried between windows: an epoch with no
	// completions keeps the previous estimate while work is still queued
	// (long requests span epochs) and decays it when the queue is idle.
	rate float64
}

// DebugRebalance, when set, receives (lqs, cqs, nLQ, nCQ, lLoad, cLoad) at
// every dynamic rebalance (test instrumentation).
var DebugRebalance func(lqs, cqs, nLQ, nCQ int, lLoad, cLoad float64)

func newOrchestrator(rt *Runtime) *Orchestrator {
	return &Orchestrator{
		rt:       rt,
		perQueue: make(map[int]*queueStats),
	}
}

// AddQueue registers a new client queue and triggers a rebalance (the paper
// rebalances when a new client connects and every t ms).
func (o *Orchestrator) AddQueue(qp *QP) {
	o.mu.Lock()
	o.queues = append(o.queues, qp)
	n := len(o.queues)
	o.mu.Unlock()
	o.rt.events.Recordf(telemetry.EvRebalance, o.rt.vnow(), "queue %d registered (%d total)", qp.ID, n)
	o.Rebalance()
}

// RemoveQueue retires a client queue.
func (o *Orchestrator) RemoveQueue(qp *QP) {
	o.mu.Lock()
	for i, q := range o.queues {
		if q == qp {
			o.queues = append(o.queues[:i], o.queues[i+1:]...)
			break
		}
	}
	delete(o.perQueue, qp.ID)
	n := len(o.queues)
	o.mu.Unlock()
	o.rt.events.Recordf(telemetry.EvRebalance, o.rt.vnow(), "queue %d retired (%d left)", qp.ID, n)
	o.Rebalance()
}

// Queues returns the registered queues.
func (o *Orchestrator) Queues() []*QP {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*QP, len(o.queues))
	copy(out, o.queues)
	return out
}

// ObserveRequest feeds the classifier: workers report each processed
// request's CPU cost and completion virtual time.
func (o *Orchestrator) ObserveRequest(qpID int, cpu vtime.Duration, completion vtime.Time) {
	o.ObserveBatch(qpID, 1, cpu, completion)
}

// ObserveBatch folds a whole worker drain into the per-queue demand stats
// under a single mutex acquisition — the batched hot path's amortization of
// the per-request ObserveRequest lock. The EWMA cost estimate is advanced
// once per request using the batch's mean cost, so a batch of one is
// identical to ObserveRequest.
func (o *Orchestrator) ObserveBatch(qpID int, n int, cpu vtime.Duration, completion vtime.Time) {
	if n <= 0 {
		return
	}
	o.mu.Lock()
	qs, ok := o.perQueue[qpID]
	if !ok {
		qs = &queueStats{firstVT: completion}
		o.perQueue[qpID] = qs
	}
	qs.cpuNS += float64(cpu)
	qs.count += int64(n)
	if completion > qs.lastVT {
		qs.lastVT = completion
	}
	const alpha = 0.3
	mean := float64(cpu) / float64(n)
	for i := 0; i < n; i++ {
		qs.estNS = (1-alpha)*qs.estNS + alpha*mean
	}
	o.mu.Unlock()
}

// Rebalances returns how many times Rebalance has run.
func (o *Orchestrator) Rebalances() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rebalances
}

// LastDecision returns the most recent dynamic-rebalance decision (zero
// value under round_robin or before the first rebalance).
func (o *Orchestrator) LastDecision() RebalanceDecision {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.last
}

// QueueDemand is the orchestrator's telemetry view of one queue: observed
// demand (utilization rate), the EWMA per-request cost estimate feeding the
// LQ/CQ classifier, and cumulative traffic.
type QueueDemand struct {
	ID       int     `json:"id"`
	Requests int64   `json:"requests"`
	CPUNS    float64 `json:"cpu_ns"`
	EstNS    float64 `json:"est_ns"`
	Rate     float64 `json:"rate"`
}

// QueueDemands returns the per-queue demand estimates, in queue order.
func (o *Orchestrator) QueueDemands() []QueueDemand {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]QueueDemand, 0, len(o.queues))
	for _, q := range o.queues {
		d := QueueDemand{ID: q.ID}
		if qs, ok := o.perQueue[q.ID]; ok {
			d.Requests = qs.count
			d.CPUNS = qs.cpuNS
			d.EstNS = qs.estNS
			d.Rate = qs.rate
		}
		out = append(out, d)
	}
	return out
}

// Rebalance recomputes the queue→worker assignment under the active policy.
func (o *Orchestrator) Rebalance() {
	o.rt.metrics.Counter("orchestrator.rebalances").Inc()
	o.mu.Lock()
	o.rebalances++
	queues := make([]*QP, len(o.queues))
	copy(queues, o.queues)
	policy := o.rt.opts.Policy
	o.mu.Unlock()

	switch policy {
	case "dynamic":
		o.rebalanceDynamic(queues)
	default:
		o.rebalanceRR(queues)
	}
	o.rt.metrics.Gauge("orchestrator.active_workers").Set(int64(o.rt.ActiveWorkers()))
}

// localityBias returns the configured locality weight when the cost model
// carries a multi-node NUMA topology, else 0 (placement stays pure
// load-balancing and is byte-for-byte identical to the pre-NUMA behavior).
func (o *Orchestrator) localityBias() float64 {
	if numa := o.rt.opts.Model.NUMA; numa == nil || numa.Nodes <= 1 {
		return 0
	}
	return o.rt.opts.LocalityWeight
}

// rebalanceRR spreads queues evenly across every worker in the pool. With
// locality-aware placement on, each queue instead goes to the least-loaded
// worker on its own NUMA node (falling back to any worker when the node has
// none) — round-robin within node partitions.
func (o *Orchestrator) rebalanceRR(queues []*QP) {
	workers := o.rt.workers
	n := len(workers)
	buckets := make([][]*QP, n)
	if o.localityBias() > 0 {
		counts := make([]int, n)
		for _, q := range queues {
			best := -1
			for i, w := range workers {
				if w.node == q.Node && (best < 0 || counts[i] < counts[best]) {
					best = i
				}
			}
			if best < 0 {
				for i := range workers {
					if best < 0 || counts[i] < counts[best] {
						best = i
					}
				}
			}
			buckets[best] = append(buckets[best], q)
			counts[best]++
		}
	} else {
		for i, q := range queues {
			buckets[i%n] = append(buckets[i%n], q)
		}
	}
	for i, w := range workers {
		w.setActive(true)
		w.assign(buckets[i])
	}
}

// rebalanceDynamic implements the paper's dynamic policy: classify queues
// into latency-sensitive (LQ) and computational (CQ) by expected processing
// time; size each group's worker subset to its observed CPU-utilization
// demand (fewest workers within the loss threshold); and pack queues onto
// workers with balanced-knapsack greedy placement, LQs on a dedicated
// subset so computational requests never sit in front of them.
func (o *Orchestrator) rebalanceDynamic(queues []*QP) {
	workers := o.rt.workers
	maxW := len(workers)
	if maxW == 0 || len(queues) == 0 {
		return
	}
	cutoff := float64(o.rt.opts.LatencyCutoff)

	// 1. Classify and compute each queue's utilization rate: CPU time the
	//    queue consumed this epoch, normalized by the global virtual-time
	//    progress of the epoch (the frontier across all workers). Using the
	//    global frontier rather than per-queue spans matters: a closed-loop
	//    low-latency client is "always busy" inside its own tiny virtual
	//    window, but consumes almost nothing of the system's capacity.
	frontier := vtime.Time(0)
	for _, w := range o.rt.workers {
		if c := w.clock.Now(); c > frontier {
			frontier = c
		}
	}
	o.mu.Lock()
	dFrontier := float64(frontier.Sub(o.prevFrontier))
	// Only close a measurement window once the system has made enough
	// virtual progress; otherwise the denominators are degenerate (e.g. a
	// long request is mid-service and no worker clock has moved). Until
	// then, carry the previous rates.
	const minWindow = float64(500 * vtime.Microsecond)
	closeWindow := dFrontier >= minWindow
	if closeWindow {
		o.prevFrontier = frontier
	}

	var lqs, cqs []*QP
	loads := make(map[int]float64, len(queues))
	for _, q := range queues {
		var est, rate float64
		if qs, ok := o.perQueue[q.ID]; ok {
			est = qs.estNS
			rate = qs.rate
			if closeWindow {
				dCPU := qs.cpuNS - qs.prevCPU
				if dCPU > 0 {
					rate = dCPU / dFrontier
				} else if q.SQLen() == 0 && q.Inflight() == 0 {
					// Idle queue: decay toward zero.
					rate *= 0.5
				}
				if rate > 1 {
					rate = 1 // a single queue cannot use more than one core
				}
				qs.rate = rate
				qs.prevCPU = qs.cpuNS
				qs.prevVT = qs.lastVT
			}
		}
		loads[q.ID] = rate
		if est > cutoff {
			cqs = append(cqs, q)
		} else {
			lqs = append(lqs, q)
		}
	}
	anyStats := false
	for _, qs := range o.perQueue {
		if qs.count > 0 {
			anyStats = true
			break
		}
	}
	o.mu.Unlock()

	// Cold start: with no observations there is nothing to classify or
	// size — spread the queues like round-robin until data arrives.
	if !anyStats {
		o.rebalanceRR(queues)
		return
	}

	// 2. Pick the fewest workers whose capacity (1 core each) covers the
	//    group's demand within the loss threshold. Demand is observed at
	//    the *current* capacity, so when the pool is saturated the
	//    measurement understates true demand; the headroom factor lets the
	//    pool grow until the measured demand fits.
	headroom := 1.0 + 2.5*o.rt.opts.LossThreshold
	need := func(qs []*QP) int {
		var total float64
		for _, q := range qs {
			total += loads[q.ID]
		}
		n := int(total*headroom) + 1
		if n < 1 {
			n = 1
		}
		return n
	}

	nLQ := 0
	if len(lqs) > 0 {
		nLQ = need(lqs)
	}
	nCQ := 0
	if len(cqs) > 0 {
		nCQ = need(cqs)
	}
	if nLQ+nCQ > maxW {
		// Shrink the larger group first.
		for nLQ+nCQ > maxW && nCQ > 1 {
			nCQ--
		}
		for nLQ+nCQ > maxW && nLQ > 1 {
			nLQ--
		}
	}
	if nLQ+nCQ > maxW {
		// Pool too small to separate the classes: share the workers.
		nLQ = maxW
		nCQ = 0
		lqs = append(lqs, cqs...)
		cqs = nil
	}

	var lTot, cTot float64
	for _, q := range lqs {
		lTot += loads[q.ID]
	}
	for _, q := range cqs {
		cTot += loads[q.ID]
	}
	// 3. Pack queues onto the chosen worker subsets. With locality on, a
	//    queue pays `bias` extra effective load on a node-mismatched sack —
	//    the locality-vs-load axis of the knapsack.
	bias := o.localityBias()
	nodes := make([]int, maxW)
	for i, w := range workers {
		nodes[i] = w.node
	}
	assignment := make([][]*QP, maxW)
	lLoc, lRem := packLPT(lqs, loads, assignment[:nLQ], nodes[:nLQ], bias)
	cLoc, cRem := packLPT(cqs, loads, assignment[nLQ:nLQ+nCQ], nodes[nLQ:nLQ+nCQ], bias)

	dec := RebalanceDecision{
		LQs: len(lqs), CQs: len(cqs),
		LQWorkers: nLQ, CQWorkers: nCQ,
		LQLoad: lTot, CQLoad: cTot,
	}
	if bias > 0 {
		dec.LocalPlaced = lLoc + cLoc
		dec.RemotePlaced = lRem + cRem
	}
	o.mu.Lock()
	partitionChanged := dec.LQs != o.last.LQs || dec.CQs != o.last.CQs ||
		dec.LQWorkers != o.last.LQWorkers || dec.CQWorkers != o.last.CQWorkers
	o.last = dec
	o.mu.Unlock()
	if partitionChanged {
		// Flight events on partition changes only (loads drift every epoch;
		// the decision shape is what operators want in the blackbox).
		o.rt.events.Recordf(telemetry.EvRebalance, o.rt.vnow(),
			"dynamic partition: %d LQs on %d workers, %d CQs on %d workers",
			dec.LQs, dec.LQWorkers, dec.CQs, dec.CQWorkers)
	}
	if DebugRebalance != nil {
		DebugRebalance(len(lqs), len(cqs), nLQ, nCQ, lTot, cTot)
	}

	for i, w := range workers {
		active := i < nLQ+nCQ
		w.setActive(active)
		if active {
			w.assign(assignment[i])
		} else {
			w.assign(nil)
		}
	}
}

// packLPT distributes queues across sacks with longest-processing-time
// first greedy balancing (each queue goes to the cheapest sack). nodes maps
// each sack to the NUMA node of the worker it lands on; with bias > 0 a
// node-mismatched sack costs `bias` extra effective load, so small biases
// break placement ties toward node-local workers while large biases force
// locality even at some load imbalance. bias == 0 reduces to pure
// least-loaded. Returns how many queues landed node-local vs remote.
func packLPT(queues []*QP, loads map[int]float64, sacks [][]*QP, nodes []int, bias float64) (local, remote int) {
	if len(sacks) == 0 {
		return 0, 0
	}
	sorted := make([]*QP, len(queues))
	copy(sorted, queues)
	sort.Slice(sorted, func(i, j int) bool { return loads[sorted[i].ID] > loads[sorted[j].ID] })
	weight := make([]float64, len(sacks))
	cost := func(i int, q *QP) float64 {
		c := weight[i]
		if bias > 0 && nodes[i] != q.Node {
			c += bias
		}
		return c
	}
	for _, q := range sorted {
		best := 0
		for i := 1; i < len(weight); i++ {
			if cost(i, q) < cost(best, q) {
				best = i
			}
		}
		sacks[best] = append(sacks[best], q)
		weight[best] += loads[q.ID]
		if nodes[best] == q.Node {
			local++
		} else {
			remote++
		}
	}
	return local, remote
}
