package runtime

import (
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Worker drains request queues and executes LabStack DAGs. A worker owns a
// virtual clock: requests it processes serialize on that clock, so worker
// overload, queueing delay and head-of-line blocking show up in modeled
// latency exactly as they would on a dedicated core.
type Worker struct {
	rt *Runtime
	id int
	// node is the NUMA node this worker is pinned to under the cost model's
	// NUMA topology (0 when NUMA modeling is off). Cached at construction so
	// the hot path never recomputes it.
	node int

	exec *core.Exec

	clock     vtime.Clock
	busy      atomic.Int64 // cumulative modeled CPU ns
	processed atomic.Int64

	// Telemetry: poll-loop accounting (atomic adds on worker-owned state).
	polls      atomic.Int64 // pollOnce scans
	emptyPolls atomic.Int64 // scans that found no work
	parks      atomic.Int64 // transitions from busy-polling to parked

	active atomic.Bool
	// inProcess is true while the worker is mid-request (crash recovery
	// drains on it before repairing module state).
	inProcess atomic.Bool
	quit      chan struct{}
	wake      chan struct{}

	// queues assigned by the orchestrator (copy-on-write).
	queues atomic.Pointer[[]*QP]

	// batchBuf is the reusable drain buffer: up to len(batchBuf) requests
	// are taken from a queue per scan with one vectored ring reservation.
	// len == 1 selects the original single-request poll path.
	batchBuf []*Request

	// folder is this worker's latency-attribution delta accumulator (nil
	// when profiling is disabled): every completed request folds into it
	// with plain integer adds, and deltas publish to the shared Profile on
	// idle scans and every few hundred requests. Worker-owned: only touched
	// from the run goroutine.
	folder *telemetry.Folder

	// tails tracks a rolling latency quantile per stack this worker drains
	// (nil when tail retention is disabled); requests above the estimate are
	// retained in the tracer's tail ring. The last-used estimator is cached
	// so the common one-stack-per-queue case skips the map.
	tails      map[int]*telemetry.TailEstimator
	tailLast   *telemetry.TailEstimator
	tailLastID int
}

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		rt:       rt,
		id:       id,
		node:     rt.opts.Model.NUMA.WorkerNode(id),
		exec:     core.NewExec(rt.Registry, rt.Namespace, rt.opts.Model, id),
		quit:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
		batchBuf: make([]*Request, rt.opts.Batch),
	}
	empty := []*QP{}
	w.queues.Store(&empty)
	if rt.profile != nil {
		w.folder = rt.profile.NewFolder(func(op uint8) string { return core.Op(op).String() })
	}
	if rt.opts.TailRing >= 0 {
		w.tails = make(map[int]*telemetry.TailEstimator)
	}
	return w
}

// tailFor returns (creating on first use) this worker's tail estimator for a
// stack. Worker-owned state: no locking.
func (w *Worker) tailFor(stackID int) *telemetry.TailEstimator {
	if w.tailLast != nil && w.tailLastID == stackID {
		return w.tailLast
	}
	te, ok := w.tails[stackID]
	if !ok {
		te = telemetry.NewTailEstimator(w.rt.opts.TailQuantile)
		w.tails[stackID] = te
	}
	w.tailLast, w.tailLastID = te, stackID
	return te
}

func (w *Worker) setActive(a bool) {
	if prev := w.active.Swap(a); prev != a {
		// Activation transitions only, so repeated rebalance decisions that
		// keep a worker's state do not spam the flight recorder.
		verb := "activated"
		if !a {
			verb = "parked"
		}
		w.rt.events.Recordf(telemetry.EvWorker, w.clock.Now(), "worker %d %s", w.id, verb)
	}
	if a {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

func (w *Worker) isActive() bool { return w.active.Load() }

func (w *Worker) stop() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Worker) assign(qs []*QP) {
	cp := make([]*QP, len(qs))
	copy(cp, qs)
	w.queues.Store(&cp)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Worker) assigned() []*QP { return *w.queues.Load() }

// run is the worker's polling loop. Workers busy-poll their queues (the
// paper's polling workers), yielding the processor between empty scans; a
// worker that stays idle past a threshold parks on its wake channel (the
// paper's parking: it stops busy-waiting for the rest of the epoch) and is
// poked by clients on submit or by the orchestrator on assignment.
//
// Host timers on this platform have ~1ms granularity, so the hot path never
// touches a timer: parking uses the wake channel, with a coarse timer only
// as a lost-wakeup backstop.
func (w *Worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	if w.folder != nil {
		// Publish any attribution deltas still pending when the worker exits
		// (shutdown with fewer than folderFlushEvery requests since the last
		// idle scan).
		defer w.folder.Flush()
	}
	defer w.rt.flightOnPanic(fmt.Sprintf("worker %d", w.id))
	idleRounds := 0
	for {
		select {
		case <-w.quit:
			return
		default:
		}
		if !w.isActive() || !w.rt.Running() {
			// Parked, decommissioned, or Runtime crashed: block until woken
			// or stopped.
			select {
			case <-w.quit:
				return
			case <-w.wake:
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		if w.pollOnce() {
			idleRounds = 0
			continue
		}
		idleRounds++
		if idleRounds < 256 {
			gort.Gosched()
			continue
		}
		w.parks.Add(1)
		select {
		case <-w.quit:
			return
		case <-w.wake:
		case <-time.After(2 * time.Millisecond):
		}
		idleRounds = 0
	}
}

// pollOnce scans assigned queues once, draining up to Options.Batch
// requests per queue. It returns whether any request was processed.
func (w *Worker) pollOnce() bool {
	w.polls.Add(1)
	any := false
	for _, qp := range w.assigned() {
		// Live-upgrade handshake: acknowledge pending updates and stop
		// draining this (primary) queue until the Module Manager resumes it.
		switch qp.State() {
		case ipc.UpdatePending:
			qp.AckUpdate()
			continue
		case ipc.UpdateAcked:
			continue
		}
		if len(w.batchBuf) == 1 {
			// Batch=1: the original single-request path, unchanged.
			req, err := qp.PollSQ()
			if err != nil {
				continue
			}
			any = true
			w.processRequest(qp, req)
			continue
		}
		// Vectored drain: one ring reservation for the whole run.
		n := qp.PollSQBatch(w.batchBuf)
		if n == 0 {
			continue
		}
		any = true
		w.processBatch(qp, w.batchBuf[:n])
	}
	if !any {
		w.emptyPolls.Add(1)
		// Idle scan: publish attribution deltas so readers (/profile,
		// snapshots) see counts that are current to the last burst. Flush
		// no-ops when nothing is pending.
		if w.folder != nil {
			w.folder.Flush()
		}
	}
	return any
}

// processRequest walks one request through its stack and completes it.
func (w *Worker) processRequest(qp *QP, req *Request) {
	w.inProcess.Store(true)
	defer w.inProcess.Store(false)

	cpuUsed, _, sampled := w.executeOne(qp, req, w.processed.Load())

	w.busy.Add(int64(cpuUsed))
	w.processed.Add(1)
	w.rt.orch.ObserveRequest(qp.ID, cpuUsed, req.Clock)
	if sampled {
		req.Trace = false
	}

	if err := qp.Complete(req); err != nil {
		// Completion ring full: fall back to direct completion.
		req.MarkDone()
		return
	}
	req.MarkDone()
}

// processBatch walks a drained run of requests through their stacks and
// publishes the completions in bulk. Requests still execute one at a time
// and serialize individually on the worker's virtual clock — the batch
// only amortizes the host-side costs around them: the SQ reservation
// (already taken by the caller), worker counters, the orchestrator
// observation (one mutex acquisition per batch instead of per request),
// the batch-size histogram, and the CQ reservation.
func (w *Worker) processBatch(qp *QP, reqs []*Request) {
	w.inProcess.Store(true)
	defer w.inProcess.Store(false)

	base := w.processed.Load()
	var totalCPU vtime.Duration
	var lastClock vtime.Time
	for i, req := range reqs {
		cpuUsed, _, sampled := w.executeOne(qp, req, base+int64(i))
		totalCPU += cpuUsed
		if req.Clock > lastClock {
			lastClock = req.Clock
		}
		if sampled {
			req.Trace = false
		}
	}

	w.busy.Add(int64(totalCPU))
	w.processed.Add(int64(len(reqs)))
	w.rt.orch.ObserveBatch(qp.ID, len(reqs), totalCPU, lastClock)
	w.rt.hBatch.Observe(float64(len(reqs)))

	// One CQ reservation for the whole batch; requests that do not fit
	// (completion ring full) fall back to direct completion via MarkDone.
	qp.CompleteBatch(reqs)
	for _, req := range reqs {
		req.MarkDone()
	}
}

// executeOne performs the per-request portion of the hot path: sampling
// decision, IPC charge, FCFS serialization on the worker clock, the stack
// walk, and trace capture. seq is the request's position in the worker's
// processed sequence (feeding the 1-in-N sampler). It returns the charged
// CPU time, whether the stack lookup succeeded, and whether the request
// was sampled (caller clears req.Trace after completion bookkeeping).
func (w *Worker) executeOne(qp *QP, req *Request, seq int64) (cpuUsed vtime.Duration, ok bool, sampled bool) {
	model := w.rt.opts.Model

	// Sample a fraction of requests with tracing on to feed the Runtime's
	// per-stage performance counters.
	if n := w.rt.opts.PerfSampleEvery; n > 0 && !req.Trace && seq%int64(n) == 0 {
		req.Trace = true
		sampled = true
	}

	// The request's cacheline must be transferred from the submitting
	// core's cache (or DRAM) — the paper's measured IPC cost.
	req.Charge("ipc", model.IPCRoundTrip)

	// NUMA locality: a worker touching a payload homed on another node pays
	// the cross-socket surcharge on every payload byte it moves. The payload
	// node comes from the registered buffer handle when the client used one,
	// else from the client's origin node.
	if numa := model.NUMA; numa != nil && numa.Nodes > 1 && req.Size > 0 {
		bn := req.Buf.Node()
		if bn < 0 {
			bn = req.HomeNode
		}
		if d := numa.Cross(bn, w.node, req.Size); d > 0 {
			req.Charge("numa", d)
			w.rt.mNUMACrossBytes.Add(int64(req.Size))
			w.rt.mNUMACrossNS.Add(int64(d))
		} else {
			w.rt.mNUMALocalBytes.Add(int64(req.Size))
		}
	}

	// FCFS serialization on this worker's virtual clock.
	begin := vtime.MaxTime(req.Clock, w.clock.Now())
	req.AdvanceTo(begin)

	cpuBefore := cpuOf(req)
	var stack *core.Stack
	stack, ok = w.rt.Namespace.ByID(req.StackID)
	if ok {
		if err := w.exec.Submit(stack, req); err != nil && req.Err == nil {
			req.Err = err
		}
	} else if req.Err == nil {
		req.Err = errNoStack(req.StackID)
	}
	cpuUsed = cpuOf(req) - cpuBefore

	// The worker was busy for the software portion of the walk; device
	// service overlaps with the worker polling other queues.
	w.clock.AdvanceTo(begin.Add(cpuUsed))

	// Per-stack completion accounting: full request/error counts plus the
	// sampled latency histogram, feeding the stack.* metric family and the
	// SLO watchdog.
	mount := ""
	if ok {
		mount = stack.Mount
	}
	ss := w.rt.stackStatsFor(req.StackID, mount)
	ss.requests.Inc()
	if req.Err != nil {
		ss.errors.Inc()
	}

	// Always-on attribution: every completion folds its coarse anatomy
	// (latency = queue wait + CPU + device) into the worker-local folder —
	// plain integer adds on worker-owned state, published in batches.
	lat := req.Clock.Sub(req.Arrival)
	if w.folder != nil {
		w.folder.Fold(req.StackID, mount, uint8(req.Op), int64(lat),
			int64(begin.Sub(req.Arrival)), int64(cpuUsed), req.Err != nil)
	}

	// Trace retention decision point — the ONLY place a completed request
	// reaches the tracer, so the sink's one-emit-per-request contract holds
	// by construction: a request flows through exactly one of recordTrace
	// (sampled; mirrors errors into the error ring itself) or
	// recordErrorTrace (unsampled failure). Tail retention below never
	// emits to the sink.
	if sampled {
		ss.lat.Observe(lat.Micros())
		w.rt.recordPerf(req.Stages)
		w.rt.recordTrace(w.id, qp.ID, mount, req, begin)
	} else if req.Err != nil {
		// Errors are always captured — unsampled failures go to the
		// tracer's bounded error ring so /traces?err=1 shows real faults.
		w.rt.recordErrorTrace(w.id, qp.ID, mount, req, begin)
	}

	// Tail-based retention: every completion passes the rolling per-stack
	// quantile estimator; outliers land in the tail ring regardless of what
	// the 1-in-N sampler picked, so /traces?tail=1 always has the slowest
	// requests.
	if w.tails != nil {
		if w.tailFor(req.StackID).Observe(float64(lat)) {
			w.rt.recordTailTrace(w.id, qp.ID, mount, req, begin)
		}
	}
	return cpuUsed, ok, sampled
}

// cpuOf sums a request's charged (CPU) stage costs. Device stages advance
// the request clock via AdvanceTo and are charged as "io"/"device" stages
// only when tracing; CPU cost is tracked explicitly on the request.
func cpuOf(req *Request) vtime.Duration { return req.CPUTime }

type errNoStackT int

func errNoStack(id int) error { return errNoStackT(id) }

func (e errNoStackT) Error() string { return "runtime: unknown stack id" }
