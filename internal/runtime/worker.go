package runtime

import (
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/vtime"
)

// Worker drains request queues and executes LabStack DAGs. A worker owns a
// virtual clock: requests it processes serialize on that clock, so worker
// overload, queueing delay and head-of-line blocking show up in modeled
// latency exactly as they would on a dedicated core.
type Worker struct {
	rt *Runtime
	id int

	exec *core.Exec

	clock     vtime.Clock
	busy      atomic.Int64 // cumulative modeled CPU ns
	processed atomic.Int64

	// Telemetry: poll-loop accounting (atomic adds on worker-owned state).
	polls      atomic.Int64 // pollOnce scans
	emptyPolls atomic.Int64 // scans that found no work
	parks      atomic.Int64 // transitions from busy-polling to parked

	active atomic.Bool
	// inProcess is true while the worker is mid-request (crash recovery
	// drains on it before repairing module state).
	inProcess atomic.Bool
	quit      chan struct{}
	wake      chan struct{}

	// queues assigned by the orchestrator (copy-on-write).
	queues atomic.Pointer[[]*QP]
}

func newWorker(rt *Runtime, id int) *Worker {
	w := &Worker{
		rt:   rt,
		id:   id,
		exec: core.NewExec(rt.Registry, rt.Namespace, rt.opts.Model, id),
		quit: make(chan struct{}),
		wake: make(chan struct{}, 1),
	}
	empty := []*QP{}
	w.queues.Store(&empty)
	return w
}

func (w *Worker) setActive(a bool) {
	w.active.Store(a)
	if a {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

func (w *Worker) isActive() bool { return w.active.Load() }

func (w *Worker) stop() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Worker) assign(qs []*QP) {
	cp := make([]*QP, len(qs))
	copy(cp, qs)
	w.queues.Store(&cp)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *Worker) assigned() []*QP { return *w.queues.Load() }

// run is the worker's polling loop. Workers busy-poll their queues (the
// paper's polling workers), yielding the processor between empty scans; a
// worker that stays idle past a threshold parks on its wake channel (the
// paper's parking: it stops busy-waiting for the rest of the epoch) and is
// poked by clients on submit or by the orchestrator on assignment.
//
// Host timers on this platform have ~1ms granularity, so the hot path never
// touches a timer: parking uses the wake channel, with a coarse timer only
// as a lost-wakeup backstop.
func (w *Worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	idleRounds := 0
	for {
		select {
		case <-w.quit:
			return
		default:
		}
		if !w.isActive() || !w.rt.Running() {
			// Parked, decommissioned, or Runtime crashed: block until woken
			// or stopped.
			select {
			case <-w.quit:
				return
			case <-w.wake:
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		if w.pollOnce() {
			idleRounds = 0
			continue
		}
		idleRounds++
		if idleRounds < 256 {
			gort.Gosched()
			continue
		}
		w.parks.Add(1)
		select {
		case <-w.quit:
			return
		case <-w.wake:
		case <-time.After(2 * time.Millisecond):
		}
		idleRounds = 0
	}
}

// pollOnce scans assigned queues once, processing at most one request per
// queue. It returns whether any request was processed.
func (w *Worker) pollOnce() bool {
	w.polls.Add(1)
	any := false
	for _, qp := range w.assigned() {
		// Live-upgrade handshake: acknowledge pending updates and stop
		// draining this (primary) queue until the Module Manager resumes it.
		switch qp.State() {
		case ipc.UpdatePending:
			qp.AckUpdate()
			continue
		case ipc.UpdateAcked:
			continue
		}
		req, err := qp.PollSQ()
		if err != nil {
			continue
		}
		any = true
		w.processRequest(qp, req)
	}
	if !any {
		w.emptyPolls.Add(1)
	}
	return any
}

// processRequest walks one request through its stack and completes it.
func (w *Worker) processRequest(qp *QP, req *Request) {
	w.inProcess.Store(true)
	defer w.inProcess.Store(false)
	model := w.rt.opts.Model

	// Sample a fraction of requests with tracing on to feed the Runtime's
	// per-stage performance counters.
	sampled := false
	if n := w.rt.opts.PerfSampleEvery; n > 0 && !req.Trace && w.processed.Load()%int64(n) == 0 {
		req.Trace = true
		sampled = true
	}

	// The request's cacheline must be transferred from the submitting
	// core's cache (or DRAM) — the paper's measured IPC cost.
	req.Charge("ipc", model.IPCRoundTrip)

	// FCFS serialization on this worker's virtual clock.
	begin := vtime.MaxTime(req.Clock, w.clock.Now())
	req.AdvanceTo(begin)

	cpuBefore := cpuOf(req)
	stack, ok := w.rt.Namespace.ByID(req.StackID)
	if ok {
		if err := w.exec.Submit(stack, req); err != nil && req.Err == nil {
			req.Err = err
		}
	} else if req.Err == nil {
		req.Err = errNoStack(req.StackID)
	}
	cpuUsed := cpuOf(req) - cpuBefore

	// The worker was busy for the software portion of the walk; device
	// service overlaps with the worker polling other queues.
	w.clock.AdvanceTo(begin.Add(cpuUsed))
	w.busy.Add(int64(cpuUsed))
	w.processed.Add(1)
	w.rt.orch.ObserveRequest(qp.ID, cpuUsed, req.Clock)
	if sampled {
		w.rt.recordPerf(req.Stages)
		mount := ""
		if ok {
			mount = stack.Mount
		}
		w.rt.recordTrace(w.id, qp.ID, mount, req, begin)
		req.Trace = false
	}

	if err := qp.Complete(req); err != nil {
		// Completion ring full: fall back to direct completion.
		req.MarkDone()
		return
	}
	req.MarkDone()
}

// cpuOf sums a request's charged (CPU) stage costs. Device stages advance
// the request clock via AdvanceTo and are charged as "io"/"device" stages
// only when tracing; CPU cost is tracked explicitly on the request.
func cpuOf(req *Request) vtime.Duration { return req.CPUTime }

type errNoStackT int

func errNoStack(id int) error { return errNoStackT(id) }

func (e errNoStackT) Error() string { return "runtime: unknown stack id" }
