package runtime_test

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// untrustedMod is a module type provided by an untrusted repo.
type untrustedMod struct{ core.Base }

func (u *untrustedMod) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: "thirdparty.mod", Consumes: core.APIAny, Produces: core.APIAny}
}
func (u *untrustedMod) Process(e *core.Exec, r *core.Request) error { return nil }
func (u *untrustedMod) EstProcessingTime(core.Op, int) vtime.Duration {
	return vtime.Microsecond
}

func TestRuntimeRepoLifecycle(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, MaxReposPerUser: 2})
	rt.Start()
	defer rt.Shutdown()

	repo := core.NewRepo("thirdparty", 1234, false, map[string]core.Factory{
		"thirdparty.mod": func() core.Module { return &untrustedMod{} },
	})
	if err := rt.MountRepo(repo); err != nil {
		t.Fatal(err)
	}
	if got := rt.Repos(); len(got) != 1 || got[0] != "thirdparty" {
		t.Fatalf("repos %v", got)
	}

	// An untrusted type cannot run inside the Runtime (async stack)...
	_, err := rt.Mount(core.NewStack("x::/async", core.Rules{ExecMode: core.ExecAsync}, []core.Vertex{
		{UUID: "u1", Type: "thirdparty.mod"},
	}))
	if err == nil {
		t.Fatal("untrusted type mounted into the Runtime address space")
	}
	// ... but is allowed in a client-side (sync) stack.
	if _, err := rt.Mount(core.NewStack("x::/sync", core.Rules{ExecMode: core.ExecSync}, []core.Vertex{
		{UUID: "u2", Type: "thirdparty.mod"},
	})); err != nil {
		t.Fatal(err)
	}
	cli := rt.Connect(ipc.Credentials{PID: 9})
	req := core.NewRequest(core.OpMessage)
	if err := cli.Submit("x::/sync", req); err != nil {
		t.Fatal(err)
	}

	if err := rt.UnmountRepo("thirdparty", 1234); err != nil {
		t.Fatal(err)
	}
	// The type is gone for NEW instantiations.
	if _, err := rt.Mount(core.NewStack("x::/again", core.Rules{ExecMode: core.ExecSync}, []core.Vertex{
		{UUID: "u3", Type: "thirdparty.mod"},
	})); err == nil {
		t.Fatal("unmounted repo's type still instantiable")
	}
}

func TestRuntimePerfCounters(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, PerfSampleEvery: 1})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/p
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: sched
    type: labstor.noop
    attrs:
      device: dev0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
	buf := make([]byte, 4096)
	for i := 0; i < 50; i++ {
		req := core.NewRequest(core.OpWrite)
		req.Path = "f"
		req.Flags = core.FlagCreate
		req.Offset = int64(i) * 4096
		req.Size = len(buf)
		req.Data = buf
		if err := cli.Submit("fs::/p", req); err != nil {
			t.Fatal(err)
		}
	}
	counters := rt.PerfCounters()
	if len(counters) == 0 {
		t.Fatal("no performance counters sampled")
	}
	byStage := map[string]runtime.PerfCounter{}
	for _, c := range counters {
		byStage[c.Stage] = c
	}
	for _, want := range []string{"ipc", "sched", "driver", "io", "fs_meta"} {
		c, ok := byStage[want]
		if !ok {
			t.Fatalf("stage %q not sampled (have %v)", want, counters)
		}
		if c.Ops <= 0 || c.Mean <= 0 {
			t.Fatalf("stage %q empty: %+v", want, c)
		}
	}
	// The device stage dominates, as in the anatomy.
	if byStage["io"].Mean <= byStage["sched"].Mean {
		t.Fatal("io mean should dominate scheduler mean")
	}
}

func TestPerfSamplingDisabled(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, PerfSampleEvery: -1})
	rt.Mount(core.NewStack("m::/d", core.Rules{}, []core.Vertex{{UUID: "d", Type: "labstor.dummy"}}))
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	for i := 0; i < 10; i++ {
		cli.Submit("m::/d", core.NewRequest(core.OpMessage))
	}
	if len(rt.PerfCounters()) != 0 {
		t.Fatal("sampling ran while disabled")
	}
}
