package runtime_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/dummy"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

func newDummyRig(t *testing.T, workers int) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: workers, QueueDepth: 1024})
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	if _, err := rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: dummy.Type},
	})); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
}

func TestCentralizedUpgradeUnderLoad(t *testing.T) {
	rt, cli := newDummyRig(t, 1)

	stop := make(chan struct{})
	var sent int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req := core.NewRequest(core.OpMessage)
			if err := cli.Submit("msg::/d", req); err != nil {
				return
			}
			sent++
		}
	}()

	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
			UUID:       "dum",
			Build:      func() core.Module { return &dummy.Dummy{} },
			Mode:       runtime.Centralized,
			CodeSize:   1 << 20,
			CodeDevice: "dev0",
		}); err != nil {
			t.Fatalf("upgrade %d: %v", i, err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()

	if rt.ModManager().UpgradesDone() != 3 {
		t.Fatalf("upgrades done %d", rt.ModManager().UpgradesDone())
	}
	if rt.Registry.Generation("dum") != 3 {
		t.Fatalf("generation %d", rt.Registry.Generation("dum"))
	}
	// The message counter survived all three swaps and kept counting.
	m, _ := rt.Registry.Get("dum")
	if got := m.(*dummy.Dummy).Messages(); got != int64(sent) {
		t.Fatalf("counter %d, sent %d", got, sent)
	}
	if rt.ModManager().TotalUpgradeTime() <= 0 {
		t.Fatal("upgrade time not modeled")
	}
}

func TestDecentralizedUpgradeUpdatesClients(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	_ = cli
	// A second client whose registry view will be cloned.
	cli2 := rt.Connect(ipc.Credentials{PID: 2})
	req := core.NewRequest(core.OpMessage)
	if err := cli2.Submit("msg::/d", req); err != nil {
		t.Fatal(err)
	}
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
		UUID:  "dum",
		Build: func() core.Module { return &dummy.Dummy{} },
		Mode:  runtime.Decentralized,
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Registry.Generation("dum") != 1 {
		t.Fatal("central registry not swapped")
	}
}

func TestUpgradeQueuePausesAndResumes(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	// After an upgrade completes, the queue must be back to Running and
	// requests must flow.
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
		UUID:  "dum",
		Build: func() core.Module { return &dummy.Dummy{} },
	}); err != nil {
		t.Fatal(err)
	}
	if st := cli.QueuePair().State(); st != ipc.Running {
		t.Fatalf("queue state after upgrade: %v", st)
	}
	req := core.NewRequest(core.OpMessage)
	if err := cli.Submit("msg::/d", req); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeErrors(t *testing.T) {
	rt, _ := newDummyRig(t, 1)
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{UUID: "dum"}); err == nil {
		t.Fatal("upgrade without builder succeeded")
	}
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
		UUID:  "ghost",
		Build: func() core.Module { return &dummy.Dummy{} },
	}); err == nil {
		t.Fatal("upgrade of unknown UUID succeeded")
	}
}

func TestUpgradeModelsServiceInterruption(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	req := core.NewRequest(core.OpMessage)
	cli.Submit("msg::/d", req)
	before := rt.Stats()[0].Clock
	if err := rt.ModManager().Upgrade(&runtime.UpgradeRequest{
		UUID:       "dum",
		Build:      func() core.Module { return &dummy.Dummy{} },
		CodeSize:   1 << 20,
		CodeDevice: "dev0",
	}); err != nil {
		t.Fatal(err)
	}
	after := rt.Stats()[0].Clock
	if after <= before {
		t.Fatal("upgrade did not advance worker clocks (no modeled interruption)")
	}
}

func TestCrashAndRestartUnderLoad(t *testing.T) {
	rt, cli := newDummyRig(t, 2)
	cli.RestartPatience = 5 * time.Second

	// Send some traffic, then crash mid-stream.
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			req := core.NewRequest(core.OpMessage)
			if err := cli.Submit("msg::/d", req); err != nil {
				errCh <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
		}
		errCh <- nil
	}()
	time.Sleep(time.Millisecond)
	rt.Crash()
	if rt.Running() || !rt.Crashed() {
		t.Fatal("crash state")
	}
	time.Sleep(5 * time.Millisecond)
	if err := rt.Restart(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	// All 500 messages processed despite the crash window.
	m, _ := rt.Registry.Get("dum")
	if m.(*dummy.Dummy).Messages() != 500 {
		t.Fatalf("messages %d", m.(*dummy.Dummy).Messages())
	}
}

func TestRestartWithoutCrashFails(t *testing.T) {
	rt, _ := newDummyRig(t, 1)
	if err := rt.Restart(); err == nil {
		t.Fatal("restart of running runtime succeeded")
	}
}

func TestWaitTimesOutIfNeverRestarted(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	cli.RestartPatience = 20 * time.Millisecond
	rt.Crash()
	req := core.NewRequest(core.OpMessage)
	err := cli.Submit("msg::/d", req)
	if err != runtime.ErrWaitTimeout {
		t.Fatalf("expected ErrWaitTimeout, got %v", err)
	}
	rt.Restart()
}

func TestSubmitAfterShutdown(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1})
	rt.AddDevice(device.New("dev0", device.NVMe, 1<<20))
	rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{{UUID: "d", Type: dummy.Type}}))
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	rt.Shutdown()
	req := core.NewRequest(core.OpMessage)
	if err := cli.Submit("msg::/d", req); err != runtime.ErrStopped {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
}

func TestModifyStackLive(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	// Insert a second dummy after the first.
	if err := rt.ModifyStack("msg::/d", "dum", &core.Vertex{UUID: "tail", Type: dummy.Type}, ""); err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.OpMessage)
	if err := cli.Submit("msg::/d", req); err != nil {
		t.Fatal(err)
	}
	m, _ := rt.Registry.Get("tail")
	if m.(*dummy.Dummy).Messages() != 1 {
		t.Fatal("inserted vertex not on the path")
	}
	// Remove it again.
	if err := rt.ModifyStack("msg::/d", "", nil, "tail"); err != nil {
		t.Fatal(err)
	}
	cli.Submit("msg::/d", core.NewRequest(core.OpMessage))
	if m.(*dummy.Dummy).Messages() != 1 {
		t.Fatal("removed vertex still on the path")
	}
	// Unknown mount.
	if err := rt.ModifyStack("msg::/ghost", "", nil, "x"); err == nil {
		t.Fatal("modify of unknown mount succeeded")
	}
}

func TestAsyncBatchSubmission(t *testing.T) {
	rt, cli := newDummyRig(t, 2)
	stack, _ := rt.Namespace.Lookup("msg::/d")
	reqs := make([]*core.Request, 16)
	for i := range reqs {
		reqs[i] = core.NewRequest(core.OpMessage)
		if err := cli.SubmitStackAsync(stack, reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.WaitAll(reqs); err != nil {
		t.Fatal(err)
	}
	m, _ := rt.Registry.Get("dum")
	if m.(*dummy.Dummy).Messages() != 16 {
		t.Fatal("batch lost messages")
	}
	if cli.Clock() <= 0 {
		t.Fatal("client clock not advanced")
	}
}

func TestWorkerStatsAccounting(t *testing.T) {
	rt, cli := newDummyRig(t, 1)
	for i := 0; i < 10; i++ {
		cli.Submit("msg::/d", core.NewRequest(core.OpMessage))
	}
	ws := rt.Stats()[0]
	if ws.Processed != 10 {
		t.Fatalf("processed %d", ws.Processed)
	}
	if ws.BusyVirt <= 0 || ws.Clock <= 0 {
		t.Fatal("virtual accounting empty")
	}
	if rt.ActiveWorkers() != 1 {
		t.Fatal("active workers")
	}
	_ = vtime.Microsecond
}

func TestMountSpecValidationFailure(t *testing.T) {
	rt, _ := newDummyRig(t, 1)
	// Unknown module type fails at mount.
	if _, err := rt.MountSpec("mount: x::/y\nmods:\n  - uuid: a\n    type: no.such\n"); err == nil {
		t.Fatal("mount with unknown type succeeded")
	}
	// Incompatible interfaces fail validation.
	if _, err := rt.MountSpec(`
mount: bad::/q
mods:
  - uuid: kvs9
    type: labstor.generickvs
  - uuid: fs9
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 2
  - uuid: drv9
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err == nil {
		t.Fatal("generickvs -> labfs composition validated")
	}
}
