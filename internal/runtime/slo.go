package runtime

import (
	"fmt"
	"sync"

	"labstor/internal/stats"
	"labstor/internal/telemetry"
)

// SLOTarget is one stack's declared service-level objective, parsed from the
// runtime configuration's `slo:` section. Zero-valued limits are not
// enforced (a target may bound only latency, only errors, or both).
type SLOTarget struct {
	// Stack is the mount point the target applies to (e.g. "fs::/probe").
	Stack string
	// P99US bounds the stack's p99 modeled latency in microseconds,
	// evaluated over each watchdog window from sampled-request histograms.
	P99US float64
	// MaxErrRate bounds the stack's completed-request error fraction
	// (0.01 = 1%), evaluated over each watchdog window from full counts.
	MaxErrRate float64
}

// SLOStatus is one target's live evaluation state, exported through
// Runtime.SLOStatus, the snapshot tree and `labctl top`.
type SLOStatus struct {
	Stack         string  `json:"stack"`
	TargetP99US   float64 `json:"target_p99_us,omitempty"`
	TargetErrRate float64 `json:"target_max_err_rate,omitempty"`
	// Window observations from the most recent evaluation.
	P99US    float64 `json:"p99_us"`
	ErrRate  float64 `json:"err_rate"`
	Samples  int64   `json:"samples"`
	Requests int64   `json:"requests"`
	OK       bool    `json:"ok"`
	// Breaches counts breaching evaluations; Evals all evaluations.
	Breaches int64 `json:"breaches"`
	Evals    int64 `json:"evals"`
}

// sloMinWindowSamples is the fewest sampled latencies a window must contain
// before its p99 is trusted (tiny windows make q=0.99 degenerate).
const sloMinWindowSamples = 5

// sloState is the watchdog's per-target evaluation state: the previous
// window boundary (histogram accumulator + counters) and cached metric
// handles for the slo.* gauge family.
type sloState struct {
	target SLOTarget
	ok     bool

	prevHist stats.HistogramState
	prevReqs int64
	prevErrs int64

	lastP99     float64
	lastErrRate float64
	lastSamples int64
	lastReqs    int64
	breaches    int64
	evals       int64

	gOK     *telemetry.Gauge
	gP99    *telemetry.Gauge
	gErrPPM *telemetry.Gauge
	cBreach *telemetry.Counter
}

// sloWatchdog periodically evaluates every configured target against the
// per-stack telemetry deltas and publishes the verdicts as slo.* metrics
// and flight-recorder events (the policy-readable face the orchestrator and
// future admission control consume).
type sloWatchdog struct {
	rt *Runtime

	mu     sync.Mutex
	states []*sloState
}

func newSLOWatchdog(rt *Runtime, targets []SLOTarget) *sloWatchdog {
	wd := &sloWatchdog{rt: rt}
	for _, tgt := range targets {
		label := ";stack=" + tgt.Stack
		wd.states = append(wd.states, &sloState{
			target:  tgt,
			ok:      true,
			gOK:     rt.metrics.Gauge("slo.ok" + label),
			gP99:    rt.metrics.Gauge("slo.p99_us" + label),
			gErrPPM: rt.metrics.Gauge("slo.err_rate_ppm" + label),
			cBreach: rt.metrics.Counter("slo.breaches" + label),
		})
		// Targets start in-SLO until evidence says otherwise.
		wd.states[len(wd.states)-1].gOK.Set(1)
	}
	return wd
}

// Evaluate runs one watchdog pass over every target. It is called by the
// runtime's SLO loop every SLOCheckEvery, and directly by tests.
func (wd *sloWatchdog) Evaluate() {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	vnow := wd.rt.vnow()
	for _, st := range wd.states {
		ss := wd.rt.stackStatsByMount(st.target.Stack)
		if ss == nil {
			continue // stack not mounted (yet): nothing to evaluate
		}
		st.evals++

		hist := ss.lat.State()
		reqs := ss.requests.Value()
		errs := ss.errors.Value()
		window := hist.Delta(st.prevHist)
		dReqs := reqs - st.prevReqs
		dErrs := errs - st.prevErrs
		st.prevHist = hist
		st.prevReqs = reqs
		st.prevErrs = errs

		// p99 over the window's sampled latencies; carried when the window
		// is too thin to trust (an idle stack keeps its last verdict input).
		if window.Count >= sloMinWindowSamples {
			st.lastP99 = window.Quantile(0.99)
		}
		st.lastSamples = window.Count
		st.lastReqs = dReqs
		if dReqs > 0 {
			st.lastErrRate = float64(dErrs) / float64(dReqs)
		} else {
			st.lastErrRate = 0
		}

		breachP99 := st.target.P99US > 0 && st.lastSamples >= sloMinWindowSamples && st.lastP99 > st.target.P99US
		breachErr := st.target.MaxErrRate > 0 && dReqs > 0 && st.lastErrRate > st.target.MaxErrRate
		breached := breachP99 || breachErr

		st.gP99.Set(int64(st.lastP99))
		st.gErrPPM.Set(int64(st.lastErrRate * 1e6))
		if breached {
			st.breaches++
			st.cBreach.Inc()
			wd.rt.metrics.Counter("slo.breaches").Inc()
			st.gOK.Set(0)
		} else {
			st.gOK.Set(1)
		}

		// Flight-recorder events on state transitions only, so a sustained
		// breach is one event, not one per evaluation.
		if breached && st.ok {
			st.ok = false
			wd.rt.events.Record(telemetry.EvSLOBreach,
				fmt.Sprintf("stack %s out of SLO", st.target.Stack), vnow,
				map[string]string{
					"stack":          st.target.Stack,
					"p99_us":         fmt.Sprintf("%.1f", st.lastP99),
					"target_p99_us":  fmt.Sprintf("%.1f", st.target.P99US),
					"err_rate":       fmt.Sprintf("%.4f", st.lastErrRate),
					"target_err":     fmt.Sprintf("%.4f", st.target.MaxErrRate),
					"window_samples": fmt.Sprintf("%d", st.lastSamples),
				})
			// Breach transitions fan out to registered hooks (incident-bundle
			// capture); each hook runs on its own goroutine.
			wd.rt.notifyBreach(st.status())
		} else if !breached && !st.ok {
			st.ok = true
			wd.rt.events.Record(telemetry.EvSLORecover,
				fmt.Sprintf("stack %s back in SLO", st.target.Stack), vnow,
				map[string]string{
					"stack":  st.target.Stack,
					"p99_us": fmt.Sprintf("%.1f", st.lastP99),
				})
		}
	}
}

// status renders one target's current evaluation state (caller holds wd.mu).
func (st *sloState) status() SLOStatus {
	return SLOStatus{
		Stack:         st.target.Stack,
		TargetP99US:   st.target.P99US,
		TargetErrRate: st.target.MaxErrRate,
		P99US:         st.lastP99,
		ErrRate:       st.lastErrRate,
		Samples:       st.lastSamples,
		Requests:      st.lastReqs,
		OK:            st.ok,
		Breaches:      st.breaches,
		Evals:         st.evals,
	}
}

// Status returns every target's current evaluation state.
func (wd *sloWatchdog) Status() []SLOStatus {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	out := make([]SLOStatus, 0, len(wd.states))
	for _, st := range wd.states {
		out = append(out, st.status())
	}
	return out
}

// stackStats is the per-stack completion accounting feeding SLO evaluation
// and the stack.* metric family: full request/error counts plus the sampled
// latency histogram. Handles are cached at first use so the worker hot path
// pays one sync.Map load and two atomic adds per request.
type stackStats struct {
	mount    string
	requests *telemetry.Counter
	errors   *telemetry.Counter
	lat      *stats.Histogram
}

// stackStatsFor returns (creating on first use) the stats slot for a stack.
func (rt *Runtime) stackStatsFor(stackID int, mount string) *stackStats {
	if v, ok := rt.stackStats.Load(stackID); ok {
		return v.(*stackStats)
	}
	label := ";stack=" + mount
	ss := &stackStats{
		mount:    mount,
		requests: rt.metrics.Counter("stack.requests" + label),
		errors:   rt.metrics.Counter("stack.errors" + label),
		lat:      rt.metrics.Histogram("stack.latency_us" + label),
	}
	v, _ := rt.stackStats.LoadOrStore(stackID, ss)
	return v.(*stackStats)
}

// stackStatsByMount finds a stack's stats slot by mount point (watchdog
// path: a linear scan over a handful of stacks every evaluation period).
func (rt *Runtime) stackStatsByMount(mount string) *stackStats {
	var found *stackStats
	rt.stackStats.Range(func(_, v any) bool {
		if ss := v.(*stackStats); ss.mount == mount {
			found = ss
			return false
		}
		return true
	})
	return found
}
