package runtime_test

import (
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/dummy"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// newBatchRig builds a single-worker dummy rig with a configurable drain
// batch so modeled results are deterministic (one worker, FIFO ring).
func newBatchRig(t *testing.T, batch int) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 256, Batch: batch})
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	if _, err := rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: dummy.Type},
	})); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
}

// runBurst submits n async requests in one batch, reaps them, and returns
// the per-request completion clocks plus the final client clock.
func runBurst(t *testing.T, cli *runtime.Client, rt *runtime.Runtime, n int) ([]vtime.Time, vtime.Time) {
	t.Helper()
	stack, ok := rt.Namespace.Lookup("msg::/d")
	if !ok {
		t.Fatal("stack not mounted")
	}
	reqs := make([]*core.Request, n)
	for i := range reqs {
		reqs[i] = core.NewRequest(core.OpMessage)
	}
	if err := cli.SubmitBatch(stack, reqs); err != nil {
		t.Fatal(err)
	}
	if err := cli.WaitAll(reqs); err != nil {
		t.Fatal(err)
	}
	clocks := make([]vtime.Time, n)
	for i, req := range reqs {
		if req.Err != nil {
			t.Fatalf("req %d: %v", i, req.Err)
		}
		clocks[i] = req.Clock
	}
	return clocks, cli.Clock()
}

// TestBatchEquivalence checks the tentpole's semantic invariant: batching
// amortizes host-side overhead only — modeled (virtual-time) results are
// identical at any batch size. The same 64-request burst on a single worker
// must produce identical per-request completion clocks at batch 1 (the
// original single-request poll path) and batch 8 (vectored drain).
func TestBatchEquivalence(t *testing.T) {
	const n = 64
	rt1, cli1 := newBatchRig(t, 1)
	c1, final1 := runBurst(t, cli1, rt1, n)
	rt8, cli8 := newBatchRig(t, 8)
	c8, final8 := runBurst(t, cli8, rt8, n)
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("req %d completion clock differs: batch1=%v batch8=%v", i, c1[i], c8[i])
		}
	}
	if final1 != final8 {
		t.Fatalf("final client clock differs: batch1=%v batch8=%v", final1, final8)
	}
	if final1 <= 0 {
		t.Fatal("client clock did not advance")
	}
	// The batched runtime must actually have processed all requests.
	if got := rt8.Stats()[0].Processed; got != n {
		t.Fatalf("batch8 worker processed %d, want %d", got, n)
	}
}

// TestBatchDefaultsToSingle checks the knob's defaults: zero/negative batch
// selects the single-request path, and batch is clamped to the queue depth.
func TestBatchDefaultsToSingle(t *testing.T) {
	rt0, cli0 := newBatchRig(t, 0)
	c0, _ := runBurst(t, cli0, rt0, 16)
	rtBig, cliBig := newBatchRig(t, 1<<20) // clamped to QueueDepth
	cBig, _ := runBurst(t, cliBig, rtBig, 16)
	for i := range c0 {
		if c0[i] != cBig[i] {
			t.Fatalf("req %d completion clock differs under clamping: %v vs %v", i, c0[i], cBig[i])
		}
	}
}

// TestWaitAllDrainsAllOnError exercises the WaitAll fix: a failed request
// must not short-circuit the reap. Every request — before and after the
// failing one — must be drained and the client clock advanced past all
// completions; the first error is reported after the drain.
func TestWaitAllDrainsAllOnError(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	stack, _, ok := cli.Resolve("fs::/data")
	if !ok {
		t.Fatal("no stack at fs::/data")
	}
	reqs := make([]*core.Request, 8)
	for i := range reqs {
		if i == 2 {
			// Reading a file that was never created fails inside the stack.
			reqs[i] = core.NewRequest(core.OpRead)
			reqs[i].Path = "does-not-exist.txt"
			reqs[i].Size = 64
			reqs[i].Data = make([]byte, 64)
		} else {
			reqs[i] = core.NewRequest(core.OpCreate)
			reqs[i].Path = "f" + string(rune('a'+i)) + ".txt"
			reqs[i].Mode = 0644
		}
		if err := cli.SubmitStackAsync(stack, reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	err := cli.WaitAll(reqs)
	if err == nil {
		t.Fatal("WaitAll returned nil despite a failed request")
	}
	if reqs[2].Err == nil || err != reqs[2].Err {
		t.Fatalf("WaitAll error %v, want the failing request's error %v", err, reqs[2].Err)
	}
	for i, req := range reqs {
		select {
		case <-req.DoneCh():
		default:
			t.Fatalf("req %d not reaped after WaitAll", i)
		}
		if i != 2 && req.Err != nil {
			t.Fatalf("req %d unexpectedly failed: %v", i, req.Err)
		}
		if cli.Clock() < req.Clock {
			t.Fatalf("client clock %v behind req %d completion %v", cli.Clock(), i, req.Clock)
		}
	}
}

// TestSubmitBatchPooledRoundTrip drives pooled requests through the batched
// submit/reap path and returns them to the pool: the full recycled hot path.
func TestSubmitBatchPooledRoundTrip(t *testing.T) {
	rt, cli := newBatchRig(t, 8)
	stack, _ := rt.Namespace.Lookup("msg::/d")
	before := core.RequestPoolStats()
	for round := 0; round < 4; round++ {
		reqs := make([]*core.Request, 16)
		for i := range reqs {
			reqs[i] = core.AcquireRequest(core.OpMessage)
		}
		if err := cli.SubmitBatch(stack, reqs); err != nil {
			t.Fatal(err)
		}
		if err := cli.WaitAll(reqs); err != nil {
			t.Fatal(err)
		}
		for _, req := range reqs {
			if req.Err != nil {
				t.Fatal(req.Err)
			}
			req.Release()
		}
	}
	m, _ := rt.Registry.Get("dum")
	if got := m.(*dummy.Dummy).Messages(); got != 64 {
		t.Fatalf("messages %d, want 64", got)
	}
	after := core.RequestPoolStats()
	if after.Gets-before.Gets != 64 {
		t.Fatalf("pool gets delta %d, want 64", after.Gets-before.Gets)
	}
	if after.Releases-before.Releases != 64 {
		t.Fatalf("pool releases delta %d, want 64", after.Releases-before.Releases)
	}
}

// TestSubmitBatchQueueFull drives a batch several times the SQ ring depth
// through a tiny queue: SubmitBatch must spin on the full ring (counting
// client.sq_full_retries) rather than drop or error, and every request must
// still complete.
func TestSubmitBatchQueueFull(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 8, Batch: 4})
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	if _, err := rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: dummy.Type},
	})); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
	stack, _ := rt.Namespace.Lookup("msg::/d")

	const n = 512 // 64x the ring depth
	reqs := make([]*core.Request, n)
	for i := range reqs {
		reqs[i] = core.NewRequest(core.OpMessage)
	}
	if err := cli.SubmitBatch(stack, reqs); err != nil {
		t.Fatalf("SubmitBatch over a full ring: %v", err)
	}
	if err := cli.WaitAll(reqs); err != nil {
		t.Fatalf("WaitAll: %v", err)
	}
	for i, req := range reqs {
		if req.Err != nil {
			t.Fatalf("req %d: %v", i, req.Err)
		}
	}
	snap := rt.Metrics().Snapshot()
	if snap.Counters["client.sq_full_retries"] == 0 {
		t.Fatal("no sq_full_retries recorded pushing 512 requests through an 8-deep ring")
	}
	if got := snap.Counters["client.submitted"]; got != n {
		t.Fatalf("client.submitted = %d, want %d", got, n)
	}
}

// TestSubmitBatchStoppedRuntime pins the shutdown contract the serve
// completer relies on: SubmitBatch against a stopped runtime returns
// ErrStopped, and WaitAll on the never-submitted requests also returns
// ErrStopped immediately instead of hanging.
func TestSubmitBatchStoppedRuntime(t *testing.T) {
	// No t.Cleanup(Shutdown) here: the test owns the (single) shutdown.
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 256, Batch: 4})
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	if _, err := rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: dummy.Type},
	})); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
	stack, _ := rt.Namespace.Lookup("msg::/d")
	rt.Shutdown()

	reqs := make([]*core.Request, 4)
	for i := range reqs {
		reqs[i] = core.NewRequest(core.OpMessage)
	}
	if err := cli.SubmitBatch(stack, reqs); err != runtime.ErrStopped {
		t.Fatalf("SubmitBatch on stopped runtime = %v, want ErrStopped", err)
	}
	done := make(chan error, 1)
	go func() { done <- cli.WaitAll(reqs) }()
	select {
	case err := <-done:
		if err != runtime.ErrStopped {
			t.Fatalf("WaitAll on stopped runtime = %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAll hung on never-submitted requests after shutdown")
	}
}
