package runtime

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/stats"
	"labstor/internal/telemetry"
)

// QueueStats is one queue pair's snapshot: ring traffic from internal/ipc
// plus the orchestrator's demand estimates and the worker(s) currently
// assigned to drain it.
type QueueStats struct {
	ipc.QueuePairStats
	// Rate is the observed utilization rate (CPU-time per virtual time),
	// EstUS the EWMA per-request cost estimate driving LQ/CQ classification.
	Rate  float64 `json:"rate"`
	EstUS float64 `json:"est_us"`
	// Workers lists the worker IDs assigned this queue.
	Workers []int `json:"workers"`
}

// OrchestratorStats is the Work Orchestrator's snapshot.
type OrchestratorStats struct {
	Policy        string            `json:"policy"`
	Rebalances    int               `json:"rebalances"`
	ActiveWorkers int               `json:"active_workers"`
	LastDecision  RebalanceDecision `json:"last_decision"`
}

// Snapshot is the Runtime's full typed metrics tree: per-worker, per-queue
// and per-stage breakdowns, subsystem stats, the generic metric registry
// and the retained request traces. Everything EXPERIMENTS.md tables report
// is derivable from this tree.
type Snapshot struct {
	Workers      []WorkerStats             `json:"workers"`
	Queues       []QueueStats              `json:"queues"`
	Stages       []PerfCounter             `json:"stages"`
	Orchestrator OrchestratorStats         `json:"orchestrator"`
	Upgrades     UpgradeStats              `json:"upgrades"`
	Metrics      telemetry.MetricsSnapshot `json:"metrics"`
	Traces       []telemetry.Trace         `json:"traces"`
	// ErrorTraces is the tracer's bounded error ring: every errored request
	// regardless of the sampling period, oldest first.
	ErrorTraces []telemetry.Trace `json:"error_traces,omitempty"`
	// SLOs is the watchdog's per-target evaluation state (absent when no
	// targets are configured).
	SLOs []SLOStatus `json:"slos,omitempty"`
	// Events is the flight recorder's retained tail, oldest first.
	Events []telemetry.Event `json:"events,omitempty"`
	// Attribution is the always-on per-stack latency-attribution table
	// (absent when profiling is disabled).
	Attribution []telemetry.StackAttribution `json:"attribution,omitempty"`
	// CopySites is the per-site data-path copy accounting (zero-copy audit):
	// every remaining memcpy on the payload path counts itself here.
	CopySites []telemetry.CopySiteStat `json:"copy_sites,omitempty"`
}

// Snapshot collects the full telemetry tree from a running (or stopped)
// Runtime. It is safe to call concurrently with request processing; values
// are individually consistent, not a global atomic cut.
func (rt *Runtime) Snapshot() *Snapshot {
	// Publish request-pool stats (process-wide sync.Pool counters) as gauges
	// so they appear in the metrics tree alongside ring/worker counters.
	ps := core.RequestPoolStats()
	rt.metrics.Gauge("reqpool.gets").Set(ps.Gets)
	rt.metrics.Gauge("reqpool.hits").Set(ps.Hits)
	rt.metrics.Gauge("reqpool.misses").Set(ps.Misses)
	rt.metrics.Gauge("reqpool.releases").Set(ps.Releases)

	// Payload-arena counters (size-class buffer recycling on the data path).
	as := core.BufArenaStats()
	rt.metrics.Gauge("bufarena.gets").Set(as.Gets)
	rt.metrics.Gauge("bufarena.hits").Set(as.Hits)
	rt.metrics.Gauge("bufarena.misses").Set(as.Misses)
	rt.metrics.Gauge("bufarena.releases").Set(as.Releases)
	rt.metrics.Gauge("bufarena.bytes").Set(as.Bytes)

	// Registered-segment gauges (shared-memory footprint and grant count).
	ss := rt.Env.Segments.Stats()
	rt.metrics.Gauge("segments.count").Set(ss.Count)
	rt.metrics.Gauge("segments.bytes").Set(ss.Bytes)
	rt.metrics.Gauge("segments.grants").Set(ss.Grants)

	snap := &Snapshot{
		Workers: rt.Stats(),
		Stages:  rt.PerfCounters(),
		Orchestrator: OrchestratorStats{
			Policy:        rt.opts.Policy,
			Rebalances:    rt.orch.Rebalances(),
			ActiveWorkers: rt.ActiveWorkers(),
			LastDecision:  rt.orch.LastDecision(),
		},
		Upgrades:    rt.modMgr.Stats(),
		Metrics:     rt.metrics.Snapshot(),
		Traces:      rt.tracer.Recent(),
		ErrorTraces: rt.tracer.RecentErrors(),
		SLOs:        rt.SLOStatus(),
		Events:      rt.events.Recent(),
		Attribution: rt.Attribution(),
		CopySites:   telemetry.CopySiteStats(),
	}
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Stage < snap.Stages[j].Stage })

	// Queue view: ring stats joined with orchestrator demand and the
	// current queue→worker assignment.
	demand := make(map[int]QueueDemand)
	for _, d := range rt.orch.QueueDemands() {
		demand[d.ID] = d
	}
	assigned := make(map[int][]int)
	for _, ws := range snap.Workers {
		for _, qid := range ws.Queues {
			assigned[qid] = append(assigned[qid], ws.ID)
		}
	}
	for _, qp := range rt.orch.Queues() {
		qs := QueueStats{QueuePairStats: qp.Stats(), Workers: assigned[qp.ID]}
		if d, ok := demand[qp.ID]; ok {
			qs.Rate = d.Rate
			qs.EstUS = d.EstNS / 1e3
		}
		snap.Queues = append(snap.Queues, qs)
	}
	sort.Slice(snap.Queues, func(i, j int) bool { return snap.Queues[i].ID < snap.Queues[j].ID })
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// String renders the snapshot as aligned text tables (stats.Table), one
// section per subsystem.
func (s *Snapshot) String() string {
	var b strings.Builder

	b.WriteString("== workers ==\n")
	wt := &stats.Table{Header: []string{"id", "active", "processed", "busy", "clock", "polls", "idle%", "parks", "queues"}}
	for _, w := range s.Workers {
		ids := make([]string, len(w.Queues))
		for i, q := range w.Queues {
			ids[i] = fmt.Sprint(q)
		}
		wt.AddRowf(w.ID, w.Active, w.Processed, w.BusyVirt.String(), fmt.Sprint(w.Clock),
			w.Polls, 100*w.IdleRatio(), w.Parks, strings.Join(ids, ","))
	}
	b.WriteString(wt.String())

	b.WriteString("\n== queues ==\n")
	qt := &stats.Table{Header: []string{"id", "kind", "owner", "state", "sq_depth", "inflight", "enq", "done", "rejects", "rate", "est_us", "workers"}}
	for _, q := range s.Queues {
		ids := make([]string, len(q.Workers))
		for i, w := range q.Workers {
			ids[i] = fmt.Sprint(w)
		}
		qt.AddRowf(q.ID, q.Kind, q.Owner, q.State, q.SQ.Depth, q.Inflight,
			q.SQ.Enqueued, q.CQ.Enqueued, q.SQ.Rejects, q.Rate, q.EstUS, strings.Join(ids, ","))
	}
	b.WriteString(qt.String())

	b.WriteString("\n== stages (sampled) ==\n")
	st := &stats.Table{Header: []string{"stage", "ops", "total", "mean"}}
	for _, c := range s.Stages {
		st.AddRowf(c.Stage, c.Ops, c.Total.String(), c.Mean.String())
	}
	b.WriteString(st.String())

	b.WriteString("\n== orchestrator ==\n")
	fmt.Fprintf(&b, "policy=%s rebalances=%d active_workers=%d\n",
		s.Orchestrator.Policy, s.Orchestrator.Rebalances, s.Orchestrator.ActiveWorkers)
	d := s.Orchestrator.LastDecision
	if d.LQs+d.CQs > 0 {
		fmt.Fprintf(&b, "last decision: %d LQs on %d workers (load %.3f), %d CQs on %d workers (load %.3f)\n",
			d.LQs, d.LQWorkers, d.LQLoad, d.CQs, d.CQWorkers, d.CQLoad)
	}

	b.WriteString("\n== upgrades ==\n")
	fmt.Fprintf(&b, "done=%d pending=%d last_vt=%s total_vt=%s pause=%s drain=%s apply=%s\n",
		s.Upgrades.Done, s.Upgrades.Pending, s.Upgrades.LastVT, s.Upgrades.TotalVT,
		s.Upgrades.LastPauseWall, s.Upgrades.LastDrainWall, s.Upgrades.LastApplyWall)

	b.WriteString("\n== counters ==\n")
	ct := &stats.Table{Header: []string{"name", "value"}}
	for _, k := range telemetry.SortedKeys(s.Metrics.Counters) {
		ct.AddRowf(k, s.Metrics.Counters[k])
	}
	for _, k := range telemetry.SortedKeys(s.Metrics.Gauges) {
		ct.AddRowf(k+" (gauge)", s.Metrics.Gauges[k])
	}
	b.WriteString(ct.String())

	if len(s.Metrics.Histograms) > 0 {
		b.WriteString("\n== histograms ==\n")
		ht := &stats.Table{Header: []string{"name", "count", "mean", "min", "p50", "p90", "p99", "p999", "max"}}
		for _, k := range telemetry.SortedKeys(s.Metrics.Histograms) {
			h := s.Metrics.Histograms[k]
			ht.AddRowf(k, h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.P999, h.Max)
		}
		b.WriteString(ht.String())
	}

	if len(s.CopySites) > 0 {
		b.WriteString("\n== copy sites ==\n")
		cs := &stats.Table{Header: []string{"site", "copies", "bytes"}}
		for _, c := range s.CopySites {
			cs.AddRowf(c.Site, c.Count, c.Bytes)
		}
		b.WriteString(cs.String())
	}

	if len(s.SLOs) > 0 {
		b.WriteString("\n== slos ==\n")
		lt := &stats.Table{Header: []string{"stack", "ok", "p99_us", "target_p99", "err_rate", "target_err", "breaches", "evals"}}
		for _, o := range s.SLOs {
			state := "OK"
			if !o.OK {
				state = "BREACH"
			}
			lt.AddRowf(o.Stack, state, o.P99US, o.TargetP99US, o.ErrRate, o.TargetErrRate, o.Breaches, o.Evals)
		}
		b.WriteString(lt.String())
	}

	if len(s.Attribution) > 0 {
		b.WriteString("\n== attribution ==\n")
		at := &stats.Table{Header: []string{"stack", "requests", "errors", "mean_us", "wait%", "cpu%", "device%", "sampled", "tail"}}
		for _, sa := range s.Attribution {
			at.AddRowf(sa.Stack, sa.Requests, sa.Errors, sa.MeanLatencyUS,
				sa.QueueWaitPct, sa.CPUPct, sa.DevicePct, sa.Sampled, sa.TailRetained)
		}
		b.WriteString(at.String())
	}

	if len(s.Traces) > 0 {
		b.WriteString("\n== recent traces ==\n")
		n := len(s.Traces)
		const show = 10
		if n > show {
			fmt.Fprintf(&b, "(%d retained, showing last %d)\n", n, show)
		}
		for _, t := range s.Traces[max(0, n-show):] {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}

	if len(s.ErrorTraces) > 0 {
		b.WriteString("\n== error traces ==\n")
		n := len(s.ErrorTraces)
		const show = 5
		if n > show {
			fmt.Fprintf(&b, "(%d retained, showing last %d)\n", n, show)
		}
		for _, t := range s.ErrorTraces[max(0, n-show):] {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}

	if len(s.Events) > 0 {
		b.WriteString("\n== flight recorder ==\n")
		n := len(s.Events)
		const show = 12
		if n > show {
			fmt.Fprintf(&b, "(%d retained, showing last %d)\n", n, show)
		}
		for _, ev := range s.Events[max(0, n-show):] {
			b.WriteString(ev.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
