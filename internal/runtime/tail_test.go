package runtime_test

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// bootFS boots a single-worker runtime with an fs stack and the given extra
// options applied (fields left zero in opts keep their test defaults).
func bootFS(t *testing.T, opts runtime.Options) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	if opts.MaxWorkers == 0 {
		opts.MaxWorkers = 1
	}
	rt := runtime.New(opts)
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 8
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
}

// TestTailRetentionCatchesSlowRequests constructs the skewed workload of the
// acceptance criteria: a stream of small writes with a rare large write mixed
// in, under a sampling period so long that 1-in-N sampling provably never
// picks a large write. The tail ring must still hold the slowest requests.
func TestTailRetentionCatchesSlowRequests(t *testing.T) {
	rt, cli := bootFS(t, runtime.Options{
		PerfSampleEvery: 1 << 20, // only the worker's request 0 is ever sampled
		TailRing:        256,
	})

	small := make([]byte, 512)
	big := make([]byte, 256<<10)
	var bigMin vtime.Duration // smallest latency among the large writes
	write := func(i int, data []byte) vtime.Duration {
		req := core.NewRequest(core.OpWrite)
		req.Path = "f"
		req.Flags = core.FlagCreate
		req.Offset = int64(i) * int64(len(big))
		req.Size = len(data)
		req.Data = data
		if err := cli.Submit("fs::/s", req); err != nil {
			t.Fatal(err)
		}
		return req.Clock.Sub(req.Arrival)
	}

	// Warmup phase: the estimator seeds on small-write latency.
	for i := 0; i < 100; i++ {
		write(i, small)
	}
	// Skewed phase: 1 large write per 50 small ones.
	for i := 100; i < 2000; i++ {
		if i%50 == 0 {
			lat := write(i, big)
			if bigMin == 0 || lat < bigMin {
				bigMin = lat
			}
		} else {
			write(i, small)
		}
	}
	if bigMin == 0 {
		t.Fatal("no large writes issued")
	}

	// 1-in-N sampling missed every large write.
	for _, tr := range rt.Traces() {
		if tr.Latency() >= bigMin {
			t.Fatalf("sampled ring holds a large write (lat %v) — workload not skewed enough to prove the point", tr.Latency())
		}
	}

	// The tail ring caught them.
	tail := rt.TailTraces()
	if len(tail) == 0 {
		t.Fatal("tail ring empty under a heavy-tailed workload")
	}
	caught := 0
	for _, tr := range tail {
		if tr.Latency() >= bigMin {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("tail ring holds %d traces but none at large-write latency (>= %v)", len(tail), bigMin)
	}
	// Retention is accounted.
	if got := rt.Metrics().Snapshot().Counters["runtime.tail_retained"]; got == 0 {
		t.Fatal("runtime.tail_retained counter untouched")
	}
	// Tail traces are unsampled: no span anatomy, but the coarse fields are
	// populated for the Chrome-export synthesis.
	for _, tr := range tail {
		if tr.Stack != "fs::/s" || tr.End <= tr.Arrival {
			t.Fatalf("malformed tail trace %+v", tr)
		}
	}
}

func TestTailRetentionDisabled(t *testing.T) {
	rt, cli := bootFS(t, runtime.Options{TailRing: -1})
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 200, true)
	if tail := rt.TailTraces(); tail != nil {
		t.Fatalf("TailTraces = %d traces with retention disabled, want nil", len(tail))
	}
}

// countingSink counts sink emits per request ID (satellite: sink single-emit
// regression). Concurrent-safe: emits happen on worker goroutines.
type countingSink struct {
	mu sync.Mutex
	n  map[uint64]int
}

func (cs *countingSink) Emit(tr telemetry.Trace) {
	cs.mu.Lock()
	cs.n[tr.ReqID]++
	cs.mu.Unlock()
}

// TestSinkSingleEmitPerRequest pins the sink contract: every completed
// request reaches the sink at most once, whatever combination of sampled,
// errored and tail-outlier it is.
func TestSinkSingleEmitPerRequest(t *testing.T) {
	cases := []struct {
		name        string
		sampleEvery int
	}{
		{"sampled", 1},         // every request sampled; errors mirror internally
		{"unsampled", 1 << 20}, // errors reach the sink via CaptureError only
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &countingSink{n: make(map[uint64]int)}
			rt, cli := bootFS(t, runtime.Options{
				PerfSampleEvery: tc.sampleEvery,
				TraceSink:       sink,
				TailRing:        8, // tail retention on: must not add emits
			})
			submitOps(t, cli, "fs::/s", core.OpWrite, "f", 30, true)
			submitOps(t, cli, "fs::/s", core.OpRead, "missing", 10, false)
			_ = rt

			sink.mu.Lock()
			defer sink.mu.Unlock()
			for id, n := range sink.n {
				if n > 1 {
					t.Fatalf("request %d emitted to sink %d times, want at most 1", id, n)
				}
			}
			if tc.sampleEvery == 1 && len(sink.n) != 40 {
				t.Fatalf("sink saw %d requests, want all 40 when sampling every request", len(sink.n))
			}
			if tc.sampleEvery > 1 && len(sink.n) < 10 {
				t.Fatalf("sink saw %d requests, want at least the 10 errored ones", len(sink.n))
			}
		})
	}
}

// TestAttributionShares drives a real workload and checks the acceptance
// criterion: per-stack attribution shares sum to ~100%, for both the
// always-on coarse split and the sampled per-stage table.
func TestAttributionShares(t *testing.T) {
	rt, cli := bootFS(t, runtime.Options{PerfSampleEvery: 4})
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 400, true)
	submitOps(t, cli, "fs::/s", core.OpRead, "f", 100, false)

	// Workers publish attribution deltas on their first idle scan after the
	// burst; give that a moment.
	var attr []telemetry.StackAttribution
	deadline := time.Now().Add(2 * time.Second)
	for {
		attr = rt.Attribution()
		if len(attr) == 1 && attr[0].Requests == 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("attribution did not converge: %+v", attr)
		}
		time.Sleep(time.Millisecond)
	}

	sa := attr[0]
	if sa.Stack != "fs::/s" || sa.Errors != 0 {
		t.Fatalf("attribution = %+v", sa)
	}
	if sum := sa.QueueWaitPct + sa.CPUPct + sa.DevicePct; math.Abs(sum-100) > 0.01 {
		t.Fatalf("coarse shares sum to %.3f%%, want 100", sum)
	}
	if sa.Sampled == 0 {
		t.Fatal("no sampled requests folded")
	}
	var opReqs int64
	seenOps := map[string]bool{}
	for _, op := range sa.Ops {
		opReqs += op.Requests
		seenOps[op.Op] = true
	}
	if opReqs != 500 || !seenOps["write"] || !seenOps["read"] {
		t.Fatalf("op rows = %+v", sa.Ops)
	}
	if len(sa.Stages) == 0 {
		t.Fatal("no stage rows from sampled spans")
	}
	var stageSum float64
	hasQW := false
	for _, st := range sa.Stages {
		stageSum += st.SharePct
		if st.Stage == telemetry.QueueWaitStage {
			hasQW = true
		}
	}
	if math.Abs(stageSum-100) > 0.5 {
		t.Fatalf("stage shares sum to %.3f%%, want ~100 (stages %+v)", stageSum, sa.Stages)
	}
	if !hasQW {
		t.Fatal("stage table missing the queue_wait pseudo-stage")
	}

	// The snapshot tree and text rendering carry the table.
	snap := rt.Snapshot()
	if len(snap.Attribution) != 1 {
		t.Fatalf("snapshot attribution = %+v", snap.Attribution)
	}
	if text := snap.String(); !strings.Contains(text, "== attribution ==") {
		t.Fatal("snapshot text missing the attribution section")
	}
}

// TestAttributionDisabled pins the bench baseline: ProfileDisabled runs fold
// nothing and report nothing.
func TestAttributionDisabled(t *testing.T) {
	rt, cli := bootFS(t, runtime.Options{ProfileDisabled: true})
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 50, true)
	if rt.Profile() != nil || rt.Attribution() != nil {
		t.Fatal("profile active despite ProfileDisabled")
	}
}

// TestBreachHookFires pins the OnSLOBreach fan-out: a breach transition
// invokes the hook exactly once (not once per breaching evaluation).
func TestBreachHookFires(t *testing.T) {
	rt, cli := bootObsRuntime(t)
	fired := make(chan runtime.SLOStatus, 4)
	rt.OnSLOBreach(func(st runtime.SLOStatus) { fired <- st })

	submitOps(t, cli, "dummy::/slow", core.OpWrite, "x", 10, true)
	rt.EvaluateSLOs()
	select {
	case st := <-fired:
		if st.Stack != "dummy::/slow" || st.OK {
			t.Fatalf("hook got %+v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("breach hook never fired")
	}
	// A sustained breach is one transition: further evaluations must not
	// re-fire the hook.
	submitOps(t, cli, "dummy::/slow", core.OpWrite, "x", 10, true)
	rt.EvaluateSLOs()
	select {
	case <-fired:
		t.Fatal("hook fired again without a recovery in between")
	case <-time.After(50 * time.Millisecond):
	}
}
