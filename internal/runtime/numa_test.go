package runtime_test

import (
	"bytes"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
	"labstor/internal/spec"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

const numaBlockStack = `
mount: blk::/b
mods:
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func newNUMARuntime(t *testing.T, workers int, locality float64) *runtime.Runtime {
	t.Helper()
	model := vtime.Default()
	model.NUMA = vtime.DefaultNUMA(2)
	rt := runtime.New(runtime.Options{
		MaxWorkers:     workers,
		Policy:         "round_robin",
		Model:          model,
		LocalityWeight: locality,
	})
	rt.AddDevice(device.New("nvme0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(numaBlockStack); err != nil {
		t.Fatalf("mount: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt
}

func submitBlockWrites(t *testing.T, cli *runtime.Client, n int) {
	t.Helper()
	buf := make([]byte, 4096)
	for i := 0; i < n; i++ {
		if _, err := cli.Call("blk::/b", core.OpBlockWrite, func(r *core.Request) {
			r.Offset = int64(i) * 4096
			r.Size = len(buf)
			r.Data = buf
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// A payload homed on node 1 processed by the only worker (node 0) must be
// charged the modeled cross-NUMA transfer on every request.
func TestNUMAChargeCrossNodePayload(t *testing.T) {
	rt := newNUMARuntime(t, 1, 0)
	cli := rt.Connect(ipc.Credentials{PID: 1}) // client id 1 -> node 1
	const ops = 50
	submitBlockWrites(t, cli, ops)

	cross := rt.Metrics().Counter("numa.cross_bytes").Value()
	local := rt.Metrics().Counter("numa.local_bytes").Value()
	if cross != ops*4096 {
		t.Fatalf("cross_bytes = %d, want %d", cross, ops*4096)
	}
	if local != 0 {
		t.Fatalf("local_bytes = %d, want 0", local)
	}
	if ns := rt.Metrics().Counter("numa.cross_ns").Value(); ns <= 0 {
		t.Fatalf("cross_ns = %d, want > 0", ns)
	}
}

// Without a NUMA model (the default single-node topology) no cross-node
// charge may ever appear — the zero-copy fast path stays byte-identical.
func TestNoNUMAChargeOnSingleNode(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 2})
	rt.AddDevice(device.New("nvme0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(numaBlockStack); err != nil {
		t.Fatalf("mount: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	cli := rt.Connect(ipc.Credentials{PID: 1})
	submitBlockWrites(t, cli, 20)
	if v := rt.Metrics().Counter("numa.cross_bytes").Value(); v != 0 {
		t.Fatalf("cross_bytes = %d on single-node model", v)
	}
	if v := rt.Metrics().Counter("numa.cross_ns").Value(); v != 0 {
		t.Fatalf("cross_ns = %d on single-node model", v)
	}
}

// Four clients on alternating nodes against four workers on alternating
// nodes: node-blind round-robin pairs every queue with an off-node worker,
// locality-aware placement pairs every queue with a node-local one.
func TestLocalityPlacementEliminatesCrossTraffic(t *testing.T) {
	run := func(locality float64) (cross, local int64) {
		rt := newNUMARuntime(t, 4, locality)
		for c := 0; c < 4; c++ {
			cli := rt.Connect(ipc.Credentials{PID: 100 + c})
			submitBlockWrites(t, cli, 25)
		}
		return rt.Metrics().Counter("numa.cross_bytes").Value(),
			rt.Metrics().Counter("numa.local_bytes").Value()
	}
	cross, local := run(0)
	if cross == 0 {
		t.Fatalf("node-blind RR produced no cross traffic (local=%d)", local)
	}
	cross, local = run(2.0)
	if cross != 0 {
		t.Fatalf("locality-aware RR still crossed the socket: cross=%d local=%d", cross, local)
	}
	if local == 0 {
		t.Fatal("locality-aware RR recorded no local traffic")
	}
}

// The numa: and orchestrator.locality_weight spec knobs must flow through
// FromConfig into the cost model and placement options.
func TestFromConfigNUMA(t *testing.T) {
	cfg, err := spec.ParseRuntimeConfig(`
runtime:
  workers: 2
orchestrator:
  policy: round_robin
  locality_weight: 1.5
numa:
  nodes: 2
  cross_ns_per_byte: 0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.FromConfig(cfg)
	if opts.LocalityWeight != 1.5 {
		t.Fatalf("locality weight %v", opts.LocalityWeight)
	}
	if opts.Model == nil || opts.Model.NUMA == nil {
		t.Fatal("NUMA model not built")
	}
	if opts.Model.NUMA.Nodes != 2 || opts.Model.NUMA.CrossPerByte != 0.5 {
		t.Fatalf("NUMA model %+v", opts.Model.NUMA)
	}
}

// End-to-end zero-copy read handout: a cached block read with no
// destination buffer must hand out a retained view of the cache page (no
// copy), and that view must stay stable even after the block is
// overwritten and its page replaced.
func TestBlockReadHandoutZeroCopy(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 2})
	rt.AddDevice(device.New("nvme0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: blk::/c
mods:
  - uuid: cache
    type: labstor.lru
    attrs:
      capacity_mb: 1
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`); err != nil {
		t.Fatalf("mount: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	cli := rt.Connect(ipc.Credentials{PID: 1})

	pat1 := bytes.Repeat([]byte{0xA1}, 4096)
	pat2 := bytes.Repeat([]byte{0xB2}, 4096)
	if _, err := cli.Call("blk::/c", core.OpBlockWrite, func(r *core.Request) {
		r.Offset = 0
		r.Size = 4096
		r.Data = pat1
	}); err != nil {
		t.Fatal(err)
	}
	// Evict the write-inserted page (capacity 1 MiB = 256 pages) so the next
	// read misses and the cache retains the driver-filled handle in place.
	for i := 1; i <= 300; i++ {
		if _, err := cli.Call("blk::/c", core.OpBlockRead, func(r *core.Request) {
			r.Offset = int64(i) * 4096
			r.Size = 4096
		}); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := cli.Call("blk::/c", core.OpBlockRead, func(r *core.Request) {
		r.Offset = 0
		r.Size = 4096
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd.Value, pat1) {
		t.Fatal("miss fill returned wrong bytes")
	}

	// Second read hits: the handout must not copy a single payload byte.
	c0, _ := telemetry.CopyTotals()
	rd2, err := cli.Call("blk::/c", core.OpBlockRead, func(r *core.Request) {
		r.Offset = 0
		r.Size = 4096
	})
	if err != nil {
		t.Fatal(err)
	}
	if c1, _ := telemetry.CopyTotals(); c1 != c0 {
		t.Fatalf("cached handout copied payload bytes (%d copy sites fired)", c1-c0)
	}
	held := rd2.TakeValue()
	defer held.Release()
	if !bytes.Equal(held.Bytes(), pat1) {
		t.Fatal("handout returned wrong bytes")
	}

	// Overwrite the block: the cache replaces the page, but the held view is
	// refcounted — it must keep showing the old bytes, not the new ones.
	if _, err := cli.Call("blk::/c", core.OpBlockWrite, func(r *core.Request) {
		r.Offset = 0
		r.Size = 4096
		r.Data = pat2
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(held.Bytes(), pat1) {
		t.Fatal("held view mutated by overwrite — refcount failed to pin the page")
	}
}
