package runtime

import (
	"errors"
	"fmt"
	gort "runtime"
	"time"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// ErrWaitTimeout is returned by Wait when the Runtime stays offline longer
// than the client's configured patience.
var ErrWaitTimeout = errors.New("runtime: timed out waiting for runtime restart")

// Client is the LabStor client library endpoint for one application
// process/thread. Connecting performs the paper's handshake: the client
// presents process credentials over a UNIX-domain-socket-equivalent, the
// Runtime authenticates them, allocates a shared-memory queue pair, and
// grants the client access to the segment.
type Client struct {
	rt   *Runtime
	id   int
	cred ipc.Credentials

	qp *QP

	// clock is the client thread's virtual clock; it advances with each
	// completion, making submissions closed-loop in virtual time.
	clock vtime.Clock

	// syncExec walks sync-mode stacks directly in the client thread against
	// the client's own registry view (decentralized execution, Lab-D).
	syncExec *core.Exec
	// localRegistry is this client's instance view for decentralized
	// upgrades. It starts as a mirror of the Runtime registry.
	localRegistry *core.Registry

	// RestartPatience bounds how long Wait tolerates a crashed Runtime.
	RestartPatience time.Duration

	// OriginCore tags submitted requests with the client's CPU core (used
	// by the NoOp scheduler's core-keyed hctx mapping).
	OriginCore int

	// Cached telemetry handles (one atomic add per event on the hot path).
	mSubmitted *telemetry.Counter // async submissions enqueued
	mSyncRuns  *telemetry.Counter // sync-mode (client-side) executions
	mRingFull  *telemetry.Counter // submit retries after a full SQ ring

	// cqBuf is the reusable completion-reap buffer: Wait drains the CQ with
	// one vectored ring reservation per run instead of one CAS pair per
	// slot. A Client serves a single application thread (the paper's
	// per-thread client library instance), so the buffer is not locked.
	cqBuf []*core.Request
}

// Connect registers a new client with the Runtime and allocates its primary
// queue pair.
func (rt *Runtime) Connect(cred ipc.Credentials) *Client {
	rt.mu.Lock()
	rt.nextCli++
	rt.nextQP++
	id := rt.nextCli
	qp := ipc.NewQueuePair[*core.Request](rt.nextQP, ipc.Primary, true, rt.opts.QueueDepth)
	qp.OwnerClient = id

	c := &Client{
		rt:              rt,
		id:              id,
		cred:            cred,
		qp:              qp,
		localRegistry:   rt.Registry, // shared until a decentralized upgrade clones it
		RestartPatience: 5 * time.Second,
		OriginCore:      id,
	}
	c.syncExec = core.NewExec(rt.Registry, rt.Namespace, rt.opts.Model, -1)
	cqBuf := rt.opts.QueueDepth
	if cqBuf > 256 {
		cqBuf = 256
	}
	c.cqBuf = make([]*core.Request, cqBuf)
	c.mSubmitted = rt.metrics.Counter("client.submitted")
	c.mSyncRuns = rt.metrics.Counter("client.sync_executed")
	c.mRingFull = rt.metrics.Counter("client.sq_full_retries")
	rt.clients[id] = c
	rt.mu.Unlock()

	// Grant the client its shared segment, label the queue with the client's
	// NUMA node (locality-aware placement key), and hand it to the
	// orchestrator for assignment.
	seg := rt.Env.Segments.Allocate(fmt.Sprintf("qp-%d", qp.ID), 1<<16, cred)
	_ = seg.Grant(cred.PID)
	qp.Node = rt.numaNode(c.OriginCore)
	rt.orch.AddQueue(qp)
	return c
}

// AcquireBuffer returns a registered payload buffer of length n homed on the
// client's NUMA node — the io_uring register-buffers analogue. Attach it to
// a request with req.SetPayload; the client owns the handle and must Release
// it once the request (and any use of the bytes) is finished. The stack
// reads/writes the buffer in place: no copy at the IPC boundary.
func (c *Client) AcquireBuffer(n int) (core.BufHandle, error) {
	return c.rt.BufArena().Acquire(c.rt.numaNode(c.OriginCore), n)
}

// ReleaseBuffer returns an AcquireBuffer handle to the arena.
func (c *Client) ReleaseBuffer(b core.BufHandle) { b.Release() }

// Clone implements the fork/clone support path (paper §III-F): the child
// process gets its own connection — fresh credentials PID, a fresh
// shared-memory queue pair and segment grant — while open file descriptors
// remain visible because GenericFS manages fd state common to the I/O
// systems of its type. The child's virtual clock starts at the parent's
// (a forked process inherits its parent's position on the timeline).
func (c *Client) Clone(childPID int) *Client {
	cred := c.cred
	cred.PID = childPID
	child := c.rt.Connect(cred)
	child.OriginCore = c.OriginCore
	child.clock.AdvanceTo(c.clock.Now())
	return child
}

// Disconnect removes the client and retires its queue pair.
func (c *Client) Disconnect() {
	c.rt.mu.Lock()
	delete(c.rt.clients, c.id)
	c.rt.mu.Unlock()
	c.rt.orch.RemoveQueue(c.qp)
}

// ID returns the client identifier.
func (c *Client) ID() int { return c.id }

// Clock returns the client's current virtual time.
func (c *Client) Clock() vtime.Time { return c.clock.Now() }

// AdvanceClock lets workload generators model think time.
func (c *Client) AdvanceClock(d vtime.Duration) { c.clock.Advance(d) }

// QueuePair exposes the client's primary queue pair (diagnostics/tests).
func (c *Client) QueuePair() *QP { return c.qp }

// Resolve finds the stack serving path and the path remainder.
func (c *Client) Resolve(path string) (*core.Stack, string, bool) {
	return c.rt.Namespace.Resolve(path)
}

// Submit routes req to the stack mounted at mount. Depending on the stack's
// exec mode the request is either placed on the client's queue pair for a
// Runtime worker (async: the centralized, secure path) or executed inline
// in the client thread (sync: the decentralized path with no IPC).
//
// Submit returns once the request is finished (async submissions wait via
// Wait, which detects Runtime crashes and blocks for restart).
func (c *Client) Submit(mount string, req *core.Request) error {
	s, ok := c.rt.Namespace.Lookup(mount)
	if !ok {
		var rem string
		s, rem, ok = c.rt.Namespace.Resolve(mount)
		if !ok {
			return fmt.Errorf("runtime: no stack serving %q", mount)
		}
		if req.Path == "" {
			req.Path = rem
		}
	}
	return c.SubmitStack(s, req)
}

// SubmitStack routes req to an already-resolved stack.
func (c *Client) SubmitStack(s *core.Stack, req *core.Request) error {
	req.StackID = s.ID
	req.Cred = core.Cred{UID: c.cred.UID, GID: c.cred.GID}
	req.OriginCore = c.OriginCore
	req.HomeNode = c.rt.numaNode(c.OriginCore)
	now := c.clock.Now()
	req.Arrival = now
	req.Clock = now

	if s.Rules.ExecMode == core.ExecSync {
		// Decentralized: walk the DAG in the client thread against the
		// client's registry view. No queue, no IPC charge.
		c.mSyncRuns.Inc()
		exec := c.syncExec
		exec.Registry = c.localRegistry
		err := exec.Submit(s, req)
		req.MarkDone()
		c.clock.AdvanceTo(req.Clock)
		if err != nil && req.Err == nil {
			req.Err = err
		}
		return req.Err
	}

	// Centralized: enqueue on the primary queue pair and poll for the
	// completion.
	req.Charge("queue", c.rt.opts.Model.QueueOp)
	for {
		if err := c.checkAlive(); err != nil {
			return err
		}
		if err := c.qp.Submit(req); err == nil {
			break
		}
		// Ring full: yield until a worker drains it.
		c.mRingFull.Inc()
		gort.Gosched()
	}
	c.mSubmitted.Inc()
	c.rt.pokeWorkers()
	if err := c.Wait(req); err != nil {
		return err
	}
	c.clock.AdvanceTo(req.Clock)
	return req.Err
}

// SubmitStackAsync enqueues req on the client's queue pair without waiting
// for completion (async-mode stacks only) — the queue-depth>1 submission
// path. Use Wait/WaitAll to reap.
func (c *Client) SubmitStackAsync(s *core.Stack, req *core.Request) error {
	if s.Rules.ExecMode == core.ExecSync {
		return c.SubmitStack(s, req)
	}
	req.StackID = s.ID
	req.Cred = core.Cred{UID: c.cred.UID, GID: c.cred.GID}
	req.OriginCore = c.OriginCore
	req.HomeNode = c.rt.numaNode(c.OriginCore)
	now := c.clock.Now()
	req.Arrival = now
	req.Clock = now
	req.Charge("queue", c.rt.opts.Model.QueueOp)
	for {
		if err := c.checkAlive(); err != nil {
			return err
		}
		if err := c.qp.Submit(req); err == nil {
			c.mSubmitted.Inc()
			c.rt.pokeWorkers()
			return nil
		}
		c.mRingFull.Inc()
		gort.Gosched()
	}
}

// SubmitBatch stamps and enqueues a run of requests on the client's queue
// pair with as few ring reservations as possible (one when the ring has
// room) and returns without waiting — the vectored counterpart of
// SubmitStackAsync. Reap with WaitAll. All requests share one submission
// timestamp, exactly as if the application thread had queued them
// back-to-back without observing completions in between.
//
// Sync-mode stacks have no queue to batch into; they fall back to
// sequential inline execution.
func (c *Client) SubmitBatch(s *core.Stack, reqs []*core.Request) error {
	if len(reqs) == 0 {
		return nil
	}
	if s.Rules.ExecMode == core.ExecSync {
		for _, req := range reqs {
			if err := c.SubmitStack(s, req); err != nil {
				return err
			}
		}
		return nil
	}
	now := c.clock.Now()
	queueOp := c.rt.opts.Model.QueueOp
	home := c.rt.numaNode(c.OriginCore)
	for _, req := range reqs {
		req.StackID = s.ID
		req.Cred = core.Cred{UID: c.cred.UID, GID: c.cred.GID}
		req.OriginCore = c.OriginCore
		req.HomeNode = home
		req.Arrival = now
		req.Clock = now
		req.Charge("queue", queueOp)
	}
	sent := 0
	for sent < len(reqs) {
		if err := c.checkAlive(); err != nil {
			// Reqs before sent are already queued; the caller must still
			// WaitAll them if the Runtime comes back.
			return err
		}
		n := c.qp.SubmitBatch(reqs[sent:])
		if n == 0 {
			// Ring full: let the workers drain it.
			c.mRingFull.Inc()
			c.rt.pokeWorkers()
			gort.Gosched()
			continue
		}
		sent += n
		c.mSubmitted.Add(int64(n))
	}
	c.rt.pokeWorkers()
	return nil
}

// WaitAll reaps a batch of async submissions, advancing the client clock to
// the latest completion. Every request is drained even when one fails —
// returning early would leak the remaining requests' CQ slots and leave the
// client clock behind their completions — and the first error (wait failure
// or request error, in submission order) is reported after the drain.
func (c *Client) WaitAll(reqs []*core.Request) error {
	var firstErr error
	for _, req := range reqs {
		if err := c.Wait(req); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.clock.AdvanceTo(req.Clock)
		if req.Err != nil && firstErr == nil {
			firstErr = req.Err
		}
	}
	return firstErr
}

// Call builds, submits and waits for a request in one step.
func (c *Client) Call(mount string, op core.Op, build func(*core.Request)) (*core.Request, error) {
	req := core.NewRequest(op)
	if build != nil {
		build(req)
	}
	err := c.Submit(mount, req)
	return req, err
}

// Wait blocks until req completes. If the Runtime crashes while the request
// is outstanding, Wait blocks until an administrator restarts it (up to
// RestartPatience), triggers StateRepair through the client library, and
// resubmits the request (paper §III-C3).
func (c *Client) Wait(req *core.Request) error {
	// One timer for the whole wait, created only if we actually block: the
	// old per-iteration time.After allocated a timer (and its channel) every
	// 2ms spin, and reaping an already-completed request needs none at all.
	var timer *time.Timer
	var deadline time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		// Drain the completion queue: completions are signaled per-request
		// via MarkDone, but the CQ ring slots must be recycled. One vectored
		// reservation reaps a whole run of slots.
		for {
			if n := c.qp.PollCQBatch(c.cqBuf); n == 0 {
				break
			}
		}
		select {
		case <-req.DoneCh():
			return nil
		default:
		}
		if timer == nil {
			deadline = time.Now().Add(c.RestartPatience)
			timer = time.NewTimer(2 * time.Millisecond)
		}
		select {
		case <-req.DoneCh():
			return nil
		case <-timer.C:
			// Periodic wakeup to detect a crashed/stopped Runtime. The timer
			// has fired, so Reset is race-free here.
			timer.Reset(2 * time.Millisecond)
		}
		if c.rt.Crashed() {
			if err := c.awaitRestart(deadline); err != nil {
				return err
			}
			// The Runtime is back: repair module state, then keep waiting —
			// the frozen queues are intact, so workers resume draining the
			// outstanding request.
			c.repairAfterCrash()
		}
		if c.rt.state.Load() == stateStopped {
			return ErrStopped
		}
	}
}

func (c *Client) awaitRestart(deadline time.Time) error {
	for c.rt.Crashed() {
		if time.Now().After(deadline) {
			return ErrWaitTimeout
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// repairAfterCrash is the client library's post-restart hook. In the
// paper, each client iterates the LabStack Namespace and invokes
// StateRepair on the LabMods in its address space. Here the Runtime's
// Restart performs that repair exactly once, under quiescence (no requests
// in flight), for the shared instances every client would otherwise race
// to repair; the client hook only repairs instances that are private to
// this client — clones created by a decentralized upgrade.
func (c *Client) repairAfterCrash() {
	if c.localRegistry == c.rt.Registry {
		return // shared instances: repaired centrally by Restart
	}
	for _, s := range c.rt.Namespace.Stacks() {
		if s.Rules.ExecMode != core.ExecSync {
			continue
		}
		for _, v := range s.Vertices() {
			if m, err := c.localRegistry.Get(v.UUID); err == nil {
				if shared, err2 := c.rt.Registry.Get(v.UUID); err2 == nil && shared == m {
					continue // still the shared instance
				}
				_ = m.StateRepair()
			}
		}
	}
}

func (c *Client) checkAlive() error {
	switch c.rt.state.Load() {
	case stateStopped:
		return ErrStopped
	default:
		return nil
	}
}

// cloneRegistryForDecentralized gives the client a private registry view the
// decentralized upgrade protocol can update independently.
func (c *Client) cloneRegistryForDecentralized() *core.Registry {
	if c.localRegistry != c.rt.Registry {
		return c.localRegistry
	}
	clone := core.NewRegistry()
	c.rt.Registry.ForEach(func(uuid string, m core.Module) {
		clone.Register(uuid, m)
	})
	c.localRegistry = clone
	return clone
}
