package runtime_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// bootObsRuntime boots a runtime with a fast fs stack, a deliberately slow
// dummy stack, and SLO targets on both. The watchdog period is pushed out to
// an hour so tests drive evaluation explicitly via EvaluateSLOs.
func bootObsRuntime(t *testing.T) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	rt := runtime.New(runtime.Options{
		MaxWorkers:      2,
		PerfSampleEvery: 1,
		SLOCheckEvery:   time.Hour,
		SLOs: []runtime.SLOTarget{
			{Stack: "dummy::/slow", P99US: 100},
			{Stack: "fs::/s", MaxErrRate: 0.01},
		},
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	// 2ms of modeled compute per request: p99 far beyond the 100us target.
	if _, err := rt.MountSpec(`
mount: dummy::/slow
mods:
  - uuid: d1
    type: labstor.dummy
    attrs:
      cost_ns: 2000000
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return rt, rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
}

func submitOps(t *testing.T, cli *runtime.Client, mount string, op core.Op, path string, n int, create bool) {
	t.Helper()
	buf := make([]byte, 512)
	for i := 0; i < n; i++ {
		req := core.NewRequest(op)
		req.Path = path
		if create {
			req.Flags = core.FlagCreate
		}
		req.Offset = int64(i) * 512
		req.Size = len(buf)
		req.Data = buf
		if err := cli.Submit(mount, req); err != nil && req.Err == nil {
			t.Fatal(err)
		}
	}
}

func TestSLOWatchdogLatencyBreach(t *testing.T) {
	rt, cli := bootObsRuntime(t)
	submitOps(t, cli, "dummy::/slow", core.OpWrite, "x", 10, true)
	rt.EvaluateSLOs()

	var slow runtime.SLOStatus
	found := false
	for _, st := range rt.SLOStatus() {
		if st.Stack == "dummy::/slow" {
			slow, found = st, true
		}
	}
	if !found {
		t.Fatal("no SLO status for dummy::/slow")
	}
	if slow.OK || slow.Breaches == 0 {
		t.Fatalf("slow stack not flagged: %+v", slow)
	}
	if slow.P99US <= 100 {
		t.Fatalf("window p99 %.1fus not above the 100us target", slow.P99US)
	}

	// Verdicts are published as slo.* gauges and flight events.
	ms := rt.Metrics().Snapshot()
	if got := ms.Gauges["slo.ok;stack=dummy::/slow"]; got != 0 {
		t.Fatalf("slo.ok gauge = %d, want 0", got)
	}
	if got := ms.Counters["slo.breaches"]; got == 0 {
		t.Fatal("global slo.breaches counter untouched")
	}
	evs := rt.Events().Filter(telemetry.EvSLOBreach)
	if len(evs) == 0 {
		t.Fatal("no slo.breach flight event recorded")
	}
	if evs[0].Fields["stack"] != "dummy::/slow" {
		t.Fatalf("breach event fields = %v", evs[0].Fields)
	}
}

func TestSLOWatchdogErrBreachAndRecover(t *testing.T) {
	rt, cli := bootObsRuntime(t)
	// Reads of a nonexistent file: 100% error rate against a 1% target.
	submitOps(t, cli, "fs::/s", core.OpRead, "missing", 10, false)
	rt.EvaluateSLOs()

	status := func() runtime.SLOStatus {
		for _, st := range rt.SLOStatus() {
			if st.Stack == "fs::/s" {
				return st
			}
		}
		t.Fatal("no SLO status for fs::/s")
		return runtime.SLOStatus{}
	}
	if st := status(); st.OK || st.ErrRate < 0.5 {
		t.Fatalf("error breach not detected: %+v", st)
	}

	// A clean window recovers the target and records the transition.
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 50, true)
	rt.EvaluateSLOs()
	if st := status(); !st.OK {
		t.Fatalf("target did not recover: %+v", st)
	}
	if got := rt.Metrics().Snapshot().Gauges["slo.ok;stack=fs::/s"]; got != 1 {
		t.Fatalf("slo.ok gauge = %d after recovery, want 1", got)
	}
	if len(rt.Events().Filter(telemetry.EvSLORecover)) == 0 {
		t.Fatal("no slo.recover flight event recorded")
	}
}

func TestErrorsAlwaysTraced(t *testing.T) {
	rt := runtime.New(runtime.Options{
		MaxWorkers:      1,
		PerfSampleEvery: 1 << 20, // effectively unsampled after request 0
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.MountSpec(`
mount: fs::/s
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})

	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 5, true)
	submitOps(t, cli, "fs::/s", core.OpRead, "missing", 7, false)

	errs := rt.Tracer().RecentErrors()
	if len(errs) != 7 {
		t.Fatalf("error ring holds %d traces, want 7 (sampling must not drop errors)", len(errs))
	}
	for _, tr := range errs {
		if tr.Err == "" || tr.Stack != "fs::/s" || tr.Op != "read" {
			t.Fatalf("error trace = %+v", tr)
		}
	}
	// Each failure is also a flight event.
	if got := len(rt.Events().Filter(telemetry.EvRequestError)); got != 7 {
		t.Fatalf("request.error flight events = %d, want 7", got)
	}
	// Per-stack accounting counts every request, errors included.
	ms := rt.Metrics().Snapshot()
	if got := ms.Counters["stack.requests;stack=fs::/s"]; got != 12 {
		t.Fatalf("stack.requests = %d, want 12", got)
	}
	if got := ms.Counters["stack.errors;stack=fs::/s"]; got != 7 {
		t.Fatalf("stack.errors = %d, want 7", got)
	}
}

func TestFlightRecorderLifecycleEvents(t *testing.T) {
	rt, cli := bootObsRuntime(t)
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 3, true)

	joined := func(kind string) string {
		var b strings.Builder
		for _, ev := range rt.Events().Filter(kind) {
			b.WriteString(ev.Msg)
			b.WriteByte('\n')
		}
		return b.String()
	}
	if !strings.Contains(joined(telemetry.EvRuntime), "runtime started") {
		t.Fatal("no runtime-start flight event")
	}
	if !strings.Contains(joined(telemetry.EvWorker), "activated") {
		t.Fatal("no worker-activation flight event")
	}
	if !strings.Contains(joined(telemetry.EvRebalance), "registered") {
		t.Fatal("no queue-registration flight event")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	rt, cli := bootObsRuntime(t)
	submitOps(t, cli, "fs::/s", core.OpWrite, "f", 20, true)
	submitOps(t, cli, "fs::/s", core.OpRead, "missing", 2, false)
	rt.EvaluateSLOs()

	snap := rt.Snapshot()
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back runtime.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip into runtime.Snapshot: %v", err)
	}
	if len(back.Workers) != len(snap.Workers) || len(back.Queues) != len(snap.Queues) {
		t.Fatalf("round trip lost structure: %d/%d workers, %d/%d queues",
			len(back.Workers), len(snap.Workers), len(back.Queues), len(snap.Queues))
	}
	if len(back.SLOs) != len(snap.SLOs) || len(back.SLOs) == 0 {
		t.Fatalf("round trip lost SLO statuses: %d vs %d", len(back.SLOs), len(snap.SLOs))
	}
	if len(back.Events) != len(snap.Events) || len(back.Events) == 0 {
		t.Fatalf("round trip lost flight events: %d vs %d", len(back.Events), len(snap.Events))
	}
	if len(back.ErrorTraces) != 2 {
		t.Fatalf("round trip holds %d error traces, want 2", len(back.ErrorTraces))
	}
	var total int64
	for _, w := range back.Workers {
		total += w.Processed
	}
	if total != 22 {
		t.Fatalf("round-tripped processed = %d, want 22", total)
	}
	// The text rendering gains the new sections.
	text := snap.String()
	for _, want := range []string{"== slos ==", "== flight recorder ==", "== error traces ==", "p999"} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot text missing %q", want)
		}
	}
}
