package runtime

import (
	"fmt"
	"sync"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// UpgradeMode selects which address spaces a live upgrade touches.
type UpgradeMode uint8

const (
	// Centralized upgrades replace the instance in the Runtime's Module
	// Registry (paper §III-C2, detailed protocol).
	Centralized UpgradeMode = iota
	// Decentralized upgrades additionally replace the instance in every
	// running client's registry view (sync-mode / client-side operators).
	Decentralized
)

func (m UpgradeMode) String() string {
	if m == Decentralized {
		return "decentralized"
	}
	return "centralized"
}

// UpgradeRequest asks the Module Manager to hot-swap the instance behind a
// LabMod UUID. Build constructs the replacement (the paper loads updated
// code from a path; here the "updated code" is a factory). CodeSize and
// CodeDevice model the I/O cost of loading the update binary.
type UpgradeRequest struct {
	UUID string
	// Build creates the new, unconfigured instance.
	Build func() core.Module
	Mode  UpgradeMode
	// CodeSize is the module binary size in bytes (for modeled load cost;
	// the paper's dummy module is 1 MiB on NVMe).
	CodeSize int
	// CodeDevice is the device the update is loaded from ("" = skip the
	// modeled I/O).
	CodeDevice string

	done chan error
}

// ModManager is the Module Manager: it owns the upgrade queue and executes
// the live-upgrade protocols without service interruption.
type ModManager struct {
	rt *Runtime

	mu      sync.Mutex
	pending []*UpgradeRequest

	upgradesDone   int
	lastUpgradeVT  vtime.Duration // modeled duration of the last batch
	totalUpgradeVT vtime.Duration

	// Wall-clock phase timings of the last upgrade batch (the protocol's
	// pause → drain → apply sequence, paper §III-C2).
	lastPauseWall time.Duration
	lastDrainWall time.Duration
	lastApplyWall time.Duration
}

// UpgradeStats summarises the Module Manager's upgrade activity, including
// the wall-clock phase timings of the most recent batch.
type UpgradeStats struct {
	Done          int            `json:"done"`
	Pending       int            `json:"pending"`
	LastVT        vtime.Duration `json:"last_vt_ns"`
	TotalVT       vtime.Duration `json:"total_vt_ns"`
	LastPauseWall time.Duration  `json:"last_pause_wall_ns"`
	LastDrainWall time.Duration  `json:"last_drain_wall_ns"`
	LastApplyWall time.Duration  `json:"last_apply_wall_ns"`
}

// Stats returns the upgrade counters and last-batch phase timings.
func (mm *ModManager) Stats() UpgradeStats {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return UpgradeStats{
		Done:          mm.upgradesDone,
		Pending:       len(mm.pending),
		LastVT:        mm.lastUpgradeVT,
		TotalVT:       mm.totalUpgradeVT,
		LastPauseWall: mm.lastPauseWall,
		LastDrainWall: mm.lastDrainWall,
		LastApplyWall: mm.lastApplyWall,
	}
}

func newModManager(rt *Runtime) *ModManager {
	return &ModManager{rt: rt}
}

// RequestUpgrade enqueues an upgrade (the paper's modify.mods API) and
// returns a channel that yields the result when the admin processes it.
func (mm *ModManager) RequestUpgrade(req *UpgradeRequest) <-chan error {
	req.done = make(chan error, 1)
	mm.mu.Lock()
	mm.pending = append(mm.pending, req)
	mm.mu.Unlock()
	return req.done
}

// Upgrade enqueues and waits for completion.
func (mm *ModManager) Upgrade(req *UpgradeRequest) error {
	ch := mm.RequestUpgrade(req)
	return <-ch
}

// PendingUpgrades returns the queue length.
func (mm *ModManager) PendingUpgrades() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.pending)
}

// UpgradesDone returns how many upgrades have been applied.
func (mm *ModManager) UpgradesDone() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.upgradesDone
}

// TotalUpgradeTime returns the cumulative modeled upgrade time.
func (mm *ModManager) TotalUpgradeTime() vtime.Duration {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.totalUpgradeVT
}

// ProcessUpgrades drains the upgrade queue, executing the centralized
// protocol (and its decentralized extension) for the whole batch:
//
//  1. mark every primary queue UPDATE_PENDING;
//  2. wait until workers acknowledge (UPDATE_ACKED) — paused queues stop
//     draining;
//  3. wait for intermediate requests to complete (all queue pairs idle);
//  4. swap each module via Registry.Swap → StateUpdate(old);
//  5. unmark the queues; requests flow again.
//
// It is called by the Runtime Admin loop every UpgradePoll, and may be
// called directly by tests.
func (mm *ModManager) ProcessUpgrades() {
	mm.mu.Lock()
	batch := mm.pending
	mm.pending = nil
	mm.mu.Unlock()
	if len(batch) == 0 {
		return
	}

	queues := mm.rt.orch.Queues()

	// Phase 1: pause primary queues.
	phaseStart := time.Now()
	for _, q := range queues {
		if q.Kind == ipc.Primary {
			q.MarkUpdatePending()
		}
	}
	// Phase 2: wait for worker acknowledgment (or empty queues; a queue no
	// worker currently polls acks trivially since no one drains it).
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		allAcked := true
		for _, q := range queues {
			if q.Kind != ipc.Primary {
				continue
			}
			if q.State() == ipc.UpdatePending && q.SQLen() > 0 {
				allAcked = false
				break
			}
		}
		if allAcked {
			break
		}
		time.Sleep(20 * time.Microsecond)
	}
	pauseWall := time.Since(phaseStart)
	// Phase 3: drain intermediate queues.
	phaseStart = time.Now()
	for time.Now().Before(deadline) {
		busy := false
		for _, q := range queues {
			if q.Kind == ipc.Intermediate && q.Inflight() > 0 {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		time.Sleep(20 * time.Microsecond)
	}
	drainWall := time.Since(phaseStart)

	// Phase 4: apply each upgrade.
	phaseStart = time.Now()
	var batchVT vtime.Duration
	applied := 0
	for _, up := range batch {
		vt, err := mm.applyOne(up)
		batchVT += vt
		if err == nil {
			applied++
			mm.rt.events.Recordf(telemetry.EvUpgrade, mm.rt.vnow(),
				"module %s upgraded (%s)", up.UUID, up.Mode)
		} else {
			mm.rt.events.Recordf(telemetry.EvUpgrade, mm.rt.vnow(),
				"module %s upgrade failed: %v", up.UUID, err)
		}
		up.done <- err
	}
	applyWall := time.Since(phaseStart)

	// The pause + code load + state transfer occupy the Runtime: model the
	// service interruption by pushing every worker's virtual clock past the
	// upgrade window, so requests queued during the upgrade see the delay.
	if batchVT > 0 {
		for _, w := range mm.rt.workers {
			w.clock.Advance(batchVT)
		}
	}

	// Phase 5: resume.
	for _, q := range queues {
		if q.Kind == ipc.Primary {
			q.ResumeAfterUpdate()
		}
	}

	mm.mu.Lock()
	mm.upgradesDone += applied
	mm.lastUpgradeVT = batchVT
	mm.totalUpgradeVT += batchVT
	mm.lastPauseWall = pauseWall
	mm.lastDrainWall = drainWall
	mm.lastApplyWall = applyWall
	mm.mu.Unlock()

	reg := mm.rt.metrics
	reg.Add("upgrade.applied", int64(applied))
	reg.Observe("upgrade.pause_wall_us", float64(pauseWall.Microseconds()))
	reg.Observe("upgrade.drain_wall_us", float64(drainWall.Microseconds()))
	reg.Observe("upgrade.apply_wall_us", float64(applyWall.Microseconds()))
}

// applyOne swaps a single module and returns the modeled upgrade duration:
// code load I/O (dominant per the paper — ~5 ms for a 1 MiB module on
// NVMe) plus state transfer.
func (mm *ModManager) applyOne(up *UpgradeRequest) (vtime.Duration, error) {
	if up.Build == nil {
		return 0, fmt.Errorf("runtime: upgrade for %q has no builder", up.UUID)
	}
	old, err := mm.rt.Registry.Get(up.UUID)
	if err != nil {
		return 0, err
	}
	// Modeled cost: load updated code from storage + transfer state.
	var cost vtime.Duration
	if up.CodeDevice != "" && up.CodeSize > 0 {
		if dev, derr := mm.rt.Env.Device(up.CodeDevice); derr == nil {
			cost += dev.ServiceTime(device.Read, 0, up.CodeSize)
		}
	}
	cost += mm.rt.opts.Model.Copy(1024) // state transfer: a few pointers

	cfg := core.Config{UUID: up.UUID}
	if ca, ok := old.(interface{ ModConfig() core.Config }); ok {
		cfg = ca.ModConfig()
		cfg.UUID = up.UUID
	}
	next := up.Build()
	if err := next.Configure(cfg, mm.rt.Env); err != nil {
		return cost, err
	}
	if err := mm.rt.Registry.Swap(up.UUID, next); err != nil {
		return cost, err
	}

	if up.Mode == Decentralized {
		// Update every running client's registry view as well.
		mm.rt.mu.Lock()
		clients := make([]*Client, 0, len(mm.rt.clients))
		for _, c := range mm.rt.clients {
			clients = append(clients, c)
		}
		mm.rt.mu.Unlock()
		for _, c := range clients {
			reg := c.cloneRegistryForDecentralized()
			if reg.Has(up.UUID) {
				inst := up.Build()
				_ = inst.Configure(core.Config{UUID: up.UUID}, mm.rt.Env)
				if err := reg.Swap(up.UUID, inst); err != nil {
					return cost, err
				}
				// Each client maps the updated code into its own address
				// space and receives the transferred state.
				cost += mm.rt.opts.Model.Copy(up.CodeSize) + mm.rt.opts.Model.Copy(1024)
			}
		}
	}
	return cost, nil
}
