package runtime_test

import (
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
)

func TestMessageRTT(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	if _, err := rt.Mount(core.NewStack("msg::/d", core.Rules{}, []core.Vertex{{UUID: "dummy0", Type: "labstor.dummy"}})); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	start := time.Now()
	const N = 5000
	for i := 0; i < N; i++ {
		req := core.NewRequest(core.OpMessage)
		if err := cli.Submit("msg::/d", req); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("RTT avg: %v", time.Since(start)/N)
}
