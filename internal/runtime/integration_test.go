package runtime_test

import (
	"bytes"
	"fmt"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
)

// newTestRuntime builds a Runtime with an NVMe device and the Lab-All
// filesystem stack mounted at fs::/data.
func newTestRuntime(t *testing.T, execMode string) (*runtime.Runtime, *runtime.Client) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 256})
	rt.AddDevice(device.New("nvme0", device.NVMe, 256<<20))
	stackSpec := fmt.Sprintf(`
mount: fs::/data
rules:
  exec_mode: %s
mods:
  - uuid: genfs
    type: labstor.genericfs
  - uuid: perm
    type: labstor.perm
    attrs:
      mode: "0666"
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: cache
    type: labstor.lru
    attrs:
      capacity_mb: 8
  - uuid: sched
    type: labstor.noop
    attrs:
      device: nvme0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`, execMode)
	if _, err := rt.MountSpec(stackSpec); err != nil {
		t.Fatalf("mount: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Shutdown)
	cli := rt.Connect(ipc.Credentials{PID: 100, UID: 1000, GID: 1000})
	return rt, cli
}

func testFileRoundTrip(t *testing.T, cli *runtime.Client) {
	t.Helper()
	// Create + write.
	req, err := cli.Call("fs::/data", core.OpCreate, func(r *core.Request) {
		r.Path = "hello.txt"
		r.Mode = 0644
	})
	if err != nil {
		t.Fatalf("create: %v (req err %v)", err, req.Err)
	}
	payload := bytes.Repeat([]byte("labstor!"), 1024) // 8 KiB
	if _, err := cli.Call("fs::/data", core.OpWrite, func(r *core.Request) {
		r.Path = "hello.txt"
		r.Offset = 0
		r.Size = len(payload)
		r.Data = payload
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Read back.
	rd, err := cli.Call("fs::/data", core.OpRead, func(r *core.Request) {
		r.Path = "hello.txt"
		r.Offset = 0
		r.Size = len(payload)
		r.Data = make([]byte, len(payload))
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rd.Result != int64(len(payload)) {
		t.Fatalf("read returned %d bytes, want %d", rd.Result, len(payload))
	}
	if !bytes.Equal(rd.Data, payload) {
		t.Fatalf("read data mismatch")
	}
	// Stat.
	st, err := cli.Call("fs::/data", core.OpStat, func(r *core.Request) { r.Path = "hello.txt" })
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if st.Result != int64(len(payload)) {
		t.Fatalf("stat size = %d, want %d", st.Result, len(payload))
	}
	// Latency must be accounted in virtual time.
	if rd.Latency() <= 0 {
		t.Fatalf("read latency not modeled: %v", rd.Latency())
	}
}

func TestAsyncStackFileRoundTrip(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	testFileRoundTrip(t, cli)
}

func TestSyncStackFileRoundTrip(t *testing.T) {
	_, cli := newTestRuntime(t, "sync")
	testFileRoundTrip(t, cli)
}

func TestUnalignedAndSparseIO(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	// Write 100 bytes at offset 5000 (crosses nothing, unaligned).
	data := bytes.Repeat([]byte{0xAB}, 100)
	if _, err := cli.Call("fs::/data", core.OpWrite, func(r *core.Request) {
		r.Path = "sparse.bin"
		r.Flags = core.FlagCreate
		r.Offset = 5000
		r.Size = len(data)
		r.Data = data
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Read the hole before it: should be zeros.
	rd, err := cli.Call("fs::/data", core.OpRead, func(r *core.Request) {
		r.Path = "sparse.bin"
		r.Offset = 0
		r.Size = 5000
		r.Data = make([]byte, 5000)
	})
	if err != nil {
		t.Fatalf("read hole: %v", err)
	}
	for i, b := range rd.Data[:int(rd.Result)] {
		if b != 0 {
			t.Fatalf("hole byte %d = %x, want 0", i, b)
		}
	}
	// Read the written region.
	rd2, err := cli.Call("fs::/data", core.OpRead, func(r *core.Request) {
		r.Path = "sparse.bin"
		r.Offset = 5000
		r.Size = 100
		r.Data = make([]byte, 100)
	})
	if err != nil {
		t.Fatalf("read data: %v", err)
	}
	if !bytes.Equal(rd2.Data[:100], data) {
		t.Fatalf("unaligned data mismatch")
	}
}

func TestPermissionDenied(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1})
	rt.AddDevice(device.New("nvme0", device.NVMe, 64<<20))
	_, err := rt.MountSpec(`
mount: fs::/secure
mods:
  - uuid: perm
    type: labstor.perm
    attrs:
      owner: "0"
      mode: "0600"
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`)
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	rt.Start()
	defer rt.Shutdown()

	intruder := rt.Connect(ipc.Credentials{PID: 7, UID: 1234, GID: 1234})
	req, _ := intruder.Call("fs::/secure", core.OpCreate, func(r *core.Request) { r.Path = "x" })
	if req.Err == nil {
		t.Fatalf("expected permission denial for non-owner")
	}
	root := rt.Connect(ipc.Credentials{PID: 8, UID: 0, GID: 0})
	req2, err := root.Call("fs::/secure", core.OpCreate, func(r *core.Request) { r.Path = "x" })
	if err != nil || req2.Err != nil {
		t.Fatalf("root create failed: %v / %v", err, req2.Err)
	}
}

func TestNamespaceLongestPrefixRouting(t *testing.T) {
	rt, cli := newTestRuntime(t, "async")
	_ = rt
	// Submit via a deeper path: fs::/data/sub/file should route to fs::/data.
	s, rem, ok := cli.Resolve("fs::/data/sub/file.txt")
	if !ok {
		t.Fatalf("resolve failed")
	}
	if s.Mount != "fs::/data" {
		t.Fatalf("resolved mount %q", s.Mount)
	}
	if rem != "sub/file.txt" {
		t.Fatalf("remainder %q", rem)
	}
}

func TestDirectoryOps(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	if _, err := cli.Call("fs::/data", core.OpMkdir, func(r *core.Request) { r.Path = "dir" }); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("dir/f%d", i)
		if _, err := cli.Call("fs::/data", core.OpCreate, func(r *core.Request) { r.Path = name }); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	ls, err := cli.Call("fs::/data", core.OpReaddir, func(r *core.Request) { r.Path = "dir" })
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(ls.Names) != 3 {
		t.Fatalf("readdir returned %v", ls.Names)
	}
	// rmdir non-empty must fail.
	rm, _ := cli.Call("fs::/data", core.OpRmdir, func(r *core.Request) { r.Path = "dir" })
	if rm.Err == nil {
		t.Fatalf("rmdir of non-empty dir succeeded")
	}
	// unlink children, then rmdir.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("dir/f%d", i)
		if _, err := cli.Call("fs::/data", core.OpUnlink, func(r *core.Request) { r.Path = name }); err != nil {
			t.Fatalf("unlink: %v", err)
		}
	}
	if req, err := cli.Call("fs::/data", core.OpRmdir, func(r *core.Request) { r.Path = "dir" }); err != nil || req.Err != nil {
		t.Fatalf("rmdir: %v / %v", err, req.Err)
	}
}

func TestCloneSharesOpenFiles(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	// Parent opens a file through GenericFS (fd-based state).
	cr, err := cli.Call("fs::/data", core.OpCreate, func(r *core.Request) { r.Path = "shared.txt" })
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Child clones the connection and writes through the inherited fd.
	child := cli.Clone(4242)
	w := core.NewRequest(core.OpWrite)
	w.FD = int(cr.Result)
	w.Offset = 0
	w.Data = []byte("from the child")
	w.Size = len(w.Data)
	if err := child.Submit("fs::/data", w); err != nil || w.Err != nil {
		t.Fatalf("child write: %v / %v", err, w.Err)
	}
	// Parent sees the child's write.
	rd, err := cli.Call("fs::/data", core.OpRead, func(r *core.Request) {
		r.Path = "shared.txt"
		r.Size = 14
		r.Data = make([]byte, 14)
	})
	if err != nil || string(rd.Data[:rd.Result]) != "from the child" {
		t.Fatalf("parent read: %v %q", err, rd.Data)
	}
	if child.Clock() < cli.Clock()-1000000 {
		t.Fatal("child clock not inherited")
	}
}

func TestRenameAndUnlink(t *testing.T) {
	_, cli := newTestRuntime(t, "async")
	payload := []byte("move me")
	if _, err := cli.Call("fs::/data", core.OpWrite, func(r *core.Request) {
		r.Path = "a.txt"
		r.Flags = core.FlagCreate
		r.Size = len(payload)
		r.Data = payload
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := cli.Call("fs::/data", core.OpRename, func(r *core.Request) {
		r.Path = "a.txt"
		r.Path2 = "b.txt"
	}); err != nil {
		t.Fatalf("rename: %v", err)
	}
	// Old path gone.
	old, _ := cli.Call("fs::/data", core.OpStat, func(r *core.Request) { r.Path = "a.txt" })
	if old.Err == nil {
		t.Fatalf("stat of renamed-away path succeeded")
	}
	// New path readable.
	rd, err := cli.Call("fs::/data", core.OpRead, func(r *core.Request) {
		r.Path = "b.txt"
		r.Size = len(payload)
		r.Data = make([]byte, len(payload))
	})
	if err != nil || !bytes.Equal(rd.Data[:rd.Result], payload) {
		t.Fatalf("read after rename: %v, data %q", err, rd.Data)
	}
}
