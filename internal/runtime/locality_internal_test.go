package runtime

import "testing"

// With bias off, packLPT is pure least-loaded; with a strong bias every
// queue must land on a sack whose worker shares its node.
func TestPackLPTLocalityBias(t *testing.T) {
	qs := []*QP{{ID: 1, Node: 0}, {ID: 2, Node: 1}, {ID: 3, Node: 0}, {ID: 4, Node: 1}}
	loads := map[int]float64{1: 1, 2: 1, 3: 1, 4: 1}
	nodes := []int{0, 1}

	sacks := make([][]*QP, 2)
	local, remote := packLPT(qs, loads, sacks, nodes, 0)
	if local+remote != 4 {
		t.Fatalf("placed %d queues, want 4", local+remote)
	}
	if len(sacks[0]) != 2 || len(sacks[1]) != 2 {
		t.Fatalf("bias=0 must stay load-balanced: %d/%d", len(sacks[0]), len(sacks[1]))
	}

	sacks = make([][]*QP, 2)
	local, remote = packLPT(qs, loads, sacks, nodes, 10)
	if remote != 0 || local != 4 {
		t.Fatalf("strong bias: local=%d remote=%d, want 4/0", local, remote)
	}
	for i, sack := range sacks {
		for _, q := range sack {
			if q.Node != nodes[i] {
				t.Fatalf("queue %d (node %d) landed on sack %d (node %d)", q.ID, q.Node, i, nodes[i])
			}
		}
	}
}

// A weak bias must not override a large load imbalance: when one queue
// dwarfs the rest, spreading for load still wins over locality.
func TestPackLPTWeakBiasKeepsLoadBalance(t *testing.T) {
	qs := []*QP{{ID: 1, Node: 0}, {ID: 2, Node: 0}, {ID: 3, Node: 0}, {ID: 4, Node: 0}}
	loads := map[int]float64{1: 100, 2: 1, 3: 1, 4: 1}
	nodes := []int{0, 1}

	sacks := make([][]*QP, 2)
	_, remote := packLPT(qs, loads, sacks, nodes, 0.5)
	if remote == 0 {
		t.Fatal("weak bias pinned every node-0 queue behind the hot one; load balancing must win")
	}
	if len(sacks[0]) == 4 || len(sacks[1]) == 4 {
		t.Fatalf("one sack took everything: %d/%d", len(sacks[0]), len(sacks[1]))
	}
}
