package runtime_test

import (
	"fmt"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
)

func TestRoundRobinSpreadsQueues(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 4, Policy: "round_robin"})
	rt.AddDevice(device.New("dev0", device.NVMe, 16<<20))
	rt.Mount(core.NewStack("m::/d", core.Rules{}, []core.Vertex{{UUID: "d", Type: "labstor.dummy"}}))
	rt.Start()
	defer rt.Shutdown()
	clients := make([]*runtime.Client, 8)
	for i := range clients {
		clients[i] = rt.Connect(ipc.Credentials{PID: 10 + i})
	}
	if got := len(rt.Orchestrator().Queues()); got != 8 {
		t.Fatalf("queues %d", got)
	}
	// All workers stay active under round-robin.
	if rt.ActiveWorkers() != 4 {
		t.Fatalf("active %d", rt.ActiveWorkers())
	}
	// Traffic flows through every client's queue.
	for _, c := range clients {
		if err := c.Submit("m::/d", core.NewRequest(core.OpMessage)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Orchestrator().Rebalances() < 8 {
		t.Fatal("connect must trigger rebalances")
	}
}

func TestQueueRetirementOnDisconnect(t *testing.T) {
	rt := runtime.New(runtime.Options{MaxWorkers: 2})
	rt.AddDevice(device.New("dev0", device.NVMe, 16<<20))
	rt.Mount(core.NewStack("m::/d", core.Rules{}, []core.Vertex{{UUID: "d", Type: "labstor.dummy"}}))
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	if len(rt.Orchestrator().Queues()) != 1 {
		t.Fatal("queue not registered")
	}
	cli.Disconnect()
	if len(rt.Orchestrator().Queues()) != 0 {
		t.Fatal("queue not retired")
	}
}

func TestDynamicDecommissionsIdleWorkers(t *testing.T) {
	rt := runtime.New(runtime.Options{
		MaxWorkers:     8,
		Policy:         "dynamic",
		RebalanceEvery: time.Millisecond,
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	rt.Mount(core.NewStack("m::/d", core.Rules{}, []core.Vertex{{UUID: "d", Type: "labstor.dummy"}}))
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	// One trivial client: after observations settle, the dynamic policy
	// needs only one worker.
	for i := 0; i < 200; i++ {
		if err := cli.Submit("m::/d", core.NewRequest(core.OpMessage)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if rt.ActiveWorkers() <= 2 {
			return
		}
		cli.Submit("m::/d", core.NewRequest(core.OpMessage))
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("dynamic policy kept %d workers for a trivial load", rt.ActiveWorkers())
}

func TestDynamicSeparatesComputeFromLatency(t *testing.T) {
	rt := runtime.New(runtime.Options{
		MaxWorkers:     4,
		Policy:         "dynamic",
		RebalanceEvery: time.Millisecond,
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	// An expensive module (1ms per message) and a cheap one.
	rt.Mount(core.NewStack("m::/heavy", core.Rules{}, []core.Vertex{
		{UUID: "heavy", Type: "labstor.dummy", Attrs: map[string]string{"cost_ns": "1000000"}},
	}))
	rt.Mount(core.NewStack("m::/light", core.Rules{}, []core.Vertex{
		{UUID: "light", Type: "labstor.dummy", Attrs: map[string]string{"cost_ns": "500"}},
	}))
	rt.Start()
	defer rt.Shutdown()

	heavy := rt.Connect(ipc.Credentials{PID: 1})
	light := rt.Connect(ipc.Credentials{PID: 2})
	// Generate observations for the classifier.
	for i := 0; i < 50; i++ {
		if err := heavy.Submit("m::/heavy", core.NewRequest(core.OpMessage)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if err := light.Submit("m::/light", core.NewRequest(core.OpMessage)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// After classification, the light client's queue must not share a
	// worker with the heavy client's queue.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		heavy.Submit("m::/heavy", core.NewRequest(core.OpMessage))
		light.Submit("m::/light", core.NewRequest(core.OpMessage))
		shared := false
		for _, w := range rt.Stats() {
			_ = w
		}
		// Inspect assignments through queue latency: a light message that
		// never waits behind a heavy one completes in ~us.
		req := core.NewRequest(core.OpMessage)
		if err := light.Submit("m::/light", req); err != nil {
			t.Fatal(err)
		}
		if req.Latency() < 100_000 { // < 0.1ms: separated
			return
		}
		_ = shared
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("dynamic policy never isolated the latency-sensitive queue")
}

func TestFromConfig(t *testing.T) {
	opts := runtime.Options{MaxWorkers: 3}
	_ = opts
	rt := runtime.New(runtime.Options{})
	if rt.Options().MaxWorkers != 4 {
		t.Fatalf("default workers %d", rt.Options().MaxWorkers)
	}
	if rt.Model() == nil {
		t.Fatal("model")
	}
	_ = fmt.Sprint()
}
