// Package runtime implements the LabStor Runtime: the userspace
// semi-microkernel that stores, executes, upgrades and repairs LabStacks.
//
// It reproduces the paper's architecture (§III-C):
//
//   - IPC Manager — clients connect with process credentials and obtain
//     shared-memory queue pairs (internal/ipc) over which requests flow;
//   - Workers — polling threads that drain request queues and walk LabStack
//     DAGs via core.Exec;
//   - Work Orchestrator — assigns queues to workers under a pluggable
//     policy (round-robin or the paper's dynamic latency/compute
//     partitioning) and scales the worker pool;
//   - Module Manager — holds the Module Registry and executes the
//     centralized and decentralized live-upgrade protocols;
//   - LabStack Namespace — mount/modify/unmount of stacks;
//   - Crash recovery — the Runtime can crash and be restarted while
//     clients block in Wait; on restart clients invoke StateRepair on
//     every LabMod and continue.
//
// Performance is accounted in virtual time (see internal/vtime): each
// worker and client owns a virtual clock, so modeled latency, throughput,
// queueing and CPU utilization are deterministic and host-independent.
package runtime

import (
	"errors"
	"fmt"
	"io"
	"os"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/spec"
	"labstor/internal/stats"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// ErrStopped is returned after a clean Shutdown.
var ErrStopped = errors.New("runtime: runtime is stopped")

// Request is the queue payload type alias used throughout the runtime.
type Request = core.Request

// QP is a queue pair carrying requests.
type QP = ipc.QueuePair[*core.Request]

// Options configures a Runtime.
type Options struct {
	// MaxWorkers is the size of the worker pool (paper: Runtime workers
	// configured per experiment). The orchestrator may activate fewer.
	MaxWorkers int
	// InitialWorkers is the number of workers active at start
	// (default MaxWorkers).
	InitialWorkers int
	// QueueDepth is the per-queue-pair ring depth.
	QueueDepth int
	// Batch is the maximum number of requests a worker drains from one
	// queue per poll scan (and the size of its vectored SQ/CQ operations).
	// 1 (the default) preserves the original one-request-per-scan
	// semantics; larger values amortize ring reservations, telemetry and
	// orchestrator observation across the batch. Requests are still
	// executed and serialized on the worker clock one at a time, so
	// modeled virtual time is identical at any batch size.
	Batch int
	// Policy selects the orchestration policy ("round_robin" or "dynamic").
	Policy string
	// RebalanceEvery is the orchestrator epoch (wall time). 0 disables the
	// background rebalance loop (experiments call Rebalance explicitly).
	RebalanceEvery time.Duration
	// UpgradePoll is the Runtime Admin's upgrade-queue polling period.
	UpgradePoll time.Duration
	// Model is the virtual-time cost model (vtime.Default() if nil).
	Model *vtime.CostModel
	// LatencyCutoff divides latency-sensitive from computational queues in
	// the dynamic policy.
	LatencyCutoff vtime.Duration
	// LossThreshold is the dynamic policy's tolerated per-worker overload.
	LossThreshold float64
	// LocalityWeight is the orchestrator's locality-vs-load bias: the extra
	// effective load a queue pays when packed onto a worker off its NUMA
	// node. 0 (the default) disables locality-aware placement; it only takes
	// effect when Model.NUMA describes more than one node.
	LocalityWeight float64
	// MaxReposPerUser bounds mount.repo per UID (0 = unlimited).
	MaxReposPerUser int
	// PerfSampleEvery traces one request in N for per-stage performance
	// counters, request histograms and the trace ring. 0 means the default
	// (64); a negative value disables sampling entirely.
	PerfSampleEvery int
	// TraceRing is the capacity of the in-memory ring of recent request
	// traces (0 = telemetry.DefaultTraceRing).
	TraceRing int
	// TraceSink, when non-nil, receives every captured trace synchronously
	// (exporters, test assertions). Sampled requests, plus every errored
	// request (errors are captured regardless of the sampling period).
	TraceSink telemetry.Sink
	// FlightRing is the flight-recorder event ring capacity
	// (0 = telemetry.DefaultFlightRing).
	FlightRing int
	// SLOs are the per-stack service-level targets the watchdog evaluates.
	SLOs []SLOTarget
	// SLOCheckEvery is the watchdog evaluation period (default 100ms).
	SLOCheckEvery time.Duration
	// TailRing is the capacity of the tail-outlier trace ring: traces whose
	// latency crossed the rolling per-stack quantile threshold, retained
	// regardless of 1-in-N sampling (0 = telemetry.DefaultTailRing; negative
	// disables tail retention).
	TailRing int
	// TailQuantile is the rolling quantile the tail estimator tracks
	// (0 = telemetry.DefaultTailQuantile, i.e. 0.99: retain the slowest ~1%).
	TailQuantile float64
	// ProfileDisabled turns off the always-on latency-attribution aggregator
	// (benchmark baselines; production keeps it on — see the attribution
	// experiment for its measured cost).
	ProfileDisabled bool
}

// PerfSamplingDisabled is the PerfSampleEvery value that turns sampling off.
const PerfSamplingDisabled = -1

func (o *Options) fill() {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 4
	}
	if o.InitialWorkers <= 0 || o.InitialWorkers > o.MaxWorkers {
		o.InitialWorkers = o.MaxWorkers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.Batch > o.QueueDepth {
		o.Batch = o.QueueDepth
	}
	if o.Policy == "" {
		o.Policy = "round_robin"
	}
	if o.UpgradePoll <= 0 {
		o.UpgradePoll = time.Millisecond
	}
	if o.Model == nil {
		o.Model = vtime.Default()
	}
	if o.LatencyCutoff <= 0 {
		o.LatencyCutoff = 100 * vtime.Microsecond
	}
	if o.LossThreshold <= 0 {
		o.LossThreshold = 0.1
	}
	if o.PerfSampleEvery == 0 {
		o.PerfSampleEvery = 64
	}
	if o.SLOCheckEvery <= 0 {
		o.SLOCheckEvery = 100 * time.Millisecond
	}
}

// FromConfig builds Options from a parsed RuntimeConfig.
func FromConfig(cfg *spec.RuntimeConfig) Options {
	opts := Options{
		MaxWorkers:      cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		Batch:           cfg.Batch,
		Policy:          cfg.Orchestrator.Policy,
		RebalanceEvery:  time.Duration(cfg.Orchestrator.RebalanceMs) * time.Millisecond,
		UpgradePoll:     time.Duration(cfg.UpgradePollMs) * time.Millisecond,
		LatencyCutoff:   vtime.Duration(cfg.Orchestrator.LatencyCutoffUs) * vtime.Microsecond,
		LossThreshold:   cfg.Orchestrator.LossThreshold,
		LocalityWeight:  cfg.Orchestrator.LocalityWeight,
		MaxReposPerUser: cfg.MaxReposPerUser,
		PerfSampleEvery: cfg.PerfSampleEvery,
		TraceRing:       cfg.TraceRing,
		FlightRing:      cfg.Observe.FlightRing,
		SLOCheckEvery:   time.Duration(cfg.Observe.SLOCheckMs) * time.Millisecond,
		TailRing:        cfg.Observe.Tail,
		TailQuantile:    cfg.Observe.TailQuantile,
	}
	for _, s := range cfg.SLOs {
		opts.SLOs = append(opts.SLOs, SLOTarget{Stack: s.Stack, P99US: s.P99Us, MaxErrRate: s.MaxErrRate})
	}
	if cfg.NUMA.Nodes > 1 {
		model := vtime.Default()
		model.NUMA = vtime.DefaultNUMA(cfg.NUMA.Nodes)
		if cfg.NUMA.CrossNsPerByte > 0 {
			model.NUMA.CrossPerByte = cfg.NUMA.CrossNsPerByte
		}
		opts.Model = model
	}
	return opts
}

// runtime lifecycle states.
const (
	stateRunning int32 = iota
	stateCrashed
	stateStopped
)

// Runtime is the LabStor Runtime instance.
type Runtime struct {
	opts Options

	Env       *core.Env
	Registry  *core.Registry
	Namespace *core.Namespace

	modMgr  *ModManager
	orch    *Orchestrator
	repoMgr *core.RepoManager

	perfMu  sync.Mutex
	perfSum map[string]vtime.Duration
	perfOps map[string]int64

	// metrics is the runtime-wide metrics registry (shared with Env so
	// LabMods publish op counters into the same tree); tracer keeps the
	// bounded ring of sampled request traces; events is the flight
	// recorder — the bounded blackbox of structured runtime events.
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	events  *telemetry.FlightRecorder

	// profile is the always-on latency-attribution aggregator (nil when
	// Options.ProfileDisabled); workers fold every completed request into it
	// through worker-local Folders.
	profile *telemetry.Profile

	// onBreach hooks run (each on its own goroutine) when an SLO target
	// transitions into breach — the incident-bundle capture path.
	breachMu sync.Mutex
	onBreach []func(SLOStatus)

	// slo is the SLO watchdog (nil when no targets are configured);
	// stackStats maps stack ID → per-stack completion accounting.
	slo        *sloWatchdog
	stackStats sync.Map // int -> *stackStats

	// flightDumpW receives the flight-recorder tail on panic or fatal
	// error (os.Stderr unless redirected by tests).
	flightDumpMu sync.Mutex
	flightDumpW  io.Writer

	// Cached metric handles for the sampled-request path.
	mTail      *telemetry.Counter
	mSampled   *telemetry.Counter
	hLatencyUS *stats.Histogram
	hWaitUS    *stats.Histogram
	hCPUUS     *stats.Histogram
	// hBatch observes the size of each multi-request worker drain (only
	// touched when Options.Batch > 1, so batch=1 runs pay nothing).
	hBatch *stats.Histogram
	// NUMA locality accounting (only touched when the cost model carries a
	// multi-node NUMA topology).
	mNUMACrossBytes *telemetry.Counter
	mNUMACrossNS    *telemetry.Counter
	mNUMALocalBytes *telemetry.Counter

	// bufArena is the runtime-owned registered-buffer arena (the io_uring
	// registered-buffer analogue): clients acquire payload handles from it
	// so data lives in ipc.Segment-backed memory end to end. Created lazily
	// on first AcquireBuffer.
	bufArenaOnce sync.Once
	bufArena     *core.SegArena

	mu      sync.Mutex
	workers []*Worker
	clients map[int]*Client
	nextCli int
	nextQP  int

	state     atomic.Int32
	adminStop chan struct{}
	wg        sync.WaitGroup
}

// New creates a Runtime with the given options.
func New(opts Options) *Runtime {
	opts.fill()
	rt := &Runtime{
		opts:      opts,
		Env:       core.NewEnv(opts.Model),
		Registry:  core.NewRegistry(),
		Namespace: core.NewNamespace(),
		clients:   make(map[int]*Client),
		adminStop: make(chan struct{}),
	}
	rt.metrics = rt.Env.Metrics
	rt.tracer = telemetry.NewTracer(opts.TraceRing)
	rt.tracer.SetSink(opts.TraceSink)
	rt.tracer.SetTailRing(opts.TailRing)
	if !opts.ProfileDisabled {
		rt.profile = telemetry.NewProfile()
	}
	rt.events = telemetry.NewFlightRecorder(opts.FlightRing)
	rt.flightDumpW = os.Stderr
	if len(opts.SLOs) > 0 {
		rt.slo = newSLOWatchdog(rt, opts.SLOs)
	}
	rt.mTail = rt.metrics.Counter("runtime.tail_retained")
	rt.mSampled = rt.metrics.Counter("runtime.sampled_requests")
	rt.hLatencyUS = rt.metrics.Histogram("request.latency_us")
	rt.hWaitUS = rt.metrics.Histogram("request.queue_wait_us")
	rt.hCPUUS = rt.metrics.Histogram("request.cpu_us")
	rt.hBatch = rt.metrics.Histogram("worker.batch_size")
	rt.mNUMACrossBytes = rt.metrics.Counter("numa.cross_bytes")
	rt.mNUMACrossNS = rt.metrics.Counter("numa.cross_ns")
	rt.mNUMALocalBytes = rt.metrics.Counter("numa.local_bytes")
	rt.modMgr = newModManager(rt)
	rt.orch = newOrchestrator(rt)
	rt.repoMgr = core.NewRepoManager(opts.MaxReposPerUser, 0)
	rt.perfSum = make(map[string]vtime.Duration)
	rt.perfOps = make(map[string]int64)
	for i := 0; i < opts.MaxWorkers; i++ {
		rt.workers = append(rt.workers, newWorker(rt, i))
	}
	return rt
}

// Start launches the workers and the admin loop.
func (rt *Runtime) Start() {
	rt.state.Store(stateRunning)
	rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "runtime started: %d/%d workers, policy=%s",
		rt.opts.InitialWorkers, rt.opts.MaxWorkers, rt.opts.Policy)
	for i, w := range rt.workers {
		active := i < rt.opts.InitialWorkers
		w.setActive(active)
		rt.wg.Add(1)
		go w.run(&rt.wg)
	}
	rt.wg.Add(1)
	go rt.adminLoop()
	if rt.opts.RebalanceEvery > 0 {
		rt.wg.Add(1)
		go rt.rebalanceLoop()
	}
	if rt.slo != nil {
		rt.wg.Add(1)
		go rt.sloLoop()
	}
}

// Shutdown stops the Runtime cleanly.
func (rt *Runtime) Shutdown() {
	if !rt.state.CompareAndSwap(stateRunning, stateStopped) {
		rt.state.Store(stateStopped)
	}
	rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "runtime shutdown")
	close(rt.adminStop)
	for _, w := range rt.workers {
		w.stop()
	}
	rt.wg.Wait()
}

// Crash simulates a Runtime crash (paper §III-C3): workers halt abruptly,
// queues freeze, clients observing Wait see the Runtime offline.
func (rt *Runtime) Crash() {
	rt.state.Store(stateCrashed)
	rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "runtime crashed")
}

// Restart repairs and resumes a crashed Runtime: module state is repaired
// via StateRepair and workers resume draining the frozen queues. Requests
// that were mid-execution when the crash hit are drained first, so repair
// never races an in-flight mutation.
func (rt *Runtime) Restart() error {
	if rt.state.Load() != stateCrashed {
		return fmt.Errorf("runtime: not crashed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		busy := false
		for _, w := range rt.workers {
			if w.inProcess.Load() {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runtime: in-flight requests did not drain before restart")
		}
		gort.Gosched()
	}
	if err := rt.Registry.RepairAll(); err != nil {
		rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "runtime restart failed: %v", err)
		return err
	}
	rt.state.Store(stateRunning)
	rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "runtime restarted after crash")
	return nil
}

// Running reports whether the Runtime is processing requests.
func (rt *Runtime) Running() bool { return rt.state.Load() == stateRunning }

// Crashed reports whether the Runtime is in the crashed state.
func (rt *Runtime) Crashed() bool { return rt.state.Load() == stateCrashed }

// Model returns the cost model.
func (rt *Runtime) Model() *vtime.CostModel { return rt.opts.Model }

// Options returns the active options.
func (rt *Runtime) Options() Options { return rt.opts }

// AddDevice registers a simulated device with the module environment.
func (rt *Runtime) AddDevice(d *device.Device) { rt.Env.AddDevice(d) }

// ModManager exposes the Module Manager (upgrade API).
func (rt *Runtime) ModManager() *ModManager { return rt.modMgr }

// Orchestrator exposes the Work Orchestrator.
func (rt *Runtime) Orchestrator() *Orchestrator { return rt.orch }

// --- repos & performance counters ---------------------------------------------

// MountRepo registers a LabMod repo's types (the paper's unprivileged
// `mount.repo`), subject to the per-user quota.
func (rt *Runtime) MountRepo(r *core.Repo) error { return rt.repoMgr.Mount(r) }

// UnmountRepo removes a repo (`unmount.repo`). uid 0 may remove any.
func (rt *Runtime) UnmountRepo(name string, uid int) error { return rt.repoMgr.Unmount(name, uid) }

// Repos lists mounted repos.
func (rt *Runtime) Repos() []string { return rt.repoMgr.Repos() }

// recordPerf folds a sampled request's per-stage costs into the Runtime's
// performance counters (the paper: workers periodically monitor LabMods for
// performance metrics feeding orchestration policy).
func (rt *Runtime) recordPerf(stages []core.StageTime) {
	rt.perfMu.Lock()
	for _, st := range stages {
		rt.perfSum[st.Stage] += st.Cost
		rt.perfOps[st.Stage]++
	}
	rt.perfMu.Unlock()
}

// buildTrace assembles a telemetry.Trace from a completed request — spans
// from the request's stage anatomy, queue wait from the worker's service
// start.
func buildTrace(workerID, queueID int, stackMount string, req *core.Request, start vtime.Time) telemetry.Trace {
	spans := make([]telemetry.Span, len(req.Stages))
	for i, st := range req.Stages {
		spans[i] = telemetry.Span{Stage: st.Stage, Cost: st.Cost}
	}
	tr := telemetry.Trace{
		ReqID:     req.ID,
		Op:        req.Op.String(),
		Stack:     stackMount,
		StackID:   req.StackID,
		Queue:     queueID,
		Worker:    workerID,
		Arrival:   req.Arrival,
		Start:     start,
		End:       req.Clock,
		QueueWait: start.Sub(req.Arrival),
		CPU:       req.CPUTime,
		Spans:     spans,
	}
	if req.Err != nil {
		tr.Err = req.Err.Error()
	}
	return tr
}

// recordTrace pushes a sampled request's trace onto the trace ring and feeds
// the request-level histograms. Errored samples also become flight events.
func (rt *Runtime) recordTrace(workerID, queueID int, stackMount string, req *core.Request, start vtime.Time) {
	tr := buildTrace(workerID, queueID, stackMount, req, start)
	rt.mSampled.Inc()
	rt.hLatencyUS.Observe(tr.Latency().Micros())
	rt.hWaitUS.Observe(tr.QueueWait.Micros())
	rt.hCPUUS.Observe(tr.CPU.Micros())
	rt.tracer.Capture(tr)
	if rt.profile != nil {
		rt.profile.FoldSpans(req.StackID, stackMount, tr)
	}
	if tr.Err != "" {
		rt.recordErrorEvent(tr)
	}
}

// recordTailTrace retains an outlier request (latency above the worker's
// rolling per-stack quantile estimate) in the tracer's tail ring. It never
// emits to the sink — a request that is both sampled and an outlier already
// emitted once via recordTrace, and the sink contract is one emit per
// request.
func (rt *Runtime) recordTailTrace(workerID, queueID int, stackMount string, req *core.Request, start vtime.Time) {
	tr := buildTrace(workerID, queueID, stackMount, req, start)
	if rt.tracer.CaptureTail(tr) {
		rt.mTail.Inc()
		if rt.profile != nil {
			rt.profile.TailNote(req.StackID, stackMount)
		}
	}
}

// recordErrorTrace captures an unsampled errored request into the tracer's
// bounded error ring (no histogram or sample-counter side effects) and the
// flight recorder. Errors are never dropped by the sampling period.
func (rt *Runtime) recordErrorTrace(workerID, queueID int, stackMount string, req *core.Request, start vtime.Time) {
	tr := buildTrace(workerID, queueID, stackMount, req, start)
	rt.tracer.CaptureError(tr)
	rt.recordErrorEvent(tr)
}

func (rt *Runtime) recordErrorEvent(tr telemetry.Trace) {
	rt.events.Record(telemetry.EvRequestError,
		fmt.Sprintf("request %d failed: %s", tr.ReqID, tr.Err), tr.End,
		map[string]string{"stack": tr.Stack, "op": tr.Op, "err": tr.Err})
}

// Metrics exposes the runtime-wide metrics registry.
func (rt *Runtime) Metrics() *telemetry.Registry { return rt.metrics }

// Tracer exposes the request tracer.
func (rt *Runtime) Tracer() *telemetry.Tracer { return rt.tracer }

// Traces returns the retained sampled-request traces, oldest first.
func (rt *Runtime) Traces() []telemetry.Trace { return rt.tracer.Recent() }

// TailTraces returns the retained tail-outlier traces, oldest first (nil
// when tail retention is disabled).
func (rt *Runtime) TailTraces() []telemetry.Trace { return rt.tracer.RecentTail() }

// Profile returns the always-on attribution aggregator (nil when disabled).
func (rt *Runtime) Profile() *telemetry.Profile { return rt.profile }

// Attribution returns the per-stack latency-attribution tables. Workers
// publish their folded deltas when idle (and every few hundred requests),
// so a snapshot taken mid-burst can trail the true counts slightly.
func (rt *Runtime) Attribution() []telemetry.StackAttribution {
	if rt.profile == nil {
		return nil
	}
	return rt.profile.Snapshot()
}

// PerfCounter is one pipeline stage's sampled cost statistics.
type PerfCounter struct {
	Stage string
	Ops   int64
	Total vtime.Duration
	Mean  vtime.Duration
}

// PerfCounters returns the sampled per-stage performance counters.
func (rt *Runtime) PerfCounters() []PerfCounter {
	rt.perfMu.Lock()
	defer rt.perfMu.Unlock()
	out := make([]PerfCounter, 0, len(rt.perfSum))
	for stage, total := range rt.perfSum {
		ops := rt.perfOps[stage]
		pc := PerfCounter{Stage: stage, Ops: ops, Total: total}
		if ops > 0 {
			pc.Mean = total / vtime.Duration(ops)
		}
		out = append(out, pc)
	}
	return out
}

// --- mount & stack management ------------------------------------------------

// MountSpec parses a LabStack spec document, instantiates its LabMods and
// mounts the stack (the paper's `mount.stack`).
func (rt *Runtime) MountSpec(src string) (*core.Stack, error) {
	ss, err := spec.ParseStack(src)
	if err != nil {
		return nil, err
	}
	return rt.Mount(ss.Stack())
}

// Mount instantiates the stack's LabMods in the Module Registry (a LabMod
// is only instantiated if its UUID is new), validates the composition and
// inducts the stack into the Namespace.
func (rt *Runtime) Mount(s *core.Stack) (*core.Stack, error) {
	// Untrusted LabMods (from untrusted repos) may not execute inside the
	// Runtime's address space: they are confined to client-side (sync)
	// execution (paper §III-D).
	if s.Rules.ExecMode == core.ExecAsync {
		for _, v := range s.Vertices() {
			if !rt.repoMgr.TrustedType(v.Type) {
				return nil, fmt.Errorf("runtime: untrusted LabMod type %q may only run in a sync (client-side) stack", v.Type)
			}
		}
	}
	for _, v := range s.Vertices() {
		if _, err := rt.Registry.Instantiate(v.UUID, v.Type, core.Config{Attrs: v.Attrs}, rt.Env); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(rt.Registry); err != nil {
		return nil, err
	}
	if err := rt.Namespace.Mount(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Unmount removes a stack from the namespace.
func (rt *Runtime) Unmount(mount string) error { return rt.Namespace.Unmount(mount) }

// ModifyStack applies a dynamic DAG edit (the paper's `modify_stack`):
// inserting a vertex instantiates its module if needed.
func (rt *Runtime) ModifyStack(mount string, insertAfter string, v *core.Vertex, remove string) error {
	s, ok := rt.Namespace.Lookup(mount)
	if !ok {
		return fmt.Errorf("runtime: nothing mounted at %q", mount)
	}
	if v != nil {
		if _, err := rt.Registry.Instantiate(v.UUID, v.Type, core.Config{Attrs: v.Attrs}, rt.Env); err != nil {
			return err
		}
		if err := s.InsertAfter(insertAfter, *v); err != nil {
			return err
		}
	}
	if remove != "" {
		if err := s.RemoveVertex(remove); err != nil {
			return err
		}
	}
	return s.Validate(rt.Registry)
}

// --- background loops -------------------------------------------------------

func (rt *Runtime) adminLoop() {
	defer rt.wg.Done()
	defer rt.flightOnPanic("admin loop")
	t := time.NewTicker(rt.opts.UpgradePoll)
	defer t.Stop()
	for {
		select {
		case <-rt.adminStop:
			return
		case <-t.C:
			if rt.Running() {
				rt.modMgr.ProcessUpgrades()
			}
		}
	}
}

func (rt *Runtime) rebalanceLoop() {
	defer rt.wg.Done()
	defer rt.flightOnPanic("rebalance loop")
	t := time.NewTicker(rt.opts.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.adminStop:
			return
		case <-t.C:
			if rt.Running() {
				rt.orch.Rebalance()
			}
		}
	}
}

// sloLoop is the SLO watchdog driver: one Evaluate pass per period while
// the Runtime is running.
func (rt *Runtime) sloLoop() {
	defer rt.wg.Done()
	defer rt.flightOnPanic("slo watchdog")
	t := time.NewTicker(rt.opts.SLOCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.adminStop:
			return
		case <-t.C:
			if rt.Running() {
				rt.slo.Evaluate()
			}
		}
	}
}

// --- flight recorder & postmortems --------------------------------------------

// vnow is the runtime's virtual "now": the furthest worker clock (the global
// virtual frontier). Flight-recorder events are stamped with it so event
// history lines up with modeled request latency.
func (rt *Runtime) vnow() vtime.Time {
	frontier := vtime.Time(0)
	for _, w := range rt.workers {
		if c := w.clock.Now(); c > frontier {
			frontier = c
		}
	}
	return frontier
}

// Events exposes the flight recorder.
func (rt *Runtime) Events() *telemetry.FlightRecorder { return rt.events }

// SLOStatus returns the watchdog's per-target evaluation state (nil when no
// SLO targets are configured).
func (rt *Runtime) SLOStatus() []SLOStatus {
	if rt.slo == nil {
		return nil
	}
	return rt.slo.Status()
}

// EvaluateSLOs forces one watchdog pass (tests and admin tooling; the SLO
// loop calls it periodically on its own).
func (rt *Runtime) EvaluateSLOs() {
	if rt.slo != nil {
		rt.slo.Evaluate()
	}
}

// OnSLOBreach registers a hook invoked whenever an SLO target transitions
// into breach (not on every breaching evaluation). Each invocation runs on
// its own goroutine, so hooks may do slow work — incident-bundle capture
// profiles the process for hundreds of milliseconds — without stalling the
// watchdog.
func (rt *Runtime) OnSLOBreach(fn func(SLOStatus)) {
	rt.breachMu.Lock()
	rt.onBreach = append(rt.onBreach, fn)
	rt.breachMu.Unlock()
}

// notifyBreach fans a breach transition out to the registered hooks.
func (rt *Runtime) notifyBreach(status SLOStatus) {
	rt.breachMu.Lock()
	hooks := append([]func(SLOStatus){}, rt.onBreach...)
	rt.breachMu.Unlock()
	for _, fn := range hooks {
		go fn(status)
	}
}

// SetFlightDumpWriter redirects the panic/fatal flight-recorder dump
// (os.Stderr by default; tests point it at a buffer).
func (rt *Runtime) SetFlightDumpWriter(w io.Writer) {
	rt.flightDumpMu.Lock()
	rt.flightDumpW = w
	rt.flightDumpMu.Unlock()
}

// DumpFlightTo writes the reason and the retained flight-recorder events to
// w (the configured dump writer when w is nil).
func (rt *Runtime) DumpFlightTo(w io.Writer, reason string) {
	if w == nil {
		rt.flightDumpMu.Lock()
		w = rt.flightDumpW
		rt.flightDumpMu.Unlock()
	}
	fmt.Fprintf(w, "labstor: %s — dumping flight recorder\n", reason)
	rt.events.Dump(w)
}

// flightOnPanic is deferred at the top of every runtime-owned goroutine:
// on panic it records the fault, dumps the flight-recorder tail to the dump
// writer (stderr by default) so the postmortem has history, and re-panics.
func (rt *Runtime) flightOnPanic(where string) {
	if r := recover(); r != nil {
		rt.events.Recordf(telemetry.EvRuntime, rt.vnow(), "panic in %s: %v", where, r)
		rt.DumpFlightTo(nil, fmt.Sprintf("panic in %s: %v", where, r))
		panic(r)
	}
}

// --- introspection ------------------------------------------------------------

// WorkerStats summarises one worker's accounting.
type WorkerStats struct {
	ID        int            `json:"id"`
	Active    bool           `json:"active"`
	Processed int64          `json:"processed"`
	BusyVirt  vtime.Duration `json:"busy_virt_ns"`
	Clock     vtime.Time     `json:"clock_ns"`
	// Polls counts pollOnce scans; EmptyPolls the scans that found no work;
	// Parks how often the worker gave up busy-polling and blocked.
	Polls      int64 `json:"polls"`
	EmptyPolls int64 `json:"empty_polls"`
	Parks      int64 `json:"parks"`
	// Queues is the list of queue-pair IDs currently assigned.
	Queues []int `json:"queues"`
}

// IdleRatio is the fraction of poll scans that found no work.
func (ws WorkerStats) IdleRatio() float64 {
	if ws.Polls == 0 {
		return 0
	}
	return float64(ws.EmptyPolls) / float64(ws.Polls)
}

// BusyRatio is modeled CPU time over the worker's virtual clock span.
func (ws WorkerStats) BusyRatio() float64 {
	if ws.Clock <= 0 {
		return 0
	}
	return float64(ws.BusyVirt) / float64(ws.Clock)
}

// Stats returns per-worker statistics.
func (rt *Runtime) Stats() []WorkerStats {
	out := make([]WorkerStats, 0, len(rt.workers))
	for _, w := range rt.workers {
		qs := w.assigned()
		ids := make([]int, len(qs))
		for i, q := range qs {
			ids[i] = q.ID
		}
		out = append(out, WorkerStats{
			ID:         w.id,
			Active:     w.isActive(),
			Processed:  w.processed.Load(),
			BusyVirt:   vtime.Duration(w.busy.Load()),
			Clock:      w.clock.Now(),
			Polls:      w.polls.Load(),
			EmptyPolls: w.emptyPolls.Load(),
			Parks:      w.parks.Load(),
			Queues:     ids,
		})
	}
	return out
}

// numaNode maps a client core index onto the cost model's NUMA node
// (0 when NUMA modeling is off).
func (rt *Runtime) numaNode(coreID int) int {
	return rt.opts.Model.NUMA.WorkerNode(coreID)
}

// BufArena returns the runtime-owned registered-buffer arena, creating it
// on first use. Buffers carved from it live in registered ipc.Segments and
// carry the NUMA node they are homed on.
func (rt *Runtime) BufArena() *core.SegArena {
	rt.bufArenaOnce.Do(func() {
		nodes := 1
		if numa := rt.opts.Model.NUMA; numa != nil && numa.Nodes > 1 {
			nodes = numa.Nodes
		}
		rt.bufArena = core.NewSegArena(rt.Env.Segments, nodes, "payload", ipc.Credentials{})
	})
	return rt.bufArena
}

// pokeWorkers nudges parked workers after a submission (non-blocking).
func (rt *Runtime) pokeWorkers() {
	for _, w := range rt.workers {
		if w.isActive() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
}

// ActiveWorkers returns the number of currently active workers.
func (rt *Runtime) ActiveWorkers() int {
	n := 0
	for _, w := range rt.workers {
		if w.isActive() {
			n++
		}
	}
	return n
}
