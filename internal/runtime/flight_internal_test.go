package runtime

import (
	"strings"
	"testing"

	"labstor/internal/telemetry"
)

// TestFlightOnPanicDumpsTail verifies the postmortem path every runtime
// goroutine defers: a panic records a flight event, dumps the retained event
// tail to the configured writer, and re-panics.
func TestFlightOnPanicDumpsTail(t *testing.T) {
	rt := New(Options{MaxWorkers: 1})
	var buf strings.Builder
	rt.SetFlightDumpWriter(&buf)
	rt.events.Record(telemetry.EvRuntime, "history before the fault", 0, nil)

	repanicked := false
	func() {
		defer func() {
			if recover() != nil {
				repanicked = true
			}
		}()
		func() {
			defer rt.flightOnPanic("test goroutine")
			panic("boom")
		}()
	}()

	if !repanicked {
		t.Fatal("flightOnPanic swallowed the panic instead of re-panicking")
	}
	out := buf.String()
	for _, want := range []string{"panic in test goroutine: boom", "history before the fault", "flight recorder"} {
		if !strings.Contains(out, want) {
			t.Fatalf("postmortem dump missing %q:\n%s", want, out)
		}
	}
	// The fault itself is the last retained event.
	evs := rt.events.Recent()
	if len(evs) == 0 || !strings.Contains(evs[len(evs)-1].Msg, "panic in test goroutine") {
		t.Fatalf("panic not recorded as a flight event: %+v", evs)
	}
}

// TestDumpFlightToExplicitWriter covers the admin-facing dump entry point.
func TestDumpFlightToExplicitWriter(t *testing.T) {
	rt := New(Options{MaxWorkers: 1})
	rt.events.Record(telemetry.EvUpgrade, "module swapped", 7, nil)
	var buf strings.Builder
	rt.DumpFlightTo(&buf, "operator requested")
	out := buf.String()
	if !strings.Contains(out, "operator requested") || !strings.Contains(out, "module swapped") {
		t.Fatalf("dump = %q", out)
	}
}
