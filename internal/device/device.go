package device

import (
	"fmt"
	"sync"

	"labstor/internal/vtime"
)

// Class identifies the storage technology a Device models.
type Class uint8

const (
	// HDD models a 15K-RPM SAS drive (Seagate ST600MP0005 in the paper).
	HDD Class = iota
	// SATASSD models a SATA SSD (Intel SSDSC2BX01).
	SATASSD
	// NVMe models an NVMe SSD (Intel P3700).
	NVMe
	// PMEM models byte-addressable persistent memory (bootloader-emulated
	// in the paper).
	PMEM
)

func (c Class) String() string {
	switch c {
	case HDD:
		return "HDD"
	case SATASSD:
		return "SSD"
	case NVMe:
		return "NVMe"
	case PMEM:
		return "PMEM"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Op is the direction of an I/O.
type Op uint8

const (
	// Read transfers data from the device.
	Read Op = iota
	// Write transfers data to the device.
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Profile holds the performance parameters for a device class.
type Profile struct {
	Class Class
	// AccessLatency is the fixed per-command latency (flash translation,
	// controller, media access; excludes transfer and seek).
	AccessLatency vtime.Duration
	// ReadBandwidth / WriteBandwidth are sustained transfer rates in
	// bytes per virtual second.
	ReadBandwidth  float64
	WriteBandwidth float64
	// HardwareQueues is the number of submission queues the device exposes
	// (Linux MQ hctx count; 1 for single-queue devices).
	HardwareQueues int
	// Parallelism is the device's internal service parallelism (channels/
	// dies for flash, interleaved DIMMs for PMEM, 1 for HDD heads).
	Parallelism int
	// AvgSeek and AvgRotation model mechanical positioning (HDD only).
	AvgSeek     vtime.Duration
	AvgRotation vtime.Duration
	// ByteAddressable marks load/store-capable media (PMEM/DAX).
	ByteAddressable bool
}

// Profiles calibrated against the paper's testbed hardware.
var (
	// HDDProfile: 15K RPM SAS, ~200 MB/s sequential, ~4 ms average seek,
	// 2 ms half-rotation.
	HDDProfile = Profile{
		Class:          HDD,
		AccessLatency:  200 * vtime.Microsecond,
		ReadBandwidth:  215e6, // bytes per virtual second
		WriteBandwidth: 200e6,
		HardwareQueues: 1,
		Parallelism:    1,
		AvgSeek:        4 * vtime.Millisecond,
		AvgRotation:    2 * vtime.Millisecond,
	}
	// SATASSDProfile: ~70 us access, ~540/520 MB/s, AHCI single queue.
	SATASSDProfile = Profile{
		Class:          SATASSD,
		AccessLatency:  70 * vtime.Microsecond,
		ReadBandwidth:  540e6,
		WriteBandwidth: 520e6,
		HardwareQueues: 1,
		Parallelism:    4,
	}
	// NVMeProfile: ~15 us access, 2.8/1.9 GB/s, many hardware queues.
	NVMeProfile = Profile{
		Class:          NVMe,
		AccessLatency:  15 * vtime.Microsecond,
		ReadBandwidth:  2.8e9,
		WriteBandwidth: 1.9e9,
		HardwareQueues: 32,
		Parallelism:    16,
	}
	// PMEMProfile: sub-microsecond access, memory-bus bandwidth.
	PMEMProfile = Profile{
		Class:           PMEM,
		AccessLatency:   500 * vtime.Nanosecond,
		ReadBandwidth:   8e9,
		WriteBandwidth:  4e9,
		HardwareQueues:  1,
		Parallelism:     8,
		ByteAddressable: true,
	}
)

// ProfileFor returns the calibrated profile for a class.
func ProfileFor(c Class) Profile {
	switch c {
	case HDD:
		return HDDProfile
	case SATASSD:
		return SATASSDProfile
	case NVMe:
		return NVMeProfile
	case PMEM:
		return PMEMProfile
	default:
		return NVMeProfile
	}
}

// Device is a functional, virtual-time-modeled storage device.
type Device struct {
	Name    string
	Profile Profile

	store  *SparseStore
	server *vtime.Server
	hctx   []*vtime.Lock // per-hardware-queue FIFO dispatch timelines

	mu        sync.Mutex
	frontiers map[int64]bool // expected next offsets of active sequential streams (HDD)

	statsMu    sync.Mutex
	reads      int64
	writes     int64
	bytesRead  int64
	bytesWrote int64
	busy       vtime.Duration
}

// New creates a device of the given class with the given capacity in bytes,
// using the calibrated profile for that class.
func New(name string, class Class, capacity int64) *Device {
	return NewWithProfile(name, ProfileFor(class), capacity)
}

// NewStriped creates a device with an explicit sparse-store stripe count
// (0 = DefaultStripes, 1 = single global lock).
func NewStriped(name string, class Class, capacity int64, stripes int) *Device {
	return NewWithProfileStriped(name, ProfileFor(class), capacity, stripes)
}

// NewWithProfile creates a device with an explicit profile.
func NewWithProfile(name string, p Profile, capacity int64) *Device {
	return NewWithProfileStriped(name, p, capacity, 0)
}

// NewWithProfileStriped creates a device with an explicit profile and
// sparse-store stripe count.
func NewWithProfileStriped(name string, p Profile, capacity int64, stripes int) *Device {
	if p.Parallelism < 1 {
		p.Parallelism = 1
	}
	if p.HardwareQueues < 1 {
		p.HardwareQueues = 1
	}
	d := &Device{
		Name:    name,
		Profile: p,
		store:   NewSparseStoreStriped(capacity, stripes),
		server:  vtime.NewServer(p.Parallelism),
		hctx:    make([]*vtime.Lock, p.HardwareQueues),
	}
	for i := range d.hctx {
		d.hctx[i] = &vtime.Lock{}
	}
	return d
}

// HardwareQueues returns the number of hardware dispatch queues (hctx).
func (d *Device) HardwareQueues() int { return len(d.hctx) }

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.store.Capacity() }

// Stripes returns the sparse store's lock-stripe count.
func (d *Device) Stripes() int { return d.store.Stripes() }

// Materialized returns the bytes actually allocated in the sparse store.
func (d *Device) Materialized() int64 { return d.store.Materialized() }

// Class returns the device class.
func (d *Device) Class() Class { return d.Profile.Class }

// ServiceTime returns the modeled media service time for one command of the
// given op/offset/length, including positioning for HDDs. It advances the
// sequentiality tracker.
func (d *Device) ServiceTime(op Op, off int64, n int) vtime.Duration {
	p := d.Profile
	t := p.AccessLatency
	bw := p.ReadBandwidth
	if op == Write {
		bw = p.WriteBandwidth
	}
	if bw > 0 && n > 0 {
		t += vtime.Duration(float64(n) / bw * 1e9)
	}
	if p.Class == HDD {
		// Seek accounting is per *stream*, not per submission order: an
		// access extending any active sequential stream pays no positioning
		// cost, regardless of how concurrent streams interleave. This keeps
		// the model deterministic under concurrent submitters.
		d.mu.Lock()
		if d.frontiers == nil {
			d.frontiers = make(map[int64]bool)
		}
		sequential := d.frontiers[off]
		if sequential {
			delete(d.frontiers, off)
		}
		if len(d.frontiers) > 256 {
			for k := range d.frontiers {
				delete(d.frontiers, k)
				if len(d.frontiers) <= 128 {
					break
				}
			}
		}
		d.frontiers[off+int64(n)] = true
		d.mu.Unlock()
		if !sequential {
			t += p.AvgSeek + p.AvgRotation
		}
	}
	return t
}

// Submit performs the data movement for one command and models its service:
// it returns the virtual (start, completion) interval for a command arriving
// at the device at time arrival. The buffer is read from or written to the
// backing store synchronously (functionally the I/O always happens).
func (d *Device) Submit(op Op, off int64, buf []byte, arrival vtime.Time) (vtime.Time, vtime.Time, error) {
	var err error
	if op == Read {
		_, err = d.store.ReadAt(buf, off)
	} else {
		_, err = d.store.WriteAt(buf, off)
	}
	if err != nil {
		return arrival, arrival, err
	}
	svc := d.ServiceTime(op, off, len(buf))
	start, end := d.server.Serve(arrival, svc)

	d.statsMu.Lock()
	if op == Read {
		d.reads++
		d.bytesRead += int64(len(buf))
	} else {
		d.writes++
		d.bytesWrote += int64(len(buf))
	}
	d.busy += svc
	d.statsMu.Unlock()
	return start, end, nil
}

// SubmitToQueue performs the data movement for one command issued to a
// specific hardware dispatch queue (hctx). Commands on the same hctx are
// serviced FIFO — one outstanding command at a time — which is what makes
// head-of-line blocking visible when large and small I/Os share a queue
// (the effect the blk-switch scheduler experiment measures). Commands on
// different hctxs proceed in parallel.
func (d *Device) SubmitToQueue(hctx int, op Op, off int64, buf []byte, arrival vtime.Time) (vtime.Time, vtime.Time, error) {
	if hctx < 0 || hctx >= len(d.hctx) {
		hctx = hctx % len(d.hctx)
		if hctx < 0 {
			hctx += len(d.hctx)
		}
	}
	var err error
	if op == Read {
		_, err = d.store.ReadAt(buf, off)
	} else {
		_, err = d.store.WriteAt(buf, off)
	}
	if err != nil {
		return arrival, arrival, err
	}
	svc := d.ServiceTime(op, off, len(buf))
	end := d.hctx[hctx].Acquire(arrival, svc)
	start := end.Add(-svc)

	d.statsMu.Lock()
	if op == Read {
		d.reads++
		d.bytesRead += int64(len(buf))
	} else {
		d.writes++
		d.bytesWrote += int64(len(buf))
	}
	d.busy += svc
	d.statsMu.Unlock()
	return start, end, nil
}

// QueueHorizon returns the virtual time at which the given hardware queue
// drains, a proxy for its current load used by queue-steering schedulers.
func (d *Device) QueueHorizon(hctx int) vtime.Time {
	if hctx < 0 || hctx >= len(d.hctx) {
		return 0
	}
	return d.hctx[hctx].Horizon()
}

// ReadAt / WriteAt provide plain functional access without virtual-time
// accounting, for tools and recovery paths.
func (d *Device) ReadAt(p []byte, off int64) (int, error)  { return d.store.ReadAt(p, off) }
func (d *Device) WriteAt(p []byte, off int64) (int, error) { return d.store.WriteAt(p, off) }

// Trim forwards to the sparse store.
func (d *Device) Trim(off, n int64) error { return d.store.Trim(off, n) }

// Stats returns cumulative op counts, bytes moved, and modeled busy time.
func (d *Device) Stats() (reads, writes, bytesRead, bytesWritten int64, busy vtime.Duration) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.reads, d.writes, d.bytesRead, d.bytesWrote, d.busy
}

// Horizon returns the virtual time at which the device becomes idle.
func (d *Device) Horizon() vtime.Time { return d.server.Horizon() }
