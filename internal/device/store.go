// Package device provides the simulated storage hardware that substitutes
// for the paper's testbed devices (Intel P3700 NVMe, Intel SATA SSD, Seagate
// 15K HDD, bootloader-emulated PMEM).
//
// Each Device is *functional* — bytes written really persist in a sparse
// in-RAM store and can be read back — and *modeled* — every operation is
// assigned a virtual-time service interval derived from a per-device-class
// Profile (fixed access latency, transfer bandwidth, seek/rotation for HDDs,
// internal parallelism for NVMe/PMEM). The service interval is computed with
// vtime.Server so device-level queueing emerges naturally when submissions
// outpace the device.
package device

import (
	"errors"
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"

	"labstor/internal/telemetry"
)

// ErrOutOfRange is returned for accesses beyond the device capacity.
var ErrOutOfRange = errors.New("device: access out of range")

// ErrUnaligned is returned by MapRange for spans that cross a chunk
// boundary — a mapped view must be one contiguous allocation.
var ErrUnaligned = errors.New("device: mapped range crosses a chunk boundary")

const chunkSize = 64 * 1024

// Data-path copy accounting: WriteAt/ReadAt are the store's "DMA" — the
// one transfer a zero-copy stack still pays, device <-> registered
// buffer. MapRange is the DAX rung of the API ladder: no copy at all.
var (
	copyDMAWrite = telemetry.CopySite("device.dma_write")
	copyDMARead  = telemetry.CopySite("device.dma_read")
)

// storeStripe is one lock stripe: a mutex plus the chunk shard it guards.
// The pad spaces stripes a cache line apart so uncontended stripes do not
// false-share their lock words.
type storeStripe struct {
	mu     sync.RWMutex
	chunks map[int64][]byte
	_      [128 - 32]byte
}

// SparseStore is a sparse, chunk-allocated byte store. It lets us model
// multi-terabyte devices without reserving RAM: chunks materialize on first
// write; reads of unwritten ranges return zeros (as a fresh device would).
//
// The chunk map is lock-striped by chunk index (paper §III-E: per-worker
// partitioning removes shared-state contention), so concurrent workers
// touching disjoint block ranges take disjoint locks. Atomicity is per
// chunk: a read that spans chunks concurrent with a write that spans the
// same chunks may observe the write partially applied at chunk granularity
// — the same guarantee a real device gives across sectors.
type SparseStore struct {
	capacity     int64
	mask         int64 // len(stripes)-1; stripe count is a power of two
	materialized atomic.Int64
	stripes      []storeStripe
}

// DefaultStripes returns the default stripe count: the smallest power of two
// ≥ 2× the host parallelism, clamped to [8, 256].
func DefaultStripes() int {
	n := nextPow2(2 * gort.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSparseStore returns a store with the given logical capacity in bytes
// and the default stripe count.
func NewSparseStore(capacity int64) *SparseStore {
	return NewSparseStoreStriped(capacity, 0)
}

// NewSparseStoreStriped returns a store with an explicit stripe count,
// rounded up to a power of two. stripes <= 0 selects DefaultStripes();
// stripes == 1 degenerates to a single global lock (the pre-striping
// behavior, kept as the contention-experiment baseline).
func NewSparseStoreStriped(capacity int64, stripes int) *SparseStore {
	if stripes <= 0 {
		stripes = DefaultStripes()
	}
	stripes = nextPow2(stripes)
	s := &SparseStore{
		capacity: capacity,
		mask:     int64(stripes - 1),
		stripes:  make([]storeStripe, stripes),
	}
	for i := range s.stripes {
		s.stripes[i].chunks = make(map[int64][]byte)
	}
	return s
}

// Capacity returns the logical size in bytes.
func (s *SparseStore) Capacity() int64 { return s.capacity }

// Stripes returns the number of lock stripes.
func (s *SparseStore) Stripes() int { return len(s.stripes) }

// Materialized returns the number of bytes actually allocated. It is an
// O(1) atomic load — no lock is taken.
func (s *SparseStore) Materialized() int64 { return s.materialized.Load() }

func (s *SparseStore) stripe(ci int64) *storeStripe { return &s.stripes[ci&s.mask] }

func (s *SparseStore) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, s.capacity)
	}
	return nil
}

// WriteAt copies p into the store at off. Locks are taken per chunk, so
// writers to disjoint chunk ranges proceed in parallel.
func (s *SparseStore) WriteAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		ci := (off + int64(written)) / chunkSize
		co := int((off + int64(written)) % chunkSize)
		n := chunkSize - co
		if n > len(p)-written {
			n = len(p) - written
		}
		st := s.stripe(ci)
		st.mu.Lock()
		chunk, ok := st.chunks[ci]
		if !ok {
			chunk = make([]byte, chunkSize)
			st.chunks[ci] = chunk
			s.materialized.Add(chunkSize)
		}
		copy(chunk[co:co+n], p[written:written+n])
		st.mu.Unlock()
		written += n
	}
	copyDMAWrite.Add(written)
	return written, nil
}

// ReadAt fills p from the store at off; unwritten ranges read as zeros.
func (s *SparseStore) ReadAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	read := 0
	for read < len(p) {
		ci := (off + int64(read)) / chunkSize
		co := int((off + int64(read)) % chunkSize)
		n := chunkSize - co
		if n > len(p)-read {
			n = len(p) - read
		}
		st := s.stripe(ci)
		st.mu.RLock()
		if chunk, ok := st.chunks[ci]; ok {
			copy(p[read:read+n], chunk[co:co+n])
		} else {
			for i := read; i < read+n; i++ {
				p[i] = 0
			}
		}
		st.mu.RUnlock()
		read += n
	}
	copyDMARead.Add(read)
	return read, nil
}

// MapRange returns a direct view of [off, off+n) in device memory,
// materializing the chunk on first touch. This is the byte-addressable
// (DAX/PMEM) access path: the caller loads and stores device bytes in
// place with zero copies. The span must sit inside one chunk (64 KiB).
// The view stays valid until the range is Trimmed; concurrent access to
// the same bytes carries the same torn-read caveat as overlapping
// WriteAt/ReadAt.
func (s *SparseStore) MapRange(off int64, n int) ([]byte, error) {
	if err := s.check(off, n); err != nil {
		return nil, err
	}
	ci := off / chunkSize
	co := int(off % chunkSize)
	if co+n > chunkSize {
		return nil, fmt.Errorf("%w: off=%d len=%d", ErrUnaligned, off, n)
	}
	st := s.stripe(ci)
	st.mu.RLock()
	chunk, ok := st.chunks[ci]
	st.mu.RUnlock()
	if !ok {
		st.mu.Lock()
		chunk, ok = st.chunks[ci]
		if !ok {
			chunk = make([]byte, chunkSize)
			st.chunks[ci] = chunk
			s.materialized.Add(chunkSize)
		}
		st.mu.Unlock()
	}
	return chunk[co : co+n : co+n], nil
}

// Trim discards the chunks fully covered by [off, off+n), returning the
// range to its zeroed state (models DISCARD/TRIM).
func (s *SparseStore) Trim(off, n int64) error {
	if err := s.check(off, int(min64(n, int64(int(^uint(0)>>1))))); err != nil {
		return err
	}
	first := (off + chunkSize - 1) / chunkSize
	last := (off + n) / chunkSize
	for ci := first; ci < last; ci++ {
		st := s.stripe(ci)
		st.mu.Lock()
		if _, ok := st.chunks[ci]; ok {
			delete(st.chunks, ci)
			s.materialized.Add(-chunkSize)
		}
		st.mu.Unlock()
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
