// Package device provides the simulated storage hardware that substitutes
// for the paper's testbed devices (Intel P3700 NVMe, Intel SATA SSD, Seagate
// 15K HDD, bootloader-emulated PMEM).
//
// Each Device is *functional* — bytes written really persist in a sparse
// in-RAM store and can be read back — and *modeled* — every operation is
// assigned a virtual-time service interval derived from a per-device-class
// Profile (fixed access latency, transfer bandwidth, seek/rotation for HDDs,
// internal parallelism for NVMe/PMEM). The service interval is computed with
// vtime.Server so device-level queueing emerges naturally when submissions
// outpace the device.
package device

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfRange is returned for accesses beyond the device capacity.
var ErrOutOfRange = errors.New("device: access out of range")

const chunkSize = 64 * 1024

// SparseStore is a sparse, chunk-allocated byte store. It lets us model
// multi-terabyte devices without reserving RAM: chunks materialize on first
// write; reads of unwritten ranges return zeros (as a fresh device would).
type SparseStore struct {
	capacity int64
	mu       sync.RWMutex
	chunks   map[int64][]byte
}

// NewSparseStore returns a store with the given logical capacity in bytes.
func NewSparseStore(capacity int64) *SparseStore {
	return &SparseStore{capacity: capacity, chunks: make(map[int64][]byte)}
}

// Capacity returns the logical size in bytes.
func (s *SparseStore) Capacity() int64 { return s.capacity }

// Materialized returns the number of bytes actually allocated.
func (s *SparseStore) Materialized() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.chunks)) * chunkSize
}

func (s *SparseStore) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, s.capacity)
	}
	return nil
}

// WriteAt copies p into the store at off.
func (s *SparseStore) WriteAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	written := 0
	s.mu.Lock()
	for written < len(p) {
		ci := (off + int64(written)) / chunkSize
		co := int((off + int64(written)) % chunkSize)
		chunk, ok := s.chunks[ci]
		if !ok {
			chunk = make([]byte, chunkSize)
			s.chunks[ci] = chunk
		}
		n := copy(chunk[co:], p[written:])
		written += n
	}
	s.mu.Unlock()
	return written, nil
}

// ReadAt fills p from the store at off; unwritten ranges read as zeros.
func (s *SparseStore) ReadAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	read := 0
	s.mu.RLock()
	for read < len(p) {
		ci := (off + int64(read)) / chunkSize
		co := int((off + int64(read)) % chunkSize)
		n := chunkSize - co
		if n > len(p)-read {
			n = len(p) - read
		}
		if chunk, ok := s.chunks[ci]; ok {
			copy(p[read:read+n], chunk[co:co+n])
		} else {
			for i := read; i < read+n; i++ {
				p[i] = 0
			}
		}
		read += n
	}
	s.mu.RUnlock()
	return read, nil
}

// Trim discards the chunks fully covered by [off, off+n), returning the
// range to its zeroed state (models DISCARD/TRIM).
func (s *SparseStore) Trim(off, n int64) error {
	if err := s.check(off, int(min64(n, int64(int(^uint(0)>>1))))); err != nil {
		return err
	}
	first := (off + chunkSize - 1) / chunkSize
	last := (off + n) / chunkSize
	s.mu.Lock()
	for ci := first; ci < last; ci++ {
		delete(s.chunks, ci)
	}
	s.mu.Unlock()
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
