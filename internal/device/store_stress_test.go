package device

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestSparseStoreStripeDefaults(t *testing.T) {
	s := NewSparseStore(1 << 20)
	n := s.Stripes()
	if n < 8 || n&(n-1) != 0 {
		t.Fatalf("default stripes = %d, want power of two >= 8", n)
	}
	if got := NewSparseStoreStriped(1<<20, 1).Stripes(); got != 1 {
		t.Fatalf("stripes=1 gave %d", got)
	}
	if got := NewSparseStoreStriped(1<<20, 3).Stripes(); got != 4 {
		t.Fatalf("stripes=3 should round up to 4, got %d", got)
	}
	if got := NewSparseStoreStriped(1<<20, 0).Stripes(); got != DefaultStripes() {
		t.Fatalf("stripes=0 gave %d, want default %d", got, DefaultStripes())
	}
}

// TestSparseStoreStripedDisjointWriters checks functional correctness under
// the workload striping targets: concurrent writers on disjoint chunk
// ranges, with offsets straddling chunk (and therefore stripe) boundaries.
func TestSparseStoreStripedDisjointWriters(t *testing.T) {
	const (
		writers = 8
		region  = int64(4 * chunkSize)
	)
	s := NewSparseStoreStriped(writers*region, 8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := int64(id) * region
			pat := bytes.Repeat([]byte{byte('A' + id)}, chunkSize+123) // crosses a chunk boundary
			for i := 0; i < 20; i++ {
				off := base + int64(i)*(region-int64(len(pat)))/20
				if _, err := s.WriteAt(pat, off); err != nil {
					t.Errorf("writer %d: %v", id, err)
					return
				}
				got := make([]byte, len(pat))
				if _, err := s.ReadAt(got, off); err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				if !bytes.Equal(got, pat) {
					t.Errorf("writer %d: readback mismatch at off %d", id, off)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSparseStoreConcurrentStress hammers one store with a mixed
// ReadAt/WriteAt/Trim workload from many goroutines (run under the race
// detector by scripts/check.sh), then checks the atomic materialized
// counter agrees with the chunks actually resident.
func TestSparseStoreConcurrentStress(t *testing.T) {
	const capacity = int64(8 << 20)
	for _, stripes := range []int{1, 8} {
		s := NewSparseStoreStriped(capacity, stripes)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				buf := make([]byte, 3*chunkSize)
				for i := 0; i < 200; i++ {
					n := 1 + rng.Intn(len(buf)-1)
					off := rng.Int63n(capacity - int64(n))
					switch rng.Intn(4) {
					case 0:
						if _, err := s.ReadAt(buf[:n], off); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					case 3:
						if err := s.Trim(off, int64(n)); err != nil {
							t.Errorf("trim: %v", err)
							return
						}
					default:
						if _, err := s.WriteAt(buf[:n], off); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}
			}(int64(g))
		}
		wg.Wait()

		var resident int64
		for i := range s.stripes {
			resident += int64(len(s.stripes[i].chunks))
		}
		if got := s.Materialized(); got != resident*chunkSize {
			t.Fatalf("stripes=%d: Materialized()=%d, resident chunks say %d", stripes, got, resident*chunkSize)
		}
	}
}
