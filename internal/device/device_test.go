package device

import (
	"bytes"
	"testing"
	"testing/quick"

	"labstor/internal/vtime"
)

func TestSparseStoreRoundTrip(t *testing.T) {
	s := NewSparseStore(1 << 20)
	data := []byte("hello sparse world")
	if _, err := s.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := s.ReadAt(buf, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("got %q", buf)
	}
}

func TestSparseStoreHolesReadZero(t *testing.T) {
	s := NewSparseStore(1 << 20)
	buf := []byte{1, 2, 3, 4}
	if _, err := s.ReadAt(buf, 5000); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole read nonzero")
		}
	}
}

func TestSparseStoreCrossChunk(t *testing.T) {
	s := NewSparseStore(1 << 20)
	data := make([]byte, 3*chunkSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(chunkSize - 100) // straddles chunk boundaries
	if _, err := s.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := s.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-chunk mismatch")
	}
}

func TestSparseStoreBounds(t *testing.T) {
	s := NewSparseStore(1024)
	if _, err := s.WriteAt([]byte{1}, 1024); err == nil {
		t.Fatal("write past capacity succeeded")
	}
	if _, err := s.ReadAt(make([]byte, 2), 1023); err == nil {
		t.Fatal("read past capacity succeeded")
	}
	if _, err := s.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative offset succeeded")
	}
}

func TestSparseStoreMaterializationAndTrim(t *testing.T) {
	s := NewSparseStore(16 << 20)
	if s.Materialized() != 0 {
		t.Fatal("fresh store materialized")
	}
	s.WriteAt(make([]byte, chunkSize), 0)
	if s.Materialized() != chunkSize {
		t.Fatalf("materialized %d", s.Materialized())
	}
	if err := s.Trim(0, chunkSize); err != nil {
		t.Fatal(err)
	}
	if s.Materialized() != 0 {
		t.Fatal("trim did not release chunk")
	}
	buf := make([]byte, 8)
	s.ReadAt(buf, 0)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("trimmed range reads nonzero")
		}
	}
}

func TestSparseStoreQuickRoundTrip(t *testing.T) {
	s := NewSparseStore(1 << 20)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := s.WriteAt(data, int64(off)); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		if _, err := s.ReadAt(buf, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAndClasses(t *testing.T) {
	for _, c := range []Class{HDD, SATASSD, NVMe, PMEM} {
		p := ProfileFor(c)
		if p.Class != c {
			t.Fatalf("ProfileFor(%v).Class = %v", c, p.Class)
		}
		if c.String() == "" {
			t.Fatal("class string")
		}
	}
	if !PMEMProfile.ByteAddressable || NVMeProfile.ByteAddressable {
		t.Fatal("byte-addressability flags")
	}
	if NVMeProfile.AccessLatency >= SATASSDProfile.AccessLatency {
		t.Fatal("NVMe must be faster than SATA")
	}
	if SATASSDProfile.AccessLatency >= HDDProfile.AvgSeek {
		t.Fatal("SSD access must beat a disk seek")
	}
}

func TestServiceTimeScalesWithSize(t *testing.T) {
	d := New("nvme", NVMe, 1<<30)
	small := d.ServiceTime(Write, 0, 4096)
	large := d.ServiceTime(Write, 4096, 1<<20)
	if large <= small {
		t.Fatalf("service time must grow with transfer size: %v vs %v", small, large)
	}
}

func TestHDDSequentialVsRandom(t *testing.T) {
	d := New("hdd", HDD, 1<<30)
	first := d.ServiceTime(Write, 0, 4096) // new stream: seek
	seq := d.ServiceTime(Write, 4096, 4096)
	rnd := d.ServiceTime(Write, 500*4096, 4096)
	if seq >= rnd {
		t.Fatalf("sequential (%v) must be cheaper than random (%v)", seq, rnd)
	}
	if first <= seq {
		t.Fatalf("first access (%v) must pay positioning over sequential (%v)", first, seq)
	}
	// Two interleaved sequential streams both stay cheap.
	d2 := New("hdd2", HDD, 1<<30)
	d2.ServiceTime(Write, 0, 4096)
	d2.ServiceTime(Write, 1<<20, 4096)
	a := d2.ServiceTime(Write, 4096, 4096)
	b := d2.ServiceTime(Write, 1<<20+4096, 4096)
	if a != b || a >= rnd {
		t.Fatalf("interleaved streams penalized: %v %v", a, b)
	}
}

func TestDeviceSubmitFunctional(t *testing.T) {
	d := New("nvme", NVMe, 1<<30)
	data := []byte("persisted")
	_, end, err := d.Submit(Write, 4096, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no modeled service time")
	}
	buf := make([]byte, len(data))
	_, end2, err := d.Submit(Read, 4096, buf, end)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read mismatch")
	}
	if end2 <= end {
		t.Fatal("read completion must be after submission")
	}
	r, w, br, bw, busy := d.Stats()
	if r != 1 || w != 1 || br != int64(len(data)) || bw != int64(len(data)) || busy <= 0 {
		t.Fatalf("stats: %d %d %d %d %v", r, w, br, bw, busy)
	}
}

func TestDeviceHctxFIFO(t *testing.T) {
	d := New("nvme", NVMe, 1<<30)
	buf := make([]byte, 4096)
	// Two commands on the same hctx serialize.
	_, e1, _ := d.SubmitToQueue(3, Write, 0, buf, 0)
	_, e2, _ := d.SubmitToQueue(3, Write, 8192, buf, 0)
	if e2 <= e1 {
		t.Fatalf("same-hctx commands overlapped: %v %v", e1, e2)
	}
	// A command on another hctx proceeds in parallel.
	_, e3, _ := d.SubmitToQueue(4, Write, 16384, buf, 0)
	if e3 != e1 {
		t.Fatalf("cross-hctx command serialized: %v vs %v", e3, e1)
	}
	if d.QueueHorizon(3) <= d.QueueHorizon(4) {
		t.Fatal("loaded queue horizon must exceed idle queue")
	}
	if d.HardwareQueues() != NVMeProfile.HardwareQueues {
		t.Fatal("queue count")
	}
}

func TestDeviceHctxModuloMapping(t *testing.T) {
	d := New("ssd", SATASSD, 1<<30) // single hardware queue
	buf := make([]byte, 512)
	if _, _, err := d.SubmitToQueue(99, Write, 0, buf, 0); err != nil {
		t.Fatalf("out-of-range hctx must wrap: %v", err)
	}
	if _, _, err := d.SubmitToQueue(-3, Write, 0, buf, 0); err != nil {
		t.Fatalf("negative hctx must wrap: %v", err)
	}
}

func TestDeviceParallelismBoundsThroughput(t *testing.T) {
	d := New("nvme", NVMe, 1<<30)
	buf := make([]byte, 4096)
	// Pooled submission: first P commands run in parallel, extra queue.
	p := d.Profile.Parallelism
	var maxEnd vtime.Time
	for i := 0; i <= p; i++ {
		_, end, _ := d.Submit(Write, int64(i)*4096, buf, 0)
		if end > maxEnd {
			maxEnd = end
		}
	}
	single := d.ServiceTime(Write, 1<<20, 4096)
	if maxEnd < vtime.Time(single)*2-vtime.Time(single)/2 {
		t.Fatalf("parallelism+1 commands should take ~2 service times, got %v (svc %v)", maxEnd, single)
	}
}

func TestDeviceRawAccessAndTrim(t *testing.T) {
	d := New("nvme", NVMe, 1<<30)
	d.WriteAt([]byte{0xAA}, 100)
	b := make([]byte, 1)
	d.ReadAt(b, 100)
	if b[0] != 0xAA {
		t.Fatal("raw access")
	}
	if err := d.Trim(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 1<<30 {
		t.Fatal("capacity")
	}
	if d.Class() != NVMe {
		t.Fatal("class")
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("op strings")
	}
}
