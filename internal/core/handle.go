package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"labstor/internal/ipc"
)

// Zero-copy buffer handles (paper Fig. 6 top rung / io_uring registered
// buffers): instead of memcpy'ing payloads at every stack hop, a payload
// lives in one registered arena buffer for its whole lifetime and the
// request carries a BufHandle — a refcounted {buffer, off, len} view.
// Mods pass narrowed views downstream (Slice), the cache retains pages by
// bumping the refcount (Retain), and the buffer returns to its arena only
// when the last holder calls Release.
//
// Two backing sources share one header type:
//   - SegArena buffers carved from registered ipc.Segments — the client
//     data path; the segment's NUMA node labels the handle so vtime can
//     charge cross-node access.
//   - anonymous buffers from the size-class arena (bufarena.go) — results
//     allocated inside the stack (Request.CompleteValue).
//
// Ownership rules are documented in DESIGN.md §13: write payloads are
// borrowed (a mod that needs the bytes past the request must copy), read
// results are stack-owned until completion and then transfer to the
// client, and only stack-owned buffers may be retained by caches.

// bufHeader is the shared, refcounted state behind every view of one
// buffer. gen is bumped each time the buffer is recycled so debug builds
// can detect stale handles (use-after-release).
type bufHeader struct {
	refs  atomic.Int32
	gen   atomic.Uint32
	node  int32
	data  []byte // full-capacity backing slice
	seg   *ipc.Segment
	arena *SegArena // owner freelist; nil = anonymous (bufarena-backed)
	class int16     // freelist class index within the arena
}

// BufHandle is a borrowed or owned view [off, off+ln) of a refcounted
// buffer. The zero BufHandle is invalid. Handles are values: Slice and
// Retain return new handles; Release drops the underlying reference.
type BufHandle struct {
	h   *bufHeader
	gen uint32
	off int
	ln  int
	own bool
}

// Valid reports whether the handle references a buffer.
func (b BufHandle) Valid() bool { return b.h != nil }

// Len returns the view length.
func (b BufHandle) Len() int { return b.ln }

// Node returns the NUMA node the buffer is homed on, or -1 for an invalid
// handle.
func (b BufHandle) Node() int {
	if b.h == nil {
		return -1
	}
	return int(b.h.node)
}

// Owned reports whether the view is stack-owned: allocated by the stack
// (CompleteValue / SegArena results) rather than borrowed from a client's
// registered buffer. Caches may retain only owned views; borrowed client
// memory can be rewritten by its owner at any time after completion.
func (b BufHandle) Owned() bool { return b.own }

// Bytes returns the view's bytes. The slice aliases the shared buffer —
// holders must respect the ownership rules (DESIGN.md §13).
func (b BufHandle) Bytes() []byte {
	if b.h == nil {
		return nil
	}
	b.check("Bytes")
	return b.h.data[b.off : b.off+b.ln : b.off+b.ln]
}

// Slice narrows the view to [lo, hi) relative to the handle. The result
// borrows the same reference — it must not be Released separately, and it
// dies with the handle it was cut from.
func (b BufHandle) Slice(lo, hi int) BufHandle {
	if b.h == nil || lo < 0 || hi < lo || hi > b.ln {
		panic(fmt.Sprintf("core: BufHandle.Slice [%d,%d) out of range 0..%d", lo, hi, b.ln))
	}
	b.check("Slice")
	return BufHandle{h: b.h, gen: b.gen, off: b.off + lo, ln: hi - lo, own: b.own}
}

// Retain bumps the buffer's refcount and returns an owning handle for the
// same view. The caller must balance it with Release.
func (b BufHandle) Retain() BufHandle {
	if b.h == nil {
		return b
	}
	b.check("Retain")
	b.h.refs.Add(1)
	return b
}

// Release drops one reference; the last release recycles the buffer into
// its arena. Releasing the zero handle is a no-op. A double release is
// counted (and panics in debug mode, see debug.go) — the refcount going
// negative means some holder still believes it owns recycled memory.
func (b BufHandle) Release() {
	if b.h == nil {
		return
	}
	b.check("Release")
	n := b.h.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		b.h.refs.Add(1) // restore; the buffer was already recycled
		handleDoubleReleases.Add(1)
		if debugChecks.Load() {
			panic(fmt.Sprintf("core: BufHandle double release (node %d, len %d)", b.h.node, len(b.h.data)))
		}
		return
	}
	recycleHeader(b.h)
}

func recycleHeader(h *bufHeader) {
	h.gen.Add(1)
	if debugChecks.Load() {
		poison(h.data)
	}
	if h.arena != nil {
		h.arena.recycle(h)
		return
	}
	ReleaseBuf(h.data)
	h.data = nil
	h.seg = nil
	headerPool.Put(h)
}

// check panics in debug mode when the handle outlived its buffer (the
// generation moved on after the last release recycled it).
func (b BufHandle) check(op string) {
	if debugChecks.Load() && b.h.gen.Load() != b.gen {
		panic(fmt.Sprintf("core: BufHandle.%s on released buffer (gen %d, now %d)", op, b.gen, b.h.gen.Load()))
	}
}

var headerPool = sync.Pool{New: func() any { return &bufHeader{} }}

var (
	handleAcquires       atomic.Int64
	handleDoubleReleases atomic.Int64
)

// HandleDoubleReleases returns how many BufHandle double-releases have
// been absorbed (non-debug builds count instead of panicking).
func HandleDoubleReleases() int64 { return handleDoubleReleases.Load() }

// AcquireHandle returns a stack-owned handle of length n backed by an
// anonymous arena buffer homed on the given node. Contents are
// unspecified. The caller owns the single reference.
func AcquireHandle(node, n int) BufHandle {
	handleAcquires.Add(1)
	h := headerPool.Get().(*bufHeader)
	h.data = AcquireBuf(n)
	h.node = int32(node)
	h.seg = nil
	h.arena = nil
	h.refs.Store(1)
	return BufHandle{h: h, gen: h.gen.Load(), off: 0, ln: n, own: true}
}

// SegArena carves fixed-size slots out of registered ipc.Segments and
// hands them to clients as BufHandles — the io_uring registered-buffer
// analogue. Slots are pow2 size classes; each (node, class) keeps its own
// segment list and freelist so concurrent clients on different nodes do
// not contend and payload memory stays node-local.
type SegArena struct {
	sm    *ipc.SegmentManager
	nodes int
	name  string
	cred  ipc.Credentials

	mu    sync.Mutex
	free  map[int][]*bufHeader // (node*arenaClasses + class) -> freelist
	segs  int                  // segments allocated (naming)
	slots int                  // live slots handed out at least once
}

// NewSegArena returns an arena carving from sm. nodes clamps node labels
// (nodes <= 1 means everything is node 0). Segments are allocated under
// "<name>/…" and granted to cred.
func NewSegArena(sm *ipc.SegmentManager, nodes int, name string, cred ipc.Credentials) *SegArena {
	if nodes < 1 {
		nodes = 1
	}
	if name == "" {
		name = "bufarena"
	}
	return &SegArena{sm: sm, nodes: nodes, name: name, cred: cred, free: make(map[int][]*bufHeader)}
}

// segArenaSlab is how much segment memory one allocation registers; small
// classes share a slab, classes above it get one slot per segment.
const segArenaSlab = 256 << 10

// Acquire returns a stack-visible, client-owned handle of length n homed
// on node. The buffer lives inside a registered segment; the handle is
// NOT stack-owned (Owned() == false) — it is the client's registered
// memory, so caches must copy rather than retain it.
func (a *SegArena) Acquire(node, n int) (BufHandle, error) {
	if n <= 0 {
		return BufHandle{}, fmt.Errorf("core: SegArena.Acquire(%d)", n)
	}
	if node < 0 || node >= a.nodes {
		node = 0
	}
	cls := arenaClass(n)
	if cls < 0 {
		return BufHandle{}, fmt.Errorf("core: SegArena.Acquire(%d) exceeds max class %d", n, 1<<arenaMaxBits)
	}
	slot := 1 << (arenaMinBits + cls)
	key := node*arenaClasses + cls

	a.mu.Lock()
	list := a.free[key]
	if len(list) == 0 {
		// Register a fresh segment for this (node, class) and carve it.
		per := segArenaSlab / slot
		if per < 1 {
			per = 1
		}
		a.segs++
		segName := fmt.Sprintf("%s/n%d/c%d/%d", a.name, node, cls, a.segs)
		seg := a.sm.AllocateNode(segName, per*slot, node, a.cred)
		for i := 0; i < per; i++ {
			view, err := seg.View(i*slot, slot)
			if err != nil {
				a.mu.Unlock()
				return BufHandle{}, err
			}
			list = append(list, &bufHeader{
				node: int32(node), data: view, seg: seg, arena: a, class: int16(key),
			})
		}
		a.slots += per
	}
	h := list[len(list)-1]
	a.free[key] = list[:len(list)-1]
	a.mu.Unlock()

	handleAcquires.Add(1)
	h.refs.Store(1)
	return BufHandle{h: h, gen: h.gen.Load(), off: 0, ln: n, own: false}, nil
}

func (a *SegArena) recycle(h *bufHeader) {
	a.mu.Lock()
	a.free[int(h.class)] = append(a.free[int(h.class)], h)
	a.mu.Unlock()
}

// Handle plumbing on Request ------------------------------------------------

// SetPayload attaches a client-acquired registered buffer as the request's
// payload: Data becomes a view of the handle. The request borrows the
// handle — completion does not release it; the client does.
func (r *Request) SetPayload(b BufHandle) {
	r.Buf = b
	r.Data = b.Bytes()
}

// completeHandle allocates the request's result as a stack-owned handle
// homed on the request's origin node and points Value (and the returned
// slice) at it. Used by CompleteValue.
func (r *Request) completeHandle(n int) []byte {
	if r.ValueH.Valid() {
		r.ValueH.Release()
	}
	r.ValueH = AcquireHandle(r.HomeNode, n)
	// Expose the class-capacity backing (cap > n) like the pre-handle
	// arena contract did; in-place consumers rely on the slack.
	r.Value = r.ValueH.h.data[:n]
	return r.Value
}

// TakeValue transfers ownership of the request's result buffer to the
// caller: the request forgets the handle, so Release on the request will
// not recycle it. Clients use this to keep a zero-copy result alive past
// request recycling; they must Release the returned handle themselves.
func (r *Request) TakeValue() BufHandle {
	h := r.ValueH
	r.ValueH = BufHandle{}
	if h.Valid() {
		// Detach Value too: it aliases the taken buffer, and leaving it
		// set would let Release recycle memory the caller now owns.
		r.Value = nil
	}
	return h
}
