package core

import (
	"strings"
	"testing"

	"labstor/internal/ipc"
)

func TestBufHandleLifecycle(t *testing.T) {
	h := AcquireHandle(1, 4096)
	if !h.Valid() || h.Len() != 4096 || h.Node() != 1 || !h.Owned() {
		t.Fatalf("bad handle: valid=%v len=%d node=%d owned=%v", h.Valid(), h.Len(), h.Node(), h.Owned())
	}
	b := h.Bytes()
	b[0], b[4095] = 0xAA, 0xBB

	s := h.Slice(100, 200)
	if s.Len() != 100 || s.Node() != 1 {
		t.Fatalf("slice: len=%d node=%d", s.Len(), s.Node())
	}
	s.Bytes()[0] = 0xCC
	if b[100] != 0xCC {
		t.Fatal("slice must alias the parent view")
	}

	r := h.Retain()
	h.Release() // refcount 2 -> 1; buffer stays alive
	if got := r.Bytes()[4095]; got != 0xBB {
		t.Fatalf("buffer recycled while retained: [4095]=%#x", got)
	}
	r.Release() // last reference
}

func TestBufHandleUseAfterReleasePanicsInDebug(t *testing.T) {
	prev := SetDebugChecks(true)
	defer SetDebugChecks(prev)

	h := AcquireHandle(0, 512)
	h.Bytes()[0] = 1
	h.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Bytes() on a released handle must panic in debug mode")
		}
		if !strings.Contains(r.(string), "released buffer") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = h.Bytes() // borrowed slice outliving its release — must be caught
}

func TestBufHandleDoubleReleasePanicsInDebug(t *testing.T) {
	prev := SetDebugChecks(true)
	defer SetDebugChecks(prev)

	h := AcquireHandle(0, 512)
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release must panic in debug mode")
		}
	}()
	h.Release()
}

func TestBufHandleDoubleReleaseCountedWhenChecksOff(t *testing.T) {
	prev := SetDebugChecks(false)
	defer SetDebugChecks(prev)

	before := HandleDoubleReleases()
	h := AcquireHandle(0, 512)
	h.Release()
	h.Release()
	if got := HandleDoubleReleases(); got != before+1 {
		t.Fatalf("double releases %d -> %d, want +1", before, got)
	}
}

func TestReleaseBufDoubleReleasePanicsInDebug(t *testing.T) {
	prev := SetDebugChecks(true)
	defer SetDebugChecks(prev)

	b := AcquireBuf(1024)
	b[0] = 0x7F
	ReleaseBuf(b)
	if b[0] != poisonByte {
		t.Fatalf("released buffer not poisoned: [0]=%#x", b[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double ReleaseBuf must panic in debug mode")
		}
	}()
	ReleaseBuf(b)
}

func TestSegArenaHandles(t *testing.T) {
	sm := ipc.NewSegmentManager()
	a := NewSegArena(sm, 2, "test-arena", ipc.Credentials{PID: 42})

	h, err := a.Acquire(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if h.Node() != 1 || h.Len() != 4096 || h.Owned() {
		t.Fatalf("seg handle: node=%d len=%d owned=%v (client buffers are not stack-owned)", h.Node(), h.Len(), h.Owned())
	}
	// The bytes really live inside a registered, granted segment.
	names := sm.Names()
	if len(names) == 0 {
		t.Fatal("SegArena allocated no segments")
	}
	seg, err := sm.Lookup(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Granted(42) {
		t.Fatal("creator pid not granted on arena segment")
	}
	if seg.Node != 1 {
		t.Fatalf("segment node = %d, want 1", seg.Node)
	}
	h.Bytes()[0] = 0xEE
	mapped, err := seg.Map(42)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range mapped {
		if mapped[i] == 0xEE {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("handle write not visible through the segment mapping")
	}

	// Release/reacquire must recycle the slot, not register more memory.
	st := sm.Stats()
	h.Release()
	h2, err := a.Acquire(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := sm.Stats(); got.Bytes != st.Bytes {
		t.Fatalf("reacquire grew segment bytes %d -> %d", st.Bytes, got.Bytes)
	}
	h2.Release()
}

func TestRequestValueHandleTransfer(t *testing.T) {
	r := AcquireRequest(OpGet)
	r.HomeNode = 1
	out := r.CompleteValue(4096)
	copy(out, []byte("payload"))
	if r.ValueH.Node() != 1 {
		t.Fatalf("result homed on node %d, want the request's HomeNode", r.ValueH.Node())
	}
	h := r.TakeValue()
	r.MarkDone()
	before := BufArenaStats().Releases
	r.Release()
	if got := BufArenaStats().Releases; got != before {
		t.Fatal("Release recycled a taken-over value buffer")
	}
	if string(h.Bytes()[:7]) != "payload" {
		t.Fatal("taken value corrupted after request release")
	}
	h.Release()
}
