package core

import (
	"sync"
	"sync/atomic"
)

// Payload buffer arena: the data path allocates transient byte buffers on
// every cache miss, log-block flush and read completion — at millions of
// ops/s that is the dominant GC pressure after request pooling (pool.go).
// AcquireBuf/ReleaseBuf recycle those buffers through per-size-class
// sync.Pools, mirroring the paper's preallocated shared-memory data slabs.
//
// Classes are powers of two from 1<<arenaMinBits to 1<<arenaMaxBits; a
// request for n bytes returns a slice of length n whose capacity is the
// class size. Requests above the largest class fall through to the heap
// (counted as misses). Buffers come back with whatever bytes the previous
// user left in them — callers that depend on zeroing must clear the buffer
// themselves.
const (
	arenaMinBits = 9  // 512 B — smallest class
	arenaMaxBits = 21 // 2 MiB — largest class
	arenaClasses = arenaMaxBits - arenaMinBits + 1
)

var arenaPools [arenaClasses]sync.Pool

var (
	arenaGets     atomic.Int64 // AcquireBuf calls
	arenaMisses   atomic.Int64 // Acquires that had to allocate
	arenaReleases atomic.Int64 // buffers accepted back by ReleaseBuf
	arenaBytes    atomic.Int64 // cumulative bytes handed out by AcquireBuf
)

func init() {
	for i := range arenaPools {
		size := 1 << (arenaMinBits + i)
		arenaPools[i].New = func() any {
			arenaMisses.Add(1)
			b := make([]byte, size)
			return &b
		}
	}
}

// arenaClass returns the size-class index for n, or -1 if n exceeds the
// largest class.
func arenaClass(n int) int {
	c := 0
	for size := 1 << arenaMinBits; size < n; size <<= 1 {
		c++
	}
	if c >= arenaClasses {
		return -1
	}
	return c
}

// AcquireBuf returns a buffer of length n drawn from the arena when n fits a
// size class, falling back to the heap otherwise. The contents are
// unspecified (recycled buffers are not zeroed).
func AcquireBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	arenaGets.Add(1)
	arenaBytes.Add(int64(n))
	c := arenaClass(n)
	if c < 0 {
		arenaMisses.Add(1)
		return make([]byte, n)
	}
	b := *arenaPools[c].Get().(*[]byte)
	if debugChecks.Load() {
		debugNoteAcquire(b)
	}
	return b[:n]
}

// ReleaseBuf returns a buffer to the arena. Only buffers whose capacity is
// exactly a class size are accepted (i.e. buffers that came from AcquireBuf
// or happen to match a class); anything else — including nil and oversized
// heap fallbacks — is silently left to the GC, so it is always safe to call.
// The caller must not touch b afterwards.
//
// With debug checks on (LABSTOR_DEBUG=1, the labstor_debug tag, or
// SetDebugChecks), the buffer is poisoned and a second release of the
// same backing array panics instead of being absorbed by the pool.
func ReleaseBuf(b []byte) {
	c := cap(b)
	if c < 1<<arenaMinBits || c > 1<<arenaMaxBits || c&(c-1) != 0 {
		return
	}
	cls := arenaClass(c)
	b = b[:c]
	if debugChecks.Load() {
		if !debugNoteRelease(b) {
			panic("core: ReleaseBuf double release")
		}
		poison(b)
	}
	arenaReleases.Add(1)
	arenaPools[cls].Put(&b)
}

// ArenaStats is the buffer arena's cumulative accounting. Hits is Gets that
// were served by a recycled (or pool-cached) buffer.
type ArenaStats struct {
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Releases int64 `json:"releases"`
	Bytes    int64 `json:"bytes"`
}

// BufArenaStats snapshots the arena counters (telemetry).
func BufArenaStats() ArenaStats {
	gets := arenaGets.Load()
	misses := arenaMisses.Load()
	return ArenaStats{
		Gets:     gets,
		Hits:     gets - misses,
		Misses:   misses,
		Releases: arenaReleases.Load(),
		Bytes:    arenaBytes.Load(),
	}
}

// CompleteValue allocates the request's result buffer (r.Value) from the
// arena and returns it. Drivers and stores use it for read completions whose
// payload the caller did not supply a buffer for. The buffer is a
// stack-owned BufHandle (r.ValueH) homed on the request's origin node:
// Release drops the request's reference, and clients that want to keep
// the result zero-copy call TakeValue first (handle.go).
func (r *Request) CompleteValue(n int) []byte {
	return r.completeHandle(n)
}
