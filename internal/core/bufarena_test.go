package core

import "testing"

func TestBufArenaSizeClasses(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512},
		{511, 512},
		{512, 512},
		{513, 1024},
		{4096, 4096},
		{4097, 8192},
		{1 << 21, 1 << 21},
	}
	for _, c := range cases {
		b := AcquireBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Fatalf("AcquireBuf(%d): len=%d cap=%d, want len=%d cap=%d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		ReleaseBuf(b)
	}
	if b := AcquireBuf(0); b != nil {
		t.Fatalf("AcquireBuf(0) = %v, want nil", b)
	}
	if b := AcquireBuf(-4); b != nil {
		t.Fatalf("AcquireBuf(-4) = %v, want nil", b)
	}
}

func TestBufArenaOversizedFallsBack(t *testing.T) {
	before := BufArenaStats()
	n := (1 << 21) + 1
	b := AcquireBuf(n)
	if len(b) != n {
		t.Fatalf("oversized acquire len=%d", len(b))
	}
	after := BufArenaStats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("oversized acquire should count a miss (%d -> %d)", before.Misses, after.Misses)
	}
	// Releasing the heap fallback (and other foreign buffers) is a no-op.
	ReleaseBuf(b)
	ReleaseBuf(nil)
	ReleaseBuf(make([]byte, 100))
	if got := BufArenaStats().Releases; got != after.Releases {
		t.Fatalf("foreign buffers must not be accepted (releases %d -> %d)", after.Releases, got)
	}
}

func TestBufArenaReuse(t *testing.T) {
	// Drain-and-recycle: after a release, the next same-class acquire is a
	// hit and may not retain the previous user's length.
	b := AcquireBuf(4000)
	b[0] = 0xEE
	ReleaseBuf(b)
	before := BufArenaStats()
	b2 := AcquireBuf(300) // smaller length, but could still be class 512..4096
	if len(b2) != 300 {
		t.Fatalf("reacquired len=%d", len(b2))
	}
	after := BufArenaStats()
	if after.Gets != before.Gets+1 {
		t.Fatalf("gets %d -> %d", before.Gets, after.Gets)
	}
	if after.Bytes != before.Bytes+300 {
		t.Fatalf("bytes %d -> %d, want +300", before.Bytes, after.Bytes)
	}
	ReleaseBuf(b2)

	// Same-class reacquire after release must be served from the pool.
	b3 := AcquireBuf(4096)
	ReleaseBuf(b3)
	mid := BufArenaStats()
	b4 := AcquireBuf(4096)
	end := BufArenaStats()
	if end.Misses != mid.Misses {
		t.Fatalf("reacquire after release should hit the pool (misses %d -> %d)", mid.Misses, end.Misses)
	}
	if end.Hits != mid.Hits+1 {
		t.Fatalf("hits %d -> %d", mid.Hits, end.Hits)
	}
	ReleaseBuf(b4)
}

func TestCompleteValueRecycledOnRelease(t *testing.T) {
	r := AcquireRequest(OpRead)
	out := r.CompleteValue(700)
	if len(out) != 700 || cap(out) != 1024 {
		t.Fatalf("CompleteValue(700): len=%d cap=%d", len(out), cap(out))
	}
	if &out[0] != &r.Value[0] {
		t.Fatal("CompleteValue must install the buffer as r.Value")
	}
	r.MarkDone()
	before := BufArenaStats()
	r.Release()
	if got := BufArenaStats().Releases; got != before.Releases+1 {
		t.Fatal("Release must return r.Value to the arena")
	}
}
