package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"labstor/internal/vtime"
)

// --- Request ---------------------------------------------------------------------

func TestRequestChargeAndTrace(t *testing.T) {
	r := NewRequest(OpWrite)
	r.Trace = true
	r.Charge("a", 100)
	r.Charge("b", 50)
	if r.Clock != 150 || r.CPUTime != 150 {
		t.Fatalf("clock=%d cpu=%d", r.Clock, r.CPUTime)
	}
	if len(r.Stages) != 2 || r.Stages[0].Stage != "a" {
		t.Fatalf("stages %v", r.Stages)
	}
	r.ChargeIO("io", 500)
	if r.Clock != 500 {
		t.Fatalf("ChargeIO clock %d", r.Clock)
	}
	if r.CPUTime != 150 {
		t.Fatalf("ChargeIO must not add CPU time: %d", r.CPUTime)
	}
	// Past completion does not move the clock back.
	r.ChargeIO("io", 10)
	if r.Clock != 500 {
		t.Fatal("ChargeIO moved clock backwards")
	}
	if r.Latency() != 500 {
		t.Fatalf("latency %v", r.Latency())
	}
}

func TestRequestChildAbsorb(t *testing.T) {
	p := NewRequest(OpWrite)
	p.Trace = true
	p.StackID = 3
	p.Clock = 100
	p.Cred = Cred{UID: 7}
	c := p.Child(OpBlockWrite)
	if c.StackID != 3 || c.Clock != 100 || c.Cred.UID != 7 || !c.Trace {
		t.Fatal("child inheritance")
	}
	if c.ID == p.ID {
		t.Fatal("child must get a fresh ID")
	}
	c.Charge("io_sub", 25)
	c.ChargeIO("io", 400)
	p.Absorb(c)
	if p.Clock != 400 {
		t.Fatalf("absorb clock %d", p.Clock)
	}
	if p.CPUTime != 25 {
		t.Fatalf("absorb cpu %d", p.CPUTime)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("absorb stages %v", p.Stages)
	}
	// Errors propagate.
	c2 := p.Child(OpBlockWrite)
	c2.Err = errors.New("boom")
	p.Absorb(c2)
	if p.Err == nil {
		t.Fatal("child error not absorbed")
	}
}

func TestRequestDoneChannel(t *testing.T) {
	r := NewRequest(OpNop)
	select {
	case <-r.DoneCh():
		t.Fatal("done before MarkDone")
	default:
	}
	r.MarkDone()
	r.Wait() // must not block
}

func TestOpClassification(t *testing.T) {
	if !OpCreate.IsMetadata() || OpWrite.IsMetadata() {
		t.Fatal("IsMetadata")
	}
	if !OpWrite.IsWrite() || !OpPut.IsWrite() || OpRead.IsWrite() {
		t.Fatal("IsWrite")
	}
	if OpWrite.String() != "write" || Op(200).String() == "" {
		t.Fatal("op strings")
	}
	if !strings.Contains(NewRequest(OpRead).String(), "read") {
		t.Fatal("request string")
	}
}

// --- Registry --------------------------------------------------------------------

// fake module for registry/stack tests.
type fakeMod struct {
	Base
	name     string
	consumes API
	produces API
	state    int
	repaired bool
	process  func(e *Exec, r *Request) error
}

func (f *fakeMod) Info() ModuleInfo {
	c, p := f.consumes, f.produces
	if c == "" {
		c = APIAny
	}
	if p == "" {
		p = APIAny
	}
	return ModuleInfo{Type: f.name, Version: "1", Consumes: c, Produces: p}
}

func (f *fakeMod) Process(e *Exec, r *Request) error {
	if f.process != nil {
		return f.process(e, r)
	}
	if e.HasNext(r) {
		return e.Next(r)
	}
	return nil
}

func (f *fakeMod) StateUpdate(prev Module) error {
	if old, ok := prev.(*fakeMod); ok {
		f.state = old.state
	}
	return nil
}

func (f *fakeMod) StateRepair() error { f.repaired = true; return nil }

func (f *fakeMod) EstProcessingTime(op Op, size int) vtime.Duration { return 100 }

func init() {
	RegisterType("test.fake", func() Module { return &fakeMod{name: "test.fake"} })
}

func TestRegistryInstantiateOnce(t *testing.T) {
	reg := NewRegistry()
	env := NewEnv(nil)
	m1, err := reg.Instantiate("u1", "test.fake", Config{}, env)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.Instantiate("u1", "other.type.ignored", Config{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same UUID must return the same instance")
	}
	if !reg.Has("u1") || reg.Has("u2") {
		t.Fatal("Has")
	}
	if len(reg.UUIDs()) != 1 {
		t.Fatal("UUIDs")
	}
}

func TestRegistryUnknownType(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Instantiate("x", "no.such.type", Config{}, NewEnv(nil)); err == nil {
		t.Fatal("unknown type instantiated")
	}
	if _, err := NewModule("no.such.type"); err == nil {
		t.Fatal("NewModule of unknown type")
	}
}

func TestRegistrySwapTransfersState(t *testing.T) {
	reg := NewRegistry()
	old := &fakeMod{name: "test.fake", state: 42}
	reg.Register("u", old)
	next := &fakeMod{name: "test.fake"}
	if err := reg.Swap("u", next); err != nil {
		t.Fatal(err)
	}
	if next.state != 42 {
		t.Fatal("StateUpdate not invoked")
	}
	if reg.Generation("u") != 1 {
		t.Fatalf("generation %d", reg.Generation("u"))
	}
	got, _ := reg.Get("u")
	if got != Module(next) {
		t.Fatal("swap did not replace instance")
	}
	if err := reg.Swap("missing", next); err == nil {
		t.Fatal("swap of missing UUID succeeded")
	}
}

func TestRegistryRepairAll(t *testing.T) {
	reg := NewRegistry()
	a := &fakeMod{name: "test.fake"}
	b := &fakeMod{name: "test.fake"}
	reg.Register("a", a)
	reg.Register("b", b)
	if err := reg.RepairAll(); err != nil {
		t.Fatal(err)
	}
	if !a.repaired || !b.repaired {
		t.Fatal("not all modules repaired")
	}
	reg.Remove("a")
	if reg.Has("a") {
		t.Fatal("remove")
	}
}

// --- Stack -----------------------------------------------------------------------

func chainVertices(uuids ...string) []Vertex {
	vs := make([]Vertex, len(uuids))
	for i, u := range uuids {
		vs[i] = Vertex{UUID: u, Type: "test.fake"}
		if i+1 < len(uuids) {
			vs[i].Outputs = []string{uuids[i+1]}
		}
	}
	return vs
}

func TestStackChainAndValidate(t *testing.T) {
	s := NewStack("fs::/x", Rules{}, chainVertices("a", "b", "c"))
	if s.Entry() != "a" || s.Len() != 3 {
		t.Fatal("entry/len")
	}
	if err := s.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Outputs("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("outputs %v", got)
	}
	if _, ok := s.Vertex("zzz"); ok {
		t.Fatal("phantom vertex")
	}
}

func TestStackValidateErrors(t *testing.T) {
	if err := NewStack("m", Rules{}, nil).Validate(nil); err == nil {
		t.Fatal("empty stack validated")
	}
	// Unknown output.
	bad := NewStack("m", Rules{}, []Vertex{{UUID: "a", Outputs: []string{"ghost"}}})
	if err := bad.Validate(nil); err == nil {
		t.Fatal("dangling output validated")
	}
	// Cycle.
	cyc := NewStack("m", Rules{}, []Vertex{
		{UUID: "a", Outputs: []string{"b"}},
		{UUID: "b", Outputs: []string{"a"}},
	})
	if err := cyc.Validate(nil); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Depth bound.
	deep := NewStack("m", Rules{MaxDepth: 2}, chainVertices("a", "b", "c"))
	if err := deep.Validate(nil); err == nil {
		t.Fatal("over-depth stack validated")
	}
	// Stack references are allowed.
	ref := NewStack("m", Rules{}, []Vertex{{UUID: "a", Outputs: []string{"stack:other"}}})
	if err := ref.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackValidateInterfaceCompatibility(t *testing.T) {
	reg := NewRegistry()
	reg.Register("posix", &fakeMod{name: "p", consumes: APIPosix, produces: APIBlock})
	reg.Register("kv", &fakeMod{name: "k", consumes: APIKV, produces: APIBlock})
	reg.Register("blk", &fakeMod{name: "b", consumes: APIBlock, produces: APIDriver})
	ok := NewStack("m", Rules{}, []Vertex{
		{UUID: "posix", Outputs: []string{"blk"}},
		{UUID: "blk"},
	})
	if err := ok.Validate(reg); err != nil {
		t.Fatal(err)
	}
	bad := NewStack("m", Rules{}, []Vertex{
		{UUID: "posix", Outputs: []string{"kv"}},
		{UUID: "kv"},
	})
	if err := bad.Validate(reg); err == nil {
		t.Fatal("posix->kv composition validated")
	}
}

func TestStackInsertAfterAndRemove(t *testing.T) {
	s := NewStack("m", Rules{}, chainVertices("a", "b"))
	if err := s.InsertAfter("a", Vertex{UUID: "mid", Type: "test.fake"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Outputs("a"); got[0] != "mid" {
		t.Fatalf("a outputs %v", got)
	}
	if got := s.Outputs("mid"); got[0] != "b" {
		t.Fatalf("mid outputs %v", got)
	}
	if err := s.InsertAfter("a", Vertex{UUID: "mid"}); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := s.InsertAfter("ghost", Vertex{UUID: "x"}); err == nil {
		t.Fatal("insert after missing vertex succeeded")
	}
	// Prepend.
	if err := s.InsertAfter("", Vertex{UUID: "front", Type: "test.fake"}); err != nil {
		t.Fatal(err)
	}
	if s.Entry() != "front" {
		t.Fatalf("entry %s", s.Entry())
	}
	// Remove splices.
	if err := s.RemoveVertex("mid"); err != nil {
		t.Fatal(err)
	}
	if got := s.Outputs("a"); got[0] != "b" {
		t.Fatalf("splice failed: %v", got)
	}
	if err := s.RemoveVertex("ghost"); err == nil {
		t.Fatal("remove of missing vertex succeeded")
	}
	if err := s.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

// --- Namespace -------------------------------------------------------------------

func TestNamespaceMountResolve(t *testing.T) {
	ns := NewNamespace()
	a := NewStack("fs::/a", Rules{}, chainVertices("x"))
	ab := NewStack("fs::/a/b", Rules{}, chainVertices("y"))
	if err := ns.Mount(a); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount(ab); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount(NewStack("fs::/a", Rules{}, chainVertices("z"))); err == nil {
		t.Fatal("double mount succeeded")
	}
	// Longest-prefix resolution.
	s, rem, ok := ns.Resolve("fs::/a/b/c/file.txt")
	if !ok || s != ab || rem != "c/file.txt" {
		t.Fatalf("resolve: %v %q %v", s, rem, ok)
	}
	s, rem, ok = ns.Resolve("fs::/a/other.txt")
	if !ok || s != a || rem != "other.txt" {
		t.Fatalf("resolve parent: %v %q %v", s, rem, ok)
	}
	if _, _, ok := ns.Resolve("kv::/elsewhere"); ok {
		t.Fatal("resolved unmounted path")
	}
	// Exact lookup and by-ID.
	if got, ok := ns.Lookup("fs::/a/b"); !ok || got != ab {
		t.Fatal("lookup")
	}
	if got, ok := ns.ByID(a.ID); !ok || got != a {
		t.Fatal("byID")
	}
	if len(ns.Mounts()) != 2 || len(ns.Stacks()) != 2 {
		t.Fatal("listing")
	}
	if err := ns.Unmount("fs::/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Unmount("fs::/a/b"); err == nil {
		t.Fatal("double unmount succeeded")
	}
}

func TestNamespaceRootMount(t *testing.T) {
	ns := NewNamespace()
	root := NewStack("/", Rules{}, chainVertices("r"))
	if err := ns.Mount(root); err != nil {
		t.Fatal(err)
	}
	s, rem, ok := ns.Resolve("/any/path")
	if !ok || s != root || rem != "any/path" {
		t.Fatalf("root resolve: %q %v", rem, ok)
	}
}

func TestCleanMount(t *testing.T) {
	cases := map[string]string{
		"fs::/a/":     "fs::/a",
		"fs::/a//b":   "fs::/a/b",
		"/x/":         "/x",
		"/":           "/",
		"fs::":        "fs::/",
		"kv::/k//v//": "kv::/k/v",
	}
	for in, want := range cases {
		if got := CleanMount(in); got != want {
			t.Errorf("CleanMount(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCleanMountQuickIdempotent(t *testing.T) {
	f := func(s string) bool { return CleanMount(CleanMount(s)) == CleanMount(s) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Exec ------------------------------------------------------------------------

func TestExecChainWalk(t *testing.T) {
	reg := NewRegistry()
	var order []string
	mk := func(name string) *fakeMod {
		return &fakeMod{name: name, process: func(e *Exec, r *Request) error {
			order = append(order, name)
			r.Charge(name, 10)
			if e.HasNext(r) {
				return e.Next(r)
			}
			return nil
		}}
	}
	reg.Register("a", mk("a"))
	reg.Register("b", mk("b"))
	reg.Register("c", mk("c"))
	st := NewStack("m", Rules{}, chainVertices("a", "b", "c"))
	st.ID = 1
	e := NewExec(reg, nil, nil, 0)
	req := NewRequest(OpWrite)
	if err := e.Submit(st, req); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("walk order %v", order)
	}
	// 3 module charges + 3 registry lookups.
	if req.CPUTime != 30+3*e.Model.ModLookup {
		t.Fatalf("cpu %v", req.CPUTime)
	}
}

func TestExecNextTo(t *testing.T) {
	reg := NewRegistry()
	var hit string
	reg.Register("fan", &fakeMod{name: "fan", process: func(e *Exec, r *Request) error {
		return e.NextTo(r, "right")
	}})
	reg.Register("left", &fakeMod{name: "left", process: func(e *Exec, r *Request) error {
		hit = "left"
		return nil
	}})
	reg.Register("right", &fakeMod{name: "right", process: func(e *Exec, r *Request) error {
		hit = "right"
		return nil
	}})
	st := NewStack("m", Rules{}, []Vertex{
		{UUID: "fan", Outputs: []string{"left", "right"}},
		{UUID: "left"},
		{UUID: "right"},
	})
	e := NewExec(reg, nil, nil, 0)
	if err := e.Submit(st, NewRequest(OpNop)); err != nil {
		t.Fatal(err)
	}
	if hit != "right" {
		t.Fatalf("NextTo hit %q", hit)
	}
	// NextTo to a non-output fails.
	reg.Register("fan2", &fakeMod{name: "fan2", process: func(e *Exec, r *Request) error {
		return e.NextTo(r, "nowhere")
	}})
	st2 := NewStack("m2", Rules{}, []Vertex{{UUID: "fan2", Outputs: []string{"left"}}, {UUID: "left"}})
	if err := e.Submit(st2, NewRequest(OpNop)); err == nil {
		t.Fatal("NextTo to non-output succeeded")
	}
}

func TestExecStackReference(t *testing.T) {
	reg := NewRegistry()
	ns := NewNamespace()
	var hits []string
	reg.Register("front", &fakeMod{name: "front", process: func(e *Exec, r *Request) error {
		hits = append(hits, "front")
		return e.Next(r)
	}})
	reg.Register("backend", &fakeMod{name: "backend", process: func(e *Exec, r *Request) error {
		hits = append(hits, "backend")
		return nil
	}})
	back := NewStack("fs::/backend", Rules{}, chainVertices("backend"))
	if err := ns.Mount(back); err != nil {
		t.Fatal(err)
	}
	front := NewStack("fs::/front", Rules{}, []Vertex{
		{UUID: "front", Outputs: []string{"stack:fs::/backend"}},
	})
	if err := ns.Mount(front); err != nil {
		t.Fatal(err)
	}
	e := NewExec(reg, ns, nil, 0)
	req := NewRequest(OpNop)
	if err := e.Submit(front, req); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[1] != "backend" {
		t.Fatalf("stack reference walk: %v", hits)
	}
	if req.StackID != front.ID {
		t.Fatal("stack ID not restored after cross-stack forward")
	}
}

func TestExecSpawnNext(t *testing.T) {
	reg := NewRegistry()
	reg.Register("parent", &fakeMod{name: "parent", process: func(e *Exec, r *Request) error {
		child := r.Child(OpBlockWrite)
		return e.SpawnNext(r, child)
	}})
	reg.Register("sink", &fakeMod{name: "sink", process: func(e *Exec, r *Request) error {
		r.Charge("sink", 77)
		return nil
	}})
	st := NewStack("m", Rules{}, chainVertices("parent", "sink"))
	e := NewExec(reg, nil, nil, 0)
	req := NewRequest(OpWrite)
	if err := e.Submit(st, req); err != nil {
		t.Fatal(err)
	}
	if req.CPUTime < 77 {
		t.Fatalf("child cost not absorbed: %v", req.CPUTime)
	}
}

func TestExecTerminalWithoutOutputs(t *testing.T) {
	reg := NewRegistry()
	reg.Register("bad", &fakeMod{name: "bad", process: func(e *Exec, r *Request) error {
		return e.Next(r) // no outputs: must error
	}})
	st := NewStack("m", Rules{}, chainVertices("bad"))
	e := NewExec(reg, nil, nil, 0)
	if err := e.Submit(st, NewRequest(OpNop)); err == nil {
		t.Fatal("Next from terminal vertex succeeded")
	}
}

// --- Env --------------------------------------------------------------------------

func TestEnvDevices(t *testing.T) {
	env := NewEnv(nil)
	if _, err := env.Device("missing"); err == nil {
		t.Fatal("missing device found")
	}
	if env.Model == nil || env.Segments == nil {
		t.Fatal("env defaults")
	}
}

func TestConfigAttr(t *testing.T) {
	c := Config{Attrs: map[string]string{"k": "v"}}
	if c.Attr("k", "d") != "v" || c.Attr("x", "d") != "d" {
		t.Fatal("attr lookup")
	}
}
