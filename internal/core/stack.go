package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ExecMode selects where a stack's DAG executes (paper §III-B governing
// rules).
type ExecMode uint8

const (
	// ExecAsync executes the DAG in the Runtime: the client submits the
	// request over a shared-memory queue pair and a worker walks the DAG.
	// This is the centralized, secure mode (Lab-All / Lab-Min).
	ExecAsync ExecMode = iota
	// ExecSync executes the DAG directly in the client thread with no IPC —
	// the decentralized mode (Lab-D / "Minimal").
	ExecSync
)

func (m ExecMode) String() string {
	if m == ExecSync {
		return "sync"
	}
	return "async"
}

// Vertex is one node of a LabStack DAG.
type Vertex struct {
	// UUID is the human-readable unique instance name (Module Registry key).
	UUID string
	// Type is the module implementation to instantiate if the UUID is new.
	Type string
	// Attrs are initialization attributes for the instance.
	Attrs map[string]string
	// Outputs lists downstream vertex UUIDs (or "stack:<mount>" references
	// to other mounted stacks).
	Outputs []string
}

// Rules are a stack's governing rules.
type Rules struct {
	ExecMode ExecMode
	// Priority is a scheduling hint (higher = more latency sensitive).
	Priority int
	// Owners are UIDs allowed to modify the stack (empty = creator only).
	Owners []int
	// MaxDepth bounds DAG length at validation time (0 = platform default).
	MaxDepth int
}

// Stack is a mounted LabStack: a mount point, governing rules and a DAG of
// LabMod vertices, entry first.
type Stack struct {
	ID    int
	Mount string
	Rules Rules

	mu       sync.RWMutex
	vertices []Vertex
	index    map[string]int // uuid -> position in vertices
}

// NewStack builds a stack from an ordered vertex list; the first vertex is
// the entry point.
func NewStack(mount string, rules Rules, vertices []Vertex) *Stack {
	s := &Stack{Mount: mount, Rules: rules}
	s.setVertices(vertices)
	return s
}

func (s *Stack) setVertices(vs []Vertex) {
	s.vertices = vs
	s.index = make(map[string]int, len(vs))
	for i, v := range vs {
		s.index[v.UUID] = i
	}
}

// Entry returns the entry vertex UUID ("" for an empty stack).
func (s *Stack) Entry() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.vertices) == 0 {
		return ""
	}
	return s.vertices[0].UUID
}

// Vertices returns a copy of the DAG's vertex list.
func (s *Stack) Vertices() []Vertex {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Vertex, len(s.vertices))
	copy(out, s.vertices)
	return out
}

// Vertex returns the vertex with the given UUID.
func (s *Stack) Vertex(uuid string) (Vertex, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.index[uuid]
	if !ok {
		return Vertex{}, false
	}
	return s.vertices[i], true
}

// Outputs returns the downstream UUIDs of the named vertex.
func (s *Stack) Outputs(uuid string) []string {
	v, ok := s.Vertex(uuid)
	if !ok {
		return nil
	}
	return v.Outputs
}

// Len returns the number of vertices.
func (s *Stack) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vertices)
}

// InsertAfter inserts a new vertex after the vertex with UUID `after`
// (modify_stack: dynamic semantics imposition, e.g. adding a compression
// LabMod for a period of time). The new vertex inherits `after`'s outputs
// and `after` is rewired to point at it. An empty `after` prepends a new
// entry vertex.
func (s *Stack) InsertAfter(after string, v Vertex) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[v.UUID]; dup {
		return fmt.Errorf("core: vertex %q already in stack %q", v.UUID, s.Mount)
	}
	if after == "" {
		if len(s.vertices) > 0 && len(v.Outputs) == 0 {
			v.Outputs = []string{s.vertices[0].UUID}
		}
		s.setVertices(append([]Vertex{v}, s.vertices...))
		return nil
	}
	i, ok := s.index[after]
	if !ok {
		return fmt.Errorf("core: vertex %q not in stack %q", after, s.Mount)
	}
	if len(v.Outputs) == 0 {
		v.Outputs = append([]string(nil), s.vertices[i].Outputs...)
	}
	s.vertices[i].Outputs = []string{v.UUID}
	vs := make([]Vertex, 0, len(s.vertices)+1)
	vs = append(vs, s.vertices[:i+1]...)
	vs = append(vs, v)
	vs = append(vs, s.vertices[i+1:]...)
	s.setVertices(vs)
	return nil
}

// RemoveVertex removes the named vertex, splicing its inputs to its outputs.
// Removing the entry vertex promotes its first output to entry.
func (s *Stack) RemoveVertex(uuid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[uuid]
	if !ok {
		return fmt.Errorf("core: vertex %q not in stack %q", uuid, s.Mount)
	}
	removed := s.vertices[i]
	vs := make([]Vertex, 0, len(s.vertices)-1)
	for j, v := range s.vertices {
		if j == i {
			continue
		}
		outs := make([]string, 0, len(v.Outputs))
		for _, o := range v.Outputs {
			if o == uuid {
				outs = append(outs, removed.Outputs...)
			} else {
				outs = append(outs, o)
			}
		}
		v.Outputs = dedup(outs)
		vs = append(vs, v)
	}
	s.setVertices(vs)
	return nil
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ErrCycle is returned by Validate for cyclic DAGs.
var ErrCycle = errors.New("core: stack DAG contains a cycle")

// Validate checks the stack: non-empty, referenced outputs exist (or are
// stack references), the DAG is acyclic, depth within bounds, and adjacent
// module interfaces are compatible per the registry's instances.
func (s *Stack) Validate(reg *Registry) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.vertices) == 0 {
		return fmt.Errorf("core: stack %q has no vertices", s.Mount)
	}
	maxDepth := s.Rules.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 64
	}
	if len(s.vertices) > maxDepth {
		return fmt.Errorf("core: stack %q exceeds max depth %d", s.Mount, maxDepth)
	}
	for _, v := range s.vertices {
		for _, o := range v.Outputs {
			if strings.HasPrefix(o, "stack:") {
				continue
			}
			if _, ok := s.index[o]; !ok {
				return fmt.Errorf("core: stack %q vertex %q references unknown output %q", s.Mount, v.UUID, o)
			}
		}
	}
	// Cycle check (DFS with colors).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.vertices))
	var visit func(u string) error
	visit = func(u string) error {
		color[u] = gray
		i := s.index[u]
		for _, o := range s.vertices[i].Outputs {
			if strings.HasPrefix(o, "stack:") {
				continue
			}
			switch color[o] {
			case gray:
				return fmt.Errorf("%w: via %q -> %q", ErrCycle, u, o)
			case white:
				if err := visit(o); err != nil {
					return err
				}
			}
		}
		color[u] = black
		return nil
	}
	for _, v := range s.vertices {
		if color[v.UUID] == white {
			if err := visit(v.UUID); err != nil {
				return err
			}
		}
	}
	// Interface compatibility: upstream Produces must match downstream
	// Consumes (or either side is APIAny).
	if reg != nil {
		for _, v := range s.vertices {
			m, err := reg.Get(v.UUID)
			if err != nil {
				continue // not yet instantiated; compatibility checked at mount
			}
			up := m.Info().Produces
			for _, o := range v.Outputs {
				if strings.HasPrefix(o, "stack:") {
					continue
				}
				dm, err := reg.Get(o)
				if err != nil {
					continue
				}
				down := dm.Info().Consumes
				if up != APIAny && down != APIAny && up != down {
					return fmt.Errorf("core: stack %q: %q produces %q but %q consumes %q",
						s.Mount, v.UUID, up, o, down)
				}
			}
		}
	}
	return nil
}
