package core

import (
	"fmt"
	"strings"

	"labstor/internal/vtime"
)

// Exec walks requests through LabStack DAGs. One Exec exists per executing
// context — a Runtime worker (async mode) or a client thread (sync mode).
//
// The walk is a middleware chain: Exec delivers the request to the current
// vertex's module, which charges its stage cost, transforms or spawns
// requests, and calls Next/NextTo to forward downstream. The module
// instance is looked up in the Module Registry *per hop*, so Registry.Swap
// (hot plug / live upgrade) takes effect for every subsequent request —
// exactly the paper's per-request registry query.
type Exec struct {
	Registry  *Registry
	Namespace *Namespace
	Model     *vtime.CostModel
	// WorkerID identifies the executing worker (-1 for client-side sync
	// execution).
	WorkerID int
}

// NewExec returns an Exec over the given registry and namespace.
func NewExec(reg *Registry, ns *Namespace, model *vtime.CostModel, workerID int) *Exec {
	if model == nil {
		model = vtime.Default()
	}
	return &Exec{Registry: reg, Namespace: ns, Model: model, WorkerID: workerID}
}

// Submit delivers req to the entry vertex of stack and runs it to
// completion of the DAG walk. The caller is responsible for queue-pair
// transport and completion signaling.
func (e *Exec) Submit(stack *Stack, req *Request) error {
	entry := stack.Entry()
	if entry == "" {
		return fmt.Errorf("core: stack %q is empty", stack.Mount)
	}
	req.StackID = stack.ID
	req.stack = stack
	return e.Deliver(entry, req)
}

// Deliver routes req to the named vertex's module instance.
func (e *Exec) Deliver(uuid string, req *Request) error {
	if req.stack == nil {
		return fmt.Errorf("core: request %d has no stack context", req.ID)
	}
	m, err := e.Registry.Get(uuid)
	if err != nil {
		return err
	}
	req.Charge("registry", e.Model.ModLookup)
	prev := req.vertex
	req.vertex = uuid
	err = m.Process(e, req)
	req.vertex = prev
	if err != nil && req.Err == nil {
		req.Err = err
	}
	return err
}

// Next forwards req to the current vertex's first output. Modules call this
// after transforming the request in place. A vertex with no outputs
// completes the chain (Next is then an error — terminal modules such as
// drivers must not call it).
func (e *Exec) Next(req *Request) error {
	outs := req.stack.Outputs(req.vertex)
	if len(outs) == 0 {
		return fmt.Errorf("core: vertex %q has no outputs (stack %q)", req.vertex, req.stack.Mount)
	}
	return e.forward(outs[0], req)
}

// NextTo forwards req to a specific downstream vertex UUID (for fan-out
// vertices with multiple outputs).
func (e *Exec) NextTo(req *Request, uuid string) error {
	for _, o := range req.stack.Outputs(req.vertex) {
		if o == uuid {
			return e.forward(uuid, req)
		}
	}
	return fmt.Errorf("core: %q is not an output of %q", uuid, req.vertex)
}

// HasNext reports whether the current vertex has downstream outputs.
func (e *Exec) HasNext(req *Request) bool {
	return req.stack != nil && len(req.stack.Outputs(req.vertex)) > 0
}

func (e *Exec) forward(out string, req *Request) error {
	if strings.HasPrefix(out, "stack:") {
		mount := strings.TrimPrefix(out, "stack:")
		if e.Namespace == nil {
			return fmt.Errorf("core: stack reference %q without namespace", out)
		}
		next, ok := e.Namespace.Lookup(mount)
		if !ok {
			return fmt.Errorf("core: stack reference %q not mounted", out)
		}
		save := req.stack
		saveID := req.StackID
		err := e.Submit(next, req)
		req.stack, req.StackID = save, saveID
		return err
	}
	return e.Deliver(out, req)
}

// SpawnNext runs a child request through the remainder of the DAG
// (downstream of the parent's current vertex) and absorbs its clock and
// trace back into the parent. This is the "filesystem op spawns block I/O
// requests" pattern.
func (e *Exec) SpawnNext(parent, child *Request) error {
	child.stack = parent.stack
	child.vertex = parent.vertex
	child.Clock = parent.Clock
	err := e.Next(child)
	parent.Absorb(child)
	return err
}

// CurrentVertex returns the UUID of the vertex processing req (for tests
// and diagnostics).
func (e *Exec) CurrentVertex(req *Request) string { return req.vertex }

// Stack returns the stack req is currently walking.
func (e *Exec) Stack(req *Request) *Stack { return req.stack }
