package core

import (
	"fmt"
	"strings"
	"sync"
)

// Namespace is the LabStack Namespace: a concurrent map from mount point to
// mounted stack with longest-prefix path resolution (as GenericFS uses when
// routing "fs::/b/hi.txt" to the stack mounted at "fs::/b").
type Namespace struct {
	mu     sync.RWMutex
	byPath map[string]*Stack
	byID   map[int]*Stack
	nextID int
}

// NewNamespace returns an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{
		byPath: make(map[string]*Stack),
		byID:   make(map[int]*Stack),
		nextID: 1,
	}
}

// Mount inducts a validated stack into the namespace, assigning its ID.
func (n *Namespace) Mount(s *Stack) error {
	mount := CleanMount(s.Mount)
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.byPath[mount]; ok {
		return fmt.Errorf("core: mount point %q already in use", mount)
	}
	s.Mount = mount
	s.ID = n.nextID
	n.nextID++
	n.byPath[mount] = s
	n.byID[s.ID] = s
	return nil
}

// Unmount removes the stack at the given mount point.
func (n *Namespace) Unmount(mount string) error {
	mount = CleanMount(mount)
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.byPath[mount]
	if !ok {
		return fmt.Errorf("core: nothing mounted at %q", mount)
	}
	delete(n.byPath, mount)
	delete(n.byID, s.ID)
	return nil
}

// Lookup returns the stack mounted exactly at mount.
func (n *Namespace) Lookup(mount string) (*Stack, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.byPath[CleanMount(mount)]
	return s, ok
}

// ByID returns the stack with the given ID.
func (n *Namespace) ByID(id int) (*Stack, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.byID[id]
	return s, ok
}

// Resolve finds the stack whose mount point is the longest prefix of path
// (on path-component boundaries) and returns it with the path remainder.
// It mirrors GenericFS's resolution: exact match first, then parents.
func (n *Namespace) Resolve(path string) (*Stack, string, bool) {
	p := CleanMount(path)
	n.mu.RLock()
	defer n.mu.RUnlock()
	for probe := p; ; {
		if s, ok := n.byPath[probe]; ok {
			rem := strings.TrimPrefix(p, probe)
			rem = strings.TrimPrefix(rem, "/")
			return s, rem, true
		}
		i := strings.LastIndex(probe, "/")
		if i < 0 {
			break
		}
		if i == 0 {
			// try root mount "/" last
			if s, ok := n.byPath["/"]; ok {
				return s, strings.TrimPrefix(p, "/"), true
			}
			break
		}
		probe = probe[:i]
	}
	return nil, "", false
}

// Mounts returns all mount points (unordered).
func (n *Namespace) Mounts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.byPath))
	for m := range n.byPath {
		out = append(out, m)
	}
	return out
}

// Stacks returns all mounted stacks (unordered).
func (n *Namespace) Stacks() []*Stack {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Stack, 0, len(n.byID))
	for _, s := range n.byID {
		out = append(out, s)
	}
	return out
}

// CleanMount normalizes a mount path: ensures a leading slash for
// slash-rooted paths, strips trailing slashes, collapses doubles. Scheme
// prefixes like "fs::/b" are preserved.
func CleanMount(p string) string {
	scheme := ""
	if i := strings.Index(p, "::"); i >= 0 {
		scheme, p = p[:i+2], p[i+2:]
	}
	for strings.Contains(p, "//") {
		p = strings.ReplaceAll(p, "//", "/")
	}
	if len(p) > 1 {
		p = strings.TrimRight(p, "/")
	}
	if p == "" {
		p = "/"
	}
	return scheme + p
}
