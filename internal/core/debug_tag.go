//go:build labstor_debug

package core

// Building with -tags labstor_debug turns buffer poison/double-release
// checking on from process start, before any init-ordered allocation.
func init() { debugChecks.Store(true) }
