// Package core implements the LabStor platform core: the LabMod programming
// model (type / operation / state / connector with the StateUpdate,
// StateRepair and EstProcessingTime lifecycle APIs), the Module Registry,
// the LabStack DAG, the LabStack Namespace with longest-prefix mount
// resolution, and the Executor that walks a request through a stack.
package core

import (
	"fmt"
	"sync/atomic"

	"labstor/internal/vtime"
)

// Op identifies the operation a Request carries. The set spans the
// interfaces LabStor multiplexes: POSIX file ops (GenericFS), key-value ops
// (GenericKVS), block I/O (drivers), and control/diagnostic messages.
type Op uint8

// Request operations.
const (
	OpNop Op = iota
	// POSIX file interface (GenericFS / LabFS).
	OpOpen
	OpCreate
	OpClose
	OpRead
	OpWrite
	OpAppend
	OpFsync
	OpStat
	OpUnlink
	OpRename
	OpMkdir
	OpRmdir
	OpReaddir
	OpTruncate
	// Key-value interface (GenericKVS / LabKVS).
	OpPut
	OpGet
	OpDel
	OpHas
	// Block interface (schedulers, caches, drivers).
	OpBlockRead
	OpBlockWrite
	OpBlockFlush
	OpBlockDiscard
	// Control and diagnostics.
	OpMessage
	OpIoctl
	// Computation pushdown: run a registered program against the data
	// where it lives (KVS scan-with-predicate, FS grep-offload).
	OpScan
)

var opNames = map[Op]string{
	OpNop: "nop", OpOpen: "open", OpCreate: "create", OpClose: "close",
	OpRead: "read", OpWrite: "write", OpAppend: "append", OpFsync: "fsync",
	OpStat: "stat", OpUnlink: "unlink", OpRename: "rename", OpMkdir: "mkdir",
	OpRmdir: "rmdir", OpReaddir: "readdir", OpTruncate: "truncate",
	OpPut: "put", OpGet: "get", OpDel: "del", OpHas: "has",
	OpBlockRead: "block_read", OpBlockWrite: "block_write",
	OpBlockFlush: "block_flush", OpBlockDiscard: "block_discard",
	OpMessage: "message", OpIoctl: "ioctl", OpScan: "scan",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMetadata reports whether the op is a metadata (not data-path) operation.
func (o Op) IsMetadata() bool {
	switch o {
	case OpOpen, OpCreate, OpClose, OpStat, OpUnlink, OpRename,
		OpMkdir, OpRmdir, OpReaddir, OpTruncate:
		return true
	}
	return false
}

// IsWrite reports whether the op moves data toward the device.
func (o Op) IsWrite() bool {
	switch o {
	case OpWrite, OpAppend, OpPut, OpBlockWrite:
		return true
	}
	return false
}

// StageTime records the virtual time one pipeline stage charged to a
// request; the sequence of StageTimes is the request's "anatomy"
// (paper Fig. 4a).
type StageTime struct {
	Stage string
	Cost  vtime.Duration
}

// Request is the unit of work that flows through a LabStack. A request is
// created by a connector (client library / Generic LabMod), carried over a
// queue pair, and walked through the stack's module DAG by an Executor.
type Request struct {
	ID uint64
	Op Op

	// Interface-specific operands; which fields are meaningful depends on Op.
	Path   string // file path (relative to the stack mount)
	Path2  string // rename target
	FD     int    // file descriptor
	Key    string // key-value key
	Offset int64  // file or device offset
	Size   int    // requested length
	Data   []byte // payload (write/put) or destination (read/get)
	// Buf is the registered-buffer handle behind Data when the payload
	// lives in an arena/segment buffer (zero-copy path). The request
	// borrows it: client-acquired payload handles are released by the
	// client, and views a parent cut from its own result (Slice) die with
	// the parent. Mods consult Buf.Owned() to decide retain-vs-copy.
	Buf      BufHandle
	Flags    int
	Mode     uint32
	Cred     Cred // caller credentials for permission checking
	Hctx     int  // hardware dispatch queue selected by an I/O scheduler
	DirectIO bool

	// Prog references a registered pushdown program (OpScan): either a
	// content-hash ref or a registered name resolved to one by the policy
	// layer. Empty means plain scan (list keys / full read).
	Prog string
	// ProgMaxBytes / ProgMaxSteps are the per-request execution budgets a
	// pushdown policy clamped onto the request; 0 means the evaluator's
	// built-in defaults apply.
	ProgMaxBytes int64
	ProgMaxSteps int64

	// Stack routing state.
	StackID int
	stack   *Stack // stack being walked (set by Exec)
	vertex  string // UUID of the vertex currently processing the request

	// Virtual-time accounting.
	Arrival vtime.Time // submission time (client clock)
	Clock   vtime.Time // request-local clock, advanced by every stage
	// CPUTime accumulates only the charged software-stage costs (device
	// service advances Clock but not CPUTime); workers bill CPUTime against
	// their own clocks.
	CPUTime vtime.Duration
	Stages  []StageTime
	Trace   bool // record Stages when true

	// Outcome.
	Err    error
	Result int64  // op-defined scalar result (bytes moved, fd, size, ...)
	Value  []byte // op-defined payload result (get/read-into-fresh)
	// ValueH is the stack-owned handle behind Value (set by
	// CompleteValue). The request owns one reference until Release; a
	// client that wants the result zero-copy takes it over via TakeValue.
	ValueH BufHandle
	Names  []string // readdir / scan results

	// OriginCore is the CPU core the request originated from (used by the
	// NoOp scheduler's core-keyed queue mapping).
	OriginCore int
	// HomeNode is the NUMA node the request's payload memory is homed on
	// (derived from the client's core by the connector; 0 on single-node
	// topologies). CompleteValue allocates results on this node and the
	// worker charges a vtime cross-node penalty when it differs from the
	// worker's own node.
	HomeNode int

	done chan struct{}
}

// Open flags carried in Request.Flags (a subset of POSIX open semantics).
const (
	// FlagCreate creates the file if it does not exist (O_CREAT).
	FlagCreate = 1 << iota
	// FlagTrunc truncates an existing file to zero length (O_TRUNC).
	FlagTrunc
	// FlagExcl fails if the file already exists (O_EXCL, with FlagCreate).
	FlagExcl
	// FlagAppend positions every write at end-of-file (O_APPEND).
	FlagAppend
)

// Cred carries caller identity for permission-check LabMods.
type Cred struct {
	UID int
	GID int
}

var reqID atomic.Uint64

// NewRequest allocates a request with a fresh ID and completion channel.
func NewRequest(op Op) *Request {
	return &Request{ID: reqID.Add(1), Op: op, done: make(chan struct{})}
}

// Charge advances the request clock by d and, when tracing, records the
// stage name.
func (r *Request) Charge(stage string, d vtime.Duration) {
	if d < 0 {
		d = 0
	}
	r.Clock = r.Clock.Add(d)
	r.CPUTime += d
	if r.Trace {
		r.Stages = append(r.Stages, StageTime{Stage: stage, Cost: d})
	}
}

// ChargeIO advances the request clock to a device completion time and, when
// tracing, records the device interval as a stage. It does not add CPU time.
func (r *Request) ChargeIO(stage string, completion vtime.Time) {
	wait := completion.Sub(r.Clock)
	if wait < 0 {
		wait = 0
	}
	r.Clock = r.Clock.Add(wait)
	if r.Trace {
		r.Stages = append(r.Stages, StageTime{Stage: stage, Cost: wait})
	}
}

// AdvanceTo moves the request clock to at least t (e.g. to a device
// completion time).
func (r *Request) AdvanceTo(t vtime.Time) {
	if t > r.Clock {
		r.Clock = t
	}
}

// Latency returns the request's modeled end-to-end latency.
func (r *Request) Latency() vtime.Duration { return r.Clock.Sub(r.Arrival) }

// MarkDone signals completion to a waiting submitter. Safe to call once.
func (r *Request) MarkDone() { close(r.done) }

// Wait blocks until MarkDone is called. The runtime's client library wraps
// this with crash detection (see runtime.Client.Wait).
func (r *Request) Wait() { <-r.done }

// DoneCh exposes the completion channel for select-based waiting.
func (r *Request) DoneCh() <-chan struct{} { return r.done }

// Child creates a follow-on request (e.g. a block I/O spawned by a
// filesystem op) that inherits the parent's routing and clock.
func (r *Request) Child(op Op) *Request {
	c := NewRequest(op)
	c.StackID = r.StackID
	c.stack = r.stack
	c.vertex = r.vertex
	c.Arrival = r.Arrival
	c.Clock = r.Clock
	c.Cred = r.Cred
	c.Trace = r.Trace
	c.OriginCore = r.OriginCore
	c.HomeNode = r.HomeNode
	c.Hctx = r.Hctx
	return c
}

// Absorb merges a completed child's clock, CPU time and trace back into the
// parent.
func (r *Request) Absorb(c *Request) {
	if c.Clock > r.Clock {
		r.Clock = c.Clock
	}
	r.CPUTime += c.CPUTime
	if r.Trace {
		r.Stages = append(r.Stages, c.Stages...)
	}
	if c.Err != nil && r.Err == nil {
		r.Err = c.Err
	}
}

func (r *Request) String() string {
	return fmt.Sprintf("req#%d %s path=%q key=%q off=%d size=%d stack=%d", r.ID, r.Op, r.Path, r.Key, r.Offset, r.Size, r.StackID)
}
