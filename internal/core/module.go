package core

import (
	"errors"
	"fmt"
	"sync"

	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// API classifies the interface a LabMod implements (its "type" in the
// paper's four-element decomposition). Stack validation uses it to check
// that adjacent vertices speak compatible interfaces.
type API string

// Module API classes.
const (
	APIPosix   API = "posix"   // POSIX file requests in, block requests out
	APIKV      API = "kv"      // put/get/del requests
	APIBlock   API = "block"   // block requests in, block requests out
	APIDriver  API = "driver"  // block requests in, device commands out
	APIGeneric API = "generic" // interface multiplexers (GenericFS/GenericKVS)
	APIAny     API = "any"     // diagnostic / pass-through modules
)

// ErrNotSupported is returned by modules for ops outside their interface.
var ErrNotSupported = errors.New("core: operation not supported by module")

// ModuleInfo describes a LabMod implementation.
type ModuleInfo struct {
	// Type is the implementation name (e.g. "labstor.labfs").
	Type string
	// Version is the implementation version; live upgrades replace an
	// instance with one of the same Type and (usually) newer Version.
	Version string
	// Consumes and Produces describe the module's upstream and downstream
	// interfaces for stack validation.
	Consumes API
	Produces API
}

// Config carries a vertex's initialization attributes from the LabStack
// spec to the module instance.
type Config struct {
	// UUID is the human-readable unique instance name from the spec.
	UUID string
	// Attrs are free-form key/value attributes from the spec vertex.
	Attrs map[string]string
}

// Attr returns the attribute value or a default.
func (c Config) Attr(key, def string) string {
	if v, ok := c.Attrs[key]; ok {
		return v
	}
	return def
}

// Env is the environment the Runtime hands to module instances: simulated
// devices, shared-memory segments, the cost model for virtual-time
// charges, and the runtime metrics registry LabMods publish op counters
// into.
type Env struct {
	Devices  map[string]*device.Device
	Segments *ipc.SegmentManager
	Model    *vtime.CostModel
	Metrics  *telemetry.Registry
}

// NewEnv returns an Env with the given cost model (Default if nil).
func NewEnv(model *vtime.CostModel) *Env {
	if model == nil {
		model = vtime.Default()
	}
	return &Env{
		Devices:  make(map[string]*device.Device),
		Segments: ipc.NewSegmentManager(),
		Model:    model,
		Metrics:  telemetry.NewRegistry(),
	}
}

// AddDevice registers a simulated device under its name.
func (e *Env) AddDevice(d *device.Device) { e.Devices[d.Name] = d }

// Device returns a registered device.
func (e *Env) Device(name string) (*device.Device, error) {
	d, ok := e.Devices[name]
	if !ok {
		return nil, fmt.Errorf("core: no device %q", name)
	}
	return d, nil
}

// Module is the LabMod contract. A LabMod is a single-purpose,
// self-contained code object; instances live in the Module Registry and are
// addressed by UUID from LabStack DAGs.
//
// Process implements the module's "operation": it consumes the request,
// optionally forwards (transformed or spawned) requests downstream via the
// Executor, and returns when its part of the request is complete.
//
// The lifecycle APIs required by the platform (paper §III-A):
//   - StateUpdate copies state from the previous instance during a live
//     upgrade;
//   - StateRepair revalidates/rebuilds state after a Runtime crash;
//   - EstProcessingTime estimates per-request processing cost, which the
//     Work Orchestrator uses to split latency-sensitive from computational
//     queues.
type Module interface {
	Info() ModuleInfo
	Configure(cfg Config, env *Env) error
	Process(e *Exec, req *Request) error
	StateUpdate(prev Module) error
	StateRepair() error
	EstProcessingTime(op Op, size int) vtime.Duration
}

// Base provides default lifecycle implementations modules can embed.
type Base struct {
	Cfg Config
	Env *Env
}

// Configure stores the config and environment.
func (b *Base) Configure(cfg Config, env *Env) error {
	b.Cfg = cfg
	b.Env = env
	return nil
}

// ModConfig exposes the stored config (used by live upgrades to carry the
// old instance's attributes to the replacement).
func (b *Base) ModConfig() Config { return b.Cfg }

// StateUpdate is a no-op by default (stateless module).
func (b *Base) StateUpdate(prev Module) error { return nil }

// StateRepair is a no-op by default.
func (b *Base) StateRepair() error { return nil }

// EstProcessingTime defaults to a microsecond-scale constant.
func (b *Base) EstProcessingTime(op Op, size int) vtime.Duration {
	return vtime.Microsecond
}

// Factory constructs a fresh, unconfigured module instance of one type.
type Factory func() Module

var (
	factoryMu sync.RWMutex
	factories = make(map[string]Factory)
)

// RegisterType registers a module implementation under its type name.
// It is called from mod packages' init functions; installing a "repo" in
// the paper's sense corresponds to importing its package.
func RegisterType(name string, f Factory) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	factories[name] = f
}

// NewModule instantiates a registered module type.
func NewModule(name string) (Module, error) {
	factoryMu.RLock()
	f, ok := factories[name]
	factoryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown module type %q", name)
	}
	return f(), nil
}

// Types returns the registered module type names (unordered).
func Types() []string {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	return out
}
