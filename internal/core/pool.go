package core

import (
	"sync"
	"sync/atomic"
)

// Request pooling: the async hot path allocates one Request per operation,
// which at millions of ops/s is exactly the GC pressure the paper's
// shared-memory request slabs avoid (requests there live in preallocated
// cacheline-sized shared segments). AcquireRequest/Release recycle Request
// objects through a sync.Pool so the steady-state hot path stops allocating
// the struct and its trace buffer.
//
// The pool is opt-in: NewRequest still heap-allocates and callers that never
// Release keep working unchanged. Release is only safe once the request has
// fully completed (Wait/WaitAll returned) and the caller has copied out any
// results it needs — after Release the object may be reused and every field,
// including Data, Value, Names and Err, is rewritten.
var reqPool = sync.Pool{
	New: func() any {
		poolMisses.Add(1)
		return &Request{}
	},
}

var (
	poolGets   atomic.Int64 // AcquireRequest calls
	poolMisses atomic.Int64 // Acquires that had to allocate
	poolPuts   atomic.Int64 // Release calls
)

// AcquireRequest returns a reset Request with a fresh ID and completion
// channel, drawn from the request pool when possible.
func AcquireRequest(op Op) *Request {
	poolGets.Add(1)
	r := reqPool.Get().(*Request)
	r.reset(op)
	return r
}

// Release returns a completed request to the pool, recycling its result
// buffer (the stack-owned ValueH handle when CompleteValue allocated one,
// else the raw Value slice through the payload arena). The payload handle
// (Buf) is borrowed and deliberately NOT released — its owner (client or
// parent request) does that. The caller must not touch r afterwards.
// Never call Release on a request that is still queued, executing, or
// being waited on.
func (r *Request) Release() {
	poolPuts.Add(1)
	if r.ValueH.Valid() {
		r.ValueH.Release()
		r.ValueH = BufHandle{}
		r.Value = nil
	} else if r.Value != nil {
		ReleaseBuf(r.Value)
		r.Value = nil
	}
	r.Buf = BufHandle{}
	reqPool.Put(r)
}

// reset rewrites every field for reuse, keeping only the Stages backing
// array (trace capacity) across generations. The completion channel must be
// fresh: the previous generation's channel is closed.
func (r *Request) reset(op Op) {
	stages := r.Stages[:0]
	*r = Request{
		ID:     reqID.Add(1),
		Op:     op,
		Stages: stages,
		done:   make(chan struct{}),
	}
}

// PoolStats is the request pool's cumulative accounting. Hits is Gets that
// were served by a recycled object.
type PoolStats struct {
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Releases int64 `json:"releases"`
}

// RequestPoolStats snapshots the pool counters (telemetry).
func RequestPoolStats() PoolStats {
	gets := poolGets.Load()
	misses := poolMisses.Load()
	return PoolStats{Gets: gets, Hits: gets - misses, Misses: misses, Releases: poolPuts.Load()}
}
