package core

import "testing"

// TestAcquireReleaseReset checks that a recycled request comes back clean: a
// fresh ID, a fresh done channel, zeroed fields, and an empty (but reusable)
// stage slice.
func TestAcquireReleaseReset(t *testing.T) {
	r := AcquireRequest(OpWrite)
	if r.Op != OpWrite {
		t.Fatalf("op = %v", r.Op)
	}
	firstID := r.ID
	firstDone := r.DoneCh()
	// Dirty every recycled-sensitive field.
	r.Path = "/x"
	r.Data = []byte("payload")
	r.Err = errTestSentinel
	r.Result = 99
	r.Trace = true
	r.Charge("stage", 100)
	if len(r.Stages) == 0 {
		t.Fatal("Charge with Trace did not record a stage")
	}
	r.MarkDone()
	r.Release()

	r2 := AcquireRequest(OpRead)
	if r2.ID == firstID {
		t.Fatal("recycled request kept its old ID")
	}
	if r2.Op != OpRead || r2.Path != "" || r2.Data != nil || r2.Err != nil ||
		r2.Result != 0 || r2.Trace || len(r2.Stages) != 0 || r2.Clock != 0 {
		t.Fatalf("recycled request not reset: %+v", r2)
	}
	if r2.DoneCh() == firstDone {
		t.Fatal("recycled request kept its completed done channel")
	}
	select {
	case <-r2.DoneCh():
		t.Fatal("recycled request is already done")
	default:
	}
	r2.Release()
}

// TestPoolStatsAccounting checks the hit/miss arithmetic: gets = hits+misses
// and the counters move with traffic.
func TestPoolStatsAccounting(t *testing.T) {
	before := RequestPoolStats()
	const n = 32
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = AcquireRequest(OpMessage)
	}
	for _, r := range reqs {
		r.Release()
	}
	after := RequestPoolStats()
	if after.Gets-before.Gets != n {
		t.Fatalf("gets delta %d, want %d", after.Gets-before.Gets, n)
	}
	if after.Releases-before.Releases != n {
		t.Fatalf("releases delta %d, want %d", after.Releases-before.Releases, n)
	}
	if after.Gets != after.Hits+after.Misses {
		t.Fatalf("gets %d != hits %d + misses %d", after.Gets, after.Hits, after.Misses)
	}
}

type errTestSentinelT struct{}

func (errTestSentinelT) Error() string { return "sentinel" }

var errTestSentinel = errTestSentinelT{}
