package core

import (
	"testing"

	"labstor/internal/vtime"
)

type repoMod struct{ Base }

func (r *repoMod) Info() ModuleInfo                         { return ModuleInfo{Type: "repo.mod"} }
func (r *repoMod) Process(e *Exec, req *Request) error      { return nil }
func (r *repoMod) EstProcessingTime(Op, int) vtime.Duration { return 0 }

func repoWith(name string, owner int, trusted bool, types ...string) *Repo {
	m := make(map[string]Factory, len(types))
	for _, t := range types {
		m[t] = func() Module { return &repoMod{} }
	}
	return NewRepo(name, owner, trusted, m)
}

func TestRepoMountRegistersTypes(t *testing.T) {
	rm := NewRepoManager(0)
	if err := rm.Mount(repoWith("r1", 1000, false, "x.alpha", "x.beta")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModule("x.alpha"); err != nil {
		t.Fatalf("mounted type not instantiable: %v", err)
	}
	if got := rm.Repos(); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("repos %v", got)
	}
	r, ok := rm.Lookup("r1")
	if !ok || len(r.Types()) != 2 {
		t.Fatal("lookup")
	}
	if err := rm.Unmount("r1", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModule("x.alpha"); err == nil {
		t.Fatal("unmounted type still instantiable")
	}
}

func TestRepoQuota(t *testing.T) {
	rm := NewRepoManager(2)
	if err := rm.Mount(repoWith("a", 7, false, "q.a")); err != nil {
		t.Fatal(err)
	}
	if err := rm.Mount(repoWith("b", 7, false, "q.b")); err != nil {
		t.Fatal(err)
	}
	if err := rm.Mount(repoWith("c", 7, false, "q.c")); err == nil {
		t.Fatal("quota not enforced")
	}
	// Another user is unaffected.
	if err := rm.Mount(repoWith("d", 8, false, "q.d")); err != nil {
		t.Fatal(err)
	}
	// Unmounting frees quota.
	rm.Unmount("a", 7)
	if err := rm.Mount(repoWith("c", 7, false, "q.c")); err != nil {
		t.Fatalf("quota not released: %v", err)
	}
	for _, n := range []string{"b", "c", "d"} {
		rm.Unmount(n, 0)
	}
}

func TestRepoDuplicateAndOwnership(t *testing.T) {
	rm := NewRepoManager(0)
	if err := rm.Mount(repoWith("dup", 5, false, "d.x")); err != nil {
		t.Fatal(err)
	}
	if err := rm.Mount(repoWith("dup", 5, false, "d.y")); err == nil {
		t.Fatal("duplicate mount succeeded")
	}
	if err := rm.Unmount("dup", 6); err == nil {
		t.Fatal("non-owner unmounted")
	}
	if err := rm.Unmount("dup", 0); err != nil { // root may
		t.Fatal(err)
	}
	if err := rm.Unmount("dup", 5); err == nil {
		t.Fatal("double unmount succeeded")
	}
}

func TestRepoSharedTypesSurviveUnmount(t *testing.T) {
	rm := NewRepoManager(0)
	rm.Mount(repoWith("one", 1, false, "shared.t"))
	rm.Mount(repoWith("two", 2, false, "shared.t"))
	rm.Unmount("one", 1)
	if _, err := NewModule("shared.t"); err != nil {
		t.Fatal("type deregistered while still provided")
	}
	rm.Unmount("two", 2)
	if _, err := NewModule("shared.t"); err == nil {
		t.Fatal("type survived both unmounts")
	}
}

func TestRepoTrust(t *testing.T) {
	rm := NewRepoManager(0, 1000)
	// Trusted owner keeps the flag.
	rm.Mount(repoWith("tr", 1000, true, "t.a"))
	if r, _ := rm.Lookup("tr"); !r.Trusted {
		t.Fatal("trusted owner's repo downgraded")
	}
	// Untrusted owner is downgraded.
	rm.Mount(repoWith("un", 4444, true, "t.b"))
	if r, _ := rm.Lookup("un"); r.Trusted {
		t.Fatal("untrusted owner kept trust")
	}
	if !rm.TrustedType("t.a") {
		t.Fatal("trusted type misreported")
	}
	if rm.TrustedType("t.b") {
		t.Fatal("untrusted type misreported")
	}
	// Built-ins are trusted.
	if !rm.TrustedType("test.fake") {
		t.Fatal("built-in type untrusted")
	}
	rm.Unmount("tr", 0)
	rm.Unmount("un", 0)
}
