package core

import (
	"fmt"
	"sort"
	"sync"
)

// Repo is a LabMod repository: a named collection of module types that can
// be mounted into (and unmounted from) the type namespace at runtime — the
// paper's `mount.repo` / `unmount.repo`. In the paper a repo is a directory
// of plug-in libraries searched by the Runtime; here it is a set of
// registered factories, which is the in-process equivalent of loading the
// plug-ins.
type Repo struct {
	Name string
	// Owner is the UID that mounted the repo.
	Owner int
	// Trusted repos may run inside the Runtime's address space; untrusted
	// ones are confined to client-side (sync) execution.
	Trusted bool

	types map[string]Factory
}

// NewRepo builds a repo from (type name → factory) pairs.
func NewRepo(name string, owner int, trusted bool, types map[string]Factory) *Repo {
	cp := make(map[string]Factory, len(types))
	for k, v := range types {
		cp[k] = v
	}
	return &Repo{Name: name, Owner: owner, Trusted: trusted, types: cp}
}

// Types lists the module types the repo provides, sorted.
func (r *Repo) Types() []string {
	out := make([]string, 0, len(r.types))
	for t := range r.types {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// RepoManager tracks mounted repos and enforces the configurable per-user
// repo quota. Mounting a repo registers its types with the global factory
// namespace; unmounting removes them (unless another mounted repo also
// provides them).
type RepoManager struct {
	mu          sync.Mutex
	repos       map[string]*Repo
	perUser     map[int]int
	maxPerUser  int
	trustedUIDs map[int]bool
}

// NewRepoManager returns a manager with the given per-user quota
// (0 = unlimited). UIDs in trusted are allowed to mount trusted repos
// (the paper: a repo owned by the Runtime's user is trusted by default).
func NewRepoManager(maxPerUser int, trusted ...int) *RepoManager {
	m := &RepoManager{
		repos:       make(map[string]*Repo),
		perUser:     make(map[int]int),
		maxPerUser:  maxPerUser,
		trustedUIDs: make(map[int]bool),
	}
	for _, uid := range trusted {
		m.trustedUIDs[uid] = true
	}
	return m
}

// Mount registers a repo's types. It is unprivileged, but enforces the
// per-user quota and downgrades the Trusted flag for untrusted owners.
func (m *RepoManager) Mount(r *Repo) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.repos[r.Name]; dup {
		return fmt.Errorf("core: repo %q already mounted", r.Name)
	}
	if m.maxPerUser > 0 && m.perUser[r.Owner] >= m.maxPerUser {
		return fmt.Errorf("core: uid %d exceeds the repo quota (%d)", r.Owner, m.maxPerUser)
	}
	if r.Trusted && !m.trustedUIDs[r.Owner] && r.Owner != 0 {
		r.Trusted = false
	}
	for name, f := range r.types {
		RegisterType(name, f)
	}
	m.repos[r.Name] = r
	m.perUser[r.Owner]++
	return nil
}

// Unmount removes a repo. Types still provided by another mounted repo
// stay registered; the rest are deregistered.
func (m *RepoManager) Unmount(name string, uid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.repos[name]
	if !ok {
		return fmt.Errorf("core: repo %q not mounted", name)
	}
	if uid != 0 && uid != r.Owner {
		return fmt.Errorf("core: uid %d may not unmount repo %q (owner %d)", uid, name, r.Owner)
	}
	delete(m.repos, name)
	m.perUser[r.Owner]--
	for typeName := range r.types {
		stillProvided := false
		for _, other := range m.repos {
			if _, ok := other.types[typeName]; ok {
				stillProvided = true
				break
			}
		}
		if !stillProvided {
			deregisterType(typeName)
		}
	}
	return nil
}

// Repos lists the mounted repo names, sorted.
func (m *RepoManager) Repos() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.repos))
	for n := range m.repos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a mounted repo.
func (m *RepoManager) Lookup(name string) (*Repo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.repos[name]
	return r, ok
}

// TrustedType reports whether typeName comes only from trusted repos (or
// from the built-in registry, which is always trusted).
func (m *RepoManager) TrustedType(typeName string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	fromRepo := false
	for _, r := range m.repos {
		if _, ok := r.types[typeName]; ok {
			fromRepo = true
			if r.Trusted {
				return true
			}
		}
	}
	return !fromRepo // built-in types are trusted
}

// deregisterType removes a type from the global factory namespace.
func deregisterType(name string) {
	factoryMu.Lock()
	delete(factories, name)
	factoryMu.Unlock()
}
