package core

import (
	"fmt"
	"sync"
)

// Registry is the Module Registry: a concurrent map from LabMod UUID to the
// live module instance (in the paper, a hashmap in shared memory holding
// instances and their entrypoints). Workers look instances up per hop, so a
// Swap takes effect for all subsequent requests — the mechanism behind
// hot-plugging and live upgrades.
type Registry struct {
	mu      sync.RWMutex
	mods    map[string]Module
	version map[string]int // swap generation per UUID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		mods:    make(map[string]Module),
		version: make(map[string]int),
	}
}

// Instantiate creates, configures, and registers a module instance for the
// given UUID if one does not already exist (mount only instantiates LabMods
// whose UUID is absent, so stacks can share instances). It returns the
// registered instance.
func (r *Registry) Instantiate(uuid, typeName string, cfg Config, env *Env) (Module, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.mods[uuid]; ok {
		return m, nil
	}
	m, err := NewModule(typeName)
	if err != nil {
		return nil, err
	}
	cfg.UUID = uuid
	if err := m.Configure(cfg, env); err != nil {
		return nil, fmt.Errorf("configure %q (%s): %w", uuid, typeName, err)
	}
	r.mods[uuid] = m
	return m, nil
}

// Register inserts a pre-built instance (used by tests and by decentralized
// client-side registries).
func (r *Registry) Register(uuid string, m Module) {
	r.mu.Lock()
	r.mods[uuid] = m
	r.mu.Unlock()
}

// Get returns the live instance for a UUID.
func (r *Registry) Get(uuid string) (Module, error) {
	r.mu.RLock()
	m, ok := r.mods[uuid]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: module %q not in registry", uuid)
	}
	return m, nil
}

// Has reports whether a UUID is registered.
func (r *Registry) Has(uuid string) bool {
	r.mu.RLock()
	_, ok := r.mods[uuid]
	r.mu.RUnlock()
	return ok
}

// Swap replaces the instance behind uuid with next after transferring state
// via next.StateUpdate(old). This is the core of both upgrade protocols.
func (r *Registry) Swap(uuid string, next Module) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.mods[uuid]
	if !ok {
		return fmt.Errorf("core: module %q not in registry", uuid)
	}
	if err := next.StateUpdate(old); err != nil {
		return fmt.Errorf("state update for %q: %w", uuid, err)
	}
	r.mods[uuid] = next
	r.version[uuid]++
	return nil
}

// Generation returns how many times uuid has been swapped.
func (r *Registry) Generation(uuid string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version[uuid]
}

// Remove deletes an instance.
func (r *Registry) Remove(uuid string) {
	r.mu.Lock()
	delete(r.mods, uuid)
	delete(r.version, uuid)
	r.mu.Unlock()
}

// UUIDs returns the registered instance names (unordered).
func (r *Registry) UUIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.mods))
	for u := range r.mods {
		out = append(out, u)
	}
	return out
}

// ForEach calls fn for every registered (uuid, instance) pair.
func (r *Registry) ForEach(fn func(uuid string, m Module)) {
	r.mu.RLock()
	snapshot := make(map[string]Module, len(r.mods))
	for u, m := range r.mods {
		snapshot[u] = m
	}
	r.mu.RUnlock()
	for u, m := range snapshot {
		fn(u, m)
	}
}

// RepairAll invokes StateRepair on every instance (crash-recovery path).
// It returns the first error encountered but repairs all instances.
func (r *Registry) RepairAll() error {
	var first error
	r.ForEach(func(uuid string, m Module) {
		if err := m.StateRepair(); err != nil && first == nil {
			first = fmt.Errorf("repair %q: %w", uuid, err)
		}
	})
	return first
}
