package core

import (
	"os"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Debug-build buffer checking (opt-in): sync.Pool silently absorbs a
// double ReleaseBuf — two holders of the same recycled buffer is exactly
// the corruption the zero-copy borrowed-slice path risks, and in
// production it shows up as data corruption far from the bug. With checks
// on, released buffers are poisoned (0xDB) so a use-after-release reads
// garbage deterministically, a second ReleaseBuf of the same backing
// array panics, and stale BufHandles panic on access (handle.go check).
//
// Enable with the LABSTOR_DEBUG=1 environment variable, the labstor_debug
// build tag (debug_tag.go), or SetDebugChecks(true) from a test.

var debugChecks atomic.Bool

func init() {
	switch os.Getenv("LABSTOR_DEBUG") {
	case "", "0", "false", "off":
	default:
		debugChecks.Store(true)
	}
}

// SetDebugChecks toggles buffer poison/double-release checking at runtime
// and returns the previous setting. Tests flip it on around the code
// under scrutiny; the hot path pays one predictable atomic load per
// check site when off.
func SetDebugChecks(on bool) bool {
	prev := debugChecks.Load()
	debugChecks.Store(on)
	if !on {
		releasedBufs.Lock()
		releasedBufs.m = nil
		releasedBufs.Unlock()
	}
	return prev
}

// DebugChecksEnabled reports whether poison/double-release checking is on.
func DebugChecksEnabled() bool { return debugChecks.Load() }

const poisonByte = 0xDB

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}

// releasedBufs tracks the backing arrays currently sitting in the arena
// pools, keyed by their first-byte address. Debug mode only: ReleaseBuf
// registers, AcquireBuf unregisters, and a repeat registration is a
// double release.
var releasedBufs struct {
	sync.Mutex
	m map[unsafe.Pointer]bool
}

func bufKey(b []byte) unsafe.Pointer {
	if cap(b) == 0 {
		return nil
	}
	return unsafe.Pointer(&b[:1][0])
}

// debugNoteRelease records b as released; reports false (and the caller
// panics) if it was already in the released set.
func debugNoteRelease(b []byte) bool {
	k := bufKey(b)
	if k == nil {
		return true
	}
	releasedBufs.Lock()
	defer releasedBufs.Unlock()
	if releasedBufs.m == nil {
		releasedBufs.m = make(map[unsafe.Pointer]bool)
	}
	if releasedBufs.m[k] {
		return false
	}
	releasedBufs.m[k] = true
	return true
}

func debugNoteAcquire(b []byte) {
	k := bufKey(b)
	if k == nil {
		return
	}
	releasedBufs.Lock()
	delete(releasedBufs.m, k)
	releasedBufs.Unlock()
}
