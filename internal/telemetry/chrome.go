package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: renders a set of Traces as the Trace Event
// Format JSON that chrome://tracing and Perfetto (ui.perfetto.dev) open
// directly. Each stack becomes a "process" (pid = stack ID), each worker a
// "thread" (tid), and every request unrolls into complete ("ph":"X") events
// along the virtual timeline — one per recorded span, or synthesized coarse
// queue_wait/cpu/device phases when the request was retained without spans
// (tail outliers under 1-in-N sampling). Virtual nanoseconds map to the
// format's microsecond timestamps, so a 4.2µs request renders 4.2µs wide.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces as Chrome trace-event JSON. Traces from
// multiple stacks and workers interleave correctly: the virtual timeline is
// global, so Perfetto's track view shows queueing overlap across workers.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}

	// Stable metadata: one process_name per stack, one thread_name per
	// (stack, worker) pair.
	type tidKey struct{ pid, tid int }
	stacks := map[int]string{}
	threads := map[tidKey]bool{}
	for _, t := range traces {
		if _, ok := stacks[t.StackID]; !ok {
			stacks[t.StackID] = t.Stack
		}
		threads[tidKey{t.StackID, t.Worker}] = true
	}
	pids := make([]int, 0, len(stacks))
	for pid := range stacks {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": "stack " + stacks[pid]},
		})
	}
	tids := make([]tidKey, 0, len(threads))
	for k := range threads {
		tids = append(tids, k)
	}
	sort.Slice(tids, func(i, j int) bool {
		if tids[i].pid != tids[j].pid {
			return tids[i].pid < tids[j].pid
		}
		return tids[i].tid < tids[j].tid
	})
	for _, k := range tids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k.pid, TID: k.tid,
			Args: map[string]any{"name": "worker"},
		})
	}

	for _, t := range traces {
		doc.TraceEvents = append(doc.TraceEvents, traceToEvents(t)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// traceToEvents unrolls one request along its virtual timeline.
func traceToEvents(t Trace) []chromeEvent {
	args := map[string]any{"req_id": t.ReqID, "op": t.Op}
	if t.Err != "" {
		args["err"] = t.Err
	}
	out := make([]chromeEvent, 0, len(t.Spans)+2)
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	emit := func(name string, startNS, durNS int64) {
		if durNS < 0 {
			durNS = 0
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X",
			Ts: us(startNS), Dur: us(durNS),
			PID: t.StackID, TID: t.Worker, Args: args,
		})
	}

	arrival := int64(t.Arrival)
	start := int64(t.Start)
	end := int64(t.End)

	if len(t.Spans) == 0 {
		// Unsampled retention (tail ring / error ring): no span detail, so
		// synthesize the coarse anatomy — queue wait to service start, the
		// charged CPU, then the modeled device remainder.
		cpu := int64(t.CPU)
		emit("queue_wait", arrival, start-arrival)
		emit("cpu", start, cpu)
		if dev := end - start - cpu; dev > 0 {
			emit("device", start+cpu, dev)
		}
		return out
	}

	// Sampled retention: the span chain is the anatomy. The "ipc" charge
	// happens inside the queue-wait window; every other span plays
	// sequentially from service start.
	cursor := start
	for _, s := range t.Spans {
		if s.Stage == ipcStage {
			emit(s.Stage, arrival, int64(s.Cost))
			continue
		}
		emit(s.Stage, cursor, int64(s.Cost))
		cursor += int64(s.Cost)
	}
	if wait := start - arrival; wait > 0 {
		emit(QueueWaitStage, arrival, wait)
	}
	return out
}
