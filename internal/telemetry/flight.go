package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/vtime"
)

// Well-known flight-recorder event kinds. Kinds are dotted families so
// /events?kind=slo matches every slo.* event by prefix.
const (
	EvRuntime      = "runtime.lifecycle" // start/shutdown/crash/restart
	EvWorker       = "worker.lifecycle"  // worker activation changes
	EvRebalance    = "orchestrator.rebalance"
	EvUpgrade      = "mod.upgrade"   // live upgrade applied/failed
	EvRequestError = "request.error" // an errored request completed
	EvSLOBreach    = "slo.breach"    // a watchdog target went out of SLO
	EvSLORecover   = "slo.recover"   // a breached target came back
	EvObserve      = "obs.server"    // observability server lifecycle
	EvBundle       = "obs.bundle"    // incident diagnostic bundle captured/skipped
)

// Event is one structured flight-recorder entry: what happened, when — both
// on the host wall clock (postmortems line up with external logs) and on the
// runtime's virtual timeline (events line up with modeled request latency).
type Event struct {
	Seq    uint64            `json:"seq"`
	Wall   time.Time         `json:"wall"`
	VT     vtime.Time        `json:"vt_ns"`
	Kind   string            `json:"kind"`
	Msg    string            `json:"msg"`
	Fields map[string]string `json:"fields,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s vt=%v %s: %s", e.Seq, e.Wall.Format("15:04:05.000"), e.VT, e.Kind, e.Msg)
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, e.Fields[k])
		}
	}
	return b.String()
}

// DefaultFlightRing is the flight-recorder capacity when none is configured.
const DefaultFlightRing = 256

// FlightRecorder is a bounded ring of runtime events — the blackbox that
// gives a postmortem the *history* leading up to a fault, not just the final
// snapshot. Recording is a mutex-guarded ring store; events are rare
// (rebalances, upgrades, breaches, errors) so the data path never contends
// on it.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool

	seq      atomic.Uint64
	recorded atomic.Int64
}

// NewFlightRecorder returns a recorder holding up to capacity events
// (DefaultFlightRing if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	return &FlightRecorder{ring: make([]Event, capacity)}
}

// Record appends an event, stamping sequence and wall time. fields may be
// nil. It returns the stored event (tests and callers that also log it).
func (fr *FlightRecorder) Record(kind, msg string, vt vtime.Time, fields map[string]string) Event {
	e := Event{
		Seq:    fr.seq.Add(1),
		Wall:   time.Now(),
		VT:     vt,
		Kind:   kind,
		Msg:    msg,
		Fields: fields,
	}
	fr.mu.Lock()
	fr.ring[fr.next] = e
	fr.next++
	if fr.next == len(fr.ring) {
		fr.next = 0
		fr.full = true
	}
	fr.mu.Unlock()
	fr.recorded.Add(1)
	return e
}

// Recordf is Record with a formatted message and no fields.
func (fr *FlightRecorder) Recordf(kind string, vt vtime.Time, format string, args ...any) Event {
	return fr.Record(kind, fmt.Sprintf(format, args...), vt, nil)
}

// Recorded returns the total number of events recorded (including evicted).
func (fr *FlightRecorder) Recorded() int64 { return fr.recorded.Load() }

// Cap returns the ring capacity.
func (fr *FlightRecorder) Cap() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.ring)
}

// Recent returns the retained events, oldest first.
func (fr *FlightRecorder) Recent() []Event {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if !fr.full {
		out := make([]Event, fr.next)
		copy(out, fr.ring[:fr.next])
		return out
	}
	out := make([]Event, 0, len(fr.ring))
	out = append(out, fr.ring[fr.next:]...)
	out = append(out, fr.ring[:fr.next]...)
	return out
}

// Filter returns the retained events whose Kind matches the given dotted
// prefix ("slo" matches "slo.breach"; "" matches everything), oldest first.
func (fr *FlightRecorder) Filter(kindPrefix string) []Event {
	all := fr.Recent()
	if kindPrefix == "" {
		return all
	}
	out := all[:0]
	for _, e := range all {
		if e.Kind == kindPrefix || strings.HasPrefix(e.Kind, kindPrefix+".") {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events to w as log lines, oldest first — the
// panic/fatal-error postmortem path.
func (fr *FlightRecorder) Dump(w io.Writer) {
	events := fr.Recent()
	fmt.Fprintf(w, "=== flight recorder: %d retained of %d recorded ===\n", len(events), fr.Recorded())
	for _, e := range events {
		fmt.Fprintln(w, e.String())
	}
}
