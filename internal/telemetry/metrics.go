// Package telemetry is the runtime observability layer: a lock-cheap
// metrics registry (atomic counters and gauges plus log2 latency
// histograms from internal/stats) and a structured request tracer that
// turns sampled requests into spans — request ID, stack, per-stage
// enter/exit in virtual time, queue wait, worker ID — kept in a bounded
// in-memory ring with an optional pluggable sink.
//
// The paper's Work Orchestrator (§III-C) consumes per-queue latency and
// compute estimates, and the whole evaluation (§IV "Anatomy of I/O") is
// built on per-stage measurements; this package is the machinery that
// makes those measurements available from a running Runtime rather than
// from ad-hoc prints. Metric writes on hot paths are single atomic adds;
// histograms and traces are only touched for sampled requests.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"labstor/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a concurrent name → metric registry. Lookups are sync.Map
// reads; callers on hot paths should cache the returned metric pointer at
// setup time so the per-event cost is one atomic add.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Add increments the named counter by n.
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named log2 histogram, creating it on first use.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*stats.Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &stats.Histogram{})
	return v.(*stats.Histogram)
}

// Observe records v into the named histogram.
func (r *Registry) Observe(name string, v float64) { r.Histogram(name).Observe(v) }

// HistogramSnapshot is a histogram's summarized state: count, mean, the
// exact min/max, and the quantile ladder SLO evaluation and the Prometheus
// exposition both consume (so neither re-derives quantiles from buckets).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// MetricsSnapshot is a point-in-time copy of every registered metric.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all metrics. The maps are freshly allocated and safe to
// retain; zero-valued counters created but never incremented are included
// (the name set documents what is instrumented), but histograms with no
// observations are omitted — an empty distribution has no summary.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.counters.Range(func(k, v any) bool {
		snap.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		snap.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*stats.Histogram)
		st := h.State()
		if st.Count == 0 {
			return true
		}
		snap.Histograms[k.(string)] = HistogramSnapshot{
			Count: st.Count,
			Mean:  st.Mean(),
			Min:   st.Min,
			P50:   st.Quantile(0.5),
			P90:   st.Quantile(0.9),
			P99:   st.Quantile(0.99),
			P999:  st.Quantile(0.999),
			Max:   st.Max,
		}
		return true
	})
	return snap
}

// SortedKeys returns the keys of a snapshot map in stable order (for
// rendering and tests).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
