package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CopyCounter is a process-global counter for one data-path memcpy site.
// The zero-copy work (PAPER Fig. 6: shared-memory queue pairs exist so
// payloads never cross a boundary by copy) audits every remaining copy in
// the stack; each site registers one CopyCounter at package init and does
// a single atomic add per copy, so the accounting itself costs nothing
// measurable on the hot path.
//
// Counters live in telemetry — not core — because both internal/core and
// internal/device report copies, and core imports device (Env.Devices),
// so device cannot import core without a cycle.
type CopyCounter struct {
	site  string
	count atomic.Int64
	bytes atomic.Int64
}

// Add records one copy of n bytes at this site.
func (c *CopyCounter) Add(n int) {
	c.count.Add(1)
	c.bytes.Add(int64(n))
}

// Site returns the site name.
func (c *CopyCounter) Site() string { return c.site }

// Count returns how many copies this site has performed.
func (c *CopyCounter) Count() int64 { return c.count.Load() }

// Bytes returns how many bytes this site has copied.
func (c *CopyCounter) Bytes() int64 { return c.bytes.Load() }

var copySites struct {
	mu   sync.Mutex
	list []*CopyCounter
	byID map[string]*CopyCounter
}

// CopySite registers (or returns the existing) counter for a named copy
// site. Names are "package.site", e.g. "device.dma_read" or
// "lru.hit_copy_out". Call once at package init and cache the pointer.
func CopySite(name string) *CopyCounter {
	copySites.mu.Lock()
	defer copySites.mu.Unlock()
	if copySites.byID == nil {
		copySites.byID = make(map[string]*CopyCounter)
	}
	if c, ok := copySites.byID[name]; ok {
		return c
	}
	c := &CopyCounter{site: name}
	copySites.byID[name] = c
	copySites.list = append(copySites.list, c)
	return c
}

// CopySiteStat is a point-in-time reading of one copy site.
type CopySiteStat struct {
	Site  string `json:"site"`
	Count int64  `json:"count"`
	Bytes int64  `json:"bytes"`
}

// CopySiteStats snapshots every registered copy site, sorted by name.
// Sites that have never fired are included so the set documents what is
// instrumented.
func CopySiteStats() []CopySiteStat {
	copySites.mu.Lock()
	list := make([]*CopyCounter, len(copySites.list))
	copy(list, copySites.list)
	copySites.mu.Unlock()
	out := make([]CopySiteStat, 0, len(list))
	for _, c := range list {
		out = append(out, CopySiteStat{Site: c.site, Count: c.Count(), Bytes: c.Bytes()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// CopyTotals sums count and bytes across all sites. Benchmarks diff two
// calls around a workload to compute copies/op.
func CopyTotals() (count, bytes int64) {
	for _, s := range CopySiteStats() {
		count += s.Count
		bytes += s.Bytes
	}
	return count, bytes
}
