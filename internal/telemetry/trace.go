package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"labstor/internal/vtime"
)

// Span is one pipeline stage a traced request crossed, with the virtual
// time it charged (the request "anatomy" of the paper's Fig. 4a).
type Span struct {
	Stage string         `json:"stage"`
	Cost  vtime.Duration `json:"cost_ns"`
}

// Trace is one sampled request's end-to-end record: identity, routing
// (stack, queue, worker), virtual-time milestones and the per-stage spans.
type Trace struct {
	ReqID   uint64 `json:"req_id"`
	Op      string `json:"op"`
	Stack   string `json:"stack"`
	StackID int    `json:"stack_id"`
	Queue   int    `json:"queue"`
	Worker  int    `json:"worker"`

	Arrival vtime.Time `json:"arrival_ns"` // client submission (virtual)
	Start   vtime.Time `json:"start_ns"`   // worker began service (virtual)
	End     vtime.Time `json:"end_ns"`     // request clock at completion

	// QueueWait is Start-Arrival: queue-op + IPC charges plus time the
	// request sat behind other work on the worker's virtual clock.
	QueueWait vtime.Duration `json:"queue_wait_ns"`
	CPU       vtime.Duration `json:"cpu_ns"`

	Err   string `json:"err,omitempty"`
	Spans []Span `json:"spans"`
}

// Latency returns the trace's modeled end-to-end latency.
func (t Trace) Latency() vtime.Duration { return t.End.Sub(t.Arrival) }

// String renders a one-line summary plus the span chain.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "req#%d %s stack=%s queue=%d worker=%d lat=%s wait=%s cpu=%s",
		t.ReqID, t.Op, t.Stack, t.Queue, t.Worker, t.Latency(), t.QueueWait, t.CPU)
	if t.Err != "" {
		fmt.Fprintf(&b, " err=%q", t.Err)
	}
	for _, s := range t.Spans {
		fmt.Fprintf(&b, " | %s=%s", s.Stage, s.Cost)
	}
	return b.String()
}

// Sink receives every captured trace synchronously. Implementations must be
// safe for concurrent use; captures happen on worker goroutines for sampled
// requests only.
type Sink interface {
	Emit(Trace)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Trace)

// Emit calls f.
func (f SinkFunc) Emit(t Trace) { f(t) }

// DefaultTraceRing is the trace ring capacity when none is configured.
const DefaultTraceRing = 256

// DefaultErrorRing is the error-trace ring capacity when none is configured.
const DefaultErrorRing = 64

// Tracer keeps a bounded ring of the most recent traces and forwards each
// capture to an optional sink. Errored traces are additionally retained in
// a separate bounded ring, independent of sampling: failures are the traces
// a debugger needs most, and with 1-in-N sampling they would otherwise
// almost always be lost.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next int
	full bool

	errMu   sync.Mutex
	errRing []Trace
	errNext int
	errFull bool

	captured  atomic.Int64
	errCaught atomic.Int64

	sinkMu sync.RWMutex
	sink   Sink
}

// NewTracer returns a tracer holding up to capacity traces (DefaultTraceRing
// if capacity <= 0) plus an error ring of DefaultErrorRing traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		ring:    make([]Trace, capacity),
		errRing: make([]Trace, DefaultErrorRing),
	}
}

// SetSink installs (or, with nil, removes) the trace sink.
func (tr *Tracer) SetSink(s Sink) {
	tr.sinkMu.Lock()
	tr.sink = s
	tr.sinkMu.Unlock()
}

// Capture appends a trace to the ring, evicting the oldest when full, and
// forwards it to the sink. Errored traces are mirrored into the error ring.
func (tr *Tracer) Capture(t Trace) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()
	tr.captured.Add(1)
	if t.Err != "" {
		tr.pushError(t)
	}

	tr.sinkMu.RLock()
	s := tr.sink
	tr.sinkMu.RUnlock()
	if s != nil {
		s.Emit(t)
	}
}

// CaptureError retains a trace in the error ring only (and forwards it to
// the sink). Workers call this for errored requests that were *not* picked
// by the 1-in-N sampler, so every failure is observable regardless of the
// sampling period.
func (tr *Tracer) CaptureError(t Trace) {
	tr.pushError(t)
	tr.sinkMu.RLock()
	s := tr.sink
	tr.sinkMu.RUnlock()
	if s != nil {
		s.Emit(t)
	}
}

func (tr *Tracer) pushError(t Trace) {
	tr.errMu.Lock()
	tr.errRing[tr.errNext] = t
	tr.errNext++
	if tr.errNext == len(tr.errRing) {
		tr.errNext = 0
		tr.errFull = true
	}
	tr.errMu.Unlock()
	tr.errCaught.Add(1)
}

// Captured returns the total number of traces captured (including evicted).
func (tr *Tracer) Captured() int64 { return tr.captured.Load() }

// ErrorsCaptured returns the total number of errored traces retained in the
// error ring (including evicted).
func (tr *Tracer) ErrorsCaptured() int64 { return tr.errCaught.Load() }

// RecentErrors returns the retained errored traces, oldest first.
func (tr *Tracer) RecentErrors() []Trace {
	tr.errMu.Lock()
	defer tr.errMu.Unlock()
	if !tr.errFull {
		out := make([]Trace, tr.errNext)
		copy(out, tr.errRing[:tr.errNext])
		return out
	}
	out := make([]Trace, 0, len(tr.errRing))
	out = append(out, tr.errRing[tr.errNext:]...)
	out = append(out, tr.errRing[:tr.errNext]...)
	return out
}

// Recent returns the retained traces, oldest first.
func (tr *Tracer) Recent() []Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.full {
		out := make([]Trace, tr.next)
		copy(out, tr.ring[:tr.next])
		return out
	}
	out := make([]Trace, 0, len(tr.ring))
	out = append(out, tr.ring[tr.next:]...)
	out = append(out, tr.ring[:tr.next]...)
	return out
}

// Cap returns the ring capacity.
func (tr *Tracer) Cap() int { return len(tr.ring) }
