package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"labstor/internal/vtime"
)

// Span is one pipeline stage a traced request crossed, with the virtual
// time it charged (the request "anatomy" of the paper's Fig. 4a).
type Span struct {
	Stage string         `json:"stage"`
	Cost  vtime.Duration `json:"cost_ns"`
}

// Trace is one sampled request's end-to-end record: identity, routing
// (stack, queue, worker), virtual-time milestones and the per-stage spans.
type Trace struct {
	ReqID   uint64 `json:"req_id"`
	Op      string `json:"op"`
	Stack   string `json:"stack"`
	StackID int    `json:"stack_id"`
	Queue   int    `json:"queue"`
	Worker  int    `json:"worker"`

	Arrival vtime.Time `json:"arrival_ns"` // client submission (virtual)
	Start   vtime.Time `json:"start_ns"`   // worker began service (virtual)
	End     vtime.Time `json:"end_ns"`     // request clock at completion

	// QueueWait is Start-Arrival: queue-op + IPC charges plus time the
	// request sat behind other work on the worker's virtual clock.
	QueueWait vtime.Duration `json:"queue_wait_ns"`
	CPU       vtime.Duration `json:"cpu_ns"`

	Err   string `json:"err,omitempty"`
	Spans []Span `json:"spans"`
}

// Latency returns the trace's modeled end-to-end latency.
func (t Trace) Latency() vtime.Duration { return t.End.Sub(t.Arrival) }

// String renders a one-line summary plus the span chain.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "req#%d %s stack=%s queue=%d worker=%d lat=%s wait=%s cpu=%s",
		t.ReqID, t.Op, t.Stack, t.Queue, t.Worker, t.Latency(), t.QueueWait, t.CPU)
	if t.Err != "" {
		fmt.Fprintf(&b, " err=%q", t.Err)
	}
	for _, s := range t.Spans {
		fmt.Fprintf(&b, " | %s=%s", s.Stage, s.Cost)
	}
	return b.String()
}

// Sink receives every captured trace synchronously. Implementations must be
// safe for concurrent use; captures happen on worker goroutines for sampled
// requests only.
type Sink interface {
	Emit(Trace)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Trace)

// Emit calls f.
func (f SinkFunc) Emit(t Trace) { f(t) }

// DefaultTraceRing is the trace ring capacity when none is configured.
const DefaultTraceRing = 256

// DefaultErrorRing is the error-trace ring capacity when none is configured.
const DefaultErrorRing = 64

// DefaultTailRing is the tail-outlier ring capacity when none is configured.
const DefaultTailRing = 64

// Tracer keeps a bounded ring of the most recent traces and forwards each
// capture to an optional sink. Errored traces are additionally retained in
// a separate bounded ring, independent of sampling: failures are the traces
// a debugger needs most, and with 1-in-N sampling they would otherwise
// almost always be lost.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next int
	full bool

	errMu   sync.Mutex
	errRing []Trace
	errNext int
	errFull bool

	// Tail ring: outlier traces retained because their latency crossed the
	// rolling per-stack quantile threshold, independent of 1-in-N sampling.
	tailMu   sync.Mutex
	tailRing []Trace
	tailNext int
	tailFull bool

	captured   atomic.Int64
	errCaught  atomic.Int64
	tailCaught atomic.Int64

	sinkMu sync.RWMutex
	sink   Sink
}

// NewTracer returns a tracer holding up to capacity traces (DefaultTraceRing
// if capacity <= 0) plus an error ring of DefaultErrorRing traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		ring:     make([]Trace, capacity),
		errRing:  make([]Trace, DefaultErrorRing),
		tailRing: make([]Trace, DefaultTailRing),
	}
}

// SetTailRing resizes the tail-outlier ring: 0 restores DefaultTailRing, a
// negative capacity disables tail retention entirely. Existing tail traces
// are dropped. Call before traffic starts (the runtime does this while
// booting).
func (tr *Tracer) SetTailRing(capacity int) {
	tr.tailMu.Lock()
	defer tr.tailMu.Unlock()
	switch {
	case capacity < 0:
		tr.tailRing = nil
	case capacity == 0:
		tr.tailRing = make([]Trace, DefaultTailRing)
	default:
		tr.tailRing = make([]Trace, capacity)
	}
	tr.tailNext, tr.tailFull = 0, false
}

// SetSink installs (or, with nil, removes) the trace sink.
func (tr *Tracer) SetSink(s Sink) {
	tr.sinkMu.Lock()
	tr.sink = s
	tr.sinkMu.Unlock()
}

// Capture appends a trace to the ring, evicting the oldest when full, and
// forwards it to the sink. Errored traces are mirrored into the error ring.
func (tr *Tracer) Capture(t Trace) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()
	tr.captured.Add(1)
	if t.Err != "" {
		tr.pushError(t)
	}

	tr.sinkMu.RLock()
	s := tr.sink
	tr.sinkMu.RUnlock()
	if s != nil {
		s.Emit(t)
	}
}

// CaptureError retains a trace in the error ring only (and forwards it to
// the sink). Workers call this for errored requests that were *not* picked
// by the 1-in-N sampler, so every failure is observable regardless of the
// sampling period.
func (tr *Tracer) CaptureError(t Trace) {
	tr.pushError(t)
	tr.sinkMu.RLock()
	s := tr.sink
	tr.sinkMu.RUnlock()
	if s != nil {
		s.Emit(t)
	}
}

// CaptureTail retains an outlier trace in the tail ring. It deliberately
// does NOT forward to the sink: a request that is both sampled and a tail
// outlier already emits once via Capture, and the sink's contract is one
// emit per request. Returns false when tail retention is disabled.
func (tr *Tracer) CaptureTail(t Trace) bool {
	tr.tailMu.Lock()
	if tr.tailRing == nil {
		tr.tailMu.Unlock()
		return false
	}
	tr.tailRing[tr.tailNext] = t
	tr.tailNext++
	if tr.tailNext == len(tr.tailRing) {
		tr.tailNext = 0
		tr.tailFull = true
	}
	tr.tailMu.Unlock()
	tr.tailCaught.Add(1)
	return true
}

func (tr *Tracer) pushError(t Trace) {
	tr.errMu.Lock()
	tr.errRing[tr.errNext] = t
	tr.errNext++
	if tr.errNext == len(tr.errRing) {
		tr.errNext = 0
		tr.errFull = true
	}
	tr.errMu.Unlock()
	tr.errCaught.Add(1)
}

// Captured returns the total number of traces captured (including evicted).
func (tr *Tracer) Captured() int64 { return tr.captured.Load() }

// ErrorsCaptured returns the total number of errored traces retained in the
// error ring (including evicted).
func (tr *Tracer) ErrorsCaptured() int64 { return tr.errCaught.Load() }

// TailCaptured returns the total number of tail-outlier traces retained
// (including evicted).
func (tr *Tracer) TailCaptured() int64 { return tr.tailCaught.Load() }

// RecentTail returns the retained tail-outlier traces, oldest first (nil
// when tail retention is disabled).
func (tr *Tracer) RecentTail() []Trace {
	tr.tailMu.Lock()
	defer tr.tailMu.Unlock()
	if tr.tailRing == nil {
		return nil
	}
	if !tr.tailFull {
		out := make([]Trace, tr.tailNext)
		copy(out, tr.tailRing[:tr.tailNext])
		return out
	}
	out := make([]Trace, 0, len(tr.tailRing))
	out = append(out, tr.tailRing[tr.tailNext:]...)
	out = append(out, tr.tailRing[:tr.tailNext]...)
	return out
}

// RecentErrors returns the retained errored traces, oldest first.
func (tr *Tracer) RecentErrors() []Trace {
	tr.errMu.Lock()
	defer tr.errMu.Unlock()
	if !tr.errFull {
		out := make([]Trace, tr.errNext)
		copy(out, tr.errRing[:tr.errNext])
		return out
	}
	out := make([]Trace, 0, len(tr.errRing))
	out = append(out, tr.errRing[tr.errNext:]...)
	out = append(out, tr.errRing[:tr.errNext]...)
	return out
}

// Recent returns the retained traces, oldest first.
func (tr *Tracer) Recent() []Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.full {
		out := make([]Trace, tr.next)
		copy(out, tr.ring[:tr.next])
		return out
	}
	out := make([]Trace, 0, len(tr.ring))
	out = append(out, tr.ring[tr.next:]...)
	out = append(out, tr.ring[:tr.next]...)
	return out
}

// Cap returns the ring capacity.
func (tr *Tracer) Cap() int { return len(tr.ring) }
