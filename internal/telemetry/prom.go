package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (the /metrics endpoint), hand-rolled against
// the text format spec — no client library dependency.
//
// Registry names map to Prometheus families as `labstor_<sanitized name>`.
// A registry name may carry labels after a ';' separator:
//
//	"slo.ok;stack=fs::/probe"  →  labstor_slo_ok{stack="fs::/probe"}
//
// so per-stack gauge families render as one family with a stack label
// instead of N mangled names. Histograms render as summaries: quantile
// series from the snapshot's precomputed ladder plus _sum and _count.

// promName sanitizes a registry name into a legal Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("labstor_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// splitSeries splits a registry name into its family part and rendered
// label pairs ("k1=\"v1\",k2=\"v2\"", possibly empty).
func splitSeries(name string) (family, labels string) {
	base, rest, ok := strings.Cut(name, ";")
	if !ok {
		return base, ""
	}
	var pairs []string
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			continue
		}
		pairs = append(pairs, fmt.Sprintf("%s=\"%s\"", promName(k)[len("labstor_"):], promLabelValue(v)))
	}
	sort.Strings(pairs)
	return base, strings.Join(pairs, ",")
}

// promValue formats a float without exponent noise for integral values.
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promSeries struct {
	labels string
	render func(w io.Writer, fam, labels string)
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format, families sorted by name and series sorted by labels
// within each family (stable output for golden tests and diffable scrapes).
func WritePrometheus(w io.Writer, snap MetricsSnapshot) {
	type family struct {
		typ    string
		series []promSeries
	}
	fams := make(map[string]*family)
	add := func(name, typ string, render func(w io.Writer, fam, labels string)) {
		base, labels := splitSeries(name)
		fam := promName(base)
		f, ok := fams[fam]
		if !ok {
			f = &family{typ: typ}
			fams[fam] = f
		}
		f.series = append(f.series, promSeries{labels: labels, render: render})
	}

	for name, v := range snap.Counters {
		v := v
		add(name, "counter", func(w io.Writer, fam, labels string) {
			fmt.Fprintf(w, "%s%s %d\n", fam, braced(labels), v)
		})
	}
	for name, v := range snap.Gauges {
		v := v
		add(name, "gauge", func(w io.Writer, fam, labels string) {
			fmt.Fprintf(w, "%s%s %d\n", fam, braced(labels), v)
		})
	}
	for name, h := range snap.Histograms {
		h := h
		add(name, "summary", func(w io.Writer, fam, labels string) {
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}, {"0.999", h.P999}, {"1", h.Max}} {
				ql := fmt.Sprintf("quantile=%q", q.q)
				if labels != "" {
					ql = labels + "," + ql
				}
				fmt.Fprintf(w, "%s{%s} %s\n", fam, ql, promValue(q.v))
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", fam, braced(labels), promValue(h.Mean*float64(h.Count)))
			fmt.Fprintf(w, "%s_count%s %d\n", fam, braced(labels), h.Count)
		})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fam := range names {
		f := fams[fam]
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, f.typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			s.render(w, fam, s.labels)
		}
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
