package telemetry

import (
	"strings"
	"sync"
	"testing"

	"labstor/internal/vtime"
)

func TestFlightRecorderRingBounded(t *testing.T) {
	fr := NewFlightRecorder(4)
	if fr.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", fr.Cap())
	}
	for i := 0; i < 10; i++ {
		fr.Record(EvWorker, "tick", vtime.Time(i), nil)
	}
	if fr.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", fr.Recorded())
	}
	recent := fr.Recent()
	if len(recent) != 4 {
		t.Fatalf("retained %d events, want 4", len(recent))
	}
	// Oldest-first and monotonically sequenced: survivors are seq 7..10.
	for i, want := range []uint64{7, 8, 9, 10} {
		if recent[i].Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, recent[i].Seq, want)
		}
	}
}

func TestFlightRecorderPartialAndDefaults(t *testing.T) {
	fr := NewFlightRecorder(0)
	if fr.Cap() != DefaultFlightRing {
		t.Fatalf("default cap %d, want %d", fr.Cap(), DefaultFlightRing)
	}
	fr.Recordf(EvRebalance, 5, "moved %d queues", 3)
	fr.Record(EvSLOBreach, "p99 over", 9, map[string]string{"stack": "fs::/a"})
	recent := fr.Recent()
	if len(recent) != 2 {
		t.Fatalf("retained %d, want 2", len(recent))
	}
	if recent[0].Msg != "moved 3 queues" || recent[0].VT != 5 {
		t.Fatalf("recordf event = %+v", recent[0])
	}
	s := recent[1].String()
	for _, want := range []string{EvSLOBreach, "p99 over", "stack=fs::/a"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q, missing %q", s, want)
		}
	}
}

func TestFlightRecorderFilter(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(EvSLOBreach, "b", 1, nil)
	fr.Record(EvSLORecover, "r", 2, nil)
	fr.Record(EvUpgrade, "u", 3, nil)
	if got := len(fr.Filter("slo")); got != 2 {
		t.Fatalf("Filter(slo) = %d events, want 2", got)
	}
	if got := len(fr.Filter("slo.breach")); got != 1 {
		t.Fatalf("Filter(slo.breach) = %d events, want 1", got)
	}
	if got := len(fr.Filter("")); got != 3 {
		t.Fatalf("Filter(\"\") = %d events, want 3", got)
	}
	// Prefixes match dotted families, not raw substrings.
	if got := len(fr.Filter("sl")); got != 0 {
		t.Fatalf("Filter(sl) = %d events, want 0", got)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(EvRuntime, "started", 0, nil)
	fr.Record(EvRequestError, "boom", 7, map[string]string{"op": "read"})
	var b strings.Builder
	fr.Dump(&b)
	out := b.String()
	for _, want := range []string{"flight recorder", "started", "boom", "op=read"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump output missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Record(EvWorker, "tick", vtime.Time(i), nil)
				if i%100 == 0 {
					_ = fr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	if fr.Recorded() != 4000 {
		t.Fatalf("Recorded = %d, want 4000", fr.Recorded())
	}
	if len(fr.Recent()) != 32 {
		t.Fatalf("retained %d, want 32", len(fr.Recent()))
	}
}

func TestTracerErrorRing(t *testing.T) {
	tr := NewTracer(4)
	// Sampled captures with errors are mirrored into the error ring.
	errTrace := mkTrace(1)
	errTrace.Err = "EIO"
	tr.Capture(errTrace)
	tr.Capture(mkTrace(2)) // clean: main ring only
	// Unsampled errors land in the error ring without touching the main ring.
	only := mkTrace(3)
	only.Err = "ENOSPC"
	tr.CaptureError(only)

	if got := tr.ErrorsCaptured(); got != 2 {
		t.Fatalf("ErrorsCaptured = %d, want 2", got)
	}
	errs := tr.RecentErrors()
	if len(errs) != 2 || errs[0].ReqID != 1 || errs[1].ReqID != 3 {
		t.Fatalf("RecentErrors = %+v", errs)
	}
	if got := len(tr.Recent()); got != 2 {
		t.Fatalf("main ring has %d traces, want 2 (CaptureError leaked in)", got)
	}
}

func TestTracerErrorRingBoundedAndSink(t *testing.T) {
	tr := NewTracer(2)
	var sunk int
	tr.SetSink(SinkFunc(func(Trace) { sunk++ }))
	for i := uint64(1); i <= uint64(DefaultErrorRing)+5; i++ {
		tc := mkTrace(i)
		tc.Err = "EIO"
		tr.CaptureError(tc)
	}
	errs := tr.RecentErrors()
	if len(errs) != DefaultErrorRing {
		t.Fatalf("error ring retained %d, want %d", len(errs), DefaultErrorRing)
	}
	if errs[len(errs)-1].ReqID != uint64(DefaultErrorRing)+5 {
		t.Fatalf("last error ReqID = %d", errs[len(errs)-1].ReqID)
	}
	if sunk != DefaultErrorRing+5 {
		t.Fatalf("sink saw %d error traces", sunk)
	}
}
