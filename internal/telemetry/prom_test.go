package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedSnapshot builds a deterministic snapshot exercising the renderer's
// corners: name sanitization, label splitting, label-value escaping, and
// the summary quantile ladder.
func fixedSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Counters: map[string]int64{
			"client.submitted":              120,
			"slo.breaches":                  3,
			"stack.errors;stack=fs::/a":     2,
			"stack.errors;stack=kv::/b":     0,
			"weird-name.$x;path=a\"b\\c\nd": 1,
		},
		Gauges: map[string]int64{
			"orchestrator.active_workers": 4,
			"slo.ok;stack=fs::/a":         1,
		},
		Histograms: map[string]HistogramSnapshot{
			"request.latency_us":            {Count: 100, Mean: 12.5, Min: 1, P50: 10, P90: 20, P99: 30, P999: 40, Max: 50},
			"stack.latency_us;stack=fs::/a": {Count: 4, Mean: 2, Min: 1, P50: 2, P90: 3, P99: 3, P999: 3, Max: 3},
		},
	}
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, fixedSnapshot())
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Exposition-format grammar: every non-comment line is `name{labels} value`
// with legal metric names, label names and escaped label values.
var (
	promMetricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$`)
	promTypeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

// validatePrometheus parses an exposition body, returning the families
// declared and failing t on any malformed line. Shared with the obs server
// test via the exported-for-test helper pattern (the server test re-declares
// the same grammar; both must accept real scrapes).
func validatePrometheus(t *testing.T, body string) map[string]string {
	t.Helper()
	families := map[string]string{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", i+1)
		}
		if strings.HasPrefix(line, "#") {
			m := promTypeLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment/TYPE line: %q", i+1, line)
			}
			if _, dup := families[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE declaration for %s", i+1, m[1])
			}
			families[m[1]] = m[2]
			continue
		}
		m := promMetricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample line: %q", i+1, line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := families[name]; !ok {
			if _, ok := families[base]; !ok {
				t.Fatalf("line %d: sample %q precedes or lacks its TYPE declaration", i+1, name)
			}
		}
	}
	return families
}

func TestPrometheusValidExposition(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, fixedSnapshot())
	families := validatePrometheus(t, b.String())

	for fam, typ := range map[string]string{
		"labstor_client_submitted":            "counter",
		"labstor_slo_breaches":                "counter",
		"labstor_stack_errors":                "counter",
		"labstor_weird_name__x":               "counter",
		"labstor_orchestrator_active_workers": "gauge",
		"labstor_slo_ok":                      "gauge",
		"labstor_request_latency_us":          "summary",
		"labstor_stack_latency_us":            "summary",
	} {
		if families[fam] != typ {
			t.Fatalf("family %s = %q, want %q (families: %v)", fam, families[fam], typ, families)
		}
	}
}

func TestPrometheusLabelsAndEscaping(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, fixedSnapshot())
	out := b.String()

	for _, want := range []string{
		`labstor_stack_errors{stack="fs::/a"} 2`,
		`labstor_slo_ok{stack="fs::/a"} 1`,
		`labstor_stack_latency_us{stack="fs::/a",quantile="0.5"} 2`,
		`labstor_stack_latency_us_count{stack="fs::/a"} 4`,
		`labstor_weird_name__x{path="a\"b\\c\nd"} 1`,
		`labstor_request_latency_us{quantile="0.999"} 40`,
		"labstor_request_latency_us_sum 1250\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, MetricsSnapshot{})
	if b.Len() != 0 {
		t.Fatalf("empty snapshot rendered %q", b.String())
	}
}
