package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"labstor/internal/stats"
)

// This file is the latency-attribution half of the telemetry layer: an
// always-on aggregator that folds *every* completed request's coarse anatomy
// (latency = queue wait + CPU + device) into per-stack/per-op tables, plus
// the sampled per-stage detail (p50/p99 per stage, share of total latency)
// that the 1-in-N tracer feeds it. The paper's Fig. 4 "request anatomy"
// argument is that a userspace stack lets you *see* where each microsecond
// goes; Profile is that visibility as a queryable table rather than a
// one-off experiment.
//
// Hot-path discipline: workers never touch Profile directly. Each worker
// owns a Folder — a single-goroutine delta accumulator whose Fold is a few
// plain (non-atomic) integer adds against a cached slot — and publishes the
// deltas into the shared atomics every folderFlushEvery requests or when the
// worker goes idle. The per-request cost is nanoseconds; the shared
// cachelines are touched ~1/256th as often as the request rate.

// maxProfiledOps bounds the per-op table (core.Op values fit comfortably).
const maxProfiledOps = 32

// folderFlushEvery is how many folded requests a Folder batches before
// publishing deltas to the shared Profile.
const folderFlushEvery = 256

// opAgg is one (stack, op) cell of always-on accumulators. Device time is
// not stored: latency = queue wait + CPU + device holds per request, and the
// identity is linear, so the device sum is derived at read time.
type opAgg struct {
	count  atomic.Int64
	errs   atomic.Int64
	latNS  atomic.Int64
	waitNS atomic.Int64
	cpuNS  atomic.Int64
}

// stageAgg is one pipeline stage's sampled cost distribution within a stack.
type stageAgg struct {
	count atomic.Int64
	sumNS atomic.Int64
	hist  stats.Histogram // microseconds
}

// StackProfile is one stack's attribution state inside a Profile.
type StackProfile struct {
	stackID int
	mount   string

	ops     [maxProfiledOps]opAgg
	opNames [maxProfiledOps]atomic.Pointer[string]

	// Sampled-span detail (only the 1-in-N traced requests reach these).
	stages        sync.Map // stage string -> *stageAgg
	sampled       atomic.Int64
	sampledLatNS  atomic.Int64
	sampledWaitNS atomic.Int64
	waitHist      stats.Histogram // queue-wait µs of sampled requests

	tailRetained atomic.Int64
}

func (sp *StackProfile) stageFor(name string) *stageAgg {
	if v, ok := sp.stages.Load(name); ok {
		return v.(*stageAgg)
	}
	v, _ := sp.stages.LoadOrStore(name, &stageAgg{})
	return v.(*stageAgg)
}

// Profile is the shared, concurrent attribution table: stack ID → per-op
// always-on accumulators + sampled per-stage detail. Writers are worker
// Folders (batched deltas) and the sampled-trace path; readers are the
// /profile endpoint, the snapshot tree and `labctl profile`.
type Profile struct {
	stacks sync.Map // int -> *StackProfile
}

// NewProfile returns an empty attribution table.
func NewProfile() *Profile { return &Profile{} }

func (p *Profile) stackFor(stackID int, mount string) *StackProfile {
	if v, ok := p.stacks.Load(stackID); ok {
		return v.(*StackProfile)
	}
	v, _ := p.stacks.LoadOrStore(stackID, &StackProfile{stackID: stackID, mount: mount})
	return v.(*StackProfile)
}

// FoldSpans folds one sampled trace's per-stage spans and queue wait into
// the stack's sampled-detail tables. Called on the 1-in-N sampled path only,
// so histogram inserts here are amortized by the sampling period.
func (p *Profile) FoldSpans(stackID int, mount string, t Trace) {
	sp := p.stackFor(stackID, mount)
	sp.sampled.Add(1)
	sp.sampledLatNS.Add(int64(t.Latency()))
	sp.sampledWaitNS.Add(int64(t.QueueWait))
	sp.waitHist.Observe(t.QueueWait.Micros())
	for _, s := range t.Spans {
		sa := sp.stageFor(s.Stage)
		sa.count.Add(1)
		sa.sumNS.Add(int64(s.Cost))
		sa.hist.Observe(s.Cost.Micros())
	}
}

// TailNote counts one tail-retained outlier against the stack.
func (p *Profile) TailNote(stackID int, mount string) {
	p.stackFor(stackID, mount).tailRetained.Add(1)
}

// --- Folder: worker-local delta accumulation ---------------------------------

type folderSlot struct {
	stackID int
	mount   string
	op      uint8

	count, errs          int64
	latNS, waitNS, cpuNS int64
}

// Folder is a single-goroutine (worker-owned) accumulator in front of a
// Profile. Fold is the always-on per-request hot path: a cached-slot lookup
// plus plain integer adds — no atomics, no locks, no allocation. Deltas
// reach the shared Profile on Flush, which the owner calls when idle and
// which Fold triggers itself every folderFlushEvery requests.
//
// A Folder must only ever be used from one goroutine.
type Folder struct {
	p      *Profile
	opName func(uint8) string

	cur     *folderSlot
	curKey  uint32
	slots   map[uint32]*folderSlot
	pending int
}

// NewFolder returns a Folder publishing into p. opName resolves an op code
// to its display name; it is called once per (stack, op) slot, never on the
// per-request path.
func (p *Profile) NewFolder(opName func(uint8) string) *Folder {
	return &Folder{p: p, opName: opName, slots: make(map[uint32]*folderSlot)}
}

// Fold accumulates one completed request. latNS/waitNS/cpuNS are the
// request's modeled end-to-end latency, queue wait (arrival → service
// start) and charged CPU time within service; device time is derived as
// lat - wait - cpu.
func (f *Folder) Fold(stackID int, mount string, op uint8, latNS, waitNS, cpuNS int64, errored bool) {
	key := uint32(stackID)<<8 | uint32(op)
	s := f.cur
	if s == nil || f.curKey != key {
		s = f.slotFor(key, stackID, mount, op)
	}
	s.count++
	if errored {
		s.errs++
	}
	s.latNS += latNS
	s.waitNS += waitNS
	s.cpuNS += cpuNS
	f.pending++
	if f.pending >= folderFlushEvery {
		f.Flush()
	}
}

func (f *Folder) slotFor(key uint32, stackID int, mount string, op uint8) *folderSlot {
	s, ok := f.slots[key]
	if !ok {
		s = &folderSlot{stackID: stackID, mount: mount, op: op}
		f.slots[key] = s
	}
	f.cur, f.curKey = s, key
	return s
}

// Pending returns the number of folded requests not yet published.
func (f *Folder) Pending() int { return f.pending }

// Flush publishes the accumulated deltas into the shared Profile and resets
// the local slots.
func (f *Folder) Flush() {
	if f.pending == 0 {
		return
	}
	for _, s := range f.slots {
		if s.count == 0 {
			continue
		}
		sp := f.p.stackFor(s.stackID, s.mount)
		idx := int(s.op)
		if idx >= maxProfiledOps {
			idx = 0
		}
		agg := &sp.ops[idx]
		agg.count.Add(s.count)
		agg.errs.Add(s.errs)
		agg.latNS.Add(s.latNS)
		agg.waitNS.Add(s.waitNS)
		agg.cpuNS.Add(s.cpuNS)
		if sp.opNames[idx].Load() == nil {
			name := f.opName(s.op)
			sp.opNames[idx].Store(&name)
		}
		s.count, s.errs, s.latNS, s.waitNS, s.cpuNS = 0, 0, 0, 0, 0
	}
	f.pending = 0
}

// --- attribution snapshot ----------------------------------------------------

// OpAttribution is one operation's always-on attribution row.
type OpAttribution struct {
	Op          string  `json:"op"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors,omitempty"`
	MeanUS      float64 `json:"mean_us"`
	TotalUS     float64 `json:"total_us"`
	QueueWaitUS float64 `json:"queue_wait_us"`
	CPUUS       float64 `json:"cpu_us"`
	DeviceUS    float64 `json:"device_us"`
}

// StageAttribution is one pipeline stage's sampled attribution row. The
// pseudo-stage "queue_wait" (wait minus the IPC charge, which is recorded as
// its own "ipc" stage) completes the decomposition, so SharePct across a
// stack's stages sums to ~100% of sampled end-to-end latency.
type StageAttribution struct {
	Stage    string  `json:"stage"`
	Count    int64   `json:"count"`
	TotalUS  float64 `json:"total_us"`
	MeanUS   float64 `json:"mean_us"`
	P50US    float64 `json:"p50_us"`
	P99US    float64 `json:"p99_us"`
	SharePct float64 `json:"share_pct"`
}

// StackAttribution is one stack's full attribution table: the always-on
// coarse split (queue wait / CPU / device, exact over every completed
// request) plus the sampled per-stage detail.
type StackAttribution struct {
	Stack        string `json:"stack"`
	Requests     int64  `json:"requests"`
	Errors       int64  `json:"errors"`
	Sampled      int64  `json:"sampled"`
	TailRetained int64  `json:"tail_retained"`

	TotalLatencyUS float64 `json:"total_latency_us"`
	MeanLatencyUS  float64 `json:"mean_latency_us"`
	QueueWaitPct   float64 `json:"queue_wait_pct"`
	CPUPct         float64 `json:"cpu_pct"`
	DevicePct      float64 `json:"device_pct"`

	Ops    []OpAttribution    `json:"ops"`
	Stages []StageAttribution `json:"stages,omitempty"`
}

// QueueWaitStage is the pseudo-stage name completing the per-stage share
// decomposition (wait time net of the recorded "ipc" span).
const QueueWaitStage = "queue_wait"

// ipcStage is the stage name the runtime charges for the queue-pair round
// trip; it lands inside the queue-wait window, so shares subtract it from
// the pseudo-stage rather than double-counting.
const ipcStage = "ipc"

// Snapshot renders the attribution tables, stacks sorted by mount, ops by
// descending total latency, stages by descending share.
func (p *Profile) Snapshot() []StackAttribution {
	out := []StackAttribution{}
	p.stacks.Range(func(_, v any) bool {
		sp := v.(*StackProfile)
		if sa, ok := sp.attribution(); ok {
			out = append(out, sa)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Stack < out[j].Stack })
	return out
}

func (sp *StackProfile) attribution() (StackAttribution, bool) {
	sa := StackAttribution{
		Stack:        sp.mount,
		Sampled:      sp.sampled.Load(),
		TailRetained: sp.tailRetained.Load(),
	}
	var latNS, waitNS, cpuNS int64
	for i := range sp.ops {
		agg := &sp.ops[i]
		n := agg.count.Load()
		if n == 0 {
			continue
		}
		name := "?"
		if np := sp.opNames[i].Load(); np != nil {
			name = *np
		}
		l, w, c := agg.latNS.Load(), agg.waitNS.Load(), agg.cpuNS.Load()
		dev := l - w - c
		if dev < 0 {
			dev = 0
		}
		sa.Ops = append(sa.Ops, OpAttribution{
			Op:          name,
			Requests:    n,
			Errors:      agg.errs.Load(),
			MeanUS:      nsToUS(l) / float64(n),
			TotalUS:     nsToUS(l),
			QueueWaitUS: nsToUS(w),
			CPUUS:       nsToUS(c),
			DeviceUS:    nsToUS(dev),
		})
		sa.Requests += n
		sa.Errors += agg.errs.Load()
		latNS += l
		waitNS += w
		cpuNS += c
	}
	if sa.Requests == 0 {
		return sa, false
	}
	devNS := latNS - waitNS - cpuNS
	if devNS < 0 {
		devNS = 0
	}
	sa.TotalLatencyUS = nsToUS(latNS)
	sa.MeanLatencyUS = nsToUS(latNS) / float64(sa.Requests)
	if latNS > 0 {
		sa.QueueWaitPct = 100 * float64(waitNS) / float64(latNS)
		sa.CPUPct = 100 * float64(cpuNS) / float64(latNS)
		sa.DevicePct = 100 * float64(devNS) / float64(latNS)
	}
	sort.Slice(sa.Ops, func(i, j int) bool { return sa.Ops[i].TotalUS > sa.Ops[j].TotalUS })
	sa.Stages = sp.stageAttribution()
	return sa, true
}

// stageAttribution builds the sampled per-stage rows plus the queue-wait
// pseudo-stage; shares are normalized so they sum to ~100% of sampled
// end-to-end latency.
func (sp *StackProfile) stageAttribution() []StageAttribution {
	var rows []StageAttribution
	var ipcNS int64
	var spanNS int64 // non-ipc span total
	sp.stages.Range(func(k, v any) bool {
		name := k.(string)
		sa := v.(*stageAgg)
		sum := sa.sumNS.Load()
		st := sa.hist.State()
		rows = append(rows, StageAttribution{
			Stage:   name,
			Count:   sa.count.Load(),
			TotalUS: nsToUS(sum),
			MeanUS:  meanUS(sum, sa.count.Load()),
			P50US:   st.Quantile(0.5),
			P99US:   st.Quantile(0.99),
		})
		if name == ipcStage {
			ipcNS = sum
		} else {
			spanNS += sum
		}
		return true
	})
	if len(rows) == 0 {
		return nil
	}
	// Queue-wait pseudo-stage: sampled wait minus the ipc span recorded
	// inside it.
	qwNS := sp.sampledWaitNS.Load() - ipcNS
	if qwNS < 0 {
		qwNS = 0
	}
	wh := sp.waitHist.State()
	rows = append(rows, StageAttribution{
		Stage:   QueueWaitStage,
		Count:   sp.sampled.Load(),
		TotalUS: nsToUS(qwNS),
		MeanUS:  meanUS(qwNS, sp.sampled.Load()),
		P50US:   wh.Quantile(0.5),
		P99US:   wh.Quantile(0.99),
	})
	denom := float64(qwNS + ipcNS + spanNS)
	if denom > 0 {
		for i := range rows {
			rows[i].SharePct = 100 * rows[i].TotalUS * 1e3 / denom
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].SharePct > rows[j].SharePct })
	return rows
}

func nsToUS(ns int64) float64 { return float64(ns) / 1e3 }

func meanUS(sumNS, n int64) float64 {
	if n == 0 {
		return 0
	}
	return nsToUS(sumNS) / float64(n)
}

// --- tail estimator ----------------------------------------------------------

// DefaultTailQuantile is the rolling quantile a TailEstimator tracks when
// none is configured: outliers are the slowest ~1%.
const DefaultTailQuantile = 0.99

// tailWarmup is how many observations seed the estimate (as a running mean)
// before outlier retention switches on.
const tailWarmup = 64

// tailGain is the relative step of the quantile tracker: how far (as a
// fraction of the current estimate) one observation can move it.
const tailGain = 0.05

// TailEstimator tracks a rolling quantile of a latency stream by stochastic
// approximation (the classic pinball-loss SGD update with a step
// proportional to the current estimate): on each observation x,
//
//	x > est: est += gain·est·q        (rare — (1-q) of the stream)
//	x ≤ est: est -= gain·est·(1-q)    (common, tiny step)
//
// whose equilibrium is P(x > est) = 1-q, i.e. est converges to the
// q-quantile and tracks it as the workload drifts. Observe reports whether
// x exceeded the estimate — the tail-retention decision: with q = 0.99 the
// slowest ~1% of requests are flagged, no matter what the sampler picked.
//
// A TailEstimator is deliberately not synchronized: each worker owns one
// per stack (its view of the stream it drains), so the always-on hot path
// pays a compare and one multiply, never a shared cacheline.
type TailEstimator struct {
	q   float64
	n   int64
	est float64
	// up/down are the relative steps precomputed as multiplicative
	// factors: est·(1+gain·q) on an outlier, est·(1-gain·(1-q)) otherwise
	// — algebraically the relative-step SGD update with one multiply.
	up   float64
	down float64
}

// NewTailEstimator returns an estimator for quantile q
// (DefaultTailQuantile when q is out of (0,1)).
func NewTailEstimator(q float64) *TailEstimator {
	if q <= 0 || q >= 1 {
		q = DefaultTailQuantile
	}
	return &TailEstimator{q: q, up: 1 + tailGain*q, down: 1 - tailGain*(1-q)}
}

// Observe folds one latency (nanoseconds) and reports whether it is an
// outlier: past warmup and above the rolling quantile estimate. The steady
// state is kept small enough for the compiler to inline: a counter, a
// compare and one multiply.
func (te *TailEstimator) Observe(latNS float64) bool {
	if te.n++; te.n <= tailWarmup {
		te.observeWarmup(latNS)
		return false
	}
	if latNS > te.est {
		te.est *= te.up
		return true
	}
	if te.est *= te.down; te.est < 1 {
		te.est = 1 // ns floor so a zero estimate can still climb
	}
	return false
}

// observeWarmup seeds the estimate with the stream's running mean: a
// quantile estimate needs a scale before relative steps mean anything.
func (te *TailEstimator) observeWarmup(latNS float64) {
	te.est += (latNS - te.est) / float64(te.n)
}

// Estimate returns the current rolling quantile estimate (ns).
func (te *TailEstimator) Estimate() float64 { return te.est }

// Count returns the number of observations folded.
func (te *TailEstimator) Count() int64 { return te.n }

// Quantile returns the tracked quantile.
func (te *TailEstimator) Quantile() float64 { return te.q }
