package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"labstor/internal/vtime"
)

func testOpName(op uint8) string { return fmt.Sprintf("op%d", op) }

func TestFolderFoldAndFlush(t *testing.T) {
	p := NewProfile()
	f := p.NewFolder(testOpName)
	// 10 requests of op 3 on stack 1: lat 1000ns = 300 wait + 200 cpu + 500 dev.
	for i := 0; i < 10; i++ {
		f.Fold(1, "fs::/a", 3, 1000, 300, 200, i == 0)
	}
	if f.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10 (premature flush)", f.Pending())
	}
	// Nothing visible before flush.
	if got := p.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot before flush = %v, want empty", got)
	}
	f.Flush()
	if f.Pending() != 0 {
		t.Fatalf("Pending after flush = %d", f.Pending())
	}
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot stacks = %d, want 1", len(snap))
	}
	sa := snap[0]
	if sa.Stack != "fs::/a" || sa.Requests != 10 || sa.Errors != 1 {
		t.Fatalf("stack attribution = %+v", sa)
	}
	if len(sa.Ops) != 1 || sa.Ops[0].Op != "op3" || sa.Ops[0].Requests != 10 {
		t.Fatalf("op attribution = %+v", sa.Ops)
	}
	// Coarse split: 30% wait, 20% cpu, 50% device; shares sum to 100.
	if math.Abs(sa.QueueWaitPct-30) > 1e-9 || math.Abs(sa.CPUPct-20) > 1e-9 || math.Abs(sa.DevicePct-50) > 1e-9 {
		t.Fatalf("split = wait %.2f cpu %.2f dev %.2f, want 30/20/50", sa.QueueWaitPct, sa.CPUPct, sa.DevicePct)
	}
	if sum := sa.QueueWaitPct + sa.CPUPct + sa.DevicePct; math.Abs(sum-100) > 1e-6 {
		t.Fatalf("coarse shares sum to %.4f, want 100", sum)
	}
	if got := sa.Ops[0].DeviceUS; math.Abs(got-5) > 1e-9 { // 10 × 500ns
		t.Fatalf("derived device time = %.3fus, want 5", got)
	}
}

func TestFolderAutoFlushEvery(t *testing.T) {
	p := NewProfile()
	f := p.NewFolder(testOpName)
	for i := 0; i < folderFlushEvery; i++ {
		f.Fold(2, "msg::/b", 0, 100, 10, 10, false)
	}
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d after %d folds, want auto-flush at threshold", f.Pending(), folderFlushEvery)
	}
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Requests != int64(folderFlushEvery) {
		t.Fatalf("Snapshot after auto-flush = %+v", snap)
	}
}

func TestFolderMultipleStacksAndOps(t *testing.T) {
	p := NewProfile()
	f := p.NewFolder(testOpName)
	// Interleave two stacks and two ops to defeat the cached-slot fast path.
	for i := 0; i < 100; i++ {
		f.Fold(1, "fs::/a", 1, 1000, 100, 100, false)
		f.Fold(2, "kv::/b", 2, 2000, 200, 200, false)
	}
	f.Flush()
	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("stacks = %d, want 2", len(snap))
	}
	for _, sa := range snap {
		if sa.Requests != 100 {
			t.Fatalf("stack %s requests = %d, want 100", sa.Stack, sa.Requests)
		}
	}
}

func TestProfileFoldSpansStageShares(t *testing.T) {
	p := NewProfile()
	f := p.NewFolder(testOpName)
	// Sampled traces: wait 300 (ipc 100 inside it), stages io=500, cpu charge 200.
	for i := 0; i < 50; i++ {
		tr := Trace{
			ReqID: uint64(i), Op: "write", Stack: "fs::/a", StackID: 1,
			Arrival: 0, Start: 300, End: 1000,
			QueueWait: 300, CPU: 200,
			Spans: []Span{
				{Stage: "ipc", Cost: 100},
				{Stage: "mod/fs", Cost: 200},
				{Stage: "device", Cost: 500},
			},
		}
		p.FoldSpans(1, "fs::/a", tr)
		f.Fold(1, "fs::/a", 3, 1000, 300, 200, false)
	}
	f.Flush()
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("stacks = %d, want 1", len(snap))
	}
	sa := snap[0]
	if sa.Sampled != 50 {
		t.Fatalf("Sampled = %d, want 50", sa.Sampled)
	}
	var sum float64
	var stages []string
	for _, st := range sa.Stages {
		sum += st.SharePct
		stages = append(stages, st.Stage)
	}
	// ipc 100 + mod 200 + device 500 + queue_wait (300-100=200) = 1000 = full latency.
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("stage shares sum to %.3f%% (stages %v), want ~100", sum, stages)
	}
	found := map[string]StageAttribution{}
	for _, st := range sa.Stages {
		found[st.Stage] = st
	}
	qw, ok := found[QueueWaitStage]
	if !ok {
		t.Fatalf("missing %q pseudo-stage in %v", QueueWaitStage, stages)
	}
	if math.Abs(qw.SharePct-20) > 0.01 {
		t.Fatalf("queue_wait share = %.3f%%, want 20 (wait minus ipc)", qw.SharePct)
	}
	if dev := found["device"]; math.Abs(dev.SharePct-50) > 0.01 {
		t.Fatalf("device share = %.3f%%, want 50", dev.SharePct)
	}
	// Rows sorted by descending share: device first.
	if sa.Stages[0].Stage != "device" {
		t.Fatalf("stages[0] = %s, want device (sorted by share)", sa.Stages[0].Stage)
	}
}

func TestTailEstimatorConvergence(t *testing.T) {
	te := NewTailEstimator(0.99)
	rng := rand.New(rand.NewSource(42))
	// Exponential latency distribution, mean 1000ns: p99 = -ln(0.01)*1000 ≈ 4605ns.
	n := 200000
	outliers := 0
	for i := 0; i < n; i++ {
		x := rng.ExpFloat64() * 1000
		if te.Observe(x) {
			outliers++
		}
	}
	wantP99 := -math.Log(0.01) * 1000
	if est := te.Estimate(); est < wantP99*0.7 || est > wantP99*1.4 {
		t.Fatalf("estimate = %.0fns, want ≈%.0fns (p99 of Exp(1000))", est, wantP99)
	}
	// Retention rate should be on the order of 1%: between 0.3% and 3%.
	rate := float64(outliers) / float64(n)
	if rate < 0.003 || rate > 0.03 {
		t.Fatalf("outlier rate = %.4f, want ≈0.01", rate)
	}
	if te.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", te.Count(), n)
	}
}

func TestTailEstimatorWarmup(t *testing.T) {
	te := NewTailEstimator(0)
	if te.Quantile() != DefaultTailQuantile {
		t.Fatalf("Quantile = %v, want default %v", te.Quantile(), DefaultTailQuantile)
	}
	// During warmup nothing is an outlier, even huge values.
	for i := 0; i < tailWarmup; i++ {
		if te.Observe(1e9) {
			t.Fatalf("outlier flagged during warmup (obs %d)", i)
		}
	}
	// Post-warmup, a value above the (mean-seeded) estimate is flagged.
	if !te.Observe(2e9) {
		t.Fatal("post-warmup outlier not flagged")
	}
}

func TestTailEstimatorTracksDrift(t *testing.T) {
	te := NewTailEstimator(0.99)
	for i := 0; i < 5000; i++ {
		te.Observe(1000)
	}
	low := te.Estimate()
	// Workload shifts 10×: the estimate must follow.
	for i := 0; i < 5000; i++ {
		te.Observe(10000)
	}
	if te.Estimate() < low*2 {
		t.Fatalf("estimate did not track drift: %.0f -> %.0f", low, te.Estimate())
	}
}

func TestTracerTailRing(t *testing.T) {
	tr := NewTracer(4)
	// Default tail ring present.
	for i := uint64(1); i <= 100; i++ {
		if !tr.CaptureTail(mkTrace(i)) {
			t.Fatal("CaptureTail = false with default ring")
		}
	}
	if tr.TailCaptured() != 100 {
		t.Fatalf("TailCaptured = %d, want 100", tr.TailCaptured())
	}
	tail := tr.RecentTail()
	if len(tail) != DefaultTailRing {
		t.Fatalf("tail retained %d, want %d", len(tail), DefaultTailRing)
	}
	// Oldest-first across the wrap boundary: 37..100.
	for i, tc := range tail {
		if want := uint64(100 - DefaultTailRing + 1 + i); tc.ReqID != want {
			t.Fatalf("tail[%d].ReqID = %d, want %d", i, tc.ReqID, want)
		}
	}
	// Resize and disable.
	tr.SetTailRing(2)
	tr.CaptureTail(mkTrace(1))
	tr.CaptureTail(mkTrace(2))
	tr.CaptureTail(mkTrace(3))
	if got := tr.RecentTail(); len(got) != 2 || got[0].ReqID != 2 || got[1].ReqID != 3 {
		t.Fatalf("resized tail = %v", got)
	}
	tr.SetTailRing(-1)
	if tr.CaptureTail(mkTrace(4)) {
		t.Fatal("CaptureTail = true after disable")
	}
	if got := tr.RecentTail(); got != nil {
		t.Fatalf("RecentTail after disable = %v, want nil", got)
	}
}

// TestTailRingNoSinkEmit pins the sink single-emit contract: tail retention
// must never forward to the sink (the sampled path already does).
func TestTailRingNoSinkEmit(t *testing.T) {
	tr := NewTracer(4)
	emits := 0
	tr.SetSink(SinkFunc(func(Trace) { emits++ }))
	tr.CaptureTail(mkTrace(1))
	if emits != 0 {
		t.Fatalf("tail capture emitted to sink %d times, want 0", emits)
	}
}

// TestErrorRingWrapOrdering (satellite: S3) pins RecentErrors ordering across
// the wrap boundary: 100 errored traces through a 64-slot ring must read
// back as IDs 37..100, oldest first.
func TestErrorRingWrapOrdering(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(1); i <= 100; i++ {
		tc := mkTrace(i)
		tc.Err = "boom"
		if i%2 == 0 {
			tr.Capture(tc) // sampled+errored path mirrors into the error ring
		} else {
			tr.CaptureError(tc) // unsampled error path
		}
	}
	if tr.ErrorsCaptured() != 100 {
		t.Fatalf("ErrorsCaptured = %d, want 100", tr.ErrorsCaptured())
	}
	errs := tr.RecentErrors()
	if len(errs) != DefaultErrorRing {
		t.Fatalf("error ring retained %d, want %d", len(errs), DefaultErrorRing)
	}
	for i, tc := range errs {
		if want := uint64(100 - DefaultErrorRing + 1 + i); tc.ReqID != want {
			t.Fatalf("errs[%d].ReqID = %d, want %d (not oldest-first across wrap)", i, tc.ReqID, want)
		}
	}
}

// TestTracerConcurrentCaptureRaces (satellite: S3) hammers Capture,
// CaptureError and CaptureTail from concurrent goroutines while readers
// drain all three rings; run under -race this is the wraparound race test.
func TestTracerConcurrentCaptureRaces(t *testing.T) {
	tr := NewTracer(8)
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tc := mkTrace(uint64(wr*perWriter + i))
				switch i % 3 {
				case 0:
					tc.Err = "x"
					tr.Capture(tc)
				case 1:
					tc.Err = "y"
					tr.CaptureError(tc)
				case 2:
					tr.CaptureTail(tc)
				}
			}
		}(wr)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			_ = tr.Recent()
			_ = tr.RecentErrors()
			_ = tr.RecentTail()
		}
	}()
	wg.Wait()
	<-readerDone
	// Cases 0 and 1 both land in the error ring.
	perWriterErrs := 0
	for i := 0; i < perWriter; i++ {
		if i%3 != 2 {
			perWriterErrs++
		}
	}
	wantErrs := int64(writers * perWriterErrs)
	if got := tr.ErrorsCaptured(); got != wantErrs {
		t.Fatalf("ErrorsCaptured = %d, want %d", got, wantErrs)
	}
	if errs := tr.RecentErrors(); len(errs) != DefaultErrorRing {
		t.Fatalf("error ring retained %d, want full %d", len(errs), DefaultErrorRing)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	traces := []Trace{
		mkTrace(1), // sampled: has spans
		{ // tail-retained: no spans, anatomy synthesized
			ReqID: 2, Op: "read", Stack: "fs::/t", StackID: 7, Worker: 1,
			Arrival: 100, Start: 400, End: 2400,
			QueueWait: 300, CPU: vtime.Duration(500),
			Err: "timeout",
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var metas, phases int
	synth := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			phases++
			if ev.PID == 7 {
				synth[ev.Name] = true
				if ev.Dur < 0 {
					t.Fatalf("negative duration in %+v", ev)
				}
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if metas < 3 { // 2 process_name + ≥1 thread_name
		t.Fatalf("metadata events = %d, want >= 3", metas)
	}
	if phases == 0 {
		t.Fatal("no X events exported")
	}
	// The span-less trace must synthesize the coarse anatomy.
	for _, want := range []string{"queue_wait", "cpu", "device"} {
		if !synth[want] {
			t.Fatalf("synthesized anatomy missing %q (got %v)", want, synth)
		}
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("empty export missing traceEvents key")
	}
}
