package telemetry

import (
	"fmt"
	"sync"
	"testing"

	"labstor/internal/vtime"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("Counter(\"a\") returned two distinct instances")
	}
	c1.Inc()
	c2.Add(2)
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	if got := r.Gauge("g").Value(); got != 7 {
		t.Fatalf("gauge value = %d, want 7", got)
	}
	r.Observe("h", 10)
	r.Observe("h", 20)
	if got := r.Histogram("h").Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Add("reqs", 5)
	r.Gauge("depth").Set(3)
	r.Observe("lat_us", 100)
	r.Observe("lat_us", 300)

	s := r.Snapshot()
	if s.Counters["reqs"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", s.Counters["reqs"])
	}
	if s.Gauges["depth"] != 3 {
		t.Fatalf("snapshot gauge = %d, want 3", s.Gauges["depth"])
	}
	h, ok := s.Histograms["lat_us"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if h.Count != 2 || h.Max != 300 {
		t.Fatalf("histogram snapshot = %+v, want count=2 max=300", h)
	}
	if h.Mean != 200 {
		t.Fatalf("histogram mean = %v, want 200", h.Mean)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("per-%d", g%4)).Inc()
				r.Observe("h", float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func mkTrace(id uint64) Trace {
	return Trace{
		ReqID: id, Op: "write", Stack: "fs::/t", Worker: 0,
		Arrival: vtime.Time(0), Start: vtime.Time(10), End: vtime.Time(30),
		Spans: []Span{{Stage: "ipc", Cost: 5}, {Stage: "io", Cost: 15}},
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	if tr.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", tr.Cap())
	}
	for i := uint64(1); i <= 10; i++ {
		tr.Capture(mkTrace(i))
	}
	if tr.Captured() != 10 {
		t.Fatalf("Captured = %d, want 10", tr.Captured())
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(recent))
	}
	// Oldest-first: the oldest survivors are 7..10.
	for i, want := range []uint64{7, 8, 9, 10} {
		if recent[i].ReqID != want {
			t.Fatalf("recent[%d].ReqID = %d, want %d (ring not oldest-first)", i, recent[i].ReqID, want)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Capture(mkTrace(1))
	tr.Capture(mkTrace(2))
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].ReqID != 1 || recent[1].ReqID != 2 {
		t.Fatalf("partial ring = %v", recent)
	}
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer(2)
	var got []uint64
	tr.SetSink(SinkFunc(func(tc Trace) { got = append(got, tc.ReqID) }))
	tr.Capture(mkTrace(1))
	tr.Capture(mkTrace(2))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sink saw %v, want [1 2]", got)
	}
	tr.SetSink(nil)
	tr.Capture(mkTrace(3))
	if len(got) != 2 {
		t.Fatal("sink called after being cleared")
	}
}

func TestTraceDerived(t *testing.T) {
	tc := mkTrace(1)
	if tc.Latency() != 30 {
		t.Fatalf("Latency = %v, want 30", tc.Latency())
	}
	s := tc.String()
	for _, want := range []string{"write", "fs::/t", "ipc", "io"} {
		if !contains(s, want) {
			t.Fatalf("Trace.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
