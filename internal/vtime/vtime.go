// Package vtime provides the virtual-time substrate used by every
// performance experiment in this repository.
//
// The paper's evaluation measures wall-clock latency and IOPS on bare-metal
// storage hardware (NVMe, SATA SSD, HDD, emulated PMEM). None of that
// hardware exists here, so latency is *modeled*: each request accumulates
// virtual nanoseconds as it crosses software stages and simulated devices,
// and queueing/contention effects emerge from per-entity virtual clocks
// (see Clock, Lock and the device models in internal/device).
//
// Virtual time is deliberately decoupled from wall-clock time: results are
// deterministic for deterministic workloads, independent of host speed, GC
// pauses and scheduling noise, and reproducible on a single CPU.
package vtime

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Time is an absolute point on a virtual timeline, in nanoseconds since the
// start of the experiment.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Add returns the point d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a monotonically advancing virtual clock owned by one logical
// entity (a worker, a client thread, a device channel). It is safe for
// concurrent use; AdvanceTo never moves the clock backwards.
type Clock struct {
	now atomic.Int64
}

// Now returns the clock's current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		d = 0
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to at least t and returns the resulting time
// (which may be later than t if another goroutine advanced it further).
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// StartService models FCFS service at a single server: given a request that
// arrived at arrival, service begins at max(arrival, clock) and the clock is
// advanced to begin+busy. It returns the service start time.
func (c *Clock) StartService(arrival Time, busy Duration) Time {
	for {
		cur := Time(c.now.Load())
		begin := MaxTime(arrival, cur)
		end := begin.Add(busy)
		if c.now.CompareAndSwap(int64(cur), int64(end)) {
			return begin
		}
	}
}

// Lock is a virtual-time mutex: a contended resource whose hold times
// serialize in virtual time. It reproduces the behaviour of in-kernel locks
// (directory mutexes, journal locks) that the paper identifies as the
// scalability bottleneck of kernel filesystems.
//
// Every entity in this simulation owns an independent virtual clock, and
// entities reach the lock in arbitrary *real* order — a goroutine may run a
// long burst, pushing its clock far ahead, before a logically concurrent
// goroutine presents requests with earlier virtual arrival times. The lock
// therefore reconstructs the serialized timeline instead of chaining
// absolute release times: it maintains the set of busy periods (intervals
// of back-to-back serial work), inserts each new hold at its virtual
// arrival point, and cascade-shifts any later busy periods that the
// insertion now overlaps. A requester queues only behind work that
// logically preceded-or-overlapped it, never behind work from another
// entity's future.
type Lock struct {
	mu      sync.Mutex
	periods []busyPeriod // sorted by start, non-overlapping
}

// busyPeriod is a maximal interval of back-to-back serial lock work.
type busyPeriod struct {
	start Time
	end   Time
}

// maxLockPeriods bounds Lock memory; the oldest periods merge when exceeded.
const maxLockPeriods = 128

// Acquire models acquiring the lock at virtual time now and holding it for
// hold. It returns the virtual time at which the lock was released to the
// caller, i.e. the caller's new local time.
func (l *Lock) Acquire(now Time, hold Duration) Time {
	if hold < 0 {
		hold = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	// Find the busy period containing the arrival (the last period with
	// start <= now and end > now).
	i := 0
	for i < len(l.periods) && l.periods[i].end <= now {
		i++
	}
	var release Time
	if i < len(l.periods) && l.periods[i].start <= now {
		// Arrival inside period i: the new work queues at the period's end.
		release = l.periods[i].end.Add(hold)
		l.periods[i].end = release
	} else {
		// Arrival in a gap (or beyond all periods): immediate grant; a new
		// busy period begins at the arrival.
		release = now.Add(hold)
		l.periods = append(l.periods, busyPeriod{})
		copy(l.periods[i+1:], l.periods[i:])
		l.periods[i] = busyPeriod{start: now, end: release}
	}
	// Cascade: shifting period i may now overlap later periods — their work
	// serializes behind it.
	for i+1 < len(l.periods) && l.periods[i+1].start < l.periods[i].end {
		w := l.periods[i+1].end.Sub(l.periods[i+1].start)
		l.periods[i].end = l.periods[i].end.Add(w)
		l.periods = append(l.periods[:i+1], l.periods[i+2:]...)
	}
	// Bound memory by merging the two oldest periods.
	for len(l.periods) > maxLockPeriods {
		w := l.periods[1].end.Sub(l.periods[1].start)
		l.periods[0].end = l.periods[0].end.Add(w)
		l.periods = append(l.periods[:1], l.periods[2:]...)
	}
	return release
}

// Horizon returns the end of the lock's latest busy period (0 if never
// used) — a load proxy for steering decisions.
func (l *Lock) Horizon() Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.periods) == 0 {
		return 0
	}
	return l.periods[len(l.periods)-1].end
}

// Backlog reports the serial work remaining at virtual time now.
func (l *Lock) Backlog(now Time) Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range l.periods {
		if p.start <= now && now < p.end {
			return p.end.Sub(now)
		}
	}
	return 0
}

// Server models a station with n parallel FCFS channels (e.g. an NVMe
// device's internal parallelism). Each channel is a busy-period Lock, so
// work submitted out of real-time order still lands at its virtual arrival
// point. Work goes to the channel with the earliest horizon.
type Server struct {
	mu    sync.Mutex
	chans []Lock
}

// NewServer returns a Server with n parallel channels. n < 1 is treated as 1.
func NewServer(n int) *Server {
	if n < 1 {
		n = 1
	}
	return &Server{chans: make([]Lock, n)}
}

// Parallelism returns the number of channels.
func (s *Server) Parallelism() int { return len(s.chans) }

// Serve submits a unit of work arriving at arrival with service time busy,
// and returns (start, completion) in virtual time.
func (s *Server) Serve(arrival Time, busy Duration) (Time, Time) {
	s.mu.Lock()
	best := 0
	bestH := s.chans[0].Horizon()
	for i := 1; i < len(s.chans); i++ {
		if h := s.chans[i].Horizon(); h < bestH {
			best, bestH = i, h
		}
	}
	s.mu.Unlock()
	end := s.chans[best].Acquire(arrival, busy)
	return end.Add(-busy), end
}

// Horizon returns the completion time of the most loaded channel — the
// virtual time at which the server becomes fully idle.
func (s *Server) Horizon() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var h Time
	for i := range s.chans {
		if c := s.chans[i].Horizon(); c > h {
			h = c
		}
	}
	return h
}
