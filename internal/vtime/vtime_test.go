package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50us"},
		{2500 * Microsecond, "2.50ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds: %v", (2 * Second).Seconds())
	}
	if (3 * Microsecond).Micros() != 3.0 {
		t.Errorf("Micros: %v", (3 * Microsecond).Micros())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100).Add(50)
	if tm != 150 {
		t.Fatalf("Add: %d", tm)
	}
	if tm.Sub(Time(100)) != 50 {
		t.Fatalf("Sub: %d", tm.Sub(Time(100)))
	}
	if MaxTime(3, 7) != 7 || MaxTime(7, 3) != 7 {
		t.Fatal("MaxTime")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Advance: %d", c.Now())
	}
	c.AdvanceTo(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo backwards moved clock: %d", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("AdvanceTo: %d", c.Now())
	}
	c.Advance(-5) // negative clamps to 0
	if c.Now() != 200 {
		t.Fatalf("negative Advance moved clock: %d", c.Now())
	}
}

func TestClockStartServiceFCFS(t *testing.T) {
	var c Clock
	// First request at t=10 for 5: starts at 10.
	if begin := c.StartService(10, 5); begin != 10 {
		t.Fatalf("begin = %d, want 10", begin)
	}
	// Second arrives at t=12 (while busy until 15): starts at 15.
	if begin := c.StartService(12, 5); begin != 15 {
		t.Fatalf("begin = %d, want 15", begin)
	}
	// Third arrives after drain: starts at its arrival.
	if begin := c.StartService(100, 5); begin != 100 {
		t.Fatalf("begin = %d, want 100", begin)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Fatalf("concurrent Advance lost updates: %d", c.Now())
	}
}

func TestLockUncontended(t *testing.T) {
	var l Lock
	r1 := l.Acquire(100, 10)
	if r1 != 110 {
		t.Fatalf("r1 = %d", r1)
	}
	// After the busy period drains, a later arrival acquires immediately.
	r2 := l.Acquire(200, 10)
	if r2 != 210 {
		t.Fatalf("r2 = %d", r2)
	}
}

func TestLockContendedSerializes(t *testing.T) {
	var l Lock
	// Three requests all arriving at t=0, hold 10 each: releases 10/20/30.
	if r := l.Acquire(0, 10); r != 10 {
		t.Fatalf("r = %d", r)
	}
	if r := l.Acquire(0, 10); r != 20 {
		t.Fatalf("r = %d", r)
	}
	if r := l.Acquire(0, 10); r != 30 {
		t.Fatalf("r = %d", r)
	}
	if b := l.Backlog(5); b != 25 {
		t.Fatalf("Backlog(5) = %d", b)
	}
}

func TestLockPastArrivalNotDragged(t *testing.T) {
	var l Lock
	// A fast entity uses the lock far in the future.
	l.Acquire(1_000_000, 100)
	// A slow entity arrives at t=10 — the lock was idle then, so it must
	// NOT be dragged to the fast entity's timeline.
	r := l.Acquire(10, 100)
	if r != 110 {
		t.Fatalf("past arrival dragged to future: release = %d", r)
	}
}

func TestLockCascadeMerge(t *testing.T) {
	var l Lock
	// Future period [1000, 1100).
	l.Acquire(1000, 100)
	// Insertion at t=950 with hold 100 ends at 1050, overlapping the
	// future period, whose work must shift behind it.
	r := l.Acquire(950, 100)
	if r != 1050 {
		t.Fatalf("r = %d, want 1050", r)
	}
	// The merged period now drains at 1150; an arrival inside it queues
	// behind the whole backlog.
	r2 := l.Acquire(1100, 50)
	if r2 != 1200 {
		t.Fatalf("r2 = %d, want 1200 (950+100+100+50)", r2)
	}
}

func TestLockGapInsertion(t *testing.T) {
	var l Lock
	l.Acquire(0, 10)    // [0,10)
	l.Acquire(1000, 10) // [1000,1010)
	// Arrival in the gap: immediate.
	if r := l.Acquire(500, 10); r != 510 {
		t.Fatalf("gap arrival queued: %d", r)
	}
	if h := l.Horizon(); h != 1010 {
		t.Fatalf("Horizon = %d", h)
	}
}

func TestLockThroughputBound(t *testing.T) {
	// N entities hammering one lock serialize: the last release can be no
	// earlier than N*hold past the first arrival.
	var l Lock
	const n, hold = 50, 7
	var last Time
	for i := 0; i < n; i++ {
		if r := l.Acquire(0, hold); r > last {
			last = r
		}
	}
	if last != n*hold {
		t.Fatalf("serialized drain = %d, want %d", last, n*hold)
	}
}

func TestLockMemoryBound(t *testing.T) {
	var l Lock
	// Create far more disjoint periods than the cap.
	for i := 0; i < 10*maxLockPeriods; i++ {
		l.Acquire(Time(i*1000), 1)
	}
	if len(l.periods) > maxLockPeriods {
		t.Fatalf("periods grew unbounded: %d", len(l.periods))
	}
}

func TestLockQuickReleaseInvariants(t *testing.T) {
	// Properties: release >= arrival + hold, and the lock conserves work —
	// for same-time arrivals, total drain equals total hold.
	f := func(arrivals []uint16, holds []uint8) bool {
		var l Lock
		n := len(arrivals)
		if len(holds) < n {
			n = len(holds)
		}
		for i := 0; i < n; i++ {
			a := Time(arrivals[i])
			h := Duration(holds[i])
			r := l.Acquire(a, h)
			if r < a.Add(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerParallelism(t *testing.T) {
	s := NewServer(2)
	if s.Parallelism() != 2 {
		t.Fatal("parallelism")
	}
	// Two units at t=0 run in parallel on separate channels.
	_, e1 := s.Serve(0, 10)
	_, e2 := s.Serve(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatalf("parallel service broken: %d %d", e1, e2)
	}
	// A third queues behind one of them.
	_, e3 := s.Serve(0, 10)
	if e3 != 20 {
		t.Fatalf("third unit end = %d, want 20", e3)
	}
	if s.Horizon() != 20 {
		t.Fatalf("Horizon = %d", s.Horizon())
	}
}

func TestServerMinParallelism(t *testing.T) {
	s := NewServer(0)
	if s.Parallelism() != 1 {
		t.Fatalf("NewServer(0) parallelism = %d", s.Parallelism())
	}
}

func TestCostModelCopyCompress(t *testing.T) {
	m := Default()
	if m.Copy(0) != 0 || m.Copy(-5) != 0 {
		t.Fatal("Copy of non-positive size must be free")
	}
	if m.Copy(1<<20) <= m.Copy(1<<10) {
		t.Fatal("Copy must scale with size")
	}
	if m.Compress(4096) <= m.Copy(4096) {
		t.Fatal("Compression must cost more than a copy")
	}
}

func TestCostModelCalibrationSanity(t *testing.T) {
	m := Default()
	// The Fig. 6 ladder depends on these orderings.
	if m.SPDKSubmit >= m.KernelDriverSubmit {
		t.Fatal("SPDK must be cheaper than the kernel driver path")
	}
	if m.IOUringSubmit >= m.ModeSwitch+m.VFSOverhead {
		t.Fatal("io_uring submission must undercut the syscall+VFS path")
	}
	if m.AIOThreadDispatch <= 0 || m.ContextSwitch <= m.ModeSwitch/2 {
		t.Fatal("implausible context-switch calibration")
	}
}
