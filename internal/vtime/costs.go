package vtime

// CostModel holds the calibrated software-path cost constants used by the
// simulated kernel stack, the LabStor runtime and the LabMods. All values
// are virtual nanoseconds (or ns/byte for copy costs).
//
// Calibration targets (see DESIGN.md §5 and EXPERIMENTS.md):
//   - the 4KB NVMe write anatomy of Fig. 4(a): device ≈ 66% of request time,
//     LRU page cache ≈ 17%, IPC ≈ 8.4%, NoOp scheduler ≈ 5%, FS metadata ≈ 3%,
//     permissions ≈ 3%, driver ≈ 1%;
//   - the storage-API ladder of Fig. 6: SPDK > KernelDriver (by ~12%) >
//     io_uring (KernelDriver ≥15% over the best kernel API at 4KB) > libaio >
//     POSIX > POSIX AIO (60–70% overhead on NVMe/PMEM), converging to ~6%
//     spread at 128KB.
type CostModel struct {
	// --- CPU / kernel-crossing primitives -----------------------------------

	// ContextSwitch is a full context switch between threads/processes
	// (schedule out + in, cache/TLB damage included).
	ContextSwitch Duration
	// ModeSwitch is a syscall entry+exit (user->kernel->user) without a
	// thread switch.
	ModeSwitch Duration
	// InterruptWakeup is the cost of an IRQ-driven completion: softirq
	// processing plus waking the sleeping issuer.
	InterruptWakeup Duration
	// ThreadWake is waking a sleeping thread on the same core (futex-style).
	ThreadWake Duration
	// CopyPerByte is the per-byte cost of copying between buffers
	// (copy_to_user/copy_from_user, page-cache fills, queue payloads).
	CopyPerByte float64

	// --- Kernel I/O stack stages -------------------------------------------

	// VFSOverhead is the VFS layer per-op cost (path resolution cache hit,
	// fd lookup, permission hook).
	VFSOverhead Duration
	// BlockLayerAlloc is the kernel block layer per-request cost (bio/request
	// allocation, plug/unplug, tag allocation).
	BlockLayerAlloc Duration
	// KernelSchedOverhead is the in-kernel I/O scheduler cost per request.
	KernelSchedOverhead Duration
	// AIOThreadDispatch is the POSIX AIO userspace thread-pool dispatch cost
	// (enqueue to pool + wake pool thread + reap), on top of the sync path.
	AIOThreadDispatch Duration
	// LibaioSubmit is the io_submit/io_getevents amortized per-request cost.
	LibaioSubmit Duration
	// IOUringSubmit is the io_uring SQ/CQ per-request cost with ring doorbell.
	IOUringSubmit Duration

	// --- LabStor runtime primitives ------------------------------------------

	// IPCRoundTrip is a shared-memory queue-pair round trip between client and
	// worker on different cores: the request and completion cachelines must be
	// transferred across cores (or from DRAM).
	IPCRoundTrip Duration
	// QueueOp is a single enqueue or dequeue on a shared-memory ring.
	QueueOp Duration
	// ModLookup is a Module Registry / Namespace lookup.
	ModLookup Duration

	// --- LabMod stage costs ---------------------------------------------------

	// PermCheck is the permissions LabMod per-request cost.
	PermCheck Duration
	// LRUCacheOp is the page-cache LabMod per-request overhead (hash lookup,
	// page allocation, LRU list maintenance) excluding the data copy.
	LRUCacheOp Duration
	// NoOpSched is the NoOp scheduler LabMod cost (keys a request to a
	// hardware queue).
	NoOpSched Duration
	// BlkSwitchSched is the blk-switch scheduler cost (load lookup + steering).
	BlkSwitchSched Duration
	// FSMetadata is LabFS per-request metadata management (block allocation,
	// inode hashmap update, log append).
	FSMetadata Duration
	// KernelDriverSubmit is the Kernel Driver LabMod submit cost
	// (request structure allocation + hctx doorbell via the KO manager).
	KernelDriverSubmit Duration
	// SPDKSubmit is the SPDK LabMod submit cost (userspace NVMe command build,
	// no kernel structures).
	SPDKSubmit Duration
	// DAXAccessSetup is the DAX LabMod fixed per-op cost before the memcpy.
	DAXAccessSetup Duration
	// CompressPerByte is the compression LabMod per-byte cost.
	CompressPerByte float64
	// PushdownPerByte is the per-byte cost of evaluating a pushdown
	// program over in-place data (predicate compare + field decode; no
	// copy — emission pays CopyPerByte separately).
	PushdownPerByte float64

	// --- Kernel filesystem (ext4/XFS/F2FS style) stages -----------------------

	// KFSJournalCommit is the journal transaction cost per metadata op.
	KFSJournalCommit Duration
	// KFSDirLockHold is the directory-lock hold time per create/unlink —
	// the serialization quantum that destroys kernel-FS metadata scaling.
	KFSDirLockHold Duration
	// KFSInodeAlloc is inode+bitmap allocation cost.
	KFSInodeAlloc Duration

	// --- LabFS metadata stages -------------------------------------------------

	// LabFSCreate is the LabFS create-op CPU cost (sharded hashmap insert +
	// per-worker log append; no global lock).
	LabFSCreate Duration
	// LabFSShardLockHold is the per-shard serialization quantum of LabFS's
	// inode hashmap (small; many shards).
	LabFSShardLockHold Duration

	// --- NUMA topology ---------------------------------------------------------

	// NUMA models cross-socket payload transfer charges. nil (the default)
	// means a single node: no request ever pays a locality penalty, which
	// keeps the calibrated single-socket experiments byte-for-byte stable.
	NUMA *NUMAModel
}

// NUMAModel charges requests whose payload segment lives on a different
// NUMA node than the worker touching it. Remote DRAM access over the
// socket interconnect (QPI/UPI) costs extra latency and roughly halves
// streaming bandwidth versus local access; the model expresses that as an
// additive ns/byte surcharge on top of CopyPerByte.
type NUMAModel struct {
	// Nodes is the number of NUMA nodes (sockets). Workers map to nodes
	// as id % Nodes; clients as origin core % Nodes.
	Nodes int
	// CrossPerByte is the additive ns/byte charge when the payload node
	// differs from the worker node and no Matrix entry overrides it.
	CrossPerByte float64
	// Matrix, when non-nil, is a Nodes×Nodes ns/byte table indexed
	// [payloadNode][workerNode]; the diagonal should be 0. It lets specs
	// express asymmetric topologies (e.g. 4-socket rings where some pairs
	// are two hops apart).
	Matrix [][]float64
}

// DefaultNUMA returns a symmetric nodes-node model with a cross-node
// surcharge of 0.03 ns/byte — remote streaming at ~60% of the local
// 20 GB/s memcpy rate, the usual 2-socket penalty.
func DefaultNUMA(nodes int) *NUMAModel {
	return &NUMAModel{Nodes: nodes, CrossPerByte: 0.03}
}

// WorkerNode maps a worker (or core) index onto a node.
func (m *NUMAModel) WorkerNode(id int) int {
	if m == nil || m.Nodes <= 1 {
		return 0
	}
	if id < 0 {
		id = -id
	}
	return id % m.Nodes
}

// Cross returns the modeled surcharge for a worker on node `to` touching
// n payload bytes homed on node `from`. Zero when the nodes match, the
// model is nil, or there is effectively one node.
func (m *NUMAModel) Cross(from, to, n int) Duration {
	if m == nil || m.Nodes <= 1 || n <= 0 || from == to || from < 0 || to < 0 {
		return 0
	}
	per := m.CrossPerByte
	if m.Matrix != nil && from < len(m.Matrix) && to < len(m.Matrix[from]) {
		per = m.Matrix[from][to]
	}
	if per <= 0 {
		return 0
	}
	return Duration(float64(n) * per)
}

// Default returns the calibrated cost model used by all experiments.
func Default() *CostModel {
	return &CostModel{
		ContextSwitch:   2000 * Nanosecond,
		ModeSwitch:      700 * Nanosecond,
		InterruptWakeup: 2000 * Nanosecond,
		ThreadWake:      1200 * Nanosecond,
		CopyPerByte:     0.05, // ≈20 GB/s memcpy

		VFSOverhead:         2000 * Nanosecond,
		BlockLayerAlloc:     5000 * Nanosecond,
		KernelSchedOverhead: 600 * Nanosecond,
		AIOThreadDispatch:   5000 * Nanosecond,
		LibaioSubmit:        1400 * Nanosecond,
		IOUringSubmit:       900 * Nanosecond,

		IPCRoundTrip: 2000 * Nanosecond,
		QueueOp:      150 * Nanosecond,
		ModLookup:    120 * Nanosecond,

		PermCheck:          750 * Nanosecond,
		LRUCacheOp:         3800 * Nanosecond,
		NoOpSched:          1200 * Nanosecond,
		BlkSwitchSched:     1500 * Nanosecond,
		FSMetadata:         750 * Nanosecond,
		KernelDriverSubmit: 2000 * Nanosecond,
		SPDKSubmit:         250 * Nanosecond,
		DAXAccessSetup:     150 * Nanosecond,
		CompressPerByte:    0.6, // ≈1.6 GB/s single-stream deflate
		PushdownPerByte:    0.2, // ≈5 GB/s predicate scan over cached data

		KFSJournalCommit: 9000 * Nanosecond,
		KFSDirLockHold:   6500 * Nanosecond,
		KFSInodeAlloc:    2500 * Nanosecond,

		LabFSCreate:        1500 * Nanosecond,
		LabFSShardLockHold: 600 * Nanosecond,
	}
}

// Copy returns the modeled time to copy n bytes.
func (c *CostModel) Copy(n int) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(float64(n) * c.CopyPerByte)
}

// Compress returns the modeled time to compress n bytes.
func (c *CostModel) Compress(n int) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(float64(n) * c.CompressPerByte)
}

// Pushdown returns the modeled time to evaluate a pushdown program over n
// bytes of in-place data.
func (c *CostModel) Pushdown(n int) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(float64(n) * c.PushdownPerByte)
}
