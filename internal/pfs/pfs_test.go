package pfs_test

import (
	"bytes"
	"testing"

	"labstor/internal/device"
	"labstor/internal/kernel"
	"labstor/internal/pfs"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

func newPFS(t *testing.T, nData int, class device.Class) *pfs.PFS {
	t.Helper()
	prof, _ := kernel.KFSProfileFor("ext4")
	mds := &workload.KernelFS{FSName: "ext4", KFS: kernel.NewKFS(prof, device.New("mds", device.NVMe, 1<<30), vtime.Default())}
	devs := make([]*device.Device, nData)
	for i := range devs {
		devs[i] = device.New("ds", class, 1<<30)
	}
	return pfs.New(mds, devs, pfs.Options{StripeSize: 64 << 10})
}

func TestPFSWriteReadRoundTrip(t *testing.T) {
	p := newPFS(t, 4, device.NVMe)
	c := p.NewClient(0)
	data := bytes.Repeat([]byte("stripe!"), 40000) // 280000 bytes -> 5 stripes
	if err := c.WriteFile("f.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("f.dat", len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped round trip mismatch")
	}
}

func TestPFSMultiWriteAppendsStripes(t *testing.T) {
	p := newPFS(t, 2, device.NVMe)
	c := p.NewClient(1)
	first := bytes.Repeat([]byte{1}, 64<<10)
	second := bytes.Repeat([]byte{2}, 64<<10)
	if err := c.WriteFile("f", first); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("f", second); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("f", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:64<<10], first) || !bytes.Equal(got[64<<10:], second) {
		t.Fatal("appended stripes mismatch")
	}
}

func TestPFSReadBeyondWrittenFails(t *testing.T) {
	p := newPFS(t, 2, device.NVMe)
	c := p.NewClient(0)
	c.WriteFile("s", make([]byte, 64<<10))
	if _, err := c.ReadFile("s", 256<<10); err == nil {
		t.Fatal("read of unwritten stripes succeeded")
	}
}

func TestPFSAccountingSplitsMetaAndData(t *testing.T) {
	p := newPFS(t, 4, device.HDD)
	c := p.NewClient(0)
	if err := c.WriteFile("f", make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if c.MetaTime() <= 0 || c.DataTime() <= 0 {
		t.Fatalf("accounting: meta=%v data=%v", c.MetaTime(), c.DataTime())
	}
	// On HDD, data transfer dominates metadata.
	if c.DataTime() <= c.MetaTime() {
		t.Fatalf("HDD data (%v) should dominate metadata (%v)", c.DataTime(), c.MetaTime())
	}
	if c.Now() <= 0 {
		t.Fatal("clock")
	}
}

func TestPFSStripesSpreadAcrossServers(t *testing.T) {
	prof, _ := kernel.KFSProfileFor("ext4")
	mds := &workload.KernelFS{FSName: "ext4", KFS: kernel.NewKFS(prof, device.New("mds", device.NVMe, 1<<30), vtime.Default())}
	devs := make([]*device.Device, 4)
	for i := range devs {
		devs[i] = device.New("ds", device.NVMe, 1<<30)
	}
	p := pfs.New(mds, devs, pfs.Options{StripeSize: 64 << 10})
	c := p.NewClient(0)
	if err := c.WriteFile("f", make([]byte, 8*64<<10)); err != nil {
		t.Fatal(err)
	}
	for i, d := range devs {
		_, w, _, bw, _ := d.Stats()
		if w != 2 || bw != 2*64<<10 {
			t.Fatalf("server %d holds %d stripes (%d bytes), want 2", i, w, bw)
		}
	}
}
