// Package pfs implements a minimal striped parallel filesystem in the
// OrangeFS deployment shape the paper evaluates (Fig. 9a): a dedicated
// metadata server (MDS) that tracks stripe placement, and a set of data
// servers that store stripes. The MDS runs over a pluggable *local* I/O
// stack — a simulated kernel filesystem or a LabStor stack — which is
// exactly the variable the experiment isolates: "the I/O stacks used
// locally on each storage node must be optimized to improve performance of
// the distributed layer".
//
// Data servers are plain simulated devices: the data path is identical
// across configurations, so any difference between runs comes from the
// metadata server's local stack.
package pfs

import (
	"fmt"
	"sync"

	"labstor/internal/device"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

// Options configures the PFS.
type Options struct {
	// StripeSize is the striping unit (the paper uses 64KB).
	StripeSize int
	// NetLatency is the one-way network latency charged per RPC.
	NetLatency vtime.Duration
	// MDSNetLatency overrides NetLatency for metadata RPCs (0 = same).
	MDSNetLatency vtime.Duration
}

func (o *Options) fill() {
	if o.StripeSize <= 0 {
		o.StripeSize = 64 << 10
	}
	if o.NetLatency <= 0 {
		o.NetLatency = 12 * vtime.Microsecond
	}
	if o.MDSNetLatency <= 0 {
		o.MDSNetLatency = o.NetLatency
	}
}

// PFS is one deployed parallel filesystem instance.
type PFS struct {
	opts Options

	// mds is the metadata server's local filesystem stack.
	mds workload.FS
	// dataServers hold the stripes.
	dataServers []*device.Device

	mu sync.Mutex
	// placement maps file -> ordered stripe locations.
	placement map[string][]stripeLoc
	// alloc is the next free stripe slot per data server.
	alloc []int64
}

// stripeLoc records where one stripe lives.
type stripeLoc struct {
	server int
	slot   int64
}

// New creates a PFS over the given metadata stack and data-server devices.
func New(mds workload.FS, dataServers []*device.Device, opts Options) *PFS {
	opts.fill()
	return &PFS{
		opts:        opts,
		mds:         mds,
		dataServers: dataServers,
		placement:   make(map[string][]stripeLoc),
		alloc:       make([]int64, len(dataServers)),
	}
}

// Client is one application process's PFS endpoint (an MPI rank).
type Client struct {
	pfs  *PFS
	rank int
	// mdsActor is this client's session with the metadata server's stack.
	mdsActor workload.Actor
	clock    vtime.Clock
	// metaVT and dataVT split the client's elapsed time into the metadata
	// (MDS RPC) and data (stripe transfer) components, so experiments can
	// isolate the metadata-stack variable from data-path noise.
	metaVT vtime.Duration
	dataVT vtime.Duration
}

// NewClient returns a client for the given rank.
func (p *PFS) NewClient(rank int) *Client {
	return &Client{pfs: p, rank: rank, mdsActor: p.mds.NewActor(rank)}
}

// Now returns the client's virtual time.
func (c *Client) Now() vtime.Time { return c.clock.Now() }

// MetaTime returns the cumulative time this client spent in metadata RPCs.
func (c *Client) MetaTime() vtime.Duration { return c.metaVT }

// DataTime returns the cumulative time this client spent in data transfers.
func (c *Client) DataTime() vtime.Duration { return c.dataVT }

// metaOp performs one metadata RPC: network there, an op on the MDS's local
// stack (starting no earlier than the client's send time), network back.
func (c *Client) metaOp(path string, create bool) error {
	o := c.pfs.opts
	c.clock.Advance(o.MDSNetLatency)
	// The MDS actor's clock tracks server-side queueing; sync it forward to
	// the RPC arrival so think time doesn't hide server load.
	before := c.mdsActor.Now()
	var err error
	if create {
		err = c.mdsActor.Create("stripes/" + path)
	} else {
		_, err = c.mdsActor.Stat("stripes/" + path)
	}
	served := c.mdsActor.Now().Sub(before)
	c.clock.Advance(served + o.MDSNetLatency)
	c.metaVT += served + 2*o.MDSNetLatency
	return err
}

// WriteFile writes data to the named file, striping across data servers.
// Each stripe costs one metadata RPC (placement record) plus one data-server
// write; stripes of a single call proceed in parallel on the data servers.
func (c *Client) WriteFile(path string, data []byte) error {
	p := c.pfs
	o := p.opts
	nStripes := (len(data) + o.StripeSize - 1) / o.StripeSize
	p.mu.Lock()
	start := len(p.placement[path])
	locs := make([]stripeLoc, nStripes)
	for i := 0; i < nStripes; i++ {
		s := (start + i) % len(p.dataServers)
		locs[i] = stripeLoc{server: s, slot: p.alloc[s]}
		p.alloc[s]++
	}
	p.placement[path] = append(p.placement[path], locs...)
	p.mu.Unlock()

	for i := 0; i < nStripes; i++ {
		// Placement metadata for every stripe goes through the MDS.
		if err := c.metaOp(fmt.Sprintf("%s.%d", path, start+i), true); err != nil {
			return err
		}
	}

	// Data transfers: issued concurrently after the metadata phase.
	base := c.clock.Now().Add(o.NetLatency)
	var maxEnd vtime.Time
	for i := 0; i < nStripes; i++ {
		lo := i * o.StripeSize
		hi := lo + o.StripeSize
		if hi > len(data) {
			hi = len(data)
		}
		dev := p.dataServers[locs[i].server]
		off := locs[i].slot * int64(o.StripeSize)
		_, end, err := dev.SubmitToQueue(c.rank, device.Write, off, data[lo:hi], base)
		if err != nil {
			return err
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	before := c.clock.Now()
	c.clock.AdvanceTo(maxEnd.Add(o.NetLatency))
	c.dataVT += c.clock.Now().Sub(before)
	return nil
}

// ReadFile reads size bytes of the named file (previously written in full).
func (c *Client) ReadFile(path string, size int) ([]byte, error) {
	p := c.pfs
	o := p.opts
	nStripes := (size + o.StripeSize - 1) / o.StripeSize
	out := make([]byte, size)

	p.mu.Lock()
	locs := append([]stripeLoc(nil), p.placement[path]...)
	p.mu.Unlock()
	if len(locs) < nStripes {
		return nil, fmt.Errorf("pfs: %q has %d stripes, read wants %d", path, len(locs), nStripes)
	}
	for i := 0; i < nStripes; i++ {
		// Stripe lookup on the MDS.
		if err := c.metaOp(fmt.Sprintf("%s.%d", path, i), false); err != nil {
			return nil, err
		}
	}
	base := c.clock.Now().Add(o.NetLatency)
	var maxEnd vtime.Time
	for i := 0; i < nStripes; i++ {
		lo := i * o.StripeSize
		hi := lo + o.StripeSize
		if hi > size {
			hi = size
		}
		dev := p.dataServers[locs[i].server]
		buf := make([]byte, hi-lo)
		_, end, err := dev.SubmitToQueue(c.rank, device.Read, locs[i].slot*int64(o.StripeSize), buf, base)
		if err != nil {
			return nil, err
		}
		copy(out[lo:hi], buf)
		if end > maxEnd {
			maxEnd = end
		}
	}
	before := c.clock.Now()
	c.clock.AdvanceTo(maxEnd.Add(o.NetLatency))
	c.dataVT += c.clock.Now().Sub(before)
	return out, nil
}
