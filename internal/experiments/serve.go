package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/core"
	"labstor/internal/runtime"
	"labstor/internal/serve"
)

// serveMounts is the route-key spread the routed ladder hashes over: each
// mount is a distinct consistent-hash key, so connections land on both
// shards instead of all following one key to one backend.
var serveMounts = func() []string {
	ms := make([]string, 16)
	for i := range ms {
		ms[i] = fmt.Sprintf("msg::/s%d", i)
	}
	return ms
}()

// serveBackend boots a runtime serving the ladder's message stacks on an
// ephemeral port.
func serveBackend(workers int, cfg serve.Config) (*runtime.Runtime, *serve.Server, string, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: workers, QueueDepth: 4096, Batch: 8})
	for _, mount := range serveMounts {
		uuid := mount + "/dum"
		if _, err := rt.Mount(core.NewStack(mount, core.Rules{}, []core.Vertex{
			{UUID: uuid, Type: "labstor.dummy"},
		})); err != nil {
			return nil, nil, "", err
		}
	}
	rt.Start()
	cfg.Addr = "127.0.0.1:0"
	srv := serve.New(rt, cfg)
	addr, err := srv.ListenAndServe()
	if err != nil {
		rt.Shutdown()
		return nil, nil, "", err
	}
	return rt, srv, addr.String(), nil
}

// serveDial connects with a short retry so a listen backlog burst during
// the 4000-connection rung does not fail the ladder.
func serveDial(addr, tenant string) (*serve.Conn, error) {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		var c *serve.Conn
		if c, err = serve.Dial(addr, tenant); err == nil {
			return c, nil
		}
		time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
	}
	return nil, err
}

// serveLadderRung drives conns concurrent connections, each pipelining
// opsPerConn requests in windows, and returns (ops/s, busy frames).
func serveLadderRung(addr string, conns, opsPerConn, window int) (float64, int64, error) {
	var wg sync.WaitGroup
	var busy, done int64
	errCh := make(chan error, conns)
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := serveDial(addr, fmt.Sprintf("bench-%d", i%64))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			mount := serveMounts[i%len(serveMounts)]
			rfs := make([]serve.ReqFrame, window)
			for left := opsPerConn; left > 0; {
				n := window
				if left < n {
					n = left
				}
				for j := 0; j < n; j++ {
					rfs[j] = serve.ReqFrame{Op: core.OpMessage, Mount: mount}
				}
				results, err := c.Pipeline(rfs[:n])
				if err != nil {
					errCh <- err
					return
				}
				for _, r := range results {
					if r.Busy {
						atomic.AddInt64(&busy, 1)
						continue
					}
					if e := r.Err(); e != nil {
						errCh <- e
						return
					}
					atomic.AddInt64(&done, 1)
				}
				left -= n
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	return float64(done) / elapsed.Seconds(), busy, nil
}

// Serve measures the network serving front end end-to-end over real TCP
// loopback: a concurrent-connection ladder in direct and sharded-router
// modes, per-tenant rate-limit enforcement, and explicit BUSY backpressure
// under an inflight overload. Wall-clock ops/s, not modeled time: the wire,
// the admission plane and the SubmitBatch hand-off are the system under
// test.
func Serve(conns []int, opsPerConn int) (*Result, error) {
	const window = 32
	res := &Result{
		Name:  "serve: network front end, admission control, shard routing",
		Table: newTable("mode", "conns", "ops/s", "busy frames"),
	}
	res.V("ops_per_conn", float64(opsPerConn))
	maxConns := 0

	// Direct mode: clients straight at one serving runtime. The default
	// policy is effectively unthrottled so the rung measures the data path.
	open := serve.TenantPolicy{Inflight: 1 << 20}
	rt, srv, addr, err := serveBackend(2, serve.Config{Default: open})
	if err != nil {
		return nil, err
	}
	for _, n := range conns {
		ops, busy, err := serveLadderRung(addr, n, opsPerConn, window)
		if err != nil {
			srv.Close()
			rt.Shutdown()
			return nil, fmt.Errorf("direct rung %d: %w", n, err)
		}
		res.Table.AddRowf("direct", n, fmt.Sprintf("%.0f", ops), busy)
		res.V(fmt.Sprintf("direct_c%d_ops_per_s", n), ops)
		if n > maxConns {
			maxConns = n
		}
	}
	srv.Close()
	rt.Shutdown()

	// Routed mode: the same ladder through a consistent-hash router over
	// two backend runtimes; mounts spread route keys across both shards.
	rt1, srv1, addr1, err := serveBackend(1, serve.Config{Default: open})
	if err != nil {
		return nil, err
	}
	rt2, srv2, addr2, err := serveBackend(1, serve.Config{Default: open})
	if err != nil {
		srv1.Close()
		rt1.Shutdown()
		return nil, err
	}
	// 512 virtual points per shard keeps the 2-backend ring balanced enough
	// that 16 route keys essentially never collapse onto one side.
	router := serve.NewRouter([]string{addr1, addr2}, 512, nil)
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err == nil {
		for _, n := range conns {
			ops, busy, rerr := serveLadderRung(raddr.String(), n, opsPerConn, window)
			if rerr != nil {
				err = fmt.Errorf("routed rung %d: %w", n, rerr)
				break
			}
			res.Table.AddRowf("routed", n, fmt.Sprintf("%.0f", ops), busy)
			res.V(fmt.Sprintf("routed_c%d_ops_per_s", n), ops)
		}
	}
	// Both shards must have carried traffic for the routed numbers to mean
	// anything.
	if err == nil {
		shardOps := 0
		for _, b := range []string{addr1, addr2} {
			if router.Metrics().Snapshot().Counters["router.backend_ops;backend="+b] > 0 {
				shardOps++
			}
		}
		res.V("routed_shards_active", float64(shardOps))
		if shardOps < 2 {
			err = fmt.Errorf("routing collapsed onto %d of 2 shards", shardOps)
		}
	}
	router.Close()
	srv1.Close()
	srv2.Close()
	rt1.Shutdown()
	rt2.Shutdown()
	if err != nil {
		return nil, err
	}

	// Rate-limit enforcement: a capped tenant against an open one on the
	// same server. The capped tenant's admitted throughput must flatten at
	// its configured rate while the open tenant runs free.
	const cappedRate = 2000
	rt, srv, addr, err = serveBackend(2, serve.Config{
		Default: open,
		Tenants: []serve.TenantPolicy{{Name: "capped", RatePerSec: cappedRate, Burst: 64}},
	})
	if err != nil {
		return nil, err
	}
	const rlWindow = 700 * time.Millisecond
	rlRun := func(tenant string) (ok, busy int64, err error) {
		var wg sync.WaitGroup
		errCh := make(chan error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := serveDial(addr, tenant)
				if err != nil {
					errCh <- err
					return
				}
				defer c.Close()
				deadline := time.Now().Add(rlWindow)
				for time.Now().Before(deadline) {
					r, err := c.Do(&serve.ReqFrame{Op: core.OpMessage, Mount: serveMounts[0]})
					if err != nil {
						errCh <- err
						return
					}
					if r.Busy {
						atomic.AddInt64(&busy, 1)
						time.Sleep(time.Duration(r.RetryNs))
						continue
					}
					if e := r.Err(); e != nil {
						errCh <- e
						return
					}
					atomic.AddInt64(&ok, 1)
				}
			}()
		}
		wg.Wait()
		select {
		case err = <-errCh:
		default:
		}
		return ok, busy, err
	}
	var cappedOK, cappedBusy, openOK int64
	var rlErr error
	var rlWG sync.WaitGroup
	rlWG.Add(2)
	go func() {
		defer rlWG.Done()
		ok, busy, err := rlRun("capped")
		atomic.StoreInt64(&cappedOK, ok)
		atomic.StoreInt64(&cappedBusy, busy)
		if err != nil {
			rlErr = err
		}
	}()
	go func() {
		defer rlWG.Done()
		ok, _, err := rlRun("open")
		atomic.StoreInt64(&openOK, ok)
		if err != nil {
			rlErr = err
		}
	}()
	rlWG.Wait()
	srv.Close()
	rt.Shutdown()
	if rlErr != nil {
		return nil, rlErr
	}
	cappedRateMeasured := float64(cappedOK) / rlWindow.Seconds()
	openRateMeasured := float64(openOK) / rlWindow.Seconds()
	res.Table.AddRowf("ratelimit capped", 8, fmt.Sprintf("%.0f", cappedRateMeasured), cappedBusy)
	res.Table.AddRowf("ratelimit open", 8, fmt.Sprintf("%.0f", openRateMeasured), 0)
	res.V("ratelimit_capped_ops_per_s", cappedRateMeasured)
	res.V("ratelimit_open_ops_per_s", openRateMeasured)
	res.V("ratelimit_capped_busy", float64(cappedBusy))
	enforced := 0.0
	if cappedRateMeasured < 2*cappedRate && cappedBusy > 0 && openRateMeasured > 2*cappedRateMeasured {
		enforced = 1
	}
	res.V("ratelimit_enforced", enforced)
	if enforced == 0 {
		return nil, fmt.Errorf("rate limit not enforced: capped %.0f/s (busy %d) vs open %.0f/s",
			cappedRateMeasured, cappedBusy, openRateMeasured)
	}

	// BUSY backpressure: a tiny inflight budget against oversized pipeline
	// windows. Overflow must surface as explicit BUSY frames, with the
	// admitted remainder still completing.
	rt, srv, addr, err = serveBackend(1, serve.Config{Default: serve.TenantPolicy{Inflight: 16}})
	if err != nil {
		return nil, err
	}
	bpOps, bpBusy, err := serveLadderRung(addr, 8, 256, 128)
	srv.Close()
	rt.Shutdown()
	if err != nil {
		return nil, err
	}
	res.Table.AddRowf("backpressure", 8, fmt.Sprintf("%.0f", bpOps), bpBusy)
	res.V("backpressure_busy_frames", float64(bpBusy))
	if bpBusy == 0 {
		return nil, fmt.Errorf("no BUSY frames under 64x inflight overload")
	}

	res.V("max_conns", float64(maxConns))
	res.Notes = fmt.Sprintf(
		"Wall-clock TCP loopback. %d concurrent connections sustained; capped tenant held to ~%d ops/s (%d BUSY) while the open tenant ran at %.0f ops/s; inflight overload produced %d explicit BUSY frames.",
		maxConns, cappedRate, cappedBusy, openRateMeasured, bpBusy)
	return res, nil
}
