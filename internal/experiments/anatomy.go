package experiments

import (
	"fmt"
	"sort"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/vtime"
)

// Anatomy reproduces Fig. 4(a), "I/O stack anatomy": 4KB reads and writes
// to NVMe through a traditional-looking LabStack (LabFS + permissions +
// LRU cache + No-Op scheduling + Kernel Driver, one Runtime worker), with
// the time spent in each LabMod on the data path broken out.
//
// Paper result: I/O dominates (~66%); software is ~34%, led by the page
// cache (~17%, data copying) and shared-memory IPC (~8.4%); the No-Op
// scheduler ~5%; filesystem metadata and permissions ~3% each; the driver
// ~1%.
func Anatomy() (*Result, error) {
	rig := NewRig(device.NVMe, 512<<20, 1, "round_robin")
	defer rig.Close()
	cfg := LabAll("kernel_driver")
	// A 1 MiB cache makes the sequential read pass miss (the paper clears
	// all system caches before each test), so reads show real device time.
	cfg.CacheMB = 1
	if _, err := MountLab(rig.RT, "fs::/anatomy", "dev0", cfg); err != nil {
		return nil, err
	}
	cli := rig.RT.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})

	const ops = 400
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	buckets := map[string]string{
		"io": "I/O", "cache": "Page Cache", "ipc": "IPC", "queue": "IPC",
		"registry": "IPC", "genericfs": "IPC", "sched": "I/O Scheduler",
		"fs_meta": "FS Metadata", "perm": "Permissions", "driver": "Driver",
	}
	run := func(op core.Op) (map[string]vtime.Duration, vtime.Duration, error) {
		agg := make(map[string]vtime.Duration)
		var total vtime.Duration
		for i := 0; i < ops; i++ {
			req := core.NewRequest(op)
			req.Trace = true
			req.Path = fmt.Sprintf("f%d", i)
			req.Flags = core.FlagCreate
			req.Offset = 0
			req.Size = len(payload)
			req.Data = make([]byte, len(payload))
			copy(req.Data, payload)
			if err := cli.Submit("fs::/anatomy", req); err != nil {
				return nil, 0, err
			}
			for _, st := range req.Stages {
				b, ok := buckets[st.Stage]
				if !ok {
					b = "Other"
				}
				agg[b] += st.Cost
			}
			total += req.Latency()
		}
		return agg, total, nil
	}

	wAgg, wTotal, err := run(core.OpWrite)
	if err != nil {
		return nil, err
	}
	rAgg, rTotal, err := run(core.OpRead)
	if err != nil {
		return nil, err
	}

	return buildAnatomyResult(wAgg, wTotal, rAgg, rTotal, ops)
}

func buildAnatomyResult(wAgg map[string]vtime.Duration, wTotal vtime.Duration,
	rAgg map[string]vtime.Duration, rTotal vtime.Duration, ops int) (*Result, error) {

	res := &Result{Name: "Fig 4(a): I/O stack anatomy (4KB on NVMe, 1 worker)"}
	res.Table = newTable("Stage", "Write %", "Write us/op", "Read %", "Read us/op")

	stages := map[string]bool{}
	for s := range wAgg {
		stages[s] = true
	}
	for s := range rAgg {
		stages[s] = true
	}
	ordered := make([]string, 0, len(stages))
	for s := range stages {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return wAgg[ordered[i]] > wAgg[ordered[j]] })

	for _, s := range ordered {
		wp := 100 * float64(wAgg[s]) / float64(wTotal)
		rp := 100 * float64(rAgg[s]) / float64(rTotal)
		res.Table.AddRowf(s, wp, wAgg[s].Micros()/float64(ops), rp, rAgg[s].Micros()/float64(ops))
		res.V("write_pct_"+s, wp)
		res.V("read_pct_"+s, rp)
	}
	res.V("write_us", wTotal.Micros()/float64(ops))
	res.V("read_us", rTotal.Micros()/float64(ops))
	res.Notes = fmt.Sprintf("avg write %.2f us, avg read %.2f us (modeled virtual time, %d ops each)",
		wTotal.Micros()/float64(ops), rTotal.Micros()/float64(ops), ops)
	return res, nil
}
