package experiments

import (
	"fmt"

	"labstor/internal/device"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

// Labios reproduces Fig. 9(b), "Distributed object store": the LABIOS
// worker's label I/O (8KB put per label, single thread) over different
// node-local backends. The baseline translates each label to a UNIX file —
// an open/seek/write/close sequence against ext4/XFS/F2FS — while LabKVS
// stores a label with a single put. Three LabKVS stacks are compared
// ("Centralized+Permissions", "Centralized", "Minimal"/sync), on NVMe and
// PMEM.
//
// Paper result: filesystem backends lose ≥12% to LabKVS (POSIX translation
// needs 4 calls where put needs 1); relaxing access control buys up to an
// additional 16%.
func Labios(labels int) (*Result, error) {
	if labels <= 0 {
		labels = 400
	}
	res := &Result{Name: "Fig 9(b): LABIOS worker label store (8KB labels, 1 thread)"}
	res.Table = newTable("Device", "Backend", "kops/s", "vs ext4")

	for _, class := range []device.Class{device.NVMe, device.PMEM} {
		var ext4Rate float64
		backends := []string{"ext4", "xfs", "f2fs", "LabKVS-All", "LabKVS-Min", "LabKVS-D"}
		for _, backend := range backends {
			rate, err := runLabiosTrial(class, backend, labels)
			if err != nil {
				return nil, err
			}
			if backend == "ext4" {
				ext4Rate = rate
			}
			res.Table.AddRowf(class.String(), backend, rate/1000, rate/ext4Rate)
			res.V(fmt.Sprintf("%s_%s", class, backend), rate)
		}
	}
	res.Notes = "file backends store each label via create/stat/write/fsync (the POSIX translation); LabKVS uses a single put"
	return res, nil
}

func runLabiosTrial(class device.Class, backend string, labels int) (float64, error) {
	var kv workload.KVStore
	var cleanup func()

	switch backend {
	case "ext4", "xfs", "f2fs":
		prof, err := kernel.KFSProfileFor(backend)
		if err != nil {
			return 0, err
		}
		dev := device.New("dev0", class, 2<<30)
		kv = workload.FileKV(&workload.KernelFS{FSName: backend, KFS: kernel.NewKFS(prof, dev, vtime.Default())})
		cleanup = func() {}
	default:
		rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096})
		dev := device.New("dev0", class, 2<<30)
		rt.AddDevice(dev)
		driver := "kernel_driver"
		if class == device.PMEM {
			driver = "dax"
		}
		cfg := LabCfg{Generic: true, KV: true, Sched: "noop", Driver: driver, LogMB: 8}
		if class == device.PMEM {
			cfg.Sched = "" // DAX path has no block queues to schedule
		}
		switch backend {
		case "LabKVS-All":
			cfg.Perms = true
		case "LabKVS-Min":
		case "LabKVS-D":
			cfg.Sync = true
		default:
			return 0, fmt.Errorf("experiments: unknown backend %q", backend)
		}
		if _, err := MountLab(rt, "kv::/labios", "dev0", cfg); err != nil {
			return 0, err
		}
		rt.Start()
		kv = &workload.LabStorKVS{KVName: backend, RT: rt, Mount: "kv::/labios"}
		cleanup = rt.Shutdown
	}
	defer cleanup()

	r, err := workload.RunLabios(kv, workload.LabiosJob{Threads: 1, Labels: labels, LabelSize: 8 << 10})
	if err != nil {
		return 0, err
	}
	return r.OpsPerSec, nil
}
