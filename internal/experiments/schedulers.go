package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// Schedulers reproduces Fig. 8 / Table II, "Developing & customizing I/O
// policies": the No-Op and blk-switch I/O schedulers integrated into
// LabStor versus their in-kernel counterparts. A throughput-bound T-App
// (8 threads, 64KB random writes, queue depth 32) and a latency-bound
// L-App (8 threads, 4KB random writes, queue depth 1) run either isolated
// (disjoint cores/queues) or colocated (sharing cores); the experiment
// reports the L-App's average and P99 latency.
//
// Paper result: isolated, No-Op matches or beats blk-switch (everything is
// already on separate queues, and No-Op is cheaper — Lab-NoOp ~5% under
// Lab-Blk). Colocated, No-Op suffers head-of-line blocking behind 64KB
// bursts (~945 us vs ~106 us for blk-switch); LabStor's blk-switch
// undercuts the kernel's by ~20% by skipping the syscall/block layers.
func Schedulers(lOps, tOps int) (*Result, error) {
	if lOps <= 0 {
		lOps = 400
	}
	if tOps <= 0 {
		tOps = 100
	}
	res := &Result{Name: "Fig 8 / Table II: I/O scheduler comparison (L-App latency)"}
	res.Table = newTable("System", "Scenario", "Avg (us)", "P99 (us)")

	systems := []string{"Linux-NoOp", "Linux-Blk", "Lab-NoOp", "Lab-Blk"}
	for _, sys := range systems {
		for _, colocated := range []bool{false, true} {
			scenario := "isolated"
			if colocated {
				scenario = "colocated"
			}
			avg, p99, err := runSchedulerTrial(sys, colocated, lOps, tOps)
			if err != nil {
				return nil, err
			}
			res.Table.AddRowf(sys, scenario, avg, p99)
			res.V(fmt.Sprintf("%s_%s_avg", sys, scenario), avg)
			res.V(fmt.Sprintf("%s_%s_p99", sys, scenario), p99)
		}
	}
	res.Notes = "T-App: 8 threads, 64KB randwrite, qd32. L-App: 8 threads, 4KB randwrite, qd1."
	return res, nil
}

const schedThreads = 8

func runSchedulerTrial(system string, colocated bool, lOps, tOps int) (avg, p99 float64, err error) {
	lat := stats.NewSample(schedThreads * lOps)
	var mu sync.Mutex

	lCore := func(i int) int { return i }
	tCore := func(i int) int {
		if colocated {
			return i // share the L-App's cores -> same hardware queues
		}
		return schedThreads + i
	}

	var lDone atomic.Int32
	pacer := NewPacer(64)

	switch system {
	case "Linux-NoOp", "Linux-Blk":
		dev := device.New("raw", device.NVMe, 8<<30)
		model := vtime.Default()
		newEng := func() (*kernel.Engine, error) { return kernel.NewEngine("io_uring", dev, model) }

		var wg sync.WaitGroup
		errs := make([]error, 2*schedThreads)
		// T-App threads: stream 64KB bursts at qd32 until the L-App's
		// measurement completes.
		for i := 0; i < schedThreads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				eng, e := newEng()
				if e != nil {
					errs[i] = e
					return
				}
				// blk-switch keeps throughput-bound I/O core-keyed.
				eng.Pace = pacer.Pace
				t := kernel.NewThread(tCore(i))
				rng := rand.New(rand.NewSource(int64(i)))
				maxOff := dev.Capacity()/(128<<10) - 1
				for lDone.Load() < schedThreads {
					ops := make([]kernel.IOOp, tOps)
					for j := range ops {
						ops[j] = kernel.IOOp{Op: device.Write, Offset: rng.Int63n(maxOff) * (64 << 10), Size: 64 << 10}
					}
					if _, e := eng.RunQueue(t, ops, 32, nil); e != nil {
						errs[i] = e
						return
					}
				}
			}(i)
		}
		// L-App threads.
		for i := 0; i < schedThreads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer lDone.Add(1)
				eng, e := newEng()
				if e != nil {
					errs[schedThreads+i] = e
					return
				}
				if system == "Linux-Blk" {
					eng.SetQueueSteer(kernel.BlkSwitchSteer(dev))
					// In-kernel steering: load computation + cross-core
					// request handoff through the target hctx lock.
					eng.AddSubmitCost(2 * model.BlkSwitchSched)
				}
				t := kernel.NewThread(lCore(i))
				rng := rand.New(rand.NewSource(int64(100 + i)))
				buf := make([]byte, 4096)
				maxOff := dev.Capacity()/4096 - 1
				warm := lOps / 4
				for j := 0; j < lOps+warm; j++ {
					d, e := eng.DoIO(t, device.Write, rng.Int63n(maxOff)*4096, buf)
					if e != nil {
						errs[schedThreads+i] = e
						return
					}
					if j >= warm {
						mu.Lock()
						lat.Observe(float64(d))
						mu.Unlock()
					}
					pacer.Pace(t.Now())
				}
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return 0, 0, e
			}
		}

	case "Lab-NoOp", "Lab-Blk":
		sched := "noop"
		if system == "Lab-Blk" {
			sched = "blkswitch"
		}
		rt := runtime.New(runtime.Options{MaxWorkers: 8, QueueDepth: 4096})
		dev := device.New("dev0", device.NVMe, 8<<30)
		rt.AddDevice(dev)
		if _, err := MountLab(rt, "blk::/raw", "dev0", LabCfg{NoFS: true, Sched: sched, Driver: "kernel_driver"}); err != nil {
			return 0, 0, err
		}
		rt.Start()
		defer rt.Shutdown()
		stack, _ := rt.Namespace.Lookup("blk::/raw")

		var wg sync.WaitGroup
		errs := make([]error, 2*schedThreads)
		tWindows := make([][]*core.Request, schedThreads)
		// Deterministic connect order: T clients then L clients, so RR
		// queue assignment colocates one of each per worker.
		tClis := make([]*runtime.Client, schedThreads)
		lClis := make([]*runtime.Client, schedThreads)
		for i := 0; i < schedThreads; i++ {
			tClis[i] = rt.Connect(ipc.Credentials{PID: 300 + i, UID: 1000, GID: 1000})
			tClis[i].OriginCore = tCore(i)
		}
		for i := 0; i < schedThreads; i++ {
			lClis[i] = rt.Connect(ipc.Credentials{PID: 400 + i, UID: 1000, GID: 1000})
			lClis[i].OriginCore = lCore(i)
		}
		// T-App: keep a sliding window of 32 requests outstanding (true
		// queue-depth semantics: one new submission per completion) until
		// the L-App completes.
		for i := 0; i < schedThreads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cli := tClis[i]
				rng := rand.New(rand.NewSource(int64(i)))
				buf := make([]byte, 64<<10)
				maxOff := dev.Capacity()/(128<<10) - 1
				submit := func() bool {
					req := core.NewRequest(core.OpBlockWrite)
					req.Offset = rng.Int63n(maxOff) * (64 << 10)
					req.Size = len(buf)
					req.Data = buf
					if e := cli.SubmitStackAsync(stack, req); e != nil {
						errs[i] = e
						return false
					}
					window := append(tWindows[i], req)
					tWindows[i] = window
					return true
				}
				for lDone.Load() < schedThreads {
					for len(tWindows[i]) < 32 {
						if !submit() {
							return
						}
					}
					oldest := tWindows[i][0]
					tWindows[i] = tWindows[i][1:]
					if e := cli.WaitAll([]*core.Request{oldest}); e != nil {
						errs[i] = e
						return
					}
					pacer.Pace(oldest.Clock)
				}
			}(i)
		}
		for i := 0; i < schedThreads; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer lDone.Add(1)
				cli := lClis[i]
				rng := rand.New(rand.NewSource(int64(100 + i)))
				buf := make([]byte, 4096)
				maxOff := dev.Capacity()/4096 - 1
				warm := lOps / 4
				for j := 0; j < lOps+warm; j++ {
					req := core.NewRequest(core.OpBlockWrite)
					req.Trace = debugSched
					req.Offset = rng.Int63n(maxOff) * 4096
					req.Size = len(buf)
					req.Data = buf
					if e := cli.SubmitStack(stack, req); e != nil || req.Err != nil {
						if e == nil {
							e = req.Err
						}
						errs[schedThreads+i] = e
						return
					}
					if j >= warm {
						mu.Lock()
						lat.Observe(float64(req.Latency()))
						mu.Unlock()
						if debugSched && req.Latency() > 500*vtime.Microsecond {
							fmt.Printf("slow L op: cli=%d lat=%v hctx=%d cpu=%v stages=%v\n",
								i, req.Latency(), req.Hctx, req.CPUTime, req.Stages)
						}
					}
					pacer.Pace(cli.Clock())
				}
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return 0, 0, e
			}
		}
	default:
		return 0, 0, fmt.Errorf("experiments: unknown scheduler system %q", system)
	}

	return lat.Mean() / float64(vtime.Microsecond), lat.Percentile(99) / float64(vtime.Microsecond), nil
}

// debugSched enables slow-request tracing in the scheduler trials.
var debugSched = false
