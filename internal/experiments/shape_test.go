package experiments

import (
	"testing"

	"labstor/internal/device"
)

// These tests assert the *qualitative shape* of each reproduced experiment —
// who wins, roughly by how much, where the crossovers are — at reduced
// workload sizes. They are the automated check that the reproduction tells
// the same story as the paper's figures.

func TestShapeAnatomy(t *testing.T) {
	res, err := Anatomy()
	if err != nil {
		t.Fatal(err)
	}
	// I/O dominates; software is a large minority.
	ioPct := res.Values["write_pct_I/O"]
	if ioPct < 40 || ioPct > 85 {
		t.Fatalf("I/O share %.1f%% out of range", ioPct)
	}
	// Page cache is the largest software component (the paper's 17%).
	if res.Values["write_pct_Page Cache"] <= res.Values["write_pct_Permissions"] {
		t.Fatal("page cache must out-cost permissions")
	}
	// IPC is a visible single-digit share (paper: 8.4%).
	ipc := res.Values["write_pct_IPC"]
	if ipc < 3 || ipc > 20 {
		t.Fatalf("IPC share %.1f%%", ipc)
	}
	// Permissions ~3%.
	if p := res.Values["write_pct_Permissions"]; p < 1 || p > 8 {
		t.Fatalf("permissions share %.1f%%", p)
	}
}

func TestShapeStorageAPI(t *testing.T) {
	res, err := StorageAPI(120)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// NVMe 4KB ladder: SPDK > KernelDriver > io_uring > libaio > posix > posix_aio.
	nv := func(api string) float64 { return v["NVMe_4096_"+api] }
	if !(nv("lab_spdk") > nv("lab_kernel_driver") &&
		nv("lab_kernel_driver") > nv("io_uring") &&
		nv("io_uring") > nv("libaio") &&
		nv("libaio") > nv("posix") &&
		nv("posix") > nv("posix_aio")) {
		t.Fatalf("NVMe 4K ladder broken: spdk=%.0f kd=%.0f uring=%.0f libaio=%.0f posix=%.0f aio=%.0f",
			nv("lab_spdk"), nv("lab_kernel_driver"), nv("io_uring"), nv("libaio"), nv("posix"), nv("posix_aio"))
	}
	// HDD: everything ties (seek-dominated) within 2%.
	h := func(api string) float64 { return v["HDD_4096_"+api] }
	if h("posix") < h("lab_kernel_driver")*0.98 || h("posix") > h("lab_kernel_driver")*1.02 {
		t.Fatalf("HDD not seek-dominated: posix %.1f vs kd %.1f", h("posix"), h("lab_kernel_driver"))
	}
	// The 128KB spread is much smaller than the 4KB spread on NVMe.
	spread4 := nv("lab_spdk") / nv("posix")
	nv128 := func(api string) float64 { return v["NVMe_131072_"+api] }
	spread128 := nv128("lab_spdk") / nv128("posix")
	if spread128 >= spread4 {
		t.Fatalf("large-IO spread (%.2f) must collapse vs 4K (%.2f)", spread128, spread4)
	}
	// DAX wins on PMEM.
	if v["PMEM_4096_lab_dax"] <= v["PMEM_4096_io_uring"] {
		t.Fatal("DAX must beat kernel APIs on PMEM")
	}
}

func TestShapeMetadata(t *testing.T) {
	res, err := Metadata([]int{1, 8, 16}, 150)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// Single-thread: LabFS-All ~3x over every kernel FS (paper: up to 3x).
	for _, kfs := range []string{"ext4", "xfs", "f2fs"} {
		ratio := v["LabFS-All_1"] / v[kfs+"_1"]
		if ratio < 2 || ratio > 6 {
			t.Fatalf("LabFS-All/%s single-thread ratio %.2f", kfs, ratio)
		}
	}
	// Configuration ladder: removing permissions helps; decentralizing helps more.
	if !(v["LabFS-D_1"] > v["LabFS-Min_1"] && v["LabFS-Min_1"] > v["LabFS-All_1"]) {
		t.Fatalf("config ladder broken: all=%.0f min=%.0f d=%.0f", v["LabFS-All_1"], v["LabFS-Min_1"], v["LabFS-D_1"])
	}
	// LabFS scales with threads; kernel FSes plateau on their locks.
	if v["LabFS-Min_16"] < 4*v["LabFS-Min_1"] {
		t.Fatalf("LabFS does not scale: %.0f -> %.0f", v["LabFS-Min_1"], v["LabFS-Min_16"])
	}
	if v["ext4_16"] > 4*v["ext4_1"] {
		t.Fatalf("ext4 scales too well: %.0f -> %.0f", v["ext4_1"], v["ext4_16"])
	}
}

func TestShapeLabios(t *testing.T) {
	res, err := Labios(150)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// LabKVS beats every file translation on NVMe (paper: >=12%).
	for _, kfs := range []string{"ext4", "xfs", "f2fs"} {
		if v["NVMe_LabKVS-All"] <= v["NVMe_"+kfs]*1.12 {
			t.Fatalf("LabKVS-All (%.0f) not >=12%% over %s (%.0f)", v["NVMe_LabKVS-All"], kfs, v["NVMe_"+kfs])
		}
	}
	// Relaxing access control buys more (paper: +16% more).
	if v["NVMe_LabKVS-D"] <= v["NVMe_LabKVS-All"] {
		t.Fatal("decentralized LabKVS must beat centralized+permissions")
	}
	// PMEM gains exceed NVMe gains.
	if v["PMEM_LabKVS-All"]/v["PMEM_ext4"] <= v["NVMe_LabKVS-All"]/v["NVMe_ext4"] {
		t.Fatal("PMEM advantage must exceed NVMe advantage")
	}
}

func TestShapePFS(t *testing.T) {
	res, err := PFS(8, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	nvme := v["total_NVMe_ext4"] / v["total_NVMe_LabFS-All"]
	hdd := v["total_HDD_ext4"] / v["total_HDD_LabFS-All"]
	if nvme <= 1.0 {
		t.Fatalf("no PFS speedup on NVMe: %.3f", nvme)
	}
	if hdd >= nvme {
		t.Fatalf("HDD speedup (%.3f) must be smaller than NVMe (%.3f) — metadata wins drown in seeks", hdd, nvme)
	}
}

func TestShapeFilebench(t *testing.T) {
	res, err := Filebench(3, []device.Class{device.NVMe})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// LabFS wins the metadata/fsync-heavy personalities.
	for _, p := range []string{"varmail", "webproxy"} {
		if v["NVMe_"+p+"_LabFS-All"] <= v["NVMe_"+p+"_ext4"] {
			t.Fatalf("%s: LabFS-All (%.0f) does not beat ext4 (%.0f)", p, v["NVMe_"+p+"_LabFS-All"], v["NVMe_"+p+"_ext4"])
		}
	}
	// fileserver (large I/O) is the closest race (paper's exception).
	fsRatio := v["NVMe_fileserver_LabFS-All"] / v["NVMe_fileserver_ext4"]
	vmRatio := v["NVMe_webserver_LabFS-All"] / v["NVMe_webserver_ext4"]
	if fsRatio >= vmRatio {
		t.Fatalf("fileserver ratio (%.2f) must be smaller than webserver's (%.2f)", fsRatio, vmRatio)
	}
}

func TestShapeAblations(t *testing.T) {
	res, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if v["shards_64"] < 1.5*v["shards_1"] {
		t.Fatalf("sharding buys too little: %.0f vs %.0f kops", v["shards_64"], v["shards_1"])
	}
	if v["exec_sync_true"] >= v["exec_sync_false"] {
		t.Fatalf("decentralized execution (%.1fus) must undercut centralized (%.1fus)",
			v["exec_sync_true"], v["exec_sync_false"])
	}
	if v["cache_true"] >= v["cache_false"]/2 {
		t.Fatalf("cache hit (%.1fus) must be far below device read (%.1fus)",
			v["cache_true"], v["cache_false"])
	}
	if v["readahead_true"] >= v["readahead_false"] {
		t.Fatalf("readahead (%.1fus) must beat cold reads (%.1fus)",
			v["readahead_true"], v["readahead_false"])
	}
}

func TestShapeDynamicCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := DynamicCPU([]int{1, 8}, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// One worker saturates at 8 clients; 8 workers do not.
	if v["iops_1-worker_8"] >= v["iops_8-workers_8"]*0.85 {
		t.Fatalf("single worker did not saturate: %.0f vs %.0f", v["iops_1-worker_8"], v["iops_8-workers_8"])
	}
	// Dynamic approaches 8-worker IOPS with fewer cores.
	if v["iops_dynamic_8"] < v["iops_8-workers_8"]*0.7 {
		t.Fatalf("dynamic IOPS too low: %.0f vs %.0f", v["iops_dynamic_8"], v["iops_8-workers_8"])
	}
	if v["cores_dynamic_8"] >= v["cores_8-workers_8"]*0.75 {
		t.Fatalf("dynamic used %.1f cores vs static %.1f", v["cores_dynamic_8"], v["cores_8-workers_8"])
	}
}

func TestShapeUpgradeCost(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := LiveUpgrade(20000, []int{0, 256})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// Upgrades add runtime, monotonically.
	if v["centralized_256"] <= v["centralized_0"] {
		t.Fatal("256 upgrades did not add runtime")
	}
	// But each upgrade costs milliseconds, not seconds (paper: ~5ms each).
	perUpgrade := (v["centralized_256"] - v["centralized_0"]) / 256
	if perUpgrade > 0.05 {
		t.Fatalf("per-upgrade cost %.4fs too high", perUpgrade)
	}
}

func TestShapeSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Only the two Lab configurations (the Linux side shares the model and
	// is covered by kernel tests); colocated vs isolated.
	avgNoopIso, _, err := runSchedulerTrial("Lab-NoOp", false, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	avgNoopCo, _, err := runSchedulerTrial("Lab-NoOp", true, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	avgBlkCo, _, err := runSchedulerTrial("Lab-Blk", true, 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Colocation destroys NoOp latency (head-of-line blocking).
	if avgNoopCo < 5*avgNoopIso {
		t.Fatalf("no head-of-line blocking: iso %.0fus vs co %.0fus", avgNoopIso, avgNoopCo)
	}
	// blk-switch restores it. (Threshold is 3x rather than the ~60x seen in
	// normal runs: under -race the pacer's wall/virtual coupling coarsens
	// and some residual interference leaks into the sample.)
	if avgBlkCo > avgNoopCo/3 {
		t.Fatalf("blk-switch did not isolate: %.0fus vs noop %.0fus", avgBlkCo, avgNoopCo)
	}
}

func TestShapePartitioning(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lRR, _, bwRR, err := runPartitionTrial(4, "round_robin", 60, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	lDyn, _, bwDyn, err := runPartitionTrial(4, "dynamic", 60, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic orchestration improves L latency by orders of magnitude.
	if lDyn > lRR/5 {
		t.Fatalf("dynamic latency %.0fus not far below RR %.0fus", lDyn, lRR)
	}
	// At a bandwidth cost below ~70%.
	if bwDyn < bwRR*0.3 {
		t.Fatalf("dynamic bandwidth collapsed: %.0f vs %.0f", bwDyn, bwRR)
	}
}

// TestDeterminism asserts the virtual-time methodology's core promise:
// single-threaded experiments produce bit-identical modeled results across
// runs, independent of host scheduling.
func TestDeterminism(t *testing.T) {
	a1, err := Anatomy()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Anatomy()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"write_us", "read_us", "write_pct_I/O"} {
		if a1.Values[k] != a2.Values[k] {
			t.Fatalf("anatomy %s not deterministic: %v vs %v", k, a1.Values[k], a2.Values[k])
		}
	}
	s1, err := StorageAPI(60)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := StorageAPI(60)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range s1.Values {
		if s2.Values[k] != v {
			t.Fatalf("storageapi %s not deterministic: %v vs %v", k, v, s2.Values[k])
		}
	}
}
