// Package experiments implements one runner per table and figure of the
// paper's evaluation (§IV). Each runner builds the configurations the paper
// compares, executes the (scaled) workload, and returns both a printable
// table and the raw values so tests can assert the qualitative shape —
// who wins, by roughly what factor, where crossovers fall. Absolute numbers
// are modeled virtual time over simulated devices, not the paper's testbed
// wall clock; EXPERIMENTS.md records paper-vs-measured per experiment.
package experiments

import (
	"fmt"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	_ "labstor/internal/mods/allmods" // register every LabMod type
	"labstor/internal/runtime"
	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// Result is one experiment's output.
type Result struct {
	Name  string
	Table *stats.Table
	Notes string
	// Values holds named scalar results for programmatic assertions.
	Values map[string]float64
}

// V records a named scalar.
func (r *Result) V(key string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[key] = v
}

// String renders the result.
func (r *Result) String() string {
	s := "## " + r.Name + "\n\n" + r.Table.String()
	if r.Notes != "" {
		s += "\n" + r.Notes + "\n"
	}
	return s
}

// LabCfg selects the LabStack composition, mirroring the paper's named
// configurations:
//
//	Lab-All ("Centralized+Permissions"): Perms + Cache + NoOp + KernelDriver, async
//	Lab-Min ("Centralized"):             Cache + NoOp + KernelDriver, async
//	Lab-D   ("Minimal"):                 Cache + NoOp + KernelDriver, sync (client-side)
type LabCfg struct {
	Generic  bool   // include GenericFS/GenericKVS entry vertex
	Perms    bool   // include the permissions LabMod
	Cache    bool   // include the LRU page cache
	CacheMB  int    // cache capacity (default 64)
	Compress bool   // include the compression LabMod
	Sched    string // "noop" | "blkswitch" | "" (none)
	Driver   string // "kernel_driver" | "spdk" | "dax"
	Sync     bool   // execute client-side (decentralized)
	KV       bool   // LabKVS instead of LabFS
	NoFS     bool   // block-only stack (no filesystem vertex)
	LogMB    int    // LabFS/LabKVS log region size (default 16/8)
	Prefix   string // vertex UUID prefix (instances are per-stack unless shared)
}

// LabAll returns the Lab-All configuration over the given driver.
func LabAll(driver string) LabCfg {
	return LabCfg{Generic: true, Perms: true, Cache: true, Sched: "noop", Driver: driver}
}

// LabMin returns the Lab-Min configuration.
func LabMin(driver string) LabCfg {
	return LabCfg{Generic: true, Cache: true, Sched: "noop", Driver: driver}
}

// LabD returns the Lab-D (decentralized, synchronous) configuration.
func LabD(driver string) LabCfg {
	return LabCfg{Generic: true, Cache: true, Sched: "noop", Driver: driver, Sync: true}
}

// MountLab builds and mounts a LabStack over devName at mount.
func MountLab(rt *runtime.Runtime, mount, devName string, cfg LabCfg) (*core.Stack, error) {
	if cfg.Driver == "" {
		cfg.Driver = "kernel_driver"
	}
	p := cfg.Prefix
	if p == "" {
		p = mount
	}
	var vs []core.Vertex
	add := func(uuid, typ string, attrs map[string]string) {
		vs = append(vs, core.Vertex{UUID: p + "/" + uuid, Type: typ, Attrs: attrs})
	}
	if cfg.Generic {
		if cfg.KV {
			add("genkvs", "labstor.generickvs", nil)
		} else {
			add("genfs", "labstor.genericfs", nil)
		}
	}
	if cfg.Perms {
		add("perm", "labstor.perm", map[string]string{"mode": "0666"})
	}
	if !cfg.NoFS {
		logMB := cfg.LogMB
		attrs := map[string]string{"device": devName}
		if cfg.KV {
			if logMB == 0 {
				logMB = 8
			}
			attrs["log_mb"] = fmt.Sprintf("%d", logMB)
			add("kvs", "labstor.labkvs", attrs)
		} else {
			if logMB == 0 {
				logMB = 16
			}
			attrs["log_mb"] = fmt.Sprintf("%d", logMB)
			add("fs", "labstor.labfs", attrs)
		}
	}
	if cfg.Compress {
		// HuffmanOnly keeps the *functional* deflate pass cheap on the host;
		// the modeled compression cost comes from the cost model either way.
		add("zip", "labstor.compress", map[string]string{"level": "-2"})
	}
	if cfg.Cache {
		capMB := cfg.CacheMB
		if capMB == 0 {
			capMB = 64
		}
		add("cache", "labstor.lru", map[string]string{"capacity_mb": fmt.Sprintf("%d", capMB)})
	}
	if cfg.Sched != "" {
		add("sched", "labstor."+cfg.Sched, map[string]string{"device": devName})
	}
	add("drv", "labstor."+cfg.Driver, map[string]string{"device": devName})

	// Chain wiring.
	for i := range vs {
		if i+1 < len(vs) {
			vs[i].Outputs = []string{vs[i+1].UUID}
		}
	}
	rules := core.Rules{ExecMode: core.ExecAsync}
	if cfg.Sync {
		rules.ExecMode = core.ExecSync
	}
	return rt.Mount(core.NewStack(mount, rules, vs))
}

// NewRig builds a Runtime with one simulated device attached and started.
type Rig struct {
	RT  *runtime.Runtime
	Dev *device.Device
}

// NewRig creates and starts a Runtime over a fresh device.
func NewRig(class device.Class, capacity int64, workers int, policy string) *Rig {
	rt := runtime.New(runtime.Options{
		MaxWorkers: workers,
		QueueDepth: 4096,
		Policy:     policy,
	})
	dev := device.New("dev0", class, capacity)
	rt.AddDevice(dev)
	rt.Start()
	return &Rig{RT: rt, Dev: dev}
}

// Close shuts the rig down.
func (r *Rig) Close() { r.RT.Shutdown() }

// newTable builds a stats.Table with the given header.
func newTable(header ...string) *stats.Table {
	return &stats.Table{Header: header}
}

// Pacer couples virtual time to wall time (1 virtual ns = 1 real ns) for
// experiments where cross-entity interference depends on *when* requests
// arrive relative to each other. The piggyback virtual-time model processes
// requests in real arrival order; pacing each actor to its own virtual
// clock keeps that order consistent with the virtual timeline, so an
// open-loop throughput stream genuinely backs up the queues a closed-loop
// latency probe samples.
type Pacer struct {
	start time.Time
	scale int64
}

// NewPacer starts a pacer anchored at the current wall time. scale is the
// real-ns-per-virtual-ns dilation: with the host's ~1ms sleep granularity,
// a scale of 10-20 keeps pacing error small relative to the virtual
// intervals under study.
func NewPacer(scale int64) *Pacer {
	if scale < 1 {
		scale = 1
	}
	return &Pacer{start: time.Now(), scale: scale}
}

// Pace sleeps until wall time catches up with virtual time v.
func (p *Pacer) Pace(v vtime.Time) {
	target := p.start.Add(time.Duration(int64(v) * p.scale))
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}
