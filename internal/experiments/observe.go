package experiments

import (
	"fmt"
	"io"
	"net/http"
	gort "runtime"
	"sort"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/obs"
	"labstor/internal/runtime"
)

// Steady-state cadence of the live plane, used to convert measured
// per-operation costs into a CPU share: one /metrics+/snapshot scrape pair
// per second (a `labctl top` session; production Prometheus is 15x
// sparser) and the SLO watchdog on its default 100ms period.
const (
	obsScrapeHz = 1.0
	obsEvalHz   = 10.0
)

// Observe measures the cost of the live observability plane: SLO watchdog
// armed and evaluating, flight recorder wired, HTTP server up and being
// scraped (/metrics + /snapshot) while a saturating message workload runs.
// The claim under test: full observability costs <= 1% of hot-path
// throughput, because everything it serves renders from registries the
// runtime already maintains.
//
// The acceptance number is a direct cost accounting: every scrape pair is
// timed client-side while the workload saturates the host (so the handler's
// stolen CPU is included), the watchdog evaluation is timed over thousands
// of calls against populated registries, and the two are charged at the
// steady-state cadence above. An end-to-end wall-time comparison is also
// run and reported, but on a shared host its leg-to-leg noise (several
// percent) swamps a sub-1% signal, so it is a sanity bound, not the
// estimate.
func Observe(ops int) (*Result, error) {
	if ops <= 0 {
		ops = 2000000
	}
	const window = 64
	const trials = 5

	// Bracketed end-to-end trials: baseline, observed, baseline, with the
	// observed leg compared to the mean of its two brackets so linear host
	// drift cancels; the median over trials rejects poisoned ones.
	var base, observed time.Duration
	var scrapePairs []time.Duration
	var handlerUS []float64
	deltas := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		b1, err := observeLeg(ops, window, false)
		if err != nil {
			return nil, err
		}
		o, err := observeLeg(ops, window, true)
		if err != nil {
			return nil, err
		}
		b2, err := observeLeg(ops, window, false)
		if err != nil {
			return nil, err
		}
		scrapePairs = append(scrapePairs, o.scrapePairs...)
		handlerUS = append(handlerUS, o.handlerUS)
		b := minDuration(b1.wall, b2.wall)
		if t == 0 || b < base {
			base = b
		}
		if t == 0 || o.wall < observed {
			observed = o.wall
		}
		mid := (b1.wall.Seconds() + b2.wall.Seconds()) / 2
		deltas = append(deltas, 100*(o.wall.Seconds()-mid)/mid)
	}
	if len(scrapePairs) == 0 {
		return nil, fmt.Errorf("observe: no live scrapes completed")
	}

	evalCost, err := observeEvalCost()
	if err != nil {
		return nil, err
	}

	// Serving cost per scrape pair: the server-side handler medians, which
	// count the CPU the handlers burn. The client-side wall time of a pair
	// is also kept, but under a saturating workload it is dominated by
	// queueing behind the polling worker for the core — latency the worker
	// spends making forward progress, not stolen throughput.
	pairCost := time.Duration(median(handlerUS)) * time.Microsecond
	sort.Slice(scrapePairs, func(i, j int) bool { return scrapePairs[i] < scrapePairs[j] })
	scrapeWall := scrapePairs[len(scrapePairs)/2]

	overhead := 100 * (pairCost.Seconds()*obsScrapeHz + evalCost.Seconds()*obsEvalHz)
	e2e := median(deltas)

	baseMops := hotpathMops(ops, base)
	obsMops := hotpathMops(ops, observed)

	res := &Result{Name: "Live observability plane: overhead vs telemetry-only baseline"}
	res.Table = newTable("leg", "ops", "wall_ms", "Mops/s")
	res.Table.AddRowf("telemetry-only", ops, float64(base.Milliseconds()), baseMops)
	res.Table.AddRowf("observed (SLO+flight+HTTP scrapes)", ops, float64(observed.Milliseconds()), obsMops)
	res.Notes = fmt.Sprintf(
		"steady-state observability overhead %.3f%% of one saturated core "+
			"(handler cost %v per /metrics+/snapshot pair at %.0f/s + SLO eval "+
			"%v at %.0f/s); target <= 1%%. Client-side pair wall under load %v "+
			"(mostly queueing behind the polling worker). End-to-end wall delta "+
			"%+.2f%% (median of %d bracketed trials, noise floor of several %% "+
			"on a shared host).",
		overhead, pairCost.Round(time.Microsecond), obsScrapeHz,
		evalCost, obsEvalHz,
		scrapeWall.Round(time.Microsecond), e2e, trials)

	res.V("ops", float64(ops))
	res.V("baseline_mops", baseMops)
	res.V("observed_mops", obsMops)
	res.V("overhead_pct", overhead)
	res.V("scrape_pair_us", float64(pairCost.Microseconds()))
	res.V("scrape_pair_wall_us", float64(scrapeWall.Microseconds()))
	res.V("slo_eval_us", evalCost.Seconds()*1e6)
	res.V("e2e_delta_pct", e2e)
	res.V("scrapes", float64(2*len(scrapePairs)))
	res.V("trials", float64(trials))
	return res, nil
}

// legStats is what one workload leg reports back: the timed window's wall
// time, plus (observed legs only) the client-side duration of every live
// scrape pair that ran inside it and the server-side median handler cost of
// the two scraped endpoints, read from the runtime's own
// `obs.handler_us;endpoint=...` histograms before teardown.
type legStats struct {
	wall        time.Duration
	scrapePairs []time.Duration
	handlerUS   float64 // p50(/metrics) + p50(/snapshot), microseconds
}

// observeLeg pushes ops messages through a one-vertex dummy stack and
// returns the wall time. With observed set, the runtime carries SLO targets
// (watchdog on its default 100ms period), and an observability server is
// scraped concurrently for the whole run: one scrape pair immediately, then
// one per second, each pair timed client-side.
func observeLeg(ops, window int, observed bool) (legStats, error) {
	var stats legStats
	opts := runtime.Options{MaxWorkers: 1, QueueDepth: 4096}
	if observed {
		opts.SLOs = []runtime.SLOTarget{{Stack: "msg::/obs", P99US: 1e9, MaxErrRate: 0.5}}
	}
	rt := runtime.New(opts)
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	stack, err := rt.Mount(core.NewStack("msg::/obs", core.Rules{}, []core.Vertex{
		{UUID: "obs/dum", Type: "labstor.dummy"},
	}))
	if err != nil {
		return stats, err
	}
	rt.Start()
	defer rt.Shutdown()

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	pairs := make(chan time.Duration, 64)
	if observed {
		srv := obs.New(rt, obs.Config{Addr: "127.0.0.1:0"})
		addr, err := srv.Start()
		if err != nil {
			return stats, err
		}
		defer srv.Close()
		client := &http.Client{Timeout: 2 * time.Second}
		scrape := func() bool {
			ok := true
			for _, ep := range []string{"/metrics", "/snapshot"} {
				resp, err := client.Get("http://" + addr + ep)
				if err != nil {
					ok = false
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			return ok
		}
		// Warm-up scrape before the timed window: TCP + transport setup is
		// a one-time client cost, not steady-state observability overhead.
		if !scrape() {
			return stats, fmt.Errorf("observe: warm-up scrape of %s failed", addr)
		}
		go func() {
			defer close(scraperDone)
			live := func() {
				begin := time.Now()
				if scrape() {
					pairs <- time.Since(begin)
				}
			}
			live() // at least one live scrape even on short legs
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					live()
				}
			}
		}()
	} else {
		close(scraperDone)
	}

	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
	reqs := make([]*core.Request, window)
	// GC fence: start both legs' timed windows from the same collector
	// state, so the observed leg's setup allocations (HTTP server, warm-up
	// scrape) can't trip a collection inside the measurement.
	gort.GC()
	start := time.Now()
	for done := 0; done < ops; {
		n := window
		if ops-done < n {
			n = ops - done
		}
		for i := 0; i < n; i++ {
			reqs[i] = core.AcquireRequest(core.OpMessage)
		}
		if err := cli.SubmitBatch(stack, reqs[:n]); err != nil {
			return stats, err
		}
		if err := cli.WaitAll(reqs[:n]); err != nil {
			return stats, err
		}
		for i := 0; i < n; i++ {
			reqs[i].Release()
		}
		done += n
	}
	stats.wall = time.Since(start)
	close(stop)
	<-scraperDone
	close(pairs)
	for d := range pairs {
		stats.scrapePairs = append(stats.scrapePairs, d)
	}
	if observed {
		hists := rt.Metrics().Snapshot().Histograms
		for _, ep := range []string{"/metrics", "/snapshot"} {
			stats.handlerUS += hists["obs.handler_us;endpoint="+ep].P50
		}
	}
	return stats, nil
}

// observeEvalCost times one SLO watchdog evaluation against registries
// populated by a real workload: boot the observed runtime, push enough
// requests through to fill the latency histograms, then run the evaluation
// hot in a loop. The per-call cost is what the 100ms watchdog pays.
func observeEvalCost() (time.Duration, error) {
	opts := runtime.Options{
		MaxWorkers: 1, QueueDepth: 4096,
		SLOs: []runtime.SLOTarget{{Stack: "msg::/obs", P99US: 1e9, MaxErrRate: 0.5}},
	}
	rt := runtime.New(opts)
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	stack, err := rt.Mount(core.NewStack("msg::/obs", core.Rules{}, []core.Vertex{
		{UUID: "obs/dum", Type: "labstor.dummy"},
	}))
	if err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
	reqs := make([]*core.Request, 64)
	for round := 0; round < 200; round++ {
		for i := range reqs {
			reqs[i] = core.AcquireRequest(core.OpMessage)
		}
		if err := cli.SubmitBatch(stack, reqs); err != nil {
			return 0, err
		}
		if err := cli.WaitAll(reqs); err != nil {
			return 0, err
		}
		for i := range reqs {
			reqs[i].Release()
		}
	}

	const evals = 2000
	rt.EvaluateSLOs() // warm: first eval registers the gauges
	start := time.Now()
	for i := 0; i < evals; i++ {
		rt.EvaluateSLOs()
	}
	return time.Since(start) / evals, nil
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// median returns the middle value of xs (mean of the middle two when even).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
