package experiments

import (
	"fmt"

	"labstor/internal/device"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

// Metadata reproduces Fig. 7, "Metadata throughput": FxMark-style file
// creation across 1-24 client threads, comparing three LabFS
// configurations (Lab-All = permissions + LabFS async; Lab-Min = LabFS
// async; Lab-D = LabFS synchronous/decentralized) against the kernel
// filesystems ext4, XFS and F2FS. The LabStor Runtime runs 16 workers.
//
// Paper result: LabFS outperforms the kernel filesystems by up to 3x
// single-threaded (no syscalls; removing permissions adds ~7%; removing
// the centralized authority another ~20%), and scales with threads thanks
// to the sharded inode hashmap and per-worker allocator, while the kernel
// filesystems flatline on their locks.
func Metadata(threadCounts []int, filesPerThread int) (*Result, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 24}
	}
	if filesPerThread <= 0 {
		filesPerThread = 400
	}

	res := &Result{Name: "Fig 7: metadata throughput (FxMark create)"}
	res.Table = newTable(append([]string{"System"}, func() []string {
		var h []string
		for _, t := range threadCounts {
			h = append(h, fmt.Sprintf("%dT kops/s", t))
		}
		return h
	}()...)...)

	systems := []string{"LabFS-All", "LabFS-Min", "LabFS-D", "ext4", "xfs", "f2fs"}
	for _, sys := range systems {
		row := []string{sys}
		for _, threads := range threadCounts {
			kops, err := runMetadataTrial(sys, threads, filesPerThread)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", kops))
			res.V(fmt.Sprintf("%s_%d", sys, threads), kops)
		}
		res.Table.AddRow(row...)
	}
	res.Notes = fmt.Sprintf("%d creates per thread; LabStor Runtime: 16 workers", filesPerThread)
	return res, nil
}

func runMetadataTrial(system string, threads, filesPerThread int) (float64, error) {
	var fs workload.FS
	var cleanup func()

	switch system {
	case "ext4", "xfs", "f2fs":
		profile, err := kernel.KFSProfileFor(system)
		if err != nil {
			return 0, err
		}
		dev := device.New("dev0", device.NVMe, 1<<30)
		fs = &workload.KernelFS{FSName: system, KFS: kernel.NewKFS(profile, dev, vtime.Default())}
		cleanup = func() {}
	default:
		rt := runtime.New(runtime.Options{MaxWorkers: 16, QueueDepth: 4096})
		dev := device.New("dev0", device.NVMe, 1<<30)
		rt.AddDevice(dev)
		var cfg LabCfg
		switch system {
		case "LabFS-All":
			cfg = LabCfg{Generic: true, Perms: true, Sched: "noop", Driver: "kernel_driver", LogMB: 32}
		case "LabFS-Min":
			cfg = LabCfg{Generic: true, Sched: "noop", Driver: "kernel_driver", LogMB: 32}
		case "LabFS-D":
			cfg = LabCfg{Generic: true, Sched: "noop", Driver: "kernel_driver", LogMB: 32, Sync: true}
		default:
			return 0, fmt.Errorf("experiments: unknown system %q", system)
		}
		if _, err := MountLab(rt, "fs::/meta", "dev0", cfg); err != nil {
			return 0, err
		}
		rt.Start()
		fs = &workload.LabStorFS{FSName: system, RT: rt, Mount: "fs::/meta"}
		cleanup = rt.Shutdown
	}
	defer cleanup()

	r, err := workload.RunFxMark(fs, workload.FxMarkJob{Threads: threads, FilesPerThread: filesPerThread, SharedDir: true})
	if err != nil {
		return 0, err
	}
	return r.OpsPerSec / 1000, nil
}
