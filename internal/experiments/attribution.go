package experiments

import (
	"fmt"
	gort "runtime"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// Attribution measures the cost of always-on latency attribution: every
// completed request folded into the per-stack/per-op tables by the
// worker-local Folder, plus the tail estimator's retention decision. The
// claim under test: attribution costs <= 1% of hot-path throughput, because
// the per-request work is a handful of plain integer adds against a cached
// slot (flushed to shared atomics every 256 requests) and one float compare.
//
// The acceptance number is a direct cost accounting, like the observe
// experiment's: the folder+estimator per-request cost is timed in isolation
// over millions of iterations and charged against the baseline leg's
// per-operation cost. An end-to-end wall-time comparison (attribution on vs
// ProfileDisabled) is also run and reported, but leg-to-leg noise on a
// shared host swamps a sub-1% signal, so it is a sanity bound, not the
// estimate.
func Attribution(ops int) (*Result, error) {
	if ops <= 0 {
		ops = 2000000
	}
	const window = 64
	const trials = 5

	// Bracketed end-to-end trials: baseline, attributed, baseline; compare
	// the attributed leg to the mean of its brackets so linear host drift
	// cancels, and take the median over trials to reject poisoned ones.
	var base, attributed time.Duration
	deltas := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		b1, err := attributionLeg(ops, window, false)
		if err != nil {
			return nil, err
		}
		o, err := attributionLeg(ops, window, true)
		if err != nil {
			return nil, err
		}
		b2, err := attributionLeg(ops, window, false)
		if err != nil {
			return nil, err
		}
		b := minDuration(b1, b2)
		if t == 0 || b < base {
			base = b
		}
		if t == 0 || o < attributed {
			attributed = o
		}
		mid := (b1.Seconds() + b2.Seconds()) / 2
		deltas = append(deltas, 100*(o.Seconds()-mid)/mid)
	}

	foldNS := foldCost()
	perOpNS := float64(base.Nanoseconds()) / float64(ops)
	overhead := 100 * foldNS / perOpNS
	e2e := median(deltas)

	baseMops := hotpathMops(ops, base)
	attrMops := hotpathMops(ops, attributed)

	res := &Result{Name: "Always-on latency attribution: overhead vs profiling-off baseline"}
	res.Table = newTable("leg", "ops", "wall_ms", "Mops/s")
	res.Table.AddRowf("profiling off", ops, float64(base.Milliseconds()), baseMops)
	res.Table.AddRowf("attribution + tail retention", ops, float64(attributed.Milliseconds()), attrMops)
	res.Notes = fmt.Sprintf(
		"attribution overhead %.3f%% of the hot path (fold+tail decision "+
			"%.1fns against %.0fns per op); target <= 1%%. End-to-end wall "+
			"delta %+.2f%% (median of %d bracketed trials, noise floor of "+
			"several %% on a shared host).",
		overhead, foldNS, perOpNS, e2e, trials)

	res.V("ops", float64(ops))
	res.V("baseline_mops", baseMops)
	res.V("attributed_mops", attrMops)
	res.V("fold_ns", foldNS)
	res.V("per_op_ns", perOpNS)
	res.V("overhead_pct", overhead)
	res.V("e2e_delta_pct", e2e)
	res.V("trials", float64(trials))
	return res, nil
}

// attributionLeg pushes ops messages through a one-vertex dummy stack with
// per-stage sampling off, so the legs differ only in the always-on paths
// under test: the worker's Folder fold and the tail estimator's decision.
func attributionLeg(ops, window int, attributed bool) (time.Duration, error) {
	opts := runtime.Options{
		MaxWorkers:      1,
		QueueDepth:      4096,
		PerfSampleEvery: runtime.PerfSamplingDisabled,
	}
	if !attributed {
		opts.ProfileDisabled = true
		opts.TailRing = -1
	}
	rt := runtime.New(opts)
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	stack, err := rt.Mount(core.NewStack("msg::/attr", core.Rules{}, []core.Vertex{
		{UUID: "attr/dum", Type: "labstor.dummy"},
	}))
	if err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})
	reqs := make([]*core.Request, window)
	// GC fence: both legs' timed windows start from the same collector
	// state, so the attributed leg's table allocations (one slot per
	// stack/op pair, made once) can't trip a collection mid-measurement.
	gort.GC()
	start := time.Now()
	for done := 0; done < ops; {
		n := window
		if ops-done < n {
			n = ops - done
		}
		for i := 0; i < n; i++ {
			reqs[i] = core.AcquireRequest(core.OpMessage)
		}
		if err := cli.SubmitBatch(stack, reqs[:n]); err != nil {
			return 0, err
		}
		if err := cli.WaitAll(reqs[:n]); err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			reqs[i].Release()
		}
		done += n
	}
	return time.Since(start), nil
}

// foldCost times the per-request attribution work in isolation — one
// Folder.Fold against a hot cached slot plus one TailEstimator.Observe —
// and returns the cost in nanoseconds per request. A harness-only loop with
// the same index arithmetic is timed first and subtracted: the synthetic
// latency computation stands in for values the real hot path already has in
// registers, so it must not be charged to attribution.
func foldCost() float64 {
	const iters = 10000000
	p := telemetry.NewProfile()
	f := p.NewFolder(func(op uint8) string { return core.Op(op).String() })
	est := telemetry.NewTailEstimator(telemetry.DefaultTailQuantile)

	var sink int64
	gort.GC()
	start := time.Now()
	for i := 0; i < iters; i++ {
		lat := int64(1000 + i%512)
		sink += lat + lat/4 + lat/2
	}
	harness := time.Since(start)
	if sink == 0 { // keep the harness loop's arithmetic live
		return 0
	}

	gort.GC()
	start = time.Now()
	for i := 0; i < iters; i++ {
		// Latencies vary so the estimator takes both branches, as it does
		// in production; stack/op stay fixed, which is the hot-path shape
		// (a worker drains one queue's stack for a whole batch).
		lat := int64(1000 + i%512)
		f.Fold(1, "msg::/attr", uint8(core.OpMessage), lat, lat/4, lat/2, false)
		est.Observe(float64(lat))
	}
	elapsed := time.Since(start) - harness
	f.Flush()
	if elapsed < 0 {
		elapsed = 0
	}
	return float64(elapsed.Nanoseconds()) / float64(iters)
}
