package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// Partitioning reproduces Fig. 5(b), "Work orchestration: request
// partitioning": a latency-sensitive LabStack (LabFS + LRU + No-Op +
// KernelDriver) serves a metadata-intensive L-App, while a compressor
// LabStack (adds the compression LabMod) serves a large-I/O C-App. Both run
// 8 threads; the worker count varies; round-robin and dynamic orchestration
// are compared on L-App latency and C-App bandwidth.
//
// Paper result: RR maximizes bandwidth (all workers share the C-App) but
// destroys L-App latency — small requests wait behind multi-millisecond
// compressions (head-of-line). Dynamic sends L queues to dedicated workers:
// latency improves by orders of magnitude at a bandwidth cost that shrinks
// (30% -> 6%) as workers are added.
func Partitioning(workerCounts []int, filesPerLThread, cReqsPerThread, cReqBytes int) (*Result, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if filesPerLThread <= 0 {
		filesPerLThread = 500
	}
	if cReqsPerThread <= 0 {
		cReqsPerThread = 2
	}
	if cReqBytes <= 0 {
		cReqBytes = 2 << 20
	}

	res := &Result{Name: "Fig 5(b): request partitioning (L-App latency vs C-App bandwidth)"}
	res.Table = newTable("Workers", "Policy", "L avg (us)", "L p99 (us)", "C BW (MB/s)")

	for _, w := range workerCounts {
		for _, policy := range []string{"round_robin", "dynamic"} {
			lAvg, lP99, cBW, err := runPartitionTrial(w, policy, filesPerLThread, cReqsPerThread, cReqBytes)
			if err != nil {
				return nil, err
			}
			res.Table.AddRowf(w, policy, lAvg, lP99, cBW)
			res.V(fmt.Sprintf("lat_%s_%d", policy, w), lAvg)
			res.V(fmt.Sprintf("bw_%s_%d", policy, w), cBW)
		}
	}
	res.Notes = "8 L-App threads (file creates) + 8 C-App threads (large compressed writes)"
	return res, nil
}

func runPartitionTrial(workers int, policy string, lFiles, cReqs, cBytes int) (lAvg, lP99, cBW float64, err error) {
	rt := runtime.New(runtime.Options{
		MaxWorkers:     workers,
		QueueDepth:     4096,
		Policy:         policy,
		RebalanceEvery: 2 * time.Millisecond,
		LatencyCutoff:  100 * vtime.Microsecond,
	})
	dev := device.New("dev0", device.NVMe, 4<<30)
	rt.AddDevice(dev)
	if _, err := MountLab(rt, "fs::/L", "dev0", LabCfg{Cache: true, Sched: "noop", Driver: "kernel_driver", Prefix: "L", LogMB: 8}); err != nil {
		return 0, 0, 0, err
	}
	if _, err := MountLab(rt, "fs::/C", "dev0", LabCfg{Compress: true, Sched: "noop", Driver: "kernel_driver", Prefix: "C", LogMB: 8}); err != nil {
		return 0, 0, 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	const threads = 8
	var wg sync.WaitGroup
	errs := make([]error, 2*threads)
	lat := stats.NewSample(threads * lFiles)
	var latMu sync.Mutex
	cElapsed := make([]vtime.Duration, threads)
	var cBytesTotal int64
	var cMu sync.Mutex
	var lDone atomic.Int32

	cStack, _ := rt.Namespace.Lookup("fs::/C")

	// Connect every client up front in a fixed order (all C, then all L) so
	// the round-robin policy deterministically colocates one C and one L
	// queue per worker — the colocation the paper's RR baseline suffers.
	cClis := make([]*runtime.Client, threads)
	lClis := make([]*runtime.Client, threads)
	for t := 0; t < threads; t++ {
		cClis[t] = rt.Connect(ipc.Credentials{PID: 200 + t, UID: 1000, GID: 1000})
		cClis[t].OriginCore = threads + t
	}
	for t := 0; t < threads; t++ {
		lClis[t] = rt.Connect(ipc.Credentials{PID: 100 + t, UID: 1000, GID: 1000})
		lClis[t].OriginCore = t
	}

	// C-App: each thread streams large writes continuously (batches of
	// cReqs outstanding) until the L-App finishes its measurement — the
	// paper's C-App writes 125GB/thread, far outlasting the L-App.
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cli := cClis[t]
			rng := rand.New(rand.NewSource(int64(t) * 7))
			data := make([]byte, cBytes)
			for i := range data {
				data[i] = byte(rng.Intn(16)) // compressible
			}
			start := cli.Clock()
			var written int64
			for i := 0; lDone.Load() < threads; i++ {
				reqs := make([]*core.Request, 0, cReqs)
				for j := 0; j < cReqs; j++ {
					req := core.NewRequest(core.OpWrite)
					req.Path = fmt.Sprintf("big%d.dat", t)
					req.Flags = core.FlagCreate
					// Cycle over a bounded file window so the extent map (and
					// with it the metadata log) stays finite during the
					// unbounded stream.
					req.Offset = int64((i*cReqs+j)%16) * int64(cBytes)
					req.Size = len(data)
					req.Data = data
					if err := cli.SubmitStackAsync(cStack, req); err != nil {
						errs[threads+t] = err
						return
					}
					reqs = append(reqs, req)
				}
				if err := cli.WaitAll(reqs); err != nil {
					errs[threads+t] = err
					return
				}
				written += int64(cBytes) * int64(cReqs)
			}
			cElapsed[t] = cli.Clock().Sub(start)
			cMu.Lock()
			cBytesTotal += written
			cMu.Unlock()
		}(t)
	}

	// L-App: a fixed number of file creates, all overlapping the C stream.
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer lDone.Add(1)
			cli := lClis[t]
			warm := lFiles / 4
			for i := 0; i < lFiles+warm; i++ {
				req := core.NewRequest(core.OpCreate)
				req.Path = fmt.Sprintf("ldir%d/f%d", t, i)
				req.Mode = 0644
				before := cli.Clock()
				if err := cli.Submit("fs::/L", req); err != nil || req.Err != nil {
					if err == nil {
						err = req.Err
					}
					errs[t] = err
					return
				}
				if i >= warm {
					latMu.Lock()
					lat.Observe(float64(cli.Clock().Sub(before)))
					latMu.Unlock()
				}
			}
		}(t)
	}

	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, e
		}
	}
	var maxC vtime.Duration
	for _, e := range cElapsed {
		if e > maxC {
			maxC = e
		}
	}
	lAvg = lat.Mean() / float64(vtime.Microsecond)
	lP99 = lat.Percentile(99) / float64(vtime.Microsecond)
	cBW = stats.MBps(cBytesTotal, maxC.Seconds())
	return lAvg, lP99, cBW, nil
}
