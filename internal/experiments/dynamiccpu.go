package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// DynamicCPU reproduces Fig. 5(a), "Work orchestration: dynamic CPU
// allocation": clients issue random 4KB writes through a No-Op +
// KernelDriver LabStack over NVMe; the experiment varies the client count
// and compares three Runtime worker configurations — 1 worker, 8 workers,
// and the dynamic orchestration policy — on IOPS and CPU cores consumed.
//
// Paper result: a single worker saturates beyond ~2-4 clients (IOPS drop
// ~50%); 8 workers hold peak IOPS but burn ~25% more CPU than dynamic,
// which matches 8-worker IOPS using about half the cores.
func DynamicCPU(clientCounts []int, bytesPerClient int64) (*Result, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8, 16}
	}
	if bytesPerClient <= 0 {
		bytesPerClient = 8 << 20
	}

	res := &Result{Name: "Fig 5(a): dynamic CPU allocation (random 4KB writes, NVMe)"}
	res.Table = newTable("Clients", "Config", "KIOPS", "Cores")

	type config struct {
		name    string
		workers int
		policy  string
	}
	configs := []config{
		{"1-worker", 1, "round_robin"},
		{"8-workers", 8, "round_robin"},
		{"dynamic", 8, "dynamic"},
	}

	for _, nClients := range clientCounts {
		for _, cfg := range configs {
			iops, cores, err := runDynamicTrial(cfg.workers, cfg.policy, nClients, bytesPerClient)
			if err != nil {
				return nil, err
			}
			res.Table.AddRowf(nClients, cfg.name, iops/1000, cores)
			res.V(fmt.Sprintf("iops_%s_%d", cfg.name, nClients), iops)
			res.V(fmt.Sprintf("cores_%s_%d", cfg.name, nClients), cores)
		}
	}
	res.Notes = "Cores = workers actively polling (dynamic decommissions idle workers); IOPS in modeled virtual time"
	return res, nil
}

func runDynamicTrial(workers int, policy string, nClients int, bytesPerClient int64) (iops, cores float64, err error) {
	rt := runtime.New(runtime.Options{
		MaxWorkers:     workers,
		QueueDepth:     4096,
		Policy:         policy,
		RebalanceEvery: 2 * time.Millisecond,
	})
	dev := device.New("dev0", device.NVMe, 2<<30)
	rt.AddDevice(dev)
	if _, err := MountLab(rt, "blk::/raw", "dev0", LabCfg{NoFS: true, Sched: "noop", Driver: "kernel_driver"}); err != nil {
		return 0, 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	stack, _ := rt.Namespace.Lookup("blk::/raw")
	nOps := bytesPerClient / 4096
	maxOff := dev.Capacity()/4096 - 1

	var wg sync.WaitGroup
	errs := make([]error, nClients)
	elapsed := make([]vtime.Duration, nClients)
	var sampleMu sync.Mutex
	var samples []int
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sampleMu.Lock()
				samples = append(samples, rt.ActiveWorkers())
				sampleMu.Unlock()
			}
		}
	}()

	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := rt.Connect(ipc.Credentials{PID: 100 + c, UID: 1000, GID: 1000})
			cli.OriginCore = c
			rng := rand.New(rand.NewSource(int64(c)*31 + 7))
			buf := make([]byte, 4096)
			start := cli.Clock()
			for i := int64(0); i < nOps; i++ {
				req := core.NewRequest(core.OpBlockWrite)
				req.Offset = rng.Int63n(maxOff) * 4096
				req.Size = len(buf)
				req.Data = buf
				if err := cli.SubmitStack(stack, req); err != nil {
					errs[c] = err
					return
				}
				if req.Err != nil {
					errs[c] = req.Err
					return
				}
			}
			elapsed[c] = cli.Clock().Sub(start)
		}(c)
	}
	wg.Wait()
	close(stop)
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	var maxE vtime.Duration
	for _, e := range elapsed {
		if e > maxE {
			maxE = e
		}
	}
	totalOps := nOps * int64(nClients)
	iops = float64(totalOps) / maxE.Seconds()

	// Cores: mean sampled active workers (every active worker polls a core).
	<-samplerDone
	sum := 0
	sampleMu.Lock()
	n := len(samples)
	for _, a := range samples {
		sum += a
	}
	sampleMu.Unlock()
	if n == 0 {
		cores = float64(rt.ActiveWorkers())
	} else {
		cores = float64(sum) / float64(n)
	}
	return iops, cores, nil
}
