package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/pushdown"
	"labstor/internal/runtime"
	"labstor/internal/serve"
)

// Pushdown measures computation pushdown (this PR's tentpole): running
// filter/aggregate programs where the data lives instead of shipping
// blocks to the client. A selectivity ladder (100%/10%/1% match rates)
// compares bytes moved and throughput for
//
//   - KVS scan-with-predicate, in-process ("direct"),
//   - LabFS grep-offload, in-process,
//   - KVS scan over TCP, measured at the wire (serve.bytes_out deltas),
//   - an 8-client analysis workload over TCP: jobs/s where one job is
//     "find the 1% matching records" — N gets + client-side filtering vs
//     one pushdown scan.
//
// The experiment HARD-FAILS (returns an error) when the tentpole's
// promises stop holding:
//   - at 1% selectivity, pushdown must move >= 3x fewer bytes than
//     client-side filtering, both direct and over TCP;
//   - the 8-client pushdown workload must beat client-side filtering on
//     jobs/s;
//   - per-request execution budgets must abort over-budget scans;
//   - per-tenant allow-lists must reject un-allowed programs over TCP.
func Pushdown(nRecs, valSize, clients int) (*Result, error) {
	if nRecs <= 0 {
		nRecs = 512
	}
	if valSize <= 0 {
		valSize = 4096
	}
	if clients <= 0 {
		clients = 8
	}

	res := &Result{Name: "Computation pushdown: selectivity ladder (bytes moved, ops/s)"}
	res.Table = newTable("leg", "selectivity", "client bytes", "pushdown bytes", "ratio")
	res.V("n_recs", float64(nRecs))
	res.V("val_size", float64(valSize))

	// One dataset serves every selectivity: u32 field at offset 0 cycles
	// 0..99, so "< 100" matches everything, "< 10" a tenth, "< 1" one in
	// a hundred.
	sels := []struct {
		name string
		pct  int
		src  string
	}{
		{"sel100", 100, "filter where u32@0 < 100"},
		{"sel10", 10, "filter where u32@0 < 10"},
		{"sel1", 1, "filter where u32@0 < 1"},
	}
	for _, s := range sels {
		if _, err := pushdown.Default.Register(s.name, s.src); err != nil {
			return nil, err
		}
	}

	// ---- KVS scan-with-predicate, direct ----
	if err := pushdownKVSDirect(res, nRecs, valSize, sels); err != nil {
		return nil, err
	}
	// ---- LabFS grep-offload, direct ----
	if err := pushdownFSGrep(res, nRecs); err != nil {
		return nil, err
	}
	// ---- Over TCP: wire bytes + the 8-client analysis workload ----
	if err := pushdownTCP(res, nRecs, valSize, clients); err != nil {
		return nil, err
	}

	// The tentpole's bytes-moved promise, checked where it is easiest to
	// regress: 1% selectivity, both boundaries.
	for _, key := range []string{"kvs_direct_ratio_sel1", "fs_direct_ratio_sel1", "tcp_ratio_sel1"} {
		if r := res.Values[key]; r < 3 {
			return nil, fmt.Errorf("pushdown %s = %.2fx, want >= 3x fewer bytes than client-side filtering", key, r)
		}
	}
	if res.Values["jobs8_speedup"] <= 1 {
		return nil, fmt.Errorf("8-client pushdown jobs/s (%.1f) did not beat client-side filtering (%.1f)",
			res.Values["jobs8_pd_per_s"], res.Values["jobs8_client_per_s"])
	}

	res.Notes = fmt.Sprintf(
		"%d records x %dB; one analysis job = find the 1%% matching records; bytes ratios are client-side-filtering bytes / pushdown bytes (direct = payload bytes crossing the stack boundary, tcp = serve.bytes_out deltas); budget and allow-list enforcement verified in-run (scan aborted at %.0fB cap, locked tenant denied)",
		nRecs, valSize, res.Values["budget_cap_bytes"])
	return res, nil
}

// pushdownKVSDirect loads records into a cached KVS stack and compares
// client-side filtering (get every record, filter locally) against
// scan-with-predicate, counting payload bytes that crossed the stack
// boundary. Also verifies the per-request byte budget aborts the scan.
func pushdownKVSDirect(res *Result, nRecs, valSize int, sels []struct {
	name string
	pct  int
	src  string
}) error {
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	defer rt.Shutdown()
	stack, err := MountLab(rt, "kv::/pd", "dev0", LabCfg{KV: true, Cache: true, Driver: "kernel_driver"})
	if err != nil {
		return err
	}
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	val := make([]byte, valSize)
	for i := 0; i < nRecs; i++ {
		val[0] = byte(i % 100) // u32@0 low byte; bytes 1-3 stay zero
		req := core.AcquireRequest(core.OpPut)
		req.Key = fmt.Sprintf("pd/%05d", i)
		req.Size = valSize
		req.Data = val
		err := cli.SubmitStack(stack, req)
		reqErr := req.Err
		req.Release()
		if err != nil || reqErr != nil {
			return fmt.Errorf("put: %v / %v", err, reqErr)
		}
	}

	// Client-side filtering: every record crosses the boundary, the
	// predicate runs in the client. Bytes moved is selectivity-blind.
	clientBytes := int64(0)
	matched := make([]int, len(sels))
	for i := 0; i < nRecs; i++ {
		req := core.AcquireRequest(core.OpGet)
		req.Key = fmt.Sprintf("pd/%05d", i)
		err := cli.SubmitStack(stack, req)
		if err == nil && req.Err == nil {
			clientBytes += req.Result
			v := req.Value
			if len(v) == 0 {
				v = req.Data
			}
			for si, s := range sels {
				if len(v) >= 4 && int(v[0]) < s.pct {
					matched[si]++
				}
			}
		}
		reqErr := req.Err
		req.Release()
		if err != nil || reqErr != nil {
			return fmt.Errorf("get: %v / %v", err, reqErr)
		}
	}
	res.V("kvs_direct_client_bytes", float64(clientBytes))

	for si, s := range sels {
		req := core.AcquireRequest(core.OpScan)
		req.Key = "pd/"
		req.Prog = s.name
		err := cli.SubmitStack(stack, req)
		if err != nil || req.Err != nil {
			e := req.Err
			req.Release()
			return fmt.Errorf("scan %s: %v / %v", s.name, err, e)
		}
		pdBytes := int64(len(req.Value))
		// Correctness: the pushdown result holds exactly the records the
		// client-side filter found.
		n := 0
		decErr := pushdown.DecodeKV(req.Value, func(key string, v []byte) error {
			if len(v) != valSize || int(v[0]) >= s.pct {
				return fmt.Errorf("wrong match %q (tag %d)", key, v[0])
			}
			n++
			return nil
		})
		req.Release()
		if decErr != nil {
			return fmt.Errorf("scan %s: %v", s.name, decErr)
		}
		if n != matched[si] {
			return fmt.Errorf("scan %s matched %d records, client-side filter %d", s.name, n, matched[si])
		}
		ratio := float64(clientBytes) / float64(pdBytes)
		res.V("kvs_direct_pd_bytes_"+s.name, float64(pdBytes))
		res.V("kvs_direct_ratio_"+s.name, ratio)
		res.Table.AddRowf("kvs direct", fmt.Sprintf("%d%%", s.pct), float64(clientBytes), float64(pdBytes), ratio)
	}

	// Budget enforcement: a scan capped far below the dataset must abort
	// with ErrBudget, not silently return a partial result.
	const budgetCap = 4096
	req := core.AcquireRequest(core.OpScan)
	req.Key = "pd/"
	req.Prog = "sel1"
	req.ProgMaxBytes = budgetCap
	err = cli.SubmitStack(stack, req)
	reqErr := req.Err
	req.Release()
	if !errors.Is(reqErr, pushdown.ErrBudget) && !errors.Is(err, pushdown.ErrBudget) {
		return fmt.Errorf("byte budget not enforced: scan under a %dB cap returned %v / %v", budgetCap, err, reqErr)
	}
	res.V("budget_cap_bytes", budgetCap)
	res.V("budget_enforced", 1)
	return nil
}

// pushdownFSGrep writes a log file and compares "read the whole file,
// grep in the client" against grep-offload.
func pushdownFSGrep(res *Result, nLines int) error {
	nLines *= 4 // lines are much smaller than KVS records
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	defer rt.Shutdown()
	stack, err := MountLab(rt, "fs::/pd", "dev0", LabCfg{Cache: true, Driver: "kernel_driver"})
	if err != nil {
		return err
	}
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	// lvl cycles 00..99: substr "lvl=00 " is 1%, "lvl=0" 10%, "lvl=" 100%.
	var log bytes.Buffer
	for i := 0; i < nLines; i++ {
		fmt.Fprintf(&log, "lvl=%02d req=%06d path=/api/v1/items latency_us=%04d\n", i%100, i, 100+i%900)
	}
	data := log.Bytes()
	wr := core.AcquireRequest(core.OpWrite)
	wr.Path = "app.log"
	wr.Flags = core.FlagCreate
	wr.Size = len(data)
	wr.Data = data
	err = cli.SubmitStack(stack, wr)
	wrErr := wr.Err
	wr.Release()
	if err != nil || wrErr != nil {
		return fmt.Errorf("write log: %v / %v", err, wrErr)
	}

	grepSels := []struct {
		name string
		pct  int
		src  string
	}{
		{"grep100", 100, `filter where substr "lvl="`},
		{"grep10", 10, `filter where substr "lvl=0"`},
		{"grep1", 1, `filter where substr "lvl=00 "`},
	}
	// Client-side grep: the whole file crosses the boundary.
	rd := core.AcquireRequest(core.OpRead)
	rd.Path = "app.log"
	rd.Size = len(data)
	rd.Data = make([]byte, len(data))
	err = cli.SubmitStack(stack, rd)
	rdErr := rd.Err
	clientBytes := rd.Result
	got := append([]byte(nil), rd.Data[:rd.Result]...)
	rd.Release()
	if err != nil || rdErr != nil {
		return fmt.Errorf("read log: %v / %v", err, rdErr)
	}
	res.V("fs_direct_client_bytes", float64(clientBytes))

	for _, s := range grepSels {
		prog, err := pushdown.Default.Register(s.name, s.src)
		if err != nil {
			return err
		}
		// What the client-side grep finds...
		needle := []byte(strings.TrimSuffix(strings.TrimPrefix(s.src, `filter where substr "`), `"`))
		wantLines := 0
		for _, line := range bytes.Split(got, []byte{'\n'}) {
			if len(line) > 0 && bytes.Contains(line, needle) {
				wantLines++
			}
		}
		// ...grep-offload must find too, moving only those lines.
		req := core.AcquireRequest(core.OpScan)
		req.Path = "app.log"
		req.Prog = prog.Ref
		err = cli.SubmitStack(stack, req)
		if err != nil || req.Err != nil {
			e := req.Err
			req.Release()
			return fmt.Errorf("grep %s: %v / %v", s.name, err, e)
		}
		pdBytes := int64(len(req.Value))
		gotLines := bytes.Count(req.Value, []byte{'\n'})
		req.Release()
		if gotLines != wantLines {
			return fmt.Errorf("grep %s matched %d lines, client-side grep %d", s.name, gotLines, wantLines)
		}
		ratio := float64(clientBytes) / float64(pdBytes)
		pct := fmt.Sprintf("%d%%", s.pct)
		sel := "sel" + pct[:len(pct)-1]
		res.V("fs_direct_pd_bytes_"+sel, float64(pdBytes))
		res.V("fs_direct_ratio_"+sel, ratio)
		res.Table.AddRowf("fs grep", pct, float64(clientBytes), float64(pdBytes), ratio)
	}
	return nil
}

// pushdownTCP boots a serving front end with a pushdown policy, loads the
// dataset over the wire, and measures (a) wire bytes out for client-side
// filtering vs scan per selectivity rung, (b) jobs/s at `clients`
// connections, and (c) that tenant allow-lists and budget caps enforce at
// the server boundary.
func pushdownTCP(res *Result, nRecs, valSize, clients int) error {
	pol := pushdown.NewPolicy(nil, []string{"sel*"}, pushdown.Caps{})
	pol.SetTenant("locked", pushdown.TenantRule{}) // deny-all
	pol.SetTenant("tiny", pushdown.TenantRule{
		Allow: []string{"sel*"},
		Caps:  pushdown.Caps{MaxBytes: 16 << 10}, // far below the dataset
	})

	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 4096, Batch: 8})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	defer rt.Shutdown()
	if _, err := MountLab(rt, "kv::/pd", "dev0", LabCfg{KV: true, Cache: true, Driver: "kernel_driver"}); err != nil {
		return err
	}
	rt.Start()
	srv := serve.New(rt, serve.Config{
		Addr:     "127.0.0.1:0",
		Pushdown: pol,
		Default:  serve.TenantPolicy{Inflight: 1 << 20},
		Tenants: []serve.TenantPolicy{
			{Name: "locked", RatePerSec: 1e6, Burst: 1e6},
			{Name: "tiny", RatePerSec: 1e6, Burst: 1e6},
		},
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		return err
	}
	defer srv.Close()

	c, err := serveDial(addr.String(), "bench")
	if err != nil {
		return err
	}
	defer c.Close()

	const mount = "kv::/pd"
	val := make([]byte, valSize)
	for i := 0; i < nRecs; i++ {
		val[0] = byte(i % 100)
		r, err := c.Do(&serve.ReqFrame{Op: core.OpPut, Mount: mount, Key: fmt.Sprintf("pd/%05d", i), Payload: val})
		if err != nil || r.Err() != nil {
			return fmt.Errorf("tcp put: %v / %v", err, r.Err())
		}
	}

	bytesOut := rt.Metrics().Counter("serve.bytes_out")

	// Client-side filtering at the wire: every record's payload comes back.
	getAll := func(conn *serve.Conn) (int, error) {
		matched := 0
		window := make([]serve.ReqFrame, 0, 64)
		flushWin := func() error {
			if len(window) == 0 {
				return nil
			}
			results, err := conn.Pipeline(window)
			if err != nil {
				return err
			}
			for _, r := range results {
				if r.Err() != nil {
					return r.Err()
				}
				if len(r.Resp.Value) >= 4 && r.Resp.Value[0] < 1 {
					matched++
				}
			}
			window = window[:0]
			return nil
		}
		for i := 0; i < nRecs; i++ {
			window = append(window, serve.ReqFrame{Op: core.OpGet, Mount: mount, Key: fmt.Sprintf("pd/%05d", i)})
			if len(window) == 64 {
				if err := flushWin(); err != nil {
					return 0, err
				}
			}
		}
		return matched, flushWin()
	}

	b0 := bytesOut.Value()
	clientMatched, err := getAll(c)
	if err != nil {
		return fmt.Errorf("tcp client-side pass: %v", err)
	}
	clientBytes := bytesOut.Value() - b0
	res.V("tcp_client_bytes", float64(clientBytes))

	for _, s := range []struct {
		name string
		pct  int
	}{{"sel100", 100}, {"sel10", 10}, {"sel1", 1}} {
		b0 := bytesOut.Value()
		r, err := c.Do(&serve.ReqFrame{Op: core.OpScan, Mount: mount, Key: "pd/", Prog: s.name})
		if err != nil || r.Err() != nil {
			return fmt.Errorf("tcp scan %s: %v / %v", s.name, err, r.Err())
		}
		pdBytes := bytesOut.Value() - b0
		if s.pct == 1 {
			n := 0
			if err := pushdown.DecodeKV(r.Resp.Value, func(string, []byte) error { n++; return nil }); err != nil {
				return err
			}
			if n != clientMatched {
				return fmt.Errorf("tcp scan sel1 matched %d, client-side %d", n, clientMatched)
			}
		}
		ratio := float64(clientBytes) / float64(pdBytes)
		res.V("tcp_pd_bytes_"+s.name, float64(pdBytes))
		res.V("tcp_ratio_"+s.name, ratio)
		res.Table.AddRowf("kvs tcp", fmt.Sprintf("%d%%", s.pct), float64(clientBytes), float64(pdBytes), ratio)
	}

	// Allow-list enforcement at the server boundary.
	cl, err := serveDial(addr.String(), "locked")
	if err != nil {
		return err
	}
	r, err := cl.Do(&serve.ReqFrame{Op: core.OpScan, Mount: mount, Key: "pd/", Prog: "sel1"})
	cl.Close()
	if err != nil {
		return err
	}
	if r.Err() == nil {
		return fmt.Errorf("tenant allow-list not enforced: locked tenant's scan succeeded")
	}
	res.V("allowlist_enforced", 1)

	// Tenant budget clamp enforcement through the full remote path.
	ct, err := serveDial(addr.String(), "tiny")
	if err != nil {
		return err
	}
	r, err = ct.Do(&serve.ReqFrame{Op: core.OpScan, Mount: mount, Key: "pd/", Prog: "sel1"})
	ct.Close()
	if err != nil {
		return err
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "budget") {
		return fmt.Errorf("tenant budget cap not enforced over TCP: %v", r.Err())
	}
	res.V("budget_tcp_enforced", 1)

	// The analysis workload: `clients` connections each running "find the
	// 1% matching records" jobs for a fixed wall-clock window.
	const window = 300 * time.Millisecond
	runJobs := func(job func(*serve.Conn) error) (float64, error) {
		conns := make([]*serve.Conn, clients)
		for i := range conns {
			cc, err := serveDial(addr.String(), "bench")
			if err != nil {
				return 0, err
			}
			defer cc.Close()
			conns[i] = cc
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		jobs, firstErr := 0, error(nil)
		start := time.Now()
		for _, cc := range conns {
			wg.Add(1)
			go func(cc *serve.Conn) {
				defer wg.Done()
				n := 0
				for time.Since(start) < window {
					if err := job(cc); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					n++
				}
				mu.Lock()
				jobs += n
				mu.Unlock()
			}(cc)
		}
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(jobs) / time.Since(start).Seconds(), nil
	}

	clientJobs, err := runJobs(func(cc *serve.Conn) error {
		_, err := getAll(cc)
		return err
	})
	if err != nil {
		return fmt.Errorf("client-side jobs: %v", err)
	}
	pdJobs, err := runJobs(func(cc *serve.Conn) error {
		r, err := cc.DoRetry(&serve.ReqFrame{Op: core.OpScan, Mount: mount, Key: "pd/", Prog: "sel1"}, 4)
		if err != nil {
			return err
		}
		return r.Err()
	})
	if err != nil {
		return fmt.Errorf("pushdown jobs: %v", err)
	}
	res.V("jobs8_client_per_s", clientJobs)
	res.V("jobs8_pd_per_s", pdJobs)
	speedup := 0.0
	if clientJobs > 0 {
		speedup = pdJobs / clientJobs
	}
	res.V("jobs8_speedup", speedup)
	res.Table.AddRowf(fmt.Sprintf("%d-client jobs/s", clients), "1%", clientJobs, pdJobs, speedup)
	return nil
}
