package experiments

import (
	"bytes"
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Zerocopy measures the end-to-end zero-copy data path (this PR's tentpole)
// at two levels, plus the NUMA-locality placement win:
//
//  1. Store level (wall clock, the contention experiment's disjoint-range
//     3:1 write:read shape on the striped store; the logical op is "update
//     or read one 512B record living in a 4KiB block"): four ladder rungs —
//     - baseline: the committed BENCH_contention striped loop re-run
//     verbatim — the block interface moves the whole 4KiB block per op
//     (memcpy in/out of a plain heap buffer; 1 copy/op at the DMA);
//     - copypath: the pre-zerocopy stack emulated honestly — the block
//     bounces app buffer -> queue staging -> cache page -> device
//     (~3 copies/op), the memcpy-at-every-hop shape this PR removes;
//     - zeropath: a registered arena buffer (core.BufHandle) carried in
//     place through the whole op — the one remaining copy is the DMA
//     itself (1 copy/op, io_uring registered-buffer semantics);
//     - mapped: device.MapRange DAX views — the paper's byte-addressable
//     top rung; the record is produced/consumed directly in device
//     memory (0 copies/op) and only the record's bytes move, the win
//     block granularity can never reach.
//  2. Stack level (virtual-time runtime, kvs/cache/driver): copies per
//     operation measured from the telemetry copy-site counters, the audit
//     that every remaining memcpy on the data path must self-report:
//     put ≈ 2 (write-through cache insert + DMA), get ≈ 1 (one copy into
//     the result, wherever it is served from), cached block read with a
//     handed-out page ≈ 0 — the fast path is at or below one copy.
//  3. NUMA placement (virtual time): 4 clients on a modeled 2-node
//     topology; with LocalityWeight=0 round-robin placement crosses the
//     socket on every request, with locality-aware placement queues land
//     on node-local workers. Reported as the modeled cross-node charge
//     reduction.
func Zerocopy(clients []int, opsPerClient, ioSize int) (*Result, error) {
	if opsPerClient <= 0 {
		opsPerClient = 300000
	}
	if ioSize <= 0 {
		ioSize = 4096
	}

	res := &Result{Name: "Zero-copy data path: copy ladder + NUMA-local placement"}
	res.Table = newTable("clients", "copypath Mops/s", "baseline Mops/s", "zeropath Mops/s", "mapped Mops/s", "mapped/baseline")
	res.V("ops_per_client", float64(opsPerClient))
	res.V("io_size", float64(ioSize))

	for _, c := range clients {
		base := zerocopyLeg("baseline", c, opsPerClient, ioSize)
		cp := zerocopyLeg("copypath", c, opsPerClient, ioSize)
		zp := zerocopyLeg("zeropath", c, opsPerClient, ioSize)
		mp := zerocopyLeg("mapped", c, opsPerClient, ioSize)
		res.Table.AddRowf(c, cp, base, zp, mp, mp/base)
		res.V(fmt.Sprintf("baseline_c%d_mops", c), base)
		res.V(fmt.Sprintf("copypath_c%d_mops", c), cp)
		res.V(fmt.Sprintf("zeropath_c%d_mops", c), zp)
		res.V(fmt.Sprintf("mapped_c%d_mops", c), mp)
		res.V(fmt.Sprintf("speedup_c%d", c), mp/base)
	}

	// Stack-level copies/op from the copy-site audit counters.
	putC, getC, cachedC, err := zerocopyStack(opsPerClient / 10)
	if err != nil {
		return nil, err
	}
	res.V("put_copies_per_op", putC)
	res.V("get_copies_per_op", getC)
	res.V("cached_read_copies_per_op", cachedC)

	// NUMA-locality placement: modeled cross-node charge with placement
	// blind to locality vs locality-aware.
	crossOff, err := zerocopyNUMA(opsPerClient/10, 0)
	if err != nil {
		return nil, err
	}
	crossOn, err := zerocopyNUMA(opsPerClient/10, 2.0)
	if err != nil {
		return nil, err
	}
	reduction := 0.0
	if crossOff > 0 {
		reduction = 100 * (crossOff - crossOn) / crossOff
	}
	res.V("numa_cross_ns_locality_off", crossOff)
	res.V("numa_cross_ns_locality_on", crossOn)
	res.V("cross_reduction_pct", reduction)

	res.Notes = fmt.Sprintf(
		"logical op = touch one %dB record in a %dB block (block legs move the whole block, the DAX leg only the record), disjoint ranges, best of 3; stack-level copies/op from telemetry copy sites: put %.2f, get %.2f, cached handout %.2f (fast path ≤1); locality-aware placement cuts modeled cross-NUMA charge by %.1f%%",
		zcRecordSize, ioSize, putC, getC, cachedC, reduction)
	return res, nil
}

// zcRecordSize is the logical record a store-leg op updates or reads. The
// block-interface legs (baseline/copypath/zeropath) pay block granularity —
// the whole 4KiB block moves to touch one record, exactly as a block device
// forces — while the mapped (DAX) leg accesses just the record in place.
const zcRecordSize = 512

// zerocopySink defeats dead-code elimination of the mapped read leg.
var zerocopySink byte

// zerocopyLeg runs one (mode, clients) configuration, best of 3 runs, and
// returns aggregate Mops/s. Workload shape is identical to contentionLeg:
// each client sweeps a private region with a 3:1 write:read mix and
// GOMAXPROCS is raised to the client count so threads genuinely interleave.
func zerocopyLeg(mode string, clients, ops, ioSize int) float64 {
	const region = int64(4 << 20)
	prev := gort.GOMAXPROCS(clients)
	defer gort.GOMAXPROCS(prev)
	var best float64
	for run := 0; run < 3; run++ {
		store := device.NewSparseStoreStriped(int64(clients)*region, stripedStripes)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				zerocopyClient(mode, store, base, region, ops, ioSize)
			}(int64(c) * region)
		}
		wg.Wait()
		if m := float64(clients*ops) / time.Since(start).Seconds() / 1e6; m > best {
			best = m
		}
	}
	return best
}

func zerocopyClient(mode string, store *device.SparseStore, base, region int64, ops, ioSize int) {
	steps := region / int64(ioSize)
	switch mode {
	case "copypath":
		// Pre-zerocopy stack shape: app buffer -> queue staging -> cache
		// page -> device, one memcpy per hop.
		app := make([]byte, ioSize)
		staging := make([]byte, ioSize)
		page := make([]byte, ioSize)
		for i := 0; i < ops; i++ {
			off := base + int64(i)%steps*int64(ioSize)
			if i%4 == 3 {
				store.ReadAt(staging, off)
				copy(page, staging)
				copy(app, page)
			} else {
				copy(staging, app)
				copy(page, staging)
				store.WriteAt(page, off)
			}
		}
	case "zeropath":
		// Registered-buffer path: the payload lives in one arena buffer for
		// the whole op; the only copy left is the DMA itself.
		h := core.AcquireHandle(0, ioSize)
		defer h.Release()
		buf := h.Bytes()
		for i := 0; i < ops; i++ {
			off := base + int64(i)%steps*int64(ioSize)
			if i%4 == 3 {
				store.ReadAt(buf, off)
			} else {
				store.WriteAt(buf, off)
			}
		}
	case "mapped":
		// DAX rung: map the region once (a persistent view is the point —
		// per-op there is no lock, no chunk lookup, no transfer), then
		// access records directly in device memory. This is where
		// byte-addressability pays: the block legs must move the whole
		// 4KiB block to touch one record, the mapped leg touches exactly
		// the record's bytes. The producer constructs the record in place
		// (doubling self-fill); the consumer scans it for a sentinel in
		// place. Note the block legs are *favored* by this comparison:
		// they skip the in-buffer record production the mapped leg pays.
		views := make([][]byte, steps)
		for j := range views {
			v, err := store.MapRange(base+int64(j)*int64(ioSize), ioSize)
			if err != nil {
				return
			}
			views[j] = v
		}
		recs := ioSize / zcRecordSize
		if recs == 0 {
			recs = 1
		}
		sink := 0
		for i := 0; i < ops; i++ {
			view := views[int64(i)%steps]
			lo := (i / 4 % recs) * (len(view) / recs)
			rec := view[lo : lo+len(view)/recs]
			if i%4 == 3 {
				sink ^= bytes.IndexByte(rec, 0xFE)
			} else {
				pat := byte(i)
				if pat == 0xFE {
					pat = 0
				}
				rec[0] = pat
				for f := 1; f < len(rec); f *= 2 {
					copy(rec[f:], rec[:f])
				}
			}
		}
		zerocopySink ^= byte(sink)
	default: // baseline: the committed contention striped loop, verbatim
		buf := make([]byte, ioSize)
		for i := 0; i < ops; i++ {
			off := base + int64(i)%steps*int64(ioSize)
			if i%4 == 3 {
				store.ReadAt(buf, off)
			} else {
				store.WriteAt(buf, off)
			}
		}
	}
}

// zerocopyStack drives the runtime data path (KVS put/get over cache and
// driver, plus a warm block-read stack) and derives copies/op from the
// telemetry copy-site counter deltas — the honest audit: any memcpy a
// refactor sneaks back onto the path shows up here.
func zerocopyStack(ops int) (putCopies, getCopies, cachedCopies float64, err error) {
	if ops < 256 {
		ops = 256
	}
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	defer rt.Shutdown()

	kvStack, err := MountLab(rt, "kv::/z", "dev0", LabCfg{KV: true, Cache: true, Sched: "noop", Driver: "kernel_driver", NoFS: false})
	if err != nil {
		return 0, 0, 0, err
	}
	blkStack, err := MountLab(rt, "blk::/z", "dev0", LabCfg{NoFS: true, Cache: true, Driver: "kernel_driver"})
	if err != nil {
		return 0, 0, 0, err
	}
	rt.Start()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	const valSize = 4096
	payload, err := cli.AcquireBuffer(valSize)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cli.ReleaseBuffer(payload)
	for i := range payload.Bytes() {
		payload.Bytes()[i] = byte(i)
	}

	keys := 64
	run := func(n int, do func(i int) *core.Request) (float64, error) {
		c0, _ := telemetry.CopyTotals()
		for i := 0; i < n; i++ {
			req := do(i)
			err := cli.SubmitStack(kvStack, req)
			req.Release()
			if err != nil {
				return 0, err
			}
		}
		c1, _ := telemetry.CopyTotals()
		return float64(c1-c0) / float64(n), nil
	}

	putCopies, err = run(ops, func(i int) *core.Request {
		req := core.AcquireRequest(core.OpPut)
		req.Path = fmt.Sprintf("k%d", i%keys)
		req.SetPayload(payload)
		req.Size = valSize
		return req
	})
	if err != nil {
		return 0, 0, 0, err
	}
	getCopies, err = run(ops, func(i int) *core.Request {
		req := core.AcquireRequest(core.OpGet)
		req.Path = fmt.Sprintf("k%d", i%keys)
		return req
	})
	if err != nil {
		return 0, 0, 0, err
	}

	// Cached block reads with no destination buffer: the cache hands out a
	// retained page view — the zero-copy fast path. Warm with a read-miss
	// pass: the driver DMAs each block into a stack-owned handle and the
	// cache retains that handle in place (write-inserted pages are copies
	// of borrowed client memory and can never be handed out).
	for i := 0; i < keys; i++ {
		req := core.AcquireRequest(core.OpBlockRead)
		req.Offset = int64(i) * valSize
		req.Size = valSize
		err := cli.SubmitStack(blkStack, req)
		req.Release()
		if err != nil {
			return 0, 0, 0, err
		}
	}
	c0, _ := telemetry.CopyTotals()
	for i := 0; i < ops; i++ {
		req := core.AcquireRequest(core.OpBlockRead)
		req.Offset = int64(i%keys) * valSize
		req.Size = valSize
		err := cli.SubmitStack(blkStack, req)
		req.Release()
		if err != nil {
			return 0, 0, 0, err
		}
	}
	c1, _ := telemetry.CopyTotals()
	cachedCopies = float64(c1-c0) / float64(ops)
	return putCopies, getCopies, cachedCopies, nil
}

// zerocopyNUMA boots a 4-worker runtime on a modeled 2-node topology, runs
// four clients (whose queues alternate nodes), and returns the accumulated
// modeled cross-node charge. With locality == 0 round-robin placement puts
// every queue on an off-node worker (the adversarial interleaving); with a
// positive locality weight each queue lands on its own node.
func zerocopyNUMA(ops int, locality float64) (crossNS float64, err error) {
	if ops < 256 {
		ops = 256
	}
	model := vtime.Default()
	model.NUMA = vtime.DefaultNUMA(2)
	rt := runtime.New(runtime.Options{
		MaxWorkers:     4,
		QueueDepth:     4096,
		Policy:         "round_robin",
		Model:          model,
		LocalityWeight: locality,
	})
	rt.AddDevice(device.New("dev0", device.NVMe, 64<<20))
	stack, err := MountLab(rt, "blk::/n", "dev0", LabCfg{NoFS: true, Driver: "kernel_driver"})
	if err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	const nClients = 4
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for c := 0; c < nClients; c++ {
		cli := rt.Connect(ipc.Credentials{PID: 100 + c, UID: 0, GID: 0})
		wg.Add(1)
		go func(cli *runtime.Client, base int64) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < ops; i++ {
				req := core.AcquireRequest(core.OpBlockWrite)
				req.Offset = base + int64(i%64)*4096
				req.Size = len(buf)
				req.Data = buf
				err := cli.SubmitStack(stack, req)
				req.Release()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(cli, int64(c)<<20)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(rt.Metrics().Counter("numa.cross_ns").Value()), nil
}
