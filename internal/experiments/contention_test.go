package experiments

import "testing"

// TestShapeContention is a smoke-sized run: both modes produce throughput
// and the speedup values are recorded. The striped>global assertion at high
// client counts is left to the checked-in BENCH_contention.json (wall-clock
// scaling on a loaded CI box is too noisy for a hard test gate).
func TestShapeContention(t *testing.T) {
	res, err := Contention([]int{1, 2}, 2000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"global_c1_mops", "striped_c1_mops", "global_c2_mops", "striped_c2_mops", "speedup_c2", "stripes"} {
		if res.Values[k] <= 0 {
			t.Fatalf("value %q = %v, want > 0", k, res.Values[k])
		}
	}
	if res.Values["stripes"] < 8 {
		t.Fatalf("default stripes %v, want >= 8", res.Values["stripes"])
	}
}
