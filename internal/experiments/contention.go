package experiments

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"labstor/internal/device"
)

// stripedStripes is the stripe count used for the striped side of the
// contention experiment. It is pinned to the cap of the auto-sizing rule
// (DefaultStripes clamps at 256) instead of calling DefaultStripes() so the
// measured configuration does not depend on the core count of the host the
// benchmark happens to run on.
const stripedStripes = 256

// Contention measures multi-writer scaling of the striped SparseStore
// against the single-global-lock baseline (stripes=1, the pre-striping
// store). It is a wall-clock experiment, not a virtual-time one: the
// quantity under study is host-side lock contention on the device store,
// the shared-state bottleneck the paper's per-worker partitioning argument
// (§III-E, Fig. 7) says must not exist on the data path.
//
// Each client owns a disjoint byte region and issues a 3:1 write:read mix
// of ioSize ops that sweeps its region, so clients never touch the same
// chunk — exactly the disjoint-range workload striping is supposed to make
// contention-free. Every (mode, clients) leg runs three times and keeps the
// best throughput to damp scheduler noise. Alongside throughput, each leg
// records the runtime's cumulative mutex-wait time (/sync/mutex/wait/total)
// so the JSON shows directly where the lost time went.
func Contention(clients []int, opsPerClient, ioSize int) (*Result, error) {
	if opsPerClient <= 0 {
		opsPerClient = 300000
	}
	if ioSize <= 0 {
		ioSize = 4096
	}

	res := &Result{Name: fmt.Sprintf("Device-store contention: striped (%d) vs global lock", stripedStripes)}
	res.Table = newTable("clients", "global Mops/s", "striped Mops/s", "speedup", "global lock-wait", "striped lock-wait")
	res.V("stripes", float64(stripedStripes))
	res.V("ops_per_client", float64(opsPerClient))
	res.V("io_size", float64(ioSize))

	for _, c := range clients {
		g, gWait := contentionLeg(1, c, opsPerClient, ioSize)
		s, sWait := contentionLeg(stripedStripes, c, opsPerClient, ioSize)
		res.Table.AddRowf(c, g, s, s/g,
			fmt.Sprintf("%.1fms", gWait*1e3), fmt.Sprintf("%.1fms", sWait*1e3))
		res.V(fmt.Sprintf("global_c%d_mops", c), g)
		res.V(fmt.Sprintf("striped_c%d_mops", c), s)
		res.V(fmt.Sprintf("speedup_c%d", c), s/g)
		res.V(fmt.Sprintf("global_c%d_lockwait_ms", c), gWait*1e3)
		res.V(fmt.Sprintf("striped_c%d_lockwait_ms", c), sWait*1e3)
	}
	res.Notes = fmt.Sprintf(
		"disjoint-range %dB ops, best of 3 runs; striping removes the global-lock serialization, so the striped/global speedup should exceed 1 at high client counts and the striped lock-wait column should collapse toward zero",
		ioSize)
	return res, nil
}

// mutexWaitSeconds reads the runtime's cumulative time goroutines have
// spent blocked on sync primitives.
func mutexWaitSeconds() float64 {
	s := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return s[0].Value.Float64()
}

// contentionLeg runs one (stripes, clients) configuration and returns the
// best aggregate throughput in Mops/s over three runs, plus the mutex-wait
// time accumulated during that best run.
//
// GOMAXPROCS is raised to the client count for the duration of the leg:
// the experiment models N workers on N cores, and on a smaller host the
// cooperative goroutine scheduler would otherwise timeslice clients so
// coarsely that the global lock is almost never contended mid-critical-
// section. With one OS thread per client, threads preempt each other at
// kernel granularity and lock convoys form exactly as they do on real
// multi-core deployments.
func contentionLeg(stripes, clients, ops, ioSize int) (mops, lockWait float64) {
	const region = int64(4 << 20) // 64 chunks per client: sweeps many stripes
	prev := runtime.GOMAXPROCS(clients)
	defer runtime.GOMAXPROCS(prev)
	for run := 0; run < 3; run++ {
		store := device.NewSparseStoreStriped(int64(clients)*region, stripes)
		var wg sync.WaitGroup
		wait0 := mutexWaitSeconds()
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				buf := make([]byte, ioSize)
				steps := region / int64(ioSize)
				for i := 0; i < ops; i++ {
					off := base + int64(i)%steps*int64(ioSize)
					if i%4 == 3 {
						store.ReadAt(buf, off)
					} else {
						store.WriteAt(buf, off)
					}
				}
			}(int64(c) * region)
		}
		wg.Wait()
		wall := time.Since(start)
		if m := float64(clients*ops) / wall.Seconds() / 1e6; m > mops {
			mops = m
			lockWait = mutexWaitSeconds() - wait0
		}
	}
	return mops, lockWait
}
