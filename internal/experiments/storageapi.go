package experiments

import (
	"fmt"
	"math/rand"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// StorageAPI reproduces Fig. 6, "Storage API performance": the kernel's
// userspace storage APIs (POSIX, POSIX AIO, libaio, io_uring — all direct
// I/O to the raw device) against LabStacks consisting only of a Driver
// LabMod (KernelDriver everywhere, SPDK on NVMe, DAX on PMEM), across
// HDD / SATA SSD / NVMe / PMEM at 4KB and 128KB request sizes. Single
// thread, queue depth 1, random writes; IOPS normalized per device/size to
// the best performer.
//
// Paper result: on low-latency devices the LabStor paths win — KernelDriver
// beats the best kernel API by ≥15% at 4KB on NVMe, SPDK adds ~12% over
// KernelDriver, POSIX AIO is worst (60-70% overhead); by 128KB the spread
// collapses to single digits; on HDD everything ties (seek-dominated).
func StorageAPI(opsPerTrial int) (*Result, error) {
	if opsPerTrial <= 0 {
		opsPerTrial = 400
	}
	res := &Result{Name: "Fig 6: storage API performance (1 thread, qd1, random writes)"}
	res.Table = newTable("Device", "Size", "API", "KIOPS", "Normalized")

	devices := []device.Class{device.HDD, device.SATASSD, device.NVMe, device.PMEM}
	sizes := []int{4 << 10, 128 << 10}
	kernelAPIs := []string{"posix", "posix_aio", "libaio", "io_uring"}

	for _, class := range devices {
		for _, size := range sizes {
			type entry struct {
				api  string
				iops float64
			}
			var entries []entry

			// Kernel APIs.
			for _, api := range kernelAPIs {
				iops, err := runEngineTrial(class, api, size, opsPerTrial)
				if err != nil {
					return nil, err
				}
				entries = append(entries, entry{api, iops})
			}
			// LabStor driver stacks.
			drivers := []string{"kernel_driver"}
			if class == device.NVMe {
				drivers = append(drivers, "spdk")
			}
			if class == device.PMEM {
				drivers = append(drivers, "dax")
			}
			for _, drv := range drivers {
				iops, err := runDriverStackTrial(class, drv, size, opsPerTrial)
				if err != nil {
					return nil, err
				}
				entries = append(entries, entry{"lab_" + drv, iops})
			}

			best := 0.0
			for _, e := range entries {
				if e.iops > best {
					best = e.iops
				}
			}
			for _, e := range entries {
				norm := 0.0
				if best > 0 {
					norm = e.iops / best
				}
				res.Table.AddRowf(class.String(), fmt.Sprintf("%dK", size>>10), e.api, e.iops/1000, norm)
				res.V(fmt.Sprintf("%s_%d_%s", class, size, e.api), e.iops)
			}
		}
	}
	res.Notes = "lab_* rows are LabStacks of a single Driver LabMod through one Runtime worker"
	return res, nil
}

func runEngineTrial(class device.Class, api string, size, ops int) (float64, error) {
	dev := device.New("raw", class, 4<<30)
	eng, err := kernel.NewEngine(api, dev, vtime.Default())
	if err != nil {
		return 0, err
	}
	t := kernel.NewThread(0)
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, size)
	maxOff := dev.Capacity()/int64(size) - 1
	start := t.Now()
	for i := 0; i < ops; i++ {
		off := rng.Int63n(maxOff) * int64(size)
		if _, err := eng.DoIO(t, device.Write, off, buf); err != nil {
			return 0, err
		}
	}
	elapsed := t.Now().Sub(start)
	return float64(ops) / elapsed.Seconds(), nil
}

func runDriverStackTrial(class device.Class, driver string, size, ops int) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096})
	dev := device.New("dev0", class, 4<<30)
	rt.AddDevice(dev)
	if _, err := MountLab(rt, "blk::/raw", "dev0", LabCfg{NoFS: true, Driver: driver}); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, size)
	maxOff := dev.Capacity()/int64(size) - 1
	start := cli.Clock()
	for i := 0; i < ops; i++ {
		req := core.NewRequest(core.OpBlockWrite)
		req.Offset = rng.Int63n(maxOff) * int64(size)
		req.Size = size
		req.Data = buf
		if err := cli.Submit("blk::/raw", req); err != nil {
			return 0, err
		}
		if req.Err != nil {
			return 0, req.Err
		}
	}
	elapsed := cli.Clock().Sub(start)
	return float64(ops) / elapsed.Seconds(), nil
}
