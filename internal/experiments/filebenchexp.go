package experiments

import (
	"fmt"

	"labstor/internal/device"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

// Filebench reproduces Fig. 9(c-d), "Cloud workloads": the four Filebench
// personalities (varmail, webserver, webproxy, fileserver) with default op
// mixes over NVMe and PMEM, comparing kernel filesystems against LabFS
// stacks (All / Min / D). The Runtime runs 8 workers.
//
// Paper result: LabFS stacks win markedly (up to 2.5x throughput) on the
// metadata- and fsync-heavy personalities by cutting context switches and
// path length; fileserver — dominated by large I/O — is the exception,
// where everyone converges.
func Filebench(iterations int, devices []device.Class) (*Result, error) {
	if iterations <= 0 {
		iterations = 8
	}
	if len(devices) == 0 {
		devices = []device.Class{device.NVMe}
	}
	res := &Result{Name: "Fig 9(c,d): Filebench personalities"}
	res.Table = newTable("Device", "Personality", "System", "kops/s", "MB/s")

	personalities := []string{"varmail", "webserver", "webproxy", "fileserver"}
	systems := []string{"ext4", "xfs", "f2fs", "LabFS-All", "LabFS-Min", "LabFS-D"}

	for _, class := range devices {
		for _, p := range personalities {
			for _, sys := range systems {
				kops, mbps, err := runFilebenchTrial(class, sys, p, iterations)
				if err != nil {
					return nil, err
				}
				res.Table.AddRowf(class.String(), p, sys, kops, mbps)
				res.V(fmt.Sprintf("%s_%s_%s", class, p, sys), kops*1000)
			}
		}
	}
	res.Notes = fmt.Sprintf("8 threads, %d iterations of each personality's default op mix", iterations)
	return res, nil
}

func runFilebenchTrial(class device.Class, system, personality string, iterations int) (kops, mbps float64, err error) {
	var fs workload.FS
	var cleanup func()
	switch system {
	case "ext4", "xfs", "f2fs":
		prof, err := kernel.KFSProfileFor(system)
		if err != nil {
			return 0, 0, err
		}
		dev := device.New("dev0", class, 4<<30)
		fs = &workload.KernelFS{FSName: system, KFS: kernel.NewKFS(prof, dev, vtime.Default())}
		cleanup = func() {}
	case "LabFS-All", "LabFS-Min", "LabFS-D":
		rt := runtime.New(runtime.Options{MaxWorkers: 8, QueueDepth: 4096})
		dev := device.New("dev0", class, 4<<30)
		rt.AddDevice(dev)
		cfg := LabCfg{Generic: true, Cache: true, Sched: "noop", Driver: "kernel_driver", LogMB: 64}
		if class == device.PMEM {
			cfg.Driver = "dax"
			cfg.Sched = ""
		}
		switch system {
		case "LabFS-All":
			cfg.Perms = true
		case "LabFS-D":
			cfg.Sync = true
		}
		if _, err := MountLab(rt, "fs::/fb", "dev0", cfg); err != nil {
			return 0, 0, err
		}
		rt.Start()
		fs = &workload.LabStorFS{FSName: system, RT: rt, Mount: "fs::/fb"}
		cleanup = rt.Shutdown
	default:
		return 0, 0, fmt.Errorf("experiments: unknown system %q", system)
	}
	defer cleanup()

	r, err := workload.RunFilebench(fs, workload.FilebenchJob{
		Personality: personality,
		Threads:     8,
		Files:       32,
		Iterations:  iterations,
		Seed:        7,
	})
	if err != nil {
		return 0, 0, err
	}
	return r.OpsPerSec / 1000, r.MBps, nil
}
