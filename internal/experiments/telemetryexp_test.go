package experiments

import (
	"testing"

	"labstor/internal/spec"
)

// TestTelemetryProbe drives the `labctl stats` probe against the default
// runtime configuration and asserts the snapshot has the per-worker,
// per-queue and per-stage structure the tool reports.
func TestTelemetryProbe(t *testing.T) {
	cfg := spec.DefaultRuntimeConfig()
	cfg.PerfSampleEvery = 8
	snap, err := TelemetryProbe(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Workers) != cfg.Workers {
		t.Fatalf("snapshot has %d workers, config %d", len(snap.Workers), cfg.Workers)
	}
	if len(snap.Queues) == 0 {
		t.Fatal("no queues in probe snapshot")
	}
	if len(snap.Stages) == 0 {
		t.Fatal("no stages sampled by probe")
	}
	stages := map[string]bool{}
	for _, c := range snap.Stages {
		stages[c.Stage] = true
	}
	for _, want := range []string{"ipc", "io"} {
		if !stages[want] {
			t.Fatalf("probe missed stage %q", want)
		}
	}
	// Both the FS and KVS stacks contribute op counters to the registry.
	fs, kvs := false, false
	for name, v := range snap.Metrics.Counters {
		if v > 0 && len(name) > 5 {
			switch name[:5] {
			case "labfs":
				fs = true
			case "labkv":
				kvs = true
			}
		}
	}
	if !fs || !kvs {
		t.Fatalf("probe op counters missing (fs=%v kvs=%v): %v", fs, kvs, snap.Metrics.Counters)
	}
	if len(snap.Traces) == 0 {
		t.Fatal("probe retained no traces")
	}
}
