package experiments

import (
	"fmt"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/spec"
)

// TelemetryProbe boots a Runtime from cfg (spec defaults if nil), mounts a
// quickstart-style LabFS stack plus a LabKVS stack over the configured
// devices, drives a small mixed workload through two clients, and returns
// the final telemetry snapshot. It is the engine behind `labctl stats` and
// `labbench -telemetry`: every run of it reproduces the per-worker,
// per-queue and per-stage tree the EXPERIMENTS.md tables are built from.
func TelemetryProbe(cfg *spec.RuntimeConfig, ops int) (*runtime.Snapshot, error) {
	if cfg == nil {
		cfg = spec.DefaultRuntimeConfig()
	}
	if ops <= 0 {
		ops = 200
	}
	opts := runtime.FromConfig(cfg)
	rt := runtime.New(opts)

	devs := cfg.Devices
	if len(devs) == 0 {
		devs = []spec.DeviceSpec{{Name: "nvme0", Class: device.NVMe, Capacity: 256 << 20}}
	}
	for _, d := range devs {
		rt.AddDevice(device.NewStriped(d.Name, d.Class, d.Capacity, d.Stripes))
	}

	fsDev := devs[0].Name
	kvDev := devs[len(devs)-1].Name
	if _, err := MountLab(rt, "fs::/probe", fsDev, LabAll("kernel_driver")); err != nil {
		return nil, fmt.Errorf("telemetry probe: mount fs: %w", err)
	}
	kvCfg := LabCfg{Generic: true, KV: true, Sched: "noop", Driver: "kernel_driver"}
	if _, err := MountLab(rt, "kv::/probe", kvDev, kvCfg); err != nil {
		return nil, fmt.Errorf("telemetry probe: mount kv: %w", err)
	}

	rt.Start()
	defer rt.Shutdown()

	buf := make([]byte, 16<<10)
	for c := 0; c < 2; c++ {
		cli := rt.Connect(ipc.Credentials{PID: 100 + c, UID: 1000, GID: 1000})
		for i := 0; i < ops; i++ {
			path := fmt.Sprintf("f-%d-%d", c, i%16)
			w := core.NewRequest(core.OpWrite)
			w.Path = path
			w.Flags = core.FlagCreate
			w.Offset = int64(i%8) * int64(len(buf))
			w.Size = len(buf)
			w.Data = buf
			if err := cli.Submit("fs::/probe", w); err != nil {
				return nil, fmt.Errorf("telemetry probe: write: %w", err)
			}
			r := core.NewRequest(core.OpRead)
			r.Path = path
			r.Offset = w.Offset
			r.Size = len(buf)
			r.Data = make([]byte, len(buf))
			if err := cli.Submit("fs::/probe", r); err != nil {
				return nil, fmt.Errorf("telemetry probe: read: %w", err)
			}
			st := core.NewRequest(core.OpStat)
			st.Path = path
			if err := cli.Submit("fs::/probe", st); err != nil {
				return nil, fmt.Errorf("telemetry probe: stat: %w", err)
			}
			p := core.NewRequest(core.OpPut)
			p.Key = fmt.Sprintf("k-%d-%d", c, i%32)
			p.Size = 4096
			p.Data = buf[:4096]
			if err := cli.Submit("kv::/probe", p); err != nil {
				return nil, fmt.Errorf("telemetry probe: put: %w", err)
			}
			g := core.NewRequest(core.OpGet)
			g.Key = p.Key
			if err := cli.Submit("kv::/probe", g); err != nil {
				return nil, fmt.Errorf("telemetry probe: get: %w", err)
			}
		}
	}
	// Close the measurement epoch so the snapshot's queue rates and the
	// dynamic policy's last decision reflect the workload just run.
	rt.Orchestrator().Rebalance()
	return rt.Snapshot(), nil
}
