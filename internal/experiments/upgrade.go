package experiments

import (
	"fmt"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/dummy"
	"labstor/internal/runtime"
)

// LiveUpgrade reproduces Table I, "Live upgrade overhead": an application
// sends messages to a dummy LabMod through the Runtime while the module is
// live-upgraded; the experiment varies how many upgrade requests are queued
// (0 / 256 / 512 / 1024) and reports the application's total running time
// for both upgrade protocols.
//
// Paper result: a single upgrade costs ~5 ms (dominated by loading the
// 1 MiB module binary from NVMe); runtime grows only when thousands of
// upgrades queue (+~5 s at 1024), and decentralized is slightly costlier
// than centralized. Either is ~5 orders of magnitude cheaper than the
// ~300 s reboot a kernel-module update needs.
func LiveUpgrade(messages int, upgradeCounts []int) (*Result, error) {
	if messages <= 0 {
		messages = 100000
	}
	if len(upgradeCounts) == 0 {
		upgradeCounts = []int{0, 256, 512, 1024}
	}

	res := &Result{Name: fmt.Sprintf("Table I: live upgrade (%d messages to a dummy LabMod)", messages)}
	header := []string{"Protocol"}
	for _, n := range upgradeCounts {
		header = append(header, fmt.Sprintf("%d upgrades (s)", n))
	}
	res.Table = newTable(header...)

	for _, mode := range []runtime.UpgradeMode{runtime.Centralized, runtime.Decentralized} {
		row := []string{mode.String()}
		for _, n := range upgradeCounts {
			secs, err := runUpgradeTrial(messages, n, mode)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", secs))
			res.V(fmt.Sprintf("%s_%d", mode, n), secs)
		}
		res.Table.AddRow(row...)
	}
	res.Notes = "virtual seconds of application runtime; each upgrade loads a 1 MiB module image from NVMe and transfers a few bytes of state"
	return res, nil
}

func runUpgradeTrial(messages, upgrades int, mode runtime.UpgradeMode) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096})
	dev := device.New("dev0", device.NVMe, 64<<20)
	rt.AddDevice(dev)
	if _, err := rt.Mount(core.NewStack("msg::/dummy", core.Rules{}, []core.Vertex{
		{UUID: "dummy0", Type: dummy.Type},
	})); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()

	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	// Queue the upgrades roughly 20% into the message stream (the paper
	// triggers the upgrade ~20 s into the run).
	trigger := messages / 5
	for i := 0; i < messages; i++ {
		if i == trigger && upgrades > 0 {
			var chans []<-chan error
			for u := 0; u < upgrades; u++ {
				chans = append(chans, rt.ModManager().RequestUpgrade(&runtime.UpgradeRequest{
					UUID:       "dummy0",
					Build:      func() core.Module { return &dummy.Dummy{} },
					Mode:       mode,
					CodeSize:   1 << 20,
					CodeDevice: "dev0",
				}))
			}
			// Upgrades are applied by the admin loop; completions arrive
			// while the app keeps sending.
			go func() {
				for _, ch := range chans {
					<-ch
				}
			}()
		}
		req := core.NewRequest(core.OpMessage)
		if err := cli.Submit("msg::/dummy", req); err != nil {
			return 0, err
		}
		if req.Err != nil {
			return 0, req.Err
		}
	}
	return cli.Clock().Sub(0).Seconds(), nil
}
