package experiments

import (
	"fmt"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
)

// Hotpath measures the host-side cost of the submission/completion hot path
// itself, isolating the platform's software overhead the way the paper's
// request-latency anatomy does (§IV-A): a minimal one-vertex stack over a
// cheap module, so ring operations, worker polling, telemetry and the
// orchestrator — not the I/O stack — dominate.
//
// Two comparisons, both on the same run:
//
//   - unbatched vs batched: per-request SubmitStackAsync + single-slot worker
//     polling (batch=1, the legacy path) against SubmitBatch + vectored
//     worker drain + bulk completion (batch=N). Modeled virtual-time results
//     are identical (see TestBatchEquivalence); the delta is pure wall-clock
//     hot-path overhead.
//   - heap vs pooled request lifecycle: NewRequest-per-op against
//     AcquireRequest/Release recycling, reported as allocs/op via
//     testing.Benchmark.
//
// ops is the total number of requests per throughput leg; batch is the
// worker drain/submit window (<=1 falls back to 8).
func Hotpath(ops, batch int) (*Result, error) {
	if batch <= 1 {
		batch = 8
	}
	if ops < batch {
		ops = batch
	}

	// Both legs keep the same number of requests outstanding per round, so
	// the only difference is the mechanics: per-request ring CAS + batch=1
	// worker polling + heap requests, against one reservation per run +
	// vectored drain + pooled requests.
	window := 8 * batch
	unbatched, err := hotpathThroughput(ops, window, 1, false)
	if err != nil {
		return nil, err
	}
	batched, err := hotpathThroughput(ops, window, batch, true)
	if err != nil {
		return nil, err
	}

	heapAllocs, pooledAllocs := hotpathAllocs()

	res := &Result{Name: "Batched hot path: vectored ring ops + request pooling"}
	res.Table = newTable("path", "ops", "wall_ms", "Mops/s", "allocs/op")
	res.Table.AddRowf("unbatched (batch=1, heap)", ops, float64(unbatched.Milliseconds()),
		hotpathMops(ops, unbatched), heapAllocs)
	res.Table.AddRowf(fmt.Sprintf("batched   (batch=%d, pooled)", batch), ops,
		float64(batched.Milliseconds()), hotpathMops(ops, batched), pooledAllocs)

	gain := 100 * (hotpathMops(ops, batched) - hotpathMops(ops, unbatched)) / hotpathMops(ops, unbatched)
	allocCut := 100 * (heapAllocs - pooledAllocs) / heapAllocs
	res.Notes = fmt.Sprintf(
		"batched throughput %+.1f%% vs unbatched; pooled lifecycle cuts allocs/op by %.1f%% (%.1f -> %.1f)",
		gain, allocCut, heapAllocs, pooledAllocs)

	res.V("ops", float64(ops))
	res.V("batch", float64(batch))
	res.V("unbatched_mops", hotpathMops(ops, unbatched))
	res.V("batched_mops", hotpathMops(ops, batched))
	res.V("throughput_gain_pct", gain)
	res.V("heap_allocs_per_op", heapAllocs)
	res.V("pooled_allocs_per_op", pooledAllocs)
	res.V("alloc_reduction_pct", allocCut)
	return res, nil
}

// hotpathThroughput pushes ops requests through a one-vertex dummy stack in
// windows of `window` outstanding requests and returns the wall time.
// workerBatch sets the worker drain batch; pooled selects the
// recycled-request + vectored-submit fast path.
func hotpathThroughput(ops, window, workerBatch int, pooled bool) (time.Duration, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 4096, Batch: workerBatch})
	rt.AddDevice(device.New("dev0", device.NVMe, 32<<20))
	stack, err := rt.Mount(core.NewStack("msg::/hot", core.Rules{}, []core.Vertex{
		{UUID: "hot/dum", Type: "labstor.dummy"},
	}))
	if err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

	reqs := make([]*core.Request, window)
	start := time.Now()
	for done := 0; done < ops; {
		n := window
		if ops-done < n {
			n = ops - done
		}
		for i := 0; i < n; i++ {
			if pooled {
				reqs[i] = core.AcquireRequest(core.OpMessage)
			} else {
				reqs[i] = core.NewRequest(core.OpMessage)
			}
		}
		if pooled {
			if err := cli.SubmitBatch(stack, reqs[:n]); err != nil {
				return 0, err
			}
		} else {
			for i := 0; i < n; i++ {
				if err := cli.SubmitStackAsync(stack, reqs[i]); err != nil {
					return 0, err
				}
			}
		}
		if err := cli.WaitAll(reqs[:n]); err != nil {
			return 0, err
		}
		if pooled {
			for i := 0; i < n; i++ {
				reqs[i].Release()
			}
		}
		done += n
	}
	return time.Since(start), nil
}

// hotpathAllocs measures the request lifecycle cost in allocs/op: create a
// request, charge one traced stage (the sampled hot path records stages),
// complete it, and either drop it for the GC or recycle it through the pool.
func hotpathAllocs() (heap, pooled float64) {
	lifecycle := func(r *core.Request) {
		r.Trace = true
		r.Charge("hot", 100)
		r.MarkDone()
	}
	h := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := core.NewRequest(core.OpMessage)
			lifecycle(r)
		}
	})
	p := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := core.AcquireRequest(core.OpMessage)
			lifecycle(r)
			r.Release()
		}
	})
	return float64(h.AllocsPerOp()), float64(p.AllocsPerOp())
}

func hotpathMops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}
