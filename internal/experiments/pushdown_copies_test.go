package experiments

import (
	"encoding/binary"
	"fmt"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/mods/pushdown"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// TestPushdownScanCopyContract is the copies/op contract for computation
// pushdown, measured from the same CopySite audit the zerocopy suite uses:
//
//   - a CACHED aggregate scan makes 0 payload copies — every record block
//     is a retained in-place cache view, and an aggregate emits nothing;
//   - an UNCACHED aggregate scan makes exactly 1 payload copy per record
//     block — the DMA fill (device.dma_read) — and nothing else.
//
// Any memcpy a refactor sneaks onto the scan path (staging, assembly,
// defensive copies) breaks this test by name.
func TestPushdownScanCopyContract(t *testing.T) {
	prog, err := pushdown.Default.Register("contract-count", "count where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	const nRecs = 32
	const valSize = 4096 // exactly one block: uncached = 1 DMA per record

	run := func(cached bool) map[string]int64 {
		rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 1024})
		rt.AddDevice(device.New("dev0", device.NVMe, 128<<20))
		defer rt.Shutdown()
		mount := fmt.Sprintf("kv::/cc%v", cached)
		stack, err := MountLab(rt, mount, "dev0", LabCfg{KV: true, Cache: cached, Driver: "kernel_driver"})
		if err != nil {
			t.Fatal(err)
		}
		rt.Start()
		cli := rt.Connect(ipc.Credentials{PID: 1, UID: 0, GID: 0})

		val := make([]byte, valSize)
		binary.LittleEndian.PutUint32(val, 1)
		for i := 0; i < nRecs; i++ {
			req := core.AcquireRequest(core.OpPut)
			req.Key = fmt.Sprintf("c/%02d", i)
			req.Size = valSize
			req.Data = val
			err := cli.SubmitStack(stack, req)
			reqErr := req.Err
			req.Release()
			if err != nil || reqErr != nil {
				t.Fatalf("put: %v / %v", err, reqErr)
			}
		}

		before := telemetry.CopySiteStats()
		req := core.AcquireRequest(core.OpScan)
		req.Key = "c/"
		req.Prog = prog.Ref
		err = cli.SubmitStack(stack, req)
		reqErr := req.Err
		result := req.Result
		req.Release()
		if err != nil || reqErr != nil {
			t.Fatalf("scan: %v / %v", err, reqErr)
		}
		if result != nRecs {
			t.Fatalf("scan count = %d, want %d", result, nRecs)
		}
		after := telemetry.CopySiteStats()

		deltas := map[string]int64{}
		for i, s := range after {
			if d := s.Count - before[i].Count; d != 0 {
				deltas[s.Site] = d
			}
		}
		return deltas
	}

	// Cached: the LRU holds handle-backed pages from the write inserts and
	// hands out retained views — the scan itself copies nothing.
	if deltas := run(true); len(deltas) != 0 {
		t.Errorf("cached pushdown scan made payload copies: %v (want none)", deltas)
	}

	// Uncached: each record block is DMA-filled into a stack-owned handle —
	// exactly one copy per record, all at device.dma_read.
	deltas := run(false)
	if deltas["device.dma_read"] != nRecs {
		t.Errorf("uncached scan dma_read = %d, want %d", deltas["device.dma_read"], nRecs)
	}
	delete(deltas, "device.dma_read")
	if len(deltas) != 0 {
		t.Errorf("uncached scan made extra copies beyond the DMA fill: %v", deltas)
	}
}
