package experiments

import (
	"fmt"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/workload"
)

// Ablations quantifies the design choices the platform's performance story
// rests on, each isolated with an on/off (or 1-vs-N) comparison:
//
//   - inode-hashmap sharding — LabFS's metadata scalability claim
//     (1 shard vs 64 shards at 24 threads);
//   - decentralized execution — the cost of the centralized authority
//     (sync vs async execution of the same stack, single thread);
//   - the LRU page cache — re-read throughput with and without it;
//   - predictive readahead — cold sequential read latency with and
//     without the prefetcher.
func Ablations() (*Result, error) {
	res := &Result{Name: "Ablations: the platform's load-bearing design choices"}
	res.Table = newTable("Choice", "Variant", "Metric", "Value")

	// --- 1. inode hashmap sharding -------------------------------------------
	for _, shards := range []int{1, 64} {
		kops, err := ablationShards(shards)
		if err != nil {
			return nil, err
		}
		res.Table.AddRowf("inode-sharding", fmt.Sprintf("%d shards", shards), "creates kops/s (24T)", kops)
		res.V(fmt.Sprintf("shards_%d", shards), kops)
	}

	// --- 2. centralized vs decentralized execution ----------------------------
	for _, sync := range []bool{false, true} {
		name := "async (centralized)"
		if sync {
			name = "sync (decentralized)"
		}
		us, err := ablationExecMode(sync)
		if err != nil {
			return nil, err
		}
		res.Table.AddRowf("execution-mode", name, "4K write us/op", us)
		res.V(fmt.Sprintf("exec_sync_%v", sync), us)
	}

	// --- 3. LRU page cache ------------------------------------------------------
	for _, cache := range []bool{false, true} {
		name := "no cache"
		if cache {
			name = "LRU cache"
		}
		us, err := ablationCache(cache)
		if err != nil {
			return nil, err
		}
		res.Table.AddRowf("page-cache", name, "re-read us/op", us)
		res.V(fmt.Sprintf("cache_%v", cache), us)
	}

	// --- 4. predictive readahead ----------------------------------------------
	for _, ra := range []bool{false, true} {
		name := "no readahead"
		if ra {
			name = "readahead"
		}
		us, err := ablationReadahead(ra)
		if err != nil {
			return nil, err
		}
		res.Table.AddRowf("readahead", name, "cold seq read us/op", us)
		res.V(fmt.Sprintf("readahead_%v", ra), us)
	}
	return res, nil
}

func ablationShards(shards int) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 16, QueueDepth: 4096})
	rt.AddDevice(device.New("dev0", device.NVMe, 1<<30))
	if _, err := rt.MountSpec(fmt.Sprintf(`
mount: fs::/ab
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 32
      shards: "%d"
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`, shards)); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	fs := &workload.LabStorFS{FSName: "labfs", RT: rt, Mount: "fs::/ab"}
	r, err := workload.RunFxMark(fs, workload.FxMarkJob{Threads: 24, FilesPerThread: 150, SharedDir: true})
	if err != nil {
		return 0, err
	}
	return r.OpsPerSec / 1000, nil
}

func ablationExecMode(sync bool) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 1024})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	cfg := LabCfg{Sched: "noop", Driver: "kernel_driver", LogMB: 8, Sync: sync}
	if _, err := MountLab(rt, "fs::/ab", "dev0", cfg); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
	buf := make([]byte, 4096)
	const ops = 300
	start := cli.Clock()
	for i := 0; i < ops; i++ {
		req := core.NewRequest(core.OpWrite)
		req.Path = "f.dat"
		req.Flags = core.FlagCreate
		req.Offset = int64(i%64) * 4096
		req.Size = len(buf)
		req.Data = buf
		if err := cli.Submit("fs::/ab", req); err != nil {
			return 0, err
		}
		if req.Err != nil {
			return 0, req.Err
		}
	}
	return cli.Clock().Sub(start).Micros() / ops, nil
}

func ablationCache(cache bool) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 1024})
	rt.AddDevice(device.New("dev0", device.NVMe, 256<<20))
	cfg := LabCfg{Sched: "noop", Driver: "kernel_driver", LogMB: 8, Cache: cache}
	if _, err := MountLab(rt, "fs::/ab", "dev0", cfg); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1, UID: 1000, GID: 1000})
	buf := make([]byte, 4096)
	w := core.NewRequest(core.OpWrite)
	w.Path = "f.dat"
	w.Flags = core.FlagCreate
	w.Size = len(buf)
	w.Data = buf
	if err := cli.Submit("fs::/ab", w); err != nil {
		return 0, err
	}
	const ops = 300
	start := cli.Clock()
	for i := 0; i < ops; i++ {
		r := core.NewRequest(core.OpRead)
		r.Path = "f.dat"
		r.Size = len(buf)
		r.Data = buf
		if err := cli.Submit("fs::/ab", r); err != nil {
			return 0, err
		}
	}
	return cli.Clock().Sub(start).Micros() / ops, nil
}

func ablationReadahead(ra bool) (float64, error) {
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 1024})
	dev := device.New("dev0", device.NVMe, 256<<20)
	rt.AddDevice(dev)
	vs := []core.Vertex{}
	if ra {
		vs = append(vs, core.Vertex{UUID: "ra", Type: "labstor.readahead",
			Attrs: map[string]string{"trigger": "2", "window": "8"}})
	}
	vs = append(vs, core.Vertex{UUID: "drv", Type: "labstor.kernel_driver",
		Attrs: map[string]string{"device": "dev0"}})
	for i := range vs {
		if i+1 < len(vs) {
			vs[i].Outputs = []string{vs[i+1].UUID}
		}
	}
	if _, err := rt.Mount(core.NewStack("blk::/ab", core.Rules{}, vs)); err != nil {
		return 0, err
	}
	rt.Start()
	defer rt.Shutdown()
	cli := rt.Connect(ipc.Credentials{PID: 1})
	buf := make([]byte, 4096)
	const ops = 200
	start := cli.Clock()
	for i := 0; i < ops; i++ {
		r := core.NewRequest(core.OpBlockRead)
		r.Offset = int64(i) * 4096
		r.Size = len(buf)
		r.Data = buf
		if err := cli.Submit("blk::/ab", r); err != nil {
			return 0, err
		}
	}
	return cli.Clock().Sub(start).Micros() / ops, nil
}
