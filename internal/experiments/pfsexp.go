package experiments

import (
	"fmt"
	"sync"

	"labstor/internal/device"
	"labstor/internal/kernel"
	"labstor/internal/pfs"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

// PFS reproduces Fig. 9(a), "PFS over customized LabStacks": a VPIC
// particle dump followed by a BD-CATS clustering read runs over a striped
// parallel filesystem (OrangeFS-style: dedicated metadata server + data
// servers, 64KB stripes). The metadata server's *local* stack is the
// variable — ext4 versus LabFS-All versus LabFS-Min — across data-server
// device classes (HDD / SSD / NVMe); the MDS node itself has NVMe.
//
// Paper result: a PFS gains 6-12% end-to-end from a customized local stack
// under its metadata server; the benefit grows as the data devices get
// faster (on HDD the metadata win drowns in seek time).
func PFS(ranks, stepsPerRank int, bytesPerStep int64) (*Result, error) {
	if ranks <= 0 {
		ranks = 16
	}
	if stepsPerRank <= 0 {
		stepsPerRank = 4
	}
	if bytesPerStep <= 0 {
		bytesPerStep = 2 << 20
	}

	res := &Result{Name: "Fig 9(a): VPIC + BD-CATS over a striped PFS (varying MDS local stack)"}
	res.Table = newTable("Data devices", "MDS stack", "Meta (vs)", "Data (vs)", "Total (vs)", "Speedup vs ext4")

	for _, class := range []device.Class{device.HDD, device.SATASSD, device.NVMe} {
		var ext4Total, sharedData float64
		for _, mds := range []string{"ext4", "LabFS-All", "LabFS-Min"} {
			metaSecs, dataSecs, err := runPFSTrial(class, mds, ranks, stepsPerRank, bytesPerStep)
			if err != nil {
				return nil, err
			}
			if mds == "ext4" {
				// The data path is identical across MDS configurations by
				// construction; use the baseline's measured data time for
				// every row of this device class so the comparison isolates
				// the metadata stack.
				sharedData = dataSecs
			}
			total := metaSecs + sharedData
			if mds == "ext4" {
				ext4Total = total
			}
			speedup := ext4Total / total
			res.Table.AddRowf(class.String(), mds, metaSecs, sharedData, total, speedup)
			res.V(fmt.Sprintf("total_%s_%s", class, mds), total)
			res.V(fmt.Sprintf("meta_%s_%s", class, mds), metaSecs)
		}
	}
	res.Notes = fmt.Sprintf("%d ranks x %d steps x %d MiB; 64KB stripes over 4 data servers; MDS on NVMe; data time held at the ext4 baseline (identical data path)",
		ranks, stepsPerRank, bytesPerStep>>20)
	return res, nil
}

func runPFSTrial(dataClass device.Class, mds string, ranks, steps int, bytesPerStep int64) (metaSecs, dataSecs float64, err error) {
	// Metadata server local stack.
	var mdsFS workload.FS
	var cleanup func()
	switch mds {
	case "ext4":
		prof, _ := kernel.KFSProfileFor("ext4")
		mdsDev := device.New("mds0", device.NVMe, 1<<30)
		mdsFS = &workload.KernelFS{FSName: "ext4", KFS: kernel.NewKFS(prof, mdsDev, vtime.Default())}
		cleanup = func() {}
	case "LabFS-All", "LabFS-Min":
		rt := runtime.New(runtime.Options{MaxWorkers: 8, QueueDepth: 4096})
		mdsDev := device.New("mds0", device.NVMe, 1<<30)
		rt.AddDevice(mdsDev)
		cfg := LabCfg{Generic: true, Sched: "noop", Driver: "kernel_driver", LogMB: 64}
		if mds == "LabFS-All" {
			cfg.Perms = true
		}
		if _, err := MountLab(rt, "fs::/mds", "mds0", cfg); err != nil {
			return 0, 0, err
		}
		rt.Start()
		mdsFS = &workload.LabStorFS{FSName: mds, RT: rt, Mount: "fs::/mds"}
		cleanup = rt.Shutdown
	default:
		return 0, 0, fmt.Errorf("experiments: unknown MDS stack %q", mds)
	}
	defer cleanup()

	// Data servers.
	const nData = 4
	dataDevs := make([]*device.Device, nData)
	for i := range dataDevs {
		dataDevs[i] = device.New(fmt.Sprintf("ds%d", i), dataClass, 8<<30)
	}
	p := pfs.New(mdsFS, dataDevs, pfs.Options{StripeSize: 64 << 10})

	// VPIC write phase followed by BD-CATS read phase per rank.
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	clients := make([]*pfs.Client, ranks)
	for r := 0; r < ranks; r++ {
		clients[r] = p.NewClient(r)
	}
	payload := make([]byte, bytesPerStep)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := clients[r]
			path := fmt.Sprintf("rank%04d.dat", r)
			for s := 0; s < steps; s++ {
				if err := c.WriteFile(path, payload); err != nil {
					errs[r] = err
					return
				}
			}
			if _, err := c.ReadFile(path, int(bytesPerStep)*steps); err != nil {
				errs[r] = err
				return
			}
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	var metaMax, dataMax vtime.Duration
	for _, c := range clients {
		if m := c.MetaTime(); m > metaMax {
			metaMax = m
		}
		if d := c.DataTime(); d > dataMax {
			dataMax = d
		}
	}
	return metaMax.Seconds(), dataMax.Seconds(), nil
}
