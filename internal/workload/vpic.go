package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// VPICJob models the paper's VPIC particle-simulation I/O pattern: each
// process (rank) produces Particles particles per time step — each particle
// a vector of 8 float32 values — and writes them sequentially to its own
// file, for Steps time steps.
type VPICJob struct {
	Ranks     int
	Particles int // per rank per step
	Steps     int
	Seed      int64
}

// BytesPerStepPerRank returns the per-rank step output size.
func (j VPICJob) BytesPerStepPerRank() int64 { return int64(j.Particles) * 8 * 4 }

// VPICResult summarizes a run.
type VPICResult struct {
	Job      VPICJob
	Bytes    int64
	ElapsedV vtime.Duration
	MBps     float64
}

// RunVPIC executes the particle-dump workload against a filesystem.
func RunVPIC(fs FS, job VPICJob) (*VPICResult, error) {
	if job.Ranks < 1 {
		job.Ranks = 1
	}
	res := &VPICResult{Job: job}
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, job.Ranks)
	elapsed := make([]vtime.Duration, job.Ranks)

	for r := 0; r < job.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			actor := fs.NewActor(r)
			rng := rand.New(rand.NewSource(job.Seed + int64(r)))
			path := fmt.Sprintf("vpic/rank%04d.dat", r)
			if err := actor.Create(path); err != nil {
				errs[r] = err
				return
			}
			stepBytes := job.BytesPerStepPerRank()
			buf := make([]byte, stepBytes)
			start := actor.Now()
			var off int64
			for s := 0; s < job.Steps; s++ {
				// Particle data: 8 float32 per particle (position, momentum,
				// weight...), moderately compressible like real VPIC output.
				for p := 0; p < job.Particles; p++ {
					base := p * 32
					for f := 0; f < 8; f++ {
						v := float32(rng.NormFloat64())
						binary.LittleEndian.PutUint32(buf[base+f*4:], math.Float32bits(v))
					}
				}
				if err := actor.Write(path, off, buf); err != nil {
					errs[r] = err
					return
				}
				off += stepBytes
			}
			if err := actor.Fsync(path); err != nil {
				errs[r] = err
				return
			}
			elapsed[r] = actor.Now().Sub(start)
			mu.Lock()
			res.Bytes += off
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	res.MBps = stats.MBps(res.Bytes, res.ElapsedV.Seconds())
	return res, nil
}

// BDCATSJob models BD-CATS: a parallel clustering job that reads back the
// particle data VPIC produced.
type BDCATSJob struct {
	Ranks     int
	Particles int
	Steps     int
	ReadBlock int // read request size (default 1 MiB)
}

// BDCATSResult summarizes a run.
type BDCATSResult struct {
	Job      BDCATSJob
	Bytes    int64
	ElapsedV vtime.Duration
	MBps     float64
}

// RunBDCATS reads the VPIC output files in parallel.
func RunBDCATS(fs FS, job BDCATSJob) (*BDCATSResult, error) {
	if job.Ranks < 1 {
		job.Ranks = 1
	}
	if job.ReadBlock <= 0 {
		job.ReadBlock = 1 << 20
	}
	res := &BDCATSResult{Job: job}
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, job.Ranks)
	elapsed := make([]vtime.Duration, job.Ranks)

	total := int64(job.Particles) * 32 * int64(job.Steps)
	for r := 0; r < job.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			actor := fs.NewActor(r)
			path := fmt.Sprintf("vpic/rank%04d.dat", r)
			buf := make([]byte, job.ReadBlock)
			start := actor.Now()
			var off, read int64
			for off < total {
				n, err := actor.Read(path, off, buf)
				if err != nil {
					errs[r] = err
					return
				}
				if n == 0 {
					break
				}
				off += int64(n)
				read += int64(n)
			}
			elapsed[r] = actor.Now().Sub(start)
			mu.Lock()
			res.Bytes += read
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	res.MBps = stats.MBps(res.Bytes, res.ElapsedV.Seconds())
	return res, nil
}
