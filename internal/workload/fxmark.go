package workload

import (
	"fmt"
	"sync"

	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// FxMarkJob is an FxMark-style metadata microbenchmark: each thread creates
// FilesPerThread empty files (the MWCM/create-stress pattern the paper uses
// for Fig. 7).
type FxMarkJob struct {
	Threads        int
	FilesPerThread int
	// SharedDir places every file in one directory (maximal lock
	// contention); otherwise each thread gets a private directory.
	SharedDir bool
}

// FxMarkResult summarizes a run.
type FxMarkResult struct {
	Job       FxMarkJob
	Ops       int64
	ElapsedV  vtime.Duration
	OpsPerSec float64
	Latency   *stats.Sample
}

// RunFxMark executes the metadata stress against the filesystem.
func RunFxMark(fs FS, job FxMarkJob) (*FxMarkResult, error) {
	if job.Threads < 1 {
		job.Threads = 1
	}
	res := &FxMarkResult{Job: job, Latency: stats.NewSample(job.Threads * job.FilesPerThread)}
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, job.Threads)
	elapsed := make([]vtime.Duration, job.Threads)

	for th := 0; th < job.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			actor := fs.NewActor(th)
			dir := "fx"
			if !job.SharedDir {
				dir = fmt.Sprintf("fx%d", th)
			}
			start := actor.Now()
			for i := 0; i < job.FilesPerThread; i++ {
				path := fmt.Sprintf("%s/t%d-f%d", dir, th, i)
				opStart := actor.Now()
				if err := actor.Create(path); err != nil {
					errs[th] = err
					return
				}
				lat := actor.Now().Sub(opStart)
				mu.Lock()
				res.Latency.Observe(float64(lat))
				res.Ops++
				mu.Unlock()
			}
			elapsed[th] = actor.Now().Sub(start)
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	res.OpsPerSec = stats.Throughput(res.Ops, res.ElapsedV.Seconds())
	return res, nil
}
