package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// FioJob describes a FIO-style synthetic I/O job: N threads each issuing
// TotalBytes of I/O in BlockSize requests, randomly or sequentially, over a
// private file/region.
type FioJob struct {
	Name       string
	Threads    int
	BlockSize  int
	TotalBytes int64 // per thread
	Random     bool
	ReadRatio  float64 // 0 = all writes, 1 = all reads
	FileSize   int64   // region each thread works over (default TotalBytes)
	Seed       int64
}

// FioResult summarizes one job run.
type FioResult struct {
	Job       FioJob
	Ops       int64
	Bytes     int64
	ElapsedV  vtime.Duration // max over threads
	Latency   *stats.Sample
	IOPS      float64
	Bandwidth float64 // MiB/s
}

// RunFio executes the job against the filesystem and returns virtual-time
// results. Threads run concurrently (real goroutines); all performance
// numbers come from virtual clocks.
func RunFio(fs FS, job FioJob) (*FioResult, error) {
	if job.Threads < 1 {
		job.Threads = 1
	}
	if job.FileSize == 0 {
		job.FileSize = job.TotalBytes
	}
	if job.BlockSize <= 0 {
		job.BlockSize = 4096
	}
	res := &FioResult{Job: job, Latency: stats.NewSample(int(job.TotalBytes / int64(job.BlockSize) * int64(job.Threads)))}
	var wg sync.WaitGroup
	errs := make([]error, job.Threads)
	elapsed := make([]vtime.Duration, job.Threads)
	var mu sync.Mutex

	for th := 0; th < job.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			actor := fs.NewActor(th)
			rng := rand.New(rand.NewSource(job.Seed + int64(th)*7919))
			path := fmt.Sprintf("fio/%s.%d", job.Name, th)
			buf := make([]byte, job.BlockSize)
			for i := range buf {
				buf[i] = byte(rng.Intn(256))
			}
			if err := actor.Create(path); err != nil {
				errs[th] = err
				return
			}
			start := actor.Now()
			nOps := job.TotalBytes / int64(job.BlockSize)
			maxBlocks := job.FileSize / int64(job.BlockSize)
			if maxBlocks < 1 {
				maxBlocks = 1
			}
			var ops, bytes int64
			for i := int64(0); i < nOps; i++ {
				var off int64
				if job.Random {
					off = rng.Int63n(maxBlocks) * int64(job.BlockSize)
				} else {
					off = (i % maxBlocks) * int64(job.BlockSize)
				}
				opStart := actor.Now()
				var err error
				if rng.Float64() < job.ReadRatio {
					_, err = actor.Read(path, off, buf)
				} else {
					err = actor.Write(path, off, buf)
				}
				if err != nil {
					errs[th] = err
					return
				}
				lat := actor.Now().Sub(opStart)
				mu.Lock()
				res.Latency.Observe(float64(lat))
				mu.Unlock()
				ops++
				bytes += int64(job.BlockSize)
			}
			elapsed[th] = actor.Now().Sub(start)
			mu.Lock()
			res.Ops += ops
			res.Bytes += bytes
			mu.Unlock()
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	secs := res.ElapsedV.Seconds()
	res.IOPS = stats.Throughput(res.Ops, secs)
	res.Bandwidth = stats.MBps(res.Bytes, secs)
	return res, nil
}
