package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// FilebenchJob runs one of the four Filebench personalities the paper uses
// (default-configuration op mixes, scaled to simulation size):
//
//	varmail:    mail-server pattern — create/append/fsync/read/delete over
//	            many small files (16KB mean), 16 threads default;
//	webserver:  whole-file reads of small files plus a shared append log;
//	webproxy:   create/write then repeated reads (proxy cache churn);
//	fileserver: create/append/read/delete of larger files (128KB mean).
type FilebenchJob struct {
	Personality string
	Threads     int
	Files       int // file population per thread
	Iterations  int // op-loop iterations per thread
	Seed        int64
}

// FilebenchResult summarizes a run.
type FilebenchResult struct {
	Job       FilebenchJob
	Ops       int64
	Bytes     int64
	ElapsedV  vtime.Duration
	OpsPerSec float64
	MBps      float64
}

// personalities maps a name to its per-iteration op script.
type fbScript struct {
	meanFile   int // bytes
	appendSize int
	readWhole  bool
	script     func(p *fbThread) error
}

type fbThread struct {
	actor   Actor
	rng     *rand.Rand
	dir     string
	files   int
	size    int
	appendN int
	ops     int64
	bytes   int64
	log     string
	cursor  int
}

func (p *fbThread) file(i int) string { return fmt.Sprintf("%s/f%06d", p.dir, i) }

func (p *fbThread) pick() int { return p.rng.Intn(p.files) }

func (p *fbThread) payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(p.rng.Intn(256))
	}
	return b
}

// varmail: delete-create-append-fsync-read cycle (classic mail spool).
func varmailScript(p *fbThread) error {
	i := p.pick()
	path := p.file(i)
	_ = p.actor.Unlink(path) // may not exist
	if err := p.actor.Create(path); err != nil {
		return err
	}
	data := p.payload(p.size)
	if err := p.actor.Write(path, 0, data); err != nil {
		return err
	}
	if err := p.actor.Fsync(path); err != nil {
		return err
	}
	buf := make([]byte, p.size)
	if _, err := p.actor.Read(path, 0, buf); err != nil {
		return err
	}
	// Second append+fsync+read pass, as in the default varmail flowlet.
	if err := p.actor.Write(path, int64(p.size), p.payload(p.appendN)); err != nil {
		return err
	}
	if err := p.actor.Fsync(path); err != nil {
		return err
	}
	p.ops += 7
	p.bytes += int64(p.size*2 + p.appendN)
	return nil
}

// webserver: ten whole-file reads plus one log append.
func webserverScript(p *fbThread) error {
	buf := make([]byte, p.size)
	for i := 0; i < 10; i++ {
		path := p.file(p.pick())
		if _, err := p.actor.Read(path, 0, buf); err != nil {
			return err
		}
		p.ops++
		p.bytes += int64(p.size)
	}
	if err := p.actor.Write(p.log, int64(p.cursor), p.payload(p.appendN)); err != nil {
		return err
	}
	p.cursor += p.appendN
	p.ops++
	p.bytes += int64(p.appendN)
	return nil
}

// webproxy: delete-create-write then five reads.
func webproxyScript(p *fbThread) error {
	i := p.pick()
	path := p.file(i)
	_ = p.actor.Unlink(path)
	if err := p.actor.Create(path); err != nil {
		return err
	}
	if err := p.actor.Write(path, 0, p.payload(p.size)); err != nil {
		return err
	}
	buf := make([]byte, p.size)
	for j := 0; j < 5; j++ {
		if _, err := p.actor.Read(p.file(p.pick()), 0, buf); err != nil {
			return err
		}
		p.ops++
		p.bytes += int64(p.size)
	}
	p.ops += 3
	p.bytes += int64(p.size)
	return nil
}

// fileserver: create-append-read-delete with stat, larger files.
func fileserverScript(p *fbThread) error {
	i := p.pick()
	path := p.file(i)
	if err := p.actor.Create(path); err != nil {
		return err
	}
	if err := p.actor.Write(path, 0, p.payload(p.size)); err != nil {
		return err
	}
	if err := p.actor.Write(path, int64(p.size), p.payload(p.appendN)); err != nil {
		return err
	}
	buf := make([]byte, p.size)
	if _, err := p.actor.Read(path, 0, buf); err != nil {
		return err
	}
	if _, err := p.actor.Stat(path); err != nil {
		return err
	}
	if err := p.actor.Unlink(path); err != nil {
		return err
	}
	p.ops += 6
	p.bytes += int64(2*p.size + p.appendN)
	return nil
}

func scriptFor(name string) (fbScript, error) {
	switch name {
	case "varmail":
		return fbScript{meanFile: 16 << 10, appendSize: 8 << 10, script: varmailScript}, nil
	case "webserver":
		return fbScript{meanFile: 16 << 10, appendSize: 8 << 10, readWhole: true, script: webserverScript}, nil
	case "webproxy":
		return fbScript{meanFile: 16 << 10, appendSize: 8 << 10, script: webproxyScript}, nil
	case "fileserver":
		return fbScript{meanFile: 128 << 10, appendSize: 16 << 10, script: fileserverScript}, nil
	default:
		return fbScript{}, fmt.Errorf("workload: unknown filebench personality %q", name)
	}
}

// RunFilebench executes a personality and returns virtual-time results.
func RunFilebench(fs FS, job FilebenchJob) (*FilebenchResult, error) {
	sc, err := scriptFor(job.Personality)
	if err != nil {
		return nil, err
	}
	if job.Threads < 1 {
		job.Threads = 1
	}
	if job.Files < 1 {
		job.Files = 64
	}
	if job.Iterations < 1 {
		job.Iterations = 10
	}
	res := &FilebenchResult{Job: job}
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, job.Threads)
	elapsed := make([]vtime.Duration, job.Threads)

	for th := 0; th < job.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			actor := fs.NewActor(th)
			p := &fbThread{
				actor:   actor,
				rng:     rand.New(rand.NewSource(job.Seed + int64(th)*104729)),
				dir:     fmt.Sprintf("fb/%s%d", job.Personality, th),
				files:   job.Files,
				size:    sc.meanFile,
				appendN: sc.appendSize,
				log:     fmt.Sprintf("fb/%s%d/weblog", job.Personality, th),
			}
			// Preallocate the file population.
			for i := 0; i < job.Files; i++ {
				if err := p.actor.Write(p.file(i), 0, p.payload(p.size)); err != nil {
					errs[th] = err
					return
				}
			}
			if err := p.actor.Create(p.log); err != nil {
				errs[th] = err
				return
			}
			start := actor.Now()
			for it := 0; it < job.Iterations; it++ {
				if err := sc.script(p); err != nil {
					errs[th] = err
					return
				}
			}
			elapsed[th] = actor.Now().Sub(start)
			mu.Lock()
			res.Ops += p.ops
			res.Bytes += p.bytes
			mu.Unlock()
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	res.OpsPerSec = stats.Throughput(res.Ops, res.ElapsedV.Seconds())
	res.MBps = stats.MBps(res.Bytes, res.ElapsedV.Seconds())
	return res, nil
}
