// Package workload implements the workload generators used by the paper's
// evaluation — FIO-style synthetic I/O, FxMark-style metadata stress,
// Filebench personalities (varmail, webserver, webproxy, fileserver), the
// VPIC particle-dump / BD-CATS read pair, and the LABIOS label-store op
// stream — plus the adapters that let one workload drive either a
// simulated kernel filesystem or a LabStor stack through the client
// library.
package workload

import (
	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/kernel"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
)

// Actor is one workload thread's handle onto a filesystem: every call
// advances the actor's virtual clock by the modeled cost of the operation.
type Actor interface {
	Create(path string) error
	Mkdir(path string) error
	Write(path string, off int64, data []byte) error
	Read(path string, off int64, buf []byte) (int, error)
	Unlink(path string) error
	Rename(from, to string) error
	Stat(path string) (int64, error)
	List(dir string) ([]string, error)
	Fsync(path string) error
	// Now returns the actor's current virtual time.
	Now() vtime.Time
}

// FS creates per-thread actors over one filesystem instance.
type FS interface {
	Name() string
	NewActor(core int) Actor
}

// --- kernel filesystem adapter -------------------------------------------------

// KernelFS adapts a simulated kernel filesystem to the workload interface.
type KernelFS struct {
	FSName string
	KFS    *kernel.KFS
}

// Name returns the filesystem name.
func (k *KernelFS) Name() string { return k.FSName }

// NewActor returns a thread handle.
func (k *KernelFS) NewActor(coreID int) Actor {
	return &kfsActor{fs: k.KFS, t: kernel.NewThread(coreID)}
}

type kfsActor struct {
	fs *kernel.KFS
	t  *kernel.Thread
}

func (a *kfsActor) Create(path string) error { return a.fs.Create(a.t, path) }
func (a *kfsActor) Mkdir(path string) error  { return a.fs.Mkdir(a.t, path) }
func (a *kfsActor) Write(path string, off int64, data []byte) error {
	return a.fs.Write(a.t, path, off, data)
}
func (a *kfsActor) Read(path string, off int64, buf []byte) (int, error) {
	return a.fs.Read(a.t, path, off, buf)
}
func (a *kfsActor) Unlink(path string) error        { return a.fs.Unlink(a.t, path) }
func (a *kfsActor) Rename(from, to string) error    { return a.fs.Rename(a.t, from, to) }
func (a *kfsActor) Stat(path string) (int64, error) { return a.fs.Stat(a.t, path) }
func (a *kfsActor) List(dir string) ([]string, error) {
	return a.fs.List(a.t, dir), nil
}
func (a *kfsActor) Fsync(path string) error { return a.fs.Fsync(a.t, path) }
func (a *kfsActor) Now() vtime.Time         { return a.t.Now() }

// --- LabStor stack adapter -------------------------------------------------------

// LabStorFS adapts a mounted LabStack (POSIX interface) to the workload
// interface. Each actor is a separate LabStor client with its own queue
// pair and virtual clock.
type LabStorFS struct {
	FSName string
	RT     *runtime.Runtime
	Mount  string
	UID    int
}

// Name returns the configured display name.
func (l *LabStorFS) Name() string { return l.FSName }

// NewActor connects a fresh client.
func (l *LabStorFS) NewActor(coreID int) Actor {
	uid := l.UID
	if uid == 0 {
		uid = 1000
	}
	cli := l.RT.Connect(ipc.Credentials{PID: 10000 + coreID, UID: uid, GID: uid})
	cli.OriginCore = coreID
	return &labActor{cli: cli, mount: l.Mount}
}

type labActor struct {
	cli   *runtime.Client
	mount string
}

func (a *labActor) do(op core.Op, build func(*core.Request)) (*core.Request, error) {
	req, err := a.cli.Call(a.mount, op, build)
	if err != nil {
		return req, err
	}
	return req, req.Err
}

func (a *labActor) Create(path string) error {
	_, err := a.do(core.OpCreate, func(r *core.Request) { r.Path = path; r.Mode = 0644 })
	return err
}

func (a *labActor) Mkdir(path string) error {
	_, err := a.do(core.OpMkdir, func(r *core.Request) { r.Path = path; r.Mode = 0755 })
	return err
}

func (a *labActor) Write(path string, off int64, data []byte) error {
	_, err := a.do(core.OpWrite, func(r *core.Request) {
		r.Path = path
		r.Flags = core.FlagCreate
		r.Offset = off
		r.Size = len(data)
		r.Data = data
	})
	return err
}

func (a *labActor) Read(path string, off int64, buf []byte) (int, error) {
	req, err := a.do(core.OpRead, func(r *core.Request) {
		r.Path = path
		r.Offset = off
		r.Size = len(buf)
		r.Data = buf
	})
	if err != nil {
		return 0, err
	}
	return int(req.Result), nil
}

func (a *labActor) Unlink(path string) error {
	_, err := a.do(core.OpUnlink, func(r *core.Request) { r.Path = path })
	return err
}

func (a *labActor) Rename(from, to string) error {
	_, err := a.do(core.OpRename, func(r *core.Request) { r.Path = from; r.Path2 = to })
	return err
}

func (a *labActor) Stat(path string) (int64, error) {
	req, err := a.do(core.OpStat, func(r *core.Request) { r.Path = path })
	if err != nil {
		return 0, err
	}
	return req.Result, nil
}

func (a *labActor) List(dir string) ([]string, error) {
	req, err := a.do(core.OpReaddir, func(r *core.Request) { r.Path = dir })
	if err != nil {
		return nil, err
	}
	return req.Names, nil
}

func (a *labActor) Fsync(path string) error {
	_, err := a.do(core.OpFsync, func(r *core.Request) { r.Path = path })
	return err
}

func (a *labActor) Now() vtime.Time { return a.cli.Clock() }
