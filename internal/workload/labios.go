package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/runtime"
	"labstor/internal/stats"
	"labstor/internal/vtime"
)

// KVActor is a per-thread handle onto a key-value store.
type KVActor interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Del(key string) error
	Now() vtime.Time
}

// KVStore creates per-thread KV actors.
type KVStore interface {
	Name() string
	NewKVActor(core int) KVActor
}

// LabStorKVS adapts a mounted LabKVS stack to the KV workload interface.
type LabStorKVS struct {
	KVName string
	RT     *runtime.Runtime
	Mount  string
}

// Name returns the configured display name.
func (l *LabStorKVS) Name() string { return l.KVName }

// NewKVActor connects a fresh client.
func (l *LabStorKVS) NewKVActor(coreID int) KVActor {
	cli := l.RT.Connect(ipc.Credentials{PID: 20000 + coreID, UID: 1000, GID: 1000})
	cli.OriginCore = coreID
	return &labKVActor{cli: cli, mount: l.Mount}
}

type labKVActor struct {
	cli   *runtime.Client
	mount string
}

func (a *labKVActor) Put(key string, value []byte) error {
	req, err := a.cli.Call(a.mount, core.OpPut, func(r *core.Request) {
		r.Key = key
		r.Size = len(value)
		r.Data = value
	})
	if err != nil {
		return err
	}
	return req.Err
}

func (a *labKVActor) Get(key string) ([]byte, error) {
	req, err := a.cli.Call(a.mount, core.OpGet, func(r *core.Request) { r.Key = key })
	if err != nil {
		return nil, err
	}
	if req.Err != nil {
		return nil, req.Err
	}
	return req.Value, nil
}

func (a *labKVActor) Del(key string) error {
	req, err := a.cli.Call(a.mount, core.OpDel, func(r *core.Request) { r.Key = key })
	if err != nil {
		return err
	}
	return req.Err
}

func (a *labKVActor) Now() vtime.Time { return a.cli.Clock() }

// fileKVAdapter implements the LABIOS "file translation" baseline: each
// label becomes a UNIX file, and each put triggers the open-seek-write-close
// sequence of POSIX calls the paper describes as the common pattern of
// distributed NoSQL and KV stores built over filesystems.
type fileKVAdapter struct {
	fs FS
}

// FileKV wraps a filesystem as a KV store via file translation.
func FileKV(fs FS) KVStore { return &fileKVAdapter{fs: fs} }

func (f *fileKVAdapter) Name() string { return f.fs.Name() + "-filekv" }

func (f *fileKVAdapter) NewKVActor(coreID int) KVActor {
	return &fileKVActor{actor: f.fs.NewActor(coreID)}
}

type fileKVActor struct {
	actor Actor
}

func (a *fileKVActor) path(key string) string { return "labels/" + key }

// Put = open(O_CREAT) + seek/ftruncate + write + close: four calls through
// the whole stack instead of LabKVS's one.
func (a *fileKVActor) Put(key string, value []byte) error {
	p := a.path(key)
	if err := a.actor.Create(p); err != nil { // fopen
		return err
	}
	if _, err := a.actor.Stat(p); err != nil { // fseek/ftruncate
		return err
	}
	if err := a.actor.Write(p, 0, value); err != nil { // fwrite
		return err
	}
	return a.actor.Fsync(p) // fclose (flush)
}

func (a *fileKVActor) Get(key string) ([]byte, error) {
	p := a.path(key)
	size, err := a.actor.Stat(p) // fopen+fseek
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := a.actor.Read(p, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (a *fileKVActor) Del(key string) error { return a.actor.Unlink(a.path(key)) }

func (a *fileKVActor) Now() vtime.Time { return a.actor.Now() }

// LabiosJob models the LABIOS worker I/O: a stream of label store/retrieve
// operations of LabelSize bytes each.
type LabiosJob struct {
	Threads   int
	Labels    int // per thread
	LabelSize int
	ReadBack  bool // also retrieve each label
	Seed      int64
}

// LabiosResult summarizes a run.
type LabiosResult struct {
	Job       LabiosJob
	Ops       int64
	Bytes     int64
	ElapsedV  vtime.Duration
	OpsPerSec float64
	MBps      float64
}

// RunLabios executes the label workload against a KV store (native or
// file-translated).
func RunLabios(kv KVStore, job LabiosJob) (*LabiosResult, error) {
	if job.Threads < 1 {
		job.Threads = 1
	}
	if job.LabelSize <= 0 {
		job.LabelSize = 8 << 10
	}
	res := &LabiosResult{Job: job}
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, job.Threads)
	elapsed := make([]vtime.Duration, job.Threads)

	for th := 0; th < job.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			actor := kv.NewKVActor(th)
			rng := rand.New(rand.NewSource(job.Seed + int64(th)))
			value := make([]byte, job.LabelSize)
			for i := range value {
				value[i] = byte(rng.Intn(256))
			}
			start := actor.Now()
			var ops, bytes int64
			for i := 0; i < job.Labels; i++ {
				key := fmt.Sprintf("label-%d-%06d", th, i)
				if err := actor.Put(key, value); err != nil {
					errs[th] = err
					return
				}
				ops++
				bytes += int64(job.LabelSize)
				if job.ReadBack {
					got, err := actor.Get(key)
					if err != nil {
						errs[th] = err
						return
					}
					ops++
					bytes += int64(len(got))
				}
			}
			elapsed[th] = actor.Now().Sub(start)
			mu.Lock()
			res.Ops += ops
			res.Bytes += bytes
			mu.Unlock()
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, e := range elapsed {
		if e > res.ElapsedV {
			res.ElapsedV = e
		}
	}
	res.OpsPerSec = stats.Throughput(res.Ops, res.ElapsedV.Seconds())
	res.MBps = stats.MBps(res.Bytes, res.ElapsedV.Seconds())
	return res, nil
}
