package workload_test

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/ipc"
	"labstor/internal/kernel"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/runtime"
	"labstor/internal/vtime"
	"labstor/internal/workload"
)

func kernelFS(t *testing.T, name string) workload.FS {
	t.Helper()
	prof, err := kernel.KFSProfileFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return &workload.KernelFS{FSName: name, KFS: kernel.NewKFS(prof, device.New("d", device.NVMe, 2<<30), vtime.Default())}
}

func labFS(t *testing.T) (workload.FS, func()) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 4, QueueDepth: 2048})
	rt.AddDevice(device.New("dev0", device.NVMe, 2<<30))
	if _, err := rt.MountSpec(`
mount: fs::/w
mods:
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: dev0
      log_mb: 16
  - uuid: sched
    type: labstor.noop
    attrs:
      device: dev0
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	return &workload.LabStorFS{FSName: "labfs", RT: rt, Mount: "fs::/w"}, rt.Shutdown
}

func TestFioOnKernelFS(t *testing.T) {
	res, err := workload.RunFio(kernelFS(t, "ext4"), workload.FioJob{
		Name: "t", Threads: 2, BlockSize: 4096, TotalBytes: 256 << 10, Random: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := int64(2 * (256 << 10) / 4096)
	if res.Ops != wantOps {
		t.Fatalf("ops %d want %d", res.Ops, wantOps)
	}
	if res.IOPS <= 0 || res.ElapsedV <= 0 {
		t.Fatal("no throughput computed")
	}
	if res.Latency.Count() != int(wantOps) {
		t.Fatal("latency samples")
	}
}

func TestFioReadWriteMix(t *testing.T) {
	res, err := workload.RunFio(kernelFS(t, "xfs"), workload.FioJob{
		Name: "mix", Threads: 1, BlockSize: 8192, TotalBytes: 128 << 10, ReadRatio: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 {
		t.Fatal("bandwidth")
	}
}

func TestFioOnLabStor(t *testing.T) {
	fs, closefn := labFS(t)
	defer closefn()
	res, err := workload.RunFio(fs, workload.FioJob{
		Name: "lab", Threads: 2, BlockSize: 4096, TotalBytes: 128 << 10, Random: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 64 {
		t.Fatalf("ops %d", res.Ops)
	}
}

func TestFxMarkSharedVsPrivate(t *testing.T) {
	shared, err := workload.RunFxMark(kernelFS(t, "ext4"), workload.FxMarkJob{Threads: 4, FilesPerThread: 50, SharedDir: true})
	if err != nil {
		t.Fatal(err)
	}
	private, err := workload.RunFxMark(kernelFS(t, "ext4"), workload.FxMarkJob{Threads: 4, FilesPerThread: 50})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Ops != 200 || private.Ops != 200 {
		t.Fatal("op counts")
	}
	if shared.OpsPerSec <= 0 || private.OpsPerSec <= 0 {
		t.Fatal("rates")
	}
}

func TestFilebenchPersonalities(t *testing.T) {
	for _, p := range []string{"varmail", "webserver", "webproxy", "fileserver"} {
		res, err := workload.RunFilebench(kernelFS(t, "f2fs"), workload.FilebenchJob{
			Personality: p, Threads: 2, Files: 8, Iterations: 2, Seed: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Ops <= 0 || res.OpsPerSec <= 0 {
			t.Fatalf("%s: no ops", p)
		}
	}
	if _, err := workload.RunFilebench(kernelFS(t, "ext4"), workload.FilebenchJob{Personality: "nope"}); err == nil {
		t.Fatal("unknown personality accepted")
	}
}

func TestVPICAndBDCATS(t *testing.T) {
	fs := kernelFS(t, "ext4")
	vres, err := workload.RunVPIC(fs, workload.VPICJob{Ranks: 2, Particles: 1000, Steps: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(2 * 2 * 1000 * 32)
	if vres.Bytes != wantBytes {
		t.Fatalf("vpic bytes %d want %d", vres.Bytes, wantBytes)
	}
	rres, err := workload.RunBDCATS(fs, workload.BDCATSJob{Ranks: 2, Particles: 1000, Steps: 2, ReadBlock: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Bytes != wantBytes {
		t.Fatalf("bdcats bytes %d want %d", rres.Bytes, wantBytes)
	}
}

func TestLabiosFileTranslationVsNative(t *testing.T) {
	// File translation over a kernel FS.
	fileKV := workload.FileKV(kernelFS(t, "ext4"))
	fres, err := workload.RunLabios(fileKV, workload.LabiosJob{Threads: 1, Labels: 30, LabelSize: 8 << 10, ReadBack: true})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Ops != 60 {
		t.Fatalf("ops %d", fres.Ops)
	}

	// Native LabKVS.
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 1024})
	rt.AddDevice(device.New("dev0", device.NVMe, 1<<30))
	if _, err := rt.MountSpec(`
mount: kv::/l
mods:
  - uuid: kvs
    type: labstor.labkvs
    attrs:
      device: dev0
      log_mb: 4
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: dev0
`); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown()
	kv := &workload.LabStorKVS{KVName: "labkvs", RT: rt, Mount: "kv::/l"}
	nres, err := workload.RunLabios(kv, workload.LabiosJob{Threads: 1, Labels: 30, LabelSize: 8 << 10, ReadBack: true})
	if err != nil {
		t.Fatal(err)
	}
	if nres.OpsPerSec <= fres.OpsPerSec {
		t.Fatalf("LabKVS (%0.f op/s) must beat file translation (%0.f op/s)", nres.OpsPerSec, fres.OpsPerSec)
	}
	// Values round-trip through the adapter.
	actor := kv.NewKVActor(9)
	if err := actor.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := actor.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("kv adapter: %q %v", got, err)
	}
	if err := actor.Del("k"); err != nil {
		t.Fatal(err)
	}
}

func TestLabStorActorSurface(t *testing.T) {
	fs, closefn := labFS(t)
	defer closefn()
	a := fs.NewActor(0)
	if err := a.Mkdir("d"); err != nil {
		t.Fatal(err)
	}
	if err := a.Create("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := a.Write("d/f", 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := a.Read("d/f", 0, buf); err != nil || n != 4 {
		t.Fatalf("read %d %v", n, err)
	}
	if sz, err := a.Stat("d/f"); err != nil || sz != 4 {
		t.Fatalf("stat %d %v", sz, err)
	}
	if err := a.Rename("d/f", "d/g"); err != nil {
		t.Fatal(err)
	}
	ls, err := a.List("d")
	if err != nil || len(ls) != 1 || ls[0] != "g" {
		t.Fatalf("list %v %v", ls, err)
	}
	if err := a.Fsync("d/g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlink("d/g"); err != nil {
		t.Fatal(err)
	}
	if a.Now() <= 0 {
		t.Fatal("actor clock")
	}
	_ = core.OpNop
	_ = ipc.Credentials{}
}
