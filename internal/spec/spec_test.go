package spec

import (
	"strings"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
)

func TestParseScalarsAndMaps(t *testing.T) {
	n, err := Parse(`
name: hello
count: 42
big: 9000000000
flag: true
quoted: "a: b # not a comment"
empty:
`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Str("name", "") != "hello" {
		t.Fatal("name")
	}
	if n.Int("count", 0) != 42 {
		t.Fatal("count")
	}
	if n.Int64("big", 0) != 9000000000 {
		t.Fatal("big")
	}
	if !n.Bool("flag", false) {
		t.Fatal("flag")
	}
	if n.Str("quoted", "") != "a: b # not a comment" {
		t.Fatal("quoted:", n.Str("quoted", ""))
	}
	if n.Str("empty", "sentinel") != "" {
		t.Fatal("empty value")
	}
	if n.Str("missing", "def") != "def" || n.Int("missing", 7) != 7 || !n.Bool("missing", true) {
		t.Fatal("defaults")
	}
}

func TestParseNesting(t *testing.T) {
	n, err := Parse(`
outer:
  inner:
    deep: value
  sibling: x
`)
	if err != nil {
		t.Fatal(err)
	}
	inner := n.Get("outer").Get("inner")
	if inner.Str("deep", "") != "value" {
		t.Fatal("deep nesting")
	}
	if n.Get("outer").Str("sibling", "") != "x" {
		t.Fatal("sibling after dedent")
	}
	if keys := n.Get("outer").Keys(); len(keys) != 2 || keys[0] != "inner" {
		t.Fatalf("key order %v", keys)
	}
}

func TestParseLists(t *testing.T) {
	n, err := Parse(`
block:
  - one
  - two
flow: [a, b, "c, d"]
maps:
  - name: first
    value: 1
  - name: second
    value: 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Strings("block"); len(got) != 2 || got[1] != "two" {
		t.Fatalf("block list %v", got)
	}
	if got := n.Strings("flow"); len(got) != 3 || got[2] != "c, d" {
		t.Fatalf("flow list %v", got)
	}
	maps := n.Get("maps").List()
	if len(maps) != 2 || maps[1].Str("name", "") != "second" || maps[1].Int("value", 0) != 2 {
		t.Fatal("list of maps")
	}
}

func TestParseComments(t *testing.T) {
	n, err := Parse(`
# full-line comment
key: value # trailing comment
url: "http://x#y"
`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Str("key", "") != "value" {
		t.Fatalf("trailing comment not stripped: %q", n.Str("key", ""))
	}
	if n.Str("url", "") != "http://x#y" {
		t.Fatal("hash inside quotes stripped")
	}
}

func TestParseMountWithDoubleColon(t *testing.T) {
	n, err := Parse("mount: fs::/data/sub\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Str("mount", "") != "fs::/data/sub" {
		t.Fatalf("mount %q", n.Str("mount", ""))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("\tkey: value\n"); err == nil {
		t.Fatal("tab indentation accepted")
	}
	if _, err := Parse("key: [unterminated\n"); err == nil {
		t.Fatal("unterminated flow accepted")
	}
	if _, err := Parse("just a bare scalar line\n"); err == nil {
		t.Fatal("bare scalar at top level accepted")
	}
	var pe *ParseError
	_, err := Parse("\tx: 1\n")
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error without line info: %v", err)
	}
	_ = pe
}

func TestParseEmptyDocument(t *testing.T) {
	n, err := Parse("\n# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsMap() || len(n.Keys()) != 0 {
		t.Fatal("empty doc must be an empty map")
	}
}

func TestStringMapAndAccessors(t *testing.T) {
	n, _ := Parse(`
attrs:
  device: nvme0
  log_mb: "16"
single: alone
`)
	m := n.StringMap("attrs")
	if m["device"] != "nvme0" || m["log_mb"] != "16" {
		t.Fatalf("string map %v", m)
	}
	if got := n.Strings("single"); len(got) != 1 || got[0] != "alone" {
		t.Fatal("scalar-as-list")
	}
	if n.StringMap("missing") != nil {
		t.Fatal("missing map")
	}
}

const sampleStack = `
mount: fs::/data
rules:
  exec_mode: sync
  priority: 3
  max_depth: 8
  owners: [1000, 1001]
mods:
  - uuid: genfs
    type: labstor.genericfs
  - uuid: fs
    type: labstor.labfs
    attrs:
      device: nvme0
      log_mb: "8"
    outputs: [drv]
  - uuid: drv
    type: labstor.kernel_driver
    attrs:
      device: nvme0
`

func TestParseStack(t *testing.T) {
	ss, err := ParseStack(sampleStack)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Mount != "fs::/data" {
		t.Fatal("mount")
	}
	if ss.Rules.ExecMode != core.ExecSync || ss.Rules.Priority != 3 || ss.Rules.MaxDepth != 8 {
		t.Fatalf("rules %+v", ss.Rules)
	}
	if len(ss.Rules.Owners) != 2 || ss.Rules.Owners[1] != 1001 {
		t.Fatalf("owners %v", ss.Rules.Owners)
	}
	if len(ss.Vertices) != 3 {
		t.Fatal("vertices")
	}
	// Implicit chain wiring: genfs got no outputs -> next vertex.
	if ss.Vertices[0].Outputs[0] != "fs" {
		t.Fatalf("implicit wiring %v", ss.Vertices[0].Outputs)
	}
	// Explicit outputs preserved.
	if ss.Vertices[1].Outputs[0] != "drv" {
		t.Fatal("explicit outputs")
	}
	if ss.Vertices[1].Attrs["log_mb"] != "8" {
		t.Fatal("attrs")
	}
	st := ss.Stack()
	if st.Entry() != "genfs" {
		t.Fatal("stack materialization")
	}
}

func TestParseStackErrors(t *testing.T) {
	cases := []string{
		"mods:\n  - uuid: a\n    type: t\n", // no mount
		"mount: m\n",                        // no mods
		"mount: m\nmods:\n  - type: t\n",    // missing uuid
		"mount: m\nmods:\n  - uuid: a\n",    // missing type
		"mount: m\nmods:\n  - uuid: a\n    type: t\n  - uuid: a\n    type: t\n",      // dup uuid
		"mount: m\nrules:\n  exec_mode: sideways\nmods:\n  - uuid: a\n    type: t\n", // bad exec mode
	}
	for i, src := range cases {
		if _, err := ParseStack(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

const sampleRuntime = `
runtime:
  workers: 12
  queue_depth: 2048
  upgrade_poll_ms: 7
orchestrator:
  policy: dynamic
  rebalance_ms: 20
devices:
  - name: nvme0
    class: nvme
    capacity_gb: 2
  - name: disk0
    class: hdd
    capacity_mb: 512
repos:
  - mods/core
  - mods/extra
`

func TestParseRuntimeConfig(t *testing.T) {
	cfg, err := ParseRuntimeConfig(sampleRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 12 || cfg.QueueDepth != 2048 || cfg.UpgradePollMs != 7 {
		t.Fatalf("runtime section %+v", cfg)
	}
	if cfg.Orchestrator.Policy != "dynamic" || cfg.Orchestrator.RebalanceMs != 20 {
		t.Fatalf("orchestrator %+v", cfg.Orchestrator)
	}
	if len(cfg.Devices) != 2 {
		t.Fatal("devices")
	}
	if cfg.Devices[0].Class != device.NVMe || cfg.Devices[0].Capacity != 2<<30 {
		t.Fatalf("device 0 %+v", cfg.Devices[0])
	}
	if cfg.Devices[1].Class != device.HDD || cfg.Devices[1].Capacity != 512<<20 {
		t.Fatalf("device 1 %+v", cfg.Devices[1])
	}
	if len(cfg.Repos) != 2 {
		t.Fatal("repos")
	}
}

func TestParseRuntimeConfigDefaults(t *testing.T) {
	cfg, err := ParseRuntimeConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 || cfg.QueueDepth != 1024 {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestParseObserveAndSLO(t *testing.T) {
	cfg, err := ParseRuntimeConfig(`
runtime:
  workers: 2
observe:
  addr: 127.0.0.1:0
  pprof: false
  flight_ring: 128
  slo_check_ms: 50
slo:
  - stack: fs::/probe
    p99_us: 500
    max_err_rate: 0.01
  - stack: kv::/b
    max_err_rate: 0.05
`)
	if err != nil {
		t.Fatal(err)
	}
	ob := cfg.Observe
	if ob.Addr != "127.0.0.1:0" || ob.Pprof || ob.FlightRing != 128 || ob.SLOCheckMs != 50 {
		t.Fatalf("observe %+v", ob)
	}
	if len(cfg.SLOs) != 2 {
		t.Fatalf("slos %+v", cfg.SLOs)
	}
	if s := cfg.SLOs[0]; s.Stack != "fs::/probe" || s.P99Us != 500 || s.MaxErrRate != 0.01 {
		t.Fatalf("slo 0 %+v", s)
	}
	if s := cfg.SLOs[1]; s.Stack != "kv::/b" || s.P99Us != 0 || s.MaxErrRate != 0.05 {
		t.Fatalf("slo 1 %+v", s)
	}
}

func TestParseObserveTailAndBundle(t *testing.T) {
	cfg, err := ParseRuntimeConfig(`
observe:
  addr: 127.0.0.1:0
  tail: 128
  tail_quantile: 0.995
  bundle_dir: /tmp/labstor-bundles
  bundle_profile_ms: 100
  bundle_cooldown_ms: 30000
  bundle_max: 4
`)
	if err != nil {
		t.Fatal(err)
	}
	ob := cfg.Observe
	if ob.Tail != 128 || ob.TailQuantile != 0.995 {
		t.Fatalf("tail knobs %+v", ob)
	}
	if ob.BundleDir != "/tmp/labstor-bundles" || ob.BundleProfileMs != 100 ||
		ob.BundleCooldownMs != 30000 || ob.BundleMax != 4 {
		t.Fatalf("bundle knobs %+v", ob)
	}

	// Absent keys stay zero: downstream layers own the defaults, so a bare
	// config keeps tail retention at DefaultTailRing and capture disarmed.
	cfg, err = ParseRuntimeConfig("observe:\n  addr: :0\n")
	if err != nil {
		t.Fatal(err)
	}
	ob = cfg.Observe
	if ob.Tail != 0 || ob.TailQuantile != 0 || ob.BundleDir != "" ||
		ob.BundleProfileMs != 0 || ob.BundleCooldownMs != 0 || ob.BundleMax != 0 {
		t.Fatalf("unset tail/bundle knobs not zero: %+v", ob)
	}
}

func TestParseObserveDefaults(t *testing.T) {
	cfg, err := ParseRuntimeConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Observe.Addr != "" || !cfg.Observe.Pprof {
		t.Fatalf("observe defaults %+v", cfg.Observe)
	}
	if len(cfg.SLOs) != 0 {
		t.Fatalf("slo defaults %+v", cfg.SLOs)
	}
}

func TestParseSLOErrors(t *testing.T) {
	if _, err := ParseRuntimeConfig("slo:\n  - p99_us: 10\n"); err == nil {
		t.Fatal("slo entry without a stack accepted")
	}
	if _, err := ParseRuntimeConfig("slo:\n  - stack: fs::/a\n"); err == nil {
		t.Fatal("slo entry without limits accepted")
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]device.Class{
		"hdd": device.HDD, "ssd": device.SATASSD, "nvme": device.NVMe,
		"pmem": device.PMEM, "NVMe": device.NVMe,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("floppy"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestParseNestedListDash(t *testing.T) {
	n, err := Parse(`
items:
  -
    name: bare-dash
  - name: inline
`)
	if err != nil {
		t.Fatal(err)
	}
	items := n.Get("items").List()
	if len(items) != 2 {
		t.Fatalf("items %d", len(items))
	}
	if items[0].Str("name", "") != "bare-dash" || items[1].Str("name", "") != "inline" {
		t.Fatalf("items %v %v", items[0], items[1])
	}
}

func TestParseEmptyFlowList(t *testing.T) {
	n, err := Parse("xs: []\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Strings("xs"); len(got) != 0 {
		t.Fatalf("empty flow list %v", got)
	}
	if !n.Get("xs").IsList() {
		t.Fatal("not a list")
	}
}

func TestNodeAccessorsOnWrongKinds(t *testing.T) {
	n, _ := Parse("lst: [a]\nmp:\n  k: v\n")
	if n.Str("lst", "d") != "d" {
		t.Fatal("Str on list must default")
	}
	if n.Int("mp", 3) != 3 {
		t.Fatal("Int on map must default")
	}
	if n.Get("mp").IsScalar() || !n.Get("mp").IsMap() {
		t.Fatal("kind predicates")
	}
	var nilNode *Node
	if nilNode.Scalar() != "" || nilNode.List() != nil || nilNode.Keys() != nil || nilNode.Get("x") != nil {
		t.Fatal("nil node accessors")
	}
	if nilNode.IsScalar() || nilNode.IsList() || nilNode.IsMap() {
		t.Fatal("nil node kinds")
	}
}

func TestParseSingleQuotes(t *testing.T) {
	n, err := Parse("k: 'single # quoted'\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Str("k", "") != "single # quoted" {
		t.Fatalf("%q", n.Str("k", ""))
	}
}

func TestParseNUMAAndLocality(t *testing.T) {
	cfg, err := ParseRuntimeConfig(`
orchestrator:
  policy: dynamic
  locality_weight: 2.5
numa:
  nodes: 4
  cross_ns_per_byte: 0.125
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Orchestrator.LocalityWeight != 2.5 {
		t.Fatalf("locality_weight %v", cfg.Orchestrator.LocalityWeight)
	}
	if cfg.NUMA.Nodes != 4 || cfg.NUMA.CrossNsPerByte != 0.125 {
		t.Fatalf("numa %+v", cfg.NUMA)
	}
	// Omitted sections stay off: single-node, no bias.
	cfg, err = ParseRuntimeConfig("runtime:\n  workers: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NUMA.Nodes != 0 || cfg.Orchestrator.LocalityWeight != 0 {
		t.Fatalf("defaults %+v / %v", cfg.NUMA, cfg.Orchestrator.LocalityWeight)
	}
	if _, err := ParseRuntimeConfig("numa:\n  nodes: -2\n"); err == nil {
		t.Fatal("negative numa.nodes accepted")
	}
}

func TestParseServeBlock(t *testing.T) {
	cfg, err := ParseRuntimeConfig(`
serve:
  addr: 127.0.0.1:7600
  batch: 48
  max_payload_mb: 8
  demand_poll_ms: 25
  default:
    inflight: 128
  tenants:
    - name: gold
      rate_per_sec: 50000
      burst: 1000
      inflight: 512
    - name: bronze
      rate_per_sec: 500
`)
	if err != nil {
		t.Fatal(err)
	}
	sv := cfg.Serve
	if sv.Addr != "127.0.0.1:7600" || sv.Batch != 48 || sv.MaxPayloadMB != 8 || sv.DemandPollMs != 25 {
		t.Fatalf("serve %+v", sv)
	}
	if sv.Default.Inflight != 128 {
		t.Fatalf("default policy %+v", sv.Default)
	}
	if len(sv.Tenants) != 2 {
		t.Fatalf("tenants %+v", sv.Tenants)
	}
	if g := sv.Tenants[0]; g.Name != "gold" || g.RatePerSec != 50000 || g.Burst != 1000 || g.Inflight != 512 {
		t.Fatalf("gold %+v", g)
	}
	if b := sv.Tenants[1]; b.Name != "bronze" || b.RatePerSec != 500 || b.Burst != 0 {
		t.Fatalf("bronze %+v", b)
	}

	// Router mode: shards list + replicas.
	cfg, err = ParseRuntimeConfig(`
serve:
  addr: 127.0.0.1:7600
  replicas: 32
  shards: [127.0.0.1:7601, 127.0.0.1:7602]
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Serve.Shards) != 2 || cfg.Serve.Replicas != 32 {
		t.Fatalf("router serve %+v", cfg.Serve)
	}

	// Omitted section leaves serving disabled.
	cfg, err = ParseRuntimeConfig("runtime:\n  workers: 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Serve.Addr != "" || len(cfg.Serve.Tenants) != 0 {
		t.Fatalf("serve default %+v", cfg.Serve)
	}
}

func TestParseServeBlockErrors(t *testing.T) {
	if _, err := ParseRuntimeConfig("serve:\n  shards: [a:1]\n"); err == nil {
		t.Fatal("shards without addr accepted")
	}
	if _, err := ParseRuntimeConfig("serve:\n  addr: x\n  tenants:\n    - rate_per_sec: 5\n"); err == nil {
		t.Fatal("tenant without name accepted")
	}
	if _, err := ParseRuntimeConfig("serve:\n  addr: x\n  tenants:\n    - name: a\n    - name: a\n"); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := ParseRuntimeConfig("serve:\n  addr: x\n  tenants:\n    - name: a\n      inflight: -1\n"); err == nil {
		t.Fatal("negative limit accepted")
	}
}
