package spec

import (
	"fmt"
	"strings"

	"labstor/internal/core"
	"labstor/internal/device"
)

// StackSpec is the parsed form of a LabStack specification file:
//
//	mount: fs::/b
//	rules:
//	  exec_mode: async      # async | sync
//	  priority: 1
//	  max_depth: 16
//	  owners: [1000]
//	mods:
//	  - uuid: genfs1
//	    type: labstor.genericfs
//	    outputs: [labfs1]
//	  - uuid: labfs1
//	    type: labstor.labfs
//	    attrs:
//	      device: nvme0
//	    outputs: [lru1]
//	  ...
type StackSpec struct {
	Mount    string
	Rules    core.Rules
	Vertices []core.Vertex
}

// ParseStack parses a LabStack spec document.
func ParseStack(src string) (*StackSpec, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return StackFromNode(root)
}

// StackFromNode converts a parsed document into a StackSpec.
func StackFromNode(root *Node) (*StackSpec, error) {
	s := &StackSpec{}
	s.Mount = root.Str("mount", "")
	if s.Mount == "" {
		return nil, fmt.Errorf("spec: stack is missing 'mount'")
	}
	rules := root.Get("rules")
	if rules != nil {
		switch strings.ToLower(rules.Str("exec_mode", "async")) {
		case "sync", "synchronous":
			s.Rules.ExecMode = core.ExecSync
		case "async", "asynchronous", "":
			s.Rules.ExecMode = core.ExecAsync
		default:
			return nil, fmt.Errorf("spec: unknown exec_mode %q", rules.Str("exec_mode", ""))
		}
		s.Rules.Priority = rules.Int("priority", 0)
		s.Rules.MaxDepth = rules.Int("max_depth", 0)
		for _, o := range rules.Strings("owners") {
			var uid int
			if _, err := fmt.Sscanf(o, "%d", &uid); err == nil {
				s.Rules.Owners = append(s.Rules.Owners, uid)
			}
		}
	}
	mods := root.Get("mods")
	if mods == nil || !mods.IsList() {
		return nil, fmt.Errorf("spec: stack %q has no 'mods' sequence", s.Mount)
	}
	seen := make(map[string]bool)
	for i, mn := range mods.List() {
		if !mn.IsMap() {
			return nil, fmt.Errorf("spec: mods[%d] is not a mapping", i)
		}
		v := core.Vertex{
			UUID:    mn.Str("uuid", ""),
			Type:    mn.Str("type", ""),
			Attrs:   mn.StringMap("attrs"),
			Outputs: mn.Strings("outputs"),
		}
		if v.UUID == "" {
			return nil, fmt.Errorf("spec: mods[%d] is missing 'uuid'", i)
		}
		if v.Type == "" {
			return nil, fmt.Errorf("spec: mod %q is missing 'type'", v.UUID)
		}
		if seen[v.UUID] {
			return nil, fmt.Errorf("spec: duplicate mod uuid %q", v.UUID)
		}
		seen[v.UUID] = true
		s.Vertices = append(s.Vertices, v)
	}
	// Default chain wiring: a vertex with no outputs forwards to the next
	// vertex in the list (the common linear-stack shorthand), except the
	// last.
	for i := range s.Vertices {
		if len(s.Vertices[i].Outputs) == 0 && i+1 < len(s.Vertices) {
			s.Vertices[i].Outputs = []string{s.Vertices[i+1].UUID}
		}
	}
	return s, nil
}

// Stack materializes the spec into a core.Stack (not yet mounted).
func (s *StackSpec) Stack() *core.Stack {
	return core.NewStack(s.Mount, s.Rules, s.Vertices)
}

// DeviceSpec describes one simulated device in a runtime config.
type DeviceSpec struct {
	Name     string
	Class    device.Class
	Capacity int64
	// Stripes is the sparse-store lock-stripe count (rounded up to a power
	// of two). 0 selects the default (≥ 2× host parallelism); 1 degenerates
	// to a single global lock (the contention-experiment baseline).
	Stripes int
}

// OrchestratorSpec configures the Work Orchestrator.
type OrchestratorSpec struct {
	Policy          string // "round_robin" | "dynamic"
	RebalanceMs     int    // epoch length
	IdleParkUs      int    // worker parking threshold
	LatencyCutoffUs int    // EstProcessingTime cutoff for LQ vs CQ
	LossThreshold   float64
	// LocalityWeight biases queue placement toward workers on the queue's
	// NUMA node (0 = pure load balancing). Only meaningful with a numa:
	// section declaring more than one node.
	LocalityWeight float64
}

// NUMASpec configures the modeled NUMA topology:
//
//	numa:
//	  nodes: 2
//	  cross_ns_per_byte: 0.03
type NUMASpec struct {
	// Nodes is the socket count (0 or 1 = single node: NUMA modeling off).
	Nodes int
	// CrossNsPerByte is the additive charge for a worker touching payload
	// bytes homed on another node (0 = the vtime default).
	CrossNsPerByte float64
}

// ObserveSpec configures the live observability plane (the HTTP
// metrics/debug server, flight recorder and SLO watchdog cadence):
//
//	observe:
//	  addr: 127.0.0.1:9120    # empty = server disabled
//	  pprof: true
//	  flight_ring: 256
//	  slo_check_ms: 100
//	  tail: 64                # tail-outlier trace ring (-1 disables)
//	  tail_quantile: 0.99     # retain requests above this rolling quantile
//	  bundle_dir: /tmp/labstor-bundles   # empty = no incident bundles
//	  bundle_profile_ms: 250
//	  bundle_cooldown_ms: 60000
//	  bundle_max: 16
type ObserveSpec struct {
	// Addr is the listen address for the metrics/debug HTTP server
	// ("" disables it; host:0 binds an ephemeral port).
	Addr string
	// Pprof exposes net/http/pprof under /debug/pprof/ (default true when
	// the server is enabled).
	Pprof bool
	// FlightRing is the flight-recorder event ring capacity (0 = default).
	FlightRing int
	// SLOCheckMs is the SLO watchdog evaluation period (0 = default 100ms).
	SLOCheckMs int
	// Tail is the tail-outlier trace ring capacity: traces slower than the
	// rolling per-stack quantile threshold, retained regardless of 1-in-N
	// sampling (0 = default 64, negative disables tail retention).
	Tail int
	// TailQuantile is the rolling quantile the tail estimator tracks
	// (0 = default 0.99: the slowest ~1% of requests are outliers).
	TailQuantile float64
	// BundleDir, when set, arms incident capture: every SLO breach
	// transition writes a diagnostic bundle directory under it.
	BundleDir string
	// BundleProfileMs is how long the bundle's CPU profile runs
	// (0 = default 250ms).
	BundleProfileMs int
	// BundleCooldownMs rate-limits capture per stack (0 = default 60s).
	BundleCooldownMs int
	// BundleMax caps the number of bundles written per runtime lifetime
	// (0 = default 16).
	BundleMax int
}

// TenantSpec is one tenant's admission-control policy in a serve: block.
type TenantSpec struct {
	Name string
	// RatePerSec is the token-bucket refill rate (0 = unlimited).
	RatePerSec float64
	// Burst is the bucket depth (0 = max(rate/10, 32)).
	Burst float64
	// Inflight caps the tenant's concurrently admitted requests (0 = the
	// server default budget).
	Inflight int
}

// ServeSpec configures the network serving front end (and, when shards are
// listed, the consistent-hash routing proxy):
//
//	serve:
//	  addr: 127.0.0.1:7600     # empty = serving disabled
//	  batch: 32                # coalesced SubmitBatch window
//	  max_payload_mb: 4
//	  demand_poll_ms: 50       # orchestrator demand -> admission pressure
//	  default:
//	    inflight: 256
//	  tenants:
//	    - name: gold
//	      rate_per_sec: 50000
//	      burst: 1000
//	      inflight: 512
//	  shards: [127.0.0.1:7601, 127.0.0.1:7602]   # run as router over these
//	  replicas: 64             # ring virtual points per shard
type ServeSpec struct {
	// Addr is the TCP listen address ("" disables serving; host:0 binds an
	// ephemeral port).
	Addr string
	// Batch is the per-connection coalescing window (0 = default 32).
	Batch int
	// MaxPayloadMB bounds a single frame's payload (0 = default 4 MiB).
	MaxPayloadMB int
	// DemandPollMs is the orchestrator-demand poll period feeding admission
	// pressure (0 = default 50ms, negative disables the feed).
	DemandPollMs int
	// Default is the policy for tenants without an explicit entry.
	Default TenantSpec
	// Tenants lists per-tenant policies.
	Tenants []TenantSpec
	// Shards, when non-empty, runs this process as a shard router proxying
	// to the listed backend serve addresses instead of serving locally.
	Shards []string
	// Replicas is the ring's virtual-point count per shard (0 = default 64).
	Replicas int
}

// PushdownTenantSpec is one tenant's pushdown permissions in a pushdown:
// block.
type PushdownTenantSpec struct {
	Name string
	// Allow lists program names/refs this tenant may run ("*" = all,
	// trailing "*" = prefix match). Empty means the tenant runs nothing.
	Allow []string
	// MaxScanMB / MaxSteps tighten the per-request budgets for this
	// tenant (0 = the block defaults).
	MaxScanMB int
	MaxSteps  int64
}

// PushdownSpec configures the computation-pushdown program registry and
// its safety policy:
//
//	pushdown:
//	  max_scan_mb: 64          # per-request byte budget cap
//	  max_steps: 1000000       # per-request evaluation step cap
//	  allow: ["*"]             # default allow-list (empty = deny all)
//	  programs:
//	    hot_errors: 'filter where substr "err"'
//	    row_count: 'count'
//	  tenants:
//	    - name: analytics
//	      allow: [row_count]
//	      max_scan_mb: 16
type PushdownSpec struct {
	// Programs maps registration names to mini-language sources.
	Programs map[string]string
	// Allow is the default allow-list applied to tenants without an
	// explicit entry (empty = deny all — secure default).
	Allow []string
	// MaxScanMB caps bytes scanned per request (0 = evaluator default).
	MaxScanMB int
	// MaxSteps caps evaluation steps per request (0 = evaluator default).
	MaxSteps int64
	// Tenants lists per-tenant allow-lists and budget overrides.
	Tenants []PushdownTenantSpec
}

// SLOSpec is one per-stack service-level objective:
//
//	slo:
//	  - stack: fs::/probe
//	    p99_us: 500
//	    max_err_rate: 0.01
type SLOSpec struct {
	Stack      string
	P99Us      float64
	MaxErrRate float64
}

// RuntimeConfig is the parsed Runtime configuration YAML:
//
//	runtime:
//	  workers: 4
//	  queue_depth: 1024
//	  upgrade_poll_ms: 5
//	orchestrator:
//	  policy: dynamic
//	  rebalance_ms: 10
//	devices:
//	  - name: nvme0
//	    class: nvme
//	    capacity_mb: 4096
//	repos:
//	  - mods/core
type RuntimeConfig struct {
	Workers         int
	QueueDepth      int
	UpgradePollMs   int
	MaxReposPerUser int
	// Batch is the worker drain batch size: up to Batch requests are taken
	// from a queue per scan with one vectored ring reservation. 1 (the
	// default) selects the single-request poll path, byte-for-byte identical
	// to the unbatched runtime.
	Batch int
	// PerfSampleEvery is the telemetry sampling period: one request in N is
	// traced (0 = runtime default of 64, negative disables sampling).
	PerfSampleEvery int
	// TraceRing is the capacity of the recent-trace ring (0 = default).
	TraceRing    int
	Orchestrator OrchestratorSpec
	NUMA         NUMASpec
	Observe      ObserveSpec
	Serve        ServeSpec
	Pushdown     PushdownSpec
	SLOs         []SLOSpec
	Devices      []DeviceSpec
	Repos        []string
}

// DefaultRuntimeConfig returns the configuration used when a document omits
// a field (and the base for ParseRuntimeConfig).
func DefaultRuntimeConfig() *RuntimeConfig {
	return &RuntimeConfig{
		Workers:         4,
		QueueDepth:      1024,
		UpgradePollMs:   5,
		MaxReposPerUser: 8,
		Batch:           1,
		Orchestrator: OrchestratorSpec{
			Policy:          "dynamic",
			RebalanceMs:     10,
			IdleParkUs:      200,
			LatencyCutoffUs: 100,
			LossThreshold:   0.1,
		},
		Observe: ObserveSpec{Pprof: true},
	}
}

// ParseRuntimeConfig parses a runtime configuration document.
func ParseRuntimeConfig(src string) (*RuntimeConfig, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	cfg := DefaultRuntimeConfig()
	if rt := root.Get("runtime"); rt != nil {
		cfg.Workers = rt.Int("workers", cfg.Workers)
		cfg.QueueDepth = rt.Int("queue_depth", cfg.QueueDepth)
		cfg.UpgradePollMs = rt.Int("upgrade_poll_ms", cfg.UpgradePollMs)
		cfg.MaxReposPerUser = rt.Int("max_repos_per_user", cfg.MaxReposPerUser)
		cfg.Batch = rt.Int("batch", cfg.Batch)
		cfg.PerfSampleEvery = rt.Int("perf_sample_every", cfg.PerfSampleEvery)
		cfg.TraceRing = rt.Int("trace_ring", cfg.TraceRing)
	}
	if or := root.Get("orchestrator"); or != nil {
		cfg.Orchestrator.Policy = or.Str("policy", cfg.Orchestrator.Policy)
		cfg.Orchestrator.RebalanceMs = or.Int("rebalance_ms", cfg.Orchestrator.RebalanceMs)
		cfg.Orchestrator.IdleParkUs = or.Int("idle_park_us", cfg.Orchestrator.IdleParkUs)
		cfg.Orchestrator.LatencyCutoffUs = or.Int("latency_cutoff_us", cfg.Orchestrator.LatencyCutoffUs)
		cfg.Orchestrator.LossThreshold = or.Float("loss_threshold", cfg.Orchestrator.LossThreshold)
		cfg.Orchestrator.LocalityWeight = or.Float("locality_weight", cfg.Orchestrator.LocalityWeight)
	}
	if nu := root.Get("numa"); nu != nil {
		cfg.NUMA.Nodes = nu.Int("nodes", cfg.NUMA.Nodes)
		cfg.NUMA.CrossNsPerByte = nu.Float("cross_ns_per_byte", cfg.NUMA.CrossNsPerByte)
		if cfg.NUMA.Nodes < 0 {
			return nil, fmt.Errorf("spec: numa.nodes must be >= 0 (got %d)", cfg.NUMA.Nodes)
		}
	}
	if ob := root.Get("observe"); ob != nil {
		cfg.Observe.Addr = ob.Str("addr", cfg.Observe.Addr)
		cfg.Observe.Pprof = ob.Bool("pprof", cfg.Observe.Pprof)
		cfg.Observe.FlightRing = ob.Int("flight_ring", cfg.Observe.FlightRing)
		cfg.Observe.SLOCheckMs = ob.Int("slo_check_ms", cfg.Observe.SLOCheckMs)
		cfg.Observe.Tail = ob.Int("tail", cfg.Observe.Tail)
		cfg.Observe.TailQuantile = ob.Float("tail_quantile", cfg.Observe.TailQuantile)
		cfg.Observe.BundleDir = ob.Str("bundle_dir", cfg.Observe.BundleDir)
		cfg.Observe.BundleProfileMs = ob.Int("bundle_profile_ms", cfg.Observe.BundleProfileMs)
		cfg.Observe.BundleCooldownMs = ob.Int("bundle_cooldown_ms", cfg.Observe.BundleCooldownMs)
		cfg.Observe.BundleMax = ob.Int("bundle_max", cfg.Observe.BundleMax)
	}
	if sv := root.Get("serve"); sv != nil {
		cfg.Serve.Addr = sv.Str("addr", cfg.Serve.Addr)
		cfg.Serve.Batch = sv.Int("batch", cfg.Serve.Batch)
		cfg.Serve.MaxPayloadMB = sv.Int("max_payload_mb", cfg.Serve.MaxPayloadMB)
		cfg.Serve.DemandPollMs = sv.Int("demand_poll_ms", cfg.Serve.DemandPollMs)
		parseTenant := func(n *Node, ts *TenantSpec) error {
			ts.Name = n.Str("name", ts.Name)
			ts.RatePerSec = n.Float("rate_per_sec", ts.RatePerSec)
			ts.Burst = n.Float("burst", ts.Burst)
			ts.Inflight = n.Int("inflight", ts.Inflight)
			if ts.RatePerSec < 0 || ts.Burst < 0 || ts.Inflight < 0 {
				return fmt.Errorf("spec: serve tenant %q has a negative limit", ts.Name)
			}
			return nil
		}
		if def := sv.Get("default"); def != nil {
			if err := parseTenant(def, &cfg.Serve.Default); err != nil {
				return nil, err
			}
		}
		if tns := sv.Get("tenants"); tns != nil && tns.IsList() {
			seen := make(map[string]bool)
			for i, tn := range tns.List() {
				var ts TenantSpec
				if err := parseTenant(tn, &ts); err != nil {
					return nil, err
				}
				if ts.Name == "" {
					return nil, fmt.Errorf("spec: serve.tenants[%d] is missing 'name'", i)
				}
				if seen[ts.Name] {
					return nil, fmt.Errorf("spec: duplicate serve tenant %q", ts.Name)
				}
				seen[ts.Name] = true
				cfg.Serve.Tenants = append(cfg.Serve.Tenants, ts)
			}
		}
		cfg.Serve.Shards = sv.Strings("shards")
		cfg.Serve.Replicas = sv.Int("replicas", cfg.Serve.Replicas)
		if len(cfg.Serve.Shards) > 0 && cfg.Serve.Addr == "" {
			return nil, fmt.Errorf("spec: serve.shards requires serve.addr (the router listen address)")
		}
	}
	if pd := root.Get("pushdown"); pd != nil {
		cfg.Pushdown.Programs = pd.StringMap("programs")
		cfg.Pushdown.Allow = pd.Strings("allow")
		cfg.Pushdown.MaxScanMB = pd.Int("max_scan_mb", cfg.Pushdown.MaxScanMB)
		cfg.Pushdown.MaxSteps = pd.Int64("max_steps", cfg.Pushdown.MaxSteps)
		if cfg.Pushdown.MaxScanMB < 0 || cfg.Pushdown.MaxSteps < 0 {
			return nil, fmt.Errorf("spec: pushdown budgets must be >= 0")
		}
		if tns := pd.Get("tenants"); tns != nil && tns.IsList() {
			seen := make(map[string]bool)
			for i, tn := range tns.List() {
				ts := PushdownTenantSpec{
					Name:      tn.Str("name", ""),
					Allow:     tn.Strings("allow"),
					MaxScanMB: tn.Int("max_scan_mb", 0),
					MaxSteps:  tn.Int64("max_steps", 0),
				}
				if ts.Name == "" {
					return nil, fmt.Errorf("spec: pushdown.tenants[%d] is missing 'name'", i)
				}
				if seen[ts.Name] {
					return nil, fmt.Errorf("spec: duplicate pushdown tenant %q", ts.Name)
				}
				if ts.MaxScanMB < 0 || ts.MaxSteps < 0 {
					return nil, fmt.Errorf("spec: pushdown tenant %q has a negative budget", ts.Name)
				}
				seen[ts.Name] = true
				cfg.Pushdown.Tenants = append(cfg.Pushdown.Tenants, ts)
			}
		}
	}
	if slos := root.Get("slo"); slos != nil && slos.IsList() {
		for i, sn := range slos.List() {
			ss := SLOSpec{
				Stack:      sn.Str("stack", ""),
				P99Us:      sn.Float("p99_us", 0),
				MaxErrRate: sn.Float("max_err_rate", 0),
			}
			if ss.Stack == "" {
				return nil, fmt.Errorf("spec: slo[%d] is missing 'stack'", i)
			}
			if ss.P99Us <= 0 && ss.MaxErrRate <= 0 {
				return nil, fmt.Errorf("spec: slo[%d] (%s) declares no limits (set p99_us and/or max_err_rate)", i, ss.Stack)
			}
			cfg.SLOs = append(cfg.SLOs, ss)
		}
	}
	if devs := root.Get("devices"); devs != nil {
		for i, dn := range devs.List() {
			ds := DeviceSpec{Name: dn.Str("name", "")}
			if ds.Name == "" {
				return nil, fmt.Errorf("spec: devices[%d] is missing 'name'", i)
			}
			cls, err := ParseClass(dn.Str("class", "nvme"))
			if err != nil {
				return nil, err
			}
			ds.Class = cls
			ds.Capacity = dn.Int64("capacity_mb", 1024) << 20
			if gb := dn.Int64("capacity_gb", 0); gb > 0 {
				ds.Capacity = gb << 30
			}
			ds.Stripes = dn.Int("stripes", 0)
			cfg.Devices = append(cfg.Devices, ds)
		}
	}
	cfg.Repos = root.Strings("repos")
	return cfg, nil
}

// ParseClass maps a class name to a device.Class.
func ParseClass(s string) (device.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "hdd", "disk":
		return device.HDD, nil
	case "ssd", "sata_ssd", "satassd":
		return device.SATASSD, nil
	case "nvme":
		return device.NVMe, nil
	case "pmem", "pm", "nvram":
		return device.PMEM, nil
	default:
		return device.NVMe, fmt.Errorf("spec: unknown device class %q", s)
	}
}
