package spec

import (
	"strings"
	"testing"
)

// FuzzSpecParse throws arbitrary documents at the YAML subset parser and
// both schema builders (the FuzzFrameDecode of the config plane).
// Properties: no panics, no unbounded growth, and any stack that builds
// successfully satisfies the schema invariants the runtime relies on
// (non-empty mount, named vertices, edges that resolve).
func FuzzSpecParse(f *testing.F) {
	f.Add(`
mount: fs::/data
rules:
  exec_mode: async
stack:
  - uuid: fs1
    type: labstor.labfs
    attrs:
      device: nvme0
    outputs: [drv1]
  - uuid: drv1
    type: labstor.kerneldriver
    attrs:
      device: nvme0
`)
	f.Add(`
workers: 4
queue_depth: 1024
devices:
  - name: nvme0
    class: nvme
    capacity_mb: 256
serve:
  addr: 127.0.0.1:0
  tenants:
    - name: gold
      rate_per_sec: 1000
pushdown:
  programs:
    errs: count where substr "error"
  allow: [errs]
  max_scan_mb: 16
  tenants:
    - name: gold
      allow: ["*"]
      max_scan_mb: 64
`)
	f.Add("mount: kv::/b\nstack:\n  - uuid: a\n    type: t\n")
	f.Add("slo:\n  - op: read\n    p99_us: 500\n")
	f.Add(":\n:\n  -\n- x\n")
	f.Add("a:\n\tb: tab-indent\n")
	f.Add(strings.Repeat("deep:\n ", 30) + "x: y\n")
	f.Add("stack:\n  - uuid: \"unterminated\n")

	f.Fuzz(func(t *testing.T, src string) {
		// Cap input size so the corpus can't grow quadratic documents.
		if len(src) > 1<<16 {
			return
		}
		if s, err := ParseStack(src); err == nil {
			if s.Mount == "" {
				t.Fatal("built stack with empty mount")
			}
			seen := make(map[string]bool, len(s.Vertices))
			for _, v := range s.Vertices {
				if v.UUID == "" || v.Type == "" {
					t.Fatalf("built vertex with empty uuid/type: %+v", v)
				}
				if seen[v.UUID] {
					t.Fatalf("built stack with duplicate vertex %q", v.UUID)
				}
				seen[v.UUID] = true
			}
			for _, v := range s.Vertices {
				for _, out := range v.Outputs {
					if !seen[out] {
						t.Fatalf("vertex %q edge to unknown %q", v.UUID, out)
					}
				}
			}
		}
		if cfg, err := ParseRuntimeConfig(src); err == nil {
			if cfg.Workers < 0 || cfg.QueueDepth < 0 {
				t.Fatalf("built config with negative sizing: %+v", cfg)
			}
			if cfg.Pushdown.MaxScanMB < 0 || cfg.Pushdown.MaxSteps < 0 {
				t.Fatalf("built config with negative pushdown budgets: %+v", cfg.Pushdown)
			}
			for _, ts := range cfg.Pushdown.Tenants {
				if ts.Name == "" {
					t.Fatal("built pushdown tenant with empty name")
				}
			}
		}
	})
}
