// Package spec implements the human-readable schema language LabStacks and
// the Runtime configuration are written in. The paper uses YAML; since this
// repository is stdlib-only, spec implements a self-contained parser for the
// YAML subset the platform needs: block mappings, block sequences, flow
// sequences ([a, b]), quoted and plain scalars, comments, and nesting by
// indentation.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is one parsed YAML-subset value: exactly one of Scalar, List or Map
// semantics is active (IsScalar/IsList/IsMap).
type Node struct {
	scalar   string
	isScalar bool
	list     []*Node
	keys     []string // map key order
	kids     map[string]*Node
}

// IsScalar reports whether the node is a scalar.
func (n *Node) IsScalar() bool { return n != nil && n.isScalar }

// IsList reports whether the node is a sequence.
func (n *Node) IsList() bool { return n != nil && n.list != nil }

// IsMap reports whether the node is a mapping.
func (n *Node) IsMap() bool { return n != nil && n.kids != nil }

// Scalar returns the scalar value ("" for non-scalars).
func (n *Node) Scalar() string {
	if n == nil {
		return ""
	}
	return n.scalar
}

// List returns the sequence items (nil for non-lists).
func (n *Node) List() []*Node {
	if n == nil {
		return nil
	}
	return n.list
}

// Keys returns the mapping keys in document order.
func (n *Node) Keys() []string {
	if n == nil {
		return nil
	}
	return n.keys
}

// Get returns the child node for key (nil if absent or not a map).
func (n *Node) Get(key string) *Node {
	if n == nil || n.kids == nil {
		return nil
	}
	return n.kids[key]
}

// Str returns the scalar at key, or def.
func (n *Node) Str(key, def string) string {
	c := n.Get(key)
	if c == nil || !c.isScalar {
		return def
	}
	return c.scalar
}

// Int returns the integer at key, or def.
func (n *Node) Int(key string, def int) int {
	c := n.Get(key)
	if c == nil || !c.isScalar {
		return def
	}
	v, err := strconv.Atoi(strings.TrimSpace(c.scalar))
	if err != nil {
		return def
	}
	return v
}

// Int64 returns the 64-bit integer at key, or def.
func (n *Node) Int64(key string, def int64) int64 {
	c := n.Get(key)
	if c == nil || !c.isScalar {
		return def
	}
	v, err := strconv.ParseInt(strings.TrimSpace(c.scalar), 10, 64)
	if err != nil {
		return def
	}
	return v
}

// Float returns the float at key, or def.
func (n *Node) Float(key string, def float64) float64 {
	c := n.Get(key)
	if c == nil || !c.isScalar {
		return def
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(c.scalar), 64)
	if err != nil {
		return def
	}
	return v
}

// Bool returns the boolean at key, or def.
func (n *Node) Bool(key string, def bool) bool {
	c := n.Get(key)
	if c == nil || !c.isScalar {
		return def
	}
	switch strings.ToLower(strings.TrimSpace(c.scalar)) {
	case "true", "yes", "on", "1":
		return true
	case "false", "no", "off", "0":
		return false
	}
	return def
}

// Strings returns the sequence of scalars at key (flow or block list), or a
// single-element slice if the value is a plain scalar.
func (n *Node) Strings(key string) []string {
	c := n.Get(key)
	if c == nil {
		return nil
	}
	if c.isScalar {
		if c.scalar == "" {
			return nil
		}
		return []string{c.scalar}
	}
	var out []string
	for _, it := range c.list {
		if it.isScalar {
			out = append(out, it.scalar)
		}
	}
	return out
}

// StringMap flattens a mapping of scalars at key into a map.
func (n *Node) StringMap(key string) map[string]string {
	c := n.Get(key)
	if c == nil || c.kids == nil {
		return nil
	}
	out := make(map[string]string, len(c.keys))
	for _, k := range c.keys {
		if v := c.kids[k]; v != nil && v.isScalar {
			out[k] = v.scalar
		}
	}
	return out
}

func scalarNode(s string) *Node { return &Node{scalar: s, isScalar: true} }

func mapNode() *Node { return &Node{kids: make(map[string]*Node)} }

func (n *Node) put(key string, v *Node) {
	if _, exists := n.kids[key]; !exists {
		n.keys = append(n.keys, key)
	}
	n.kids[key] = v
}

// ParseError reports a parse failure with a line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("spec: line %d: %s", e.Line, e.Msg) }

type line struct {
	num    int
	indent int
	text   string // content with indent stripped
}

// Parse parses a YAML-subset document into its root node. An empty document
// parses to an empty map.
func Parse(src string) (*Node, error) {
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		t := stripComment(raw)
		if strings.TrimSpace(t) == "" {
			continue
		}
		indent := 0
		for indent < len(t) && t[indent] == ' ' {
			indent++
		}
		if indent < len(t) && t[indent] == '\t' {
			return nil, &ParseError{Line: i + 1, Msg: "tabs are not allowed for indentation"}
		}
		lines = append(lines, line{num: i + 1, indent: indent, text: t[indent:]})
	}
	if len(lines) == 0 {
		return mapNode(), nil
	}
	p := &parser{lines: lines}
	n, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, &ParseError{Line: p.lines[p.pos].num, Msg: "unexpected dedent/content"}
	}
	return n, nil
}

func stripComment(s string) string {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '#':
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses a block (map or list) whose items are at exactly indent.
func (p *parser) parseBlock(indent int) (*Node, error) {
	l, ok := p.peek()
	if !ok || l.indent < indent {
		return mapNode(), nil
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseList(indent int) (*Node, error) {
	n := &Node{list: []*Node{}}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			if ok && l.indent > indent {
				return nil, &ParseError{Line: l.num, Msg: "unexpected indent inside sequence"}
			}
			return n, nil
		}
		rest := strings.TrimPrefix(l.text, "-")
		rest = strings.TrimPrefix(rest, " ")
		itemIndent := indent + 2
		if rest == "" {
			// nested block on the following lines
			p.pos++
			nl, ok2 := p.peek()
			if !ok2 || nl.indent <= indent {
				n.list = append(n.list, scalarNode(""))
				continue
			}
			item, err := p.parseBlock(nl.indent)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, item)
			continue
		}
		// Rewrite "- content" as "content" at itemIndent and reparse.
		p.lines[p.pos] = line{num: l.num, indent: itemIndent, text: rest}
		if isMapStart(rest) {
			item, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, item)
		} else {
			v, err := parseFlowScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, v)
			p.pos++
		}
	}
}

func (p *parser) parseMap(indent int) (*Node, error) {
	n := mapNode()
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent {
			if ok && l.indent > indent {
				return nil, &ParseError{Line: l.num, Msg: "unexpected indent inside mapping"}
			}
			return n, nil
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return n, nil // list at same indent: let caller handle (error upstream)
		}
		key, rest, found := splitKey(l.text)
		if !found {
			return nil, &ParseError{Line: l.num, Msg: fmt.Sprintf("expected 'key:' in %q", l.text)}
		}
		p.pos++
		if rest != "" {
			v, err := parseFlowScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			n.put(key, v)
			continue
		}
		// Value is a nested block (or empty).
		nl, ok2 := p.peek()
		if !ok2 || nl.indent <= indent {
			// "key:" with no nested content — allow a same-indent list below
			if ok2 && nl.indent == indent && (strings.HasPrefix(nl.text, "- ") || nl.text == "-") {
				v, err := p.parseList(indent)
				if err != nil {
					return nil, err
				}
				n.put(key, v)
				continue
			}
			n.put(key, scalarNode(""))
			continue
		}
		v, err := p.parseBlock(nl.indent)
		if err != nil {
			return nil, err
		}
		n.put(key, v)
	}
}

func isMapStart(s string) bool {
	key, _, found := splitKey(s)
	return found && key != ""
}

// splitKey splits "key: value" respecting quotes; returns found=false if the
// line has no top-level ':' key separator.
func splitKey(s string) (key, rest string, found bool) {
	inQuote := byte(0)
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i+1 == len(s) {
				return unquote(strings.TrimSpace(s[:i])), "", true
			}
			if s[i+1] == ' ' {
				return unquote(strings.TrimSpace(s[:i])), strings.TrimSpace(s[i+2:]), true
			}
			// "::" inside mount paths like fs::/b — not a key separator;
			// skip the second colon too.
			if s[i+1] == ':' {
				i++
			}
		}
	}
	return "", "", false
}

// parseFlowScalar parses an inline value: a flow sequence "[a, b]" or a
// (possibly quoted) scalar.
func parseFlowScalar(s string, lineNum int) (*Node, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, &ParseError{Line: lineNum, Msg: "unterminated flow sequence"}
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		n := &Node{list: []*Node{}}
		if inner == "" {
			return n, nil
		}
		for _, part := range splitFlow(inner) {
			n.list = append(n.list, scalarNode(unquote(strings.TrimSpace(part))))
		}
		return n, nil
	}
	return scalarNode(unquote(s)), nil
}

func splitFlow(s string) []string {
	var parts []string
	inQuote := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
