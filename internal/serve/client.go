package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnClosed is returned for requests outstanding when the connection
// dies or Close is called.
var ErrConnClosed = errors.New("serve: connection closed")

// Result is one request's outcome at the client: either a response frame
// (Value copied out of the read buffer, safe to retain) or a busy
// rejection with the server's retry hint.
type Result struct {
	Resp    RespFrame
	Busy    bool
	Reason  byte
	RetryNs int64
}

// Err folds the result into a single error: nil on success, the server's
// request error, or a busy description.
func (r *Result) Err() error {
	if r.Busy {
		return fmt.Errorf("serve: busy (%s, retry in %s)", BusyReasonString(r.Reason), time.Duration(r.RetryNs))
	}
	if !r.Resp.OK {
		return errors.New(r.Resp.Err)
	}
	return nil
}

// Conn is a client connection to a serving front end (or router). It is
// safe for concurrent use: submissions pipeline onto one socket and a
// background reader demultiplexes completions by request id.
type Conn struct {
	conn   net.Conn
	tenant string
	nextID atomic.Uint64

	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte // reusable encode scratch, guarded by wmu

	mu      sync.Mutex
	pending map[uint64]chan Result
	err     error // set once the reader dies
	readWG  sync.WaitGroup
}

// Dial connects, performs the Hello handshake and starts the reader.
// tenant becomes the connection's default tenant for admission control.
func Dial(addr, tenant string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := nc.Write(AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: tenant})); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, _, err := ReadFrame(br, nil, DefaultMaxPayload)
	if err != nil || typ != FrameHello {
		nc.Close()
		return nil, fmt.Errorf("serve: handshake failed: %v", err)
	}
	if _, err := DecodeHello(payload); err != nil {
		nc.Close()
		return nil, fmt.Errorf("serve: handshake failed: %v", err)
	}
	nc.SetReadDeadline(time.Time{})

	c := &Conn{
		conn:    nc,
		tenant:  tenant,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan Result),
	}
	c.readWG.Add(1)
	go c.readLoop(br)
	return c, nil
}

// Close tears the connection down; outstanding requests fail with
// ErrConnClosed.
func (c *Conn) Close() error {
	err := c.conn.Close()
	c.readWG.Wait()
	return err
}

func (c *Conn) readLoop(br *bufio.Reader) {
	defer c.readWG.Done()
	var buf []byte
	var failErr error
	for {
		typ, payload, nbuf, err := ReadFrame(br, buf, DefaultMaxPayload)
		if err != nil {
			failErr = err
			break
		}
		buf = nbuf
		var id uint64
		var res Result
		switch typ {
		case FrameResp:
			var rf RespFrame
			if err := DecodeResp(payload, &rf); err != nil {
				failErr = err
				break
			}
			// The decode buffer is reused next iteration; the value must be
			// copied out before delivery.
			if len(rf.Value) > 0 {
				rf.Value = append([]byte(nil), rf.Value...)
			}
			id, res = rf.ID, Result{Resp: rf}
		case FrameBusy:
			bf, err := DecodeBusy(payload)
			if err != nil {
				failErr = err
				break
			}
			id, res = bf.ID, Result{Busy: true, Reason: bf.Reason, RetryNs: bf.RetryNs}
		case FramePong:
			pid, err := DecodePing(payload)
			if err != nil {
				failErr = err
				break
			}
			id, res = pid, Result{Resp: RespFrame{ID: pid, OK: true}}
		default:
			failErr = ErrTornFrame
		}
		if failErr != nil {
			break
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- res
		}
	}
	if failErr == nil {
		failErr = ErrConnClosed
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = failErr
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch) // closed channel = connection failure
	}
	c.mu.Unlock()
}

// Submit pipelines one request without flushing; the returned channel
// yields exactly one Result (or closes on connection failure). A zero
// rf.ID is assigned; rf.Tenant defaults to the connection tenant on the
// server side.
func (c *Conn) Submit(rf *ReqFrame) (<-chan Result, error) {
	if rf.ID == 0 {
		rf.ID = c.nextID.Add(1)
	}
	ch := make(chan Result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[rf.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.enc = AppendReq(c.enc[:0], rf)
	_, err := c.bw.Write(c.enc)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, rf.ID)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Flush pushes buffered submissions onto the wire.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

// wait blocks for a submission's result.
func wait(ch <-chan Result) (Result, error) {
	res, ok := <-ch
	if !ok {
		return Result{}, ErrConnClosed
	}
	return res, nil
}

// Do submits one request, flushes and waits for its result.
func (c *Conn) Do(rf *ReqFrame) (Result, error) {
	ch, err := c.Submit(rf)
	if err != nil {
		return Result{}, err
	}
	if err := c.Flush(); err != nil {
		return Result{}, err
	}
	return wait(ch)
}

// DoRetry is Do with busy-backoff: on a BUSY result it sleeps the server's
// retry hint (bounded to [50us, 10ms]) and resubmits, up to tries attempts.
// The final result is returned even if still busy.
func (c *Conn) DoRetry(rf *ReqFrame, tries int) (Result, error) {
	if tries < 1 {
		tries = 1
	}
	var res Result
	var err error
	for i := 0; i < tries; i++ {
		// Fresh id per attempt: the previous rejection consumed the old one.
		rf.ID = c.nextID.Add(1)
		res, err = c.Do(rf)
		if err != nil || !res.Busy {
			return res, err
		}
		backoff := time.Duration(res.RetryNs)
		if backoff < 50*time.Microsecond {
			backoff = 50 * time.Microsecond
		}
		if backoff > 10*time.Millisecond {
			backoff = 10 * time.Millisecond
		}
		time.Sleep(backoff)
	}
	return res, err
}

// Pipeline submits a window of requests back-to-back (one flush) and waits
// for every result, in order. This is the wire analogue of
// Client.SubmitBatch/WaitAll and what the load generator drives.
func (c *Conn) Pipeline(rfs []ReqFrame) ([]Result, error) {
	chans := make([]<-chan Result, len(rfs))
	for i := range rfs {
		ch, err := c.Submit(&rfs[i])
		if err != nil {
			return nil, err
		}
		chans[i] = ch
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	out := make([]Result, len(rfs))
	for i, ch := range chans {
		res, err := wait(ch)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// Ping round-trips a liveness probe.
func (c *Conn) Ping() error {
	id := c.nextID.Add(1)
	ch := make(chan Result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	c.enc = AppendPing(c.enc[:0], FramePing, id)
	_, err := c.bw.Write(c.enc)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	_, err = wait(ch)
	return err
}

// Tenant returns the connection's default tenant.
func (c *Conn) Tenant() string { return c.tenant }
