package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"labstor/internal/core"
	"labstor/internal/ipc"
	"labstor/internal/mods/pushdown"
	"labstor/internal/runtime"
	"labstor/internal/telemetry"
)

// Config parameterizes a serving front end.
type Config struct {
	// Addr is the TCP listen address (host:0 binds an ephemeral port).
	Addr string
	// Batch caps how many decoded frames coalesce into one SubmitBatch
	// (0 = 32). The reader also flushes whenever the socket has no more
	// buffered bytes, so latency under light load is one frame.
	Batch int
	// MaxPayload bounds one frame's payload (0 = DefaultMaxPayload).
	MaxPayload int
	// Default is the admission policy for tenants without an explicit
	// entry (zero value = no rate limit, 256 inflight).
	Default TenantPolicy
	// Tenants are the explicit per-tenant QoS policies.
	Tenants []TenantPolicy
	// DemandPollMs is how often the server folds the orchestrator's
	// per-queue demand estimates into the admission pressure signal
	// (0 = 50ms, negative disables the feed).
	DemandPollMs int
	// HandshakeTimeout bounds the Hello exchange (0 = 5s).
	HandshakeTimeout time.Duration
	// Pushdown is the program policy for Prog-carrying scan frames:
	// per-tenant allow-lists plus byte/step budget caps. nil rejects every
	// program (secure default — remote computation must be opted into).
	Pushdown *pushdown.Policy
}

// Server is the TCP serving front end: it multiplexes many client
// connections onto the Runtime's queue-pair fast path. Each connection gets
// one runtime.Client (one queue pair, placed by the orchestrator like any
// local client) and three goroutines:
//
//	reader    — decodes frames, runs admission, coalesces admitted
//	            requests into vectored SubmitBatch calls
//	completer — reaps each submitted batch with WaitAll and encodes
//	            response frames
//	writer    — owns the socket write side; busy/pong frames from the
//	            reader and response frames from the completer interleave
//
// Backpressure is explicit end to end: admission rejections are BUSY
// frames, a full submission ring blocks the reader (TCP pushback), and the
// completer channel bounds how many submitted-but-unwritten batches exist.
type Server struct {
	rt        *runtime.Runtime
	cfg       Config
	adm       *Admission
	ln        net.Listener
	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	mAccepted  *telemetry.Counter
	mFramesIn  *telemetry.Counter
	mFramesOut *telemetry.Counter
	mBytesIn   *telemetry.Counter
	mBytesOut  *telemetry.Counter
	mBusy      *telemetry.Counter
	mReqErrs   *telemetry.Counter
	mProtoErrs *telemetry.Counter
	mPdDenied  *telemetry.Counter
	gConns     *telemetry.Gauge
	hBatch     func(float64)
}

// New builds a Server over a started Runtime. Telemetry lands in the
// runtime's registry, so serve.* series ride the existing /metrics plane.
func New(rt *runtime.Runtime, cfg Config) *Server {
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	reg := rt.Metrics()
	s := &Server{
		rt:         rt,
		cfg:        cfg,
		adm:        NewAdmission(cfg.Default, cfg.Tenants, reg),
		quit:       make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
		mAccepted:  reg.Counter("serve.accepted"),
		mFramesIn:  reg.Counter("serve.frames_in"),
		mFramesOut: reg.Counter("serve.frames_out"),
		mBytesIn:   reg.Counter("serve.bytes_in"),
		mBytesOut:  reg.Counter("serve.bytes_out"),
		mBusy:      reg.Counter("serve.busy"),
		mReqErrs:   reg.Counter("serve.req_errors"),
		mProtoErrs: reg.Counter("serve.proto_errors"),
		mPdDenied:  reg.Counter("serve.pushdown_denied"),
		gConns:     reg.Gauge("serve.connections"),
	}
	h := reg.Histogram("serve.batch_size")
	s.hBatch = func(v float64) { h.Observe(v) }
	return s
}

// Admission exposes the admission controller (tests, manual pressure).
func (s *Server) Admission() *Admission { return s.adm }

// ListenAndServe binds the configured address and starts accepting. It
// returns the bound address (for ephemeral ports) without blocking.
func (s *Server) ListenAndServe() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.cfg.DemandPollMs >= 0 {
		s.wg.Add(1)
		go s.demandLoop()
	}
	return ln.Addr(), nil
}

// Close stops accepting, closes every live connection and waits for the
// per-connection pipelines to drain.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mAccepted.Inc()
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.gConns.Add(1)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// demandLoop folds the orchestrator's per-queue demand estimates into the
// admission pressure signal: the sum of utilization rates (cores' worth of
// measured demand) against the worker pool capacity.
func (s *Server) demandLoop() {
	defer s.wg.Done()
	period := time.Duration(s.cfg.DemandPollMs) * time.Millisecond
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			var demand float64
			for _, d := range s.rt.Orchestrator().QueueDemands() {
				demand += d.Rate
			}
			capacity := float64(s.rt.Options().MaxWorkers)
			s.adm.SetPressure(demand, capacity)
		}
	}
}

// pendingReq is one admitted request between submission and response.
type pendingReq struct {
	req     *core.Request
	id      uint64         // wire request id
	payload core.BufHandle // registered payload buffer to release (may be zero)
	ts      *tenantState
}

// submittedBatch is one SubmitBatch's worth of requests handed to the
// completer, plus the submit error (if any) that already doomed them.
type submittedBatch struct {
	entries []pendingReq
	reqs    []*core.Request
	subErr  error
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.gConns.Add(-1)
		conn.Close()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	// Handshake: Hello in, Hello (ack) out, bounded by a deadline.
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	typ, payload, buf, err := ReadFrame(br, nil, s.cfg.MaxPayload)
	if err != nil || typ != FrameHello {
		s.mProtoErrs.Inc()
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil || hello.Version != ProtoVersion {
		s.mProtoErrs.Inc()
		return
	}
	conn.SetReadDeadline(time.Time{})
	ack := AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: hello.Tenant})
	if _, err := conn.Write(ack); err != nil {
		return
	}

	cli := s.rt.Connect(ipc.Credentials{PID: -1, UID: 0, GID: 0})
	defer cli.Disconnect()
	defTenant := s.adm.Tenant(hello.Tenant)

	compCh := make(chan submittedBatch, 64)
	writeCh := make(chan []byte, 256)

	var pipeWG sync.WaitGroup
	pipeWG.Add(2)
	go func() { // completer
		defer pipeWG.Done()
		defer close(writeCh)
		s.completeLoop(cli, compCh, writeCh)
	}()
	go func() { // writer
		defer pipeWG.Done()
		s.writeLoop(bw, writeCh)
	}()

	s.readLoop(conn, br, buf, cli, defTenant, compCh, writeCh)
	close(compCh)
	pipeWG.Wait()
}

// readLoop decodes frames, admits, and coalesces runs of same-stack
// requests into vectored submissions. It returns when the connection dies
// or the server shuts down.
func (s *Server) readLoop(conn net.Conn, br *bufio.Reader, buf []byte, cli *runtime.Client,
	defTenant *tenantState, compCh chan<- submittedBatch, writeCh chan<- []byte) {

	// Per-connection mount cache: resolution is a namespace prefix walk;
	// connections hammer a handful of mounts.
	type resolved struct {
		stack *core.Stack
		rem   string
	}
	mounts := make(map[string]resolved)

	var batch []pendingReq
	var batchStack *core.Stack

	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.hBatch(float64(len(batch)))
		reqs := make([]*core.Request, len(batch))
		for i := range batch {
			reqs[i] = batch[i].req
		}
		err := cli.SubmitBatch(batchStack, reqs)
		compCh <- submittedBatch{entries: batch, reqs: reqs, subErr: err}
		batch = nil
		batchStack = nil
	}

	var rf ReqFrame
	for {
		typ, payload, nbuf, err := ReadFrame(br, buf, s.cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, ErrTornFrame) || errors.Is(err, ErrFrameSize) {
				s.mProtoErrs.Inc()
			}
			flush()
			return
		}
		buf = nbuf
		s.mFramesIn.Inc()
		s.mBytesIn.Add(int64(frameHeader + len(payload)))

		switch typ {
		case FramePing:
			id, err := DecodePing(payload)
			if err != nil {
				s.mProtoErrs.Inc()
				flush()
				return
			}
			flush()
			writeCh <- AppendPing(nil, FramePong, id)
			continue
		case FrameReq:
			// fallthrough to the request path below
		default:
			s.mProtoErrs.Inc()
			flush()
			return
		}

		if err := DecodeReq(payload, &rf); err != nil {
			s.mProtoErrs.Inc()
			flush()
			return
		}

		// Admission: per-request tenant (router-forwarded frames carry their
		// own), defaulting to the connection's Hello tenant.
		ts := defTenant
		if rf.Tenant != "" && rf.Tenant != defTenant.policy.Name {
			ts = s.adm.Tenant(rf.Tenant)
		}
		if ok, reason, retry := s.adm.Admit(ts); !ok {
			s.mBusy.Inc()
			flush() // keep response ordering sane under overload
			writeCh <- AppendBusy(nil, &BusyFrame{ID: rf.ID, Reason: reason, RetryNs: retry})
			continue
		}

		// Resolve the stack (exact mount, else namespace prefix walk).
		res, ok := mounts[rf.Mount]
		if !ok {
			if st, found := s.rt.Namespace.Lookup(rf.Mount); found {
				res = resolved{stack: st}
			} else if st, rem, found := s.rt.Namespace.Resolve(rf.Mount); found {
				res = resolved{stack: st, rem: rem}
			} else {
				s.adm.Done(ts)
				s.mReqErrs.Inc()
				flush()
				writeCh <- AppendResp(nil, &RespFrame{ID: rf.ID, Err: fmt.Sprintf("no stack serving %q", rf.Mount)})
				continue
			}
			mounts[rf.Mount] = res
		}

		// Pushdown gate: a Prog-carrying frame runs a registered program
		// server-side, so it must clear the server's policy (per-tenant
		// allow-list) before it touches the stack. No policy = no remote
		// computation.
		progRef := ""
		if rf.Prog != "" {
			var admitErr error
			if s.cfg.Pushdown == nil {
				admitErr = errors.New("pushdown not enabled on this server")
			} else if p, err := s.cfg.Pushdown.Admit(ts.policy.Name, rf.Prog); err != nil {
				admitErr = err
			} else {
				progRef = p.Ref
			}
			if admitErr != nil {
				s.adm.Done(ts)
				s.mPdDenied.Inc()
				s.mReqErrs.Inc()
				flush()
				writeCh <- AppendResp(nil, &RespFrame{ID: rf.ID, Err: admitErr.Error()})
				continue
			}
		}

		req := core.AcquireRequest(rf.Op)
		req.Path = rf.Path
		if req.Path == "" {
			req.Path = res.rem
		}
		req.Key = rf.Key
		req.Offset = rf.Offset
		req.Size = int(rf.Size)
		if progRef != "" {
			req.Prog = progRef
			s.cfg.Pushdown.Clamp(ts.policy.Name, req)
		}

		// Zero-copy hand-off: the wire payload lands in a registered arena
		// buffer (the one socket->memory copy), and the stack operates on it
		// in place. Oversized payloads fall back to a plain heap copy.
		var ph core.BufHandle
		if len(rf.Payload) > 0 {
			if h, err := cli.AcquireBuffer(len(rf.Payload)); err == nil {
				copy(h.Bytes(), rf.Payload)
				req.SetPayload(h)
				ph = h
			} else {
				req.Data = append([]byte(nil), rf.Payload...)
			}
			if req.Size == 0 {
				req.Size = len(rf.Payload)
			}
		}

		// Coalesce: same-stack runs batch into one vectored submission.
		if batchStack != nil && (batchStack != res.stack || len(batch) >= s.cfg.Batch) {
			flush()
		}
		batchStack = res.stack
		batch = append(batch, pendingReq{req: req, id: rf.ID, payload: ph, ts: ts})

		// Flush when the wire has nothing more buffered (the batch window
		// closes with the burst) or the batch is full.
		if len(batch) >= s.cfg.Batch || br.Buffered() == 0 {
			flush()
		}
	}
}

// completeLoop reaps submitted batches in order, encodes responses and
// releases request/payload resources.
func (s *Server) completeLoop(cli *runtime.Client, compCh <-chan submittedBatch, writeCh chan<- []byte) {
	for b := range compCh {
		waitErr := b.subErr
		if waitErr == nil {
			waitErr = cli.WaitAll(b.reqs)
		} else {
			// Submission failed partway (runtime stopped): WaitAll whatever
			// did get queued so CQ slots are recycled; already-done requests
			// return immediately.
			_ = cli.WaitAll(b.reqs)
		}
		out := make([]byte, 0, 64*len(b.entries))
		for i := range b.entries {
			e := &b.entries[i]
			req := e.req
			resp := RespFrame{ID: e.id}
			switch {
			case req.Err != nil:
				resp.Err = req.Err.Error()
				s.mReqErrs.Inc()
			case b.subErr != nil:
				resp.Err = b.subErr.Error()
				s.mReqErrs.Inc()
			default:
				resp.OK = true
				resp.Result = req.Result
				resp.Value = req.Value
			}
			out = AppendResp(out, &resp)
			s.mFramesOut.Inc()
			// The response bytes are encoded; the request's result buffer
			// and the registered payload can recycle now.
			if e.payload.Valid() {
				e.payload.Release()
			}
			req.Release()
			s.adm.Done(e.ts)
		}
		s.mBytesOut.Add(int64(len(out)))
		writeCh <- out
	}
}

// writeLoop owns the socket write side: it drains encoded frames and
// flushes when the queue goes momentarily empty. On a write error it keeps
// draining (discarding) so the completer never blocks on a dead peer.
func (s *Server) writeLoop(bw *bufio.Writer, writeCh <-chan []byte) {
	dead := false
	for out := range writeCh {
		if dead {
			continue
		}
		if _, err := bw.Write(out); err != nil {
			dead = true
			continue
		}
		if len(writeCh) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		bw.Flush()
	}
}
