// Package serve is the LabStor network serving front end: a TCP wire
// protocol that lets remote clients hit the batched/zero-copy submission
// fast path, with per-tenant admission control (token-bucket rate limits
// and inflight caps fed by the orchestrator's demand estimates) and a
// consistent-hash shard router for scale-out across runtime instances.
//
// The wire format is a length-prefixed, CRC-framed binary RPC — the same
// torn-frame discipline as the labfs metadata log codec, applied to a
// socket stream. Every frame is
//
//	[magic 0xAB][type 1B][payload length 4B LE][payload CRC32 (IEEE) 4B LE][payload]
//
// and payloads are fixed varint field sequences per frame type. A CRC
// mismatch, oversized length, unknown frame type or malformed payload is a
// protocol error: the peer that detects it closes the connection (a TCP
// stream that has lost framing cannot be resynchronized).
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"labstor/internal/core"
)

// Frame types.
const (
	// FrameHello opens a connection: proto version + default tenant. The
	// server answers with its own Hello (the ack) before any requests flow.
	FrameHello = byte(iota + 1)
	// FrameReq carries one RPC request (client -> server).
	FrameReq
	// FrameResp carries one RPC completion (server -> client).
	FrameResp
	// FrameBusy is an explicit admission-control rejection: the request
	// identified by ID was not queued and should be retried after the hint.
	FrameBusy
	// FramePing / FramePong are liveness probes (id echoed back).
	FramePing
	FramePong
)

// ProtoVersion is the current wire protocol version, carried in Hello.
// Version 2 added the ReqFrame Prog field (computation pushdown: a
// program-ref so clients move results, not bytes, over the wire).
const ProtoVersion = 2

const (
	frameMagic  = 0xAB
	frameHeader = 10 // magic + type + length + crc

	// DefaultMaxPayload bounds a frame payload (data + headers); a length
	// field above the limit is treated as a torn/hostile frame. 4 MiB covers
	// the largest arena buffer class (2 MiB) with room for headers.
	DefaultMaxPayload = 4 << 20
)

// Busy reasons (RespFrame-free rejections carried by FrameBusy).
const (
	// BusyRate: the tenant's token bucket is empty.
	BusyRate = byte(iota + 1)
	// BusyInflight: the tenant is at its inflight cap.
	BusyInflight
	// BusyOverload: the runtime's measured demand exceeds capacity and the
	// server is shedding load beyond per-tenant budgets.
	BusyOverload
)

// BusyReasonString names a busy reason for logs and metrics.
func BusyReasonString(r byte) string {
	switch r {
	case BusyRate:
		return "rate"
	case BusyInflight:
		return "inflight"
	case BusyOverload:
		return "overload"
	}
	return fmt.Sprintf("reason(%d)", r)
}

// Errors surfaced by the codec.
var (
	ErrTornFrame  = errors.New("serve: torn or corrupt frame")
	ErrFrameSize  = errors.New("serve: frame exceeds max payload")
	ErrBadPayload = errors.New("serve: malformed frame payload")
)

// HelloFrame is the connection-open handshake.
type HelloFrame struct {
	Version uint64
	// Tenant is the connection's default tenant; a ReqFrame with an empty
	// Tenant inherits it.
	Tenant string
}

// ReqFrame is one RPC request: the fields the ISSUE's RPC contract names —
// request id, tenant, stack (mount), op, key/offset — plus the payload.
type ReqFrame struct {
	ID     uint64
	Tenant string // empty = connection default
	Mount  string // namespace path the request is routed by
	Op     core.Op
	Path   string // file-interface operand (may be empty)
	Key    string // KV-interface operand (may be empty)
	Offset int64
	Size   int64
	// Prog is a pushdown program reference (name or content-hash ref) for
	// OpScan requests: the server runs the registered program where the
	// data lives and returns only matches/aggregates, so bytes-on-wire is
	// result-sized. Subject to the server's pushdown policy (per-tenant
	// allow-lists + budget caps); empty means no program.
	Prog string
	// Payload is the write-side data. Decoded frames alias the decode
	// buffer; the server copies it into a registered arena buffer before the
	// decode buffer is reused.
	Payload []byte
}

// RespFrame is one RPC completion.
type RespFrame struct {
	ID     uint64
	OK     bool
	Result int64
	Err    string // empty when OK
	// Value is the read-side data (aliases the decode buffer on decode).
	Value []byte
}

// BusyFrame is an admission rejection for one request.
type BusyFrame struct {
	ID      uint64
	Reason  byte
	RetryNs int64 // suggested client backoff (0 = immediate retry is fine)
}

// maxWireOp bounds the op codes accepted off the wire (everything the
// request model defines today; unknown codes are a payload error, so a
// future op added without bumping this is rejected loudly, not executed).
const maxWireOp = core.OpScan

// appendFrame wraps payload (already appended at dst[start+frameHeader:])
// with the frame header. Callers reserve the header with reserveFrame.
func reserveFrame(dst []byte, typ byte) []byte {
	return append(dst, frameMagic, typ, 0, 0, 0, 0, 0, 0, 0, 0)
}

func sealFrame(dst []byte, start int) []byte {
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start+2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+6:], crc32.ChecksumIEEE(payload))
	return dst
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendHello encodes a Hello frame.
func AppendHello(dst []byte, h *HelloFrame) []byte {
	start := len(dst)
	dst = reserveFrame(dst, FrameHello)
	dst = binary.AppendUvarint(dst, h.Version)
	dst = appendStr(dst, h.Tenant)
	return sealFrame(dst, start)
}

// AppendReq encodes a request frame.
func AppendReq(dst []byte, r *ReqFrame) []byte {
	start := len(dst)
	dst = reserveFrame(dst, FrameReq)
	dst = binary.AppendUvarint(dst, r.ID)
	dst = appendStr(dst, r.Tenant)
	dst = appendStr(dst, r.Mount)
	dst = append(dst, byte(r.Op))
	dst = appendStr(dst, r.Path)
	dst = appendStr(dst, r.Key)
	dst = binary.AppendVarint(dst, r.Offset)
	dst = binary.AppendVarint(dst, r.Size)
	dst = appendStr(dst, r.Prog)
	dst = appendBytes(dst, r.Payload)
	return sealFrame(dst, start)
}

// AppendResp encodes a response frame.
func AppendResp(dst []byte, r *RespFrame) []byte {
	start := len(dst)
	dst = reserveFrame(dst, FrameResp)
	dst = binary.AppendUvarint(dst, r.ID)
	ok := byte(0)
	if r.OK {
		ok = 1
	}
	dst = append(dst, ok)
	dst = binary.AppendVarint(dst, r.Result)
	dst = appendStr(dst, r.Err)
	dst = appendBytes(dst, r.Value)
	return sealFrame(dst, start)
}

// AppendBusy encodes a busy frame.
func AppendBusy(dst []byte, b *BusyFrame) []byte {
	start := len(dst)
	dst = reserveFrame(dst, FrameBusy)
	dst = binary.AppendUvarint(dst, b.ID)
	dst = append(dst, b.Reason)
	dst = binary.AppendVarint(dst, b.RetryNs)
	return sealFrame(dst, start)
}

// AppendPing encodes a ping (or pong, by type) frame.
func AppendPing(dst []byte, typ byte, id uint64) []byte {
	start := len(dst)
	dst = reserveFrame(dst, typ)
	dst = binary.AppendUvarint(dst, id)
	return sealFrame(dst, start)
}

// DecodeFrame splits the first frame off b: type, payload (aliasing b) and
// the remaining bytes. It performs the same torn-frame discipline as the
// labfs record codec: bad magic, short header/body, oversized length or CRC
// mismatch is ErrTornFrame / ErrFrameSize.
func DecodeFrame(b []byte, maxPayload int) (typ byte, payload, rest []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < frameHeader {
		return 0, nil, b, ErrTornFrame
	}
	if b[0] != frameMagic {
		return 0, nil, b, ErrTornFrame
	}
	typ = b[1]
	if typ == 0 || typ > FramePong {
		return 0, nil, b, ErrTornFrame
	}
	plen := int(binary.LittleEndian.Uint32(b[2:6]))
	if plen < 0 || plen > maxPayload {
		return 0, nil, b, ErrFrameSize
	}
	if frameHeader+plen > len(b) {
		return 0, nil, b, ErrTornFrame
	}
	payload = b[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[6:10]) {
		return 0, nil, b, ErrTornFrame
	}
	return typ, payload, b[frameHeader+plen:], nil
}

// ReadFrame reads one whole frame from r into buf (growing it as needed)
// and returns the type, the payload (aliasing buf) and the possibly-grown
// buffer. Streaming counterpart of DecodeFrame.
func ReadFrame(r *bufio.Reader, buf []byte, maxPayload int) (typ byte, payload, nbuf []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	if hdr[0] != frameMagic {
		return 0, nil, buf, ErrTornFrame
	}
	typ = hdr[1]
	if typ == 0 || typ > FramePong {
		return 0, nil, buf, ErrTornFrame
	}
	plen := int(binary.LittleEndian.Uint32(hdr[2:6]))
	if plen < 0 || plen > maxPayload {
		return 0, nil, buf, ErrFrameSize
	}
	if cap(buf) < plen {
		buf = make([]byte, plen)
	}
	buf = buf[:plen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(hdr[6:10]) {
		return 0, nil, buf, ErrTornFrame
	}
	return typ, buf, buf, nil
}

// fieldDecoder walks a payload's fixed field sequence, latching any
// malformation (the labfs varintDecoder pattern).
type fieldDecoder struct {
	b   []byte
	off int
	bad bool
}

func (d *fieldDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *fieldDecoder) varint() int64 {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return v
}

func (d *fieldDecoder) byte() byte {
	if d.off >= len(d.b) {
		d.bad = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *fieldDecoder) str() string {
	ln := d.uvarint()
	if d.bad || ln > uint64(len(d.b)-d.off) {
		d.bad = true
		return ""
	}
	s := string(d.b[d.off : d.off+int(ln)])
	d.off += int(ln)
	return s
}

func (d *fieldDecoder) bytes() []byte {
	ln := d.uvarint()
	if d.bad || ln > uint64(len(d.b)-d.off) {
		d.bad = true
		return nil
	}
	b := d.b[d.off : d.off+int(ln) : d.off+int(ln)]
	d.off += int(ln)
	return b
}

func (d *fieldDecoder) done() bool { return !d.bad && d.off == len(d.b) }

// DecodeHello decodes a Hello payload.
func DecodeHello(payload []byte) (HelloFrame, error) {
	var h HelloFrame
	d := fieldDecoder{b: payload}
	h.Version = d.uvarint()
	h.Tenant = d.str()
	if !d.done() {
		return HelloFrame{}, ErrBadPayload
	}
	return h, nil
}

// DecodeReq decodes a request payload into r. The Payload field aliases the
// input buffer.
func DecodeReq(payload []byte, r *ReqFrame) error {
	d := fieldDecoder{b: payload}
	r.ID = d.uvarint()
	r.Tenant = d.str()
	r.Mount = d.str()
	op := core.Op(d.byte())
	r.Op = op
	r.Path = d.str()
	r.Key = d.str()
	r.Offset = d.varint()
	r.Size = d.varint()
	r.Prog = d.str()
	r.Payload = d.bytes()
	if !d.done() || op > maxWireOp {
		*r = ReqFrame{}
		return ErrBadPayload
	}
	return nil
}

// DecodeResp decodes a response payload into r. Value aliases the input.
func DecodeResp(payload []byte, r *RespFrame) error {
	d := fieldDecoder{b: payload}
	r.ID = d.uvarint()
	ok := d.byte()
	r.Result = d.varint()
	r.Err = d.str()
	r.Value = d.bytes()
	if !d.done() || ok > 1 {
		*r = RespFrame{}
		return ErrBadPayload
	}
	r.OK = ok == 1
	return nil
}

// DecodeBusy decodes a busy payload.
func DecodeBusy(payload []byte) (BusyFrame, error) {
	var b BusyFrame
	d := fieldDecoder{b: payload}
	b.ID = d.uvarint()
	b.Reason = d.byte()
	b.RetryNs = d.varint()
	if !d.done() || b.Reason < BusyRate || b.Reason > BusyOverload {
		return BusyFrame{}, ErrBadPayload
	}
	return b, nil
}

// DecodePing decodes a ping/pong payload (the echoed id).
func DecodePing(payload []byte) (uint64, error) {
	d := fieldDecoder{b: payload}
	id := d.uvarint()
	if !d.done() {
		return 0, ErrBadPayload
	}
	return id, nil
}
