package serve

import (
	"bytes"
	"testing"

	"labstor/internal/core"
)

// FuzzFrameDecode throws arbitrary bytes at the frame splitter and every
// payload decoder. Properties: no panics, no reads past the buffer, and any
// request/response payload that decodes successfully re-encodes to a frame
// that decodes back to the same fields (the codec is a bijection on its
// valid subset).
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: "seed"}))
	f.Add(AppendReq(nil, &ReqFrame{
		ID: 7, Tenant: "t", Mount: "kv::/b", Op: core.OpPut, Key: "k",
		Offset: 123, Size: 16, Payload: []byte("0123456789abcdef"),
	}))
	f.Add(AppendReq(nil, &ReqFrame{
		ID: 8, Tenant: "t", Mount: "kv::/b", Op: core.OpScan, Key: "pfx",
		Prog: "pd:0011223344556677",
	}))
	f.Add(AppendResp(nil, &RespFrame{ID: 9, OK: true, Result: 16, Value: []byte("value")}))
	f.Add(AppendResp(nil, &RespFrame{ID: 10, Err: "boom"}))
	f.Add(AppendBusy(nil, &BusyFrame{ID: 3, Reason: BusyInflight, RetryNs: 50000}))
	f.Add(AppendPing(nil, FramePong, 1))
	f.Add([]byte{frameMagic})
	f.Add(bytes.Repeat([]byte{frameMagic, FrameReq, 0xFF}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		// Walk at most a handful of frames so adversarial inputs with many
		// tiny frames stay cheap.
		for i := 0; i < 16 && len(rest) > 0; i++ {
			typ, payload, nrest, err := DecodeFrame(rest, 1<<16)
			if err != nil {
				break
			}
			if len(nrest) >= len(rest) {
				t.Fatalf("DecodeFrame made no progress (%d -> %d bytes)", len(rest), len(nrest))
			}
			rest = nrest
			switch typ {
			case FrameHello:
				if h, err := DecodeHello(payload); err == nil {
					b := AppendHello(nil, &h)
					_, p2, _, err := DecodeFrame(b, 0)
					if err != nil {
						t.Fatalf("re-encode hello: %v", err)
					}
					h2, err := DecodeHello(p2)
					if err != nil || h2 != h {
						t.Fatalf("hello round trip: %+v != %+v (%v)", h2, h, err)
					}
				}
			case FrameReq:
				var r ReqFrame
				if err := DecodeReq(payload, &r); err == nil {
					b := AppendReq(nil, &r)
					_, p2, _, err := DecodeFrame(b, 0)
					if err != nil {
						t.Fatalf("re-encode req: %v", err)
					}
					var r2 ReqFrame
					if err := DecodeReq(p2, &r2); err != nil {
						t.Fatalf("re-decode req: %v", err)
					}
					if r2.ID != r.ID || r2.Tenant != r.Tenant || r2.Mount != r.Mount ||
						r2.Op != r.Op || r2.Path != r.Path || r2.Key != r.Key ||
						r2.Offset != r.Offset || r2.Size != r.Size || r2.Prog != r.Prog ||
							!bytes.Equal(r2.Payload, r.Payload) {
						t.Fatalf("req round trip: %+v != %+v", r2, r)
					}
				}
			case FrameResp:
				var r RespFrame
				if err := DecodeResp(payload, &r); err == nil {
					b := AppendResp(nil, &r)
					_, p2, _, err := DecodeFrame(b, 0)
					if err != nil {
						t.Fatalf("re-encode resp: %v", err)
					}
					var r2 RespFrame
					if err := DecodeResp(p2, &r2); err != nil {
						t.Fatalf("re-decode resp: %v", err)
					}
					if r2.ID != r.ID || r2.OK != r.OK || r2.Result != r.Result ||
						r2.Err != r.Err || !bytes.Equal(r2.Value, r.Value) {
						t.Fatalf("resp round trip: %+v != %+v", r2, r)
					}
				}
			case FrameBusy:
				if b, err := DecodeBusy(payload); err == nil {
					enc := AppendBusy(nil, &b)
					_, p2, _, err := DecodeFrame(enc, 0)
					if err != nil {
						t.Fatalf("re-encode busy: %v", err)
					}
					if b2, err := DecodeBusy(p2); err != nil || b2 != b {
						t.Fatalf("busy round trip: %+v != %+v (%v)", b2, b, err)
					}
				}
			case FramePing, FramePong:
				_, _ = DecodePing(payload)
			}
		}
	})
}
