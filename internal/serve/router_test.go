package serve

import (
	"fmt"
	"strings"
	"testing"

	"labstor/internal/core"
	"labstor/internal/telemetry"
)

func TestRouteKey(t *testing.T) {
	cases := map[string]string{
		"kv::/bench":           "kv::/bench",
		"kv::/bench/deep/path": "kv::/bench",
		"fs::/tenants/a/x.dat": "fs::/tenants",
		"msg::/hot":            "msg::/hot",
		"noscheme":             "noscheme",
		"kv::":                 "kv::/",
	}
	for mount, want := range cases {
		if got := RouteKey(mount); got != want {
			t.Errorf("RouteKey(%q) = %q, want %q", mount, got, want)
		}
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	backends := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}
	r := NewRing(backends, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("kv::/ns-%d", i)
		b := r.Lookup(key)
		if b2 := r.Lookup(key); b2 != b {
			t.Fatalf("lookup not deterministic: %q vs %q", b, b2)
		}
		counts[b]++
	}
	for _, b := range backends {
		if counts[b] < 300 {
			t.Fatalf("backend %s owns only %d/3000 keys: %v", b, counts[b], counts)
		}
	}
}

func TestRingStabilityOnBackendRemoval(t *testing.T) {
	// Consistent hashing: dropping one of four backends must remap only the
	// removed backend's keys, never shuffle keys between survivors.
	all := []string{"a:1", "b:1", "c:1", "d:1"}
	before := NewRing(all, 0)
	after := NewRing(all[:3], 0)
	moved := 0
	const n = 4000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("kv::/ns-%d", i)
		was, is := before.Lookup(key), after.Lookup(key)
		if was == "d:1" {
			continue // its keys must move somewhere
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving backends", moved)
	}
}

func TestRouterShardsAcrossBackends(t *testing.T) {
	// Two real runtimes, each serving every mount; the router must split
	// distinct namespace prefixes between them and round-trip responses
	// with correct id rewriting.
	_, _, addr1 := newTestServer(t, Config{})
	_, _, addr2 := newTestServer(t, Config{})

	reg := telemetry.NewRegistry()
	router := NewRouter([]string{addr1, addr2}, 0, reg)
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	c, err := Dial(raddr.String(), "t1")
	if err != nil {
		t.Fatalf("dial router: %v", err)
	}
	defer c.Close()

	// Both test mounts exist on both backends; whatever the ring picks, the
	// round trip must succeed and values must come back intact.
	const n = 64
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rk-%d", i)
		val := []byte(fmt.Sprintf("routed-value-%d", i))
		res, err := c.Do(&ReqFrame{Op: core.OpPut, Mount: "kv::/bench", Key: key, Payload: val})
		if err != nil || res.Err() != nil {
			t.Fatalf("put via router: %v / %v", err, res.Err())
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rk-%d", i)
		res, err := c.Do(&ReqFrame{Op: core.OpGet, Mount: "kv::/bench", Key: key})
		if err != nil || res.Err() != nil {
			t.Fatalf("get via router: %v / %v", err, res.Err())
		}
		want := fmt.Sprintf("routed-value-%d", i)
		if got := string(res.Resp.Value[:res.Resp.Result]); got != want {
			t.Fatalf("get %q = %q, want %q", key, got, want)
		}
	}
	// Message traffic hashes independently of kv traffic.
	results, err := c.Pipeline(func() []ReqFrame {
		rfs := make([]ReqFrame, 32)
		for i := range rfs {
			rfs[i] = ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}
		}
		return rfs
	}())
	if err != nil {
		t.Fatalf("pipeline via router: %v", err)
	}
	for i, r := range results {
		if e := r.Err(); e != nil {
			t.Fatalf("msg %d via router: %v", i, e)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping via router: %v", err)
	}

	snap := reg.Snapshot()
	if snap.Counters["router.frames_forwarded"] < 2*n {
		t.Fatalf("frames_forwarded = %d, want >= %d", snap.Counters["router.frames_forwarded"], 2*n)
	}
	var backendsHit int
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "router.backend_ops;backend=") && v > 0 {
			backendsHit++
		}
	}
	// kv::/bench and msg::/hot are two distinct route keys over a 2-backend
	// ring; with 64 vnodes each they land on... wherever FNV puts them. At
	// least one backend serves traffic; both when the keys split.
	if backendsHit == 0 {
		t.Fatal("no backend_ops series recorded")
	}
}

func TestRouterTenantAttribution(t *testing.T) {
	// The router's upstream Hello presents "router", so per-request tenant
	// fields must carry the real tenant to backend admission.
	rt, _, addr := newTestServer(t, Config{
		Tenants: []TenantPolicy{{Name: "strict", RatePerSec: 1, Burst: 1}},
	})
	router := NewRouter([]string{addr}, 0, nil)
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	c, err := Dial(raddr.String(), "strict")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}); err != nil || res.Err() != nil {
		t.Fatalf("first op: %v / %v", err, res.Err())
	}
	res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"})
	if err != nil {
		t.Fatalf("second op transport: %v", err)
	}
	if !res.Busy || res.Reason != BusyRate {
		t.Fatalf("want BusyRate through router, got %+v", res)
	}
	snap := rt.Metrics().Snapshot()
	if snap.Counters["serve.tenant_admitted;tenant=strict"] == 0 {
		t.Fatal("backend did not attribute tenant across the router mux")
	}
}

func TestRouterShardLoss(t *testing.T) {
	// A dead backend yields explicit error responses, not hangs, and the
	// router connection stays usable for reachable shards.
	_, srv, addr := newTestServer(t, Config{})
	router := NewRouter([]string{addr}, 0, nil)
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	c, err := Dial(raddr.String(), "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}); err != nil || res.Err() != nil {
		t.Fatalf("warmup: %v / %v", err, res.Err())
	}

	srv.Close() // kill the only shard
	var sawErr bool
	for i := 0; i < 20; i++ {
		res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"})
		if err != nil {
			t.Fatalf("transport died instead of error resp: %v", err)
		}
		if e := res.Err(); e != nil && strings.Contains(e.Error(), "shard") {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no shard-loss error surfaced")
	}
}
