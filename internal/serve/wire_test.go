package serve

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"labstor/internal/core"
)

func TestReqRoundTrip(t *testing.T) {
	in := ReqFrame{
		ID: 42, Tenant: "gold", Mount: "kv::/bench", Op: core.OpPut,
		Path: "a/b.txt", Key: "user:7", Offset: -512, Size: 4096,
		Payload: []byte("hello payload"),
	}
	b := AppendReq(nil, &in)
	typ, payload, rest, err := DecodeFrame(b, 0)
	if err != nil || typ != FrameReq || len(rest) != 0 {
		t.Fatalf("DecodeFrame: typ=%d rest=%d err=%v", typ, len(rest), err)
	}
	var out ReqFrame
	if err := DecodeReq(payload, &out); err != nil {
		t.Fatalf("DecodeReq: %v", err)
	}
	if out.ID != in.ID || out.Tenant != in.Tenant || out.Mount != in.Mount ||
		out.Op != in.Op || out.Path != in.Path || out.Key != in.Key ||
		out.Offset != in.Offset || out.Size != in.Size || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestRespBusyHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: "t1"})
	b = AppendResp(b, &RespFrame{ID: 7, OK: true, Result: 99, Value: []byte{1, 2, 3}})
	b = AppendResp(b, &RespFrame{ID: 8, OK: false, Err: "no such key"})
	b = AppendBusy(b, &BusyFrame{ID: 9, Reason: BusyRate, RetryNs: 1500})
	b = AppendPing(b, FramePing, 11)

	typ, payload, b, err := DecodeFrame(b, 0)
	if err != nil || typ != FrameHello {
		t.Fatalf("hello: typ=%d err=%v", typ, err)
	}
	h, err := DecodeHello(payload)
	if err != nil || h.Version != ProtoVersion || h.Tenant != "t1" {
		t.Fatalf("hello decode: %+v err=%v", h, err)
	}

	typ, payload, b, err = DecodeFrame(b, 0)
	if err != nil || typ != FrameResp {
		t.Fatalf("resp1: %v", err)
	}
	var r RespFrame
	if err := DecodeResp(payload, &r); err != nil || !r.OK || r.ID != 7 || r.Result != 99 || !bytes.Equal(r.Value, []byte{1, 2, 3}) {
		t.Fatalf("resp1 decode: %+v err=%v", r, err)
	}

	typ, payload, b, err = DecodeFrame(b, 0)
	if err != nil || typ != FrameResp {
		t.Fatalf("resp2: %v", err)
	}
	if err := DecodeResp(payload, &r); err != nil || r.OK || r.Err != "no such key" {
		t.Fatalf("resp2 decode: %+v err=%v", r, err)
	}

	typ, payload, b, err = DecodeFrame(b, 0)
	if err != nil || typ != FrameBusy {
		t.Fatalf("busy: %v", err)
	}
	bf, err := DecodeBusy(payload)
	if err != nil || bf.ID != 9 || bf.Reason != BusyRate || bf.RetryNs != 1500 {
		t.Fatalf("busy decode: %+v err=%v", bf, err)
	}

	typ, payload, b, err = DecodeFrame(b, 0)
	if err != nil || typ != FramePing {
		t.Fatalf("ping: %v", err)
	}
	if id, err := DecodePing(payload); err != nil || id != 11 {
		t.Fatalf("ping decode: id=%d err=%v", id, err)
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
}

func TestDecodeFrameTorn(t *testing.T) {
	good := AppendReq(nil, &ReqFrame{ID: 1, Mount: "m", Op: core.OpNop})

	// Truncations at every length short of the full frame are torn.
	for n := 0; n < len(good); n++ {
		if _, _, _, err := DecodeFrame(good[:n], 0); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Any single-byte corruption is detected (magic, type, length, CRC or
	// payload — the CRC catches the payload flips).
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		_, _, _, err := DecodeFrame(bad, 0)
		if err == nil {
			// A corrupted length that still parses must not read past the
			// buffer; DecodeFrame returning nil error here means the flip
			// produced a different valid frame, which CRC makes impossible.
			t.Fatalf("corruption at byte %d decoded", i)
		}
	}
}

func TestDecodeFrameSizeLimit(t *testing.T) {
	big := AppendReq(nil, &ReqFrame{ID: 1, Mount: "m", Payload: make([]byte, 2048)})
	if _, _, _, err := DecodeFrame(big, 1024); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("want ErrFrameSize, got %v", err)
	}
	if _, _, _, err := DecodeFrame(big, 4096); err != nil {
		t.Fatalf("within limit: %v", err)
	}
}

func TestDecodeReqRejectsUnknownOp(t *testing.T) {
	b := AppendReq(nil, &ReqFrame{ID: 1, Mount: "m", Op: core.Op(200)})
	_, payload, _, err := DecodeFrame(b, 0)
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	var r ReqFrame
	if err := DecodeReq(payload, &r); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("want ErrBadPayload for op 200, got %v", err)
	}
}

func TestReadFrameStream(t *testing.T) {
	var wire []byte
	want := []uint64{1, 2, 3, 4}
	for _, id := range want {
		wire = AppendReq(wire, &ReqFrame{ID: id, Mount: "fs::/x", Op: core.OpRead, Size: 64})
	}
	br := bufio.NewReaderSize(bytes.NewReader(wire), 16) // tiny buffer forces refills
	var buf []byte
	for _, id := range want {
		typ, payload, nbuf, err := ReadFrame(br, buf, 0)
		if err != nil || typ != FrameReq {
			t.Fatalf("ReadFrame: typ=%d err=%v", typ, err)
		}
		buf = nbuf
		var r ReqFrame
		if err := DecodeReq(payload, &r); err != nil || r.ID != id {
			t.Fatalf("id=%d want %d err=%v", r.ID, id, err)
		}
	}
	if _, _, _, err := ReadFrame(br, buf, 0); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReadFrameCorrupt(t *testing.T) {
	wire := AppendReq(nil, &ReqFrame{ID: 1, Mount: "m", Payload: []byte("abcdef")})
	wire[len(wire)-1] ^= 0xFF
	if _, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), nil, 0); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("want ErrTornFrame, got %v", err)
	}
}
