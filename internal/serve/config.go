package serve

import (
	"labstor/internal/mods/pushdown"
	"labstor/internal/spec"
)

// PolicyFromSpec converts one serve-block tenant entry into an admission
// policy.
func PolicyFromSpec(ts spec.TenantSpec) TenantPolicy {
	return TenantPolicy{
		Name:       ts.Name,
		RatePerSec: ts.RatePerSec,
		Burst:      ts.Burst,
		Inflight:   ts.Inflight,
	}
}

// ConfigFromSpec converts a parsed serve: block into a server Config.
// Shards/Replicas are router-mode fields the caller dispatches on; they have
// no server-side equivalent here.
func ConfigFromSpec(sv spec.ServeSpec) Config {
	cfg := Config{
		Addr:         sv.Addr,
		Batch:        sv.Batch,
		DemandPollMs: sv.DemandPollMs,
		Default:      PolicyFromSpec(sv.Default),
	}
	if sv.MaxPayloadMB > 0 {
		cfg.MaxPayload = sv.MaxPayloadMB << 20
	}
	for _, ts := range sv.Tenants {
		cfg.Tenants = append(cfg.Tenants, PolicyFromSpec(ts))
	}
	return cfg
}

// WithPushdown builds the pushdown policy from a parsed pushdown: block
// (registering its programs into the default registry) and attaches it to
// the config. A spec with no programs and no allow-list attaches nothing:
// the server keeps rejecting remote programs.
func (c *Config) WithPushdown(ps spec.PushdownSpec) error {
	if len(ps.Programs) == 0 && len(ps.Allow) == 0 && len(ps.Tenants) == 0 {
		return nil
	}
	pol, err := pushdown.PolicyFromSpec(ps, nil)
	if err != nil {
		return err
	}
	c.Pushdown = pol
	return nil
}
