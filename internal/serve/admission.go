package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/telemetry"
)

// TenantPolicy is the per-tenant QoS contract at the serving edge — the
// policy half of PAIO's policy/mechanism split. The mechanism (token bucket
// + inflight counter + BUSY frames) is uniform; the numbers differ per
// tenant.
type TenantPolicy struct {
	Name string
	// RatePerSec caps sustained admitted ops/s (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket depth (0 = max(RatePerSec/10, 32)).
	Burst float64
	// Inflight caps the tenant's outstanding (admitted, not yet completed)
	// requests across all connections (0 = server default).
	Inflight int
}

// Admission is the serving front end's multi-tenant admission controller:
// per-tenant token buckets and inflight caps, with the inflight budget
// scaled down under measured runtime overload (the orchestrator's per-queue
// demand estimates, fed via SetPressure). Rejections are explicit — the
// server answers BUSY frames instead of queueing without bound.
type Admission struct {
	def            TenantPolicy // defaults for tenants without a policy
	defaultBudget  int          // server-default inflight cap
	minInflight    int          // floor the pressure scaler never goes below
	mu             sync.Mutex
	tenants        map[string]*tenantState
	pressureMilli  atomic.Int64 // runtime demand / capacity, in 1/1000ths
	metrics        *telemetry.Registry
	mBusyRate      *telemetry.Counter
	mBusyInflight  *telemetry.Counter
	mBusyOverload  *telemetry.Counter
	gPressureMilli *telemetry.Gauge
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	policy TenantPolicy

	mu     sync.Mutex
	tokens float64
	last   time.Time

	inflight atomic.Int64

	// Cached per-tenant telemetry series (`;tenant=` labels render as one
	// Prometheus family with a tenant label).
	mAdmitted *telemetry.Counter
	mBusy     *telemetry.Counter
	gInflight *telemetry.Gauge
}

// NewAdmission builds an admission controller. tenants lists the explicit
// per-tenant policies; def fills gaps (def.Inflight 0 = 256). reg receives
// the serve.tenant_* series and may be shared with the runtime registry.
func NewAdmission(def TenantPolicy, tenants []TenantPolicy, reg *telemetry.Registry) *Admission {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	budget := def.Inflight
	if budget <= 0 {
		budget = 256
	}
	a := &Admission{
		def:            def,
		defaultBudget:  budget,
		minInflight:    8,
		tenants:        make(map[string]*tenantState),
		metrics:        reg,
		mBusyRate:      reg.Counter("serve.busy_rate"),
		mBusyInflight:  reg.Counter("serve.busy_inflight"),
		mBusyOverload:  reg.Counter("serve.busy_overload"),
		gPressureMilli: reg.Gauge("serve.pressure_milli"),
	}
	for _, p := range tenants {
		if p.Name == "" {
			continue
		}
		a.tenants[p.Name] = a.newState(p)
	}
	return a
}

func (a *Admission) newState(p TenantPolicy) *tenantState {
	if p.Inflight <= 0 {
		p.Inflight = a.defaultBudget
	}
	if p.RatePerSec > 0 && p.Burst <= 0 {
		p.Burst = math.Max(p.RatePerSec/10, 32)
	}
	return &tenantState{
		policy:    p,
		tokens:    p.Burst,
		last:      time.Now(),
		mAdmitted: a.metrics.Counter("serve.tenant_admitted;tenant=" + p.Name),
		mBusy:     a.metrics.Counter("serve.tenant_busy;tenant=" + p.Name),
		gInflight: a.metrics.Gauge("serve.tenant_inflight;tenant=" + p.Name),
	}
}

// Tenant returns (creating on first use) the named tenant's state. Unknown
// tenants get the default policy — multi-tenancy is open-enrollment at the
// edge; explicit policies only tighten it.
func (a *Admission) Tenant(name string) *tenantState {
	if name == "" {
		name = "default"
	}
	a.mu.Lock()
	ts, ok := a.tenants[name]
	if !ok {
		p := a.def
		p.Name = name
		ts = a.newState(p)
		a.tenants[name] = ts
	}
	a.mu.Unlock()
	return ts
}

// SetPressure feeds the runtime saturation estimate: demand is the sum of
// the orchestrator's per-queue utilization rates (cores' worth of measured
// CPU demand), capacity the worker count. pressure > 1 means the runtime is
// over-committed; inflight budgets shrink proportionally so the wire sheds
// load (BUSY) instead of stacking requests onto saturated queues.
func (a *Admission) SetPressure(demand, capacity float64) {
	if capacity <= 0 {
		capacity = 1
	}
	p := demand / capacity
	a.pressureMilli.Store(int64(p * 1000))
	a.gPressureMilli.Set(int64(p * 1000))
}

// effectiveInflight is the tenant's inflight cap after pressure scaling.
func (a *Admission) effectiveInflight(ts *tenantState) int {
	capacity := ts.policy.Inflight
	p := float64(a.pressureMilli.Load()) / 1000
	if p <= 1 {
		return capacity
	}
	eff := int(float64(capacity) / p)
	if eff < a.minInflight {
		eff = a.minInflight
	}
	return eff
}

// Admit asks to queue one request for the tenant. On success the tenant's
// inflight count is charged (undo with Done when the response is sent). On
// rejection it returns the BUSY reason and a retry hint.
func (a *Admission) Admit(ts *tenantState) (ok bool, reason byte, retryNs int64) {
	// Inflight cap first: it bounds memory/queue footprint, and a rejected
	// request should not consume rate tokens.
	eff := a.effectiveInflight(ts)
	if n := ts.inflight.Add(1); int(n) > eff {
		ts.inflight.Add(-1)
		ts.mBusy.Inc()
		if eff < ts.policy.Inflight {
			a.mBusyOverload.Inc()
			return false, BusyOverload, int64(time.Millisecond)
		}
		a.mBusyInflight.Inc()
		// Retry after roughly one request's worth of drain time; clients
		// with many outstanding ops back off harder via their own windows.
		return false, BusyInflight, int64(200 * time.Microsecond)
	}

	if ts.policy.RatePerSec > 0 {
		ts.mu.Lock()
		now := time.Now()
		ts.tokens += now.Sub(ts.last).Seconds() * ts.policy.RatePerSec
		ts.last = now
		if ts.tokens > ts.policy.Burst {
			ts.tokens = ts.policy.Burst
		}
		if ts.tokens < 1 {
			deficit := 1 - ts.tokens
			ts.mu.Unlock()
			ts.inflight.Add(-1)
			ts.mBusy.Inc()
			a.mBusyRate.Inc()
			return false, BusyRate, int64(deficit / ts.policy.RatePerSec * float64(time.Second))
		}
		ts.tokens--
		ts.mu.Unlock()
	}

	ts.mAdmitted.Inc()
	ts.gInflight.Set(ts.inflight.Load())
	return true, 0, 0
}

// Done releases one admitted request's inflight charge.
func (a *Admission) Done(ts *tenantState) {
	ts.gInflight.Set(ts.inflight.Add(-1))
}

// Inflight returns the tenant's current outstanding count (tests/metrics).
func (ts *tenantState) Inflight() int64 { return ts.inflight.Load() }

// Policy returns the tenant's resolved policy.
func (ts *tenantState) Policy() TenantPolicy { return ts.policy }
