package serve

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"labstor/internal/telemetry"
)

// RouteKey reduces a request's mount path to its sharding key: the
// namespace scheme plus the first path component, so everything under one
// tenant/namespace prefix ("fs::/tenants/a/...") lands on the same shard
// while distinct prefixes spread across the ring.
func RouteKey(mount string) string {
	i := strings.Index(mount, "::")
	if i < 0 {
		return mount
	}
	rest := strings.TrimPrefix(mount[i+2:], "/")
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return mount[:i+2] + "/" + rest
}

// Ring is a consistent-hash ring over backend addresses: each backend owns
// `replicas` virtual points, keys map to the first point clockwise. Adding
// or removing one backend moves only ~1/N of the keyspace.
type Ring struct {
	points   []ringPoint
	backends []string
}

type ringPoint struct {
	hash uint32
	idx  int
}

// ringHash hashes a string onto the ring. FNV-32a alone clusters
// near-identical strings ("msg::/s0".."msg::/s15" differ only in a
// trailing digit, so their hashes land within a narrow band of the
// keyspace); the murmur3 finalizer avalanches the bits so similar keys
// and vnode labels spread uniformly.
func ringHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// NewRing builds a ring (replicas 0 = 64 virtual points per backend).
func NewRing(backends []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{backends: append([]string(nil), backends...)}
	for i, b := range r.backends {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", b, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Lookup returns the backend serving key.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	hv := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hv })
	if i == len(r.points) {
		i = 0
	}
	return r.backends[r.points[i].idx]
}

// Backends returns the ring's backend list.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Router is the thin shard-routing proxy: client connections speak the
// same wire protocol, and each request is forwarded to the backend owning
// its mount's RouteKey. Upstream connections are shared (muxed) across
// client connections with request-id rewriting, so N clients cost
// O(backends) upstream sockets, not O(N x backends).
type Router struct {
	ring    *Ring
	tenant  string // tenant the router's upstream Hellos present
	metrics *telemetry.Registry

	ln        net.Listener
	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	upstreams map[string]*upstream
	nextGID   atomic.Uint64

	mForwarded *telemetry.Counter
	mUpErrors  *telemetry.Counter
	gConns     *telemetry.Gauge
}

// NewRouter builds a router over the backend set. reg may be nil (a
// private registry is created); pass a runtime's registry to surface
// router.* series on an existing /metrics plane.
func NewRouter(backends []string, replicas int, reg *telemetry.Registry) *Router {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Router{
		ring:       NewRing(backends, replicas),
		tenant:     "router",
		metrics:    reg,
		quit:       make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
		upstreams:  make(map[string]*upstream),
		mForwarded: reg.Counter("router.frames_forwarded"),
		mUpErrors:  reg.Counter("router.upstream_errors"),
		gConns:     reg.Gauge("router.connections"),
	}
}

// Ring exposes the routing ring (tests, labctl).
func (r *Router) Ring() *Ring { return r.ring }

// Metrics exposes the router's registry.
func (r *Router) Metrics() *telemetry.Registry { return r.metrics }

// ListenAndServe binds addr and starts proxying; returns the bound address.
func (r *Router) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	return ln.Addr(), nil
}

// Close stops the router and closes every client and upstream connection.
func (r *Router) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.quit)
		if r.ln != nil {
			err = r.ln.Close()
		}
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		ups := make([]*upstream, 0, len(r.upstreams))
		for _, u := range r.upstreams {
			ups = append(ups, u)
		}
		r.mu.Unlock()
		for _, u := range ups {
			u.close()
		}
		r.wg.Wait()
	})
	return err
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		r.mu.Lock()
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.gConns.Add(1)
		r.wg.Add(1)
		go r.handleConn(conn)
	}
}

// clientConn is one proxied client connection's write side.
type clientConn struct {
	writeCh chan []byte
	done    chan struct{}
}

// send delivers a client-bound frame unless the connection is gone.
func (cc *clientConn) send(b []byte) {
	select {
	case cc.writeCh <- b:
	case <-cc.done:
	}
}

func (r *Router) handleConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		r.gConns.Add(-1)
		conn.Close()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, buf, err := ReadFrame(br, nil, DefaultMaxPayload)
	if err != nil || typ != FrameHello {
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil || hello.Version != ProtoVersion {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if _, err := conn.Write(AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: hello.Tenant})); err != nil {
		return
	}

	cc := &clientConn{writeCh: make(chan []byte, 256), done: make(chan struct{})}

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriterSize(conn, 64<<10)
		dead := false
		for {
			select {
			case out := <-cc.writeCh:
				if dead {
					continue
				}
				if _, err := bw.Write(out); err != nil {
					dead = true
					continue
				}
				if len(cc.writeCh) == 0 {
					if err := bw.Flush(); err != nil {
						dead = true
					}
				}
			case <-cc.done:
				if !dead {
					bw.Flush()
				}
				return
			}
		}
	}()
	// Stop the writer before waiting on it (defers run LIFO after this one).
	defer func() {
		close(cc.done)
		writerWG.Wait()
	}()

	var rf ReqFrame
	for {
		typ, payload, nbuf, err := ReadFrame(br, buf, DefaultMaxPayload)
		if err != nil {
			return
		}
		buf = nbuf
		switch typ {
		case FramePing:
			id, err := DecodePing(payload)
			if err != nil {
				return
			}
			cc.send(AppendPing(nil, FramePong, id))
			continue
		case FrameReq:
		default:
			return
		}
		if err := DecodeReq(payload, &rf); err != nil {
			return
		}
		// Tenant travels per-frame across the mux; fill the connection
		// default in so backend admission attributes the right tenant.
		if rf.Tenant == "" {
			rf.Tenant = hello.Tenant
		}
		backend := r.ring.Lookup(RouteKey(rf.Mount))
		u, err := r.upstream(backend)
		if err != nil {
			r.mUpErrors.Inc()
			cc.send(AppendResp(nil, &RespFrame{ID: rf.ID, Err: fmt.Sprintf("shard %s unreachable: %v", backend, err)}))
			continue
		}
		if err := u.forward(&rf, cc, br.Buffered() == 0); err != nil {
			r.mUpErrors.Inc()
			r.dropUpstream(backend, u)
			cc.send(AppendResp(nil, &RespFrame{ID: rf.ID, Err: fmt.Sprintf("shard %s write failed: %v", backend, err)}))
		}
	}
}

// upstream returns (dialing on first use) the shared connection to backend.
func (r *Router) upstream(backend string) (*upstream, error) {
	r.mu.Lock()
	u, ok := r.upstreams[backend]
	r.mu.Unlock()
	if ok {
		return u, nil
	}
	nu, err := r.dialUpstream(backend)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if cur, ok := r.upstreams[backend]; ok {
		r.mu.Unlock()
		nu.close()
		return cur, nil
	}
	r.upstreams[backend] = nu
	r.mu.Unlock()
	return nu, nil
}

func (r *Router) dropUpstream(backend string, u *upstream) {
	r.mu.Lock()
	if r.upstreams[backend] == u {
		delete(r.upstreams, backend)
	}
	r.mu.Unlock()
	u.close()
}

// upstream is one shared backend connection: requests from many client
// connections mux onto it with globally-unique rewritten ids, and the
// reader demuxes completions back to their owners.
type upstream struct {
	r       *Router
	backend string
	conn    net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte

	pmu     sync.Mutex
	pending map[uint64]pendingRoute
	closed  bool

	mOps *telemetry.Counter
}

// pendingRoute maps a rewritten (global) id back to its owner.
type pendingRoute struct {
	cc *clientConn
	id uint64 // the client's original request id
}

func (r *Router) dialUpstream(backend string) (*upstream, error) {
	nc, err := net.DialTimeout("tcp", backend, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := nc.Write(AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: r.tenant})); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, _, err := ReadFrame(br, nil, DefaultMaxPayload)
	if err != nil || typ != FrameHello {
		nc.Close()
		return nil, fmt.Errorf("handshake: %v", err)
	}
	if _, err := DecodeHello(payload); err != nil {
		nc.Close()
		return nil, fmt.Errorf("handshake: %v", err)
	}
	nc.SetReadDeadline(time.Time{})

	u := &upstream{
		r:       r,
		backend: backend,
		conn:    nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]pendingRoute),
		mOps:    r.metrics.Counter("router.backend_ops;backend=" + backend),
	}
	r.wg.Add(1)
	go u.readLoop(br)
	return u, nil
}

// forward rewrites the request id and writes the frame upstream, flushing
// when the client's read side has gone momentarily idle.
func (u *upstream) forward(rf *ReqFrame, cc *clientConn, flush bool) error {
	gid := u.r.nextGID.Add(1)
	u.pmu.Lock()
	if u.closed {
		u.pmu.Unlock()
		return ErrConnClosed
	}
	u.pending[gid] = pendingRoute{cc: cc, id: rf.ID}
	u.pmu.Unlock()

	orig := rf.ID
	rf.ID = gid
	u.wmu.Lock()
	u.enc = AppendReq(u.enc[:0], rf)
	_, err := u.bw.Write(u.enc)
	if err == nil && flush {
		err = u.bw.Flush()
	}
	u.wmu.Unlock()
	rf.ID = orig
	if err != nil {
		u.pmu.Lock()
		delete(u.pending, gid)
		u.pmu.Unlock()
		return err
	}
	u.r.mForwarded.Inc()
	u.mOps.Inc()
	return nil
}

// readLoop demuxes backend completions to their client connections,
// rewriting ids back.
func (u *upstream) readLoop(br *bufio.Reader) {
	defer u.r.wg.Done()
	var buf []byte
	for {
		typ, payload, nbuf, err := ReadFrame(br, buf, DefaultMaxPayload)
		if err != nil {
			break
		}
		buf = nbuf
		var gid uint64
		var out func(origID uint64) []byte
		switch typ {
		case FrameResp:
			var rf RespFrame
			if err := DecodeResp(payload, &rf); err != nil {
				goto done
			}
			gid = rf.ID
			out = func(origID uint64) []byte {
				rf.ID = origID
				return AppendResp(nil, &rf)
			}
		case FrameBusy:
			bf, err := DecodeBusy(payload)
			if err != nil {
				goto done
			}
			gid = bf.ID
			out = func(origID uint64) []byte {
				bf.ID = origID
				return AppendBusy(nil, &bf)
			}
		default:
			continue // pongs etc. have no route
		}
		u.pmu.Lock()
		route, ok := u.pending[gid]
		delete(u.pending, gid)
		u.pmu.Unlock()
		if ok {
			route.cc.send(out(route.id))
		}
	}
done:
	// Upstream died: every outstanding request gets an explicit error so
	// clients never hang on a vanished shard.
	u.pmu.Lock()
	u.closed = true
	routes := make([]pendingRoute, 0, len(u.pending))
	for _, rt := range u.pending {
		routes = append(routes, rt)
	}
	u.pending = map[uint64]pendingRoute{}
	u.pmu.Unlock()
	for _, rt := range routes {
		rt.cc.send(AppendResp(nil, &RespFrame{ID: rt.id, Err: "shard connection lost: " + u.backend}))
	}
	u.r.dropUpstream(u.backend, u)
}

func (u *upstream) close() {
	u.pmu.Lock()
	u.closed = true
	u.pmu.Unlock()
	u.conn.Close()
}
