package serve

import (
	"sync"
	"testing"
	"time"

	"labstor/internal/telemetry"
)

func TestAdmissionInflightCap(t *testing.T) {
	a := NewAdmission(TenantPolicy{Inflight: 4}, nil, nil)
	ts := a.Tenant("t")
	for i := 0; i < 4; i++ {
		if ok, reason, _ := a.Admit(ts); !ok {
			t.Fatalf("admit %d rejected (%s)", i, BusyReasonString(reason))
		}
	}
	ok, reason, retry := a.Admit(ts)
	if ok || reason != BusyInflight {
		t.Fatalf("want BusyInflight at cap, got ok=%v reason=%s", ok, BusyReasonString(reason))
	}
	if retry <= 0 {
		t.Fatalf("want positive retry hint, got %d", retry)
	}
	a.Done(ts)
	if ok, _, _ := a.Admit(ts); !ok {
		t.Fatal("admit after Done rejected")
	}
	if got := ts.Inflight(); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	// 100 ops/s with a burst of 5: the first 5 admits drain the bucket,
	// the 6th is BusyRate, and ~50ms refills ~5 more tokens.
	a := NewAdmission(TenantPolicy{Inflight: 1000}, []TenantPolicy{
		{Name: "capped", RatePerSec: 100, Burst: 5},
	}, nil)
	ts := a.Tenant("capped")
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _, _ := a.Admit(ts); ok {
			admitted++
			a.Done(ts)
		}
	}
	if admitted != 5 {
		t.Fatalf("burst admitted %d, want 5", admitted)
	}
	ok, reason, retry := a.Admit(ts)
	if ok || reason != BusyRate {
		t.Fatalf("want BusyRate, got ok=%v reason=%s", ok, BusyReasonString(reason))
	}
	if retry <= 0 || retry > int64(100*time.Millisecond) {
		t.Fatalf("retry hint %dns outside (0, 100ms]", retry)
	}
	time.Sleep(60 * time.Millisecond)
	if ok, _, _ := a.Admit(ts); !ok {
		t.Fatal("no admit after refill window")
	}
	a.Done(ts)
}

func TestAdmissionTenantIsolation(t *testing.T) {
	// One throttled tenant must not affect another's admissions.
	a := NewAdmission(TenantPolicy{Inflight: 100}, []TenantPolicy{
		{Name: "capped", RatePerSec: 1, Burst: 1},
	}, nil)
	capped, open := a.Tenant("capped"), a.Tenant("open")
	if ok, _, _ := a.Admit(capped); !ok {
		t.Fatal("capped first admit rejected")
	}
	a.Done(capped)
	if ok, _, _ := a.Admit(capped); ok {
		t.Fatal("capped second admit should be rate-limited")
	}
	for i := 0; i < 50; i++ {
		if ok, reason, _ := a.Admit(open); !ok {
			t.Fatalf("open admit %d rejected (%s)", i, BusyReasonString(reason))
		}
		a.Done(open)
	}
}

func TestAdmissionPressureShedsLoad(t *testing.T) {
	a := NewAdmission(TenantPolicy{Inflight: 100}, nil, nil)
	ts := a.Tenant("t")

	// Saturated runtime: demand of 8 cores' worth against 2 workers scales
	// the 100-deep budget down to 100/4 = 25.
	a.SetPressure(8, 2)
	admitted := 0
	for i := 0; i < 100; i++ {
		ok, reason, _ := a.Admit(ts)
		if !ok {
			if reason != BusyOverload {
				t.Fatalf("want BusyOverload under pressure, got %s", BusyReasonString(reason))
			}
			break
		}
		admitted++
	}
	if admitted != 25 {
		t.Fatalf("admitted %d under 4x pressure, want 25", admitted)
	}

	// Pressure released: the full budget is back.
	a.SetPressure(1, 2)
	for i := admitted; i < 100; i++ {
		if ok, _, _ := a.Admit(ts); !ok {
			t.Fatalf("admit %d rejected after pressure release", i)
		}
	}
}

func TestAdmissionConcurrentAccounting(t *testing.T) {
	a := NewAdmission(TenantPolicy{Inflight: 64}, nil, nil)
	ts := a.Tenant("t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if ok, _, _ := a.Admit(ts); ok {
					a.Done(ts)
				}
			}
		}()
	}
	wg.Wait()
	if got := ts.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

func TestAdmissionTenantSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := NewAdmission(TenantPolicy{Inflight: 4}, []TenantPolicy{{Name: "gold"}}, reg)
	ts := a.Tenant("gold")
	if ok, _, _ := a.Admit(ts); !ok {
		t.Fatal("admit rejected")
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.tenant_admitted;tenant=gold"] != 1 {
		t.Fatalf("tenant_admitted series missing: %v", snap.Counters)
	}
	if snap.Gauges["serve.tenant_inflight;tenant=gold"] != 1 {
		t.Fatalf("tenant_inflight series missing: %v", snap.Gauges)
	}
}
