package serve

import (
	"bufio"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/runtime"
)

// busyServer is a wire-protocol stub that answers the handshake, rejects
// the first `rejections` requests with BUSY (carrying retryNs as the
// hint), and serves OK responses after that. It makes the DoRetry backoff
// path deterministic — no racing against a real admission controller.
func busyServer(t *testing.T, rejections int, retryNs int64) (addr string, attempts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	attempts = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				typ, _, buf, err := ReadFrame(br, nil, DefaultMaxPayload)
				if err != nil || typ != FrameHello {
					return
				}
				conn.Write(AppendHello(nil, &HelloFrame{Version: ProtoVersion}))
				var rf ReqFrame
				for {
					typ, payload, nbuf, err := ReadFrame(br, buf, DefaultMaxPayload)
					if err != nil {
						return
					}
					buf = nbuf
					if typ != FrameReq {
						continue
					}
					if err := DecodeReq(payload, &rf); err != nil {
						return
					}
					n := attempts.Add(1)
					if n <= int64(rejections) {
						conn.Write(AppendBusy(nil, &BusyFrame{ID: rf.ID, Reason: BusyInflight, RetryNs: retryNs}))
						continue
					}
					conn.Write(AppendResp(nil, &RespFrame{ID: rf.ID, OK: true, Result: int64(n)}))
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), attempts
}

func TestDoRetryBusyBackoff(t *testing.T) {
	addr, attempts := busyServer(t, 2, int64(100*time.Microsecond))
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	start := time.Now()
	res, err := c.DoRetry(&ReqFrame{Op: core.OpMessage, Mount: "msg::/x"}, 5)
	if err != nil {
		t.Fatalf("DoRetry: %v", err)
	}
	if res.Busy || !res.Resp.OK {
		t.Fatalf("DoRetry did not recover from BUSY: %+v", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 rejections + success)", got)
	}
	// Two backoffs at the 100us hint (floored to 50us) must have elapsed;
	// generous upper bound guards against the 10ms clamp misfiring.
	if el := time.Since(start); el < 200*time.Microsecond || el > 5*time.Second {
		t.Fatalf("backoff timing off: %v", el)
	}
}

func TestDoRetryExhaustsTriesStillBusy(t *testing.T) {
	addr, attempts := busyServer(t, 1<<30, int64(50*time.Microsecond))
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	res, err := c.DoRetry(&ReqFrame{Op: core.OpMessage, Mount: "msg::/x"}, 3)
	if err != nil {
		t.Fatalf("DoRetry: %v", err)
	}
	if !res.Busy {
		t.Fatalf("expected final result still busy: %+v", res)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "busy") {
		t.Fatalf("busy result error: %v", res.Err())
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly tries=3", got)
	}
}

func TestDoRetryFreshIDsPerAttempt(t *testing.T) {
	addr, _ := busyServer(t, 1, int64(50*time.Microsecond))
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rf := &ReqFrame{Op: core.OpMessage, Mount: "msg::/x"}
	if _, err := c.DoRetry(rf, 3); err != nil {
		t.Fatalf("DoRetry: %v", err)
	}
	// The frame carries the LAST attempt's id; the first rejected attempt
	// consumed an earlier one, so at least two ids were burned.
	if rf.ID < 2 {
		t.Fatalf("retry reused request id: final id %d", rf.ID)
	}
}

// msgServer boots a minimal runtime+server (one dummy message stack) on
// addr — "127.0.0.1:0" for ephemeral, or a fixed address to simulate a
// shard coming back after a crash.
func msgServer(t *testing.T, addr string) (string, func(), error) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 1, QueueDepth: 256, Batch: 4})
	rt.AddDevice(device.New("pmem0", device.PMEM, 16<<20))
	if _, err := rt.Mount(core.NewStack("msg::/hot", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: "labstor.dummy"},
	})); err != nil {
		t.Fatalf("mount msg stack: %v", err)
	}
	rt.Start()
	s := New(rt, Config{Addr: addr})
	bound, err := s.ListenAndServe()
	if err != nil {
		rt.Shutdown()
		return "", nil, err
	}
	return bound.String(), func() {
		s.Close()
		rt.Shutdown()
	}, nil
}

func TestRouterDeadShardRedial(t *testing.T) {
	// The router drops a dead upstream and re-dials on the next request:
	// after the shard restarts on the same address, DoRetry-driven traffic
	// must flow again over the SAME client connection.
	shardAddr, stop, err := msgServer(t, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("shard listen: %v", err)
	}
	router := NewRouter([]string{shardAddr}, 0, nil)
	raddr, err := router.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	defer router.Close()

	c, err := Dial(raddr.String(), "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	rf := func() *ReqFrame { return &ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"} }
	if res, err := c.DoRetry(rf(), 3); err != nil || res.Err() != nil {
		t.Fatalf("warmup: %v / %v", err, res.Err())
	}

	stop() // shard dies
	sawShardErr := false
	for i := 0; i < 50 && !sawShardErr; i++ {
		res, err := c.DoRetry(rf(), 2)
		if err != nil {
			t.Fatalf("client transport died: %v", err)
		}
		if e := res.Err(); e != nil && strings.Contains(e.Error(), "shard") {
			sawShardErr = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawShardErr {
		t.Fatal("no shard-loss error surfaced after backend death")
	}

	// Shard restarts on the same address; the router's next forward
	// re-dials the upstream and requests succeed again.
	var stop2 func()
	for i := 0; i < 20 && stop2 == nil; i++ {
		if _, s2, err := msgServer(t, shardAddr); err == nil {
			stop2 = s2
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if stop2 == nil {
		t.Skip("could not rebind shard address (port still in TIME_WAIT)")
	}
	defer stop2()

	recovered := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, err := c.DoRetry(rf(), 3)
		if err != nil {
			t.Fatalf("client transport died during recovery: %v", err)
		}
		if res.Err() == nil {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("router never re-dialed the restarted shard")
	}
}
