package serve

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"labstor/internal/core"
	"labstor/internal/device"
	_ "labstor/internal/mods/allmods"
	"labstor/internal/mods/pushdown"
	"labstor/internal/runtime"
)

// newTestServer boots a runtime with an async KVS stack (kv::/bench) and a
// one-vertex message stack (msg::/hot), fronted by a serving endpoint on an
// ephemeral port.
func newTestServer(t *testing.T, cfg Config) (*runtime.Runtime, *Server, string) {
	t.Helper()
	rt := runtime.New(runtime.Options{MaxWorkers: 2, QueueDepth: 1024, Batch: 8})
	rt.AddDevice(device.New("pmem0", device.PMEM, 64<<20))
	if _, err := rt.Mount(core.NewStack("kv::/bench", core.Rules{}, []core.Vertex{
		{UUID: "genkvs", Type: "labstor.generickvs", Outputs: []string{"kvs"}},
		{UUID: "kvs", Type: "labstor.labkvs", Attrs: map[string]string{"device": "pmem0", "log_mb": "8"}, Outputs: []string{"dax"}},
		{UUID: "dax", Type: "labstor.dax", Attrs: map[string]string{"device": "pmem0"}},
	})); err != nil {
		t.Fatalf("mount kv stack: %v", err)
	}
	if _, err := rt.Mount(core.NewStack("msg::/hot", core.Rules{}, []core.Vertex{
		{UUID: "dum", Type: "labstor.dummy"},
	})); err != nil {
		t.Fatalf("mount msg stack: %v", err)
	}
	rt.Start()
	cfg.Addr = "127.0.0.1:0"
	s := New(rt, cfg)
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		rt.Shutdown()
	})
	return rt, s, addr.String()
}

func TestServeKVSEndToEnd(t *testing.T) {
	_, _, addr := newTestServer(t, Config{})
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	payload := []byte("remote value via the wire")
	res, err := c.Do(&ReqFrame{Op: core.OpPut, Mount: "kv::/bench", Key: "k1", Payload: payload})
	if err != nil || res.Err() != nil {
		t.Fatalf("put: %v / %v", err, res.Err())
	}
	res, err = c.Do(&ReqFrame{Op: core.OpGet, Mount: "kv::/bench", Key: "k1"})
	if err != nil || res.Err() != nil {
		t.Fatalf("get: %v / %v", err, res.Err())
	}
	if !bytes.Equal(res.Resp.Value[:res.Resp.Result], payload) {
		t.Fatalf("get value %q, want %q", res.Resp.Value, payload)
	}
	res, err = c.Do(&ReqFrame{Op: core.OpHas, Mount: "kv::/bench", Key: "k1"})
	if err != nil || res.Err() != nil || res.Resp.Result != 1 {
		t.Fatalf("has: %v / %v / %d", err, res.Err(), res.Resp.Result)
	}
	res, err = c.Do(&ReqFrame{Op: core.OpDel, Mount: "kv::/bench", Key: "k1"})
	if err != nil || res.Err() != nil {
		t.Fatalf("del: %v / %v", err, res.Err())
	}
	res, err = c.Do(&ReqFrame{Op: core.OpGet, Mount: "kv::/bench", Key: "k1"})
	if err != nil {
		t.Fatalf("get after del transport: %v", err)
	}
	if res.Err() == nil {
		t.Fatal("get after del should fail")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestServePipelineBatches(t *testing.T) {
	rt, _, addr := newTestServer(t, Config{Batch: 16})
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const n = 200
	puts := make([]ReqFrame, n)
	for i := range puts {
		puts[i] = ReqFrame{
			Op: core.OpPut, Mount: "kv::/bench",
			Key:     fmt.Sprintf("key-%03d", i),
			Payload: []byte(fmt.Sprintf("value-%03d", i)),
		}
	}
	results, err := c.Pipeline(puts)
	if err != nil {
		t.Fatalf("pipeline puts: %v", err)
	}
	for i, r := range results {
		if e := r.Err(); e != nil {
			t.Fatalf("put %d: %v", i, e)
		}
	}

	gets := make([]ReqFrame, n)
	for i := range gets {
		gets[i] = ReqFrame{Op: core.OpGet, Mount: "kv::/bench", Key: fmt.Sprintf("key-%03d", i)}
	}
	results, err = c.Pipeline(gets)
	if err != nil {
		t.Fatalf("pipeline gets: %v", err)
	}
	for i, r := range results {
		if e := r.Err(); e != nil {
			t.Fatalf("get %d: %v", i, e)
		}
		want := fmt.Sprintf("value-%03d", i)
		if got := string(r.Resp.Value[:r.Resp.Result]); got != want {
			t.Fatalf("get %d = %q, want %q", i, got, want)
		}
	}

	snap := rt.Metrics().Snapshot()
	if snap.Counters["serve.frames_in"] < 2*n {
		t.Fatalf("frames_in = %d, want >= %d", snap.Counters["serve.frames_in"], 2*n)
	}
	bs, ok := snap.Histograms["serve.batch_size"]
	if !ok || bs.Count == 0 {
		t.Fatal("serve.batch_size histogram empty")
	}
	if bs.Max < 2 {
		t.Fatalf("batch coalescing never exceeded 1 (max=%v)", bs.Max)
	}
}

func TestServeTenantRateLimitIsolation(t *testing.T) {
	_, _, addr := newTestServer(t, Config{
		Tenants: []TenantPolicy{{Name: "capped", RatePerSec: 200, Burst: 10}},
	})

	run := func(tenant string, d time.Duration) (ok, busy int64) {
		c, err := Dial(addr, tenant)
		if err != nil {
			t.Fatalf("dial %s: %v", tenant, err)
		}
		defer c.Close()
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"})
			if err != nil {
				t.Fatalf("%s do: %v", tenant, err)
			}
			if res.Busy {
				busy++
				time.Sleep(time.Duration(res.RetryNs))
				continue
			}
			if e := res.Err(); e != nil {
				t.Fatalf("%s req: %v", tenant, e)
			}
			ok++
		}
		return ok, busy
	}

	var wg sync.WaitGroup
	var cappedOK, cappedBusy, openOK int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		ok, busy := run("capped", 500*time.Millisecond)
		atomic.StoreInt64(&cappedOK, ok)
		atomic.StoreInt64(&cappedBusy, busy)
	}()
	go func() {
		defer wg.Done()
		ok, _ := run("open", 500*time.Millisecond)
		atomic.StoreInt64(&openOK, ok)
	}()
	wg.Wait()

	// The capped tenant admits at most burst + rate*window (plus slack for
	// timer skew); the open tenant must sail far past that.
	if cappedOK > 10+200/2+60 {
		t.Fatalf("capped tenant admitted %d ops in 500ms at 200/s", cappedOK)
	}
	if cappedBusy == 0 {
		t.Fatal("capped tenant never saw a BUSY frame")
	}
	if openOK < 4*cappedOK {
		t.Fatalf("open tenant (%d ops) not clearly ahead of capped (%d)", openOK, cappedOK)
	}
}

func TestServeInflightBackpressure(t *testing.T) {
	rt, _, addr := newTestServer(t, Config{Default: TenantPolicy{Inflight: 4}})
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Blast a window far over the inflight cap in one flush. BUSY frames
	// (explicit backpressure) must come back instead of silent queueing,
	// while admitted requests still succeed.
	reqs := make([]ReqFrame, 64)
	for i := range reqs {
		reqs[i] = ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}
	}
	results, err := c.Pipeline(reqs)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var ok, busy int
	for _, r := range results {
		switch {
		case r.Busy && r.Reason == BusyInflight:
			busy++
		case r.Err() == nil:
			ok++
		default:
			t.Fatalf("unexpected result: %+v", r)
		}
	}
	if busy == 0 {
		t.Fatal("no BUSY frames under a 16x inflight overload")
	}
	if ok == 0 {
		t.Fatal("nothing admitted under overload")
	}
	snap := rt.Metrics().Snapshot()
	if snap.Counters["serve.busy"] != int64(busy) {
		t.Fatalf("serve.busy = %d, want %d", snap.Counters["serve.busy"], busy)
	}
	if snap.Counters["serve.busy_inflight"] != int64(busy) {
		t.Fatalf("serve.busy_inflight = %d, want %d", snap.Counters["serve.busy_inflight"], busy)
	}
}

func TestServeUnknownMount(t *testing.T) {
	_, _, addr := newTestServer(t, Config{})
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	res, err := c.Do(&ReqFrame{Op: core.OpGet, Mount: "kv::/nowhere", Key: "k"})
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "no stack serving") {
		t.Fatalf("want no-stack error, got %v", res.Err())
	}
	// The connection survives a routing miss.
	if res, err := c.Do(&ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}); err != nil || res.Err() != nil {
		t.Fatalf("follow-up after miss: %v / %v", err, res.Err())
	}
}

func TestServeProtocolErrorClosesConn(t *testing.T) {
	rt, _, addr := newTestServer(t, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendHello(nil, &HelloFrame{Version: ProtoVersion, Tenant: "x"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	ackBuf := make([]byte, 64)
	if _, err := nc.Read(ackBuf); err != nil {
		t.Fatalf("ack: %v", err)
	}
	if _, err := nc.Write([]byte("garbage that is not a frame")); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	tmp := make([]byte, 64)
	for {
		if _, err := nc.Read(tmp); err != nil {
			break // server hung up — what we want
		}
	}
	snap := rt.Metrics().Snapshot()
	if snap.Counters["serve.proto_errors"] == 0 {
		t.Fatal("proto error not counted")
	}
}

func TestServeManyConnections(t *testing.T) {
	_, _, addr := newTestServer(t, Config{})
	const conns = 64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("t%d", i%8))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			reqs := make([]ReqFrame, 16)
			for j := range reqs {
				reqs[j] = ReqFrame{Op: core.OpMessage, Mount: "msg::/hot"}
			}
			for round := 0; round < 4; round++ {
				results, err := c.Pipeline(reqs)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range results {
					if e := r.Err(); e != nil {
						errs <- e
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("connection failed: %v", err)
	}
}

func TestServePushdownScanAndPolicy(t *testing.T) {
	// Programs live in the process-wide Default registry — that's where
	// the executing mods (labkvs/labfs) resolve refs; the serve policy
	// only decides who may run them.
	prog, err := pushdown.Default.Register("tag7", "count where u32@0 == 7")
	if err != nil {
		t.Fatal(err)
	}
	pol := pushdown.NewPolicy(nil, []string{"tag7"}, pushdown.Caps{MaxBytes: 1 << 20})
	pol.SetTenant("locked", pushdown.TenantRule{}) // empty allow = deny all
	_, _, addr := newTestServer(t, Config{
		Pushdown: pol,
		Tenants:  []TenantPolicy{{Name: "locked", RatePerSec: 1000, Burst: 100}},
	})

	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	val := make([]byte, 64)
	val[0] = 7
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("p/%d", i)
		if i >= 3 {
			val[0] = 9 // non-matching tag
		}
		if res, err := c.Do(&ReqFrame{Op: core.OpPut, Mount: "kv::/bench", Key: key, Payload: val}); err != nil || res.Err() != nil {
			t.Fatalf("put: %v / %v", err, res.Err())
		}
	}

	// Scan by name over the wire; the server rewrites to the canonical ref.
	res, err := c.Do(&ReqFrame{Op: core.OpScan, Mount: "kv::/bench", Key: "p/", Prog: "tag7"})
	if err != nil || res.Err() != nil {
		t.Fatalf("scan: %v / %v", err, res.Err())
	}
	if res.Resp.Result != 3 {
		t.Fatalf("pushdown count over wire = %d, want 3", res.Resp.Result)
	}

	// Unknown program is rejected before touching the runtime.
	if res, _ := c.Do(&ReqFrame{Op: core.OpScan, Mount: "kv::/bench", Key: "p/", Prog: "nope"}); res.Err() == nil {
		t.Fatal("unknown program admitted")
	}

	// A denied tenant's scan is rejected by the per-tenant allow-list.
	cl, err := Dial(addr, "locked")
	if err != nil {
		t.Fatalf("dial locked: %v", err)
	}
	defer cl.Close()
	if res, _ := cl.Do(&ReqFrame{Op: core.OpScan, Mount: "kv::/bench", Key: "p/", Prog: prog.Ref}); res.Err() == nil {
		t.Fatal("locked tenant's program admitted")
	}

	// Plain ops from the locked tenant still flow.
	if res, err := cl.Do(&ReqFrame{Op: core.OpGet, Mount: "kv::/bench", Key: "p/0"}); err != nil || res.Err() != nil {
		t.Fatalf("locked tenant get: %v / %v", err, res.Err())
	}
}

func TestServePushdownDisabledRejects(t *testing.T) {
	_, _, addr := newTestServer(t, Config{}) // no Pushdown policy
	c, err := Dial(addr, "t1")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	res, err := c.Do(&ReqFrame{Op: core.OpScan, Mount: "kv::/bench", Key: "", Prog: "anything"})
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if res.Err() == nil || !strings.Contains(res.Err().Error(), "not enabled") {
		t.Fatalf("program on disabled server: %v", res.Err())
	}
}
