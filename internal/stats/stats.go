// Package stats provides the small statistics toolkit used by the benchmark
// harness: streaming summaries, exact percentile samples, log-scaled
// histograms and rate/series helpers. Everything is safe for concurrent use
// unless noted otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Summary accumulates count/sum/min/max/mean/variance in a single pass
// (Welford's algorithm). The zero value is ready to use.
type Summary struct {
	mu    sync.Mutex
	n     int64
	mean  float64
	m2    float64
	min   float64
	max   float64
	sum   float64
	empty bool // tracks "never observed" via n==0 instead
}

// Observe adds one observation.
func (s *Summary) Observe(x float64) {
	s.mu.Lock()
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.n }

// Sum returns the sum of observations.
func (s *Summary) Sum() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.sum }

// Mean returns the running mean (0 if empty).
func (s *Summary) Mean() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.mean }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.max }

// Variance returns the sample variance (0 for n<2).
func (s *Summary) Variance() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Sample retains every observation for exact percentile computation.
// Suitable for the experiment scales used here (≤ a few million points).
type Sample struct {
	mu   sync.Mutex
	xs   []float64
	dirt bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	if n < 0 {
		n = 0
	}
	return &Sample{xs: make([]float64, 0, n)}
}

// Observe adds one observation.
func (p *Sample) Observe(x float64) {
	p.mu.Lock()
	p.xs = append(p.xs, x)
	p.dirt = true
	p.mu.Unlock()
}

// Count returns the number of observations.
func (p *Sample) Count() int { p.mu.Lock(); defer p.mu.Unlock(); return len(p.xs) }

// Mean returns the mean of all observations (0 if empty).
func (p *Sample) Mean() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range p.xs {
		s += x
	}
	return s / float64(len(p.xs))
}

// Percentile returns the q-th percentile (q in [0,100]) using the
// nearest-rank method. Returns 0 if empty.
func (p *Sample) Percentile(q float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.xs)
	if n == 0 {
		return 0
	}
	if p.dirt {
		sort.Float64s(p.xs)
		p.dirt = false
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 100 {
		return p.xs[n-1]
	}
	rank := int(math.Ceil(q / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return p.xs[rank-1]
}

// Max returns the largest observation.
func (p *Sample) Max() float64 { return p.Percentile(100) }

// Min returns the smallest observation.
func (p *Sample) Min() float64 { return p.Percentile(0) }

// Histogram is a log2-bucketed histogram for latency-like values. The
// exact maximum observation is tracked alongside the buckets, so Quantile
// never reports beyond the largest value actually seen.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe adds a non-negative observation.
func (h *Histogram) Observe(x float64) {
	if x < 0 {
		x = 0
	}
	b := 0
	if x >= 1 {
		b = int(math.Log2(x)) + 1
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += x
	if h.count == 1 || x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.count }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.min }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.max }

// Quantile returns an estimate of the q-th quantile (q in [0,1]) assuming
// uniform distribution within each bucket, clamped to the exact maximum
// observation (so q=1 reports the true max, not the bucket's upper bound).
func (h *Histogram) Quantile(q float64) float64 {
	return h.State().Quantile(q)
}

// HistogramState is a copyable snapshot of a Histogram's raw accumulator
// state. Two snapshots of the same histogram can be subtracted to obtain the
// distribution observed *between* them (SLO watchdogs evaluate quantiles
// over such deltas, so a long-running runtime reacts to recent latency
// rather than the lifetime distribution).
type HistogramState struct {
	Buckets [64]int64
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
}

// State returns the histogram's current accumulator snapshot.
func (h *Histogram) State() HistogramState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramState{Buckets: h.buckets, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// Delta returns the distribution observed since prev (bucket-wise
// subtraction). Min/Max carry the current snapshot's values: exact window
// extremes are not recoverable from counters, so quantiles over a delta are
// clamped to the lifetime maximum — an upper bound on the window's.
func (s HistogramState) Delta(prev HistogramState) HistogramState {
	d := s
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
		if d.Buckets[i] < 0 {
			d.Buckets[i] = 0
		}
	}
	d.Count = s.Count - prev.Count
	if d.Count < 0 {
		d.Count = 0
	}
	d.Sum = s.Sum - prev.Sum
	return d
}

// Mean returns the mean of the snapshot (0 if empty).
func (s HistogramState) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile of the snapshot, uniform within each
// bucket and clamped to the recorded maximum.
func (s HistogramState) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	clamp := func(v float64) float64 {
		if v > s.Max {
			return s.Max
		}
		return v
	}
	target := q * float64(s.Count)
	var cum float64
	for b, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketBounds(b)
			frac := (target - cum) / float64(c)
			return clamp(lo + frac*(hi-lo))
		}
		cum = next
	}
	return s.Max
}

func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return math.Pow(2, float64(b-1)), math.Pow(2, float64(b))
}

// Throughput converts (ops, elapsed seconds) to ops/sec, guarding zero.
func Throughput(ops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds
}

// MBps converts (bytes, elapsed seconds) to MiB/s, guarding zero.
func MBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / (1 << 20)
}

// Table is a minimal fixed-width text table builder for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats as %.2f).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var out string
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i < len(width) {
				s += fmt.Sprintf("%-*s  ", width[i], c)
			} else {
				s += c + "  "
			}
		}
		return s + "\n"
	}
	out += line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = dashes(width[i])
	}
	out += line(sep)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
