package stats

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 6, 8} {
		s.Observe(x)
	}
	if s.Count() != 4 {
		t.Fatalf("count %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 20 {
		t.Fatalf("sum %v", s.Sum())
	}
	// Sample variance of {2,4,6,8} = 20/3.
	if math.Abs(s.Variance()-20.0/3.0) > 1e-9 {
		t.Fatalf("variance %v", s.Variance())
	}
	if math.Abs(s.Stddev()-math.Sqrt(20.0/3.0)) > 1e-9 {
		t.Fatalf("stddev %v", s.Stddev())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Count() != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummaryConcurrent(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Observe(1)
			}
		}()
	}
	wg.Wait()
	if s.Count() != 4000 || s.Mean() != 1 {
		t.Fatalf("concurrent: count=%d mean=%v", s.Count(), s.Mean())
	}
}

func TestSamplePercentiles(t *testing.T) {
	p := NewSample(100)
	for i := 1; i <= 100; i++ {
		p.Observe(float64(i))
	}
	if p.Percentile(50) != 50 {
		t.Fatalf("p50 = %v", p.Percentile(50))
	}
	if p.Percentile(99) != 99 {
		t.Fatalf("p99 = %v", p.Percentile(99))
	}
	if p.Min() != 1 || p.Max() != 100 {
		t.Fatalf("min/max %v/%v", p.Min(), p.Max())
	}
	if p.Mean() != 50.5 {
		t.Fatalf("mean %v", p.Mean())
	}
	// Observing after a percentile query re-sorts correctly.
	p.Observe(1000)
	if p.Max() != 1000 {
		t.Fatalf("max after new observation: %v", p.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	p := NewSample(0)
	if p.Percentile(50) != 0 || p.Mean() != 0 || p.Count() != 0 {
		t.Fatal("empty sample must be zero")
	}
}

func TestSamplePercentileMonotonicQuick(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		p := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			p.Observe(x)
		}
		last := math.Inf(-1)
		for q := 0.0; q <= 100; q += 10 {
			v := p.Percentile(q)
			if v < last {
				return false
			}
			last = v
		}
		// Percentiles are always actual observations (nearest-rank).
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return p.Percentile(50) == sorted[int(math.Ceil(0.5*float64(len(sorted))))-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100) // bucket [64,128)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 100 {
		t.Fatalf("mean %v", h.Mean())
	}
	q := h.Quantile(0.5)
	if q < 64 || q > 128 {
		t.Fatalf("median %v outside bucket", q)
	}
}

func TestHistogramMaxExact(t *testing.T) {
	var h Histogram
	for _, x := range []float64{3, 100, 42} {
		h.Observe(x)
	}
	if h.Max() != 100 {
		t.Fatalf("max %v, want exact 100", h.Max())
	}
}

func TestHistogramQuantileClampedToMax(t *testing.T) {
	// 100 lands in bucket [64,128); without clamping, Quantile(1) would
	// report the interpolated upper bound 128 — beyond any observation.
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q=1 reports %v, want exact max 100", q)
	}
	if q := h.Quantile(0.999); q > 100 {
		t.Fatalf("q=0.999 reports %v, beyond the max observation", q)
	}
	// A single observation: every quantile is that observation.
	var one Histogram
	one.Observe(9)
	if q := one.Quantile(0.5); q > 9 {
		t.Fatalf("single-observation median %v > 9", q)
	}
	if q := one.Quantile(1); q != 9 {
		t.Fatalf("single-observation max %v, want 9", q)
	}
	if (&Histogram{}).Quantile(1) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramMinExact(t *testing.T) {
	var h Histogram
	if h.Min() != 0 {
		t.Fatalf("empty min %v", h.Min())
	}
	for _, x := range []float64{50, 3, 100} {
		h.Observe(x)
	}
	if h.Min() != 3 {
		t.Fatalf("min %v, want exact 3", h.Min())
	}
}

func TestHistogramStateDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10) // bucket [8,16)
	}
	before := h.State()
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket [512,1024)
	}
	// The lifetime median straddles the two populations, but the delta
	// since `before` contains only the slow ones.
	d := h.State().Delta(before)
	if d.Count != 100 {
		t.Fatalf("delta count %d", d.Count)
	}
	if q := d.Quantile(0.5); q < 512 || q > 1000 {
		t.Fatalf("delta median %v, want within [512,1000]", q)
	}
	if m := d.Mean(); m != 1000 {
		t.Fatalf("delta mean %v", m)
	}
	// Delta of identical snapshots is empty.
	s := h.State()
	if e := s.Delta(s); e.Count != 0 || e.Quantile(0.99) != 0 {
		t.Fatalf("self-delta not empty: %+v", e)
	}
	// State quantiles agree with the histogram's own.
	if h.State().Quantile(0.99) != h.Quantile(0.99) {
		t.Fatal("State().Quantile disagrees with Quantile")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("clamped observation quantile %v", q)
	}
}

func TestThroughputAndMBps(t *testing.T) {
	if Throughput(100, 2) != 50 {
		t.Fatal("Throughput")
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("Throughput zero-division")
	}
	if MBps(2<<20, 2) != 1 {
		t.Fatal("MBps")
	}
	if MBps(1, 0) != 0 {
		t.Fatal("MBps zero-division")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Name", "Value"}}
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator line: %q", lines[1])
	}
}
