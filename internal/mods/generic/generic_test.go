package generic_test

import (
	"bytes"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	_ "labstor/internal/mods/dummy"
	"labstor/internal/mods/generic"
	"labstor/internal/mods/labfs"
	"labstor/internal/mods/modtest"
)

func mountGenFS(t *testing.T, h *modtest.Harness) *core.Stack {
	return h.Mount(t, "fs::/g",
		modtest.ChainVertex{UUID: "gen", Type: generic.FSType},
		modtest.ChainVertex{UUID: "fs", Type: labfs.Type, Attrs: map[string]string{"device": "dev0", "log_mb": "2"}},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func genInstance(t *testing.T, h *modtest.Harness) *generic.GenericFS {
	m, _ := h.Registry.Get("gen")
	return m.(*generic.GenericFS)
}

func TestFDLifecycle(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountGenFS(t, h)
	g := genInstance(t, h)

	// Open allocates a descriptor >= 3.
	cr := core.NewRequest(core.OpCreate)
	cr.Path = "f.txt"
	if err := h.Run(t, s, cr); err != nil {
		t.Fatal(err)
	}
	if cr.FD < 3 {
		t.Fatalf("fd %d", cr.FD)
	}
	if g.OpenFDs() != 1 {
		t.Fatalf("open fds %d", g.OpenFDs())
	}

	// fd-based write (no Path on the request — GenericFS resolves it).
	w := core.NewRequest(core.OpWrite)
	w.FD = cr.FD
	w.Offset = -1 // cursor-relative
	w.Data = []byte("hello ")
	w.Size = 6
	if err := h.Run(t, s, w); err != nil {
		t.Fatal(err)
	}
	w2 := core.NewRequest(core.OpWrite)
	w2.FD = cr.FD
	w2.Offset = -1
	w2.Data = []byte("world")
	w2.Size = 5
	if err := h.Run(t, s, w2); err != nil {
		t.Fatal(err)
	}

	// Cursor advanced: sequential writes concatenated.
	r := core.NewRequest(core.OpRead)
	r.FD = cr.FD
	r.Offset = 0
	r.Size = 11
	r.Data = make([]byte, 11)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if string(r.Data[:r.Result]) != "hello world" {
		t.Fatalf("cursor I/O produced %q", r.Data[:r.Result])
	}

	// Close releases the descriptor.
	cl := core.NewRequest(core.OpClose)
	cl.FD = cr.FD
	if err := h.Run(t, s, cl); err != nil {
		t.Fatal(err)
	}
	if g.OpenFDs() != 0 {
		t.Fatal("fd leaked after close")
	}
}

func TestBadFD(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountGenFS(t, h)
	w := core.NewRequest(core.OpWrite)
	w.FD = 999
	w.Data = []byte("x")
	w.Size = 1
	if err := h.Run(t, s, w); err == nil {
		t.Fatal("write to bad fd succeeded")
	}
}

func TestPathOpsPassThrough(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountGenFS(t, h)
	if err := h.Run(t, s, modtest.WriteReq("direct.txt", 0, []byte("path-addressed"))); err != nil {
		t.Fatal(err)
	}
	r := modtest.ReadReq("direct.txt", 0, 14)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data[:r.Result], []byte("path-addressed")) {
		t.Fatal("path-addressed I/O broken")
	}
}

func TestCopyFDsToCloneSupport(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountGenFS(t, h)
	g := genInstance(t, h)
	cr := core.NewRequest(core.OpCreate)
	cr.Path = "shared.txt"
	h.Run(t, s, cr)

	// "clone": a second GenericFS instance receives the open descriptors.
	child := &generic.GenericFS{}
	child.Configure(core.Config{UUID: "gen-child"}, h.Env)
	g.CopyFDsTo(child)
	if child.OpenFDs() != 1 {
		t.Fatalf("child fds %d", child.OpenFDs())
	}
}

func TestStateUpdateKeepsFDs(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountGenFS(t, h)
	cr := core.NewRequest(core.OpCreate)
	cr.Path = "live.txt"
	h.Run(t, s, cr)

	next := &generic.GenericFS{}
	next.Configure(core.Config{UUID: "gen"}, h.Env)
	if err := h.Registry.Swap("gen", next); err != nil {
		t.Fatal(err)
	}
	// The open descriptor still works after the upgrade.
	w := core.NewRequest(core.OpWrite)
	w.FD = cr.FD
	w.Offset = 0
	w.Data = []byte("still open")
	w.Size = 10
	if err := h.Run(t, s, w); err != nil {
		t.Fatalf("fd dead after upgrade: %v", err)
	}
}

func TestGenericKVSValidation(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "kv::/g",
		modtest.ChainVertex{UUID: "gkv", Type: generic.KVSType},
		modtest.ChainVertex{UUID: "sink", Type: "labstor.dummy"},
	)
	r := core.NewRequest(core.OpGet) // empty key
	if err := h.Run(t, s, r); err == nil {
		t.Fatal("empty key passed validation")
	}
	ok := core.NewRequest(core.OpGet)
	ok.Key = "k"
	if err := h.Run(t, s, ok); err != nil {
		t.Fatal(err)
	}
}
