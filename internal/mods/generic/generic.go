// Package generic implements the Generic LabMods (paper §III-A,
// "Management LabMods"): interface multiplexers loaded into clients that
// create I/O requests and forward them to the I/O system implementing the
// calls, managing the state that is common among I/O systems of a type —
// the role the VFS plays in the kernel.
//
//   - GenericFS manages the allocation of file descriptors and the routing
//     of POSIX requests to the proper filesystem implementation;
//   - GenericKVS routes key-value requests (no fd state needed).
//
// In the paper these are LD_PRELOADed into legacy applications; here they
// are the entry vertices of stacks, reached through the client library.
package generic

import (
	"fmt"
	"sync"

	"labstor/internal/core"
	"labstor/internal/vtime"
)

// Type names registered with the core module factory.
const (
	FSType  = "labstor.genericfs"
	KVSType = "labstor.generickvs"
)

func init() {
	core.RegisterType(FSType, func() core.Module { return &GenericFS{} })
	core.RegisterType(KVSType, func() core.Module { return &GenericKVS{} })
}

// openFile is the per-fd state GenericFS manages.
type openFile struct {
	fd     int
	path   string
	flags  int
	cursor int64
	owner  core.Cred
}

// GenericFS is the POSIX interface multiplexer.
type GenericFS struct {
	core.Base

	mu     sync.Mutex
	nextFD int
	fds    map[int]*openFile
}

// Info describes the module.
func (g *GenericFS) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: FSType, Version: "1.0", Consumes: core.APIPosix, Produces: core.APIPosix}
}

// Configure initializes the fd table.
func (g *GenericFS) Configure(cfg core.Config, env *core.Env) error {
	if err := g.Base.Configure(cfg, env); err != nil {
		return err
	}
	g.fds = make(map[int]*openFile)
	g.nextFD = 3 // 0..2 reserved, as in POSIX
	return nil
}

// Process translates fd-based requests into path-based requests and routes
// them downstream.
func (g *GenericFS) Process(e *core.Exec, req *core.Request) error {
	req.Charge("genericfs", e.Model.ModLookup)
	switch req.Op {
	case core.OpOpen, core.OpCreate:
		if err := e.Next(req); err != nil {
			return err
		}
		if req.Err != nil {
			return req.Err
		}
		g.mu.Lock()
		fd := g.nextFD
		g.nextFD++
		g.fds[fd] = &openFile{fd: fd, path: req.Path, flags: req.Flags, owner: req.Cred}
		g.mu.Unlock()
		req.FD = fd
		req.Result = int64(fd)
		return nil
	case core.OpClose:
		f, err := g.file(req)
		if err != nil {
			req.Err = err
			return err
		}
		req.Path = f.path
		if err := e.Next(req); err != nil {
			return err
		}
		g.mu.Lock()
		delete(g.fds, f.fd)
		g.mu.Unlock()
		return nil
	case core.OpRead, core.OpWrite, core.OpAppend, core.OpFsync, core.OpTruncate:
		if req.Path == "" {
			f, err := g.file(req)
			if err != nil {
				req.Err = err
				return err
			}
			req.Path = f.path
			if req.Flags == 0 {
				req.Flags = f.flags
			}
			if req.Offset < 0 { // cursor-relative I/O
				req.Offset = f.cursor
			}
			if err := e.Next(req); err != nil {
				return err
			}
			if req.Err == nil && (req.Op == core.OpRead || req.Op == core.OpWrite) {
				g.mu.Lock()
				f.cursor = req.Offset + req.Result
				g.mu.Unlock()
			}
			return nil
		}
		return e.Next(req)
	default:
		// Path-based metadata ops pass straight through.
		return e.Next(req)
	}
}

func (g *GenericFS) file(req *core.Request) (*openFile, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.fds[req.FD]
	if !ok {
		return nil, fmt.Errorf("genericfs: bad file descriptor %d", req.FD)
	}
	return f, nil
}

// OpenFDs returns the number of live descriptors.
func (g *GenericFS) OpenFDs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.fds)
}

// CopyFDsTo duplicates the fd table into another instance — the fork/clone
// support path: on clone, open descriptors are copied to the new address
// space's GenericFS (paper §III-F).
func (g *GenericFS) CopyFDsTo(dst *GenericFS) {
	g.mu.Lock()
	defer g.mu.Unlock()
	dst.mu.Lock()
	defer dst.mu.Unlock()
	for fd, f := range g.fds {
		cp := *f
		dst.fds[fd] = &cp
		if fd >= dst.nextFD {
			dst.nextFD = fd + 1
		}
	}
}

// StateUpdate carries the fd table across a live upgrade (open files stay
// open).
func (g *GenericFS) StateUpdate(prev core.Module) error {
	if old, ok := prev.(*GenericFS); ok {
		old.mu.Lock()
		defer old.mu.Unlock()
		g.mu.Lock()
		defer g.mu.Unlock()
		g.fds = old.fds
		g.nextFD = old.nextFD
	}
	return nil
}

// EstProcessingTime is small — GenericFS only routes.
func (g *GenericFS) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return g.Env.Model.ModLookup
}

// GenericKVS is the key-value interface multiplexer.
type GenericKVS struct {
	core.Base
}

// Info describes the module.
func (g *GenericKVS) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: KVSType, Version: "1.0", Consumes: core.APIKV, Produces: core.APIKV}
}

// Process validates and routes key-value requests.
func (g *GenericKVS) Process(e *core.Exec, req *core.Request) error {
	req.Charge("generickvs", e.Model.ModLookup)
	switch req.Op {
	case core.OpPut, core.OpGet, core.OpDel, core.OpHas:
		if req.Key == "" {
			req.Err = fmt.Errorf("generickvs: empty key for %s", req.Op)
			return req.Err
		}
	}
	return e.Next(req)
}

// EstProcessingTime is small — GenericKVS only routes.
func (g *GenericKVS) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return g.Env.Model.ModLookup
}
