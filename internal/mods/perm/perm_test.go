package perm_test

import (
	"errors"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	_ "labstor/internal/mods/dummy"
	"labstor/internal/mods/modtest"
	"labstor/internal/mods/perm"
)

func mountPerm(t *testing.T, h *modtest.Harness, attrs map[string]string) *core.Stack {
	return h.Mount(t, "any::/p",
		modtest.ChainVertex{UUID: "perm", Type: perm.Type, Attrs: attrs},
		modtest.ChainVertex{UUID: "sink", Type: "labstor.dummy"},
	)
}

func reqAs(op core.Op, path string, uid, gid int) *core.Request {
	r := core.NewRequest(op)
	r.Path = path
	r.Cred = core.Cred{UID: uid, GID: gid}
	return r
}

func TestOwnerGroupOtherBits(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, map[string]string{"owner": "100", "group": "200", "mode": "0640"})

	// Owner: read+write.
	if err := h.Run(t, s, reqAs(core.OpWrite, "f", 100, 0)); err != nil {
		t.Fatalf("owner write denied: %v", err)
	}
	// Group: read only.
	if err := h.Run(t, s, reqAs(core.OpRead, "f", 300, 200)); err != nil {
		t.Fatalf("group read denied: %v", err)
	}
	if err := h.Run(t, s, reqAs(core.OpWrite, "f", 300, 200)); !errors.Is(err, perm.ErrPermission) {
		t.Fatalf("group write allowed: %v", err)
	}
	// Other: nothing.
	if err := h.Run(t, s, reqAs(core.OpRead, "f", 999, 999)); !errors.Is(err, perm.ErrPermission) {
		t.Fatalf("other read allowed: %v", err)
	}
}

func TestRootAlwaysOwner(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, map[string]string{"owner": "100", "mode": "0600"})
	if err := h.Run(t, s, reqAs(core.OpWrite, "f", 0, 0)); err != nil {
		t.Fatalf("root denied: %v", err)
	}
}

func TestMetadataOpsNeedWrite(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, map[string]string{"owner": "1", "mode": "0644"})
	for _, op := range []core.Op{core.OpCreate, core.OpUnlink, core.OpRename, core.OpMkdir, core.OpTruncate, core.OpDel} {
		if err := h.Run(t, s, reqAs(op, "f", 555, 555)); !errors.Is(err, perm.ErrPermission) {
			t.Errorf("%s by other allowed: %v", op, err)
		}
	}
	// Reads allowed for other under 0644.
	for _, op := range []core.Op{core.OpRead, core.OpStat, core.OpGet} {
		if err := h.Run(t, s, reqAs(op, "f", 555, 555)); err != nil {
			t.Errorf("%s by other denied: %v", op, err)
		}
	}
}

func TestACLPrefixRules(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, map[string]string{
		"mode": "0666",
		"acl":  "secret/:42:42:0600;shared/:0:0:0666",
	})
	// Default world-writable.
	if err := h.Run(t, s, reqAs(core.OpWrite, "public/x", 7, 7)); err != nil {
		t.Fatalf("default denied: %v", err)
	}
	// secret/ restricted to uid 42.
	if err := h.Run(t, s, reqAs(core.OpRead, "secret/k", 7, 7)); !errors.Is(err, perm.ErrPermission) {
		t.Fatalf("secret readable by other: %v", err)
	}
	if err := h.Run(t, s, reqAs(core.OpWrite, "secret/k", 42, 42)); err != nil {
		t.Fatalf("secret denied to its owner: %v", err)
	}
	// shared/ world-writable again.
	if err := h.Run(t, s, reqAs(core.OpWrite, "shared/k", 7, 7)); err != nil {
		t.Fatalf("shared denied: %v", err)
	}
}

func TestCountersAndStateUpdate(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, map[string]string{"owner": "1", "mode": "0600"})
	h.Run(t, s, reqAs(core.OpRead, "f", 1, 1))
	h.Run(t, s, reqAs(core.OpRead, "f", 2, 2)) // denied
	m, _ := h.Registry.Get("perm")
	checked, denied := m.(*perm.Checker).Stats()
	if checked != 2 || denied != 1 {
		t.Fatalf("counters %d/%d", checked, denied)
	}
	// Counters survive a live upgrade.
	next := &perm.Checker{}
	if err := next.Configure(core.Config{UUID: "perm", Attrs: map[string]string{"owner": "1", "mode": "0600"}}, h.Env); err != nil {
		t.Fatal(err)
	}
	if err := h.Registry.Swap("perm", next); err != nil {
		t.Fatal(err)
	}
	c2, d2 := next.Stats()
	if c2 != 2 || d2 != 1 {
		t.Fatalf("counters lost in upgrade: %d/%d", c2, d2)
	}
}

func TestConfigureErrors(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	p := &perm.Checker{}
	if err := p.Configure(core.Config{Attrs: map[string]string{"mode": "xyz"}}, h.Env); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := p.Configure(core.Config{Attrs: map[string]string{"acl": "too:few"}}, h.Env); err == nil {
		t.Fatal("bad acl accepted")
	}
	if err := p.Configure(core.Config{Attrs: map[string]string{"acl": "p:1:1:zz"}}, h.Env); err == nil {
		t.Fatal("bad acl mode accepted")
	}
}

func TestPermChargesCost(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := mountPerm(t, h, nil)
	r := reqAs(core.OpRead, "f", 0, 0)
	h.Run(t, s, r)
	if r.CPUTime < h.Env.Model.PermCheck {
		t.Fatal("permission check not charged")
	}
}
