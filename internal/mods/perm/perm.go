// Package perm implements the permissions-checking LabMod. Access control
// in LabStor is tunable: a stack that includes this module enforces
// owner/group/mode checks on every request (the paper's Lab-All /
// "Centralized+Permissions" configurations); removing the vertex removes
// the check and its ~3% cost (Lab-Min). Multiple stacks over the same
// content with different Permission LabMods implement the paper's "islands
// of data" tunable access control.
package perm

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"labstor/internal/core"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.perm"

func init() {
	core.RegisterType(Type, func() core.Module { return &Checker{} })
}

// ErrPermission is wrapped into denied requests.
var ErrPermission = fmt.Errorf("perm: permission denied")

// aclEntry is a per-path-prefix access rule.
type aclEntry struct {
	prefix string
	uid    int
	gid    int
	mode   uint32 // unix-style 9-bit rwxrwxrwx
}

// Checker is the permissions module instance.
type Checker struct {
	core.Base

	mu      sync.RWMutex
	defUID  int
	defGID  int
	defMode uint32
	acl     []aclEntry

	checked int64
	denied  int64
}

// Info describes the module.
func (p *Checker) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIAny, Produces: core.APIAny}
}

// Configure reads default ownership and mode:
// attrs: owner, group, mode (octal), acl ("prefix:uid:gid:mode;...").
func (p *Checker) Configure(cfg core.Config, env *core.Env) error {
	if err := p.Base.Configure(cfg, env); err != nil {
		return err
	}
	p.defUID, _ = strconv.Atoi(cfg.Attr("owner", "0"))
	p.defGID, _ = strconv.Atoi(cfg.Attr("group", "0"))
	mode, err := strconv.ParseUint(cfg.Attr("mode", "0644"), 8, 32)
	if err != nil {
		return fmt.Errorf("perm: bad mode attribute: %v", err)
	}
	p.defMode = uint32(mode)
	if raw := cfg.Attr("acl", ""); raw != "" {
		for _, rule := range strings.Split(raw, ";") {
			parts := strings.Split(rule, ":")
			if len(parts) != 4 {
				return fmt.Errorf("perm: bad acl rule %q", rule)
			}
			uid, _ := strconv.Atoi(parts[1])
			gid, _ := strconv.Atoi(parts[2])
			m, err := strconv.ParseUint(parts[3], 8, 32)
			if err != nil {
				return fmt.Errorf("perm: bad acl mode in %q", rule)
			}
			p.acl = append(p.acl, aclEntry{prefix: parts[0], uid: uid, gid: gid, mode: uint32(m)})
		}
	}
	return nil
}

// Process performs the check and forwards on success.
func (p *Checker) Process(e *core.Exec, req *core.Request) error {
	req.Charge("perm", e.Model.PermCheck)
	p.mu.RLock()
	uid, gid, mode := p.defUID, p.defGID, p.defMode
	for _, a := range p.acl {
		if strings.HasPrefix(req.Path, a.prefix) {
			uid, gid, mode = a.uid, a.gid, a.mode
		}
	}
	p.mu.RUnlock()

	want := uint32(4) // read
	if req.Op.IsWrite() || req.Op == core.OpCreate || req.Op == core.OpUnlink ||
		req.Op == core.OpRename || req.Op == core.OpMkdir || req.Op == core.OpRmdir ||
		req.Op == core.OpTruncate || req.Op == core.OpDel {
		want = 2 // write
	}
	var granted uint32
	switch {
	case req.Cred.UID == 0 || req.Cred.UID == uid:
		granted = (mode >> 6) & 7
	case req.Cred.GID == gid:
		granted = (mode >> 3) & 7
	default:
		granted = mode & 7
	}
	p.mu.Lock()
	p.checked++
	if granted&want == 0 {
		p.denied++
		p.mu.Unlock()
		req.Err = fmt.Errorf("%w: uid=%d op=%s path=%q", ErrPermission, req.Cred.UID, req.Op, req.Path)
		return req.Err
	}
	p.mu.Unlock()
	return e.Next(req)
}

// Stats returns check/deny counters.
func (p *Checker) Stats() (checked, denied int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.checked, p.denied
}

// StateUpdate carries counters and ACL across a live upgrade.
func (p *Checker) StateUpdate(prev core.Module) error {
	old, ok := prev.(*Checker)
	if !ok {
		return nil
	}
	old.mu.RLock()
	defer old.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checked, p.denied = old.checked, old.denied
	if len(p.acl) == 0 {
		p.acl = append(p.acl, old.acl...)
	}
	return nil
}

// EstProcessingTime estimates the check cost.
func (p *Checker) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return p.Env.Model.PermCheck
}
