package iosched_test

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	"labstor/internal/mods/iosched"
	"labstor/internal/mods/modtest"
)

func mountSched(t *testing.T, h *modtest.Harness, mount, schedType string) *core.Stack {
	return h.Mount(t, mount,
		modtest.ChainVertex{UUID: mount + "/s", Type: schedType, Attrs: map[string]string{"device": "dev0"}},
		modtest.ChainVertex{UUID: mount + "/d", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func TestNoOpKeysByOriginCore(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountSched(t, h, "blk::/noop", iosched.NoOpType)
	buf := make([]byte, 4096)
	for core_ := 0; core_ < 5; core_++ {
		req := modtest.BlockWriteReq(int64(core_)*4096, buf)
		req.OriginCore = core_
		if err := h.Run(t, s, req); err != nil {
			t.Fatal(err)
		}
		if req.Hctx != core_%h.Dev.HardwareQueues() {
			t.Fatalf("core %d mapped to hctx %d", core_, req.Hctx)
		}
	}
}

func TestNoOpWithoutDeviceUsesRawCore(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := h.Mount(t, "blk::/n",
		modtest.ChainVertex{UUID: "n", Type: iosched.NoOpType},
		modtest.ChainVertex{UUID: "d", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
	req := modtest.BlockWriteReq(0, make([]byte, 512))
	req.OriginCore = 7
	if err := h.Run(t, s, req); err != nil {
		t.Fatal(err)
	}
	if req.Hctx != 7 {
		t.Fatalf("hctx %d", req.Hctx)
	}
}

func TestBlkSwitchSteersSmallAwayFromLoad(t *testing.T) {
	h := modtest.New(t, device.NVMe, 256<<20)
	s := mountSched(t, h, "blk::/blk", iosched.BlkSwitchType)

	// Load hctx 0 with large writes from core 0.
	big := make([]byte, 64<<10)
	for i := 0; i < 8; i++ {
		req := modtest.BlockWriteReq(int64(i)*(64<<10), big)
		req.OriginCore = 0
		if err := h.Run(t, s, req); err != nil {
			t.Fatal(err)
		}
		if req.Hctx != 0 {
			t.Fatalf("large request steered away from its core: hctx %d", req.Hctx)
		}
	}
	// A small request from core 0 must escape the loaded queue.
	small := modtest.BlockWriteReq(1<<20, make([]byte, 4096))
	small.OriginCore = 0
	if err := h.Run(t, s, small); err != nil {
		t.Fatal(err)
	}
	if small.Hctx == 0 {
		t.Fatal("latency-critical request stuck behind the loaded queue")
	}
}

func TestBlkSwitchPrefersOwnIdleQueue(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountSched(t, h, "blk::/blk", iosched.BlkSwitchType)
	req := modtest.BlockWriteReq(0, make([]byte, 4096))
	req.OriginCore = 5
	if err := h.Run(t, s, req); err != nil {
		t.Fatal(err)
	}
	if req.Hctx != 5 {
		t.Fatalf("idle own queue not preferred: hctx %d", req.Hctx)
	}
}

func TestBlkSwitchRequiresDevice(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	m, _ := core.NewModule(iosched.BlkSwitchType)
	if err := m.Configure(core.Config{UUID: "b"}, h.Env); err == nil {
		t.Fatal("blkswitch configured without device")
	}
}

func TestSchedulersCostOrdering(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	noop := mountSched(t, h, "blk::/noop", iosched.NoOpType)
	blk := mountSched(t, h, "blk::/blk", iosched.BlkSwitchType)
	a := modtest.BlockWriteReq(0, make([]byte, 4096))
	b := modtest.BlockWriteReq(8192, make([]byte, 4096))
	b.OriginCore = 1
	h.Run(t, noop, a)
	h.Run(t, blk, b)
	if a.CPUTime >= b.CPUTime {
		t.Fatalf("noop (%v) must be cheaper than blk-switch (%v)", a.CPUTime, b.CPUTime)
	}
}

func TestBlkSwitchStateRepair(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	mountSched(t, h, "blk::/blk", iosched.BlkSwitchType)
	m, _ := h.Registry.Get("blk::/blk/s")
	if err := m.StateRepair(); err != nil {
		t.Fatal(err)
	}
}
