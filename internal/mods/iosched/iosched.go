// Package iosched implements I/O scheduler LabMods. I/O schedulers are
// block-layer policy modules: they pick the hardware dispatch queue (hctx)
// each block request is steered to, then forward the request downstream to
// a driver LabMod.
//
// Two policies from the paper's evaluation are provided:
//
//   - NoOp keys a request to a hardware queue by the CPU core the request
//     originated on — the Linux noop/none behaviour. Cheap, but colocated
//     workloads that share a core share a queue and suffer head-of-line
//     blocking.
//   - BlkSwitch considers the load on each queue (the blk-switch paper's
//     request steering) and sends the request to the least-loaded hardware
//     queue, trading a little per-request work for isolation between
//     throughput-bound and latency-bound applications.
package iosched

import (
	"fmt"
	"strconv"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/vtime"
)

// Type names registered with the core module factory.
const (
	NoOpType      = "labstor.noop"
	BlkSwitchType = "labstor.blkswitch"
)

func init() {
	core.RegisterType(NoOpType, func() core.Module { return &NoOp{} })
	core.RegisterType(BlkSwitchType, func() core.Module { return &BlkSwitch{} })
}

// NoOp is the no-op scheduler: requests map to the hardware queue of their
// originating core.
type NoOp struct {
	core.Base
	queues int
}

// Info describes the module.
func (s *NoOp) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: NoOpType, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure reads the optional device binding to learn the queue count.
func (s *NoOp) Configure(cfg core.Config, env *core.Env) error {
	if err := s.Base.Configure(cfg, env); err != nil {
		return err
	}
	s.queues = 0
	if name := cfg.Attr("device", ""); name != "" {
		dev, err := env.Device(name)
		if err != nil {
			return err
		}
		s.queues = dev.HardwareQueues()
	}
	return nil
}

// Process keys the request to a queue and forwards it.
func (s *NoOp) Process(e *core.Exec, req *core.Request) error {
	req.Charge("sched", e.Model.NoOpSched)
	if s.queues > 0 {
		req.Hctx = req.OriginCore % s.queues
	} else {
		req.Hctx = req.OriginCore
	}
	return e.Next(req)
}

// EstProcessingTime estimates the scheduler's CPU cost.
func (s *NoOp) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return s.Env.Model.NoOpSched
}

// BlkSwitch is the load-aware queue-steering scheduler. Following the
// blk-switch design's separation of latency-critical from throughput-bound
// requests, small requests (≤ steer_max_kb, default 16) are steered to the
// least-loaded hardware queue, while large throughput-bound requests stay
// core-keyed so they cannot crowd every queue.
type BlkSwitch struct {
	core.Base
	dev      *device.Device
	steerMax int
}

// Info describes the module.
func (s *BlkSwitch) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: BlkSwitchType, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure binds the device whose queues are steered.
func (s *BlkSwitch) Configure(cfg core.Config, env *core.Env) error {
	if err := s.Base.Configure(cfg, env); err != nil {
		return err
	}
	name := cfg.Attr("device", "")
	if name == "" {
		return fmt.Errorf("iosched: blkswitch vertex %q needs a 'device' attribute", cfg.UUID)
	}
	dev, err := env.Device(name)
	if err != nil {
		return err
	}
	s.dev = dev
	maxKB, _ := strconv.Atoi(cfg.Attr("steer_max_kb", "16"))
	if maxKB < 1 {
		maxKB = 16
	}
	s.steerMax = maxKB << 10
	return nil
}

// Process steers latency-critical requests to the hardware queue that
// drains soonest; throughput-bound requests stay on their core's queue.
func (s *BlkSwitch) Process(e *core.Exec, req *core.Request) error {
	req.Charge("sched", e.Model.BlkSwitchSched)
	own := req.OriginCore % s.dev.HardwareQueues()
	if req.Size > s.steerMax {
		req.Hctx = own
		return e.Next(req)
	}
	ownH := s.dev.QueueHorizon(own)
	best, bestT := own, ownH
	for q := 0; q < s.dev.HardwareQueues(); q++ {
		if h := s.dev.QueueHorizon(q); h < bestT {
			best, bestT = q, h
		}
	}
	if ownH <= bestT {
		best = own
	}
	req.Hctx = best
	return e.Next(req)
}

// EstProcessingTime estimates the scheduler's CPU cost.
func (s *BlkSwitch) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return s.Env.Model.BlkSwitchSched
}

// StateRepair revalidates the device binding.
func (s *BlkSwitch) StateRepair() error {
	dev, err := s.Env.Device(s.Cfg.Attr("device", ""))
	if err != nil {
		return err
	}
	s.dev = dev
	return nil
}
