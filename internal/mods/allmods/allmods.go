// Package allmods registers every LabMod that ships with the platform.
// Importing it (for side effects) is the equivalent of mounting the default
// LabMod repo: all module types become instantiable by name.
package allmods

import (
	_ "labstor/internal/mods/compressmod"
	_ "labstor/internal/mods/consistency"
	_ "labstor/internal/mods/driver"
	_ "labstor/internal/mods/dummy"
	_ "labstor/internal/mods/generic"
	_ "labstor/internal/mods/iosched"
	_ "labstor/internal/mods/labfs"
	_ "labstor/internal/mods/labkvs"
	_ "labstor/internal/mods/lru"
	_ "labstor/internal/mods/perm"
	_ "labstor/internal/mods/pushdown"
	_ "labstor/internal/mods/readahead"
)
