package lru_test

import (
	"bytes"
	"fmt"
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/driver"
	_ "labstor/internal/mods/dummy"
	"labstor/internal/mods/lru"
	"labstor/internal/mods/modtest"
)

func mountCache(t *testing.T, h *modtest.Harness, attrs map[string]string) *core.Stack {
	if attrs == nil {
		attrs = map[string]string{}
	}
	return h.Mount(t, "blk::/c",
		modtest.ChainVertex{UUID: "cache", Type: lru.Type, Attrs: attrs},
		modtest.ChainVertex{UUID: "drv", Type: driver.KernelDriverType, Attrs: map[string]string{"device": "dev0"}},
	)
}

func cacheInstance(t *testing.T, h *modtest.Harness) *lru.Cache {
	m, err := h.Registry.Get("cache")
	if err != nil {
		t.Fatal(err)
	}
	return m.(*lru.Cache)
}

func TestWriteThroughAndReadHit(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, nil)
	c := cacheInstance(t, h)

	data := bytes.Repeat([]byte{7}, 4096)
	if err := h.Run(t, s, modtest.BlockWriteReq(4096, data)); err != nil {
		t.Fatal(err)
	}
	// Write-through: data reached the device.
	devBuf := make([]byte, 4096)
	h.Dev.ReadAt(devBuf, 4096)
	if !bytes.Equal(devBuf, data) {
		t.Fatal("write-through miss on device")
	}
	// Read hits the cache: no new device read.
	devReadsBefore, _, _, _, _ := h.Dev.Stats()
	r := modtest.BlockReadReq(4096, 4096)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("cache hit returned wrong data")
	}
	devReadsAfter, _, _, _, _ := h.Dev.Stats()
	if devReadsAfter != devReadsBefore {
		t.Fatal("cache hit still touched the device")
	}
	hits, misses, resident := c.Stats()
	if hits != 1 || misses != 0 || resident != 1 {
		t.Fatalf("stats: %d/%d/%d", hits, misses, resident)
	}
}

func TestReadMissFillsCache(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, nil)
	// Seed the device directly — the cache has never seen this block.
	seed := bytes.Repeat([]byte{9}, 4096)
	h.Dev.WriteAt(seed, 0)
	r := modtest.BlockReadReq(0, 4096)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, seed) {
		t.Fatal("miss data")
	}
	// Second read is a hit.
	before, _, _, _, _ := h.Dev.Stats()
	r2 := modtest.BlockReadReq(0, 4096)
	h.Run(t, s, r2)
	after, _, _, _, _ := h.Dev.Stats()
	if after != before {
		t.Fatal("second read missed")
	}
}

func TestEvictionBound(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	// 1 MiB cache = 256 pages.
	s := mountCache(t, h, map[string]string{"capacity_mb": "1"})
	c := cacheInstance(t, h)
	buf := make([]byte, 4096)
	for i := 0; i < 400; i++ {
		if err := h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, resident := c.Stats()
	if resident > 256 {
		t.Fatalf("cache exceeded capacity: %d pages", resident)
	}
	// Oldest pages evicted: reading block 0 misses (device read occurs).
	before, _, _, _, _ := h.Dev.Stats()
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	after, _, _, _, _ := h.Dev.Stats()
	if after == before {
		t.Fatal("evicted page served from cache")
	}
}

func TestLRUOrderingOnAccess(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, map[string]string{"capacity_mb": "1"}) // 256 pages
	c := cacheInstance(t, h)
	buf := make([]byte, 4096)
	// Fill exactly to capacity.
	for i := 0; i < 256; i++ {
		h.Run(t, s, modtest.BlockWriteReq(int64(i)*4096, buf))
	}
	// Touch block 0 so it is MRU, then insert one more.
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	h.Run(t, s, modtest.BlockWriteReq(256*4096, buf))
	// Block 0 must still be cached (block 1 was the LRU victim).
	before, _, _, _, _ := h.Dev.Stats()
	h.Run(t, s, modtest.BlockReadReq(0, 4096))
	after, _, _, _, _ := h.Dev.Stats()
	if after != before {
		t.Fatal("recently-used page was evicted")
	}
	_, _, resident := c.Stats()
	if resident != 256 {
		t.Fatalf("resident %d", resident)
	}
}

func TestWriteBackAbsorbsAndFlushes(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, map[string]string{"policy": "writeback"})
	c := cacheInstance(t, h)
	data := bytes.Repeat([]byte{3}, 4096)
	if err := h.Run(t, s, modtest.BlockWriteReq(8192, data)); err != nil {
		t.Fatal(err)
	}
	// Absorbed: device still zero.
	devBuf := make([]byte, 4096)
	h.Dev.ReadAt(devBuf, 8192)
	if devBuf[0] != 0 {
		t.Fatal("write-back leaked to device early")
	}
	if c.DirtyPages() != 1 {
		t.Fatalf("dirty %d", c.DirtyPages())
	}
	// Flush pushes it down.
	fl := core.NewRequest(core.OpBlockFlush)
	if err := h.Run(t, s, fl); err != nil {
		t.Fatal(err)
	}
	h.Dev.ReadAt(devBuf, 8192)
	if !bytes.Equal(devBuf, data) {
		t.Fatal("flush did not persist dirty page")
	}
	if c.DirtyPages() != 0 {
		t.Fatal("dirty pages after flush")
	}
}

func TestUnalignedBypass(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, nil)
	c := cacheInstance(t, h)
	// Unaligned write bypasses caching but still lands on the device.
	data := []byte("unaligned")
	if err := h.Run(t, s, modtest.BlockWriteReq(100, data)); err != nil {
		t.Fatal(err)
	}
	_, _, resident := c.Stats()
	if resident != 0 {
		t.Fatal("unaligned write cached")
	}
	r := modtest.BlockReadReq(100, len(data))
	h.Run(t, s, r)
	if !bytes.Equal(r.Data, data) {
		t.Fatal("unaligned round trip")
	}
}

func TestStateUpdateKeepsCacheWarm(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	s := mountCache(t, h, nil)
	data := bytes.Repeat([]byte{5}, 4096)
	h.Run(t, s, modtest.BlockWriteReq(0, data))

	// Live-upgrade the cache module.
	next := &lru.Cache{}
	if err := next.Configure(core.Config{UUID: "cache"}, h.Env); err != nil {
		t.Fatal(err)
	}
	if err := h.Registry.Swap("cache", next); err != nil {
		t.Fatal(err)
	}
	// The new instance serves the old instance's pages.
	before, _, _, _, _ := h.Dev.Stats()
	r := modtest.BlockReadReq(0, 4096)
	h.Run(t, s, r)
	after, _, _, _, _ := h.Dev.Stats()
	if after != before {
		t.Fatal("upgrade lost the cache contents")
	}
	if !bytes.Equal(r.Data, data) {
		t.Fatal("warm data mismatch")
	}
}

func TestConfigureValidation(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	c := &lru.Cache{}
	// Nonsense capacities fall back to sane defaults rather than zero.
	if err := c.Configure(core.Config{UUID: "x", Attrs: map[string]string{"capacity_mb": "-3", "page_kb": "0"}}, h.Env); err != nil {
		t.Fatal(err)
	}
	if est := c.EstProcessingTime(core.OpBlockWrite, 4096); est <= 0 {
		t.Fatal("est")
	}
}

func TestMetadataOpsPassThrough(t *testing.T) {
	h := modtest.New(t, device.NVMe, 64<<20)
	// cache -> dummy sink that records the op
	s := h.Mount(t, "blk::/c2",
		modtest.ChainVertex{UUID: "cache2", Type: lru.Type},
		modtest.ChainVertex{UUID: "sink", Type: "labstor.dummy"},
	)
	req := core.NewRequest(core.OpMessage)
	if err := h.Run(t, s, req); err != nil {
		t.Fatal(err)
	}
	if req.Result != 1 {
		t.Fatal("non-data op not forwarded")
	}
	_ = fmt.Sprint()
}
