// Package lru implements the LRU page-cache LabMod: a block-level
// write-through (or write-back) cache with least-recently-used eviction.
// It is the "page cache" stage of the paper's Lab-All stack, whose data
// copies account for ~17% of a 4KB request's time in the Fig. 4(a) anatomy.
package lru

import (
	"container/list"
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.lru"

func init() {
	core.RegisterType(Type, func() core.Module { return &Cache{} })
}

// page is one cached block.
type page struct {
	off   int64
	data  []byte
	dirty bool
	elem  *list.Element
}

// Cache is the LRU page-cache module instance.
type Cache struct {
	core.Base

	mu       sync.Mutex
	pages    map[int64]*page
	order    *list.List // front = most recent
	capacity int        // max pages
	pageSize int
	policy   string // "writethrough" | "writeback"

	hits   int64
	misses int64
}

// Info describes the module.
func (c *Cache) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure sets capacity (attr "capacity_mb", default 64), page size
// (attr "page_kb", default 4) and write policy (attr "policy").
func (c *Cache) Configure(cfg core.Config, env *core.Env) error {
	if err := c.Base.Configure(cfg, env); err != nil {
		return err
	}
	capMB, _ := strconv.Atoi(cfg.Attr("capacity_mb", "64"))
	if capMB <= 0 {
		capMB = 64
	}
	pageKB, _ := strconv.Atoi(cfg.Attr("page_kb", "4"))
	if pageKB <= 0 {
		pageKB = 4
	}
	c.pageSize = pageKB << 10
	c.capacity = (capMB << 20) / c.pageSize
	if c.capacity < 1 {
		c.capacity = 1
	}
	c.policy = cfg.Attr("policy", "writethrough")
	c.pages = make(map[int64]*page)
	c.order = list.New()
	return nil
}

// Process serves block reads from cache when possible and keeps the cache
// coherent on writes.
func (c *Cache) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockRead, core.OpRead:
		return c.processRead(e, req)
	case core.OpBlockWrite, core.OpWrite, core.OpAppend:
		return c.processWrite(e, req)
	case core.OpBlockFlush:
		return c.processFlush(e, req)
	default:
		// Metadata and other ops pass through untouched.
		return e.Next(req)
	}
}

func (c *Cache) processRead(e *core.Exec, req *core.Request) error {
	// Lookup + LRU maintenance + (on hit) copy out of the page.
	req.Charge("cache", e.Model.LRUCacheOp+e.Model.Copy(req.Size))
	if req.Size == c.pageSize && req.Offset%int64(c.pageSize) == 0 {
		c.mu.Lock()
		if p, ok := c.pages[req.Offset]; ok {
			c.order.MoveToFront(p.elem)
			c.hits++
			if req.Data == nil {
				req.Data = make([]byte, c.pageSize)
			}
			// Copy out under the lock: page buffers are recycled through the
			// arena on eviction/replacement, so p.data must not be read after
			// the lock is dropped.
			copy(req.Data, p.data)
			c.mu.Unlock()
			req.Result = int64(c.pageSize)
			return nil
		}
		c.misses++
		c.mu.Unlock()
		if err := e.Next(req); err != nil {
			return err
		}
		data := req.Data
		if data == nil {
			data = req.Value
		}
		if data != nil {
			c.insert(req.Offset, data, false)
		}
		return nil
	}
	// Unaligned access: bypass the cache.
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return e.Next(req)
}

func (c *Cache) processWrite(e *core.Exec, req *core.Request) error {
	// Page allocation + copy into the cache.
	req.Charge("cache", e.Model.LRUCacheOp+e.Model.Copy(req.Size))
	aligned := req.Size == c.pageSize && req.Offset%int64(c.pageSize) == 0
	if aligned {
		c.insert(req.Offset, req.Data, c.policy == "writeback")
		if c.policy == "writeback" {
			req.Result = int64(req.Size)
			return nil // absorbed; flushed on eviction or OpBlockFlush
		}
	}
	return e.Next(req)
}

func (c *Cache) processFlush(e *core.Exec, req *core.Request) error {
	req.Charge("cache", e.Model.LRUCacheOp)
	if c.policy != "writeback" {
		return e.Next(req)
	}
	// Write back every dirty page downstream. Page contents are snapshotted
	// under the lock: a concurrent insert may replace a page's buffer and
	// recycle the old one through the arena, so p.data cannot be handed to
	// the downstream write directly.
	type flushPage struct {
		off  int64
		data []byte
	}
	c.mu.Lock()
	dirty := make([]flushPage, 0)
	for _, p := range c.pages {
		if p.dirty {
			p.dirty = false
			cp := core.AcquireBuf(len(p.data))
			copy(cp, p.data)
			dirty = append(dirty, flushPage{off: p.off, data: cp})
		}
	}
	c.mu.Unlock()
	for _, fp := range dirty {
		child := req.Child(core.OpBlockWrite)
		child.Offset = fp.off
		child.Size = len(fp.data)
		child.Data = fp.data
		err := e.SpawnNext(req, child)
		child.Data = nil
		core.ReleaseBuf(fp.data)
		if err != nil {
			return err
		}
	}
	return e.Next(req)
}

// insert adds/updates a page and evicts LRU pages beyond capacity. Evicted
// dirty pages are lost unless flushed first — writeback callers must flush;
// the functional tests cover this contract. Page buffers are drawn from the
// payload arena (the cache-miss path is the steady-state allocation site)
// and returned to it on replacement and eviction.
func (c *Cache) insert(off int64, data []byte, dirty bool) {
	cp := core.AcquireBuf(len(data))
	copy(cp, data)
	c.mu.Lock()
	if p, ok := c.pages[off]; ok {
		old := p.data
		p.data = cp
		p.dirty = p.dirty || dirty
		c.order.MoveToFront(p.elem)
		c.mu.Unlock()
		core.ReleaseBuf(old)
		return
	}
	p := &page{off: off, data: cp, dirty: dirty}
	p.elem = c.order.PushFront(p)
	c.pages[off] = p
	var evicted [][]byte
	for len(c.pages) > c.capacity {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*page)
		c.order.Remove(tail)
		delete(c.pages, victim.off)
		evicted = append(evicted, victim.data)
	}
	c.mu.Unlock()
	for _, b := range evicted {
		core.ReleaseBuf(b)
	}
}

// Stats returns hit/miss counters and the resident page count.
func (c *Cache) Stats() (hits, misses int64, resident int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.pages)
}

// DirtyPages returns the number of dirty (unflushed) pages.
func (c *Cache) DirtyPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.pages {
		if p.dirty {
			n++
		}
	}
	return n
}

// StateUpdate migrates the cached pages from the previous instance (live
// upgrade keeps the cache warm).
func (c *Cache) StateUpdate(prev core.Module) error {
	old, ok := prev.(*Cache)
	if !ok {
		return nil
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := old.order.Back(); e != nil; e = e.Prev() {
		p := e.Value.(*page)
		np := &page{off: p.off, data: p.data, dirty: p.dirty}
		np.elem = c.order.PushFront(np)
		c.pages[np.off] = np
	}
	c.hits, c.misses = old.hits, old.misses
	return nil
}

// EstProcessingTime estimates the cache's CPU cost for a request.
func (c *Cache) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return c.Env.Model.LRUCacheOp + c.Env.Model.Copy(size)
}
