// Package lru implements the LRU page-cache LabMod: a block-level
// write-through (or write-back) cache with least-recently-used eviction.
// It is the "page cache" stage of the paper's Lab-All stack, whose data
// copies account for ~17% of a 4KB request's time in the Fig. 4(a) anatomy.
//
// The read path is zero-copy (DESIGN.md §13): a cache miss whose fill
// landed in a stack-owned buffer is retained by reference instead of
// copied, and a hit with no caller destination hands out a retained view
// of the page. The only remaining read-path copies are hit-into-caller-
// buffer (the caller chose its destination) and fills from borrowed
// client memory, which the cache may not retain. Writes always copy —
// the payload is the client's registered buffer, and it may be rewritten
// the moment the request completes — but the copy lands in a
// handle-backed page, so later reads (and pushdown scans) of
// write-inserted data still get zero-copy handouts.
package lru

import (
	"container/list"
	"strconv"
	"sync"

	"labstor/internal/core"
	"labstor/internal/telemetry"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.lru"

func init() {
	core.RegisterType(Type, func() core.Module { return &Cache{} })
}

// Remaining copy sites on the cache paths (telemetry copies/op audit).
var (
	copyHitOut      = telemetry.CopySite("lru.hit_copy_out")
	copyFill        = telemetry.CopySite("lru.fill_copy")
	copyWriteInsert = telemetry.CopySite("lru.write_insert")
	copyFlushSnap   = telemetry.CopySite("lru.flush_snapshot")
)

// page is one cached block. Handle-backed pages (h.Valid()) hold a
// retained reference into the zero-copy arena; legacy pages own an arena
// buffer outright.
type page struct {
	off   int64
	data  []byte
	h     core.BufHandle
	dirty bool
	elem  *list.Element
}

// release returns the page's buffer to wherever it came from.
func (p *page) release() {
	if p.h.Valid() {
		p.h.Release()
		p.h = core.BufHandle{}
		return
	}
	core.ReleaseBuf(p.data)
}

// Cache is the LRU page-cache module instance.
type Cache struct {
	core.Base

	mu       sync.Mutex
	pages    map[int64]*page
	order    *list.List // front = most recent
	capacity int        // max pages
	pageSize int
	policy   string // "writethrough" | "writeback"

	hits   int64
	misses int64
}

// Info describes the module.
func (c *Cache) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIBlock, Produces: core.APIBlock}
}

// Configure sets capacity (attr "capacity_mb", default 64), page size
// (attr "page_kb", default 4) and write policy (attr "policy").
func (c *Cache) Configure(cfg core.Config, env *core.Env) error {
	if err := c.Base.Configure(cfg, env); err != nil {
		return err
	}
	capMB, _ := strconv.Atoi(cfg.Attr("capacity_mb", "64"))
	if capMB <= 0 {
		capMB = 64
	}
	pageKB, _ := strconv.Atoi(cfg.Attr("page_kb", "4"))
	if pageKB <= 0 {
		pageKB = 4
	}
	c.pageSize = pageKB << 10
	c.capacity = (capMB << 20) / c.pageSize
	if c.capacity < 1 {
		c.capacity = 1
	}
	c.policy = cfg.Attr("policy", "writethrough")
	c.pages = make(map[int64]*page)
	c.order = list.New()
	return nil
}

// Process serves block reads from cache when possible and keeps the cache
// coherent on writes.
func (c *Cache) Process(e *core.Exec, req *core.Request) error {
	switch req.Op {
	case core.OpBlockRead, core.OpRead:
		return c.processRead(e, req)
	case core.OpBlockWrite, core.OpWrite, core.OpAppend:
		return c.processWrite(e, req)
	case core.OpBlockFlush:
		return c.processFlush(e, req)
	default:
		// Metadata and other ops pass through untouched.
		return e.Next(req)
	}
}

func (c *Cache) processRead(e *core.Exec, req *core.Request) error {
	// Lookup + LRU maintenance; data-movement charges land on the paths
	// that actually move bytes.
	req.Charge("cache", e.Model.LRUCacheOp)
	if req.Size == c.pageSize && req.Offset%int64(c.pageSize) == 0 {
		c.mu.Lock()
		if p, ok := c.pages[req.Offset]; ok {
			c.order.MoveToFront(p.elem)
			c.hits++
			if req.Data == nil && p.h.Valid() {
				// Zero-copy hit: hand the caller a retained view of the
				// page. The refcount keeps the bytes stable even if the
				// page is replaced or evicted before the caller releases.
				req.ValueH = p.h.Retain()
				c.mu.Unlock()
				req.Value = req.ValueH.Bytes()
				req.Data = req.Value
				req.Result = int64(c.pageSize)
				return nil
			}
			if req.Data == nil {
				req.Data = req.CompleteValue(c.pageSize)
			}
			// Copy out under the lock: legacy page buffers are recycled
			// through the arena on eviction/replacement, so p.data must
			// not be read after the lock is dropped.
			copy(req.Data, p.data)
			c.mu.Unlock()
			copyHitOut.Add(c.pageSize)
			req.Charge("cache", e.Model.Copy(req.Size))
			req.Result = int64(c.pageSize)
			return nil
		}
		c.misses++
		c.mu.Unlock()
		if err := e.Next(req); err != nil {
			return err
		}
		c.insertFill(e, req)
		return nil
	}
	// Unaligned access: bypass the cache.
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return e.Next(req)
}

// insertFill caches the result of a read miss. Stack-owned fills (the
// request's own result handle, or a stack-owned destination view cut by a
// parent request) are retained in place — no copy; borrowed client
// destinations are copied, because the client may rewrite its registered
// buffer the moment the request completes.
func (c *Cache) insertFill(e *core.Exec, req *core.Request) {
	var h core.BufHandle
	switch {
	case req.Buf.Valid() && req.Buf.Owned() && req.Buf.Len() == c.pageSize:
		h = req.Buf.Retain()
	case req.ValueH.Valid() && req.ValueH.Len() == c.pageSize:
		h = req.ValueH.Retain()
	}
	if h.Valid() {
		c.insertPage(&page{off: req.Offset, data: h.Bytes(), h: h})
		return
	}
	data := req.Data
	if data == nil {
		data = req.Value
	}
	if data == nil {
		return
	}
	copyFill.Add(len(data))
	req.Charge("cache", e.Model.Copy(len(data)))
	cp := core.AcquireBuf(len(data))
	copy(cp, data)
	c.insertPage(&page{off: req.Offset, data: cp})
}

func (c *Cache) processWrite(e *core.Exec, req *core.Request) error {
	// Page allocation + copy into the cache: the write payload is borrowed
	// from the client's registered buffer, so the cache must take its own
	// copy (DESIGN.md §13 — write payloads may never be retained).
	req.Charge("cache", e.Model.LRUCacheOp+e.Model.Copy(req.Size))
	aligned := req.Size == c.pageSize && req.Offset%int64(c.pageSize) == 0
	if aligned {
		copyWriteInsert.Add(req.Size)
		// Handle-backed insert: the copied page can be handed out as a
		// retained view on later Data==nil reads (get-after-put and
		// pushdown scans over warm data are then zero-copy).
		h := core.AcquireHandle(req.HomeNode, len(req.Data))
		copy(h.Bytes(), req.Data)
		c.insertPage(&page{off: req.Offset, data: h.Bytes(), h: h, dirty: c.policy == "writeback"})
		if c.policy == "writeback" {
			req.Result = int64(req.Size)
			return nil // absorbed; flushed on eviction or OpBlockFlush
		}
	}
	return e.Next(req)
}

func (c *Cache) processFlush(e *core.Exec, req *core.Request) error {
	req.Charge("cache", e.Model.LRUCacheOp)
	if c.policy != "writeback" {
		return e.Next(req)
	}
	// Write back every dirty page downstream. Handle-backed pages are
	// pinned by retaining them — a concurrent replacement releases its own
	// reference but cannot recycle ours. Legacy pages are snapshotted by
	// copy, since their buffer goes straight back to the arena when
	// replaced.
	type flushPage struct {
		off  int64
		data []byte
		h    core.BufHandle
	}
	c.mu.Lock()
	dirty := make([]flushPage, 0)
	for _, p := range c.pages {
		if p.dirty {
			p.dirty = false
			if p.h.Valid() {
				h := p.h.Retain()
				dirty = append(dirty, flushPage{off: p.off, data: h.Bytes(), h: h})
				continue
			}
			copyFlushSnap.Add(len(p.data))
			cp := core.AcquireBuf(len(p.data))
			copy(cp, p.data)
			dirty = append(dirty, flushPage{off: p.off, data: cp})
		}
	}
	c.mu.Unlock()
	for _, fp := range dirty {
		child := req.Child(core.OpBlockWrite)
		child.Offset = fp.off
		child.Size = len(fp.data)
		child.Data = fp.data
		err := e.SpawnNext(req, child)
		child.Data = nil
		if fp.h.Valid() {
			fp.h.Release()
		} else {
			core.ReleaseBuf(fp.data)
		}
		if err != nil {
			return err
		}
	}
	return e.Next(req)
}

// insertPage adds/updates a page and evicts LRU pages beyond capacity.
// Evicted dirty pages are lost unless flushed first — writeback callers
// must flush; the functional tests cover this contract. The page's buffer
// is owned by the cache from here on: a retained handle reference, or an
// arena buffer returned on replacement/eviction.
func (c *Cache) insertPage(np *page) {
	c.mu.Lock()
	if p, ok := c.pages[np.off]; ok {
		old := *p
		p.data, p.h = np.data, np.h
		p.dirty = p.dirty || np.dirty
		c.order.MoveToFront(p.elem)
		c.mu.Unlock()
		old.release()
		return
	}
	np.elem = c.order.PushFront(np)
	c.pages[np.off] = np
	var evicted []*page
	for len(c.pages) > c.capacity {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*page)
		c.order.Remove(tail)
		delete(c.pages, victim.off)
		evicted = append(evicted, victim)
	}
	c.mu.Unlock()
	for _, p := range evicted {
		p.release()
	}
}

// Stats returns hit/miss counters and the resident page count.
func (c *Cache) Stats() (hits, misses int64, resident int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.pages)
}

// DirtyPages returns the number of dirty (unflushed) pages.
func (c *Cache) DirtyPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.pages {
		if p.dirty {
			n++
		}
	}
	return n
}

// StateUpdate migrates the cached pages from the previous instance (live
// upgrade keeps the cache warm). Buffer ownership — handle references and
// arena buffers alike — transfers to the new instance; the old one is
// discarded without releasing.
func (c *Cache) StateUpdate(prev core.Module) error {
	old, ok := prev.(*Cache)
	if !ok {
		return nil
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := old.order.Back(); e != nil; e = e.Prev() {
		p := e.Value.(*page)
		np := &page{off: p.off, data: p.data, h: p.h, dirty: p.dirty}
		np.elem = c.order.PushFront(np)
		c.pages[np.off] = np
	}
	c.hits, c.misses = old.hits, old.misses
	return nil
}

// EstProcessingTime estimates the cache's CPU cost for a request.
func (c *Cache) EstProcessingTime(op core.Op, size int) vtime.Duration {
	return c.Env.Model.LRUCacheOp + c.Env.Model.Copy(size)
}
