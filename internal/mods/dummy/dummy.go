// Package dummy implements the diagnostic LabMod used by the paper's
// live-upgrade evaluation (Table I): a terminal module that counts the
// messages sent to it and carries that counter across StateUpdate, so the
// upgrade protocol's state-transfer path is exercised end to end.
package dummy

import (
	"strconv"
	"sync/atomic"

	"labstor/internal/core"
	"labstor/internal/vtime"
)

// Type is the registered module type name.
const Type = "labstor.dummy"

func init() {
	core.RegisterType(Type, func() core.Module { return &Dummy{} })
}

// Dummy is the message-counting module instance.
type Dummy struct {
	core.Base
	cost     vtime.Duration
	messages atomic.Int64
	repairs  atomic.Int64
}

// Info describes the module.
func (d *Dummy) Info() core.ModuleInfo {
	return core.ModuleInfo{Type: Type, Version: "1.0", Consumes: core.APIAny, Produces: core.APIAny}
}

// Configure reads the per-message modeled cost (attr "cost_ns", default
// 500ns).
func (d *Dummy) Configure(cfg core.Config, env *core.Env) error {
	if err := d.Base.Configure(cfg, env); err != nil {
		return err
	}
	ns, err := strconv.Atoi(cfg.Attr("cost_ns", "500"))
	if err != nil || ns < 0 {
		ns = 500
	}
	d.cost = vtime.Duration(ns)
	return nil
}

// Process counts the message; if the vertex has downstream outputs the
// request is forwarded, otherwise it completes here.
func (d *Dummy) Process(e *core.Exec, req *core.Request) error {
	req.Charge("dummy", d.cost)
	d.messages.Add(1)
	req.Result = d.messages.Load()
	if e.HasNext(req) {
		return e.Next(req)
	}
	return nil
}

// Messages returns the processed-message counter.
func (d *Dummy) Messages() int64 { return d.messages.Load() }

// Repairs returns how many times StateRepair ran.
func (d *Dummy) Repairs() int64 { return d.repairs.Load() }

// StateUpdate transfers the message counter from the previous instance —
// "the state needed to be transferred was simply a few bytes".
func (d *Dummy) StateUpdate(prev core.Module) error {
	if old, ok := prev.(*Dummy); ok {
		d.messages.Store(old.messages.Load())
	}
	return nil
}

// StateRepair counts crash repairs (diagnostics for recovery tests).
func (d *Dummy) StateRepair() error {
	d.repairs.Add(1)
	return nil
}

// EstProcessingTime reports the configured message cost.
func (d *Dummy) EstProcessingTime(op core.Op, size int) vtime.Duration { return d.cost }
