package dummy_test

import (
	"testing"

	"labstor/internal/core"
	"labstor/internal/device"
	"labstor/internal/mods/dummy"
	"labstor/internal/mods/modtest"
)

func TestDummyCountsMessages(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := h.Mount(t, "msg::/d", modtest.ChainVertex{UUID: "d", Type: dummy.Type})
	for i := 1; i <= 5; i++ {
		r := core.NewRequest(core.OpMessage)
		if err := h.Run(t, s, r); err != nil {
			t.Fatal(err)
		}
		if r.Result != int64(i) {
			t.Fatalf("message %d result %d", i, r.Result)
		}
	}
	m, _ := h.Registry.Get("d")
	if m.(*dummy.Dummy).Messages() != 5 {
		t.Fatal("counter")
	}
}

func TestDummyForwardsWhenChained(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := h.Mount(t, "msg::/chain",
		modtest.ChainVertex{UUID: "d1", Type: dummy.Type},
		modtest.ChainVertex{UUID: "d2", Type: dummy.Type},
	)
	r := core.NewRequest(core.OpMessage)
	if err := h.Run(t, s, r); err != nil {
		t.Fatal(err)
	}
	m2, _ := h.Registry.Get("d2")
	if m2.(*dummy.Dummy).Messages() != 1 {
		t.Fatal("chained dummy not reached")
	}
}

func TestDummyStateTransfer(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := h.Mount(t, "msg::/d", modtest.ChainVertex{UUID: "d", Type: dummy.Type})
	for i := 0; i < 3; i++ {
		h.Run(t, s, core.NewRequest(core.OpMessage))
	}
	next := &dummy.Dummy{}
	next.Configure(core.Config{UUID: "d"}, h.Env)
	if err := h.Registry.Swap("d", next); err != nil {
		t.Fatal(err)
	}
	if next.Messages() != 3 {
		t.Fatalf("state not transferred: %d", next.Messages())
	}
	r := core.NewRequest(core.OpMessage)
	h.Run(t, s, r)
	if r.Result != 4 {
		t.Fatalf("counter continuity: %d", r.Result)
	}
}

func TestDummyRepairCounter(t *testing.T) {
	d := &dummy.Dummy{}
	d.StateRepair()
	d.StateRepair()
	if d.Repairs() != 2 {
		t.Fatal("repairs")
	}
}

func TestDummyConfigurableCost(t *testing.T) {
	h := modtest.New(t, device.NVMe, 1<<20)
	s := h.Mount(t, "msg::/d", modtest.ChainVertex{
		UUID: "d", Type: dummy.Type, Attrs: map[string]string{"cost_ns": "5000"},
	})
	r := core.NewRequest(core.OpMessage)
	h.Run(t, s, r)
	if r.CPUTime < 5000 {
		t.Fatalf("configured cost not charged: %v", r.CPUTime)
	}
}
