package pushdown

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"labstor/internal/core"
	"labstor/internal/spec"
)

// rec builds a test record: u32 tag at offset 0, u64 value at offset 4,
// then a text tail.
func rec(tag uint32, val uint64, tail string) []byte {
	b := make([]byte, 12, 12+len(tail))
	binary.LittleEndian.PutUint32(b[0:], tag)
	binary.LittleEndian.PutUint64(b[4:], val)
	return append(b, tail...)
}

func TestCompile(t *testing.T) {
	good := []string{
		"count",
		"filter where u32@0 == 7",
		"filter where u32@0 == 0x2a",
		"filter where substr \"error\"",
		"filter where u8@3 != 0 and substr \"x\" and u64@4 >= 100",
		"sum u64@4 where u32@0 < 3",
		"min u16@2",
		"max u8@0 where u32@0 > 1",
		"count where u32@0 <= 5",
	}
	for _, src := range good {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"frobnicate",
		"filter",                      // filter needs a where clause
		"sum",                         // missing operand
		"sum u32",                     // bad field
		"sum u9@0",                    // bad width
		"sum u32@-1",                  // negative offset
		"filter u32@0 == 7",           // missing where
		"filter where u32@0 ~= 7",     // bad comparator
		"filter where u32@0 == bacon", // bad number
		"filter where u32@0 == 1 and", // dangling and
		"filter where substr error",   // unquoted literal
		"filter where substr \"\"",    // empty literal
		"count where substr \"a",      // unterminated string
		"count extra",                 // trailing garbage
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestRefStability(t *testing.T) {
	p1, err := Compile("count where u32@0 == 7")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("count where u32@0 == 7")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Ref != p2.Ref {
		t.Fatalf("same source, different refs: %s vs %s", p1.Ref, p2.Ref)
	}
	if !strings.HasPrefix(p1.Ref, RefPrefix) || len(p1.Ref) != len(RefPrefix)+16 {
		t.Fatalf("malformed ref %q", p1.Ref)
	}
	p3, err := Compile("count where u32@0 == 8")
	if err != nil {
		t.Fatal(err)
	}
	if p3.Ref == p1.Ref {
		t.Fatal("different source, same ref")
	}
}

func TestEvalFilterAndAggregates(t *testing.T) {
	recs := [][]byte{
		rec(1, 10, "alpha"),
		rec(2, 20, "beta error"),
		rec(1, 30, "gamma"),
		rec(3, 40, "delta error"),
	}
	cases := []struct {
		src     string
		matched int64
		result  int64 // aggregate value (aggregates only)
	}{
		{"count", 4, 4},
		{"count where u32@0 == 1", 2, 2},
		{"count where substr \"error\"", 2, 2},
		{"count where u32@0 != 1 and substr \"error\"", 2, 2},
		{"sum u64@4 where u32@0 == 1", 2, 40},
		{"min u64@4", 4, 10},
		{"max u64@4 where substr \"error\"", 2, 40},
		{"sum u64@4 where u32@0 >= 2", 2, 60},
	}
	for _, tc := range cases {
		p, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.src, err)
		}
		ev := NewEval(p, EmitKV, 0, 0)
		for _, r := range recs {
			if _, err := ev.Record("k", r); err != nil {
				t.Fatalf("%q: %v", tc.src, err)
			}
		}
		if ev.Matched() != tc.matched {
			t.Errorf("%q: matched %d, want %d", tc.src, ev.Matched(), tc.matched)
		}
		var req core.Request
		ev.Finish(&req)
		if req.Result != tc.result {
			t.Errorf("%q: result %d, want %d", tc.src, req.Result, tc.result)
		}
	}
}

func TestEvalFilterEmitKV(t *testing.T) {
	p, err := Compile("filter where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEval(p, EmitKV, 0, 0)
	want := map[string][]byte{"a": rec(1, 10, "one"), "c": rec(1, 30, "three")}
	for k, r := range map[string][]byte{"a": want["a"], "b": rec(2, 20, "two"), "c": want["c"]} {
		if _, err := ev.Record(k, r); err != nil {
			t.Fatal(err)
		}
	}
	var req core.Request
	ev.Finish(&req)
	if req.Result != int64(len(req.Value)) {
		t.Fatalf("Result %d != len(Value) %d", req.Result, len(req.Value))
	}
	got := map[string][]byte{}
	if err := DecodeKV(req.Value, func(key string, val []byte) error {
		got[key] = append([]byte(nil), val...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got["a"]) != string(want["a"]) || string(got["c"]) != string(want["c"]) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
}

func TestEvalChunkedRecords(t *testing.T) {
	// Field program across a chunk boundary: no assembly needed.
	p, err := Compile("sum u64@4 where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	full := rec(1, 99, "tail")
	ev := NewEval(p, EmitKV, 0, 0)
	// Split mid-u64: offsets 4..12 straddle the 7-byte boundary.
	if ok, err := ev.Record("k", full[:7], full[7:]); err != nil || !ok {
		t.Fatalf("chunked record: ok=%v err=%v", ok, err)
	}
	var req core.Request
	ev.Finish(&req)
	if req.Result != 99 {
		t.Fatalf("chunked sum = %d, want 99", req.Result)
	}

	// Substring program needs contiguous assembly and still matches.
	p2, err := Compile("count where substr \"needle\"")
	if err != nil {
		t.Fatal(err)
	}
	full2 := rec(9, 9, "hay needle stack")
	ev2 := NewEval(p2, EmitKV, 0, 0)
	if ok, err := ev2.Record("k", full2[:15], full2[15:]); err != nil || !ok {
		t.Fatalf("assembled substr: ok=%v err=%v", ok, err)
	}
}

func TestEvalShortRecord(t *testing.T) {
	p, err := Compile("sum u64@4 where u32@0 == 1")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEval(p, EmitKV, 0, 0)
	// 2 bytes: too short for the u32@0 predicate — no match, no error.
	if ok, err := ev.Record("k", []byte{1, 0}); err != nil || ok {
		t.Fatalf("short record: ok=%v err=%v", ok, err)
	}
}

func TestEvalBudgets(t *testing.T) {
	p, err := Compile("count")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEval(p, EmitKV, 8, 0) // 8-byte scan budget
	if _, err := ev.Record("k", make([]byte, 16)); !errors.Is(err, ErrBudget) {
		t.Fatalf("byte budget: got %v, want ErrBudget", err)
	}

	ev2 := NewEval(p, EmitKV, 0, 2) // 2-step budget, 1 step per record
	for i := 0; i < 2; i++ {
		if _, err := ev2.Record("k", []byte{1}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if _, err := ev2.Record("k", []byte{1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("step budget: got %v, want ErrBudget", err)
	}
}

func TestRegistryAndFunc(t *testing.T) {
	reg := NewRegistry()
	p, err := reg.Register("hot", "count where u32@0 == 7")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg.Lookup("hot"); !ok || got != p {
		t.Fatal("lookup by name failed")
	}
	if got, ok := reg.Lookup(p.Ref); !ok || got != p {
		t.Fatal("lookup by ref failed")
	}
	if _, ok := reg.Lookup("pd:ffffffffffffffff"); ok {
		t.Fatal("lookup of unknown ref succeeded")
	}

	fp := reg.RegisterFunc("odd-len", func(r []byte) bool { return len(r)%2 == 1 })
	if !fp.needsContiguous() {
		t.Fatal("closure program must need contiguous records")
	}
	ev := NewEval(fp, EmitRaw, 0, 0)
	if ok, _ := ev.Record("", []byte("abc")); !ok {
		t.Fatal("closure should match odd-length record")
	}
	if ok, _ := ev.Record("", []byte("abcd")); ok {
		t.Fatal("closure should reject even-length record")
	}
	if len(reg.Programs()) != 2 {
		t.Fatalf("Programs() = %d entries, want 2", len(reg.Programs()))
	}
}

func TestPolicyAdmitAndClamp(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("errs", "count where substr \"error\""); err != nil {
		t.Fatal(err)
	}
	hot, err := reg.Register("hot-sum", "sum u64@4")
	if err != nil {
		t.Fatal(err)
	}

	pol := NewPolicy(reg, []string{"errs"}, Caps{MaxBytes: 1 << 20, MaxSteps: 100})
	pol.SetTenant("gold", TenantRule{Allow: []string{"*"}, Caps: Caps{MaxBytes: 2 << 20}})
	pol.SetTenant("pfx", TenantRule{Allow: []string{"hot-*"}})
	pol.SetTenant("locked", TenantRule{})

	// Default list covers "errs" only.
	if _, err := pol.Admit("", "errs"); err != nil {
		t.Fatalf("default allow: %v", err)
	}
	if _, err := pol.Admit("", "hot-sum"); !errors.Is(err, ErrDenied) {
		t.Fatalf("default deny: %v", err)
	}
	if _, err := pol.Admit("", "nope"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unknown program: %v", err)
	}
	// Tenant rules override the default list.
	if _, err := pol.Admit("gold", "hot-sum"); err != nil {
		t.Fatalf("gold wildcard: %v", err)
	}
	if _, err := pol.Admit("pfx", "hot-sum"); err != nil {
		t.Fatalf("prefix allow: %v", err)
	}
	if _, err := pol.Admit("pfx", "errs"); !errors.Is(err, ErrDenied) {
		t.Fatalf("prefix deny: %v", err)
	}
	// Empty tenant allow-list = deny all (secure default).
	if _, err := pol.Admit("locked", "errs"); !errors.Is(err, ErrDenied) {
		t.Fatalf("locked tenant: %v", err)
	}
	// Admit by content-hash ref too.
	if _, err := pol.Admit("gold", hot.Ref); err != nil {
		t.Fatalf("admit by ref: %v", err)
	}

	// Clamp: default caps apply, tighter caller budgets survive.
	req := core.NewRequest(core.OpScan)
	pol.Clamp("", req)
	if req.ProgMaxBytes != 1<<20 || req.ProgMaxSteps != 100 {
		t.Fatalf("default clamp: bytes=%d steps=%d", req.ProgMaxBytes, req.ProgMaxSteps)
	}
	req2 := core.NewRequest(core.OpScan)
	req2.ProgMaxBytes = 512
	pol.Clamp("", req2)
	if req2.ProgMaxBytes != 512 {
		t.Fatalf("tighter caller budget overwritten: %d", req2.ProgMaxBytes)
	}
	// Tenant caps override defaults where set.
	req3 := core.NewRequest(core.OpScan)
	pol.Clamp("gold", req3)
	if req3.ProgMaxBytes != 2<<20 || req3.ProgMaxSteps != 100 {
		t.Fatalf("tenant clamp: bytes=%d steps=%d", req3.ProgMaxBytes, req3.ProgMaxSteps)
	}
}

func TestPolicyFromSpec(t *testing.T) {
	ps := spec.PushdownSpec{
		Programs:  map[string]string{"errs": "count where substr \"error\""},
		Allow:     []string{"errs"},
		MaxScanMB: 4,
		MaxSteps:  1000,
		Tenants: []spec.PushdownTenantSpec{
			{Name: "gold", Allow: []string{"*"}, MaxScanMB: 8},
		},
	}
	pol, err := PolicyFromSpec(ps, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.Admit("", "errs"); err != nil {
		t.Fatalf("spec program not admitted: %v", err)
	}
	req := core.NewRequest(core.OpScan)
	pol.Clamp("gold", req)
	if req.ProgMaxBytes != 8<<20 {
		t.Fatalf("spec tenant caps: %d", req.ProgMaxBytes)
	}

	bad := spec.PushdownSpec{Programs: map[string]string{"x": "not a program"}}
	if _, err := PolicyFromSpec(bad, NewRegistry()); err == nil {
		t.Fatal("bad program source accepted")
	}
}

func TestDecodeKVTorn(t *testing.T) {
	p, _ := Compile("filter where u8@0 == 1")
	ev := NewEval(p, EmitKV, 0, 0)
	ev.Record("key", []byte{1, 2, 3})
	var req core.Request
	ev.Finish(&req)
	for cut := 1; cut < len(req.Value); cut++ {
		// Truncations must error or decode fewer records, never panic.
		DecodeKV(req.Value[:cut], func(string, []byte) error { return nil })
	}
	if err := DecodeKV([]byte{0xff}, func(string, []byte) error { return nil }); err == nil {
		t.Fatal("torn buffer decoded cleanly")
	}
}
