package pushdown

import (
	"errors"
	"fmt"
	"strings"

	"labstor/internal/core"
	"labstor/internal/spec"
)

// ErrDenied rejects a program a tenant's allow-list does not cover.
var ErrDenied = errors.New("pushdown: program not allowed for tenant")

// ErrUnknownProgram rejects refs/names absent from the registry.
var ErrUnknownProgram = errors.New("pushdown: unknown program")

// Caps are per-request execution budget ceilings.
type Caps struct {
	MaxBytes int64
	MaxSteps int64
}

// TenantRule is one tenant's allow-list plus budget overrides.
type TenantRule struct {
	Allow []string
	Caps  Caps
}

// Policy is the pushdown policy/mechanism split's policy half (the PAIO
// shape serve's admission control already follows): which programs each
// tenant may run, and how much work one request may do. The mechanism —
// budgeted evaluation inside labkvs/labfs — never sees tenants.
type Policy struct {
	reg     *Registry
	defCaps Caps
	// allow is the default allow-list for tenants without a rule.
	// Empty = deny all (secure default).
	allow   []string
	tenants map[string]TenantRule
}

// NewPolicy returns a policy resolving against reg (Default when nil).
// allow is the default allow-list; caps the default budgets (zero fields
// fall back to the evaluator defaults).
func NewPolicy(reg *Registry, allow []string, caps Caps) *Policy {
	if reg == nil {
		reg = Default
	}
	return &Policy{reg: reg, defCaps: caps, allow: allow, tenants: make(map[string]TenantRule)}
}

// SetTenant installs or replaces a tenant rule.
func (p *Policy) SetTenant(name string, rule TenantRule) { p.tenants[name] = rule }

// Registry returns the registry the policy resolves against.
func (p *Policy) Registry() *Registry { return p.reg }

// allowed matches a program against one allow pattern: "*" matches
// everything, a trailing "*" prefix-matches, anything else must equal the
// program's name or ref exactly.
func allowed(prog *Program, pat string) bool {
	if pat == "*" {
		return true
	}
	if strings.HasSuffix(pat, "*") {
		pfx := pat[:len(pat)-1]
		return strings.HasPrefix(prog.Name, pfx) || strings.HasPrefix(prog.Ref, pfx)
	}
	return pat == prog.Name || pat == prog.Ref
}

// Admit resolves refOrName and checks tenant's allow-list ("" uses the
// default list). On success it returns the program; callers should stamp
// prog.Ref (the canonical address) onto the request and Clamp it.
func (p *Policy) Admit(tenant, refOrName string) (*Program, error) {
	prog, ok := p.reg.Lookup(refOrName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, refOrName)
	}
	allow := p.allow
	if rule, ok := p.tenants[tenant]; ok && tenant != "" {
		allow = rule.Allow
	}
	for _, pat := range allow {
		if allowed(prog, pat) {
			return prog, nil
		}
	}
	return nil, fmt.Errorf("%w: tenant %q, program %q", ErrDenied, tenant, refOrName)
}

// Clamp stamps the tenant's (or default) budget caps onto the request,
// keeping any tighter caller-provided budgets.
func (p *Policy) Clamp(tenant string, req *core.Request) {
	caps := p.defCaps
	if rule, ok := p.tenants[tenant]; ok && tenant != "" {
		if rule.Caps.MaxBytes > 0 {
			caps.MaxBytes = rule.Caps.MaxBytes
		}
		if rule.Caps.MaxSteps > 0 {
			caps.MaxSteps = rule.Caps.MaxSteps
		}
	}
	if caps.MaxBytes > 0 && (req.ProgMaxBytes <= 0 || req.ProgMaxBytes > caps.MaxBytes) {
		req.ProgMaxBytes = caps.MaxBytes
	}
	if caps.MaxSteps > 0 && (req.ProgMaxSteps <= 0 || req.ProgMaxSteps > caps.MaxSteps) {
		req.ProgMaxSteps = caps.MaxSteps
	}
}

// PolicyFromSpec registers the spec's programs into reg (Default when
// nil) and builds the policy from its allow-lists and budgets.
func PolicyFromSpec(ps spec.PushdownSpec, reg *Registry) (*Policy, error) {
	if reg == nil {
		reg = Default
	}
	for name, src := range ps.Programs {
		if _, err := reg.Register(name, src); err != nil {
			return nil, fmt.Errorf("pushdown: program %q: %w", name, err)
		}
	}
	caps := Caps{MaxBytes: int64(ps.MaxScanMB) << 20, MaxSteps: ps.MaxSteps}
	p := NewPolicy(reg, ps.Allow, caps)
	for _, ts := range ps.Tenants {
		p.SetTenant(ts.Name, TenantRule{
			Allow: ts.Allow,
			Caps:  Caps{MaxBytes: int64(ts.MaxScanMB) << 20, MaxSteps: ts.MaxSteps},
		})
	}
	return p, nil
}
